package nanos_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	nanos "repro"
)

func TestTaskloopCoversIterationSpace(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 4})
	covered := make([]atomic.Int32, 103)
	var chunks int
	rt.Run(func(tc *nanos.TaskContext) {
		chunks = nanos.Taskloop(tc, nanos.TaskloopSpec{
			Lo: 0, Hi: 103, Grain: 10,
			Body: func(_ *nanos.TaskContext, lo, hi int64) {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			},
		})
	})
	if chunks != 11 {
		t.Errorf("chunks = %d, want 11 (10 full + 1 tail)", chunks)
	}
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("iteration %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestTaskloopWithDepsOrdersAgainstSuccessor(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 4})
	d := rt.NewData("x", 1000, 8)
	var produced atomic.Int64
	ok := false
	rt.Run(func(tc *nanos.TaskContext) {
		nanos.Taskloop(tc, nanos.TaskloopSpec{
			Label: "produce",
			Lo:    0, Hi: 1000, Grain: 100,
			Deps: func(lo, hi int64) []nanos.Dep {
				return []nanos.Dep{nanos.DOut(d, nanos.Iv(lo, hi))}
			},
			Body: func(_ *nanos.TaskContext, lo, hi int64) {
				produced.Add(hi - lo)
			},
		})
		tc.Submit(nanos.TaskSpec{
			Label: "consume",
			Deps:  []nanos.Dep{nanos.DIn(d, nanos.Iv(0, 1000))},
			Body: func(*nanos.TaskContext) {
				ok = produced.Load() == 1000
			},
		})
	})
	if !ok {
		t.Fatal("consumer ran before the taskloop chunks finished")
	}
}

func TestTaskloopPartialConsumerOverlap(t *testing.T) {
	// Chunk [0,100) must not wait for a predecessor that only covers
	// [100,200) — the partial-overlap machinery of §VII applied to
	// taskloop chunks. The predecessor spins (bounded) until it observes
	// chunk0's completion; if chunk0 were wrongly ordered after the whole
	// predecessor, the flag would still be unset when the spin gives up.
	rt := nanos.New(nanos.Config{Workers: 2})
	d := rt.NewData("x", 200, 8)
	var chunk0Done, predSawChunk0, chunk1AfterPred atomic.Bool
	var predDone atomic.Bool
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label: "slow-pred",
			Deps:  []nanos.Dep{nanos.DOut(d, nanos.Iv(100, 200))},
			Body: func(*nanos.TaskContext) {
				for i := 0; i < 1_000_000 && !chunk0Done.Load(); i++ {
					runtime.Gosched()
				}
				predSawChunk0.Store(chunk0Done.Load())
				predDone.Store(true)
			},
		})
		nanos.Taskloop(tc, nanos.TaskloopSpec{
			Label: "loop",
			Lo:    0, Hi: 200, Grain: 100,
			Deps: func(lo, hi int64) []nanos.Dep {
				return []nanos.Dep{nanos.DInOut(d, nanos.Iv(lo, hi))}
			},
			Body: func(_ *nanos.TaskContext, lo, _ int64) {
				if lo == 0 {
					chunk0Done.Store(true)
				} else {
					chunk1AfterPred.Store(predDone.Load())
				}
			},
		})
	})
	if !predSawChunk0.Load() {
		t.Error("chunk [0,100) did not run while the [100,200) predecessor was still live")
	}
	if !chunk1AfterPred.Load() {
		t.Error("chunk [100,200) ran before its predecessor finished")
	}
}

func TestTaskloopVirtualCost(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 1, Virtual: true})
	rt.Run(func(tc *nanos.TaskContext) {
		nanos.Taskloop(tc, nanos.TaskloopSpec{
			Lo: 0, Hi: 64, Grain: 16,
			Body: func(*nanos.TaskContext, int64, int64) {},
		})
	})
	// Default cost = chunk length; one worker serializes 4 chunks of 16.
	if got := rt.VirtualTime(); got != 64 {
		t.Errorf("virtual makespan = %d, want 64", got)
	}
}

func TestTaskloopEmptyAndPanics(t *testing.T) {
	rt := nanos.New(nanos.Config{Workers: 1})
	rt.Run(func(tc *nanos.TaskContext) {
		if n := nanos.Taskloop(tc, nanos.TaskloopSpec{Lo: 5, Hi: 5, Grain: 2,
			Body: func(*nanos.TaskContext, int64, int64) {}}); n != 0 {
			t.Errorf("empty range submitted %d chunks", n)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Grain <= 0 should panic")
				}
			}()
			nanos.Taskloop(tc, nanos.TaskloopSpec{Lo: 0, Hi: 1, Grain: 0,
				Body: func(*nanos.TaskContext, int64, int64) {}})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("nil Body should panic")
				}
			}()
			nanos.Taskloop(tc, nanos.TaskloopSpec{Lo: 0, Hi: 1, Grain: 1})
		}()
	})
}
