package nanos_test

// Godoc examples: each compiles into the package documentation and runs as
// a test with verified output.

import (
	"fmt"
	"sort"
	"sync/atomic"

	nanos "repro"
)

// The paper's listing 2: a task with two subtasks and the weakwait clause.
// The consumer of "a" becomes ready as soon as subtask T1.1 finishes — not
// when all of T1 does — because the fine-grained release hands T1's
// dependency over to the covering subtask.
func Example() {
	rt := nanos.New(nanos.Config{Workers: 4})
	vars := rt.NewData("vars", 2, 8)
	a, b := nanos.Iv(0, 1), nanos.Iv(1, 2)

	var log []string
	var mu atomic.Int32
	record := func(s string) {
		for !mu.CompareAndSwap(0, 1) {
		}
		log = append(log, s)
		mu.Store(0)
	}

	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label:    "T1",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DInOut(vars, a, b)},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(nanos.TaskSpec{Label: "T1.1",
					Deps: []nanos.Dep{nanos.DInOut(vars, a)},
					Body: func(*nanos.TaskContext) { record("T1.1") }})
				tc.Submit(nanos.TaskSpec{Label: "T1.2",
					Deps: []nanos.Dep{nanos.DInOut(vars, b)},
					Body: func(*nanos.TaskContext) { record("T1.2") }})
			},
		})
		tc.Submit(nanos.TaskSpec{Label: "T2",
			Deps: []nanos.Dep{nanos.DIn(vars, a)},
			Body: func(*nanos.TaskContext) { record("T2") }})
	})

	// T2 ran after T1.1 (its only real predecessor); sort for stable output.
	sort.Strings(log)
	fmt.Println(log)
	// Output: [T1.1 T1.2 T2]
}

// Taskloop splits an iteration space into grain-sized chunk tasks; with a
// Deps callback the chunks take part in the dependency system.
func ExampleTaskloop() {
	rt := nanos.New(nanos.Config{Workers: 4})
	d := rt.NewData("x", 100, 8)
	var sum atomic.Int64
	rt.Run(func(tc *nanos.TaskContext) {
		n := nanos.Taskloop(tc, nanos.TaskloopSpec{
			Label: "chunk",
			Lo:    0, Hi: 100, Grain: 32,
			Deps: func(lo, hi int64) []nanos.Dep {
				return []nanos.Dep{nanos.DOut(d, nanos.Iv(lo, hi))}
			},
			Body: func(_ *nanos.TaskContext, lo, hi int64) {
				sum.Add(hi - lo)
			},
		})
		fmt.Println("chunks:", n)
	})
	fmt.Println("iterations:", sum.Load())
	// Output:
	// chunks: 4
	// iterations: 100
}

// RunChecked returns a *TaskError when a task body panics, after the
// remaining dependency graph has drained.
func ExampleRuntime_RunChecked() {
	rt := nanos.New(nanos.Config{Workers: 2})
	err := rt.RunChecked(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{Label: "bad", Body: func(*nanos.TaskContext) {
			panic("boom")
		}})
	})
	fmt.Println(err)
	// Output: core: task "bad" panicked: boom
}

// Release lets a task drop part of its depend set early (§V): successors
// over the released region become ready while the task keeps running.
func ExampleTaskContext_Release() {
	rt := nanos.New(nanos.Config{Workers: 2})
	d := rt.NewData("x", 100, 8)
	done := make(chan string, 2)
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label: "producer",
			Deps:  []nanos.Dep{nanos.DOut(d, nanos.Iv(0, 100))},
			Body: func(tc *nanos.TaskContext) {
				// First half finished; release it before doing the rest.
				tc.Release(nanos.DOut(d, nanos.Iv(0, 50)))
				done <- "released-half"
			},
		})
		tc.Submit(nanos.TaskSpec{
			Label: "consumer",
			Deps:  []nanos.Dep{nanos.DIn(d, nanos.Iv(0, 50))},
			Body:  func(*nanos.TaskContext) { done <- "consumed" },
		})
	})
	fmt.Println(<-done, <-done)
	// Output: released-half consumed
}

// Verification mode records a finding when a child's depend entry escapes
// its parent's — the data-race hazard of §III.
func ExampleConfig_verify() {
	rt := nanos.New(nanos.Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(nanos.TaskSpec{
			Label:    "parent",
			WeakWait: true,
			Deps:     []nanos.Dep{nanos.DWeakInOut(d, nanos.Iv(0, 50))},
			Body: func(tc *nanos.TaskContext) {
				tc.Submit(nanos.TaskSpec{
					Label: "child",
					Deps:  []nanos.Dep{nanos.DIn(d, nanos.Iv(40, 60))},
				})
			},
		})
	})
	for _, v := range rt.Violations() {
		fmt.Println(v)
	}
	// Output: child-coverage: task "child" reads data 0 [[50,60)] outside parent "parent"'s depend entries
}
