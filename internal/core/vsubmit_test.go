package core

import "testing"

// Tests of the virtual-mode task-creation cost model (VirtualSubmitCost):
// the machinery behind Figure 4's single-generator bottleneck.

// TestVSubmitArrivalSerialization: with creation cost k, the i-th task
// submitted by the root cannot start before i*k even with idle cores.
func TestVSubmitArrivalSerialization(t *testing.T) {
	const k = 10
	r := New(Config{Workers: 4, Virtual: true, VirtualSubmitCost: k})
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 4; i++ {
			tc.Submit(TaskSpec{Label: "t", Cost: 1})
		}
	})
	// Arrivals at 10,20,30,40; each runs 1 unit → makespan 41.
	if got := r.VirtualTime(); got != 41 {
		t.Fatalf("makespan = %d, want 41", got)
	}
}

// TestVSubmitFreeWhenZero: default behaviour (cost 0) is unchanged.
func TestVSubmitFreeWhenZero(t *testing.T) {
	r := New(Config{Workers: 4, Virtual: true})
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 4; i++ {
			tc.Submit(TaskSpec{Label: "t", Cost: 1})
		}
	})
	if got := r.VirtualTime(); got != 1 {
		t.Fatalf("makespan = %d, want 1", got)
	}
}

// TestVSubmitParallelInstantiation: two weak outer tasks create their
// children concurrently, halving the creation bottleneck — the paper's
// "parallel generation of work" (§III, §IX).
func TestVSubmitParallelInstantiation(t *testing.T) {
	const k = 10
	const kidsPerOuter = 8
	build := func(outers int) int64 {
		r := New(Config{Workers: 16, Virtual: true, VirtualSubmitCost: k})
		r.Run(func(tc *TaskContext) {
			for o := 0; o < outers; o++ {
				tc.Submit(TaskSpec{
					Label:    "outer",
					WeakWait: true,
					Body: func(tc *TaskContext) {
						for i := 0; i < kidsPerOuter; i++ {
							tc.Submit(TaskSpec{Label: "leaf", Cost: 1})
						}
					},
				})
			}
		})
		return r.VirtualTime()
	}
	// One generator creating 16 leaves vs two generators creating 8 each.
	oneGen := func() int64 {
		r := New(Config{Workers: 16, Virtual: true, VirtualSubmitCost: k})
		r.Run(func(tc *TaskContext) {
			tc.Submit(TaskSpec{
				Label:    "outer",
				WeakWait: true,
				Body: func(tc *TaskContext) {
					for i := 0; i < 2*kidsPerOuter; i++ {
						tc.Submit(TaskSpec{Label: "leaf", Cost: 1})
					}
				},
			})
		})
		return r.VirtualTime()
	}()
	twoGen := build(2)
	if twoGen >= oneGen {
		t.Fatalf("parallel instantiation (%d) should beat a single generator (%d)", twoGen, oneGen)
	}
}

// TestVSubmitCreatorStaysBusy: the creating task's own duration includes
// the accumulated creation time.
func TestVSubmitCreatorStaysBusy(t *testing.T) {
	const k = 5
	r := New(Config{Workers: 2, Virtual: true, VirtualSubmitCost: k})
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "outer",
			Cost:     1,
			WeakWait: true,
			Body: func(tc *TaskContext) {
				for i := 0; i < 3; i++ {
					tc.Submit(TaskSpec{Label: "leaf", Cost: 1})
				}
			},
		})
	})
	// Outer: assigned at t=1 (root pays k=5... no: root has no submit cost
	// charged to arrivals? The root also pays: outer's arrival = 5.)
	// outer arrival t=5, runs 1+3k=16 → ends 21; leaves arrive at 10,15,20
	// (outer start 5 + i*k), each cost 1 on the second core → last ends 21.
	if got := r.VirtualTime(); got != 21 {
		t.Fatalf("makespan = %d, want 21", got)
	}
}

// TestVSubmitDeterminism: the arrival machinery stays deterministic.
func TestVSubmitDeterminism(t *testing.T) {
	run := func() int64 {
		r := New(Config{Workers: 3, Virtual: true, VirtualSubmitCost: 7})
		d := r.NewData("x", 8, 8)
		r.Run(func(tc *TaskContext) {
			for i := int64(0); i < 12; i++ {
				i := i
				tc.Submit(TaskSpec{Label: "t", Cost: 2 + i%4,
					Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(i%4, i%4+1)}}}})
			}
		})
		return r.VirtualTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
