package core

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mempool"
	"repro/internal/randtest"
	"repro/internal/replay"
	"repro/internal/sched"
)

// Worksharing tests: the chunk-distributed strategy must be observably
// identical to the per-chunk-task expansion over randomized programs
// (identical final state for any grain, width, and chunk-cost skew), must
// cost no more than the expansion at one worker, must record and replay as
// a single graph node, and must leak no chunk descriptors.

// wsSum runs one independent worksharing region that adds every iteration
// index into an atomic accumulator and returns (sum, chunk count).
func wsSum(t *testing.T, cfg Config, lo, hi, grain int64) (int64, int, *Runtime) {
	t.Helper()
	r := New(cfg)
	var sum atomic.Int64
	var n int
	err := r.RunChecked(func(tc *TaskContext) {
		n = tc.Worksharing(WorksharingSpec{
			Lo: lo, Hi: hi, Grain: grain,
			Body: func(tc *TaskContext, lo, hi int64) {
				var s int64
				for i := lo; i < hi; i++ {
					s += i
				}
				sum.Add(s)
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return sum.Load(), n, r
}

// TestWorksharingBasic: every iteration of [Lo, Hi) executes exactly once
// under the chunked strategy, across widths and grains (including a grain
// larger than the range and a range not divisible by the grain).
func TestWorksharingBasic(t *testing.T) {
	want := func(lo, hi int64) int64 { return (hi - 1 + lo) * (hi - lo) / 2 }
	for _, workers := range []int{1, 2, 4} {
		for _, grain := range []int64{1, 7, 64, 10000} {
			lo, hi := int64(3), int64(4099)
			sum, n, r := wsSum(t, Config{Workers: workers, Debug: true}, lo, hi, grain)
			if sum != want(lo, hi) {
				t.Fatalf("w=%d grain=%d: sum %d, want %d", workers, grain, sum, want(lo, hi))
			}
			wantN := int((hi - lo + grain - 1) / grain)
			if n != wantN {
				t.Fatalf("w=%d grain=%d: %d chunks reported, want %d", workers, grain, n, wantN)
			}
			st := r.WsStats()
			if st.Regions != 1 || st.Chunks != int64(wantN) {
				t.Fatalf("w=%d grain=%d: stats %+v, want 1 region / %d chunks", workers, grain, st, wantN)
			}
			if workers == 1 && st.Announcements != 0 {
				t.Fatalf("w=1 announced %d invitations; a lone worker has nobody to invite", st.Announcements)
			}
			if max := int64(workers - 1); st.Announcements > max {
				t.Fatalf("w=%d announced %d invitations, max %d", workers, st.Announcements, max)
			}
			if ps := r.WsPoolStats(); ps.Outstanding() != 0 {
				t.Fatalf("w=%d grain=%d: %d chunk descriptors outstanding after drain", workers, grain, ps.Outstanding())
			}
		}
	}
}

// TestWorksharingKindResolution pins the strategy resolution: auto is
// chunked in real mode (one task, wsExecute regions counted) and serial
// inside the single task in virtual mode; expand submits one task per
// chunk and never touches the chunk-distributed machinery.
func TestWorksharingKindResolution(t *testing.T) {
	_, _, auto := wsSum(t, Config{Workers: 2}, 0, 256, 16)
	if st := auto.WsStats(); st.Regions != 1 {
		t.Errorf("real-mode auto: %d chunk-distributed regions, want 1 (%+v)", st.Regions, st)
	}
	// Root + one worksharing task.
	if n := auto.TaskCount(); n != 1 {
		t.Errorf("chunked submitted %d tasks, want 1", n)
	}

	_, _, exp := wsSum(t, Config{Workers: 2, WorksharingImpl: WorksharingExpand}, 0, 256, 16)
	if st := exp.WsStats(); st.Regions != 0 {
		t.Errorf("expand ran %d chunk-distributed regions, want 0", st.Regions)
	}
	if n := exp.TaskCount(); n != 16 {
		t.Errorf("expand submitted %d tasks, want 16", n)
	}
	if ps := exp.WsPoolStats(); ps.Gets != 0 {
		t.Errorf("expand drew %d chunk descriptors; the reference must not touch the pool", ps.Gets)
	}

	sum, _, virt := wsSum(t, Config{Workers: 2, Virtual: true}, 0, 256, 16)
	if sum != 255*256/2 {
		t.Errorf("virtual-mode sum %d, want %d", sum, 255*256/2)
	}
	if st := virt.WsStats(); st.Regions != 0 {
		t.Errorf("virtual mode ran %d chunk-distributed regions, want 0 (serial inside the task)", st.Regions)
	}
	for _, k := range []WorksharingKind{WorksharingAuto, WorksharingExpand, WorksharingChunked} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// wsDiffProgram runs a randomized chained-region program and returns a
// digest of its observable results. Regions update random sub-ranges of a
// shared array through union InOut entries (per-chunk entries under
// expand), with a per-element cost skew so chunks finish at very different
// times; interleaved reader tasks fold prefix sums into a commutative
// checksum through In entries. Any legal execution order produces the same
// digest, so chunked and expand must match exactly.
func wsDiffProgram(t *testing.T, kind WorksharingKind, workers int, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const elems = 384
	grain := []int64{1, 3, 8, 24, 96}[rng.Intn(5)]
	rounds := 4 + rng.Intn(5)
	r := New(Config{
		Workers:         workers,
		WorksharingImpl: kind,
		Debug:           true,
	})
	data := r.NewData("a", elems, 8)
	arr := make([]int64, elems)
	var checksum atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		for round := 0; round < rounds; round++ {
			lo := rng.Int63n(elems - 1)
			hi := lo + 1 + rng.Int63n(elems-lo-1)
			step := int64(round*131 + 17)
			tc.Worksharing(WorksharingSpec{
				Label: fmt.Sprintf("ws%d", round),
				Lo:    lo, Hi: hi, Grain: grain,
				Deps: func(lo, hi int64) []Dep {
					return []Dep{{Data: data, Type: InOut, Ivs: []Interval{iv(lo, hi)}}}
				},
				Body: func(tc *TaskContext, lo, hi int64) {
					for i := lo; i < hi; i++ {
						// Skewed cost: some elements spin, so helpers claim
						// uneven chunk counts and interleavings vary.
						if i%17 == 0 {
							for s := 0; s < 200; s++ {
								arr[i] += 0
							}
						}
						arr[i] = arr[i]*3 + step + i
					}
				},
			})
			if rng.Intn(2) == 0 {
				rlo, rhi := lo, hi
				tc.Submit(TaskSpec{
					Label: "reader",
					Deps:  []Dep{{Data: data, Type: In, Ivs: []Interval{iv(rlo, rhi)}}},
					Body: func(*TaskContext) {
						var s int64
						for i := rlo; i < rhi; i++ {
							s += arr[i]
						}
						checksum.Add(s)
					},
				})
			}
		}
	})
	if err != nil {
		t.Fatalf("kind=%v w=%d seed=%d: %v", kind, workers, seed, err)
	}
	if ps := r.WsPoolStats(); ps.Outstanding() != 0 {
		t.Fatalf("kind=%v w=%d seed=%d: %d chunk descriptors outstanding", kind, workers, seed, ps.Outstanding())
	}
	return fmt.Sprintf("arr=%v sum=%d", arr, checksum.Load())
}

// TestWorksharingDifferential drives identical randomized programs through
// the chunked strategy and the per-chunk-task expansion: final array state
// and reader checksums must match exactly for every grain, width, and
// cost-skew combination the generator produces.
func TestWorksharingDifferential(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	for _, workers := range []int{1, 4} {
		for _, seed := range randtest.SeedRange(t, 1, int64(seeds)+1) {
			exp := wsDiffProgram(t, WorksharingExpand, workers, seed)
			chk := wsDiffProgram(t, WorksharingChunked, workers, seed)
			if exp != chk {
				t.Fatalf("w=%d seed=%d diverged:\n  expand:  %s\n  chunked: %s", workers, seed, exp, chk)
			}
		}
	}
}

// TestWorksharingW1Parity gates the acceptance bound at one worker: with
// nobody to invite, a chunked region is one task plus a serial drain loop,
// so it must cost no more than 1.5x the per-chunk-task expansion it
// replaces (in practice it is far cheaper; the bound has slack for CI
// noise). Best-of-5 wall time over a fine-grained region.
func TestWorksharingW1Parity(t *testing.T) {
	const iters, grain, regions = 1 << 15, 8, 6
	run := func(kind WorksharingKind) time.Duration {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 5; rep++ {
			r := New(Config{Workers: 1, WorksharingImpl: kind})
			var sink atomic.Int64
			start := time.Now()
			r.Run(func(tc *TaskContext) {
				for reg := 0; reg < regions; reg++ {
					tc.Worksharing(WorksharingSpec{
						Lo: 0, Hi: iters, Grain: grain,
						Body: func(tc *TaskContext, lo, hi int64) {
							sink.Add(hi - lo)
						},
					})
					tc.Taskwait()
				}
			})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	expand := run(WorksharingExpand)
	chunked := run(WorksharingChunked)
	t.Logf("w=1, %d iters / grain %d: expand %v, chunked %v (%.2fx)",
		iters, grain, expand, chunked, float64(chunked)/float64(expand))
	if float64(chunked) > 1.5*float64(expand) {
		t.Errorf("chunked %v exceeds 1.5x expand %v at one worker", chunked, expand)
	}
}

// TestWorksharingReplaySingleNode: inside a Graph region a chunked
// worksharing loop is one submission carrying the union entries, so it
// records as a single node (the expansion records one per chunk) and the
// region replays on every later iteration — while producing the same final
// state as the expansion.
func TestWorksharingReplaySingleNode(t *testing.T) {
	const elems, grain, iters = 256, 8, 5
	run := func(kind WorksharingKind) ([]int64, *Runtime) {
		r := New(Config{Workers: 4, WorksharingImpl: kind, Replay: replay.KindOn, Debug: true})
		data := r.NewData("a", elems, 8)
		arr := make([]int64, elems)
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < iters; it++ {
				step := int64(it*7 + 1)
				tc.Graph("ws", func(tc *TaskContext) {
					tc.Worksharing(WorksharingSpec{
						Lo: 0, Hi: elems, Grain: grain,
						Deps: func(lo, hi int64) []Dep {
							return []Dep{{Data: data, Type: InOut, Ivs: []Interval{iv(lo, hi)}}}
						},
						Body: func(tc *TaskContext, lo, hi int64) {
							for i := lo; i < hi; i++ {
								arr[i] = arr[i]*2 + step
							}
						},
					})
					tc.Submit(TaskSpec{
						Label: "tail",
						Deps:  []Dep{{Data: data, Type: InOut, Ivs: []Interval{iv(0, elems)}}},
						Body: func(*TaskContext) {
							for i := range arr {
								arr[i]++
							}
						},
					})
				})
			}
		})
		if err != nil {
			t.Fatalf("kind=%v: %v", kind, err)
		}
		st := r.ReplayStats()
		if st.Records != 1 || st.Replays != iters-1 {
			t.Fatalf("kind=%v: %d records / %d replays over %d iterations, want 1 / %d (%+v)",
				kind, st.Records, st.Replays, iters, iters-1, st)
		}
		return arr, r
	}
	expArr, expRT := run(WorksharingExpand)
	chkArr, chkRT := run(WorksharingChunked)
	for i := range expArr {
		if expArr[i] != chkArr[i] {
			t.Fatalf("elem %d diverged under replay: expand %d, chunked %d", i, expArr[i], chkArr[i])
		}
	}
	// One node per region instead of one per chunk: the chunked run
	// submits (chunks-1) fewer tasks per iteration — replayed iterations
	// included, which is the point of fingerprinting the union.
	chunks := int64(elems / grain)
	if diff := expRT.TaskCount() - chkRT.TaskCount(); diff != iters*(chunks-1) {
		t.Errorf("task-count difference %d, want %d (chunked must be ONE node per region, every iteration)",
			diff, iters*(chunks-1))
	}
	if st := chkRT.WsStats(); st.Regions != iters {
		t.Errorf("%d chunk-distributed regions, want %d (replayed iterations must still distribute)", st.Regions, iters)
	}
}

// TestWorksharingTaskwaitComposition: a taskwait covering a worksharing
// region must not resolve until every helper has left the region, under
// both taskwait strategies — the continuation handoff resumes wait-free
// off the region's last hold release.
func TestWorksharingTaskwaitComposition(t *testing.T) {
	for _, tw := range []TaskwaitKind{TaskwaitParking, TaskwaitContinuation} {
		r := New(Config{Workers: 4, TaskwaitImpl: tw, Debug: true})
		var sum atomic.Int64
		var observed int64 = -1
		err := r.RunChecked(func(tc *TaskContext) {
			tc.Submit(TaskSpec{Label: "parent", Body: func(tc *TaskContext) {
				for round := 0; round < 8; round++ {
					tc.Worksharing(WorksharingSpec{
						Lo: 0, Hi: 2048, Grain: 16,
						Body: func(tc *TaskContext, lo, hi int64) {
							sum.Add(hi - lo)
						},
					})
					tc.Taskwait()
					// The wait covers the whole region: every chunk of every
					// round so far must have landed.
					if got, want := sum.Load(), int64(2048*(round+1)); got != want {
						observed = got
						return
					}
				}
			}})
		})
		if err != nil {
			t.Fatalf("tw=%v: %v", tw, err)
		}
		if observed >= 0 {
			t.Fatalf("tw=%v: taskwait resolved with %d iterations done; the region escaped the wait", tw, observed)
		}
		if got := sum.Load(); got != 8*2048 {
			t.Fatalf("tw=%v: total %d, want %d", tw, got, 8*2048)
		}
	}
}

// TestWorksharingStressRace combines worksharing with every composing
// subsystem — stealing pool, pooled memory, bounded throttle window,
// replayed graph regions, continuation taskwaits, nested parent tasks —
// under churn. Run with -race this is the concurrency-safety net for the
// announce-hold protocol.
func TestWorksharingStressRace(t *testing.T) {
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		r := New(Config{
			Workers:           4,
			ReadyPool:         sched.PoolStealing,
			MemPool:           mempool.KindPooled,
			TaskwaitImpl:      TaskwaitContinuation,
			ThrottleOpenTasks: 8,
			Replay:            replay.KindOn,
			Debug:             true,
		})
		const elems = 512
		data := r.NewData("a", elems, 8)
		arr := make([]int64, elems)
		var loose atomic.Int64
		err := r.RunChecked(func(tc *TaskContext) {
			// Replayed region stream: one worksharing node per iteration.
			for rep := 0; rep < 6; rep++ {
				step := int64(rep + 1)
				tc.Graph("g", func(tc *TaskContext) {
					tc.Worksharing(WorksharingSpec{
						Lo: 0, Hi: elems, Grain: 8,
						Deps: func(lo, hi int64) []Dep {
							return []Dep{{Data: data, Type: InOut, Ivs: []Interval{iv(lo, hi)}}}
						},
						Body: func(tc *TaskContext, lo, hi int64) {
							for i := lo; i < hi; i++ {
								arr[i] += step
							}
						},
					})
				})
			}
			// Nested parents: each submits dependency-free regions through
			// the bounded window and taskwaits on them (continuation path),
			// racing the graph stream above for workers.
			for p := 0; p < 4; p++ {
				tc.Submit(TaskSpec{Label: "parent", Body: func(tc *TaskContext) {
					for round := 0; round < 5; round++ {
						tc.Worksharing(WorksharingSpec{
							Lo: 0, Hi: 1024, Grain: 8,
							Body: func(tc *TaskContext, lo, hi int64) {
								loose.Add(hi - lo)
							},
						})
						tc.Taskwait()
					}
				}})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range arr {
			if arr[i] != 21 { // 1+2+...+6
				t.Fatalf("elem %d = %d, want 21", i, arr[i])
			}
		}
		if got := loose.Load(); got != 4*5*1024 {
			t.Fatalf("loose chunks covered %d iterations, want %d", got, 4*5*1024)
		}
		if ps := r.WsPoolStats(); ps.Outstanding() != 0 {
			t.Fatalf("%d chunk descriptors outstanding after drain", ps.Outstanding())
		}
	}
}

// TestWorksharingEdgeCases covers the degenerate shapes: empty and
// inverted ranges submit nothing; a final (included) parent runs the
// chunks serially inline; spec validation panics; and a panic in a chunk
// body — owner's or helper's — surfaces as the run's TaskError without
// wedging the region's completion countdown.
func TestWorksharingEdgeCases(t *testing.T) {
	r := New(Config{Workers: 2, Debug: true})
	err := r.RunChecked(func(tc *TaskContext) {
		if n := tc.Worksharing(WorksharingSpec{Lo: 5, Hi: 5, Grain: 4, Body: func(*TaskContext, int64, int64) {}}); n != 0 {
			t.Errorf("empty range submitted %d chunks", n)
		}
		if n := tc.Worksharing(WorksharingSpec{Lo: 9, Hi: 2, Grain: 4, Body: func(*TaskContext, int64, int64) {}}); n != 0 {
			t.Errorf("inverted range submitted %d chunks", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.TaskCount(); n != 0 {
		t.Errorf("degenerate ranges submitted %d tasks", n)
	}

	// Final parent: included children run inline, so the region must take
	// the serial path (announce-holds cannot ride a task that completes
	// the moment its body returns).
	fr := New(Config{Workers: 2, Debug: true})
	var calls atomic.Int64
	var sum atomic.Int64
	err = fr.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "final", Final: true, Body: func(tc *TaskContext) {
			tc.Worksharing(WorksharingSpec{
				Lo: 0, Hi: 100, Grain: 7,
				Body: func(tc *TaskContext, lo, hi int64) {
					calls.Add(1)
					sum.Add(hi - lo)
				},
			})
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 100 || calls.Load() != 15 {
		t.Errorf("final-context region: %d iterations in %d chunks, want 100 in 15", sum.Load(), calls.Load())
	}
	if st := fr.WsStats(); st.Regions != 0 {
		t.Errorf("final-context region went chunk-distributed (%+v)", st)
	}

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	pr := New(Config{Workers: 1})
	pr.Run(func(tc *TaskContext) {
		mustPanic("Grain=0", func() {
			tc.Worksharing(WorksharingSpec{Lo: 0, Hi: 8, Grain: 0, Body: func(*TaskContext, int64, int64) {}})
		})
		mustPanic("nil Body", func() {
			tc.Worksharing(WorksharingSpec{Lo: 0, Hi: 8, Grain: 2})
		})
	})

	// A chunk panic at width 4 lands on the owner or a helper depending on
	// who claims the poisoned chunk; both must convert to the recorded
	// error and drain cleanly. Loop to hit both paths.
	for rep := 0; rep < 8; rep++ {
		er := New(Config{Workers: 4, Debug: true})
		err := er.RunChecked(func(tc *TaskContext) {
			tc.Worksharing(WorksharingSpec{
				Label: "poisoned",
				Lo:    0, Hi: 4096, Grain: 4,
				Body: func(tc *TaskContext, lo, hi int64) {
					if lo == 2048 {
						panic("chunk boom")
					}
				},
			})
		})
		te, ok := err.(*TaskError)
		if !ok {
			t.Fatalf("rep %d: got %v, want a TaskError", rep, err)
		}
		if te.Label != "poisoned" || te.Value != "chunk boom" {
			t.Fatalf("rep %d: wrong error contents: %+v", rep, te)
		}
		if ps := er.WsPoolStats(); ps.Outstanding() != 0 {
			t.Fatalf("rep %d: %d descriptors outstanding after a failed run", rep, ps.Outstanding())
		}
	}
}

// TestWorksharingVirtualCost: in virtual mode the region is one task whose
// cost defaults to the iteration count (or the Cost callback's union
// value), so the simulated makespan reflects the whole loop.
func TestWorksharingVirtualCost(t *testing.T) {
	r := New(Config{Workers: 4, Virtual: true})
	var ran atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		tc.Worksharing(WorksharingSpec{
			Lo: 0, Hi: 1000, Grain: 100,
			Cost:  func(lo, hi int64) int64 { return (hi - lo) * 2 },
			Flops: func(lo, hi int64) int64 { return hi - lo },
			Body:  func(tc *TaskContext, lo, hi int64) { ran.Add(hi - lo) },
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1000 {
		t.Fatalf("virtual region ran %d iterations, want 1000", ran.Load())
	}
	if got := r.Flops(); got != 1000 {
		t.Fatalf("accounted %d flops, want 1000 (union Flops callback)", got)
	}
}
