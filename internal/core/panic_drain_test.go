package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// Panic-safe drain tests: a panic anywhere in the task tree — inside a
// replayed graph region, a final serial task, a worksharing owner — must
// poison its region, drain the runtime to quiescence with every pooled
// object recycled and every throttle credit refunded, and surface exactly
// one *TaskError. Every test runs with Debug so runErr's joined leak
// checks (pools, fragments, live tasks, credit conservation) are part of
// the assertion: a drain that leaked turns the TaskError into a join that
// the "debug check failed" scan below catches.

// wantTaskError asserts err carries a *TaskError with the given label and
// value as the primary failure, and that no Debug leak check fired.
func wantTaskError(t *testing.T, err error, label string, value any) *TaskError {
	t.Helper()
	if err == nil {
		t.Fatal("run succeeded, want a TaskError")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("got %v, want a TaskError", err)
	}
	if te.Label != label || te.Value != value {
		t.Fatalf("wrong failure: got %q/%v, want %q/%v", te.Label, te.Value, label, value)
	}
	if strings.Contains(err.Error(), "debug check failed") {
		t.Fatalf("drain leaked: %v", err)
	}
	return te
}

// assertDrained re-checks the pool counters directly (belt and braces over
// the Debug join, and usable for the Workers-token and throttle shape).
func assertDrained(t *testing.T, r *Runtime) {
	t.Helper()
	if ms, ok := r.MemStats(); ok && ms.Outstanding() != 0 {
		t.Errorf("%d pooled dependency objects outstanding", ms.Outstanding())
	}
	if n := r.ReplayPoolStats().Outstanding(); n != 0 {
		t.Errorf("%d replay countdown nodes outstanding", n)
	}
	if n := r.ContPoolStats().Outstanding(); n != 0 {
		t.Errorf("%d continuation nodes outstanding", n)
	}
	if n := r.WsPoolStats().Outstanding(); n != 0 {
		t.Errorf("%d worksharing descriptors outstanding", n)
	}
	if r.thr != nil {
		if open := r.thr.Open(); open != 0 {
			t.Errorf("throttle still reports %d open tasks", open)
		}
		if c, limit := r.thr.Credits(), int64(r.thr.Limit()); c != limit {
			t.Errorf("throttle credits %d != limit %d after drain", c, limit)
		}
	}
}

// graphIter submits a fixed 4-task dependent chain into the current graph
// region; boom >= 0 makes that member panic.
func graphIter(tc *TaskContext, d DataID, boom int, ran *atomic.Int64) {
	for i := 0; i < 4; i++ {
		i := i
		tc.Submit(TaskSpec{
			Label: "member",
			Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 8}}}},
			Body: func(*TaskContext) {
				if i == boom {
					panic("member boom")
				}
				ran.Add(1)
			},
		})
	}
}

// TestPanicInReplayedGraphInvalidatesRecording: iteration 0 records,
// iteration 1 replays and a member task panics mid-replay. The recording
// must be invalidated — the failed execution skipped bodies, so its
// submission stream was never validated to the end — and the countdown
// nodes must return to their pool.
func TestPanicInReplayedGraphInvalidatesRecording(t *testing.T) {
	r := New(Config{Workers: 4, Debug: true})
	d := r.NewData("x", 64, 8)
	var ran atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		for it := 0; it < 2; it++ {
			boom := -1
			if it == 1 {
				boom = 2
			}
			tc.Graph("g", func(tc *TaskContext) { graphIter(tc, d, boom, &ran) })
		}
	})
	wantTaskError(t, err, "member", "member boom")
	assertDrained(t, r)
	st := r.ReplayStats()
	if st.Records != 1 {
		t.Errorf("Records = %d, want 1 (iteration 0 only)", st.Records)
	}
	if st.Replays != 0 {
		t.Errorf("Replays = %d, want 0 (the panicked replay must not count as clean)", st.Replays)
	}
	if st.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1 (panic poisons the recording)", st.Invalidations)
	}
}

// TestPanicInGraphOwnerDuringReplay: the region owner's body panics between
// replay submissions (abortRegion's unwind path): the admitted prefix must
// drain, the nodes recycle, the recording invalidate, and the region slot
// release — proven by the next iteration executing (and re-recording)
// rather than skipping as "region busy".
func TestPanicInGraphOwnerDuringReplay(t *testing.T) {
	r := New(Config{Workers: 4, Debug: true})
	d := r.NewData("x", 64, 8)
	var ran atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		tc.Graph("g", func(tc *TaskContext) { graphIter(tc, d, -1, &ran) }) // records
		tc.Graph("g", func(tc *TaskContext) { // replays, owner panics mid-stream
			graphIter(tc, d, -1, &ran)
			panic("owner boom")
		})
	})
	wantTaskError(t, err, "main", "owner boom")
	assertDrained(t, r)
	st := r.ReplayStats()
	if st.Records != 1 || st.Replays != 0 || st.Invalidations != 1 {
		t.Errorf("stats = %+v, want 1 record / 0 replays / 1 invalidation", st)
	}
}

// TestPanicDuringRecordingNeverSeals: a member panic during the recording
// execution truncates the observed submission stream (bodies after the
// failure are skipped); the partial recording must never seal.
func TestPanicDuringRecordingNeverSeals(t *testing.T) {
	r := New(Config{Workers: 4, Debug: true})
	d := r.NewData("x", 64, 8)
	var ran atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		tc.Graph("g", func(tc *TaskContext) { graphIter(tc, d, 1, &ran) })
	})
	wantTaskError(t, err, "member", "member boom")
	assertDrained(t, r)
	if st := r.ReplayStats(); st.Records != 0 {
		t.Errorf("Records = %d, want 0 (a truncated recording must not seal)", st.Records)
	}
}

// TestPanicInFinalTask: a final task runs its subtree inline and serial;
// a panic in the final body itself and in an included descendant must both
// surface with the right label and drain clean.
func TestPanicInFinalTask(t *testing.T) {
	for _, tcase := range []struct {
		name, wantLabel string
		inner           bool
	}{
		{name: "final-body", wantLabel: "final"},
		{name: "included-descendant", wantLabel: "included", inner: true},
	} {
		t.Run(tcase.name, func(t *testing.T) {
			r := New(Config{Workers: 2, ThrottleOpenTasks: 4, Debug: true})
			err := r.RunChecked(func(tc *TaskContext) {
				tc.Submit(TaskSpec{
					Label: "final",
					Final: true,
					Body: func(tc *TaskContext) {
						if !tcase.inner {
							panic("final boom")
						}
						tc.Submit(TaskSpec{
							Label: "included",
							Body:  func(*TaskContext) { panic("final boom") },
						})
					},
				})
			})
			wantTaskError(t, err, tcase.wantLabel, "final boom")
			assertDrained(t, r)
		})
	}
}

// TestPanicInWorksharingOwnerBeforeHelpers: the owner claims the very
// first chunk and panics before any helper can consume an invitation. The
// announce-holds must still release (helpers that arrive later drain
// skipped chunks), the descriptor must recycle, and the run must not hang.
func TestPanicInWorksharingOwnerBeforeHelpers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := New(Config{Workers: workers, Debug: true})
		err := r.RunChecked(func(tc *TaskContext) {
			tc.Worksharing(WorksharingSpec{
				Label: "ws-owner-panic",
				Lo:    0, Hi: 1 << 14, Grain: 1,
				Body: func(tc *TaskContext, lo, hi int64) {
					if lo == 0 {
						panic("owner chunk boom")
					}
				},
			})
		})
		wantTaskError(t, err, "ws-owner-panic", "owner chunk boom")
		assertDrained(t, r)
	}
}

// TestPanicInTaskgroup: a panic inside a taskgroup body's submitted task
// drains the group and surfaces; the group's waiter must not hang.
func TestPanicInTaskgroup(t *testing.T) {
	r := New(Config{Workers: 4, Debug: true})
	err := r.RunChecked(func(tc *TaskContext) {
		tc.Taskgroup(func() {
			for i := 0; i < 16; i++ {
				i := i
				tc.Submit(TaskSpec{
					Label: "grouped",
					Body: func(*TaskContext) {
						if i == 7 {
							panic("group boom")
						}
					},
				})
			}
		})
	})
	wantTaskError(t, err, "grouped", "group boom")
	assertDrained(t, r)
}

// TestRunRepanicsAfterDrain: Run's re-panic must happen only after the
// graph has drained to quiescence — zero outstanding pool objects, all
// throttle credits home — so a recovering caller observes a clean runtime.
func TestRunRepanicsAfterDrain(t *testing.T) {
	r := New(Config{
		Workers:           4,
		ThrottleOpenTasks: 4,
		Stealing:          true,
		Debug:             true,
	})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		r.Run(func(tc *TaskContext) {
			for i := 0; i < 64; i++ {
				i := i
				tc.Submit(TaskSpec{
					Label: "burst",
					Body: func(tc *TaskContext) {
						tc.Submit(TaskSpec{Label: "nested", Body: func(*TaskContext) {}})
						if i == 32 {
							panic("burst boom")
						}
					},
				})
			}
		})
	}()
	if recovered == nil {
		t.Fatal("Run did not re-panic")
	}
	err, ok := recovered.(error)
	if !ok {
		t.Fatalf("Run panicked with %v, want an error", recovered)
	}
	wantTaskError(t, err, "burst", "burst boom")
	assertDrained(t, r)
	// Quiescence includes the ready pools: every token home, nothing queued.
	if p, ok := r.sch.(sched.Prober); ok {
		pr := p.Probe()
		if pr.Queued != 0 || pr.Waiters != 0 || pr.FreeTokens != r.Workers() {
			t.Errorf("pool not quiescent after re-panic: %+v", pr)
		}
	}
}
