package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func TestPriorityPolicyDispatchOrder(t *testing.T) {
	rt := New(Config{Workers: 1, Policy: sched.Priority})
	var mu sync.Mutex
	var order []int64
	rt.Run(func(tc *TaskContext) {
		// With one worker, the root holds the only token while it submits,
		// so all children queue; they then dispatch by priority.
		for _, p := range []int64{1, 5, 3, 5, 2} {
			p := p
			tc.Submit(TaskSpec{Label: "p", Priority: p, Body: func(*TaskContext) {
				mu.Lock()
				order = append(order, p)
				mu.Unlock()
			}})
		}
	})
	want := []int64{5, 5, 3, 2, 1}
	mu.Lock()
	defer mu.Unlock()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

func TestPriorityPolicyVirtual(t *testing.T) {
	rt := New(Config{Workers: 1, Virtual: true, Policy: sched.Priority})
	var order []int64
	rt.Run(func(tc *TaskContext) {
		for _, p := range []int64{1, 5, 3} {
			p := p
			tc.Submit(TaskSpec{Label: "p", Priority: p, Body: func(*TaskContext) {
				order = append(order, p)
			}})
		}
	})
	want := []int64{5, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("virtual dispatch order = %v, want %v", order, want)
		}
	}
}

func TestStealingConfigRespectsDependencies(t *testing.T) {
	rt := New(Config{Workers: 4, Stealing: true})
	d := rt.NewData("x", 1000, 8)
	var stage atomic.Int64
	var bad atomic.Int64
	rt.Run(func(tc *TaskContext) {
		for i := 0; i < 20; i++ {
			i := i
			tc.Submit(TaskSpec{
				Label: "chain",
				Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 1000}}}},
				Body: func(*TaskContext) {
					if !stage.CompareAndSwap(int64(i), int64(i+1)) {
						bad.Add(1)
					}
				},
			})
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d chain tasks ran out of dependency order under stealing", bad.Load())
	}
	if stage.Load() != 20 {
		t.Fatalf("chain advanced to %d, want 20", stage.Load())
	}
}

// TestReadyPoolConfigMatrix runs a strict dependency chain and a
// taskwait-heavy tree under every ready-pool selection, checking the
// dependency order and completion are pool-independent.
func TestReadyPoolConfigMatrix(t *testing.T) {
	pools := []sched.PoolKind{
		sched.PoolAuto, sched.PoolCentral, sched.PoolShardedCentral,
		sched.PoolStealing, sched.PoolLockedStealing,
	}
	for _, pool := range pools {
		t.Run(pool.String(), func(t *testing.T) {
			rt := New(Config{Workers: 4, ReadyPool: pool, Debug: true})
			d := rt.NewData("x", 1000, 8)
			var stage atomic.Int64
			var bad atomic.Int64
			err := rt.RunChecked(func(tc *TaskContext) {
				for i := 0; i < 20; i++ {
					i := i
					tc.Submit(TaskSpec{
						Label: "chain",
						Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 1000}}}},
						Body: func(*TaskContext) {
							if !stage.CompareAndSwap(int64(i), int64(i+1)) {
								bad.Add(1)
							}
						},
					})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if bad.Load() != 0 || stage.Load() != 20 {
				t.Fatalf("chain order violated (bad=%d, stage=%d)", bad.Load(), stage.Load())
			}

			// Taskwait tree: exercises the Yield/Acquire token protocol
			// (including waiter priority at release points) on this pool.
			rt2 := New(Config{Workers: 4, ReadyPool: pool, Debug: true})
			var sum atomic.Int64
			err = rt2.RunChecked(func(tc *TaskContext) {
				for i := 0; i < 4; i++ {
					tc.Submit(TaskSpec{Label: "mid", Body: func(tc *TaskContext) {
						for j := 0; j < 4; j++ {
							tc.Submit(TaskSpec{Label: "leaf", Body: func(*TaskContext) { sum.Add(1) }})
						}
						tc.Taskwait()
						if sum.Load() < 4 {
							panic("taskwait resumed before children completed")
						}
						sum.Add(100)
					}})
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sum.Load(); got != 4*4+4*100 {
				t.Fatalf("sum = %d, want %d", got, 4*4+4*100)
			}
		})
	}
}

func TestStealingConfigNestedWeak(t *testing.T) {
	rt := New(Config{Workers: 8, Stealing: true, Debug: true})
	d := rt.NewData("x", 800, 8)
	var sum atomic.Int64
	err := rt.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "outer",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: 0, Hi: 800}}}},
			Body: func(tc *TaskContext) {
				for i := int64(0); i < 8; i++ {
					i := i
					tc.Submit(TaskSpec{
						Label: "leaf",
						Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: i * 100, Hi: (i + 1) * 100}}}},
						Body:  func(*TaskContext) { sum.Add(1) },
					})
				}
			},
		})
		tc.Submit(TaskSpec{
			Label: "after",
			Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{{Lo: 0, Hi: 800}}}},
			Body: func(*TaskContext) {
				if sum.Load() != 8 {
					panic("reader ran before all leaves finished")
				}
			},
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
