package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/randtest"
	"repro/internal/replay"
)

// Graph-region tests: the record-and-replay cache must be observably
// identical to live execution (same final data state, same task counts)
// over randomized iterative programs, must fall back transparently on
// shape changes and unfinished external producers, and must leak no
// countdown nodes.

// gtask is one task of a generated iterative program: deterministic body
// effects derived from the depend entries, so any legal execution order
// produces the same final state.
type gtask struct {
	deps []Dep
	seed int64
}

// gprog is a generated program: a task list submitted once per iteration.
type gprog struct {
	tasks []gtask
	datas int
	elems int64
}

// genProg builds a random task set over a few data objects. Each task
// takes at most one entry per data object (the engine rejects overlapping
// own entries), with random type and interval.
func genProg(rng *rand.Rand) gprog {
	return genProgU(rng, 1+rng.Intn(3), 48)
}

// genProgU generates over an explicit universe (datas objects of elems
// elements), so two programs can share one runtime's data.
func genProgU(rng *rand.Rand, datas int, elems int64) gprog {
	p := gprog{datas: datas, elems: elems}
	n := 1 + rng.Intn(18)
	for i := 0; i < n; i++ {
		var ds []Dep
		for d := 0; d < p.datas; d++ {
			if rng.Intn(3) == 0 {
				continue
			}
			lo := rng.Int63n(p.elems - 1)
			hi := lo + 1 + rng.Int63n(p.elems-lo-1)
			typ := []AccessType{In, Out, InOut, InOut, Red}[rng.Intn(5)]
			ds = append(ds, Dep{Data: DataID(d), Type: typ, Ivs: []Interval{iv(lo, hi)}})
		}
		p.tasks = append(p.tasks, gtask{deps: ds, seed: int64(i + 1)})
	}
	return p
}

// run executes iters iterations of the program as Graph regions and
// returns the final data state. Bodies apply deterministic per-element
// updates: writers chain a multiplicative hash (ordered by the engine or
// the replayed graph), readers fold what they see into a commutative
// checksum, reductions add atomically (commuting within their group).
func (p gprog) run(t *testing.T, cfg Config, iters int) ([][]int64, int64, *Runtime) {
	t.Helper()
	r := New(cfg)
	data := make([][]int64, p.datas)
	ids := make([]DataID, p.datas)
	for d := range data {
		data[d] = make([]int64, p.elems)
		ids[d] = r.NewData(fmt.Sprintf("d%d", d), p.elems, 8)
	}
	var checksum atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		for it := 0; it < iters; it++ {
			mult := int64(it*131 + 7)
			tc.Graph("prog", func(tc *TaskContext) {
				for _, gt := range p.tasks {
					gt := gt
					tc.Submit(TaskSpec{
						Label: "t",
						Deps:  gt.deps,
						Body: func(*TaskContext) {
							applyEffects(data, gt, mult, &checksum)
						},
					})
				}
			})
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return data, checksum.Load(), r
}

// TestGraphReplayDifferential drives random iterative programs through
// identical Graph-region structures with the cache on and off: final data
// state, reader checksums, and task counts must match exactly, the cached
// run must actually replay, and nothing may leak.
func TestGraphReplayDifferential(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	for _, s := range randtest.SeedRange(t, 0, int64(seeds)) {
		rng := rand.New(rand.NewSource(s*977 + 5))
		p := genProg(rng)
		iters := 2 + rng.Intn(5)
		workers := 1 + rng.Intn(4)
		base := Config{Workers: workers, Debug: true}

		offCfg := base
		offCfg.Replay = replay.KindOff
		offData, offSum, offRT := p.run(t, offCfg, iters)

		onCfg := base
		onCfg.Replay = replay.KindOn
		onData, onSum, onRT := p.run(t, onCfg, iters)

		for d := range offData {
			for e := range offData[d] {
				if offData[d][e] != onData[d][e] {
					t.Fatalf("seed %d: data %d elem %d diverged: live %d, replay %d",
						s, d, e, offData[d][e], onData[d][e])
				}
			}
		}
		if offSum != onSum {
			t.Fatalf("seed %d: reader checksum diverged: live %d, replay %d", s, offSum, onSum)
		}
		if off, on := offRT.TaskCount(), onRT.TaskCount(); off != on {
			t.Fatalf("seed %d: task count diverged: live %d, replay %d", s, off, on)
		}
		st := onRT.ReplayStats()
		if st.Records != 1 {
			t.Fatalf("seed %d: %d recordings, want 1 (%+v)", s, st.Records, st)
		}
		if st.Replays != int64(iters-1) {
			t.Fatalf("seed %d: %d replays over %d iterations (%+v)", s, st.Replays, iters, st)
		}
		if st.Invalidations != 0 || st.Fallbacks != 0 {
			t.Fatalf("seed %d: unexpected invalidations/fallbacks for a stable shape: %+v", s, st)
		}
		if n := onRT.ReplayPoolStats().Outstanding(); n != 0 {
			t.Fatalf("seed %d: %d countdown nodes outstanding after drain", s, n)
		}
	}
}

// TestGraphShapeFlipInvalidation is the invalidation stress: a region
// alternates between two shapes every k iterations, so every flip hits a
// fingerprint mismatch mid-region (or a count mismatch at its end) and
// must fall back to the live engine without losing tasks, corrupting
// state, or leaking countdown nodes. Run with -race.
func TestGraphShapeFlipInvalidation(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("k%d_w%d", k, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(k*31 + workers)))
				a := genProgU(rng, 3, 48)
				b := genProgU(rng, 3, 48) // same universe, different shape
				iters := 12
				run := func(cache replay.Kind) ([][]int64, int64, *Runtime) {
					r := New(Config{Workers: workers, Debug: true, Replay: cache})
					data := make([][]int64, a.datas)
					for d := range data {
						data[d] = make([]int64, a.elems)
						r.NewData(fmt.Sprintf("d%d", d), a.elems, 8)
					}
					var checksum atomic.Int64
					err := r.RunChecked(func(tc *TaskContext) {
						for it := 0; it < iters; it++ {
							p := a
							if (it/k)%2 == 1 {
								p = b
							}
							mult := int64(it*131 + 7)
							tc.Graph("flip", func(tc *TaskContext) {
								for _, gt := range p.tasks {
									gt := gt
									tc.Submit(TaskSpec{Label: "t", Deps: gt.deps,
										Body: func(*TaskContext) {
											applyEffects(data, gt, mult, &checksum)
										}})
								}
							})
						}
					})
					if err != nil {
						t.Fatalf("run failed: %v", err)
					}
					return data, checksum.Load(), r
				}
				offData, offSum, offRT := run(replay.KindOff)
				onData, onSum, onRT := run(replay.KindOn)
				for d := range offData {
					for e := range offData[d] {
						if offData[d][e] != onData[d][e] {
							t.Fatalf("data %d elem %d diverged: live %d, replay %d", d, e, offData[d][e], onData[d][e])
						}
					}
				}
				if offSum != onSum {
					t.Fatalf("reader checksum diverged: live %d, replay %d", offSum, onSum)
				}
				if off, on := offRT.TaskCount(), onRT.TaskCount(); off != on {
					t.Fatalf("lost tasks: live %d, replay %d", off, on)
				}
				st := onRT.ReplayStats()
				if st.Invalidations == 0 {
					t.Fatalf("no invalidations despite shape flips: %+v", st)
				}
				if st.Records < 2 {
					t.Fatalf("flipped region never re-recorded: %+v", st)
				}
				if n := onRT.ReplayPoolStats().Outstanding(); n != 0 {
					t.Fatalf("%d countdown nodes outstanding after drain (stale nodes escaped an invalidation)", n)
				}
			})
		}
	}
}

func applyEffects(data [][]int64, gt gtask, mult int64, checksum *atomic.Int64) {
	for _, dep := range gt.deps {
		arr := data[dep.Data]
		for _, v := range dep.Ivs {
			for e := v.Lo; e < v.Hi; e++ {
				switch dep.Type {
				case In:
					checksum.Add(arr[e] * (gt.seed + e))
				case Red:
					atomic.AddInt64(&arr[e], gt.seed*mult)
				case Out:
					arr[e] = gt.seed * mult
				default:
					arr[e] = arr[e]*31 + gt.seed*mult
				}
			}
		}
	}
}

// TestGraphGuardFallback: a region whose input has an unfinished external
// producer at replay time must run live (the union guard defers), and the
// region tasks must still order after the producer.
func TestGraphGuardFallback(t *testing.T) {
	r := New(Config{Workers: 4, Debug: true, Replay: replay.KindOn})
	d := r.NewData("x", 8, 8)
	var order atomic.Int64 // bit-packed completion order check
	var wrong atomic.Int64
	const iters = 5
	err := r.RunChecked(func(tc *TaskContext) {
		for it := 0; it < iters; it++ {
			seq := int64(it)
			// External producer, deliberately slow: still running when the
			// region's guard registers on every iteration after the first.
			tc.Submit(TaskSpec{
				Label: "producer",
				Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
				Body: func(*TaskContext) {
					time.Sleep(2 * time.Millisecond)
					order.Store(seq * 2)
				},
			})
			tc.Graph("consumer", func(tc *TaskContext) {
				tc.Submit(TaskSpec{
					Label: "consume",
					Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
					Body: func(*TaskContext) {
						if order.Load() != seq*2 {
							wrong.Add(1) // ran before its producer finished
						}
						order.Store(seq*2 + 1)
					},
				})
			})
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if wrong.Load() != 0 {
		t.Fatalf("%d region tasks ran before their external producer", wrong.Load())
	}
	st := r.ReplayStats()
	if st.Fallbacks == 0 {
		t.Fatalf("guard never fell back despite a pending producer: %+v", st)
	}
	if st.Invalidations != 0 {
		t.Fatalf("stable shape must not invalidate: %+v", st)
	}
	if n := r.ReplayPoolStats().Outstanding(); n != 0 {
		t.Fatalf("%d countdown nodes outstanding", n)
	}
}

// TestGraphIneligibleShapes: weakwait tasks, weak entries, nested
// submissions, and release directives in a region must permanently
// disable replay for that recording — runs stay live (and correct), with
// fallbacks counted.
func TestGraphIneligibleShapes(t *testing.T) {
	cases := []struct {
		name string
		spec func(d DataID, leaf func(*TaskContext)) TaskSpec
	}{
		{"weakwait", func(d DataID, leaf func(*TaskContext)) TaskSpec {
			return TaskSpec{Label: "ww", WeakWait: true,
				Deps: []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{iv(0, 8)}}},
				Body: func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "inner",
						Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
						Body: leaf})
				}}
		}},
		{"nested", func(d DataID, leaf func(*TaskContext)) TaskSpec {
			return TaskSpec{Label: "outer",
				Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
				Body: func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "inner", Body: leaf})
				}}
		}},
		{"release", func(d DataID, leaf func(*TaskContext)) TaskSpec {
			return TaskSpec{Label: "rel",
				Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
				Body: func(tc *TaskContext) {
					leaf(tc)
					tc.Release(Dep{Data: d, Ivs: []Interval{iv(0, 4)}})
				}}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := New(Config{Workers: 2, Debug: true, Replay: replay.KindOn})
			d := r.NewData("x", 8, 8)
			var runs atomic.Int64
			const iters = 4
			err := r.RunChecked(func(tc *TaskContext) {
				for it := 0; it < iters; it++ {
					tc.Graph("inel", func(tc *TaskContext) {
						tc.Submit(c.spec(d, func(*TaskContext) { runs.Add(1) }))
					})
				}
			})
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if runs.Load() != iters {
				t.Fatalf("leaf ran %d times, want %d", runs.Load(), iters)
			}
			st := r.ReplayStats()
			if st.Replays != 0 {
				t.Fatalf("ineligible shape replayed: %+v", st)
			}
			if st.Fallbacks != iters-1 {
				t.Fatalf("fallbacks = %d, want %d: %+v", st.Fallbacks, iters-1, st)
			}
			if st.Invalidations != 0 {
				t.Fatalf("stable ineligible shape must not invalidate: %+v", st)
			}
		})
	}
}

// TestGraphNestedRegion: a Graph inside a Graph runs live with barrier
// semantics and poisons the outer recording's eligibility.
func TestGraphNestedRegion(t *testing.T) {
	r := New(Config{Workers: 2, Debug: true, Replay: replay.KindOn})
	d := r.NewData("x", 4, 8)
	var val int64
	err := r.RunChecked(func(tc *TaskContext) {
		for it := 0; it < 3; it++ {
			tc.Graph("outer", func(tc *TaskContext) {
				tc.Graph("inner", func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "t",
						Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 4)}}},
						Body: func(*TaskContext) { val++ }})
				})
				// The inner region's barrier has passed: val is visible.
				if val%1000 == 0 {
					t.Error("inner barrier did not wait")
				}
				val *= 1000
			})
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if st := r.ReplayStats(); st.Replays != 0 {
		t.Fatalf("nested region must not replay: %+v", st)
	}
}

// TestGraphBarrier: Graph must not return before every region task (and
// its descendants) completed, in every mode.
func TestGraphBarrier(t *testing.T) {
	for _, kind := range []replay.Kind{replay.KindOff, replay.KindOn} {
		r := New(Config{Workers: 4, Debug: true, Replay: kind})
		d := r.NewData("x", 4, 8)
		var done atomic.Int64
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < 4; it++ {
				tc.Graph("b", func(tc *TaskContext) {
					for i := 0; i < 8; i++ {
						i := i
						tc.Submit(TaskSpec{Label: "t",
							Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(int64(i%4), int64(i%4)+1)}}},
							Body: func(*TaskContext) {
								time.Sleep(100 * time.Microsecond)
								done.Add(1)
							}})
					}
				})
				if got, want := done.Load(), int64((it+1)*8); got != want {
					t.Fatalf("kind %v iter %d: %d tasks done at barrier, want %d", kind, it, got, want)
				}
			}
		})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
	}
}

// TestGraphVirtualInline: virtual mode runs the body inline with no
// recording.
func TestGraphVirtualInline(t *testing.T) {
	r := New(Config{Workers: 2, Virtual: true})
	d := r.NewData("x", 4, 8)
	var n int
	r.Run(func(tc *TaskContext) {
		tc.Graph("v", func(tc *TaskContext) {
			tc.Submit(TaskSpec{Label: "t",
				Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 4)}}},
				Body: func(*TaskContext) { n++ }})
		})
	})
	if n != 1 {
		t.Fatalf("task ran %d times, want 1", n)
	}
	if st := r.ReplayStats(); st != (replay.Stats{}) {
		t.Fatalf("virtual mode must not record: %+v", st)
	}
}

// TestGraphThrottled: replayed admissions must respect the open-task
// window exactly like live ones (reserve/refund/cascade accounting stays
// balanced through both paths).
func TestGraphThrottled(t *testing.T) {
	for _, kind := range []replay.Kind{replay.KindOff, replay.KindOn} {
		r := New(Config{Workers: 2, ThrottleOpenTasks: 2, Debug: true, Replay: kind})
		d := r.NewData("x", 16, 8)
		var runs atomic.Int64
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < 4; it++ {
				tc.Graph("th", func(tc *TaskContext) {
					for i := int64(0); i < 16; i++ {
						i := i
						tc.Submit(TaskSpec{Label: "t",
							Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(i%8, i%8+1)}}},
							Body: func(*TaskContext) { runs.Add(1) }})
					}
				})
			}
		})
		if err != nil {
			t.Fatalf("kind %v: run failed: %v", kind, err)
		}
		if runs.Load() != 64 {
			t.Fatalf("kind %v: %d runs, want 64", kind, runs.Load())
		}
	}
}

// TestReplayW1Parity is the uncontended regression guard (mirrors
// TestSchedW1Parity and friends): replaying a region at w=1 must not cost
// materially more than the live engine — the whole point of the frozen
// graph is to be cheaper.
func TestReplayW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	if raceEnabledCore {
		t.Skip("timing guard; race instrumentation skews the comparison")
	}
	const tiles = 6 // 6x6 wavefront
	const iters = 300
	const trials = 5
	sweep := func(kind replay.Kind) time.Duration {
		r := New(Config{Workers: 1, Replay: kind})
		d := r.NewData("a", tiles*tiles, 8)
		blk := func(i, j int64) Interval {
			if i < 0 || j < 0 || i >= tiles || j >= tiles {
				return Interval{}
			}
			k := i*tiles + j
			return iv(k, k+1)
		}
		start := time.Now()
		r.Run(func(tc *TaskContext) {
			for it := 0; it < iters; it++ {
				tc.Graph("gs", func(tc *TaskContext) {
					for i := int64(0); i < tiles; i++ {
						for j := int64(0); j < tiles; j++ {
							deps := []Dep{{Data: d, Type: InOut, Ivs: []Interval{blk(i, j)}}}
							for _, nb := range []Interval{blk(i-1, j), blk(i, j-1), blk(i, j+1), blk(i+1, j)} {
								if !nb.Empty() {
									deps = append(deps, Dep{Data: d, Type: In, Ivs: []Interval{nb}})
								}
							}
							tc.Submit(TaskSpec{Label: "tile", Deps: deps, Body: func(*TaskContext) {}})
						}
					}
				})
			}
		})
		return time.Since(start)
	}
	best := map[replay.Kind]time.Duration{replay.KindOff: 1<<63 - 1, replay.KindOn: 1<<63 - 1}
	for trial := 0; trial < trials; trial++ {
		for _, kind := range []replay.Kind{replay.KindOff, replay.KindOn} {
			runtime.GC()
			if dur := sweep(kind); dur < best[kind] {
				best[kind] = dur
			}
		}
	}
	if f := float64(best[replay.KindOn]) / float64(best[replay.KindOff]); f > 1.5 {
		t.Errorf("replay w=1: %.2fx slower than live (%v vs %v); the frozen-graph path regressed",
			f, best[replay.KindOn], best[replay.KindOff])
	} else {
		t.Logf("replay w=1: %.2fx of live (%v vs %v)", float64(best[replay.KindOn])/float64(best[replay.KindOff]),
			best[replay.KindOn], best[replay.KindOff])
	}
}
