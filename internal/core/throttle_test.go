package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/deps"
	"repro/internal/sched"
	"repro/internal/throttle"
)

// throttleImpls are the window implementations every throttle test runs
// under: the mutex+cond reference and the sharded token bucket.
var throttleImpls = []throttle.Kind{throttle.KindLocked, throttle.KindSharded}

// TestThrottleNoDeadlockWithWeakNesting is a regression test: the throttle
// window must count only dependency-ready tasks. If it counted every
// instantiated task, this program could deadlock — a child of the second
// weak outer task waits on fragments that release only when the first
// outer task's body finishes, while that body is blocked in the throttle
// because the waiting child fills the window.
func TestThrottleNoDeadlockWithWeakNesting(t *testing.T) {
	for _, impl := range throttleImpls {
		t.Run(impl.String(), func(t *testing.T) {
			for iter := 0; iter < 20; iter++ {
				for _, workers := range []int{1, 2, 4} {
					rt := New(Config{Workers: workers, ThrottleOpenTasks: 1, ThrottleImpl: impl})
					d := rt.NewData("x", 100, 8)
					var ran atomic.Int64
					outer := func(lbl string) TaskSpec {
						return TaskSpec{
							Label:    lbl,
							WeakWait: true,
							Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
							Body: func(tc *TaskContext) {
								for i := int64(0); i < 4; i++ {
									tc.Submit(TaskSpec{
										Label: lbl + "-leaf",
										Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: i * 25, Hi: (i + 1) * 25}}}},
										Body:  func(*TaskContext) { ran.Add(1) },
									})
								}
							},
						}
					}
					rt.Run(func(tc *TaskContext) {
						tc.Submit(outer("t1"))
						tc.Submit(outer("t2"))
					})
					if got := ran.Load(); got != 8 {
						t.Fatalf("workers=%d: ran %d leaves, want 8", workers, got)
					}
				}
			}
		})
	}
}

// TestThrottleWindowBoundsReadyBacklog checks the throttle actually bounds
// the ready backlog: with a window of 4 and slow chain-free tasks, the
// scheduler queue length can never exceed the window.
func TestThrottleWindowBoundsReadyBacklog(t *testing.T) {
	const window = 4
	for _, impl := range throttleImpls {
		t.Run(impl.String(), func(t *testing.T) {
			rt := New(Config{Workers: 2, ThrottleOpenTasks: window, ThrottleImpl: impl})
			var maxOpen atomic.Int64
			rt.Run(func(tc *TaskContext) {
				for i := 0; i < 200; i++ {
					tc.Submit(TaskSpec{Label: "t", Body: func(*TaskContext) {
						if o := rt.open.Load(); o > maxOpen.Load() {
							maxOpen.Store(o)
						}
					}})
				}
			})
			// The submitter may overshoot by one (check-then-submit), and the
			// two running tasks are already out of the window.
			if maxOpen.Load() > window+1 {
				t.Fatalf("ready backlog reached %d, want <= %d", maxOpen.Load(), window+1)
			}
		})
	}
}

// TestThrottleImplAutoResolution checks the kind plumbing: Auto builds the
// sharded window in real mode, virtual mode builds none, and an
// unthrottled runtime builds none.
func TestThrottleImplAutoResolution(t *testing.T) {
	if rt := New(Config{Workers: 2, ThrottleOpenTasks: 8}); rt.thr == nil {
		t.Error("throttled real-mode runtime has no window")
	} else if rt.thr.Limit() != 8 {
		t.Errorf("window limit = %d, want 8", rt.thr.Limit())
	}
	if rt := New(Config{Workers: 2, ThrottleOpenTasks: 8, Virtual: true}); rt.thr != nil {
		t.Error("virtual-mode runtime built a throttle window")
	}
	if rt := New(Config{Workers: 2}); rt.thr != nil {
		t.Error("unthrottled runtime built a throttle window")
	}
}

// TestThrottleStatsExposed checks the runtime surfaces the window's
// diagnostic counters: a contended sharded window must report borrows (the
// token-bucket batch refills that amortize the global balance traffic).
func TestThrottleStatsExposed(t *testing.T) {
	rt := New(Config{Workers: 4, ThrottleOpenTasks: 64, ThrottleImpl: throttle.KindSharded})
	rt.Run(func(tc *TaskContext) {
		for i := 0; i < 500; i++ {
			tc.Submit(TaskSpec{Label: "t", Body: func(*TaskContext) {}})
		}
	})
	if st := rt.ThrottleStats(); st.Borrows == 0 {
		t.Errorf("sharded window reported no borrows: %+v", st)
	}
	if st := New(Config{Workers: 2}).ThrottleStats(); st != (throttle.Stats{}) {
		t.Errorf("unthrottled runtime reported non-zero throttle stats: %+v", st)
	}
}

// TestThrottleShardedStackStress combines every sharded subsystem — the
// per-data-object dependency engine, the work-stealing ready pool, and the
// token-bucket throttle — under a tight window with nested weak tasks,
// dependency chains (deferred children exercising the Refund path), and
// in-body taskwaits (worker-identity churn across the throttle's token
// round-trip). Run with -race this is the integration stress for the
// sharded runtime stack.
func TestThrottleShardedStackStress(t *testing.T) {
	iters, outers := 30, 8
	if testing.Short() {
		iters, outers = 6, 6
	}
	for iter := 0; iter < iters; iter++ {
		for _, window := range []int{1, 3, 16} {
			rt := New(Config{
				Workers:           4,
				ThrottleOpenTasks: window,
				ThrottleImpl:      throttle.KindSharded,
				DepEngine:         deps.EngineSharded,
				ReadyPool:         sched.PoolStealing,
				Debug:             true,
			})
			d := rt.NewData("x", int64(outers*64), 8)
			var ran atomic.Int64
			err := rt.RunChecked(func(tc *TaskContext) {
				for o := 0; o < outers; o++ {
					lo := int64(o * 64)
					tc.Submit(TaskSpec{
						Label:    "outer",
						WeakWait: true,
						Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: lo, Hi: lo + 64}}}},
						Body: func(tc *TaskContext) {
							// A serial chain: every leaf after the first is
							// deferred at submit (Refund path), then readied
							// by a completion cascade (overdraw path).
							for i := int64(0); i < 6; i++ {
								tc.Submit(TaskSpec{
									Label: "leaf",
									Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: lo, Hi: lo + 64}}}},
									Body:  func(*TaskContext) { ran.Add(1) },
								})
							}
							if tc.Depth()%2 == 1 {
								tc.Taskwait()
							}
						},
					})
				}
			})
			if err != nil {
				t.Fatalf("window=%d: %v", window, err)
			}
			if got, want := ran.Load(), int64(outers*6); got != want {
				t.Fatalf("window=%d: ran %d leaves, want %d", window, got, want)
			}
			if st := rt.ThrottleStats(); window == 1 && st.Parks == 0 && iter == 0 {
				t.Logf("window=1 run recorded no parks (timing-dependent)")
			}
			ran.Store(0)
		}
	}
}
