package core

import (
	"sync/atomic"
	"testing"
)

// TestThrottleNoDeadlockWithWeakNesting is a regression test: the throttle
// window must count only dependency-ready tasks. If it counted every
// instantiated task, this program could deadlock — a child of the second
// weak outer task waits on fragments that release only when the first
// outer task's body finishes, while that body is blocked in the throttle
// because the waiting child fills the window.
func TestThrottleNoDeadlockWithWeakNesting(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		for _, workers := range []int{1, 2, 4} {
			rt := New(Config{Workers: workers, ThrottleOpenTasks: 1})
			d := rt.NewData("x", 100, 8)
			var ran atomic.Int64
			outer := func(lbl string) TaskSpec {
				return TaskSpec{
					Label:    lbl,
					WeakWait: true,
					Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
					Body: func(tc *TaskContext) {
						for i := int64(0); i < 4; i++ {
							tc.Submit(TaskSpec{
								Label: lbl + "-leaf",
								Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: i * 25, Hi: (i + 1) * 25}}}},
								Body:  func(*TaskContext) { ran.Add(1) },
							})
						}
					},
				}
			}
			rt.Run(func(tc *TaskContext) {
				tc.Submit(outer("t1"))
				tc.Submit(outer("t2"))
			})
			if got := ran.Load(); got != 8 {
				t.Fatalf("workers=%d: ran %d leaves, want 8", workers, got)
			}
		}
	}
}

// TestThrottleWindowBoundsReadyBacklog checks the throttle actually bounds
// the ready backlog: with a window of 4 and slow chain-free tasks, the
// scheduler queue length can never exceed the window.
func TestThrottleWindowBoundsReadyBacklog(t *testing.T) {
	const window = 4
	rt := New(Config{Workers: 2, ThrottleOpenTasks: window})
	var maxOpen atomic.Int64
	rt.Run(func(tc *TaskContext) {
		for i := 0; i < 200; i++ {
			tc.Submit(TaskSpec{Label: "t", Body: func(*TaskContext) {
				if o := rt.open.Load(); o > maxOpen.Load() {
					maxOpen.Store(o)
				}
			}})
		}
	})
	// The submitter may overshoot by one (check-then-submit), and the two
	// running tasks are already out of the window.
	if maxOpen.Load() > window+1 {
		t.Fatalf("ready backlog reached %d, want <= %d", maxOpen.Load(), window+1)
	}
}
