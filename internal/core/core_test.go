package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/sched"
)

func iv(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// TestRunEmpty: a root body with no tasks completes.
func TestRunEmpty(t *testing.T) {
	r := New(Config{Workers: 2})
	ran := false
	r.Run(func(tc *TaskContext) { ran = true })
	if !ran {
		t.Fatal("root body did not run")
	}
}

// TestDependencyOrdering: a chain of dependent increments must execute in
// order even with many workers.
func TestDependencyOrdering(t *testing.T) {
	r := New(Config{Workers: 8})
	d := r.NewData("x", 1, 8)
	var val int64
	const n = 100
	r.Run(func(tc *TaskContext) {
		for i := 0; i < n; i++ {
			expect := int64(i)
			tc.Submit(TaskSpec{
				Label: "inc",
				Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}},
				Body: func(tc *TaskContext) {
					if !atomic.CompareAndSwapInt64(&val, expect, expect+1) {
						t.Errorf("task %d ran out of order (val=%d)", expect, atomic.LoadInt64(&val))
					}
				},
			})
		}
	})
	if val != n {
		t.Fatalf("val = %d, want %d", val, n)
	}
}

// TestIndependentTasksRunInParallel: two tasks with disjoint deps can
// overlap; verified with a rendezvous that deadlocks if serialized.
func TestIndependentTasksRunInParallel(t *testing.T) {
	r := New(Config{Workers: 2})
	d := r.NewData("x", 2, 8)
	c1 := make(chan struct{})
	c2 := make(chan struct{})
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "a",
			Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}},
			Body: func(*TaskContext) { close(c1); <-c2 }})
		tc.Submit(TaskSpec{Label: "b",
			Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(1, 2)}}},
			Body: func(*TaskContext) { close(c2); <-c1 }})
	})
}

// TestTaskwait: children complete before Taskwait returns.
func TestTaskwait(t *testing.T) {
	r := New(Config{Workers: 4})
	var done atomic.Int64
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 20; i++ {
			tc.Submit(TaskSpec{Label: "w", Body: func(*TaskContext) { done.Add(1) }})
		}
		tc.Taskwait()
		if done.Load() != 20 {
			t.Errorf("Taskwait returned with %d of 20 children done", done.Load())
		}
		// A second wave after the wait must also be awaited by Run's
		// implicit wait.
		for i := 0; i < 5; i++ {
			tc.Submit(TaskSpec{Label: "w2", Body: func(*TaskContext) { done.Add(1) }})
		}
	})
	if done.Load() != 25 {
		t.Fatalf("done = %d, want 25", done.Load())
	}
}

// TestNestedTaskwait: taskwait waits the direct children's full subtrees.
func TestNestedTaskwait(t *testing.T) {
	r := New(Config{Workers: 4})
	var leaves atomic.Int64
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "mid", Body: func(tc *TaskContext) {
			for i := 0; i < 10; i++ {
				tc.Submit(TaskSpec{Label: "leaf", Body: func(*TaskContext) { leaves.Add(1) }})
			}
		}})
		tc.Taskwait()
		if leaves.Load() != 10 {
			t.Errorf("Taskwait returned before grandchildren: %d of 10", leaves.Load())
		}
	})
}

// TestWeakwaitEarlyRelease reproduces listing 2 with real concurrency: T1
// (weakwait) spawns T1.1 (fast) and T1.2 (blocked); T2 (in a) must run
// while T1.2 is still blocked.
func TestWeakwaitEarlyRelease(t *testing.T) {
	r := New(Config{Workers: 4})
	d := r.NewData("ab", 2, 8)
	t12block := make(chan struct{})
	t2ran := make(chan struct{})
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "T1",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 2)}}},
			Body: func(tc *TaskContext) {
				tc.Submit(TaskSpec{Label: "T1.1",
					Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}},
					Body: func(*TaskContext) {}})
				tc.Submit(TaskSpec{Label: "T1.2",
					Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(1, 2)}}},
					Body: func(*TaskContext) { <-t12block }})
			},
		})
		tc.Submit(TaskSpec{Label: "T2",
			Deps: []Dep{{Data: d, Type: In, Ivs: []Interval{iv(0, 1)}}},
			Body: func(*TaskContext) { close(t2ran) }})
		// Unblock T1.2 only after T2 has run: if the runtime wrongly
		// deferred T2 until all of T1's subtree finished, this deadlocks.
		<-t2ran
		close(t12block)
	})
	st := r.DepStats()
	if st.Handovers == 0 {
		t.Fatal("expected weakwait hand-overs")
	}
}

// TestWeakDepsParallelInstantiation reproduces the key property of §VI: an
// outer task with only weak deps starts (and creates subtasks) while its
// predecessor still runs; its subtask then waits for the predecessor.
func TestWeakDepsParallelInstantiation(t *testing.T) {
	r := New(Config{Workers: 4})
	d := r.NewData("a", 1, 8)
	block := make(chan struct{})
	instantiated := make(chan struct{})
	var order []string
	var mu chanLock
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "W",
			Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}},
			Body: func(*TaskContext) {
				<-block
				mu.Lock()
				order = append(order, "W")
				mu.Unlock()
			}})
		tc.Submit(TaskSpec{Label: "P",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{iv(0, 1)}}},
			Body: func(tc *TaskContext) {
				tc.Submit(TaskSpec{Label: "C",
					Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}},
					Body: func(*TaskContext) {
						mu.Lock()
						order = append(order, "C")
						mu.Unlock()
					}})
				close(instantiated)
			}})
		// P must instantiate C while W is still blocked.
		<-instantiated
		close(block)
	})
	if len(order) != 2 || order[0] != "W" || order[1] != "C" {
		t.Fatalf("order = %v, want [W C]", order)
	}
}

// chanLock is a tiny mutex built on a channel (keeps the test dependency-free).
type chanLock struct{ ch chan struct{} }

func (l *chanLock) Lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) Unlock() { <-l.ch }

// TestReleaseDirectiveRealMode: releasing part of the depend set mid-body
// unblocks a successor while the task still runs.
func TestReleaseDirectiveRealMode(t *testing.T) {
	r := New(Config{Workers: 2})
	d := r.NewData("x", 10, 8)
	succRan := make(chan struct{})
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "T1",
			Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 10)}}},
			Body: func(tc *TaskContext) {
				tc.Release(Dep{Data: d, Ivs: []Interval{iv(5, 10)}})
				<-succRan // deadlocks if the release did not propagate
			}})
		tc.Submit(TaskSpec{Label: "T2",
			Deps: []Dep{{Data: d, Type: In, Ivs: []Interval{iv(5, 10)}}},
			Body: func(*TaskContext) { close(succRan) }})
	})
}

// TestThrottleBound: the live-task count never exceeds the configured bound
// plus the submitting root.
func TestThrottleBound(t *testing.T) {
	const lim = 8
	r := New(Config{Workers: 2, ThrottleOpenTasks: lim})
	var peak atomic.Int64
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 200; i++ {
			tc.Submit(TaskSpec{Label: "t", Body: func(*TaskContext) {
				c := tc.rt.open.Load()
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
			}})
		}
	})
	if peak.Load() > lim+1 {
		t.Fatalf("open tasks peaked at %d, throttle %d", peak.Load(), lim)
	}
}

// TestFlopsAndTaskCount accounting.
func TestFlopsAndTaskCount(t *testing.T) {
	r := New(Config{Workers: 2})
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 10; i++ {
			tc.Submit(TaskSpec{Label: "f", Flops: 7, Body: func(*TaskContext) {}})
		}
	})
	if r.Flops() != 70 {
		t.Fatalf("Flops = %d, want 70", r.Flops())
	}
	if r.TaskCount() != 10 {
		t.Fatalf("TaskCount = %d, want 10", r.TaskCount())
	}
}

// TestTraceRecordsSpans: real-mode tracing produces spans and a plausible
// effective parallelism.
func TestTraceRecordsSpans(t *testing.T) {
	r := New(Config{Workers: 2, EnableTrace: true})
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 16; i++ {
			tc.Submit(TaskSpec{Label: "t", Kind: "k", Body: func(*TaskContext) {
				for s := 0; s < 1000; s++ {
					_ = s * s
				}
			}})
		}
	})
	spans := r.Tracer().Spans()
	if len(spans) != 16 {
		t.Fatalf("got %d spans, want 16", len(spans))
	}
	ep := r.EffectiveParallelism()
	if ep <= 0 || ep > 2.01 {
		t.Fatalf("EffectiveParallelism = %f, want in (0, 2]", ep)
	}
}

// --- Virtual mode ---

// TestVirtualIndependentMakespan: n independent unit tasks on w cores take
// ceil(n/w) virtual time.
func TestVirtualIndependentMakespan(t *testing.T) {
	r := New(Config{Workers: 2, Virtual: true})
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 4; i++ {
			tc.Submit(TaskSpec{Label: "t", Cost: 1})
		}
	})
	if r.VirtualTime() != 2 {
		t.Fatalf("makespan = %d, want 2", r.VirtualTime())
	}
	if ep := r.EffectiveParallelism(); ep != 2 {
		t.Fatalf("EP = %f, want 2", ep)
	}
}

// TestVirtualChainMakespan: a dependent chain serializes.
func TestVirtualChainMakespan(t *testing.T) {
	r := New(Config{Workers: 4, Virtual: true})
	d := r.NewData("x", 1, 8)
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 5; i++ {
			tc.Submit(TaskSpec{Label: "c", Cost: 3,
				Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1)}}}})
		}
	})
	if r.VirtualTime() != 15 {
		t.Fatalf("makespan = %d, want 15", r.VirtualTime())
	}
}

// TestVirtualWeakwaitPipelines: the structural benefit of §V/§VI in virtual
// time. Four outer stages each spawn 3 independent lane subtasks (cost 10)
// on 2 cores. With strong outer deps and bulk release (nest-depend), each
// stage runs alone: 3 tasks on 2 cores = 20 per stage, ~80+ total. With
// weak deps + weakwait, all 12 subtasks pipeline lane-wise: 120 units of
// work on 2 cores ≈ 60. The crossover is exactly what Figures 5 and 6 show.
func TestVirtualWeakwaitPipelines(t *testing.T) {
	const lanes, stages = 3, 4
	build := func(weak bool) *Runtime {
		// NoHandoff isolates the dependency-structure effect from the
		// locality hand-off policy (which trades breadth for cache reuse).
		r := New(Config{Workers: 2, Virtual: true, NoHandoff: true})
		d := r.NewData("x", lanes, 8)
		r.Run(func(tc *TaskContext) {
			for s := 0; s < stages; s++ {
				tc.Submit(TaskSpec{
					Label:    "stage",
					WeakWait: weak,
					Deps:     []Dep{{Data: d, Type: InOut, Weak: weak, Ivs: []Interval{iv(0, lanes)}}},
					Body: func(tc *TaskContext) {
						for l := int64(0); l < lanes; l++ {
							tc.Submit(TaskSpec{Label: "lane", Cost: 10,
								Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(l, l+1)}}}})
						}
					},
				})
			}
		})
		return r
	}
	weak := build(true)
	strong := build(false)
	if weak.VirtualTime() >= strong.VirtualTime() {
		t.Fatalf("weak makespan %d should beat strong %d", weak.VirtualTime(), strong.VirtualTime())
	}
	if strong.VirtualTime() < 75 {
		t.Fatalf("strong variant should serialize the stages: %d", strong.VirtualTime())
	}
	if weak.VirtualTime() > 70 {
		t.Fatalf("weak variant should pipeline the lanes: %d", weak.VirtualTime())
	}
}

// TestVirtualDeterminism: identical programs produce identical makespans.
func TestVirtualDeterminism(t *testing.T) {
	run := func() int64 {
		r := New(Config{Workers: 3, Virtual: true, Policy: sched.LIFO})
		d := r.NewData("x", 16, 8)
		r.Run(func(tc *TaskContext) {
			for i := int64(0); i < 16; i++ {
				i := i
				tc.Submit(TaskSpec{Label: "t", Cost: 1 + i%3,
					Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(i/2, i/2+1)}}}})
			}
		})
		return r.VirtualTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual runs diverged: %d vs %d", a, b)
	}
}

// TestVirtualCacheLocality: with one data region bounced between tasks, the
// simulated cache hits when the successor stays on the same core.
func TestVirtualCacheLocality(t *testing.T) {
	cache := cachesim.Config{LineBytes: 64, Ways: 4, Sets: 64} // 16 KiB
	r := New(Config{Workers: 2, Virtual: true, Cache: &cache})
	d := r.NewData("x", 1024, 8) // 8 KiB, fits
	r.Run(func(tc *TaskContext) {
		for i := 0; i < 10; i++ {
			tc.Submit(TaskSpec{Label: "t", Cost: 5,
				Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 1024)}}}})
		}
	})
	// With hand-off, every successor runs on the same core: only the first
	// pass misses.
	if ratio := r.CacheMissRatio(); ratio > 0.15 {
		t.Fatalf("hand-off should keep the chain warm: miss ratio %f", ratio)
	}
}

// TestVirtualTaskwaitPanics: Taskwait is a real-mode facility.
func TestVirtualTaskwaitPanics(t *testing.T) {
	r := New(Config{Workers: 1, Virtual: true})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "t", Body: func(tc *TaskContext) { tc.Taskwait() }})
	})
}

// TestRunTwicePanics: a Runtime is single-run.
func TestRunTwicePanics(t *testing.T) {
	r := New(Config{Workers: 1})
	r.Run(func(*TaskContext) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Run(func(*TaskContext) {})
}
