package core

import (
	"sync"

	"repro/internal/chaos"
	"repro/internal/deps"
	"repro/internal/replay"
)

// This file implements graph regions — the record-and-replay taskgraph
// cache (Config.Replay, internal/replay). A region names a task graph the
// program submits repeatedly (the sweep body of an iterative stencil, a
// repeated factorization): its first execution runs through the live
// dependency engine while recording every submission's dependency
// fingerprint, then seals a frozen edge set; subsequent executions whose
// submissions match the fingerprint stream skip the engine entirely and
// drive per-task atomic predecessor countdowns feeding the ready pools
// directly.
//
// The lifecycle per region name is record → validate → replay → …, with
// two escape hatches that keep replay an optimization rather than a
// semantics change:
//
//   - a union guard re-checks the region's external inputs on every
//     replay attempt: one engine access over the union of everything the
//     recorded tasks touch, registered in the owner's domain before the
//     region starts. If it is not immediately satisfied, an external
//     producer is still running and the execution falls back to the live
//     engine (Stats.Fallbacks);
//   - a fingerprint mismatch mid-region (changed deps, intervals, or task
//     count) drains the tasks already admitted by the frozen graph,
//     invalidates the recording, and finishes the region live
//     (Stats.Invalidations); the next execution re-records.
//
// Shapes the frozen completion-edge set cannot express — weakwait tasks,
// weak depend entries, nested submissions, release directives inside the
// region — are detected during recording and marked ineligible: such
// regions keep validating (so a shape change still re-records) but always
// execute live.
//
// Blocking taskwaits interact with recording in two directions (decided in
// markRegionTaskwait, taskwait.go, and tested in both): an owner-level
// taskwait between submissions keeps the recording replay-eligible — the
// barrier is owner body code re-executed identically by every execution,
// live or replayed (child counters are maintained the same way under
// replay, via admitChild/completeTask), so the frozen edge set need not
// express it; the recorder counts it as the trace of the continuation edge
// (Recording.OwnerWaits). A blocking taskwait inside a region *member*
// task implies nested submissions and marks the recording ineligible. The
// region's own end barrier is neither: Graph clears t.greg before its
// final Taskwait.

// graphMode is the execution mode of one region run.
type graphMode uint8

const (
	// gmRecord: first execution — live engine plus recording.
	gmRecord graphMode = iota
	// gmLive: live engine with fingerprint validation (ineligible
	// recording, guard fallback, or post-invalidation remainder).
	gmLive
	// gmReplay: frozen-graph execution, dependency engine bypassed.
	gmReplay
)

// graphRegion is the per-name cache slot: the sealed recording and the
// single-execution gate. Regions live for the runtime's lifetime.
type graphRegion struct {
	name string
	lane int // replay node-pool lane hint
	// busy gates the region to one execution at a time; a concurrent
	// Graph call with the same name runs live and unvalidated.
	busy sync.Mutex
	held bool
	rec  *replay.Recording // accessed only while busy is held
}

// graphRun is the state of one region execution, reachable from the owner
// task (greg) and from every task submitted into the region.
type graphRun struct {
	region *graphRegion
	owner  *Task
	mode   graphMode

	// Recording state (gmRecord).
	recorder *replay.Recorder
	edgeMu   sync.Mutex // serializes the engine edge hook into the recorder

	// Replay state (gmReplay): the sealed recording and one armed
	// countdown node per recorded task, drawn from the runtime's pool.
	frozen *replay.Recording
	nodes  []*replay.Node

	// Validation cursor: submissions seen so far, compared against the
	// recording in gmLive and gmReplay. mismatch poisons the recording
	// (it is dropped at region end, or immediately at a replay fallback).
	submitted int
	mismatch  bool
	fpBuf     replay.TaskFP // scratch for fingerprint comparison
}

// regionFor returns (creating if needed) the named region slot.
func (r *Runtime) regionFor(name string) *graphRegion {
	r.gregMu.Lock()
	defer r.gregMu.Unlock()
	if r.gregs == nil {
		r.gregs = make(map[string]*graphRegion)
	}
	g := r.gregs[name]
	if g == nil {
		g = &graphRegion{name: name, lane: len(r.gregs)}
		r.gregs[name] = g
	}
	return g
}

// Graph executes body as a named graph region: every task the body submits
// (from this task) belongs to the region, and Graph returns only after all
// of them — and, transitively, their descendants — have completed (the
// region barrier; the caller's worker token is yielded while blocked, as
// in Taskwait). Regions are the unit of the record-and-replay cache
// (Config.Replay): the first execution of a name records the submitted
// graph, and later executions that submit an identical dependency shape
// replay it with per-task predecessor countdowns instead of the dependency
// engine. Replay never changes semantics — a changed shape invalidates the
// recording mid-region and falls back to the live engine, an unfinished
// external producer of region inputs forces a live execution, and shapes
// the frozen graph cannot express (weakwait, weak entries, nested
// submissions, release directives) always run live. Region names are
// global to the runtime; the same name must describe the same logical
// graph. In virtual mode Graph runs the body inline with no barrier and no
// recording.
func (tc *TaskContext) Graph(name string, body func(tc *TaskContext)) {
	r := tc.rt
	if body == nil {
		return
	}
	if r.v != nil {
		body(tc)
		return
	}
	t := tc.task
	if t.final {
		// Included region: every submission runs inline in program order,
		// which trivially satisfies both the dependencies and the barrier.
		body(tc)
		return
	}
	if t.greg != nil {
		// Nested region (the task is already inside an active region, as
		// owner or member): the frozen graph cannot express it, so the
		// inner region runs unrecorded — still with its barrier.
		if t.greg.mode == gmRecord && t.gidx < 0 {
			t.greg.recorder.MarkIneligible("nested graph region")
		}
		body(tc)
		tc.Taskwait()
		return
	}
	if !r.replayOn {
		body(tc)
		tc.Taskwait()
		return
	}
	region := r.regionFor(name)
	region.busy.Lock()
	if region.held {
		// Same-name region already executing on another task: run live.
		region.busy.Unlock()
		body(tc)
		tc.Taskwait()
		return
	}
	region.held = true
	region.busy.Unlock()

	run := &graphRun{region: region, owner: t}
	switch {
	case region.rec == nil:
		run.mode = gmRecord
		run.recorder = replay.NewRecorder()
		r.recordingStarted()
	default:
		eligible, _ := region.rec.Eligible()
		if eligible && r.graphGuardReady(tc, region.rec) {
			run.mode = gmReplay
			run.frozen = region.rec
			run.nodes = r.replayPool.Get(run.nodes, region.rec, region.lane)
		} else {
			run.mode = gmLive
			r.repStats.fallbacks.Add(1)
		}
	}
	t.greg, t.gidx = run, -1

	// A panic unwinding out of the body skips the epilogue below; it must
	// still drain the region to its barrier (admitted tasks reference the
	// pooled countdown nodes until they complete) and release the region
	// slot, and it poisons the recording (abortRegion). The panic itself
	// keeps propagating to the task's recovery point.
	completed := false
	defer func() {
		if !completed {
			r.abortRegion(tc, run)
		}
	}()

	body(tc)

	// Region barrier: wait for every task submitted into the region (a
	// full taskwait — strictly stronger, which the union guard's soundness
	// argument relies on: when Graph returns, everything the region
	// touched has completed and released).
	t.greg = nil // submissions after the barrier belong to no region
	tc.Taskwait()
	completed = true

	// A panic in a *member* task (recovered in its invokeBody, so the
	// owner body returned normally) also poisons the region: bodies were
	// skipped from the failure point on, so the submission stream this
	// execution validated — or recorded — is not the program's real shape.
	failed := r.failed.Load()
	switch run.mode {
	case gmRecord:
		r.recordingStopped()
		if failed {
			break // a truncated recording never seals; re-record next time
		}
		region.rec = run.recorder.Seal()
		r.repStats.records.Add(1)
	case gmReplay:
		r.replayPool.Put(run.nodes, region.lane)
		run.nodes = nil
		if run.submitted != run.frozen.Len() || failed {
			// The body submitted a prefix of the recording (fewer tasks):
			// every admitted task had all its predecessors in the prefix
			// (edges point backwards in submission order), so the run was
			// correct — but the shape changed, so the recording goes.
			r.invalidate(region)
		} else {
			r.repStats.replays.Add(1)
		}
	case gmLive:
		if region.rec != nil && (run.mismatch || run.submitted != region.rec.Len() || failed) {
			r.invalidate(region)
		}
	}
	region.busy.Lock()
	region.held = false
	region.busy.Unlock()
}

// abortRegion is Graph's panic path: a panic is unwinding out of the
// region body (it will surface from Run once the whole graph has drained).
// The region still drains to its barrier — every admitted task references
// the run's pooled countdown nodes until it completes, and skipped bodies
// flow through the normal completion pipeline — then the region state is
// torn down with the recording poisoned in every mode: a partial recording
// never seals, and a sealed recording whose execution was interrupted
// mid-stream is invalidated (the shape was never validated to the end).
func (r *Runtime) abortRegion(tc *TaskContext, run *graphRun) {
	region := run.region
	tc.task.greg = nil
	tc.Taskwait()
	switch run.mode {
	case gmRecord:
		r.recordingStopped()
	case gmReplay:
		r.replayPool.Put(run.nodes, region.lane)
		run.nodes = nil
		r.invalidate(region)
	case gmLive:
		// A replay fallback that already invalidated left rec nil; only a
		// still-sealed recording needs poisoning.
		if region.rec != nil {
			r.invalidate(region)
		}
	}
	region.busy.Lock()
	region.held = false
	region.busy.Unlock()
}

// invalidate drops the region's recording (the next execution re-records).
func (r *Runtime) invalidate(region *graphRegion) {
	region.rec = nil
	r.repStats.invalidations.Add(1)
}

// submit routes one owner submission through the region. It returns true
// when the region consumed the submission (replay admission); false lets
// Submit continue on the live path.
func (g *graphRun) submit(tc *TaskContext, spec TaskSpec) bool {
	r := tc.rt
	switch g.mode {
	case gmRecord:
		specs := r.convertDeps(spec.Deps, tc.worker)
		idx := g.recorder.OnSubmit(spec.WeakWait, spec.Final, specs)
		g.submitted++
		r.submitLive(tc, spec, g, idx)
		return true
	case gmReplay:
		if g.validateNext(r, tc, &spec) {
			g.replaySubmit(tc, spec, int32(g.submitted-1))
			return true
		}
		// Mismatch mid-region: drain the tasks the frozen graph already
		// admitted (their edges are complete within the admitted prefix),
		// drop the recording, and finish the region live.
		g.fallback(tc)
		return false
	default: // gmLive
		if g.region.rec != nil && !g.mismatch {
			if !g.validateNext(r, tc, &spec) {
				g.mismatch = true
			}
		} else {
			g.submitted++
		}
		return false
	}
}

// validateNext compares the next submission's fingerprint against the
// recording, advancing the cursor on a match.
func (g *graphRun) validateNext(r *Runtime, tc *TaskContext, spec *TaskSpec) bool {
	rec := g.frozen
	if rec == nil {
		rec = g.region.rec
	}
	if g.submitted >= rec.Len() {
		return false
	}
	if chaos.Force(chaos.ReplayInvalidate) {
		// Forced fingerprint mismatch: drive the mid-region invalidation
		// fallback (drain the admitted prefix, finish live, re-record on
		// the next execution) — transparent by design, and forcing it
		// under load proves it.
		return false
	}
	specs := r.convertDeps(spec.Deps, tc.worker)
	g.fpBuf = replay.AppendFP(g.fpBuf[:0], spec.WeakWait, spec.Final, specs)
	if !g.fpBuf.Equal(rec.Task(g.submitted).FP) {
		return false
	}
	g.submitted++
	return true
}

// fallback transitions a replaying region to live execution after a
// fingerprint mismatch: barrier over the admitted prefix, countdown nodes
// back to the pool, recording invalidated.
func (g *graphRun) fallback(tc *TaskContext) {
	r := tc.rt
	tc.Taskwait()
	r.replayPool.Put(g.nodes, g.region.lane)
	g.nodes = nil
	g.frozen = nil
	g.mode = gmLive
	r.invalidate(g.region)
}

// replaySubmit admits one task through the frozen graph: the admission
// prologue (admitChild) is the live path's, with the recorded countdown
// cell in place of dependency registration. The submission hold it
// releases makes the attached task visible to predecessor completions;
// whichever decrement fires the countdown dispatches the task.
func (g *graphRun) replaySubmit(tc *TaskContext, spec TaskSpec, idx int32) {
	r := tc.rt
	t, prepaid := r.admitChild(tc, spec)
	n := g.nodes[idx]
	t.greg, t.gidx, t.gnode = g, idx, n
	n.User = t
	if n.Dec() {
		if prepaid {
			r.windowEnterReserved()
		} else {
			r.windowEnter(1)
		}
		r.enqueue(t, tc.worker)
	} else if prepaid {
		// Deferred on recorded predecessors — it does not occupy the
		// window; its countdown-fired entry is unreserved, mirroring the
		// dependency-cascade admission of the live path.
		r.thr.Refund(tc.worker)
	}
}

// replaySuccessors delivers a completed replay task's countdown
// decrements and dispatches the successors that became ready, in one
// scheduler admission (mirroring dispatchAll).
func (r *Runtime) replaySuccessors(t *Task, worker int) {
	g := t.greg
	var ready []*Task
	ws := r.scratchFor(worker)
	if ws != nil {
		ready = ws.gready[:0]
	}
	for _, si := range t.gnode.Succs {
		sn := g.nodes[si]
		if sn.Dec() {
			ready = append(ready, sn.User.(*Task))
		}
	}
	if len(ready) > 0 {
		r.windowEnter(int64(len(ready)))
		if len(ready) == 1 {
			r.sch.Submit(ready[0], worker)
		} else {
			// The pools copy every item out of the slice before
			// SubmitBatch returns, so the scratch is immediately reusable.
			r.sch.SubmitBatch(ready, worker)
		}
	}
	if ws != nil {
		clear(ready)
		ws.gready = ready[:0]
	}
}

// nestedSubmit handles a submission from a task that is itself a region
// member. During recording the shape is marked ineligible (the frozen
// graph cannot express descendants). Under replay the submitting task has
// no engine node yet — it is created lazily here, registered with no
// dependencies, so the child's registration finds a normal (empty) parent
// domain. The orderings live mode would compute through the parent's own
// accesses are all vacuous at this point: the parent is executing, so its
// strong accesses are satisfied and create no inbound links, and shapes
// with weak accesses never replay.
func (g *graphRun) nestedSubmit(r *Runtime, t *Task) {
	// Runs on the region task's worker, concurrent with the owner and
	// with a replay run's fallback transition: g.recorder (set once at
	// run creation, itself concurrency-safe) stands in for g.mode.
	if g.recorder != nil {
		g.recorder.MarkIneligible("nested submission in region")
	}
	if t.node == nil {
		t.node = r.eng.NewNode(g.owner.node, t.spec.Label, t)
		r.eng.Register(t.node, nil)
	}
}

// recordingStarted installs the engine edge hook (shared across
// concurrently recording regions).
func (r *Runtime) recordingStarted() {
	r.recMu.Lock()
	r.recCount++
	if r.recCount == 1 {
		r.eng.SetEdgeHook(r.edgeHook)
	}
	r.recMu.Unlock()
}

// recordingStopped removes the run's claim on the edge hook.
func (r *Runtime) recordingStopped() {
	r.recMu.Lock()
	r.recCount--
	if r.recCount == 0 {
		r.eng.SetEdgeHook(nil)
	}
	r.recMu.Unlock()
}

// edgeHook receives every dependency edge the engine materializes while
// some region records, and forwards intra-region edges to that region's
// recorder for the Seal-time cross-check. Cross-domain (inbound) edges
// and edges from predecessors outside the region carry no recording:
// inbound gates are satisfied before the region barrier releases (their
// waiters ran), and outside predecessors are re-checked by the union
// guard on every replay attempt.
func (r *Runtime) edgeHook(pred, succ *deps.Node, inbound bool) {
	st, _ := succ.User.(*Task)
	if st == nil || st.greg == nil || st.gidx < 0 || st.greg.recorder == nil {
		return
	}
	if inbound {
		return
	}
	pt, _ := pred.User.(*Task)
	if pt == nil || pt.greg != st.greg || pt.gidx < 0 {
		return
	}
	g := st.greg
	g.edgeMu.Lock()
	g.recorder.OnLiveEdge(pt.gidx, st.gidx)
	g.edgeMu.Unlock()
}

// graphGuardReady registers the union guard — one strong access over
// everything the recording touches, in the owner's domain — and reports
// whether it was immediately satisfied (no external producer of region
// inputs is still pending). A satisfied guard completes on the spot,
// updating the domain history exactly as a task that wrote the union
// would; an unsatisfied guard stays pending as an ordinary
// dependency-only task, so the live-fallback region tasks registered
// after it order behind the same external producers through it.
func (r *Runtime) graphGuardReady(tc *TaskContext, rec *replay.Recording) bool {
	union := rec.Union()
	if len(union) == 0 {
		return true // no dependencies anywhere in the region
	}
	guard := r.newTask(tc.task, TaskSpec{Label: "graph-guard"}, tc.worker)
	r.live.Add(1) // internal bookkeeping task: excluded from TaskCount
	tc.task.mu.Lock()
	tc.task.children++
	tc.task.mu.Unlock()
	guard.node = r.eng.NewNode(tc.task.node, "graph-guard", guard)
	if !r.eng.Register(guard.node, union) {
		// Deferred: the guard will run (nil body) and complete through the
		// normal pipeline once the external producers release.
		return false
	}
	ready, completed := r.finishBody(guard, tc.worker)
	r.dispatchAll(ready, tc.worker)
	if completed {
		r.recycleTask(guard, tc.worker)
	}
	return true
}
