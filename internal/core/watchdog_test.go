package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// feed drives a detector with n identical samples dt apart and returns the
// first non-empty verdict.
func feed(d *stallDetector, s probeSample, dt time.Duration, n int) string {
	for i := 0; i < n; i++ {
		if reason := d.observe(s, dt); reason != "" {
			return reason
		}
	}
	return ""
}

func TestStallDetectorNamesQueuedTokenPairing(t *testing.T) {
	d := &stallDetector{bound: 10 * time.Millisecond}
	s := probeSample{queued: 3, freeTokens: 2, epochs: 7}
	reason := feed(d, s, time.Millisecond, 20)
	if reason == "" {
		t.Fatal("detector never fired on a persistent queued/free-token pairing")
	}
	for _, want := range []string{"lost wakeup", "3 queued tasks", "2 free worker tokens"} {
		if !strings.Contains(reason, want) {
			t.Errorf("reason %q does not name %q", reason, want)
		}
	}
}

func TestStallDetectorNamesAcquirerAndThrottleSignatures(t *testing.T) {
	d := &stallDetector{bound: 10 * time.Millisecond}
	reason := feed(d, probeSample{waiters: 1, freeTokens: 1}, time.Millisecond, 20)
	if !strings.Contains(reason, "1 blocked acquirers") {
		t.Errorf("acquirer signature not named: %q", reason)
	}
	d = &stallDetector{bound: 10 * time.Millisecond}
	reason = feed(d, probeSample{thrWaiters: 2, thrCredits: 1}, time.Millisecond, 20)
	if !strings.Contains(reason, "2 parked throttle reservers") ||
		!strings.Contains(reason, "1 free window credits") {
		t.Errorf("throttle signature not named: %q", reason)
	}
}

func TestStallDetectorIgnoresHealthyStates(t *testing.T) {
	// Progressing heartbeats: the pairing may persist across samples (a
	// busy pool shows transient contradictions constantly) but progress
	// resets suspicion every time.
	d := &stallDetector{bound: 5 * time.Millisecond}
	for i := 0; i < 100; i++ {
		s := probeSample{queued: 5, freeTokens: 1, epochs: uint64(i)}
		if reason := d.observe(s, time.Millisecond); reason != "" {
			t.Fatalf("fired despite heartbeat progress: %q", reason)
		}
	}
	// Frozen heartbeats but no stall signature: all tokens busy with
	// queued backlog (a long task body), or all idle with nothing queued.
	d = &stallDetector{bound: 5 * time.Millisecond}
	for i := 0; i < 100; i++ {
		if reason := d.observe(probeSample{queued: 9}, time.Millisecond); reason != "" {
			t.Fatalf("fired on busy-no-free-token state: %q", reason)
		}
		if reason := d.observe(probeSample{freeTokens: 4}, time.Millisecond); reason != "" {
			t.Fatalf("fired on idle-no-work state: %q", reason)
		}
	}
	// An intermittent signature (cleared before the bound elapses) never
	// accumulates enough suspicion.
	d = &stallDetector{bound: 5 * time.Millisecond}
	for i := 0; i < 100; i++ {
		s := probeSample{queued: 1, freeTokens: 1}
		if i%3 == 0 {
			s = probeSample{}
		}
		if reason := d.observe(s, time.Millisecond); reason != "" {
			t.Fatalf("fired on transient pairing: %q", reason)
		}
	}
}

// droppedKickPool wraps a real reference pool and reports one more free
// token than the pool owns — the exact post-race state a token-retire path
// that skipped its Dekker recheck would leave: the item queued, the token
// parked free, and nobody responsible for matching them.
type droppedKickPool struct {
	*sched.LockedStealing[int]
}

func (p *droppedKickPool) Probe() sched.Probe {
	pr := p.LockedStealing.Probe()
	pr.FreeTokens++
	return pr
}

// TestWatchdogSelftestSyntheticLostWakeup induces a synthetic lost wakeup
// in a reference pool and runs the real watchdog loop (the same code the
// runtime starts) against it, asserting the detector fires and names it.
func TestWatchdogSelftestSyntheticLostWakeup(t *testing.T) {
	pool := &droppedKickPool{sched.NewLockedStealing(1, func(int, int) {})}
	// Hold the only real token so the submitted item must queue; the
	// phantom free token then completes the lost-wakeup state.
	pool.Acquire()
	pool.Submit(42, -1)

	var fired atomic.Int32
	wd := newWatchdogLoop(time.Millisecond, 20*time.Millisecond,
		func() probeSample {
			p := pool.Probe()
			return probeSample{queued: p.Queued, freeTokens: p.FreeTokens, waiters: p.Waiters}
		},
		func(reason string, s probeSample) StallReport {
			return StallReport{Reason: reason, Queued: s.queued, FreeTokens: s.freeTokens}
		},
		func(*StallReport) { fired.Add(1) })
	go wd.run()
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	wd.shutdown()

	reports := wd.snapshot()
	if len(reports) == 0 {
		t.Fatal("watchdog never detected the induced lost wakeup")
	}
	rep := reports[0]
	if !strings.Contains(rep.Reason, "lost wakeup") ||
		!strings.Contains(rep.Reason, "1 queued tasks") ||
		!strings.Contains(rep.Reason, "1 free worker tokens") {
		t.Errorf("report does not name the induced state: %q", rep.Reason)
	}
	if int(fired.Load()) != len(reports) {
		t.Errorf("OnStall fired %d times for %d reports", fired.Load(), len(reports))
	}
	if s := rep.String(); !strings.Contains(s, "stall detected") {
		t.Errorf("String() rendering broken: %q", s)
	}
}

// TestWatchdogNoFalsePositives runs a busy real-mode program — nested
// submits, dependencies, taskwait, worksharing, a tight throttle — with the
// watchdog at an aggressive interval/bound and asserts zero reports.
func TestWatchdogNoFalsePositives(t *testing.T) {
	var reports atomic.Int32
	r := New(Config{
		Workers:           4,
		ThrottleOpenTasks: 8,
		Watchdog:          true,
		WatchdogInterval:  time.Millisecond,
		WatchdogBound:     50 * time.Millisecond,
		OnStall:           func(*StallReport) { reports.Add(1) },
		Debug:             true,
	})
	d := r.NewData("x", 256, 8)
	var sum atomic.Int64
	err := r.RunChecked(func(tc *TaskContext) {
		for i := 0; i < 200; i++ {
			iv := Interval{Lo: int64(i % 16), Hi: int64(i%16) + 1}
			tc.Submit(TaskSpec{
				Label: "leaf",
				Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv}}},
				Body: func(tc *TaskContext) {
					sum.Add(1)
					if tc.Depth() == 1 {
						tc.Submit(TaskSpec{Label: "nested", Body: func(*TaskContext) { sum.Add(1) }})
						tc.Taskwait()
					}
				},
			})
		}
		tc.Worksharing(WorksharingSpec{
			Label: "ws", Lo: 0, Hi: 64, Grain: 4,
			Body: func(tc *TaskContext, lo, hi int64) { sum.Add(hi - lo) },
		})
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got := reports.Load(); got != 0 {
		t.Fatalf("watchdog false-positived %d times: %v", got, r.StallReports())
	}
	if got := r.StallReports(); len(got) != 0 {
		t.Fatalf("unexpected stall reports: %v", got)
	}
	if sum.Load() != 200+200+64 {
		t.Fatalf("workload miscounted: %d", sum.Load())
	}
	// Heartbeats must actually have been beating (the negative above would
	// be vacuous if beat were never wired).
	if r.epochSum() == 0 {
		t.Fatal("no heartbeat ever recorded")
	}
}

// TestWatchdogDisabled asserts the zero-config path: no slots, no monitor,
// no reports.
func TestWatchdogDisabled(t *testing.T) {
	r := New(Config{Workers: 2})
	if err := r.RunChecked(func(tc *TaskContext) {}); err != nil {
		t.Fatal(err)
	}
	if r.hb != nil || r.wd != nil || r.StallReports() != nil {
		t.Fatal("watchdog state allocated despite Config.Watchdog=false")
	}
}
