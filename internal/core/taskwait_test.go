package core

// Tests for the Taskwait blocking strategies (Config.TaskwaitImpl): the
// parking-vs-continuation differential suite over randomized nested
// programs, exact-stats determinism at w=1, the zero-parks guarantee at
// multiple widths, the W1 parity guard, edge cases (zero children racing a
// child finish, taskwait inside a final region, double taskwait in one
// body), and the record-and-replay eligibility decision in both
// directions.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/randtest"
)

var taskwaitKinds = []TaskwaitKind{TaskwaitParking, TaskwaitContinuation}

// TestTaskwaitImplResolution pins the auto resolution (continuation in
// real mode) and the structural mode-exclusivity of the stats: the parking
// counter can only move on the parking path and vice versa.
func TestTaskwaitImplResolution(t *testing.T) {
	// One guaranteed-blocking wait at w=1: the parent holds the only
	// token, so its submitted child cannot have run when the wait starts.
	run := func(cfg Config) TaskwaitStats {
		r := New(cfg)
		r.Run(func(tc *TaskContext) {
			tc.Submit(TaskSpec{Label: "p", Body: func(tc *TaskContext) {
				tc.Submit(TaskSpec{Label: "c"})
				tc.Taskwait()
			}})
		})
		return r.TaskwaitStats()
	}
	// Auto resolves to continuation: handoffs move, parks stay zero.
	st := run(Config{Workers: 1})
	if st.Parks != 0 || st.Handoffs == 0 {
		t.Errorf("auto (real mode): stats %+v, want parks=0 and handoffs>0", st)
	}
	st = run(Config{Workers: 1, TaskwaitImpl: TaskwaitParking})
	if st.Handoffs != 0 || st.StealResumes != 0 || st.Parks == 0 {
		t.Errorf("parking: stats %+v, want handoffs=0, stealResumes=0, parks>0", st)
	}
	st = run(Config{Workers: 1, TaskwaitImpl: TaskwaitContinuation})
	if st.Parks != 0 || st.Handoffs == 0 {
		t.Errorf("continuation: stats %+v, want parks=0 and handoffs>0", st)
	}
	// The continuation pool exists only where the strategy does.
	if New(Config{Workers: 1, TaskwaitImpl: TaskwaitParking}).contPool != nil {
		t.Error("parking runtime built a continuation pool")
	}
	if New(Config{Workers: 1, Virtual: true}).contPool != nil {
		t.Error("virtual runtime built a continuation pool")
	}
	for _, k := range []TaskwaitKind{TaskwaitAuto, TaskwaitParking, TaskwaitContinuation} {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestTaskwaitExactStats: at w=1 blocking is deterministic — a parent
// holding the only worker token guarantees its queued child has not run
// when the wait starts — so the blocking-wait count is exact: K parent
// waits plus the root's implicit end-of-program wait, in both strategies.
func TestTaskwaitExactStats(t *testing.T) {
	const parents = 7
	for _, kind := range taskwaitKinds {
		r := New(Config{Workers: 1, TaskwaitImpl: kind, Debug: true})
		var ran atomic.Int64
		err := r.RunChecked(func(tc *TaskContext) {
			for i := 0; i < parents; i++ {
				tc.Submit(TaskSpec{Label: "p", Body: func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "c", Body: func(*TaskContext) { ran.Add(1) }})
					tc.Taskwait()
					if ran.Load() == 0 {
						t.Error("taskwait returned before the child ran")
					}
				}})
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := r.TaskwaitStats()
		blocked := st.Parks + st.Handoffs
		if blocked != parents+1 {
			t.Errorf("%v: %d blocking waits (stats %+v), want %d parents + 1 root = %d",
				kind, blocked, st, parents, parents+1)
		}
		if kind == TaskwaitParking && (st.Handoffs != 0 || st.StealResumes != 0) {
			t.Errorf("parking: stats %+v, want zero handoffs and steal-resumes", st)
		}
		if kind == TaskwaitContinuation {
			if st.Parks != 0 {
				t.Errorf("continuation: stats %+v, want zero parks", st)
			}
			if st.StealResumes != 0 {
				t.Errorf("continuation w=1: %d steal-resumes with a single worker", st.StealResumes)
			}
			if n := r.ContPoolStats().Outstanding(); n != 0 {
				t.Errorf("continuation: %d nodes outstanding after drain", n)
			}
		}
	}
}

// twTree is one node of a randomized nested-taskwait program.
type twTree struct {
	id        int
	children  []*twTree
	waitAfter []bool // taskwait after submitting child i
}

// buildTWTree generates a random tree with per-position wait decisions,
// all derived from rng up front so both strategies run the identical
// program.
func buildTWTree(rng *rand.Rand, depth int, next *int) *twTree {
	n := &twTree{id: *next}
	*next++
	if depth == 0 {
		return n
	}
	fan := rng.Intn(4) // 0..3 children
	for i := 0; i < fan; i++ {
		n.children = append(n.children, buildTWTree(rng, depth-1, next))
		n.waitAfter = append(n.waitAfter, rng.Intn(3) == 0)
	}
	return n
}

// w1BlockingWaits counts the blocking taskwaits the tree produces at w=1,
// where blocking is deterministic: a wait blocks iff at least one child
// was submitted since the body's previous wait (the submitter holds the
// only token, so such a child cannot have completed). The return includes
// the root's implicit end-of-program wait, which blocks under the same
// rule.
func (n *twTree) w1BlockingWaits(isRoot bool) int64 {
	var total int64
	pending := false // a child submitted since the last wait
	for i, c := range n.children {
		total += c.w1BlockingWaits(false)
		pending = true
		if n.waitAfter[i] {
			total++
			pending = false
		}
	}
	if isRoot && pending {
		total++ // the implicit outermost wait finds incomplete children
	}
	return total
}

// count returns the number of nodes in the subtree.
func (n *twTree) count() int64 {
	var total int64 = 1
	for _, c := range n.children {
		total += c.count()
	}
	return total
}

// assertSubtreeDone verifies every node of the subtree has executed.
func (n *twTree) assertSubtreeDone(t *testing.T, done []atomic.Bool) {
	if !done[n.id].Load() {
		t.Errorf("node %d not done after a taskwait covering its subtree", n.id)
		return
	}
	for _, c := range n.children {
		c.assertSubtreeDone(t, done)
	}
}

// runTWProgram executes the tree under one strategy and returns the
// observables: checksum, task count, and taskwait stats.
func runTWProgram(t *testing.T, root *twTree, kind TaskwaitKind, workers int) (int64, int64, TaskwaitStats) {
	r := New(Config{Workers: workers, TaskwaitImpl: kind, Debug: true})
	total := root.count()
	done := make([]atomic.Bool, total)
	var sum atomic.Int64
	var submit func(tc *TaskContext, n *twTree)
	submit = func(tc *TaskContext, n *twTree) {
		tc.Submit(TaskSpec{Label: fmt.Sprintf("n%d", n.id), Body: func(tc *TaskContext) {
			done[n.id].Store(true)
			sum.Add(int64(n.id)*2654435761 + 1)
			for i, c := range n.children {
				submit(tc, c)
				if n.waitAfter[i] {
					tc.Taskwait()
					// The wait covers every child submitted so far — their
					// whole subtrees must have completed.
					for _, seen := range n.children[:i+1] {
						seen.assertSubtreeDone(t, done)
					}
				}
			}
		}})
	}
	err := r.RunChecked(func(tc *TaskContext) {
		// The root node stands for the implicit outermost task: its wait
		// decisions run in the root body.
		done[root.id].Store(true)
		sum.Add(int64(root.id)*2654435761 + 1)
		for i, c := range root.children {
			submit(tc, c)
			if root.waitAfter[i] {
				tc.Taskwait()
				for _, seen := range root.children[:i+1] {
					seen.assertSubtreeDone(t, done)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("%v w=%d: %v", kind, workers, err)
	}
	root.assertSubtreeDone(t, done)
	if kind == TaskwaitContinuation {
		if n := r.ContPoolStats().Outstanding(); n != 0 {
			t.Errorf("%v w=%d: %d continuation nodes outstanding after drain", kind, workers, n)
		}
	}
	return sum.Load(), r.TaskCount(), r.TaskwaitStats()
}

// TestTaskwaitDifferential drives identical randomized nested-taskwait
// programs through the parking and continuation strategies: identical
// checksums and task counts, strategy-exclusive stats, and — at w=1, where
// blocking is deterministic — exact park/handoff counts that match the
// tree's predicted blocking waits (plus the root's implicit wait when the
// root submitted anything).
func TestTaskwaitDifferential(t *testing.T) {
	for _, seed := range randtest.SeedRange(t, 1, 7) {
		rng := rand.New(rand.NewSource(1300 + seed))
		var next int
		root := buildTWTree(rng, 3, &next)
		for _, workers := range []int{1, 4} {
			sums := make(map[TaskwaitKind]int64)
			counts := make(map[TaskwaitKind]int64)
			stats := make(map[TaskwaitKind]TaskwaitStats)
			for _, kind := range taskwaitKinds {
				sums[kind], counts[kind], stats[kind] = runTWProgram(t, root, kind, workers)
			}
			if sums[TaskwaitParking] != sums[TaskwaitContinuation] {
				t.Errorf("seed %d w=%d: checksum diverged: parking %d, continuation %d",
					seed, workers, sums[TaskwaitParking], sums[TaskwaitContinuation])
			}
			if counts[TaskwaitParking] != counts[TaskwaitContinuation] {
				t.Errorf("seed %d w=%d: task count diverged: parking %d, continuation %d",
					seed, workers, counts[TaskwaitParking], counts[TaskwaitContinuation])
			}
			ps, cs := stats[TaskwaitParking], stats[TaskwaitContinuation]
			if ps.Handoffs != 0 || ps.StealResumes != 0 {
				t.Errorf("seed %d w=%d parking: stats %+v, want zero handoffs/steal-resumes", seed, workers, ps)
			}
			if cs.Parks != 0 {
				t.Errorf("seed %d w=%d continuation: stats %+v, want zero parks", seed, workers, cs)
			}
			if workers == 1 {
				want := root.w1BlockingWaits(true)
				if ps.Parks != want {
					t.Errorf("seed %d w=1 parking: %d parks, want exactly %d", seed, ps.Parks, want)
				}
				if cs.Handoffs != want {
					t.Errorf("seed %d w=1 continuation: %d handoffs, want exactly %d", seed, cs.Handoffs, want)
				}
			}
		}
	}
}

// TestTaskwaitZeroParksMultiWorker is the headline guarantee: on a nested
// wait-heavy workload the continuation strategy never parks a worker at
// any width, while the parking reference parks on every blocking wait.
// Leaf bodies sleep so the parents' waits are guaranteed to block.
func TestTaskwaitZeroParksMultiWorker(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for _, kind := range taskwaitKinds {
			r := New(Config{Workers: workers, TaskwaitImpl: kind, Debug: true})
			err := r.RunChecked(func(tc *TaskContext) {
				for p := 0; p < 2*workers; p++ {
					tc.Submit(TaskSpec{Label: "p", Body: func(tc *TaskContext) {
						for c := 0; c < 2; c++ {
							tc.Submit(TaskSpec{Label: "c", Body: func(*TaskContext) {
								time.Sleep(200 * time.Microsecond)
							}})
						}
						tc.Taskwait()
					}})
				}
			})
			if err != nil {
				t.Fatalf("%v w=%d: %v", kind, workers, err)
			}
			st := r.TaskwaitStats()
			switch kind {
			case TaskwaitContinuation:
				if st.Parks != 0 {
					t.Errorf("continuation w=%d: %d parks, want zero (stats %+v)", workers, st.Parks, st)
				}
				if st.Handoffs == 0 {
					t.Errorf("continuation w=%d: no handoffs on a blocking workload (stats %+v)", workers, st)
				}
			case TaskwaitParking:
				if st.Parks == 0 {
					t.Errorf("parking w=%d: no parks on a blocking workload (stats %+v)", workers, st)
				}
				if st.Handoffs != 0 {
					t.Errorf("parking w=%d: %d handoffs, want zero", workers, st.Handoffs)
				}
			}
		}
	}
}

// TestTaskwaitEdgeCases covers the corners: a taskwait racing a concurrent
// child finish (fast path vs blocking path decided by timing), taskwait
// inside a final (included) region, and double taskwait in one body.
func TestTaskwaitEdgeCases(t *testing.T) {
	for _, kind := range taskwaitKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Run("zero-children-race", func(t *testing.T) {
				// At w=2 the child often finishes before the parent's wait
				// (children==0 fast path) and often not — the loop exercises
				// both sides of the race; correctness must hold either way.
				r := New(Config{Workers: 2, TaskwaitImpl: kind, Debug: true})
				iters := 300
				if testing.Short() {
					iters = 50
				}
				var finished atomic.Int64
				err := r.RunChecked(func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "driver", Body: func(tc *TaskContext) {
						for i := 0; i < iters; i++ {
							tc.Submit(TaskSpec{Label: "c", Body: func(*TaskContext) {
								finished.Add(1)
							}})
							if i%3 == 0 {
								runtime.Gosched() // widen the fast-path window
							}
							tc.Taskwait()
							if got := finished.Load(); got != int64(i+1) {
								t.Errorf("iter %d: %d children finished after wait", i, got)
							}
						}
					}})
				})
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Run("final-region", func(t *testing.T) {
				// Submissions inside a final task run inline and register no
				// children, so an inner taskwait is a completed no-op: at w=1
				// the only blocking wait in the program is the root's.
				r := New(Config{Workers: 1, TaskwaitImpl: kind, Debug: true})
				var order []string
				err := r.RunChecked(func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "f", Final: true, Body: func(tc *TaskContext) {
						tc.Submit(TaskSpec{Label: "inc", Body: func(tc *TaskContext) {
							order = append(order, "included")
							tc.Taskwait() // included task: no children either
						}})
						order = append(order, "after-submit")
						tc.Taskwait()
						order = append(order, "after-wait")
					}})
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(order) != 3 || order[0] != "included" || order[2] != "after-wait" {
					t.Errorf("final-region order %v", order)
				}
				st := r.TaskwaitStats()
				if got := st.Parks + st.Handoffs; got != 1 {
					t.Errorf("%d blocking waits (stats %+v), want 1 (the root's)", got, st)
				}
			})
			t.Run("double-taskwait", func(t *testing.T) {
				// Two blocking waits in one body: the second wait must block
				// again (fresh signal/continuation state), giving exactly
				// 2 parent waits + 1 root wait at w=1.
				r := New(Config{Workers: 1, TaskwaitImpl: kind, Debug: true})
				var ran atomic.Int64
				err := r.RunChecked(func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "p", Body: func(tc *TaskContext) {
						tc.Submit(TaskSpec{Label: "c1", Body: func(*TaskContext) { ran.Add(1) }})
						tc.Taskwait()
						if ran.Load() != 1 {
							t.Error("first wait returned before c1")
						}
						tc.Submit(TaskSpec{Label: "c2", Body: func(*TaskContext) { ran.Add(1) }})
						tc.Taskwait()
						if ran.Load() != 2 {
							t.Error("second wait returned before c2")
						}
					}})
				})
				if err != nil {
					t.Fatal(err)
				}
				st := r.TaskwaitStats()
				if got := st.Parks + st.Handoffs; got != 3 {
					t.Errorf("%d blocking waits (stats %+v), want 3", got, st)
				}
			})
		})
	}
}

// TestTaskwaitW1Parity guards the continuation machinery's constant factor
// on one worker, where wait-freedom buys nothing: a nested-taskwait
// workload must run within 1.5x of the parking reference.
func TestTaskwaitW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	if raceEnabledCore {
		t.Skip("timing guard; race instrumentation skews the comparison")
	}
	const waves = 400
	const trials = 5
	sweep := func(kind TaskwaitKind) time.Duration {
		r := New(Config{Workers: 1, TaskwaitImpl: kind})
		start := time.Now()
		r.Run(func(tc *TaskContext) {
			tc.Submit(TaskSpec{Label: "driver", Body: func(tc *TaskContext) {
				for i := 0; i < waves; i++ {
					tc.Submit(TaskSpec{Label: "c", Body: func(tc *TaskContext) {
						tc.Submit(TaskSpec{Label: "g"})
						tc.Taskwait()
					}})
					tc.Taskwait()
				}
			}})
		})
		return time.Since(start)
	}
	best := map[TaskwaitKind]time.Duration{TaskwaitParking: 1<<63 - 1, TaskwaitContinuation: 1<<63 - 1}
	for trial := 0; trial < trials; trial++ {
		for _, kind := range taskwaitKinds {
			runtime.GC()
			if dur := sweep(kind); dur < best[kind] {
				best[kind] = dur
			}
		}
	}
	f := float64(best[TaskwaitContinuation]) / float64(best[TaskwaitParking])
	if f > 1.5 {
		t.Errorf("continuation w=1: %.2fx slower than parking (%v vs %v); the handoff path regressed",
			f, best[TaskwaitContinuation], best[TaskwaitParking])
	} else {
		t.Logf("continuation w=1: %.2fx of parking (%v vs %v)",
			f, best[TaskwaitContinuation], best[TaskwaitParking])
	}
}

// TestGraphOwnerTaskwaitStaysEligible pins one direction of the
// replay-eligibility decision: a blocking owner-level taskwait between
// submissions is owner body code, re-executed identically by every
// execution, so the recording stays replayable — and the recorded trace
// counts the wait (Recording.OwnerWaits).
func TestGraphOwnerTaskwaitStaysEligible(t *testing.T) {
	for _, kind := range taskwaitKinds {
		r := New(Config{Workers: 2, TaskwaitImpl: kind, Debug: true})
		d := r.NewData("a", 8, 8)
		data := make([]int64, 8)
		const iters = 3
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < iters; it++ {
				tc.Graph("owner-wait", func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "A",
						Deps: []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 8)}}},
						Body: func(*TaskContext) {
							for p := range data {
								data[p]++
							}
						}})
					// Owner-level barrier mid-region: A must be complete
					// before B is even submitted, on every execution mode.
					tc.Taskwait()
					want := int64(1)
					tc.Submit(TaskSpec{Label: "B",
						Deps: []Dep{{Data: d, Type: In, Ivs: []Interval{iv(0, 8)}}},
						Body: func(*TaskContext) {
							if data[0] < want {
								t.Error("B observed A incomplete after the owner wait")
							}
						}})
				})
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		st := r.ReplayStats()
		if st.Records != 1 || st.Replays != iters-1 || st.Fallbacks != 0 || st.Invalidations != 0 {
			t.Errorf("%v: replay stats %+v, want 1 record, %d replays, no fallbacks/invalidations",
				kind, st, iters-1)
		}
		region := r.regionFor("owner-wait")
		if region.rec == nil {
			t.Fatalf("%v: no recording retained", kind)
		}
		if ok, reason := region.rec.Eligible(); !ok {
			t.Errorf("%v: recording ineligible (%s); owner waits must stay eligible", kind, reason)
		}
		if got := region.rec.OwnerWaits(); got != 1 {
			t.Errorf("%v: OwnerWaits = %d, want 1 (the recorded mid-region wait)", kind, got)
		}
	}
}

// TestGraphRegionTaskwaitIneligible pins the other direction: a blocking
// taskwait inside a region member task implies nested submissions, which
// the frozen completion-edge graph cannot express — the recording is
// marked ineligible and every later execution falls back to live.
func TestGraphRegionTaskwaitIneligible(t *testing.T) {
	for _, kind := range taskwaitKinds {
		r := New(Config{Workers: 2, TaskwaitImpl: kind, Debug: true})
		var nested atomic.Int64
		const iters = 3
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < iters; it++ {
				tc.Graph("member-wait", func(tc *TaskContext) {
					tc.Submit(TaskSpec{Label: "M", Body: func(tc *TaskContext) {
						tc.Submit(TaskSpec{Label: "inner", Body: func(*TaskContext) {
							nested.Add(1)
						}})
						tc.Taskwait() // member-task wait: poisons replayability
						if nested.Load() == 0 {
							t.Error("member taskwait returned before the nested child ran")
						}
					}})
				})
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := nested.Load(); got != iters {
			t.Errorf("%v: %d nested children ran, want %d", kind, got, iters)
		}
		st := r.ReplayStats()
		if st.Records != 1 || st.Replays != 0 || st.Fallbacks != iters-1 {
			t.Errorf("%v: replay stats %+v, want 1 record, 0 replays, %d fallbacks",
				kind, st, iters-1)
		}
		region := r.regionFor("member-wait")
		if region.rec == nil {
			t.Fatalf("%v: no recording retained", kind)
		}
		if ok, _ := region.rec.Eligible(); ok {
			t.Errorf("%v: recording still eligible after a member-task taskwait", kind)
		}
	}
}
