package core

// Stall watchdog (Config.Watchdog): a low-overhead liveness monitor for the
// runtime's lock-free admission protocols.
//
// The sharded ready pools and the sharded throttle window both close their
// idle protocols Dekker-style: one side publishes (a queued item, a parked
// waiter) and rechecks, the other side publishes (a retired token, a
// returned credit) and rechecks. A bug in either recheck drops a wakeup,
// and the failure mode is always the same *signature*: a runnable thing
// and an idle resource coexist indefinitely —
//
//   - queued tasks alongside free worker tokens,
//   - blocked Acquire calls alongside free worker tokens,
//   - parked throttle reservers alongside free window credits.
//
// In a correct pool each pairing exists only inside a transient admission
// window (microseconds); persisting is the lost-wakeup proof. The watchdog
// detects persistence with two mechanisms:
//
//   - per-worker heartbeat epochs: one padded counter per worker, bumped on
//     every task start, worksharing-helper entry, and taskwait resume. The
//     per-beat cost when enabled is two uncontended atomic writes on a
//     worker-private cache line; when disabled it is one nil check.
//   - a monitor goroutine sampling the pool (sched.Prober), the throttle
//     window, and the heartbeat sum every WatchdogInterval. A stall
//     signature only accumulates suspicion while the heartbeat sum is
//     frozen — any dispatch progress resets it — and only fires after it
//     has persisted for WatchdogBound.
//
// False-positive policy: the probe's counters are independent atomic reads,
// so single-sample contradictions are expected and never reported; a report
// requires the same signature with zero dispatch progress across every
// sample of a full bound. A long-running task body does not trip it (the
// signature concerns *unmatched* work and resources, not slow work), and
// chaos-injected delays (internal/chaos) are orders of magnitude below the
// default bound. The cost of a miss is low: the watchdog is a diagnosis
// aid, and a true lost wakeup persists forever, so any bound finds it.
//
// On detection the watchdog captures a StallReport — a structured snapshot
// of pool, throttle, leak-accounting, and per-worker state — delivers it to
// Config.OnStall (if set), and keeps it for Runtime.StallReports.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// Heartbeat states (hbSlot.state): what the worker last started doing.
const (
	hbIdle uint32 = iota // never beaten: no task started on this worker yet
	hbTask
	hbWsHelper
	hbResume
)

var hbStateNames = [...]string{"idle", "task", "ws-helper", "resume"}

// hbSlot is one worker's heartbeat, padded to a cache line so beats of
// neighbouring workers never false-share.
type hbSlot struct {
	epoch atomic.Uint64
	state atomic.Uint32
	_     [52]byte // 12 -> 64
}

// beat records dispatch progress on worker w. Nil-check only when the
// watchdog is disabled; two worker-private atomic stores when enabled.
func (r *Runtime) beat(w int, state uint32) {
	if r.hb == nil || w < 0 || w >= len(r.hb) {
		return
	}
	s := &r.hb[w]
	s.state.Store(state)
	s.epoch.Add(1)
}

// epochSum aggregates every worker's heartbeat epoch; any dispatch progress
// anywhere changes the sum (epochs only increase).
func (r *Runtime) epochSum() uint64 {
	var sum uint64
	for i := range r.hb {
		sum += r.hb[i].epoch.Load()
	}
	return sum
}

// probeSample is one watchdog observation. The counters are read
// independently (not a consistent snapshot); see the false-positive policy
// above.
type probeSample struct {
	queued     int
	freeTokens int
	waiters    int
	thrWaiters int64
	thrCredits int64
	epochs     uint64
}

// stallDetector turns a stream of probe samples into stall verdicts. It is
// deliberately free of any Runtime dependency so the selftest can drive it
// (and the enclosing watchdog loop) against a synthetic lost wakeup.
type stallDetector struct {
	bound      time.Duration
	prevEpochs uint64
	havePrev   bool
	suspectFor time.Duration
}

// observe feeds one sample taken dt after the previous one. It returns a
// non-empty reason string — naming the signature — when a stall signature
// has persisted, with frozen heartbeats, for the full bound. After firing
// the suspicion timer re-arms, so a persisting stall re-reports once per
// bound rather than once per sample.
func (d *stallDetector) observe(s probeSample, dt time.Duration) string {
	progress := !d.havePrev || s.epochs != d.prevEpochs
	d.prevEpochs, d.havePrev = s.epochs, true
	var reason string
	switch {
	case s.queued > 0 && s.freeTokens > 0:
		reason = fmt.Sprintf("lost wakeup: %d queued tasks and %d free worker tokens coexist",
			s.queued, s.freeTokens)
	case s.waiters > 0 && s.freeTokens > 0:
		reason = fmt.Sprintf("lost wakeup: %d blocked acquirers and %d free worker tokens coexist",
			s.waiters, s.freeTokens)
	case s.thrWaiters > 0 && s.thrCredits > 0:
		reason = fmt.Sprintf("lost wakeup: %d parked throttle reservers and %d free window credits coexist",
			s.thrWaiters, s.thrCredits)
	}
	if reason == "" || progress {
		d.suspectFor = 0
		return ""
	}
	d.suspectFor += dt
	if d.suspectFor >= d.bound {
		d.suspectFor = 0
		return reason
	}
	return ""
}

// WorkerState is one worker's heartbeat snapshot inside a StallReport.
type WorkerState struct {
	// Epoch is the worker's heartbeat count (dispatch events observed).
	Epoch uint64
	// State names what the worker last started: "idle" (no dispatch yet),
	// "task", "ws-helper", or "resume".
	State string
}

// StallReport is the structured diagnosis the watchdog captures when a
// stall signature persists past the bound (Config.Watchdog, Runtime.
// StallReports). All counters are point-in-time reads at detection.
type StallReport struct {
	// Reason names the detected signature (always a lost-wakeup pairing).
	Reason string
	// Elapsed is the time since Run started.
	Elapsed time.Duration
	// Queued, FreeTokens, and Waiters are the ready pool's probe.
	Queued, FreeTokens, Waiters int
	// ThrottleWaiters/ThrottleCredits/ThrottleOpen describe the throttle
	// window (zero when unthrottled).
	ThrottleWaiters, ThrottleCredits, ThrottleOpen int64
	// Open and Live are the runtime's occupancy counters: dependency-ready
	// tasks not yet started, and instantiated tasks not yet completed.
	Open, Live int64
	// Outstanding leak accounting at detection: objects currently held out
	// of the dependency-engine pools, the Task free list, the replay
	// countdown-node pool, the taskwait continuation pool, and the
	// worksharing descriptor pool. A stalled-but-correct drain holds some;
	// wildly growing values point at a leak rather than a lost wakeup.
	DepsHeld, TasksHeld, ReplayHeld, ContsHeld, WsHeld int64
	// Workers is the per-worker heartbeat state at detection.
	Workers []WorkerState
}

// String renders the report as a multi-line diagnosis.
func (sr *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall detected after %v: %s\n", sr.Elapsed.Round(time.Millisecond), sr.Reason)
	fmt.Fprintf(&b, "  pool: queued=%d freeTokens=%d waiters=%d\n", sr.Queued, sr.FreeTokens, sr.Waiters)
	fmt.Fprintf(&b, "  throttle: waiters=%d credits=%d open=%d\n",
		sr.ThrottleWaiters, sr.ThrottleCredits, sr.ThrottleOpen)
	fmt.Fprintf(&b, "  tasks: open=%d live=%d\n", sr.Open, sr.Live)
	fmt.Fprintf(&b, "  held: deps=%d tasks=%d replay=%d conts=%d ws=%d\n",
		sr.DepsHeld, sr.TasksHeld, sr.ReplayHeld, sr.ContsHeld, sr.WsHeld)
	b.WriteString("  workers:")
	for i, w := range sr.Workers {
		fmt.Fprintf(&b, " %d:%s/%d", i, w.State, w.Epoch)
	}
	return b.String()
}

// watchdog is the sampling monitor. probe and render are closures so the
// selftest can run the identical loop against a synthetic pool.
type watchdog struct {
	interval time.Duration
	det      stallDetector
	probe    func() probeSample
	render   func(reason string, s probeSample) StallReport
	onStall  func(*StallReport)

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	reports []StallReport
}

func newWatchdogLoop(interval, bound time.Duration,
	probe func() probeSample,
	render func(reason string, s probeSample) StallReport,
	onStall func(*StallReport)) *watchdog {
	return &watchdog{
		interval: interval,
		det:      stallDetector{bound: bound},
		probe:    probe,
		render:   render,
		onStall:  onStall,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run samples until shutdown. Must be called on its own goroutine.
func (wd *watchdog) run() {
	defer close(wd.done)
	tick := time.NewTicker(wd.interval)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-wd.stop:
			return
		case now := <-tick.C:
			dt := now.Sub(last)
			if dt <= 0 {
				dt = wd.interval
			}
			last = now
			s := wd.probe()
			if reason := wd.det.observe(s, dt); reason != "" {
				rep := wd.render(reason, s)
				wd.mu.Lock()
				wd.reports = append(wd.reports, rep)
				wd.mu.Unlock()
				if wd.onStall != nil {
					wd.onStall(&rep)
				}
			}
		}
	}
}

// shutdown stops the monitor and waits for its goroutine to exit.
func (wd *watchdog) shutdown() {
	close(wd.stop)
	<-wd.done
}

// snapshot copies the reports captured so far.
func (wd *watchdog) snapshot() []StallReport {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	return append([]StallReport(nil), wd.reports...)
}

// Watchdog defaults: the interval keeps the monitor's duty cycle trivial
// (a few hundred atomic reads per millisecond-scale period), the bound is
// ~100x any legitimate admission window, including chaos-widened ones.
const (
	defaultWatchdogInterval = 2 * time.Millisecond
	defaultWatchdogBound    = 250 * time.Millisecond
)

// newWatchdog wires the monitor loop to this runtime's pool, throttle,
// heartbeats, and stat accessors.
func (r *Runtime) newWatchdog() *watchdog {
	interval := r.cfg.WatchdogInterval
	if interval <= 0 {
		interval = defaultWatchdogInterval
	}
	bound := r.cfg.WatchdogBound
	if bound <= 0 {
		bound = defaultWatchdogBound
	}
	prober, _ := r.sch.(sched.Prober)
	probe := func() probeSample {
		var s probeSample
		if prober != nil {
			p := prober.Probe()
			s.queued, s.freeTokens, s.waiters = p.Queued, p.FreeTokens, p.Waiters
		}
		if r.thr != nil {
			s.thrWaiters = r.thr.Waiters()
			s.thrCredits = r.thr.Credits()
		}
		s.epochs = r.epochSum()
		return s
	}
	return newWatchdogLoop(interval, bound, probe, r.renderStall, r.cfg.OnStall)
}

// renderStall captures the full structured diagnosis for a fired stall.
func (r *Runtime) renderStall(reason string, s probeSample) StallReport {
	rep := StallReport{
		Reason:          reason,
		Elapsed:         time.Since(r.wallStart),
		Queued:          s.queued,
		FreeTokens:      s.freeTokens,
		Waiters:         s.waiters,
		ThrottleWaiters: s.thrWaiters,
		ThrottleCredits: s.thrCredits,
		Open:            r.open.Load(),
		Live:            r.live.Load(),
	}
	if r.thr != nil {
		rep.ThrottleOpen = r.thr.Open()
	}
	if ms, ok := r.MemStats(); ok {
		rep.DepsHeld = ms.Outstanding()
	}
	rep.TasksHeld = r.TaskPoolStats().Outstanding()
	rep.ReplayHeld = r.ReplayPoolStats().Outstanding()
	rep.ContsHeld = r.ContPoolStats().Outstanding()
	rep.WsHeld = r.WsPoolStats().Outstanding()
	rep.Workers = make([]WorkerState, len(r.hb))
	for i := range r.hb {
		st := r.hb[i].state.Load()
		name := "?"
		if int(st) < len(hbStateNames) {
			name = hbStateNames[st]
		}
		rep.Workers[i] = WorkerState{Epoch: r.hb[i].epoch.Load(), State: name}
	}
	return rep
}

// StallReports returns the stall diagnoses captured so far (always empty
// unless Config.Watchdog). Safe to call during and after the run.
func (r *Runtime) StallReports() []StallReport {
	if r.wd == nil {
		return nil
	}
	return r.wd.snapshot()
}
