package core

import (
	"sync"

	"repro/internal/deps"
	"repro/internal/replay"
	"repro/internal/trace"
)

// TaskSpec describes a task to submit.
type TaskSpec struct {
	// Label names the task for diagnostics and graph dumps.
	Label string
	// Kind groups tasks for tracing (timeline color); defaults to Label.
	Kind string
	// Deps are the depend-clause entries.
	Deps []Dep
	// Touches lists the regions the task body actually accesses, used only
	// by the cache simulator. nil falls back to the strong entries of Deps
	// (right for leaf tasks); an empty non-nil slice declares the body
	// touches nothing (right for tasks that only instantiate subtasks,
	// whose depend entries merely protect the subtasks' accesses).
	Touches []Dep
	// WeakWait selects the weakwait clause (§V): when the body returns,
	// dependencies not covered by live subtasks release immediately and the
	// rest are handed over to the subtasks. Without it the task behaves as
	// with the wait clause (§IV): the body returns, and all dependencies
	// release together once the task and every descendant completed.
	WeakWait bool
	// Final marks the task final (the OpenMP final clause): the task itself
	// is scheduled normally, but every task submitted from inside it — and
	// inside any of its descendants — is *included*: executed immediately
	// and inline by the submitting worker, with no dependency registration
	// or deferral. Recursive decompositions use this as the granularity
	// cutoff below which per-task overhead is not worth paying.
	Final bool
	// Cost is the task's duration in virtual-time units (virtual mode
	// only); defaults to 1.
	Cost int64
	// Priority orders dispatch under the Priority ready-queue policy:
	// among the ready tasks the highest priority runs first, FIFO between
	// equals (the OpenMP 4.5 priority clause). Ignored by other policies.
	Priority int64
	// Flops is added to the runtime's flop counter when the task runs.
	Flops int64
	// Body is the task code. It may be nil (dependency-only task).
	Body func(tc *TaskContext)
}

// Task is a submitted task instance.
type Task struct {
	rt   *Runtime
	spec TaskSpec
	node *deps.Node

	parent *Task
	depth  int
	kind   trace.Kind
	final  bool       // this task and all descendants run their subtasks inline
	group  *taskgroup // enclosing Taskgroup scope at submission, if any

	// curGroup is the innermost active Taskgroup scope of the body. It is
	// only touched by the goroutine executing the body.
	curGroup *taskgroup

	// greg/gidx tie the task to an active graph region (TaskContext.Graph):
	// on the region owner greg is the run whose body is executing (gidx
	// -1); on a task submitted into the region, greg/gidx identify its
	// recorded slot. gnode is the task's replay countdown cell when the
	// region executes from a recording (its dependency state then lives
	// there instead of in an engine node, and node stays nil unless the
	// body submits subtasks). All three are written at submission time and
	// read by the completion pipeline.
	greg  *graphRun
	gidx  int32
	gnode *replay.Node

	mu        sync.Mutex
	children  int // direct children not yet fully complete
	bodyDone  bool
	completed bool
	// waiting/waitSig serve the parking Taskwait strategy: the blocked body
	// goroutine parks on waitSig (capacity 1) and the last completing child
	// signals it. The channel is allocated on the task's first blocking wait
	// and then reused across waits *and* recycles (it is always empty when
	// the wait returns), so the steady-state parking path allocates nothing.
	waiting bool
	waitSig chan struct{}
	// cont is the continuation Taskwait strategy's parked waiter: set while
	// the body goroutine is blocked in taskwaitContinuation, read by the
	// last completing child (under mu) to submit the resume into the ready
	// pools, and by runWorker (unlocked — ordered by the pool's internal
	// synchronization) to hand its token over.
	cont *contNode
	// wsRun is the worksharing chunk descriptor: set by the running body
	// (wsExecute) before announcing helper invitations, read by runWorker
	// (unlocked — ordered like cont by the pool's Announce/pop pair) to
	// route popped invitations into the chunk drain, and recycled by
	// completeTask. nil on every task that is not an executing worksharing
	// region.
	wsRun *wsRun

	vEnd     int64 // virtual mode: completion time
	vCreate  int64 // virtual mode: accumulated creation cost of the body
	vArrival int64 // virtual mode: earliest start (creation-time modeling)
}

// newTask builds a task, recycling a pooled one when the submitting worker
// has a scratch lane (pooled memory mode, real mode, in-range worker).
func (r *Runtime) newTask(parent *Task, spec TaskSpec, worker int) *Task {
	var t *Task
	if ws := r.scratchFor(worker); ws != nil && parent != nil {
		t = ws.tasks.Get()
		t.rt, t.spec, t.parent = r, spec, parent
	} else {
		t = &Task{rt: r, spec: spec, parent: parent}
	}
	if parent != nil {
		t.depth = parent.depth + 1
		t.final = spec.Final || parent.final
	} else {
		t.final = spec.Final
	}
	if r.tracer != nil {
		kind := spec.Kind
		if kind == "" {
			kind = spec.Label
		}
		t.kind = r.tracer.KindID(kind)
	}
	return t
}

// recycleTask returns a finished task to worker's free-list lane. Callers
// must hold worker's token and guarantee nothing references t anymore: the
// task has completed (or ran inline), its completion bookkeeping — parent
// counters, taskgroup, waiters, trace span — is done, and its dependency
// node (recycled separately by the engine) is never read through the task
// again. The root task and virtual-mode tasks are never pooled.
func (r *Runtime) recycleTask(t *Task, worker int) {
	ws := r.scratchFor(worker)
	if ws == nil || t.parent == nil {
		return
	}
	t.rt, t.spec, t.node = nil, TaskSpec{}, nil
	t.parent = nil
	t.depth, t.kind, t.final = 0, 0, false
	t.group, t.curGroup = nil, nil
	t.greg, t.gidx, t.gnode = nil, 0, nil
	t.children = 0
	t.bodyDone, t.completed = false, false
	t.waiting, t.cont = false, nil
	t.wsRun = nil
	// waitSig is deliberately kept: it is empty again by the time the task
	// can recycle, and reusing it keeps repeat blocking waits allocation-free
	// (TestMemPoolAllocGate in this package gates this).
	t.vEnd, t.vCreate, t.vArrival = 0, 0, 0
	ws.tasks.Put(t)
}

// TaskContext is passed to every task body: it submits subtasks, waits, and
// releases dependencies. It must not escape the body invocation, except
// that Submit/Taskwait/Release may be called at any point within it.
type TaskContext struct {
	rt     *Runtime
	task   *Task
	worker int
}

// Runtime returns the owning runtime.
func (tc *TaskContext) Runtime() *Runtime { return tc.rt }

// Worker returns the worker (simulated core) currently executing the task.
func (tc *TaskContext) Worker() int { return tc.worker }

// Depth returns the nesting depth (root body = 0).
func (tc *TaskContext) Depth() int { return tc.task.depth }

// Submit creates a child task of the current task. Its dependencies are
// computed in the current task's domain; it starts once all its strong
// entries are satisfied. Inside an active graph region (Graph) the
// submission is additionally recorded, validated against the region's
// recording, or — when the region replays — admitted through the frozen
// countdown graph instead of the dependency engine.
func (tc *TaskContext) Submit(spec TaskSpec) {
	r := tc.rt
	if r.cfg.Verify {
		r.verifyChildCoverage(tc.task, &spec)
	}
	if tc.task.final {
		r.runInline(tc, spec)
		return
	}
	if g := tc.task.greg; g != nil {
		if tc.task.gidx >= 0 {
			// The submitter is itself a region task: a nested submission
			// the frozen graph cannot express.
			g.nestedSubmit(r, tc.task)
		} else if g.submit(tc, spec) {
			return
		}
	}
	r.submitLive(tc, spec, nil, 0)
}

// admitChild runs the admission prologue shared by the live and replay
// submission paths: the throttle gate (the reservation may block, yielding
// this worker's token into other ready work and reacquiring one — possibly
// different — before returning; a prepaid reservation carries a window
// credit for the child's entry), task construction, and the liveness,
// count, taskgroup, and parent-children bookkeeping.
func (r *Runtime) admitChild(tc *TaskContext, spec TaskSpec) (t *Task, prepaid bool) {
	if r.thr != nil {
		tc.worker, prepaid = r.thr.Reserve(tc.worker, r.sch)
	}
	t = r.newTask(tc.task, spec, tc.worker)
	if r.v != nil && r.cfg.VirtualSubmitCost > 0 {
		tc.task.vCreate += r.cfg.VirtualSubmitCost
		t.vArrival = r.v.now + tc.task.vCreate
	}
	r.live.Add(1)
	r.taskCount.Add(1)
	if grp := tc.task.curGroup; grp != nil {
		t.group = grp
		grp.add()
	}
	tc.task.mu.Lock()
	tc.task.children++
	tc.task.mu.Unlock()
	return t, prepaid
}

// submitLive is the dependency-engine submission path. g/gidx tag the task
// as a member of a recording graph region (nil outside regions and in
// replayed regions, whose tasks never reach this path).
func (r *Runtime) submitLive(tc *TaskContext, spec TaskSpec, g *graphRun, gidx int32) {
	t, prepaid := r.admitChild(tc, spec)
	if g != nil {
		t.greg, t.gidx = g, gidx
	}
	t.node = r.eng.NewNode(tc.task.node, spec.Label, t)
	if r.eng.Register(t.node, r.convertDeps(spec.Deps, tc.worker)) {
		if prepaid {
			r.windowEnterReserved()
		} else {
			r.windowEnter(1)
		}
		r.enqueue(t, tc.worker)
	} else if prepaid {
		// The child deferred on its dependencies — it does not occupy the
		// window; its eventual dependency-cascade entry is unreserved.
		r.thr.Refund(tc.worker)
	}
}

// Release implements the release directive (§V): the task asserts that
// neither it nor any future subtask will reference the given regions again.
// Covered regions still in use by live subtasks are handed over; the rest
// release immediately. On an included task (inside a final region) Release
// is a no-op: included tasks register no dependencies.
func (tc *TaskContext) Release(ds ...Dep) {
	// A region task's body may run concurrently with the owner's further
	// submissions, so the check reads g.recorder (immutable after run
	// creation; non-nil exactly while recording) rather than g.mode.
	if g := tc.task.greg; g != nil && tc.task.gidx >= 0 && g.recorder != nil {
		// Early release by a region task shifts when successors may start;
		// the frozen completion-edge graph cannot reproduce it, so the
		// recorded shape stays live. (Replayed region tasks have no engine
		// node and fall through to the no-op below.)
		g.recorder.MarkIneligible("release directive in region task")
	}
	if tc.task.node == nil {
		return
	}
	r := tc.rt
	var buf []*deps.Node
	ws := r.scratchFor(tc.worker)
	if ws != nil {
		buf = ws.ready[:0]
	}
	ready := r.eng.ReleaseRegionsInto(tc.task.node, r.convertDeps(ds, tc.worker), buf)
	if ws != nil {
		ws.ready = ready[:0]
	}
	r.dispatchAll(ready, tc.worker)
}

// windowEnter records n tasks entering the throttle window without a
// prepaid reservation (dependency-cascade admissions, which never block
// and may overdraw the bound): the occupancy diagnostic and the window's
// own accounting move together — every entry point must use this helper
// (or windowEnterReserved) so the two counters cannot drift.
func (r *Runtime) windowEnter(n int64) {
	r.open.Add(n)
	if r.thr != nil {
		r.thr.Entered(n)
	}
}

// windowEnterReserved records one window entry paid for by a prepaid
// Reserve in Submit.
func (r *Runtime) windowEnterReserved() {
	r.open.Add(1)
	if r.thr != nil {
		r.thr.EnteredReserved()
	}
}

// taskStarted retires the task from the throttle window (it is now
// executing, no longer "instantiated ahead"). worker is the starting
// worker (-1 in virtual mode, whose window is inert).
func (r *Runtime) taskStarted(t *Task, worker int) {
	if t.parent == nil {
		return
	}
	r.open.Add(-1)
	if r.thr != nil {
		r.thr.Started(worker)
	}
}

// finishBody runs the post-body completion pipeline shared by both modes:
// weakwait hand-over, then (if no children remain) full completion,
// cascading to ancestors. Returns the dependency-ready nodes uncovered
// (in the pooled memory mode these land in worker's ready scratch, valid
// until the worker's next completion point) and whether t completed — the
// caller's signal that, once it stops touching t, the task can recycle.
// worker is the caller's held token (-1 in virtual mode).
func (r *Runtime) finishBody(t *Task, worker int) (ready []*deps.Node, completed bool) {
	var buf []*deps.Node
	ws := r.scratchFor(worker)
	if ws != nil {
		buf = ws.ready[:0]
	}
	if t.spec.WeakWait && t.node != nil {
		buf = r.eng.BodyDoneInto(t.node, buf)
	}
	t.mu.Lock()
	t.bodyDone = true
	complete := t.children == 0 && !t.completed
	if complete {
		t.completed = true
	}
	t.mu.Unlock()
	if complete {
		buf = r.completeTask(t, worker, buf)
	}
	if ws != nil {
		ws.ready = buf // keep the grown capacity for the next completion
	}
	return buf, complete
}

// completeTask finalizes a fully-finished task (body + all descendants):
// the engine releases its remaining dependencies (possibly recycling the
// node — t.node must not be touched afterwards), the live-task accounting
// is updated, and completion cascades to the parent when this was its last
// outstanding child. Ancestors completed by the cascade are recycled here:
// their own worker goroutines are long gone (a cascade parent's body
// finished without a taskwait), so this goroutine is the last to see them.
// Ready nodes are appended to buf.
func (r *Runtime) completeTask(t *Task, worker int, buf []*deps.Node) []*deps.Node {
	if wr := t.wsRun; wr != nil {
		// A completed worksharing region: every announce-hold has been
		// released (holds ride t.children, which is zero here) and the
		// cursor is exhausted, so nothing references the chunk descriptor
		// anymore. Detach and recycle it before the task itself can.
		t.wsRun = nil
		wr.body = nil
		r.wsPool.Put(worker, wr)
	}
	if t.gnode != nil {
		// A replayed region task: its completion decrements the recorded
		// successors' countdowns (dispatching the ones that fire) before
		// the parent bookkeeping below can unblock the region barrier.
		r.replaySuccessors(t, worker)
	}
	if t.node != nil {
		buf = r.eng.CompleteInto(t.node, buf)
	}
	if t.parent == nil {
		close(r.rootDone)
		return buf
	}
	r.live.Add(-1)
	if g := t.group; g != nil {
		g.taskCompleted()
	}
	p := t.parent
	p.mu.Lock()
	p.children--
	var sig chan struct{}
	var cont *contNode
	if p.children == 0 {
		if p.waiting {
			p.waiting = false
			sig = p.waitSig
		}
		// cont stays set on p: the resumer reads it through the ready pool,
		// and the woken waiter detaches it before recycling the node.
		cont = p.cont
	}
	// A parked waiter implies the parent's body has not returned, so cascade
	// and the wakeups below are mutually exclusive.
	cascade := p.children == 0 && p.bodyDone && !p.completed
	if cascade {
		p.completed = true
	}
	p.mu.Unlock()
	if sig != nil {
		// Capacity 1 with a single consumer: the send never blocks.
		sig <- struct{}{}
	}
	if cont != nil {
		r.submitContinuation(p, cont, worker)
	}
	if cascade {
		buf = r.completeTask(p, worker, buf)
		r.recycleTask(p, worker)
	}
	return buf
}
