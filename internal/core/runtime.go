// Package core implements the tasking runtime that realizes the paper's
// extensions: tasks with strong and weak dependencies (§VI), the wait-style
// detached completion (§IV), the weakwait clause with fine-grained release
// of dependencies across nesting levels (§V), the release directive, and an
// in-body Taskwait.
//
// Two execution modes share all of the dependency semantics:
//
//   - Real mode: goroutine-per-task gated by worker tokens (one per
//     simulated core). Used for the wall-clock benchmarks (Figures 3–5, 7).
//   - Virtual mode: a discrete-event simulation where each task occupies a
//     virtual core for its declared Cost. Used for the strong-scaling
//     figures (4, 6) so that core counts beyond the host machine's can be
//     evaluated, exactly as the paper sweeps 4–48 ThunderX cores.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cachesim"
	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/regions"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/throttle"
	"repro/internal/trace"
)

// Re-exported dependency vocabulary so runtime users need only this package.
type (
	// DataID identifies a registered data object.
	DataID = deps.DataID
	// AccessType is the depend-clause entry type (In, Out, InOut).
	AccessType = deps.AccessType
	// Interval is a half-open element interval of a data object.
	Interval = regions.Interval
)

// Access types.
const (
	In    = deps.In
	Out   = deps.Out
	InOut = deps.InOut
	// Red is a task-reduction access: members of a reduction group over
	// the same region run concurrently (the body must combine its
	// contribution atomically); readers and writers order against the
	// whole group. Integrates with weak accesses and weakwait (§X).
	Red = deps.Red
)

// Dep is one depend-clause entry of a task.
type Dep struct {
	// Data is the accessed data object (from Runtime.NewData).
	Data DataID
	// Type is the access type (In, Out, InOut, or Red).
	Type AccessType
	// Weak marks the weakin/weakout/weakinout variants (§VI): the entry
	// links nesting levels but never defers the task itself.
	Weak bool
	// Ivs are the accessed element intervals (disjoint).
	Ivs []Interval
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of simulated cores (worker tokens / virtual
	// cores). Defaults to 1 if zero.
	Workers int
	// Policy is the ready-queue discipline of the central pool (default
	// FIFO). The Priority policy dispatches the highest TaskSpec.Priority
	// first. Under PoolAuto, an explicit LIFO or Priority policy selects
	// the central single-lock pool (those disciplines are global orders);
	// the stealing pools ignore Policy.
	Policy sched.Policy
	// ReadyPool selects the ready-pool implementation. PoolAuto (the zero
	// value) picks the sharded work-stealing pool in real mode — per-worker
	// lock-free deques, so the admission path (Submit/Finish/Yield) of
	// different workers never serializes on a common lock — except that an
	// explicit LIFO or Priority Policy selects the central queue. Virtual
	// mode runs its own deterministic event-driven list and ignores this.
	// All pools enforce identical admission invariants (the differential
	// tests in internal/sched prove it); selecting one explicitly is for
	// ablations and A/B comparisons.
	ReadyPool sched.PoolKind
	// Stealing is the legacy selector for the work-stealing pool, kept for
	// existing callers: equivalent to ReadyPool = PoolStealing when
	// ReadyPool is PoolAuto.
	Stealing bool
	// Topology arranges the stealing pool's worker shards into a locality
	// tree (domain → core group → worker): steal victim selection walks
	// nearest-neighbour-first, worksharing invitations spread nearest the
	// announcing owner, and ready batches are routed by Node.ReadyData
	// affinity to the shard group that last touched the data. The zero
	// value derives a synthetic tree from the worker count;
	// sched.TopologyFlat restores the flat victim order (the differential
	// reference). Only the sharded pools (PoolStealing,
	// PoolShardedCentral) consult it.
	Topology sched.Topology
	// DepEngine selects the dependency-engine implementation. EngineAuto
	// (the zero value) picks the per-data-object sharded engine — depend
	// clauses over disjoint data then register and release with no common
	// lock — in both real and virtual mode (the sharded engine's ready
	// ordering reproduces the recorded golden makespans; see
	// internal/workloads' golden tests). Both implementations enforce
	// identical semantics (the differential tests in internal/deps prove
	// it); selecting one explicitly is for benchmarks and A/B comparisons.
	DepEngine deps.EngineKind
	// NoHandoff disables direct successor hand-off: by default, a worker
	// that finishes a task immediately runs one of the tasks its completion
	// made ready. This is the locality policy §VIII-A credits for the lower
	// cache miss ratio of the weak variants.
	NoHandoff bool
	// ThrottleOpenTasks bounds the number of dependency-ready tasks
	// awaiting execution; submitters block (yielding their worker) above
	// the bound. 0 disables. This models a bounded lookahead window (§III's
	// discussion). Only ready tasks count — a ready task needs nothing but
	// a worker token, so the window always drains and a blocked submitter
	// always wakes. (Counting all instantiated tasks would deadlock nested
	// weak programs: a task can be dependency-blocked on fragments that
	// release only when its blocked submitter's own body finishes.)
	ThrottleOpenTasks int
	// MemPool selects the task-lifecycle memory management.
	// mempool.KindAuto (the zero value) picks the pooled mode in real mode:
	// Tasks, dependency nodes, access fragments, and interval-map cells are
	// recycled through typed free lists (internal/mempool) instead of being
	// reallocated every submit→complete cycle, removing the allocator and
	// GC traffic that dominates fine-grained-task overhead once the locks
	// are sharded away. mempool.KindReference is the allocate-always
	// baseline, kept as the differential reference (the pooled and
	// reference modes are proven observably equivalent by the differential
	// tests in internal/deps and this package). Virtual mode resolves auto
	// to the reference mode; selecting pooled explicitly there pools the
	// dependency engine only.
	MemPool mempool.Kind
	// Replay selects the record-and-replay taskgraph cache behind
	// TaskContext.Graph. replay.KindAuto (the zero value) enables it in
	// real mode: the first execution of a named graph region records the
	// submitted graph's dependency fingerprints and edges, and later
	// executions with an identical shape bypass the dependency engine
	// entirely, driving per-task atomic predecessor countdowns into the
	// ready pools. Replay is an optimization, never a semantics change —
	// shape changes invalidate the recording mid-region and fall back to
	// the live engine, and unfinished external producers of region inputs
	// force a live execution (see Runtime.ReplayStats). replay.KindOff
	// disables the cache (regions keep their barrier); virtual mode always
	// resolves to off.
	Replay replay.Kind
	// ThrottleImpl selects the throttle-window implementation.
	// throttle.KindAuto (the zero value) picks the sharded token-bucket
	// window in real mode — a global atomic credit balance with per-worker
	// credit caches and per-shard wait lists, so throttled submitters and
	// task starts on different workers do not serialize on a common lock.
	// throttle.KindLocked is the single mutex+cond reference window. Both
	// enforce the same bound (the differential tests in internal/throttle
	// prove it); selecting one explicitly is for ablations and A/B
	// comparisons. Ignored when ThrottleOpenTasks is 0 or in virtual mode
	// (the sequential simulation never blocks submitters).
	ThrottleImpl throttle.Kind
	// WorksharingImpl selects the TaskContext.Worksharing execution
	// strategy. WorksharingAuto (the zero value) picks the chunk-distributed
	// strategy in real mode: one task registers the loop's union depend
	// entries, and when its body starts the grain-sized chunks self-schedule
	// across idle workers via a shared atomic cursor, with announced helper
	// invitations riding the task's completion countdown (see
	// worksharing.go). WorksharingExpand is the per-chunk-task reference
	// (the shape Taskloop submits), kept as the differential baseline and
	// for A/B comparisons — both strategies produce identical final state
	// on programs whose depend entries cover their accesses (the
	// differential tests in this package prove it). Virtual mode runs the
	// chunked strategy's chunks serially inside the single task.
	WorksharingImpl WorksharingKind
	// TaskwaitImpl selects the TaskContext.Taskwait blocking strategy.
	// TaskwaitAuto (the zero value) picks the continuation handoff in real
	// mode: a blocked taskwait yields its worker into other ready work and
	// the *last completing child* submits the waiting task back into the
	// sharded ready pools as a pooled continuation — the worker-token
	// protocol never parks a worker on a nested sync point.
	// TaskwaitParking is the classic park-on-channel reference. Both
	// strategies share the same child-countdown state (the differential
	// tests in this package prove them observably equivalent); selecting
	// one explicitly is for ablations and A/B comparisons. Virtual mode has
	// no Taskwait and ignores this.
	TaskwaitImpl TaskwaitKind
	// Virtual selects the discrete-event virtual-time mode.
	Virtual bool
	// VirtualSubmitCost charges the creating task this many virtual cost
	// units per Submit: the child's dependencies are computed immediately,
	// but it cannot start before the creator "reaches" it, and the creator
	// stays busy for the accumulated creation time. This models the task
	// instantiation overhead whose serialization in a single generator is
	// the bottleneck Figure 4 exposes (and parallel instantiation through
	// nesting removes). 0 = instantaneous creation.
	VirtualSubmitCost int64
	// EnableTrace records per-worker execution spans.
	EnableTrace bool
	// Debug enables end-of-run invariant checks: the dependency engine must
	// have fully released every fragment and no task may remain live.
	// Violations surface as an error from RunChecked (a panic from Run).
	Debug bool
	// Watchdog enables the stall watchdog (real mode only): per-worker
	// heartbeat epochs plus a sampling monitor goroutine that detects the
	// lost-wakeup signature — queued work or parked waiters coexisting with
	// free tokens/credits while dispatch makes no progress — and captures a
	// structured StallReport (Runtime.StallReports, Config.OnStall). The
	// per-dispatch cost is two uncontended atomic stores on a worker-private
	// cache line; off, it is one nil check. See watchdog.go for the
	// detection and false-positive policy.
	Watchdog bool
	// WatchdogInterval is the monitor's sampling period (default 2ms).
	WatchdogInterval time.Duration
	// WatchdogBound is how long a stall signature must persist — with
	// frozen heartbeats across every sample — before a report fires
	// (default 250ms, ~100x any legitimate admission window).
	WatchdogBound time.Duration
	// OnStall, when non-nil, receives each StallReport as it fires (called
	// on the watchdog goroutine). Reports are collected for
	// Runtime.StallReports regardless.
	OnStall func(*StallReport)
	// Verify enables the lint checks of verify.go: Touch assertions are
	// checked against the task's strong depend entries, and child depend
	// entries against the parent's. Findings accumulate in Violations.
	Verify bool
	// Cache, when non-nil, simulates one private cache per worker and
	// streams every executed task's strong dependency regions through it.
	Cache *cachesim.Config
	// SharedCache makes Cache model one cache shared by all workers (the
	// ThunderX L2 is physically shared) instead of per-worker private
	// caches. The geometry in Cache should then be the full cache (e.g.
	// cachesim.DefaultSharedL2), not a per-core share.
	SharedCache bool
	// Observer receives dependency-engine events (graph capture).
	Observer deps.Observer
}

type dataInfo struct {
	name     string
	elems    int64
	elemSize int64
}

// Runtime executes a task program under one of the two modes. A Runtime is
// single-run: create one, call Run once, then read the metrics.
type Runtime struct {
	cfg    Config
	eng    deps.Engine
	sch    sched.Queue[*Task]
	tracer *trace.Tracer
	caches *cachesim.Group

	datas   []dataInfo
	datasMu sync.Mutex

	// Affinity routing (stealing pool with a topology tree). aff is the
	// pool's hint-accepting submit interface (nil when the pool has none or
	// a single worker makes routing moot); lastW maps each DataID to the
	// worker that last ran a task whose primary data it is (-1 = none yet).
	// The table is indexed by recycle-safe state — the data object, not the
	// task or node, both of which return to their free lists on completion —
	// and grown copy-on-write under datasMu by NewData, so readers just load
	// the pointer and index (a stale snapshot only costs hint freshness).
	aff   sched.AffinityQueue[*Task]
	lastW atomic.Pointer[[]atomic.Int32]

	open      atomic.Int64 // dependency-ready, not yet started (throttle window)
	live      atomic.Int64 // instantiated, not yet completed (diagnostics)
	taskCount atomic.Int64
	flops     atomic.Int64

	// Pooled memory mode (Config.MemPool; real mode only). tasksG is the
	// shared free-list shard for Task objects; ws holds one per-worker
	// scratch set — a task lane plus reusable spec/ready/batch slices —
	// entered only while holding that worker's token, so the steady-state
	// submit→complete cycle allocates nothing.
	tasksG *mempool.Global[Task]
	ws     []workerScratch

	thr throttle.Window // admission window (nil if unthrottled or virtual)

	// Taskwait strategy (Config.TaskwaitImpl). contPool is the continuation-
	// node free list (continuation strategy, real mode only); tw counts
	// parks/handoffs/steal-resumes (Runtime.TaskwaitStats).
	twKind   TaskwaitKind
	contPool *mempool.Pool[contNode]
	tw       twStats

	// Worksharing strategy (Config.WorksharingImpl). wsPool is the chunk-
	// descriptor free list (chunked strategy, real mode only); wsc counts
	// regions/chunks/helper activity (Runtime.WsStats).
	wsKind WorksharingKind
	wsPool *mempool.Pool[wsRun]
	wsc    wsCounters

	// Record-and-replay taskgraph cache (Config.Replay; real mode only).
	// gregs maps region names to their cache slots; replayPool is the
	// countdown-node free list; recCount tracks how many regions are
	// recording (the engine edge hook is installed while non-zero).
	replayOn   bool
	replayPool *replay.Pool
	gregMu     sync.Mutex
	gregs      map[string]*graphRegion
	recMu      sync.Mutex
	recCount   int
	repStats   struct {
		records, replays, invalidations, fallbacks atomic.Int64
	}

	// Stall watchdog (Config.Watchdog; real mode only). hb holds the
	// per-worker heartbeat slots (nil when disabled — the beat fast path
	// checks exactly that); wd is the sampling monitor, alive between
	// RunChecked's acquire and its final drain.
	hb []hbSlot
	wd *watchdog

	rootDone  chan struct{}
	wallStart time.Time
	wallDur   time.Duration

	v *vstate // virtual mode state (nil in real mode)

	ran    atomic.Bool
	failed atomic.Bool // a task body panicked; drain without running bodies
	errMu  sync.Mutex
	err    error // first task failure

	vioMu      sync.Mutex
	violations []Violation
	vioCount   int64
}

// workerScratch is one worker's recycling state, padded so two workers'
// scratch never share a cache line. All fields are entered only while
// holding the worker's token (at most one goroutine at a time).
type workerScratch struct {
	tasks  mempool.Lane[Task] // 48 bytes
	specs  []deps.Spec        // 24
	ready  []*deps.Node       // 24
	batch  []*Task            // 24
	gready []*Task            // 24 (replay successor dispatch)
	hints  []int32            // 24 (affinity-routed batch dispatch)
	_      [24]byte           // 168 -> 192 (multiple of the 64-byte line)
}

// scratchFor returns worker w's scratch set, or nil when w is out of range
// or the runtime runs in the reference memory mode.
func (r *Runtime) scratchFor(w int) *workerScratch {
	if r.ws == nil || w < 0 || w >= len(r.ws) {
		return nil
	}
	return &r.ws[w]
}

// New creates a runtime.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	r := &Runtime{cfg: cfg, rootDone: make(chan struct{})}
	kind := cfg.DepEngine
	if kind == deps.EngineAuto {
		kind = deps.EngineSharded
	}
	mem := cfg.MemPool
	if mem == mempool.KindAuto {
		if cfg.Virtual {
			mem = mempool.KindReference
		} else {
			mem = mempool.KindPooled
		}
	}
	r.eng = deps.NewEngineMem(kind, cfg.Observer, mem)
	if mem == mempool.KindPooled && !cfg.Virtual {
		r.tasksG = mempool.NewGlobal(func() *Task { return &Task{} })
		r.ws = make([]workerScratch, cfg.Workers)
		for i := range r.ws {
			r.ws[i].tasks.Init(r.tasksG)
		}
	}
	if cfg.ThrottleOpenTasks > 0 && !cfg.Virtual {
		tk := cfg.ThrottleImpl
		if tk == throttle.KindAuto {
			tk = throttle.KindSharded
		}
		r.thr = throttle.New(tk, cfg.ThrottleOpenTasks, cfg.Workers)
	}
	rp := cfg.Replay
	if rp == replay.KindAuto {
		if cfg.Virtual {
			rp = replay.KindOff
		} else {
			rp = replay.KindOn
		}
	}
	if rp == replay.KindOn && !cfg.Virtual {
		r.replayOn = true
		r.replayPool = replay.NewPool()
	}
	wsk := cfg.WorksharingImpl
	if wsk == WorksharingAuto {
		wsk = WorksharingChunked
	}
	r.wsKind = wsk
	if wsk == WorksharingChunked && !cfg.Virtual {
		r.wsPool = newWsPool(cfg.Workers)
	}
	tw := cfg.TaskwaitImpl
	if tw == TaskwaitAuto {
		if cfg.Virtual {
			tw = TaskwaitParking // inert: virtual mode has no Taskwait
		} else {
			tw = TaskwaitContinuation
		}
	}
	r.twKind = tw
	if tw == TaskwaitContinuation && !cfg.Virtual {
		r.contPool = newContPool(cfg.Workers)
	}
	if cfg.EnableTrace {
		r.tracer = trace.New(cfg.Workers)
	}
	if cfg.Cache != nil {
		if cfg.SharedCache {
			r.caches = cachesim.NewSharedGroup(*cfg.Cache)
		} else {
			r.caches = cachesim.NewGroup(cfg.Workers, *cfg.Cache)
		}
	}
	if cfg.Virtual {
		r.v = newVState(cfg.Workers)
		return r
	}
	pool := cfg.ReadyPool
	if pool == sched.PoolAuto {
		switch {
		case cfg.Stealing:
			pool = sched.PoolStealing
		case cfg.Policy != sched.FIFO:
			// LIFO and Priority are global orders over all ready tasks;
			// only the central queue provides them.
			pool = sched.PoolCentral
		default:
			pool = sched.PoolStealing
		}
	}
	switch pool {
	case sched.PoolCentral:
		if cfg.Policy == sched.Priority {
			r.sch = sched.NewPriority(cfg.Workers, r.runWorker,
				func(t *Task) int64 { return t.spec.Priority })
		} else {
			r.sch = sched.New(cfg.Workers, cfg.Policy, r.runWorker)
		}
	case sched.PoolShardedCentral:
		r.sch = sched.NewShardedCentral(cfg.Workers, r.runWorker)
	case sched.PoolStealing:
		r.sch = sched.NewStealingTopo(cfg.Workers, cfg.Topology, r.runWorker)
	case sched.PoolLockedStealing:
		r.sch = sched.NewLockedStealing(cfg.Workers, r.runWorker)
	default:
		panic(fmt.Sprintf("core: unknown ReadyPool %d", pool))
	}
	if aq, ok := r.sch.(sched.AffinityQueue[*Task]); ok && cfg.Workers > 1 {
		r.aff = aq
	}
	if cfg.Watchdog {
		r.hb = make([]hbSlot, cfg.Workers)
	}
	return r
}

// NewData registers a data object of elems elements of elemSize bytes and
// returns its id. Dependencies are expressed as element intervals of a data
// object; the byte geometry only matters to the cache simulator.
func (r *Runtime) NewData(name string, elems int64, elemSize int) DataID {
	r.datasMu.Lock()
	defer r.datasMu.Unlock()
	r.datas = append(r.datas, dataInfo{name: name, elems: elems, elemSize: int64(elemSize)})
	if r.aff != nil {
		// Grow the last-worker affinity table copy-on-write: registration
		// is rare (program setup), reads are per-dispatch.
		tab := make([]atomic.Int32, len(r.datas))
		old := r.lastW.Load()
		for i := range tab {
			if old != nil && i < len(*old) {
				tab[i].Store((*old)[i].Load())
			} else {
				tab[i].Store(-1)
			}
		}
		r.lastW.Store(&tab)
	}
	return DataID(len(r.datas) - 1)
}

// Workers returns the configured worker count.
func (r *Runtime) Workers() int { return r.cfg.Workers }

// Tracer returns the tracer (nil unless EnableTrace).
func (r *Runtime) Tracer() *trace.Tracer { return r.tracer }

// CacheMissRatio returns the simulated cache miss ratio (0 if disabled).
func (r *Runtime) CacheMissRatio() float64 {
	if r.caches == nil {
		return 0
	}
	return r.caches.MissRatio()
}

// CacheCounts returns simulated hits and misses.
func (r *Runtime) CacheCounts() (hits, misses int64) {
	if r.caches == nil {
		return 0, 0
	}
	return r.caches.Counts()
}

// Flops returns the accumulated flop count declared by executed tasks.
func (r *Runtime) Flops() int64 { return r.flops.Load() }

// TaskCount returns the number of tasks submitted (excluding the root).
func (r *Runtime) TaskCount() int64 { return r.taskCount.Load() }

// WallTime returns the real-mode wall-clock duration of Run.
func (r *Runtime) WallTime() time.Duration { return r.wallDur }

// VirtualTime returns the virtual-mode makespan in cost units.
func (r *Runtime) VirtualTime() int64 {
	if r.v == nil {
		return 0
	}
	return r.v.now
}

// EffectiveParallelism returns total busy time over the run's span: real
// mode uses the trace (requires EnableTrace); virtual mode uses the
// simulator's exact accounting. This is the metric of Figure 6.
func (r *Runtime) EffectiveParallelism() float64 {
	if r.v != nil {
		if r.v.now == 0 {
			return 0
		}
		return float64(r.v.busySum) / float64(r.v.now)
	}
	if r.tracer == nil {
		return 0
	}
	return r.tracer.EffectiveParallelism(int64(r.wallDur))
}

// DepStats returns dependency-engine activity counters.
func (r *Runtime) DepStats() deps.Stats { return r.eng.Stats() }

// MemStats returns the dependency engine's memory-pool counters;
// pooled=false (and zero counters) in the reference memory mode. The
// Outstanding leak accounting is exact once the run has drained.
func (r *Runtime) MemStats() (deps.MemStats, bool) { return r.eng.MemStats() }

// TaskPoolStats returns the Task free-list counters (zero in the
// reference memory mode or virtual mode). Worker goroutines recycle their
// final task shortly after the run ends, so Outstanding may be briefly
// positive right after Run returns.
func (r *Runtime) TaskPoolStats() mempool.Stats {
	if r.tasksG == nil {
		return mempool.Stats{}
	}
	return r.tasksG.Stats()
}

// ReplayStats returns the record-and-replay cache's counters: regions
// recorded, executions replayed from a recording, recordings invalidated
// by a shape change, and live fallbacks (guard misses and ineligible
// shapes). Zero when the cache is disabled or no Graph region ran.
func (r *Runtime) ReplayStats() replay.Stats {
	return replay.Stats{
		Records:       r.repStats.records.Load(),
		Replays:       r.repStats.replays.Load(),
		Invalidations: r.repStats.invalidations.Load(),
		Fallbacks:     r.repStats.fallbacks.Load(),
	}
}

// ReplayPoolStats returns the countdown-node free-list counters of the
// record-and-replay cache (zero when the cache is disabled). Outstanding
// must be zero once the run has drained: every replayed region returns
// its nodes at its barrier.
func (r *Runtime) ReplayPoolStats() mempool.Stats {
	if r.replayPool == nil {
		return mempool.Stats{}
	}
	return r.replayPool.Stats()
}

// ThrottleStats returns the throttle window's diagnostic counters (zero
// when the throttle is disabled or in virtual mode).
func (r *Runtime) ThrottleStats() throttle.Stats {
	if r.thr == nil {
		return throttle.Stats{}
	}
	return r.thr.Stats()
}

// Run executes root as the implicit outermost task and returns when the
// whole task tree has completed. It may be called once per Runtime. If a
// task body panics, Run re-panics with the resulting *TaskError after the
// graph has drained; callers that prefer an error value use RunChecked.
func (r *Runtime) Run(root func(tc *TaskContext)) {
	if err := r.RunChecked(root); err != nil {
		panic(err)
	}
}

// RunChecked executes root as the implicit outermost task and returns when
// the whole task tree has completed. A panic in any task body is recovered
// and returned as a *TaskError: the runtime stops invoking further bodies
// and drains the remaining dependency graph so no goroutine or token leaks.
// With Config.Debug it additionally verifies end-of-run engine invariants.
func (r *Runtime) RunChecked(root func(tc *TaskContext)) error {
	if r.ran.Swap(true) {
		panic("core: Runtime.Run called twice; create a new Runtime per run")
	}
	if r.cfg.Virtual {
		r.runVirtual(root)
		return r.runErr()
	}
	w := r.sch.Acquire()
	r.wallStart = time.Now()
	if r.hb != nil {
		r.wd = r.newWatchdog()
		go r.wd.run()
		defer r.wd.shutdown()
	}
	rootTask := r.newTask(nil, TaskSpec{Label: "main", Body: root}, -1)
	rootTask.node = r.eng.NewNode(nil, "main", rootTask)
	r.eng.Register(rootTask.node, nil)
	tc := &TaskContext{rt: r, task: rootTask, worker: w}
	r.invokeBody(rootTask, tc)
	// Implicit wait at the end of the program (like the end of an OpenMP
	// parallel region): wait for the children, then complete the root.
	tc.Taskwait()
	ready, _ := r.finishBody(rootTask, tc.worker)
	r.dispatchAll(ready, tc.worker)
	r.sch.Yield(tc.worker)
	<-r.rootDone
	r.wallDur = time.Since(r.wallStart)
	return r.runErr()
}

func (r *Runtime) now() int64 {
	return int64(time.Since(r.wallStart))
}

// convertDeps translates the public Dep slice into engine specs. In the
// pooled memory mode the specs land in worker's reusable scratch slice:
// the engine copies each Spec value during Register (only the Ivs slices,
// which belong to the caller, are retained), so the scratch is free for
// the worker's next submit as soon as the Register call returns.
func (r *Runtime) convertDeps(ds []Dep, worker int) []deps.Spec {
	if len(ds) == 0 {
		return nil
	}
	var specs []deps.Spec
	ws := r.scratchFor(worker)
	if ws != nil {
		specs = ws.specs[:0]
	} else {
		specs = make([]deps.Spec, 0, len(ds))
	}
	for _, d := range ds {
		specs = append(specs, deps.Spec{Data: d.Data, Type: d.Type, Weak: d.Weak, Ivs: d.Ivs})
	}
	if ws != nil {
		ws.specs = specs
	}
	return specs
}

// feedCache streams the regions the task actually accesses through the
// cache of the worker about to run it: Touches if declared, otherwise the
// strong dependency entries. Weak entries are always skipped: the paper's
// weak accesses declare that the task itself performs no access (§VI).
func (r *Runtime) feedCache(t *Task, worker int) {
	touches := t.spec.Touches
	if touches == nil {
		touches = t.spec.Deps
	}
	for _, d := range touches {
		if d.Weak {
			continue
		}
		elemSize := int64(8)
		r.datasMu.Lock()
		if int(d.Data) < len(r.datas) {
			elemSize = r.datas[d.Data].elemSize
		}
		r.datasMu.Unlock()
		base := uint64(d.Data) << 40 // distinct address spaces per data object
		for _, iv := range d.Ivs {
			if iv.Empty() {
				continue
			}
			r.caches.Access(worker, base+uint64(iv.Lo*elemSize), uint64(iv.Len()*elemSize))
		}
	}
}

// String summarizes the runtime's configuration (diagnostics).
func (r *Runtime) String() string {
	return fmt.Sprintf("Runtime{workers=%d virtual=%v}", r.cfg.Workers, r.cfg.Virtual)
}
