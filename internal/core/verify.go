package core

import (
	"fmt"

	"repro/internal/regions"
)

// Verification ("lint") mode: with Config.Verify the runtime checks that
// the program's depend annotations actually protect the accesses the tasks
// perform, in the spirit of Nanos6's verification mode. Two checks run:
//
//   - Touch assertions: a task body calls TaskContext.Touch to declare an
//     access it is about to perform; the runtime checks the touch against
//     the task's own strong depend entries. Weak entries are not valid
//     coverage — they declare that the task performs no access itself
//     (§VI).
//   - Child-entry coverage: at Submit, each depend entry of the child must
//     be covered by the parent's entries over the same data (weak or
//     strong — both are protection; a write entry needs a writable cover).
//     A child of a non-root task that accesses data its parent does not
//     declare is unprotected against the parent's siblings — exactly the
//     data-race hazard §III describes.
//
// Violations are recorded, not fatal: the run continues and the findings
// are read back with Runtime.Violations.

// ViolationKind classifies a verification finding.
type ViolationKind uint8

const (
	// VTouch is a Touch assertion not covered by the task's strong entries.
	VTouch ViolationKind = iota
	// VChildCoverage is a child depend entry not covered by the parent's
	// depend entries.
	VChildCoverage
)

// String names the violation kind.
func (k ViolationKind) String() string {
	if k == VChildCoverage {
		return "child-coverage"
	}
	return "touch"
}

// Violation is one verification finding.
type Violation struct {
	// Kind classifies the finding.
	Kind ViolationKind
	// Task is the label of the offending task (for VChildCoverage, the
	// child).
	Task string
	// Parent is the parent task's label (VChildCoverage only).
	Parent string
	// Data is the data object involved.
	Data DataID
	// Write reports whether the unprotected access writes.
	Write bool
	// Missing are the uncovered element intervals.
	Missing []Interval
}

// String renders the finding as a one-line lint message.
func (v Violation) String() string {
	rw := "read"
	if v.Write {
		rw = "write"
	}
	if v.Kind == VChildCoverage {
		return fmt.Sprintf("child-coverage: task %q %ss data %d %v outside parent %q's depend entries",
			v.Task, rw, v.Data, v.Missing, v.Parent)
	}
	return fmt.Sprintf("touch: task %q %ss data %d %v without a covering strong depend entry",
		v.Task, rw, v.Data, v.Missing)
}

// maxViolations bounds the stored findings; the total is still counted.
const maxViolations = 100

func (r *Runtime) addViolation(v Violation) {
	r.vioMu.Lock()
	r.vioCount++
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, v)
	}
	r.vioMu.Unlock()
}

// Violations returns the verification findings recorded so far (at most the
// first 100; ViolationCount gives the total). Empty unless Config.Verify.
func (r *Runtime) Violations() []Violation {
	r.vioMu.Lock()
	defer r.vioMu.Unlock()
	out := make([]Violation, len(r.violations))
	copy(out, r.violations)
	return out
}

// ViolationCount returns the total number of verification findings.
func (r *Runtime) ViolationCount() int64 {
	r.vioMu.Lock()
	defer r.vioMu.Unlock()
	return r.vioCount
}

// uncovered returns the portions of ivs not covered by the entries of deps
// on data for which keep returns true.
func uncovered(ivs []Interval, ds []Dep, data DataID, keep func(Dep) bool) []Interval {
	set := regions.NewSet()
	for _, iv := range ivs {
		if !iv.Empty() {
			set.Add(iv)
		}
	}
	for _, d := range ds {
		if d.Data != data || !keep(d) {
			continue
		}
		for _, iv := range d.Ivs {
			set.Remove(iv)
		}
	}
	if set.Len() == 0 {
		return nil
	}
	return set.Intervals()
}

// Touch asserts that the task body is, at this point, actually reading
// (write=false) or writing (write=true) the given element intervals of
// data. In Verify mode the runtime checks the touch against the task's own
// strong depend entries — a write needs an Out/InOut/Red entry, a read an
// In/InOut/Red entry — and records a Violation when part of the touch is
// uncovered. The root task owns every registered data object and is exempt.
// Without Config.Verify, Touch is a no-op, so instrumented programs can
// leave the assertions in place.
func (tc *TaskContext) Touch(data DataID, write bool, ivs ...Interval) {
	r := tc.rt
	if !r.cfg.Verify || tc.task.parent == nil {
		return
	}
	missing := uncovered(ivs, tc.task.spec.Deps, data, func(d Dep) bool {
		if d.Weak {
			return false
		}
		if write {
			return d.Type.Writes()
		}
		return d.Type.Reads()
	})
	if missing != nil {
		r.addViolation(Violation{
			Kind: VTouch, Task: tc.task.spec.Label, Data: data,
			Write: write, Missing: missing,
		})
	}
}

// verifyChildCoverage checks, at Submit time, that every depend entry of
// the child spec is covered by the submitting task's own entries. The root
// task's domain owns everything, so submissions from the root are exempt.
func (r *Runtime) verifyChildCoverage(parent *Task, spec *TaskSpec) {
	if parent.parent == nil {
		return
	}
	for _, cd := range spec.Deps {
		write := cd.Type.Writes()
		missing := uncovered(cd.Ivs, parent.spec.Deps, cd.Data, func(pd Dep) bool {
			if write {
				return pd.Type.Writes()
			}
			return true // any parent entry protects a read
		})
		if missing != nil {
			r.addViolation(Violation{
				Kind: VChildCoverage, Task: spec.Label, Parent: parent.spec.Label,
				Data: cd.Data, Write: write, Missing: missing,
			})
		}
	}
}
