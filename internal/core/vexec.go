package core

import (
	"container/heap"
	"fmt"

	"repro/internal/sched"
)

// Virtual-time execution: a discrete-event simulation over the same
// dependency engine. Each task's body runs (instantaneously) when the task
// is assigned to a virtual core; the core stays busy for the task's Cost
// plus its accumulated creation cost, and the task's completion pipeline
// (weakwait hand-over, release, cascades) fires at that virtual end time.
// With VirtualSubmitCost > 0, a created task additionally cannot start
// before its creator "reaches" it (arrival times), which models the task
// instantiation serialization the paper's Figure 4 exposes.
//
// This lets the strong-scaling experiments (Figures 4 and 6) sweep 4–48
// cores regardless of the host machine, while preserving every
// dependency-timing effect of the runtime.

type vitem struct {
	end    int64
	seq    int64 // FIFO tie-break for determinism
	task   *Task
	worker int
}

type vheap []vitem

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *vheap) Push(x any)   { *h = append(*h, x.(vitem)) }
func (h *vheap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type vstate struct {
	idle     []int
	heap     vheap // pending completions
	arrivals vheap // tasks ready on dependencies but not yet created
	ready    []*Task
	now      int64
	busySum  int64
	seq      int64
}

func newVState(workers int) *vstate {
	v := &vstate{}
	for w := workers - 1; w >= 0; w-- {
		v.idle = append(v.idle, w)
	}
	return v
}

// popReady removes the next startable ready task according to the queue
// policy.
func (r *Runtime) popReady() *Task {
	v := r.v
	var t *Task
	switch r.cfg.Policy {
	case sched.LIFO:
		t = v.ready[len(v.ready)-1]
		v.ready = v.ready[:len(v.ready)-1]
	case sched.Priority:
		// Linear scan; first-of-max keeps FIFO order between equals. The
		// virtual ready list is short in the experiments that use this.
		best := 0
		for i := 1; i < len(v.ready); i++ {
			if v.ready[i].spec.Priority > v.ready[best].spec.Priority {
				best = i
			}
		}
		t = v.ready[best]
		v.ready = append(v.ready[:best], v.ready[best+1:]...)
	default:
		t = v.ready[0]
		v.ready = v.ready[1:]
	}
	return t
}

// venqueue files a dependency-ready task: into the ready list if it has
// been created by now, otherwise into the arrivals heap.
func (r *Runtime) venqueue(t *Task) {
	v := r.v
	if t.vArrival > v.now {
		v.seq++
		heap.Push(&v.arrivals, vitem{end: t.vArrival, seq: v.seq, task: t})
		return
	}
	v.ready = append(v.ready, t)
}

func (r *Runtime) runVirtual(root func(tc *TaskContext)) {
	v := r.v
	rootTask := r.newTask(nil, TaskSpec{Label: "main"}, -1)
	rootTask.node = r.eng.NewNode(nil, "main", rootTask)
	r.eng.Register(rootTask.node, nil)
	tc := &TaskContext{rt: r, task: rootTask, worker: -1}
	rootTask.spec.Body = root
	r.invokeBody(rootTask, tc)
	rootReady, _ := r.finishBody(rootTask, -1)
	r.dispatchAll(rootReady, -1)

	for {
		for len(v.idle) > 0 && len(v.ready) > 0 {
			w := v.idle[len(v.idle)-1]
			v.idle = v.idle[:len(v.idle)-1]
			r.startVirtualTask(r.popReady(), w)
		}
		// Advance to the earliest event: a task arrival (creation) or a
		// completion. Arrivals at the same instant are processed first so
		// the freed tasks are visible to the assignment pass.
		haveA, haveC := len(v.arrivals) > 0, len(v.heap) > 0
		switch {
		case haveA && (!haveC || v.arrivals[0].end <= v.heap[0].end):
			it := heap.Pop(&v.arrivals).(vitem)
			v.now = it.end
			v.ready = append(v.ready, it.task)
		case haveC:
			it := heap.Pop(&v.heap).(vitem)
			v.now = it.end
			ready, _ := r.finishBody(it.task, -1)
			// Direct successor hand-off, as in real mode: the freed core
			// immediately runs one startable task this completion readied.
			next := (*Task)(nil)
			for _, n := range ready {
				t := n.User.(*Task)
				if next == nil && !r.cfg.NoHandoff && t.vArrival <= v.now {
					next = t
					continue
				}
				r.venqueue(t)
			}
			if next != nil {
				r.startVirtualTask(next, it.worker)
			} else {
				v.idle = append(v.idle, it.worker)
			}
		default:
			// No pending events.
			goto done
		}
	}
done:
	if r.live.Load() != 0 {
		panic(fmt.Sprintf("core: virtual run deadlocked with %d live tasks", r.live.Load()))
	}
	r.wallDur = 0
}

// startVirtualTask assigns t to virtual core w at the current virtual time:
// the body runs now (creating children), and completion fires after the
// task's cost plus its accumulated creation cost.
func (r *Runtime) startVirtualTask(t *Task, w int) {
	r.taskStarted(t, -1)
	v := r.v
	if r.caches != nil {
		r.feedCache(t, w)
	}
	tc := &TaskContext{rt: r, task: t, worker: w}
	r.invokeBody(t, tc)
	cost := t.spec.Cost
	if cost <= 0 {
		cost = 1
	}
	cost += t.vCreate
	if t.spec.Flops > 0 {
		r.flops.Add(t.spec.Flops)
	}
	if r.tracer != nil {
		r.tracer.Record(w, t.kind, v.now, v.now+cost)
	}
	v.busySum += cost
	v.seq++
	t.vEnd = v.now + cost
	heap.Push(&v.heap, vitem{end: t.vEnd, seq: v.seq, task: t, worker: w})
}
