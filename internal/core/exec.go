package core

import "repro/internal/deps"

// Real-mode execution: each ready task runs on its own goroutine while
// holding a worker token. A worker that completes a task prefers to run one
// of the tasks that completion just made ready (direct successor hand-off),
// which keeps the successor on the core that produced its input — the
// locality policy behind the lower L2 miss ratios of Figure 3.

// enqueue makes a ready task runnable in the current mode. from is the
// submitting worker, used by the stealing pool for deque affinity (-1 when
// no worker context applies).
func (r *Runtime) enqueue(t *Task, from int) {
	if r.v != nil {
		r.venqueue(t)
		return
	}
	r.sch.Submit(t, from)
}

// dispatchAll enqueues every ready node. Newly ready tasks enter the
// throttle window here (the window counts ready-but-unstarted tasks). In
// real mode the whole batch is admitted in one scheduler call — a release
// cascade that readies many successors pays one ready-pool lock
// acquisition, not one per edge.
func (r *Runtime) dispatchAll(nodes []*deps.Node, from int) {
	if len(nodes) == 0 {
		return
	}
	r.windowEnter(int64(len(nodes)))
	if r.v != nil {
		for _, n := range nodes {
			r.venqueue(n.User.(*Task))
		}
		return
	}
	if len(nodes) == 1 && r.aff == nil {
		r.sch.Submit(nodes[0].User.(*Task), from)
		return
	}
	var tasks []*Task
	var hints []int32
	ws := r.scratchFor(from)
	if ws != nil {
		tasks = ws.batch[:0]
		hints = ws.hints[:0]
	} else {
		tasks = make([]*Task, 0, len(nodes))
		if r.aff != nil {
			hints = make([]int32, 0, len(nodes))
		}
	}
	for _, n := range nodes {
		tasks = append(tasks, n.User.(*Task))
		if r.aff != nil {
			hints = append(hints, r.affinityHint(n))
		}
	}
	// The pools copy every item out of the slices before the submit call
	// returns, so the scratch is immediately reusable.
	if r.aff != nil {
		// Affinity routing: each node's ReadyData names the data object
		// whose grant made it ready; a task over data another shard group
		// last touched is handed to that group instead of parked on the
		// submitter's deque, so the group with the data warm finds it
		// without a cross-group steal.
		r.aff.SubmitBatchAffinity(tasks, hints, from)
	} else {
		r.sch.SubmitBatch(tasks, from)
	}
	if ws != nil {
		clear(tasks)
		ws.batch = tasks[:0]
		ws.hints = hints[:0]
	}
}

// affinityHint returns the worker that last ran a task whose primary data
// is n's ready-data object — the locality hint the deps engines record on
// each node — or -1 when unknown.
func (r *Runtime) affinityHint(n *deps.Node) int32 {
	rd, ok := n.ReadyData()
	if !ok {
		return -1
	}
	tab := r.lastW.Load()
	if tab == nil || int(rd) >= len(*tab) {
		return -1
	}
	return (*tab)[rd].Load()
}

// noteLastWorker records worker w as the last to run a task whose primary
// data is d (the recycle-safe half of the affinity hint: the node that
// carries ReadyData may be recycled, the data object is forever).
func (r *Runtime) noteLastWorker(d deps.DataID, w int) {
	tab := r.lastW.Load()
	if tab != nil && int(d) < len(*tab) {
		(*tab)[d].Store(int32(w))
	}
}

// dispatchPreferFirst enqueues all but one ready task and returns that one
// for worker w to run next (nil if none or hand-off disabled). Among the
// readied successors it prefers one whose readiness was granted over the
// finished task's primary data object (the deps engines record the granting
// data as each node's locality hint): that successor consumes what this
// worker just produced, so running it here keeps the data warm, and the
// rest of the batch lands on this worker's shard for the other workers to
// steal. donePD is the finished task's primary data, captured by the caller
// before the completion pipeline ran (the finished node may already be
// recycled by now in the pooled memory mode).
func (r *Runtime) dispatchPreferFirst(nodes []*deps.Node, w int, donePD deps.DataID, doneOK bool) *Task {
	if len(nodes) == 0 {
		return nil
	}
	if r.cfg.NoHandoff {
		r.dispatchAll(nodes, w)
		return nil
	}
	pick := 0
	if len(nodes) > 1 && doneOK {
		for i, n := range nodes {
			if i > 3 { // bounded scan: the hint is a heuristic
				break
			}
			if rd, ok := n.ReadyData(); ok && rd == donePD {
				pick = i
				break
			}
		}
	}
	next := nodes[pick].User.(*Task)
	r.windowEnter(1)
	nodes[pick] = nodes[0] // displaced head joins the batch
	r.dispatchAll(nodes[1:], w)
	return next
}

// runWorker is the sched spawn callback: it runs tasks until neither a
// hand-off successor nor queued work remains. The worker id is re-read
// after every task: a body that blocks (Taskwait, Taskgroup, throttle)
// yields its token and may resume holding a different one, and continuing
// with the stale id would double-release it — putting two goroutines on
// one worker and corrupting the per-worker cache and trace state.
//
// A task arriving with a continuation node attached is not new work but a
// parked taskwait riding the ready pool: the worker hands its token to the
// parked goroutine and exits in its place. The unlocked cont read is
// ordered by the pool: the waiter sets cont (then the last child reads it
// under the parent's mu and submits), and the pool's Submit/pop pair
// orders that write before this read. The intercept runs before
// taskStarted, so the throttle window never counts a resume.
//
// A task arriving with a chunk descriptor attached is a worksharing
// invitation (announced by wsExecute after the task's own body started):
// the worker joins the chunk drain instead of executing a body, releases
// its announce-hold, and looks for more work. The unlocked wsRun read is
// ordered by the pool's Announce/pop pair exactly like cont; the task's
// first dispatch — the one that runs the body — always sees wsRun nil,
// which is only set from inside the running body.
func (r *Runtime) runWorker(t *Task, w int) {
	for {
		if cn := t.cont; cn != nil {
			r.resumeContinuation(t, cn, w)
			return
		}
		if wr := t.wsRun; wr != nil {
			w = r.runWsHelper(t, wr, w)
			nt, ok := r.sch.Finish(w)
			if !ok {
				return
			}
			t = nt
			continue
		}
		next, cur := r.executeTask(t, w)
		w = cur
		if next == nil {
			nt, ok := r.sch.Finish(w)
			if !ok {
				return
			}
			next = nt
		}
		t = next
	}
}

// executeTask runs one task body and its completion pipeline, returning the
// hand-off successor if any and the worker the goroutine holds afterwards.
func (r *Runtime) executeTask(t *Task, w int) (*Task, int) {
	r.beat(w, hbTask)
	r.taskStarted(t, w)
	tc := &TaskContext{rt: r, task: t, worker: w}
	if r.caches != nil {
		r.feedCache(t, w)
	}
	var start int64
	if r.tracer != nil {
		start = r.now()
	}
	r.invokeBody(t, tc)
	if r.tracer != nil {
		// If the body blocked in Taskwait, the worker may have changed; the
		// span is attributed to the final worker. Benchmarks that need
		// precise per-worker busy time avoid in-body Taskwait (they use the
		// wait-clause completion instead), matching the paper's variants.
		r.tracer.Record(tc.worker, t.kind, start, r.now())
	}
	if t.spec.Flops > 0 {
		r.flops.Add(t.spec.Flops)
	}
	// The hand-off locality hint must be read before the completion
	// pipeline: completing the node may recycle it (pooled memory mode).
	// Replayed region tasks carry no engine node (their dependency state
	// is a frozen countdown cell) and use no locality hint.
	var donePD deps.DataID
	var doneOK bool
	if t.node != nil {
		donePD, doneOK = t.node.PrimaryData()
	}
	worker := tc.worker
	if doneOK && r.aff != nil && worker >= 0 {
		// Record the affinity hint before the completion cascade dispatches
		// successors, so a successor readied by this completion can be
		// routed toward the shard group that just produced its input.
		r.noteLastWorker(donePD, worker)
	}
	ready, completed := r.finishBody(t, tc.worker)
	if completed {
		// Completed here, in this goroutine: nothing references t anymore
		// (cascade-completed ancestors are recycled inside completeTask).
		r.recycleTask(t, worker)
	}
	return r.dispatchPreferFirst(ready, worker, donePD, doneOK), worker
}
