package core

import (
	"testing"
)

func TestTouchCoveredIsClean(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "leaf",
			Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 100)}}},
			Body: func(tc *TaskContext) {
				tc.Touch(d, false, iv(0, 100)) // read
				tc.Touch(d, true, iv(10, 90))  // write
			},
		})
	})
	if n := rt.ViolationCount(); n != 0 {
		t.Fatalf("clean program reported %d violations: %v", n, rt.Violations())
	}
}

func TestTouchWriteUnderReadEntry(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "reader",
			Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{iv(0, 100)}}},
			Body: func(tc *TaskContext) {
				tc.Touch(d, true, iv(20, 40)) // write under depend(in:)
			},
		})
	})
	vs := rt.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	v := vs[0]
	if v.Kind != VTouch || !v.Write || v.Task != "reader" {
		t.Errorf("violation = %+v", v)
	}
	if len(v.Missing) != 1 || !v.Missing[0].Equal(iv(20, 40)) {
		t.Errorf("Missing = %v, want [20,40)", v.Missing)
	}
}

func TestTouchWeakEntryIsNotCoverage(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "outer",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{iv(0, 100)}}},
			Body: func(tc *TaskContext) {
				// A weak entry declares the task performs no access itself
				// (§VI); touching through it is a lint error.
				tc.Touch(d, false, iv(0, 10))
			},
		})
	})
	vs := rt.Violations()
	if len(vs) != 1 || vs[0].Kind != VTouch || vs[0].Write {
		t.Fatalf("want one read-touch violation, got %v", vs)
	}
}

func TestTouchPartialCoverageReportsGaps(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "partial",
			Deps: []Dep{
				{Data: d, Type: In, Ivs: []Interval{iv(10, 20), iv(40, 50)}},
			},
			Body: func(tc *TaskContext) {
				tc.Touch(d, false, iv(10, 50))
			},
		})
	})
	vs := rt.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	want := []Interval{iv(20, 40)}
	if len(vs[0].Missing) != 1 || !vs[0].Missing[0].Equal(want[0]) {
		t.Errorf("Missing = %v, want %v", vs[0].Missing, want)
	}
}

func TestTouchRootExemptAndNoVerifyNoop(t *testing.T) {
	// Root is exempt even in Verify mode.
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Touch(d, true, iv(0, 100))
	})
	if n := rt.ViolationCount(); n != 0 {
		t.Fatalf("root touch reported %d violations", n)
	}
	// Without Verify, even bad touches record nothing.
	rt2 := New(Config{Workers: 2})
	d2 := rt2.NewData("x", 100, 8)
	rt2.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "leaf", Body: func(tc *TaskContext) {
			tc.Touch(d2, true, iv(0, 100))
		}})
	})
	if n := rt2.ViolationCount(); n != 0 {
		t.Fatalf("Verify off but %d violations recorded", n)
	}
}

func TestChildCoverageViolation(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 200, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "outer",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{iv(0, 100)}}},
			Body: func(tc *TaskContext) {
				// In range: fine.
				tc.Submit(TaskSpec{
					Label: "ok",
					Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 50)}}},
				})
				// Reaches past the parent's entry: the §III hazard.
				tc.Submit(TaskSpec{
					Label: "escapes",
					Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{iv(50, 150)}}},
				})
			},
		})
	})
	vs := rt.Violations()
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	v := vs[0]
	if v.Kind != VChildCoverage || v.Task != "escapes" || v.Parent != "outer" {
		t.Errorf("violation = %+v", v)
	}
	if len(v.Missing) != 1 || !v.Missing[0].Equal(iv(100, 150)) {
		t.Errorf("Missing = %v, want [100,150)", v.Missing)
	}
}

func TestChildWriteNeedsWritableParentCover(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	e := rt.NewData("y", 100, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "outer",
			WeakWait: true,
			Deps: []Dep{
				{Data: d, Type: In, Weak: true, Ivs: []Interval{iv(0, 100)}},
				{Data: e, Type: InOut, Weak: true, Ivs: []Interval{iv(0, 100)}},
			},
			Body: func(tc *TaskContext) {
				// Writable child under weakinout parent: clean.
				tc.Submit(TaskSpec{
					Label: "writer-ok",
					Deps:  []Dep{{Data: e, Type: Out, Ivs: []Interval{iv(0, 100)}}},
				})
				// Reader under weakin parent: clean (any entry protects reads).
				tc.Submit(TaskSpec{
					Label: "reader-ok",
					Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{iv(0, 100)}}},
				})
			},
		})
	})
	if n := rt.ViolationCount(); n != 0 {
		t.Fatalf("clean nesting reported %d violations: %v", n, rt.Violations())
	}
}

func TestChildCoverageRootExempt(t *testing.T) {
	rt := New(Config{Workers: 2, Verify: true})
	d := rt.NewData("x", 100, 8)
	rt.Run(func(tc *TaskContext) {
		// Submissions from the root may name anything.
		tc.Submit(TaskSpec{
			Label: "top",
			Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{iv(0, 100)}}},
		})
	})
	if n := rt.ViolationCount(); n != 0 {
		t.Fatalf("root submission reported %d violations", n)
	}
}

func TestViolationStringForms(t *testing.T) {
	v1 := Violation{Kind: VTouch, Task: "t", Data: 1, Write: true, Missing: []Interval{iv(0, 4)}}
	v2 := Violation{Kind: VChildCoverage, Task: "c", Parent: "p", Data: 2, Missing: []Interval{iv(8, 9)}}
	if v1.String() == "" || v2.String() == "" || v1.String() == v2.String() {
		t.Errorf("String forms degenerate: %q vs %q", v1, v2)
	}
}
