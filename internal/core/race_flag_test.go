package core

// raceEnabledCore is set by race_enabled_test.go in race-instrumented
// builds.
var raceEnabledCore = false
