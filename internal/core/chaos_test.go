package core

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/randtest"
)

// Chaos soak: the full real-mode stack — sharded deps, stealing pool,
// sharded throttle, pooled memory, record-and-replay regions, continuation
// taskwait, chunked worksharing — driven under randomized seeded failpoint
// schedules (internal/chaos) that widen every lock-free race window the
// runtime owns. The oracles are the existing ones: a deterministic final
// data state (writers chain, so any legal order agrees), the Debug leak
// joins, direct pool/credit drain checks, and the stall watchdog reporting
// nothing. Failing seeds replay with -seed.

// chaosStack is the fully-sharded configuration the soak exercises.
func chaosStack() Config {
	return Config{
		Workers:           4,
		Stealing:          true,
		ThrottleOpenTasks: 6,
		Watchdog:          true,
		Debug:             true,
	}
}

// runChaosProgram executes the mixed workload and returns the final-state
// checksum. The program has a fixed shape per (iters, width), so runs under
// different chaos schedules must agree exactly:
//
//   - iters graph-region executions of a width-task dependency mesh
//     (records once, replays after — and every forced ReplayInvalidate
//     falls back live mid-region and re-records);
//   - a dependency-carrying parent with a nested submit + blocking
//     taskwait per iteration (continuation handoffs under chaos);
//   - a worksharing sweep and a taskgroup burst per iteration.
func runChaosProgram(r *Runtime, iters, width int) (int64, error) {
	const elems = 64
	d0 := r.NewData("c0", elems, 8)
	d1 := r.NewData("c1", elems, 8)
	state := make([]int64, 2*elems)
	err := r.RunChecked(func(tc *TaskContext) {
		for it := 0; it < iters; it++ {
			mult := int64(2*it + 3)
			tc.Graph("mesh", func(tc *TaskContext) {
				for i := 0; i < width; i++ {
					lo := int64(i%4) * 16
					iv := Interval{Lo: lo, Hi: lo + 16}
					tc.Submit(TaskSpec{
						Label: "mesh",
						Deps: []Dep{
							{Data: d0, Type: InOut, Ivs: []Interval{iv}},
							{Data: d1, Type: In, Ivs: []Interval{{Lo: 0, Hi: 8}}},
						},
						Body: func(*TaskContext) {
							for e := iv.Lo; e < iv.Hi; e++ {
								state[e] = state[e]*mult + 1
							}
						},
					})
				}
			})
			tc.Submit(TaskSpec{
				Label: "parent",
				Deps:  []Dep{{Data: d1, Type: InOut, Ivs: []Interval{{Lo: 8, Hi: 16}}}},
				Body: func(tc *TaskContext) {
					tc.Submit(TaskSpec{
						Label: "child",
						Body: func(*TaskContext) {
							for e := int64(8); e < 16; e++ {
								state[elems+e] += mult
							}
						},
					})
					tc.Taskwait()
					state[elems]++
				},
			})
			tc.Worksharing(WorksharingSpec{
				Label: "sweep",
				Lo:    16, Hi: elems, Grain: 8,
				Deps: func(lo, hi int64) []Dep {
					return []Dep{{Data: d1, Type: InOut, Ivs: []Interval{{Lo: lo, Hi: hi}}}}
				},
				Body: func(tc *TaskContext, lo, hi int64) {
					for e := lo; e < hi; e++ {
						state[elems+e] += mult
					}
				},
			})
			tc.Taskgroup(func() {
				for i := 0; i < 4; i++ {
					tc.Submit(TaskSpec{Label: "burst", Body: func(*TaskContext) {}})
				}
			})
		}
	})
	var sum int64
	for i, v := range state {
		sum += v * int64(i+1)
	}
	return sum, err
}

func soakSizes(t *testing.T) (iters, width int) {
	if testing.Short() {
		return 4, 8
	}
	return 8, 12
}

// TestChaosSoak runs the mixed workload under >= 10 seeded failpoint
// schedules spanning fire rates from "always" to sparse, comparing every
// run's checksum against a chaos-off reference and asserting a full drain
// and zero stall reports each time.
func TestChaosSoak(t *testing.T) {
	iters, width := soakSizes(t)
	ref := New(chaosStack())
	want, err := runChaosProgram(ref, iters, width)
	if err != nil {
		t.Fatalf("chaos-off reference failed: %v", err)
	}
	defer chaos.Disable()
	for _, seed := range randtest.SeedRange(t, 1, 13) {
		for _, rate := range []uint32{1, 4, 16} {
			t.Run(fmt.Sprintf("seed=%d/rate=%d", seed, rate), func(t *testing.T) {
				chaos.Enable(chaos.UniformSchedule(uint64(seed), rate))
				defer chaos.Disable()
				r := New(chaosStack())
				got, err := runChaosProgram(r, iters, width)
				if err != nil {
					t.Fatalf("seed %d rate %d: run failed: %v (replay with -seed=%d)", seed, rate, err, seed)
				}
				calls, hits := chaos.Counts()
				var totalCalls, totalHits uint64
				for s := 0; s < chaos.NumSites; s++ {
					totalCalls += calls[s]
					totalHits += hits[s]
				}
				if totalCalls == 0 || totalHits == 0 {
					t.Fatalf("seed %d rate %d: chaos never engaged (calls=%d hits=%d) — injection sites unreachable?",
						seed, rate, totalCalls, totalHits)
				}
				if got != want {
					t.Fatalf("seed %d rate %d: checksum %d != reference %d (replay with -seed=%d)",
						seed, rate, got, want, seed)
				}
				assertDrained(t, r)
				if reps := r.StallReports(); len(reps) != 0 {
					t.Fatalf("seed %d rate %d: watchdog fired %d times under chaos: %v", seed, rate, len(reps), reps[0].String())
				}
			})
		}
	}
}

// TestChaosSoakWithPanic combines the two robustness layers: a member task
// panics mid-workload while failpoints are firing at full rate. The run
// must still surface exactly one TaskError and drain to zero outstanding
// everything.
func TestChaosSoakWithPanic(t *testing.T) {
	defer chaos.Disable()
	for _, seed := range randtest.SeedRange(t, 1, 5) {
		chaos.Enable(chaos.UniformSchedule(uint64(seed), 2))
		r := New(chaosStack())
		r.NewData("p", 32, 8)
		err := r.RunChecked(func(tc *TaskContext) {
			for it := 0; it < 4; it++ {
				tc.Graph("pg", func(tc *TaskContext) {
					for i := 0; i < 6; i++ {
						i := i
						tc.Submit(TaskSpec{
							Label: "pmember",
							Body: func(*TaskContext) {
								if i == 3 {
									panic("chaos boom")
								}
							},
						})
					}
				})
			}
		})
		chaos.Disable()
		wantTaskError(t, err, "pmember", "chaos boom")
		assertDrained(t, r)
	}
}

// TestChaosScheduleIsInert re-checks, at the runtime level, that an armed
// schedule with rate 0 everywhere changes nothing and costs no failures —
// the zero-cost-when-disabled contract's runtime-facing half.
func TestChaosScheduleIsInert(t *testing.T) {
	defer chaos.Disable()
	chaos.Enable(chaos.Schedule{Seed: 99}) // all rates zero: armed but silent
	r := New(chaosStack())
	got, err := runChaosProgram(r, 4, 8)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	chaos.Disable()
	ref := New(chaosStack())
	want, err := runChaosProgram(ref, 4, 8)
	if err != nil {
		t.Fatalf("reference failed: %v", err)
	}
	if got != want {
		t.Fatalf("rate-0 schedule changed the checksum: %d != %d", got, want)
	}
	_, hits := chaos.Counts()
	for s := 0; s < chaos.NumSites; s++ {
		if hits[s] != 0 {
			t.Fatalf("site %d fired %d times under a rate-0 schedule", s, hits[s])
		}
	}
}
