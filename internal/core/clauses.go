package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// This file implements the task-construct clauses beyond the paper's three
// contributions: the taskgroup construct (which §IV contrasts with the wait
// clause), the final clause (OpenMP's granularity-control cutoff, which the
// recursive benchmarks of §VIII-C need to bound task overhead at the base
// case), and the error pipeline that turns task-body panics into values
// returned from RunChecked instead of crashed worker goroutines.

// TaskError reports a panic that escaped a task body. The runtime recovers
// the panic, stops invoking further task bodies, drains the dependency
// graph, and returns the first TaskError from RunChecked.
type TaskError struct {
	// Label is the failing task's TaskSpec.Label.
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the stack trace captured at the recovery point.
	Stack []byte
}

// Error formats the failure with the task's label and the panic value.
func (e *TaskError) Error() string {
	return fmt.Sprintf("core: task %q panicked: %v", e.Label, e.Value)
}

// recordPanic stores the first task failure and switches the runtime into
// drain mode (subsequent task bodies are skipped so the run terminates).
func (r *Runtime) recordPanic(t *Task, p any) {
	err := &TaskError{Label: t.spec.Label, Value: p, Stack: debug.Stack()}
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.failed.Store(true)
}

// invokeBody runs the task body, converting a panic into a recorded error.
// Bodies are skipped entirely once a failure has been recorded: the
// remaining graph drains through the normal completion pipeline without
// executing user code.
func (r *Runtime) invokeBody(t *Task, tc *TaskContext) {
	if t.spec.Body == nil || r.failed.Load() {
		return
	}
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic(t, p)
		}
	}()
	t.spec.Body(tc)
}

// runErr returns the recorded failure, combined with the Debug-mode
// invariant checks when enabled. The checks run on the failure path too —
// RunChecked only reaches here after the graph has drained to quiescence,
// and the panic-safe drain guarantees are exactly that a failed run leaks
// nothing: skipped bodies flow through the normal completion pipeline,
// credits are refunded, and pooled objects recycle. A *TaskError stays the
// primary error (errors.As finds it through the join); any violated
// invariant is joined after it.
func (r *Runtime) runErr() error {
	r.errMu.Lock()
	err := r.err
	r.errMu.Unlock()
	if !r.cfg.Debug {
		return err
	}
	errs := []error{err} // nil is dropped by errors.Join
	check := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("core: debug check failed: "+format, args...))
	}
	if n := r.eng.LiveFragments(); n != 0 {
		check("%d dependency fragments not released at end of run", n)
	}
	if n := r.live.Load(); n != 0 {
		check("%d tasks still live at end of run", n)
	}
	if st, pooled := r.eng.MemStats(); pooled {
		// Every node, access, fragment, and interval map handed out by
		// the pools must be back: a positive count means a dependency
		// object escaped its recycle point (a leak the pin protocol
		// should make impossible). Exact here because every engine
		// Complete happens-before the root's completion.
		if n := st.Outstanding(); n != 0 {
			check("%d pooled dependency objects not recycled at end of run", n)
		}
	}
	if r.replayPool != nil {
		// Replay countdown nodes return to their pool at each region's
		// barrier (including invalidation fallbacks and panic aborts), all
		// of which happen-before the root's completion.
		if n := r.replayPool.Outstanding(); n != 0 {
			check("%d replay countdown nodes not recycled at end of run", n)
		}
	}
	if r.contPool != nil {
		// Every blocked taskwait resumes before its subtree can complete,
		// and the resumed waiter recycles its continuation node before its
		// body continues — all of which happens-before the root's
		// completion, so a positive count here is a leaked continuation.
		if n := r.contPool.Outstanding(); n != 0 {
			check("%d taskwait continuation nodes not recycled at end of run", n)
		}
	}
	if r.wsPool != nil {
		// Every worksharing chunk descriptor recycles in its task's
		// completeTask, which happens-before the root's completion, so a
		// positive count here is a leaked descriptor (an announce-hold
		// that never released).
		if n := r.wsPool.Outstanding(); n != 0 {
			check("%d worksharing chunk descriptors not recycled at end of run", n)
		}
	}
	if r.thr != nil {
		// Throttle credit conservation: with the window drained (no open
		// task, no reservation in flight) every credit must be back on the
		// balance or a worker cache — a shortfall is a dropped credit (a
		// future admission stall), an excess is a double-return.
		if n := r.thr.Open(); n != 0 {
			check("throttle window still reports %d open tasks at end of run", n)
		} else if c, limit := r.thr.Credits(), int64(r.thr.Limit()); c != limit {
			check("throttle credits %d != limit %d at end of run (dropped or double-returned credit)", c, limit)
		}
	}
	if len(errs) == 1 {
		// No check failed: return the recorded failure (or nil) unwrapped,
		// so callers that type-assert *TaskError directly keep working.
		return err
	}
	return errors.Join(errs...)
}

// taskgroup tracks the direct tasks submitted inside one Taskgroup scope.
// Because a task in this runtime completes only after all its descendants
// have (the wait-clause completion pipeline), counting direct submissions
// gives exactly the OpenMP taskgroup guarantee: the construct waits on the
// full subtree generated in its region.
type taskgroup struct {
	mu    sync.Mutex
	count int
	done  chan struct{}
}

func (g *taskgroup) add() {
	g.mu.Lock()
	g.count++
	g.mu.Unlock()
}

func (g *taskgroup) taskCompleted() {
	g.mu.Lock()
	g.count--
	if g.count == 0 && g.done != nil {
		close(g.done)
		g.done = nil
	}
	g.mu.Unlock()
}

// Taskgroup runs body inline and then blocks until every task submitted
// within it — and, transitively, every descendant of those tasks — has
// completed. This is the OpenMP taskgroup construct that §IV contrasts with
// the wait clause: it performs a deep wait from within the task code, so
// the stack stays live, whereas the wait/weakwait clauses wait after the
// body has returned. The caller's worker token is yielded while blocked and
// reacquired afterwards. Taskgroups nest. Not available in virtual mode.
func (tc *TaskContext) Taskgroup(body func()) {
	r := tc.rt
	if r.cfg.Virtual {
		panic("core: Taskgroup is not supported in virtual mode; structure the program with WeakWait completion instead")
	}
	t := tc.task
	prev := t.curGroup
	tg := &taskgroup{}
	t.curGroup = tg
	body()
	t.curGroup = prev
	tg.mu.Lock()
	if tg.count == 0 {
		tg.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	tg.done = ch
	tg.mu.Unlock()
	r.sch.Yield(tc.worker)
	<-ch
	tc.worker = r.sch.Acquire()
}

// runInline executes an included task: a task submitted from within a final
// task region. Included tasks run immediately on the submitting worker with
// no dependency registration and no deferral — the OpenMP final-clause
// cutoff that recursive task decompositions use to stop paying per-task
// overhead below the base-case size. Program order within the final region
// trivially satisfies any dependencies the specs declare, so the depend
// entries are accepted and ignored.
func (r *Runtime) runInline(tc *TaskContext, spec TaskSpec) {
	r.taskCount.Add(1)
	t := r.newTask(tc.task, spec, tc.worker)
	child := &TaskContext{rt: r, task: t, worker: tc.worker}
	if r.caches != nil {
		r.feedCache(t, tc.worker)
	}
	if r.v != nil {
		// Virtual mode: the included task's cost accrues to the creator's
		// busy time, exactly like its creation cost.
		cost := spec.Cost
		if cost <= 0 {
			cost = 1
		}
		tc.task.vCreate += cost
		r.invokeBody(t, child)
		if spec.Flops > 0 {
			r.flops.Add(spec.Flops)
		}
		return
	}
	var start int64
	if r.tracer != nil {
		start = r.now()
	}
	r.invokeBody(t, child)
	if r.tracer != nil {
		r.tracer.Record(child.worker, t.kind, start, r.now())
	}
	if spec.Flops > 0 {
		r.flops.Add(spec.Flops)
	}
	// An included task registers no node and tracks no children: it is
	// fully finished when its body returns, so it recycles immediately.
	r.recycleTask(t, child.worker)
}
