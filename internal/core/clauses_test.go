package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestTaskgroupWaitsForSubtree(t *testing.T) {
	rt := New(Config{Workers: 4})
	var done atomic.Int64
	var afterGroup int64 = -1
	rt.Run(func(tc *TaskContext) {
		tc.Taskgroup(func() {
			for i := 0; i < 8; i++ {
				tc.Submit(TaskSpec{
					Label: "outer",
					Body: func(tc *TaskContext) {
						// Descendants of tasks created in the region are
						// covered by the deep wait too.
						for j := 0; j < 4; j++ {
							tc.Submit(TaskSpec{
								Label: "inner",
								Body:  func(*TaskContext) { done.Add(1) },
							})
						}
						done.Add(1)
					},
				})
			}
		})
		afterGroup = done.Load()
	})
	if afterGroup != 8*5 {
		t.Fatalf("Taskgroup returned after %d of %d task completions", afterGroup, 8*5)
	}
}

func TestTaskgroupEmptyAndNested(t *testing.T) {
	rt := New(Config{Workers: 2})
	order := make([]string, 0, 4)
	var mu sync.Mutex
	log := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	rt.Run(func(tc *TaskContext) {
		tc.Taskgroup(func() {}) // empty: returns immediately
		tc.Taskgroup(func() {
			tc.Submit(TaskSpec{Label: "a", Body: func(*TaskContext) { log("a") }})
			tc.Taskgroup(func() {
				tc.Submit(TaskSpec{Label: "b", Body: func(*TaskContext) { log("b") }})
			})
			log("after-inner")
		})
		log("after-outer")
	})
	mu.Lock()
	defer mu.Unlock()
	idx := func(s string) int {
		for i, v := range order {
			if v == s {
				return i
			}
		}
		t.Fatalf("event %q missing from %v", s, order)
		return -1
	}
	if idx("b") > idx("after-inner") {
		t.Errorf("inner taskgroup did not wait for b: %v", order)
	}
	if idx("a") > idx("after-outer") || idx("b") > idx("after-outer") {
		t.Errorf("outer taskgroup did not wait for its tasks: %v", order)
	}
}

func TestTaskgroupVirtualPanics(t *testing.T) {
	rt := New(Config{Workers: 2, Virtual: true})
	defer func() {
		if recover() == nil {
			t.Fatal("Taskgroup in virtual mode should panic")
		}
	}()
	rt.Run(func(tc *TaskContext) {
		tc.Taskgroup(func() {})
	})
}

func TestFinalRunsSubtasksInline(t *testing.T) {
	rt := New(Config{Workers: 4})
	var order []int
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "final-root",
			Final: true,
			Body: func(tc *TaskContext) {
				// Everything below runs inline on this goroutine, so the
				// unsynchronized appends are race-free and strictly ordered.
				for i := 0; i < 3; i++ {
					tc.Submit(TaskSpec{
						Label: "child",
						Body: func(tc *TaskContext) {
							order = append(order, len(order))
							tc.Submit(TaskSpec{ // grandchild: still inline
								Label: "grandchild",
								Body:  func(*TaskContext) { order = append(order, len(order)) },
							})
							// Inline tasks have no deferred children.
							tc.Taskwait()
						},
					})
				}
			},
		})
	})
	if len(order) != 6 {
		t.Fatalf("expected 6 inline executions, got %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("inline execution out of order: %v", order)
		}
	}
	if got := rt.TaskCount(); got != 7 {
		t.Errorf("TaskCount = %d, want 7 (1 final root + 3 children + 3 grandchildren)", got)
	}
}

func TestFinalIgnoresDepsAndRelease(t *testing.T) {
	rt := New(Config{Workers: 2})
	d := rt.NewData("x", 100, 8)
	ran := false
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "final",
			Final: true,
			Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
			Body: func(tc *TaskContext) {
				tc.Submit(TaskSpec{
					Label: "included",
					Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
					Body: func(tc *TaskContext) {
						ran = true
						tc.Release(Dep{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 50}}})
					},
				})
			},
		})
	})
	if !ran {
		t.Fatal("included task did not run")
	}
}

func TestFinalVirtualCostAccrues(t *testing.T) {
	rt := New(Config{Workers: 2, Virtual: true})
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "final",
			Final: true,
			Cost:  5,
			Body: func(tc *TaskContext) {
				for i := 0; i < 3; i++ {
					tc.Submit(TaskSpec{Label: "inc", Cost: 7, Flops: 1,
						Body: func(*TaskContext) {}})
				}
			},
		})
	})
	// Makespan: the root is instantaneous; the final task costs its own 5
	// plus the three included tasks' 7 each.
	if got := rt.VirtualTime(); got != 26 {
		t.Errorf("VirtualTime = %d, want 26 (final 5 + 3*7)", got)
	}
	if got := rt.Flops(); got != 3 {
		t.Errorf("Flops = %d, want 3", got)
	}
}

func TestPanicBecomesTaskError(t *testing.T) {
	rt := New(Config{Workers: 4})
	var executedAfter atomic.Int64
	err := rt.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "boom", Body: func(*TaskContext) {
			panic("kaboom")
		}})
		tc.Taskwait() // ensure the panic lands before the next wave
		for i := 0; i < 16; i++ {
			tc.Submit(TaskSpec{Label: "later", Body: func(*TaskContext) {
				executedAfter.Add(1)
			}})
		}
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("RunChecked error = %v, want *TaskError", err)
	}
	if te.Label != "boom" || te.Value != "kaboom" {
		t.Errorf("TaskError = {%q %v}, want {boom kaboom}", te.Label, te.Value)
	}
	if len(te.Stack) == 0 || !strings.Contains(te.Error(), "kaboom") {
		t.Errorf("TaskError missing stack or message: %v", te)
	}
	if n := executedAfter.Load(); n != 0 {
		t.Errorf("%d task bodies ran after the failure; drain mode should skip them", n)
	}
}

func TestPanicInRootBody(t *testing.T) {
	rt := New(Config{Workers: 2})
	err := rt.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "child", Body: func(*TaskContext) {}})
		panic("root failure")
	})
	var te *TaskError
	if !errors.As(err, &te) || te.Label != "main" {
		t.Fatalf("err = %v, want TaskError from main", err)
	}
}

func TestPanicVirtualMode(t *testing.T) {
	rt := New(Config{Workers: 2, Virtual: true})
	err := rt.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "vboom", Body: func(*TaskContext) { panic(42) }})
	})
	var te *TaskError
	if !errors.As(err, &te) || te.Label != "vboom" || te.Value != 42 {
		t.Fatalf("err = %v, want TaskError{vboom, 42}", err)
	}
}

func TestRunPanicsOnTaskError(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Run should re-panic on task failure")
		}
		if _, ok := p.(*TaskError); !ok {
			t.Fatalf("Run panicked with %T, want *TaskError", p)
		}
	}()
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{Label: "x", Body: func(*TaskContext) { panic("x") }})
	})
}

func TestDebugDrainCheckPasses(t *testing.T) {
	for _, virtual := range []bool{false, true} {
		rt := New(Config{Workers: 4, Virtual: virtual, Debug: true})
		d := rt.NewData("x", 1000, 8)
		err := rt.RunChecked(func(tc *TaskContext) {
			tc.Submit(TaskSpec{
				Label:    "outer",
				WeakWait: true,
				Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: 0, Hi: 1000}}}},
				Body: func(tc *TaskContext) {
					for i := int64(0); i < 10; i++ {
						tc.Submit(TaskSpec{
							Label: "inner",
							Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: i * 100, Hi: (i + 1) * 100}}}},
							Body:  func(*TaskContext) {},
						})
					}
				},
			})
			tc.Submit(TaskSpec{
				Label: "reader",
				Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{{Lo: 0, Hi: 1000}}}},
				Body:  func(*TaskContext) {},
			})
		})
		if err != nil {
			t.Errorf("virtual=%v: debug check failed on a clean program: %v", virtual, err)
		}
	}
}

func TestPanicInWeakwaitBodyWithLiveChildren(t *testing.T) {
	// A weakwait task panics after creating children: the hand-over at
	// body exit must still run (the children were created), the children
	// must be skipped (drain mode), and everything must release.
	rt := New(Config{Workers: 4, Debug: true})
	d := rt.NewData("x", 100, 8)
	var childRan atomic.Int64
	err := rt.RunChecked(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label:    "weak-boom",
			WeakWait: true,
			Deps:     []Dep{{Data: d, Type: InOut, Weak: true, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
			Body: func(tc *TaskContext) {
				for i := int64(0); i < 4; i++ {
					tc.Submit(TaskSpec{
						Label: "child",
						Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: i * 25, Hi: (i + 1) * 25}}}},
						Body:  func(*TaskContext) { childRan.Add(1) },
					})
				}
				panic("after creating children")
			},
		})
		tc.Submit(TaskSpec{
			Label: "successor",
			Deps:  []Dep{{Data: d, Type: In, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
		})
	})
	var te *TaskError
	if !errors.As(err, &te) || te.Label != "weak-boom" {
		t.Fatalf("err = %v, want TaskError from weak-boom", err)
	}
	if n := rt.eng.LiveFragments(); n != 0 {
		t.Errorf("%d fragments leaked through the failing weakwait", n)
	}
}

func TestFinalInsideTaskgroup(t *testing.T) {
	// Included tasks complete synchronously, so a taskgroup around a final
	// subtree returns immediately after the body.
	rt := New(Config{Workers: 2})
	var ran atomic.Int64
	rt.Run(func(tc *TaskContext) {
		tc.Taskgroup(func() {
			tc.Submit(TaskSpec{
				Label: "final-root", Final: true,
				Body: func(tc *TaskContext) {
					for i := 0; i < 5; i++ {
						tc.Submit(TaskSpec{Label: "inc", Body: func(*TaskContext) { ran.Add(1) }})
					}
				},
			})
		})
		if got := ran.Load(); got != 5 {
			t.Errorf("taskgroup returned with %d of 5 included tasks done", got)
		}
	})
}

func TestDebugDrainAfterFailureStillClean(t *testing.T) {
	// Even when a body panics mid-graph, the drain must release everything.
	rt := New(Config{Workers: 4, Debug: true})
	d := rt.NewData("x", 100, 8)
	err := rt.RunChecked(func(tc *TaskContext) {
		for i := 0; i < 8; i++ {
			i := i
			tc.Submit(TaskSpec{
				Label: "chain",
				Deps:  []Dep{{Data: d, Type: InOut, Ivs: []Interval{{Lo: 0, Hi: 100}}}},
				Body: func(*TaskContext) {
					if i == 3 {
						panic("mid-chain failure")
					}
				},
			})
		}
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want the mid-chain TaskError", err)
	}
	// The TaskError takes precedence, but the engine must still be drained;
	// verify directly.
	if n := rt.eng.LiveFragments(); n != 0 {
		t.Errorf("%d fragments leaked after failure drain", n)
	}
}
