package core

import (
	"sync/atomic"
	"testing"
)

// TestWorkerIdentityAcrossTaskwait is a regression test for the stale
// worker-id bug: a body that blocks in Taskwait yields its token and may
// resume holding a different one; the runner loop must continue with the
// new id, or two goroutines end up sharing a worker. Each body asserts
// exclusive occupancy of its worker id before and after the blocking call.
func TestWorkerIdentityAcrossTaskwait(t *testing.T) {
	const workers = 4
	for iter := 0; iter < 20; iter++ {
		rt := New(Config{Workers: workers})
		var holders [workers]atomic.Int32
		var bad atomic.Int32
		occupy := func(w int) {
			if holders[w].Add(1) != 1 {
				bad.Add(1)
			}
			for i := 0; i < 100; i++ {
				_ = i // brief occupancy window
			}
			holders[w].Add(-1)
		}
		rt.Run(func(tc *TaskContext) {
			for i := 0; i < 32; i++ {
				tc.Submit(TaskSpec{Label: "waiter", Body: func(tc *TaskContext) {
					occupy(tc.Worker())
					tc.Submit(TaskSpec{Label: "leaf", Body: func(tc *TaskContext) {
						occupy(tc.Worker())
					}})
					tc.Taskwait()
					occupy(tc.Worker()) // possibly a different token now
				}})
			}
		})
		if bad.Load() != 0 {
			t.Fatalf("iter %d: %d double-occupancies of a worker id", iter, bad.Load())
		}
	}
}
