package core

// Worksharing tasks: one dependency-carrying task whose body is
// chunk-distributed across idle workers (Config.WorksharingImpl).
//
// The paper's listing-5 pattern — chunked loops whose chunks carry depend
// entries — is what Taskloop expands to, and at fine grain sizes the
// per-task cost (spec copy, dependency node, throttle credit, ready-pool
// hop per chunk) dominates the chunk body. Following "Worksharing Tasks"
// (Maroñas et al.), TaskContext.Worksharing pays that cost once:
//
//   - one task is submitted through the normal engine path, carrying the
//     union depend entries of the whole iteration space — one node, one
//     throttle-window credit, one fingerprint in a recording graph region;
//   - when its body starts, the iteration space [Lo, Hi) becomes a shared
//     atomic chunk cursor, and the runtime announces the task itself into
//     the sharded ready pools (sched.Announce) as an invitation to every
//     idle worker; a worker that pops an invitation joins the drain instead
//     of executing a body (the runWorker intercept, exactly like a taskwait
//     continuation riding the pools);
//   - owner and helpers self-schedule grain-sized chunks against the
//     cursor (one atomic add per chunk, so irregular chunk costs balance
//     across the fleet without a work-distribution plan);
//   - each invitation rides the task's own child countdown as an
//     announce-hold: a helper that finishes draining releases its hold
//     through the same countdown the completion pipeline already uses, so
//     the task completes exactly once, after the body returned and every
//     helper left — and a taskwait on the task composes with the
//     continuation handoff for free (the last hold-release submits the
//     waiting continuation).
//
// The per-region descriptor (wsRun: cursor, bounds, body) recycles through
// a mempool lane, so steady-state execution allocates nothing. The plain
// per-chunk expansion is kept as the differential reference
// (WorksharingExpand); both produce identical final state on programs
// whose depend entries cover their accesses, which the differential suite
// in worksharing_test.go drives randomized programs through.
//
// Restrictions: chunk bodies run concurrently on workers that share the
// one task context, so a chunk body must not block (no Taskwait or
// Taskgroup) — the same restriction OpenMP places on worksharing regions.
// Chunk bodies may Submit subtasks; inside a recording graph region that
// marks the recording ineligible, like any nested submission.

import (
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/deps"
	"repro/internal/mempool"
)

// WorksharingKind selects the Worksharing execution strategy
// (Config.WorksharingImpl).
type WorksharingKind uint8

const (
	// WorksharingAuto lets the runtime pick: the chunk-distributed strategy
	// in real mode. Virtual mode runs the chunks serially inside the single
	// task (the discrete-event simulation has no worker fleet to announce
	// to); the one-task dependency shape is identical.
	WorksharingAuto WorksharingKind = iota
	// WorksharingExpand is the reference strategy: expand to one task per
	// chunk with per-chunk depend entries, exactly like Taskloop. Kept as
	// the differential baseline and the depbench comparison row.
	WorksharingExpand
	// WorksharingChunked is the worksharing strategy: one task carrying the
	// union depend entries, body chunks self-scheduled across idle workers
	// via a shared atomic cursor, completion released by a single countdown.
	WorksharingChunked
)

// String returns the kind's flag/table name.
func (k WorksharingKind) String() string {
	switch k {
	case WorksharingExpand:
		return "expand"
	case WorksharingChunked:
		return "chunked"
	}
	return "auto"
}

// WorksharingSpec describes a Worksharing invocation. It is the same shape
// as TaskloopSpec: the per-range callbacks are called once with the whole
// iteration space under the chunked strategy (union depend entries, total
// cost/flops) and once per chunk under the expand reference — equal
// results for the linear shapes loops declare in practice.
type WorksharingSpec struct {
	// Label names the worksharing task (diagnostics, trace kind).
	Label string
	// Lo, Hi bound the iteration space [Lo, Hi).
	Lo, Hi int64
	// Grain is the iterations per self-scheduled chunk. Required (> 0).
	Grain int64
	// Deps, when non-nil, returns the depend entries covering [lo, hi).
	// The chunked strategy calls it once with (Lo, Hi) — the union the one
	// task registers; the expand reference calls it per chunk.
	Deps func(lo, hi int64) []Dep
	// Cost, when non-nil, returns the virtual-mode cost of [lo, hi);
	// default is the range length (one cost unit per iteration).
	Cost func(lo, hi int64) int64
	// Flops, when non-nil, returns the flop count of [lo, hi) for the
	// runtime's accounting.
	Flops func(lo, hi int64) int64
	// Priority applies to the task (every chunk task under expand).
	Priority int64
	// Body executes one chunk over [lo, hi). Required. It may be invoked
	// concurrently for different chunks (on the owner and on announced
	// helpers) and must not block in Taskwait or Taskgroup.
	Body func(tc *TaskContext, lo, hi int64)
}

// WsStats counts worksharing activity (Runtime.WsStats).
type WsStats struct {
	// Regions is the number of worksharing tasks executed with the
	// chunk-distributed strategy.
	Regions int64
	// Chunks is the number of grain-sized chunks executed (owner plus
	// helpers).
	Chunks int64
	// HelperChunks is the number of chunks executed by announced helpers —
	// the work the announcement actually redistributed off the owner.
	HelperChunks int64
	// Announcements is the number of helper invitations published into the
	// ready pools (at most Workers-1 per region, never more than the
	// region's remaining chunks).
	Announcements int64
}

// wsCounters is the runtime-internal atomic form of WsStats.
type wsCounters struct {
	regions, chunks, helperChunks, announced atomic.Int64
}

// wsRun is one region's pooled chunk descriptor: the shared cursor the
// owner and every helper claim grain-sized chunks from, plus the bounds
// and body they execute against it. It is published to helpers through
// Task.wsRun (ordered by the ready pools' Announce/pop pair) and recycled
// by completeTask once the countdown releases the task.
type wsRun struct {
	cursor atomic.Int64
	hi     int64
	grain  int64
	body   func(tc *TaskContext, lo, hi int64)
}

// newWsPool builds the chunk-descriptor free list (chunked strategy, real
// mode only), one mutex lane per worker.
func newWsPool(workers int) *mempool.Pool[wsRun] {
	return mempool.NewPool(workers, func() *wsRun { return &wsRun{} })
}

// WsStats returns the worksharing counters: regions executed
// chunk-distributed, chunks executed, chunks executed by announced
// helpers, and invitations published.
func (r *Runtime) WsStats() WsStats {
	return WsStats{
		Regions:       r.wsc.regions.Load(),
		Chunks:        r.wsc.chunks.Load(),
		HelperChunks:  r.wsc.helperChunks.Load(),
		Announcements: r.wsc.announced.Load(),
	}
}

// WsPoolStats returns the chunk-descriptor free-list counters (zero under
// the expand reference or in virtual mode). Outstanding must be zero once
// a run has drained: every descriptor returns to its pool when its task's
// completion countdown fires.
func (r *Runtime) WsPoolStats() mempool.Stats {
	if r.wsPool == nil {
		return mempool.Stats{}
	}
	return r.wsPool.Stats()
}

// Worksharing submits the iteration space [Lo, Hi) as a worksharing task
// and returns the number of grain-sized chunks. Under the default chunked
// strategy exactly one task is submitted, carrying the union depend
// entries of the whole range; when its body starts, idle workers are
// invited through the ready pools and the chunks self-schedule across the
// fleet against a shared cursor (see the package comment at the top of
// worksharing.go). Under the expand reference one task per chunk is
// submitted, as Taskloop would. Like any Submit it does not wait: the
// region synchronizes through its depend entries, a Taskwait on the
// submitter, or the enclosing task's completion — all of which observe the
// full region (helpers ride the task's completion countdown).
//
// Inside a graph region the chunked strategy records and replays as a
// single node (the union entries are the fingerprint); the expand
// reference records one node per chunk. On a final (included) task and in
// virtual mode the chunks run serially inside the single task.
func (tc *TaskContext) Worksharing(spec WorksharingSpec) int {
	if spec.Grain <= 0 {
		panic("core: Worksharing requires Grain > 0")
	}
	if spec.Body == nil {
		panic("core: Worksharing requires a Body")
	}
	if spec.Hi <= spec.Lo {
		return 0
	}
	label := spec.Label
	if label == "" {
		label = "worksharing"
	}
	r := tc.rt
	if r.wsKind == WorksharingExpand {
		return r.worksharingExpand(tc, spec, label)
	}
	nchunks := int((spec.Hi - spec.Lo + spec.Grain - 1) / spec.Grain)
	var uDeps []Dep
	if spec.Deps != nil {
		uDeps = spec.Deps(spec.Lo, spec.Hi)
	}
	ts := TaskSpec{
		Label:    label,
		Kind:     label,
		Priority: spec.Priority,
		Deps:     uDeps,
	}
	if spec.Cost != nil {
		ts.Cost = spec.Cost(spec.Lo, spec.Hi)
	} else {
		ts.Cost = spec.Hi - spec.Lo
	}
	if spec.Flops != nil {
		ts.Flops = spec.Flops(spec.Lo, spec.Hi)
	}
	lo, hi, grain, body := spec.Lo, spec.Hi, spec.Grain, spec.Body
	if tc.task.final || r.v != nil {
		// Included tasks complete the moment their body returns (runInline
		// tracks no children, so announce-holds cannot ride them) and the
		// virtual simulation has no fleet to announce to: run the chunks
		// serially inside the one task. The dependency shape is identical.
		ts.Body = func(btc *TaskContext) {
			for c := lo; c < hi; c += grain {
				end := c + grain
				if end > hi {
					end = hi
				}
				body(btc, c, end)
			}
		}
	} else {
		ts.Body = func(btc *TaskContext) {
			btc.rt.wsExecute(btc, lo, hi, grain, body)
		}
	}
	tc.Submit(ts)
	return nchunks
}

// worksharingExpand is the reference strategy: one task per chunk with
// per-chunk depend entries, the shape Taskloop submits. The TaskSpec is
// reused across chunks (Submit copies it by value into the task).
func (r *Runtime) worksharingExpand(tc *TaskContext, spec WorksharingSpec, label string) int {
	n := 0
	body := spec.Body
	ts := TaskSpec{Label: label, Kind: label, Priority: spec.Priority}
	for lo := spec.Lo; lo < spec.Hi; lo += spec.Grain {
		hi := lo + spec.Grain
		if hi > spec.Hi {
			hi = spec.Hi
		}
		lo, hi := lo, hi
		ts.Body = func(btc *TaskContext) { body(btc, lo, hi) }
		if spec.Deps != nil {
			ts.Deps = spec.Deps(lo, hi)
		}
		if spec.Cost != nil {
			ts.Cost = spec.Cost(lo, hi)
		} else {
			ts.Cost = hi - lo
		}
		if spec.Flops != nil {
			ts.Flops = spec.Flops(lo, hi)
		}
		tc.Submit(ts)
		n++
	}
	return n
}

// wsExecute is the chunk-distributed body of a worksharing task: set up
// the pooled cursor descriptor, take announce-holds on the task's own
// child countdown, invite idle workers through the ready pools, and join
// the drain. Runs on the task's own goroutine (inside invokeBody, so a
// chunk panic on this path is already recovered there).
func (r *Runtime) wsExecute(tc *TaskContext, lo, hi, grain int64, body func(*TaskContext, int64, int64)) {
	t := tc.task
	w := tc.worker
	nchunks := (hi - lo + grain - 1) / grain
	wr := r.wsPool.Get(w)
	wr.hi, wr.grain, wr.body = hi, grain, body
	wr.cursor.Store(lo)
	r.wsc.regions.Add(1)
	helpers := int64(r.cfg.Workers - 1)
	if helpers > nchunks-1 {
		// Never invite more helpers than there are chunks beyond the
		// owner's first: a worksharing task at Workers == 1 (or with a
		// single chunk) announces nothing and degenerates to a plain task.
		helpers = nchunks - 1
	}
	if helpers > 0 {
		// Announce-holds: each invitation rides t.children exactly like an
		// outstanding child, so the completion pipeline (finishBody /
		// wsMemberDone) releases the task once, after the body returned AND
		// every invited worker left the drain — and the holds keep t alive
		// (never recycled) until the last invitation is consumed.
		t.mu.Lock()
		t.children += int(helpers)
		t.mu.Unlock()
		// Publish the descriptor before the announcement: a helper reads
		// t.wsRun unlocked after popping the invitation, and the pool's
		// Announce/pop pair orders this write before that read (the same
		// argument as the continuation intercept's t.cont read).
		t.wsRun = wr
		r.wsc.announced.Add(helpers)
		r.sch.Announce(t, int(helpers), w)
	} else {
		t.wsRun = wr // completeTask recycles the descriptor through this
	}
	r.wsDrain(tc, wr, false)
}

// wsDrain claims grain-sized chunks against the shared cursor until the
// iteration space is exhausted — the self-scheduling loop run by the owner
// and every helper. One atomic add claims a chunk, so irregular chunk
// costs balance: a worker stuck in an expensive chunk simply claims fewer.
// Once a failure is recorded the remaining chunks are claimed but their
// bodies skipped, draining the region without running user code.
func (r *Runtime) wsDrain(tc *TaskContext, wr *wsRun, helper bool) {
	hi, grain := wr.hi, wr.grain
	var n int64
	for {
		lo := wr.cursor.Add(grain) - grain
		if lo >= hi {
			break
		}
		end := lo + grain
		if end > hi {
			end = hi
		}
		if !r.failed.Load() {
			wr.body(tc, lo, end)
		}
		n++
	}
	if n > 0 {
		r.wsc.chunks.Add(n)
		if helper {
			r.wsc.helperChunks.Add(n)
		}
	}
}

// runWsHelper is the ready-pool intercept for a worksharing invitation:
// the popping worker joins t's chunk drain instead of executing a body,
// then releases its announce-hold. Like the continuation intercept it runs
// before taskStarted — an invitation is not new work, so the throttle
// window's occupancy accounting never sees it.
func (r *Runtime) runWsHelper(t *Task, wr *wsRun, w int) int {
	r.beat(w, hbWsHelper)
	tc := &TaskContext{rt: r, task: t, worker: w}
	// Failpoint: delay between consuming the invitation and joining the
	// drain, racing the announce-hold release against the owner finishing
	// the whole iteration space alone.
	chaos.Maybe(chaos.WsAnnounceConsume)
	var start int64
	if r.tracer != nil {
		start = r.now()
	}
	r.wsDrainHelper(tc, wr)
	if r.tracer != nil {
		r.tracer.Record(tc.worker, t.kind, start, r.now())
	}
	// tc.worker may differ from w if a chunk body blocked (submitting
	// through a full throttle window yields and reacquires); the hold is
	// released on the token actually held now.
	w = tc.worker
	r.wsMemberDone(t, w)
	return w
}

// wsDrainHelper wraps a helper's drain in its own panic recovery: helper
// goroutines do not pass through invokeBody, and a chunk panic must
// convert to the recorded-error drain path, not crash the worker.
func (r *Runtime) wsDrainHelper(tc *TaskContext, wr *wsRun) {
	defer func() {
		if p := recover(); p != nil {
			r.recordPanic(tc.task, p)
		}
	}()
	r.wsDrain(tc, wr, true)
}

// wsMemberDone releases one announce-hold on t: the helper-side half of
// the completion countdown, mirroring completeTask's parent block with t
// in the parent role. The last release — whichever of finishBody (owner)
// or this (helper) sees the count hit zero after bodyDone — completes the
// task exactly once, wakes a parked waiter or submits the waiting
// continuation (taskwait on a worksharing task composes wait-free), and
// recycles the task and its descriptor.
func (r *Runtime) wsMemberDone(t *Task, worker int) {
	t.mu.Lock()
	t.children--
	var sig chan struct{}
	var cont *contNode
	if t.children == 0 {
		if t.waiting {
			t.waiting = false
			sig = t.waitSig
		}
		cont = t.cont
	}
	cascade := t.children == 0 && t.bodyDone && !t.completed
	if cascade {
		t.completed = true
	}
	t.mu.Unlock()
	if sig != nil {
		sig <- struct{}{}
	}
	if cont != nil {
		r.submitContinuation(t, cont, worker)
	}
	if cascade {
		var buf []*deps.Node
		ws := r.scratchFor(worker)
		if ws != nil {
			buf = ws.ready[:0]
		}
		buf = r.completeTask(t, worker, buf)
		if ws != nil {
			ws.ready = buf
		}
		r.dispatchAll(buf, worker)
		r.recycleTask(t, worker)
	}
}
