package core

// Wait-free taskwait: the continuation-handoff blocking strategy behind
// TaskContext.Taskwait (Config.TaskwaitImpl).
//
// The paper's wait clause exists precisely because an in-body taskwait
// costs a worker (§IV): the classic implementation yields the worker
// token, parks the goroutine on a channel, and re-acquires a token through
// the scheduler's waiter list when the last child completes — a park plus
// a token round-trip per nested sync point. Following "Advanced
// Synchronization Techniques for Task-based Runtime Systems" (Álvarez et
// al.), the continuation strategy removes the blocking from the token
// protocol entirely:
//
//   - the waiting task's remainder (its parked goroutine, holding the
//     body's live stack) is represented by a pooled continuation node
//     attached to the task;
//   - the task itself is submitted into the sharded ready pools by the
//     *last completing child* — the same admission path every ready task
//     takes — and competes for a worker like any other work;
//   - the worker that pulls the continuation hands its token directly to
//     the parked goroutine (one buffered-channel send) and retires; the
//     resumed body continues on that token.
//
// No scheduler waiter list, no per-wait channel allocation, and no
// throttle-window interaction: a resuming taskwait is not a new ready
// task, so the continuation is submitted without windowEnter and
// intercepted in runWorker before taskStarted — the window's occupancy
// counters never see it. The parking strategy is kept as the differential
// reference (Config.TaskwaitImpl = TaskwaitParking); both paths share the
// same child-countdown state under Task.mu, so the differential suite can
// drive identical programs through both and compare every observable.

import (
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/mempool"
)

// TaskwaitKind selects the Taskwait blocking strategy
// (Config.TaskwaitImpl).
type TaskwaitKind uint8

const (
	// TaskwaitAuto lets the runtime pick: continuation handoff in real
	// mode. Virtual mode has no Taskwait (it panics there) and resolves to
	// the parking reference, which builds no pool.
	TaskwaitAuto TaskwaitKind = iota
	// TaskwaitParking is the classic reference: the waiter yields its
	// worker token, parks on the task's signal channel, and re-acquires a
	// token through the scheduler's waiter list when the last child
	// completes.
	TaskwaitParking
	// TaskwaitContinuation is the wait-free strategy: the last completing
	// child submits the waiting task into the sharded ready pools as a
	// pooled continuation, and the worker that pulls it hands its token
	// straight to the parked goroutine.
	TaskwaitContinuation
)

// String returns the kind's flag/table name.
func (k TaskwaitKind) String() string {
	switch k {
	case TaskwaitParking:
		return "parking"
	case TaskwaitContinuation:
		return "continuation"
	}
	return "auto"
}

// TaskwaitStats counts Taskwait blocking activity (Runtime.TaskwaitStats).
// Taskwaits that find no incomplete children block in neither strategy and
// count nowhere.
type TaskwaitStats struct {
	// Parks counts parking-strategy blocking waits: the goroutine parked
	// on its signal channel and re-acquired a worker token through the
	// scheduler's waiter list. Zero under the continuation strategy.
	Parks int64
	// Handoffs counts continuation-strategy blocking waits: the last
	// completing child submitted the waiting task into the ready pools as
	// a continuation. Zero under the parking strategy.
	Handoffs int64
	// StealResumes counts continuations resumed on a worker other than the
	// one the last completing child submitted from — the continuation was
	// stolen or drained by another worker's Finish, redistributing the
	// resume exactly like any other ready task.
	StealResumes int64
}

// twStats is the runtime-internal atomic form of TaskwaitStats.
type twStats struct {
	parks, handoffs, stealResumes atomic.Int64
}

// contNode is one pooled taskwait continuation: the stand-in for a parked
// waiter while its resume rides the ready pools. The resume channel is
// allocated once per node and reused across recycles (it is always empty
// when the node returns to the pool: every send is consumed by the parked
// goroutine before it releases the node).
type contNode struct {
	// resume delivers the resuming worker token to the parked goroutine
	// (capacity 1: the sender never blocks).
	resume chan int
	// from is the worker the last completing child submitted the
	// continuation from (steal-resume accounting; -1 until set).
	from int32
}

// newContPool builds the continuation-node free list (continuation
// strategy only), one mutex lane per worker.
func newContPool(workers int) *mempool.Pool[contNode] {
	return mempool.NewPool(workers, func() *contNode {
		return &contNode{resume: make(chan int, 1), from: -1}
	})
}

// TaskwaitStats returns the Taskwait blocking counters: parks (parking
// strategy), continuation handoffs, and steal-resumes (continuations
// resumed on a different worker than they were submitted from).
func (r *Runtime) TaskwaitStats() TaskwaitStats {
	return TaskwaitStats{
		Parks:        r.tw.parks.Load(),
		Handoffs:     r.tw.handoffs.Load(),
		StealResumes: r.tw.stealResumes.Load(),
	}
}

// ContPoolStats returns the continuation-node free-list counters (zero
// under the parking strategy or in virtual mode). Outstanding must be zero
// once a run has drained: every resumed waiter returns its node before its
// body continues, and every blocked waiter resumes before its subtree can
// complete.
func (r *Runtime) ContPoolStats() mempool.Stats {
	if r.contPool == nil {
		return mempool.Stats{}
	}
	return r.contPool.Stats()
}

// Taskwait blocks until all direct children (and, transitively, their
// descendants) have completed. Under the default continuation strategy the
// caller's worker token is yielded into other ready work immediately and
// the resume is submitted into the ready pools by the last completing
// child — the token protocol never parks (Config.TaskwaitImpl,
// Runtime.TaskwaitStats). Under the parking reference the goroutine parks
// and re-acquires a token through the scheduler's waiter list — the cost
// the paper's wait clause avoids (§IV). Not available in virtual mode.
func (tc *TaskContext) Taskwait() {
	r := tc.rt
	if r.cfg.Virtual {
		panic("core: Taskwait is not supported in virtual mode; use WeakWait or the default wait-clause completion")
	}
	if r.twKind == TaskwaitContinuation {
		r.taskwaitContinuation(tc)
		return
	}
	r.taskwaitParking(tc)
}

// taskwaitParking is the reference blocking path: park on the task's
// reusable signal channel, re-acquire a token via the scheduler's waiter
// list. The signal channel is allocated once per task and survives both
// repeated waits and task recycling (see Task.waitSig).
func (r *Runtime) taskwaitParking(tc *TaskContext) {
	t := tc.task
	t.mu.Lock()
	if t.children == 0 {
		t.mu.Unlock()
		return
	}
	if t.waitSig == nil {
		t.waitSig = make(chan struct{}, 1)
	}
	t.waiting = true
	t.mu.Unlock()
	t.markRegionTaskwait()
	r.tw.parks.Add(1)
	r.sch.Yield(tc.worker)
	<-t.waitSig
	tc.worker = r.sch.Acquire()
}

// taskwaitContinuation is the wait-free blocking path: attach a pooled
// continuation node, yield the token into other ready work, and park until
// the resume — submitted into the ready pools by the last completing
// child — delivers a (possibly different) worker token directly.
func (r *Runtime) taskwaitContinuation(tc *TaskContext) {
	t := tc.task
	t.mu.Lock()
	if t.children == 0 {
		t.mu.Unlock()
		return
	}
	cn := r.contPool.Get(tc.worker)
	cn.from = -1
	t.cont = cn
	t.mu.Unlock()
	t.markRegionTaskwait()
	r.sch.Yield(tc.worker)
	w := <-cn.resume
	r.beat(w, hbResume)
	// The resumer stopped touching the node before its send, and nothing
	// else references it: detach and recycle.
	t.cont = nil
	r.contPool.Put(w, cn)
	tc.worker = w
}

// submitContinuation is the last completing child's final act towards its
// parent: publish the resume into the sharded ready pools, where it
// competes for a worker like any other ready task (and may be stolen).
// worker is the child's held token. The submission deliberately skips
// windowEnter — a resuming taskwait re-occupies no throttle-window slot —
// and runWorker intercepts the task before taskStarted, so the window's
// occupancy accounting never sees the continuation at all.
func (r *Runtime) submitContinuation(p *Task, cn *contNode, worker int) {
	cn.from = int32(worker)
	r.tw.handoffs.Add(1)
	r.sch.Submit(p, worker)
}

// resumeContinuation hands worker w's token to the goroutine parked in t's
// taskwait. Called by runWorker when the ready pool delivers a task whose
// cont field is set; the calling goroutine must exit without touching the
// token (or the node) again — ownership of both transfers with the send.
func (r *Runtime) resumeContinuation(t *Task, cn *contNode, w int) {
	if int(cn.from) != w {
		r.tw.stealResumes.Add(1)
	}
	// Failpoint: delay the token hand-off while the waiter's subtree
	// completions (and rival pool traffic) race ahead of the resume.
	chaos.Maybe(chaos.TaskwaitIntercept)
	cn.resume <- w
}

// markRegionTaskwait records a blocking taskwait's record-and-replay
// interaction while the enclosing graph region is recording. Two
// directions, decided here (and tested in both):
//
//   - owner-level taskwait (gidx < 0, the region owner's body between
//     submissions): the recording stays replay-eligible. The wait is part
//     of the owner's body code, so every later execution — live or
//     replayed — re-executes the same barrier at the same point in the
//     submission stream; the frozen edge set need not express it. The
//     recorder keeps a count (Recording.OwnerWaits) as the recorded trace
//     of the continuation edge.
//   - taskwait inside a region member task (gidx >= 0): a blocking wait
//     implies the member submitted nested children, a shape the frozen
//     completion-edge graph cannot express; the recording is marked
//     ineligible (nestedSubmit already marks it when the children were
//     submitted — this keeps the invariant even if that path changes).
//
// The region barrier itself is not routed here: Graph clears t.greg before
// its final Taskwait.
func (t *Task) markRegionTaskwait() {
	g := t.greg
	if g == nil || g.recorder == nil {
		return
	}
	if t.gidx >= 0 {
		g.recorder.MarkIneligible("taskwait in region task")
		return
	}
	g.recorder.OnOwnerWait()
}
