//go:build race

package core

// raceEnabledCore flags race-instrumented test builds; timing-sensitive
// guards (TestReplayW1Parity) skip under it, since the instrumentation
// skews the live-vs-replay comparison.
func init() { raceEnabledCore = true }
