package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// Runtime-level memory-pool tests: the pooled mode (the real-mode default)
// must produce exactly the same program results as the allocate-always
// reference, leak nothing once the run drains, and keep diagnostics that
// outlive tasks — verification Violations — intact after the tasks and
// nodes they describe have been recycled.

// memDiffProgram runs a randomized nested dependency program and returns a
// deterministic digest of its observable results: the final data array,
// the task count, and the engine's activity counters.
func memDiffProgram(t *testing.T, mem mempool.Kind, workers int, seed int64) string {
	rt := New(Config{Workers: workers, MemPool: mem, ThrottleOpenTasks: 8, Debug: true})
	const elems = 256
	data := rt.NewData("a", elems, 8)
	arr := make([]int64, elems)
	rng := rand.New(rand.NewSource(seed))
	type blk struct{ lo, hi int64 }
	var blocks []blk
	for lo := int64(0); lo < elems; {
		ln := int64(16 + rng.Intn(48))
		hi := lo + ln
		if hi > elems {
			hi = elems
		}
		blocks = append(blocks, blk{lo, hi})
		lo = hi
	}
	rounds := 6 + rng.Intn(6)
	err := rt.RunChecked(func(tc *TaskContext) {
		for r := 0; r < rounds; r++ {
			for bi, b := range blocks {
				b := b
				step := int64(r*1000 + bi)
				weak := rng.Intn(2) == 0
				tc.Submit(TaskSpec{
					Label:    fmt.Sprintf("outer%d.%d", r, bi),
					WeakWait: weak,
					Deps:     []Dep{{Data: data, Type: InOut, Weak: true, Ivs: []Interval{regions.Iv(b.lo, b.hi)}}},
					Body: func(tc *TaskContext) {
						mid := (b.lo + b.hi) / 2
						tc.Submit(TaskSpec{
							Label: fmt.Sprintf("lo%d", step),
							Deps:  []Dep{{Data: data, Type: InOut, Ivs: []Interval{regions.Iv(b.lo, mid)}}},
							Body: func(tc *TaskContext) {
								for p := b.lo; p < mid; p++ {
									arr[p] += step
								}
							},
						})
						tc.Submit(TaskSpec{
							Label: fmt.Sprintf("hi%d", step),
							Deps:  []Dep{{Data: data, Type: InOut, Ivs: []Interval{regions.Iv(mid, b.hi)}}},
							Body: func(tc *TaskContext) {
								for p := mid; p < b.hi; p++ {
									arr[p] += 3 * step
								}
							},
						})
					},
				})
			}
		}
	})
	if err != nil {
		t.Fatalf("mem=%v: %v", mem, err)
	}
	st := rt.DepStats()
	// Only scheduling-independent observables: link/grant counts legally
	// vary with interleaving (a predecessor that already released needs no
	// link), but the data outcome, the task count, and the registered
	// fragment count must not.
	return fmt.Sprintf("arr=%v tasks=%d frags=%d", arr, rt.TaskCount(), st.Fragments)
}

// TestMemPoolCoreDifferential drives identical nested weak-dependency
// programs through the pooled and reference runtimes and requires
// identical observable results. Multi-worker rounds exercise concurrent
// recycling; the Debug config adds the end-of-run leak check to every run.
func TestMemPoolCoreDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 6; seed++ {
			ref := memDiffProgram(t, mempool.KindReference, workers, seed)
			pooled := memDiffProgram(t, mempool.KindPooled, workers, seed)
			if ref != pooled {
				t.Fatalf("w=%d seed=%d diverged:\n  reference: %s\n  pooled:    %s", workers, seed, ref, pooled)
			}
		}
	}
}

// TestMemPoolAutoResolution pins the auto resolution: pooled in real mode,
// reference in virtual mode.
func TestMemPoolAutoResolution(t *testing.T) {
	rt := New(Config{Workers: 2})
	rt.Run(func(tc *TaskContext) {})
	if _, pooled := rt.MemStats(); !pooled {
		t.Error("real-mode auto did not resolve to the pooled engine")
	}
	vrt := New(Config{Workers: 2, Virtual: true})
	vrt.Run(func(tc *TaskContext) {})
	if _, pooled := vrt.MemStats(); pooled {
		t.Error("virtual-mode auto resolved to the pooled engine")
	}
}

// TestMemPoolTaskRecycling pins that Task objects actually recycle: with a
// bounded lookahead window (so submission cannot run arbitrarily ahead of
// completion — the steady-state regime the pools target) a run with many
// more tasks than workers must allocate far fewer Tasks than it executes,
// and drain back to zero outstanding once the workers retire.
func TestMemPoolTaskRecycling(t *testing.T) {
	rt := New(Config{Workers: 2, MemPool: mempool.KindPooled, ThrottleOpenTasks: 8})
	data := rt.NewData("a", 64, 8)
	const total = 1200
	rt.Run(func(tc *TaskContext) {
		for s := 0; s < total; s++ {
			// Independent ready tasks: each submission reserves a window
			// slot, so instantiation stays within 8 tasks of execution and
			// completed Task objects flow back to the submitter.
			tc.Submit(TaskSpec{
				Label: "t",
				Deps:  []Dep{{Data: data, Type: In, Ivs: []Interval{regions.Iv(0, 16)}}},
			})
		}
	})
	st := rt.TaskPoolStats()
	if st.Gets < total {
		t.Fatalf("task gets %d < %d submitted", st.Gets, total)
	}
	if st.News > total/4 {
		t.Errorf("%d fresh Task allocations over %d tasks; recycling is not engaging (%+v)",
			st.News, total, st)
	}
	// Worker goroutines recycle their final task asynchronously after the
	// run; poll briefly for full drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st = rt.TaskPoolStats(); st.Outstanding() == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n := st.Outstanding(); n != 0 {
		t.Errorf("%d tasks outstanding after drain: %+v", n, st)
	}
}

// TestMemPoolViolationsSurviveRecycling: verification findings reference
// tasks only through copied labels, so Violations() stays intact after the
// offending tasks and their dependency nodes have been recycled.
func TestMemPoolViolationsSurviveRecycling(t *testing.T) {
	rt := New(Config{Workers: 2, MemPool: mempool.KindPooled, Verify: true})
	data := rt.NewData("a", 128, 8)
	rt.Run(func(tc *TaskContext) {
		tc.Submit(TaskSpec{
			Label: "outer",
			Deps:  []Dep{{Data: data, Type: InOut, Weak: true, Ivs: []Interval{regions.Iv(0, 32)}}},
			Body: func(tc *TaskContext) {
				// Child escapes the parent's cover: a child-coverage
				// violation referencing both labels.
				tc.Submit(TaskSpec{
					Label: "escapee",
					Deps:  []Dep{{Data: data, Type: Out, Ivs: []Interval{regions.Iv(0, 64)}}},
				})
				// Touch outside the strong entries: a touch violation.
				tc.Touch(data, true, regions.Iv(0, 8))
			},
		})
		// Churn enough tasks to force the pools to reuse the violators'
		// memory before the assertions below run.
		for i := 0; i < 200; i++ {
			tc.Submit(TaskSpec{Label: fmt.Sprintf("churn%d", i)})
		}
	})
	vios := rt.Violations()
	if len(vios) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vios), vios)
	}
	var sawChild, sawTouch bool
	for _, v := range vios {
		switch v.Kind {
		case VChildCoverage:
			sawChild = true
			if v.Task != "escapee" || v.Parent != "outer" {
				t.Errorf("child-coverage violation lost its labels after recycling: %+v", v)
			}
		case VTouch:
			sawTouch = true
			if v.Task != "outer" {
				t.Errorf("touch violation lost its label after recycling: %+v", v)
			}
		}
	}
	if !sawChild || !sawTouch {
		t.Errorf("missing violation kinds: %v", vios)
	}
}

// TestMemPoolAllocGate gates the blocking-Taskwait allocation fix: the
// parking path reuses one signal channel per task (allocated on the first
// blocking wait, kept across waits and recycles) instead of making a fresh
// chan per wait, and the continuation path draws its nodes from a pool. A
// steady-state {submit child; Taskwait} cycle in the pooled memory mode
// must stay at its 2-mallocs floor under both strategies — a per-wait
// channel (or unpooled continuation node) would push it to 3 — and well
// under the allocate-always reference.
func TestMemPoolAllocGate(t *testing.T) {
	measure := func(mem mempool.Kind, kind TaskwaitKind) float64 {
		r := New(Config{Workers: 1, TaskwaitImpl: kind, MemPool: mem})
		var per float64
		r.Run(func(tc *TaskContext) {
			tc.Submit(TaskSpec{Label: "driver", Body: func(tc *TaskContext) {
				// At w=1 every wait blocks: the driver holds the only token,
				// so the submitted child cannot have run yet.
				var firstSig chan struct{}
				cycle := func() {
					tc.Submit(TaskSpec{Label: "c"})
					tc.Taskwait()
				}
				for i := 0; i < 200; i++ {
					cycle()
					if kind == TaskwaitParking {
						if firstSig == nil {
							firstSig = tc.task.waitSig
							if firstSig == nil {
								t.Error("no signal channel after a blocking parking wait")
							}
						} else if tc.task.waitSig != firstSig {
							t.Error("parking wait replaced the task's signal channel; it must be reused")
						}
					}
				}
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				const N = 800
				for i := 0; i < N; i++ {
					cycle()
				}
				runtime.ReadMemStats(&m1)
				per = float64(m1.Mallocs-m0.Mallocs) / N
			}})
		})
		return per
	}
	for _, kind := range []TaskwaitKind{TaskwaitParking, TaskwaitContinuation} {
		pooled := measure(mempool.KindPooled, kind)
		ref := measure(mempool.KindReference, kind)
		t.Logf("%v: pooled %.2f mallocs/cycle, reference %.2f", kind, pooled, ref)
		if pooled > 2.5 {
			t.Errorf("%v: %.2f mallocs per blocking-wait cycle, want <= 2.5 (a per-wait allocation crept in)",
				kind, pooled)
		}
		if ref < pooled*1.5 {
			t.Errorf("%v: reference mode %.2f vs pooled %.2f mallocs/cycle; expected the pooled mode well below the reference",
				kind, ref, pooled)
		}
	}
}

// TestMemPoolAllocGateWorksharing gates the worksharing chunk descriptors:
// a steady-state {Worksharing region; Taskwait} cycle must draw every
// descriptor from the pool (zero fresh allocations once warm) and return
// every one at completion, and the whole cycle must stay within a few
// mallocs (the pooled task, the region's body closure, the wait) — a
// per-chunk or per-region descriptor allocation would scale with the
// region count and blow the bound.
func TestMemPoolAllocGateWorksharing(t *testing.T) {
	r := New(Config{Workers: 1, MemPool: mempool.KindPooled})
	var sink atomic.Int64
	var per float64
	var newsDelta, outstanding int64
	r.Run(func(tc *TaskContext) {
		cycle := func() {
			tc.Worksharing(WorksharingSpec{
				Lo: 0, Hi: 256, Grain: 16,
				Body: func(tc *TaskContext, lo, hi int64) { sink.Add(hi - lo) },
			})
			tc.Taskwait()
		}
		for i := 0; i < 100; i++ {
			cycle()
		}
		runtime.GC()
		warm := r.WsPoolStats()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		const N = 800
		for i := 0; i < N; i++ {
			cycle()
		}
		runtime.ReadMemStats(&m1)
		per = float64(m1.Mallocs-m0.Mallocs) / N
		st := r.WsPoolStats()
		newsDelta = st.News - warm.News
		outstanding = st.Outstanding()
		if st.Gets-warm.Gets != N {
			t.Errorf("drew %d descriptors over %d regions; every chunked region draws exactly one", st.Gets-warm.Gets, N)
		}
	})
	t.Logf("worksharing cycle: %.2f mallocs, descriptor news delta %d", per, newsDelta)
	if newsDelta != 0 {
		t.Errorf("%d fresh chunk-descriptor allocations in steady state, want 0 (recycling is not engaging)", newsDelta)
	}
	if outstanding != 0 {
		t.Errorf("%d chunk descriptors outstanding at drain, want 0", outstanding)
	}
	if per > 4.5 {
		t.Errorf("%.2f mallocs per worksharing cycle, want <= 4.5 (a per-region or per-chunk allocation crept in)", per)
	}
}

// TestMemPoolStressRace combines the pooled memory mode with every sharded
// subsystem — sharded engine, stealing pool, sharded throttle — under
// churn with nested weakwait tasks and taskwait blockers; run with -race
// this is the concurrency-safety net for recycling across all layers.
func TestMemPoolStressRace(t *testing.T) {
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		rt := New(Config{
			Workers:           4,
			MemPool:           mempool.KindPooled,
			ThrottleOpenTasks: 6,
			Debug:             true,
		})
		data := rt.NewData("a", 512, 8)
		var sum atomic.Int64
		err := rt.RunChecked(func(tc *TaskContext) {
			for b := 0; b < 8; b++ {
				lo, hi := int64(b*64), int64(b*64+64)
				tc.Submit(TaskSpec{
					Label:    fmt.Sprintf("outer%d", b),
					WeakWait: b%2 == 0,
					Deps:     []Dep{{Data: data, Type: InOut, Weak: true, Ivs: []Interval{regions.Iv(lo, hi)}}},
					Body: func(tc *TaskContext) {
						for s := 0; s < 30; s++ {
							tc.Submit(TaskSpec{
								Label: "step",
								Deps:  []Dep{{Data: data, Type: InOut, Ivs: []Interval{regions.Iv(lo, hi)}}},
								Body:  func(tc *TaskContext) { sum.Add(1) },
							})
						}
						if lo%128 == 0 {
							tc.Taskwait()
						}
					},
				})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := sum.Load(); got != 8*30 {
			t.Fatalf("ran %d step bodies, want %d", got, 8*30)
		}
	}
}
