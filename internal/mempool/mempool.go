// Package mempool implements the typed free lists behind the runtime's
// allocation-free steady-state hot path. Every submit→complete cycle used
// to heap-allocate its task-lifecycle objects (a core.Task, a deps.Node,
// access structs, interval fragments, interval-map cells, deque boxes,
// replay countdown cells, taskwait continuation nodes);
// once the locks are sharded away, that allocator and GC traffic is the
// dominant per-task overhead in the fine-grained-task regime. The pools
// here recycle those objects instead, with three safety nets:
//
//   - generation counters: every recyclable object embeds a Gen that is
//     bumped when the object is retired to a pool, so a Handle captured
//     while the object was live detects staleness (use-after-recycle, and
//     the ABA reuse of the same memory for a new object) instead of
//     silently reading the successor's state;
//   - leak accounting: each Global tracks outstanding objects (gets minus
//     puts); a drained runtime must report zero, which the Debug checks
//     and the differential tests assert;
//   - batch transfer: owner lanes refill from and overflow to the global
//     shard a batch at a time, so the shared mutex is touched once per
//     batch, not once per object.
//
// Two lane flavors cover the runtime's synchronization patterns:
//
//   - Lane is unsynchronized and caller-serialized: the dependency engine
//     owns one lane per data shard (entered only under that shard's lock),
//     the scheduler one per worker deque (owner-only by the token rule),
//     the core runtime one per worker. Steady-state Get/Put is a plain
//     slice push/pop — no atomics beyond the leak counter.
//   - Pool wraps mutex-guarded lanes for call sites that hold no
//     serializing token (e.g. node creation before the registering shard
//     is known); with lanes spread by a caller-supplied hint the mutex is
//     uncontended in steady state.
package mempool

import (
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// Kind selects the task-lifecycle memory management
// (core.Config.MemPool).
type Kind uint8

const (
	// KindAuto lets the runtime pick: pooled in real mode, reference in
	// virtual mode (the deterministic simulation allocates little and its
	// golden makespans stay byte-identical without pooling in the loop).
	KindAuto Kind = iota
	// KindReference is the allocate-always baseline: every lifecycle
	// object is heap-allocated and left to the garbage collector. Kept as
	// the differential reference, mirroring the global dependency engine,
	// the single-lock ready pools, and the locked throttle window.
	KindReference
	// KindPooled recycles task-lifecycle objects through the typed free
	// lists of this package.
	KindPooled
)

// String returns the kind's depbench/table name.
func (k Kind) String() string {
	switch k {
	case KindReference:
		return "reference"
	case KindPooled:
		return "pooled"
	}
	return "auto"
}

// Gen is the generation counter embedded in recyclable objects. It is
// bumped by Retire when the object goes back to a pool, invalidating every
// Handle captured during the object's previous life. The zero value is
// generation zero, live.
type Gen struct {
	g atomic.Uint32
}

// Generation returns the current generation.
func (g *Gen) Generation() uint32 { return g.g.Load() }

// Retire bumps the generation, invalidating outstanding Handles. The owner
// must call it before the object is made available for reuse.
func (g *Gen) Retire() { g.g.Add(1) }

// Handle is a generation-checked weak reference to a recyclable object: it
// remembers the generation at capture time and refuses to hand the object
// back once the object has been retired (and possibly reincarnated as a
// different logical object in the same memory). gen extracts the object's
// embedded Gen.
type Handle[T any] struct {
	p   *T
	gen func(*T) *Gen
	g   uint32
}

// MakeHandle captures a handle to p at its current generation.
func MakeHandle[T any](p *T, gen func(*T) *Gen) Handle[T] {
	return Handle[T]{p: p, gen: gen, g: gen(p).Generation()}
}

// Get returns the object if it is still the same incarnation the handle
// was captured from; ok=false after the object has been retired. The
// caller must ensure the object cannot be retired while it uses the
// result (in the runtime: nodes are only retired after their completion
// cascade, so holding a handle across a completion point is exactly the
// stale access this check catches).
func (h Handle[T]) Get() (*T, bool) {
	if h.p == nil || h.gen(h.p).Generation() != h.g {
		return nil, false
	}
	return h.p, true
}

// Valid reports whether the handle still refers to its original
// incarnation.
func (h Handle[T]) Valid() bool {
	_, ok := h.Get()
	return ok
}

// Stats is a snapshot of a Global's activity and leak accounting.
type Stats struct {
	// News counts objects heap-allocated because no pooled one was
	// available.
	News int64
	// Gets and Puts count objects handed out and recycled, across every
	// lane attached to the global shard.
	Gets, Puts int64
	// Refills and Flushes count batch transfers between lanes and the
	// global shard.
	Refills, Flushes int64
}

// Outstanding returns the number of objects currently held by callers
// (leak accounting): a drained subsystem must report zero.
func (s Stats) Outstanding() int64 { return s.Gets - s.Puts }

// laneBatch is the batch size of lane↔global transfers and half the lane
// capacity: a lane holds at most 2*laneBatch objects, so ping-ponging at a
// boundary cannot thrash the global mutex.
const laneBatch = 32

// Global is the shared shard of one object type: a mutex-guarded free
// list that lanes refill from and flush to in batches, plus the allocator
// and the leak accounting. Safe for concurrent use.
type Global[T any] struct {
	alloc func() *T

	mu    sync.Mutex
	items []*T
	lanes []*Lane[T] // registered owner lanes (their counters roll up in Stats)

	news, gets, puts, refills, flushes atomic.Int64
}

// NewGlobal creates a global shard; alloc builds a fresh object when the
// free lists run dry.
func NewGlobal[T any](alloc func() *T) *Global[T] {
	return &Global[T]{alloc: alloc}
}

// Stats returns a snapshot of the counters, aggregated over the global
// shard and every registered lane. Exact at quiescence; momentarily stale
// while operations are in flight.
func (g *Global[T]) Stats() Stats {
	st := Stats{
		News: g.news.Load(), Gets: g.gets.Load(), Puts: g.puts.Load(),
		Refills: g.refills.Load(), Flushes: g.flushes.Load(),
	}
	g.mu.Lock()
	for _, l := range g.lanes {
		st.Gets += l.gets.Load()
		st.Puts += l.puts.Load()
	}
	g.mu.Unlock()
	return st
}

// Outstanding returns gets minus puts (objects currently held by callers).
func (g *Global[T]) Outstanding() int64 {
	st := g.Stats()
	return st.Gets - st.Puts
}

func (g *Global[T]) registerLane(l *Lane[T]) {
	g.mu.Lock()
	g.lanes = append(g.lanes, l)
	g.mu.Unlock()
}

// refill moves up to laneBatch objects into dst and reports how many.
func (g *Global[T]) refill(dst []*T) []*T {
	g.mu.Lock()
	n := laneBatch
	if n > len(g.items) {
		n = len(g.items)
	}
	if n > 0 {
		from := len(g.items) - n
		for _, p := range g.items[from:] {
			dst = append(dst, p)
		}
		clearTail(g.items, from)
		g.items = g.items[:from]
		g.refills.Add(1)
	}
	g.mu.Unlock()
	return dst
}

// flush takes the batch of objects back onto the global free list.
func (g *Global[T]) flush(src []*T) {
	g.mu.Lock()
	g.items = append(g.items, src...)
	g.flushes.Add(1)
	g.mu.Unlock()
}

func clearTail[T any](s []*T, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}

// Get hands out one object straight from the global shard (mutex-guarded;
// safe from any goroutine). Prefer an owner Lane on hot paths.
func (g *Global[T]) Get() *T {
	g.gets.Add(1)
	g.mu.Lock()
	if n := len(g.items); n > 0 {
		p := g.items[n-1]
		g.items[n-1] = nil
		g.items = g.items[:n-1]
		g.mu.Unlock()
		return p
	}
	g.mu.Unlock()
	g.news.Add(1)
	return g.alloc()
}

// Put recycles one object straight onto the global shard (mutex-guarded;
// safe from any goroutine). The caller must have reset the object (and
// Retired its Gen) first.
func (g *Global[T]) Put(p *T) {
	g.puts.Add(1)
	g.mu.Lock()
	g.items = append(g.items, p)
	g.mu.Unlock()
}

// Lane is an owner-serialized free list over a Global: Get and Put are
// plain slice operations plus one atomic bump of the lane's own leak
// counter — a cache line only the owner writes, so the accounting adds no
// cross-core traffic — touching the shared shard only for batch refills
// and overflow flushes. A Lane is NOT safe for concurrent use — the caller
// must serialize all operations (the dependency engine enters its
// per-shard lanes only under the shard lock; the scheduler and core enter
// per-worker lanes only while holding that worker's token, which at most
// one goroutine does at a time). The counters are atomics only so that
// Stats/Outstanding may read them from other goroutines.
type Lane[T any] struct {
	g          *Global[T]
	items      []*T
	gets, puts atomic.Int64
}

// NewLane creates a lane over g.
func NewLane[T any](g *Global[T]) *Lane[T] {
	l := &Lane[T]{}
	l.Init(g)
	return l
}

// Init makes a zero-value lane usable (for lanes embedded in larger
// structs) and registers it with g's aggregate accounting. Call exactly
// once per lane.
func (l *Lane[T]) Init(g *Global[T]) {
	l.g = g
	g.registerLane(l)
}

// Get returns a pooled object, refilling a batch from the global shard
// when the lane is empty and heap-allocating only when both are dry. The
// object is in the reset state established by the previous owner's Put
// (or freshly allocated).
func (l *Lane[T]) Get() *T {
	l.gets.Add(1)
	if chaos.Enabled() && len(l.items) > 0 && chaos.Force(chaos.MempoolRefill) {
		// Forced lane miss: flush the lane's stock to the global shard so
		// the Get below goes through the batch refill path — the transfer
		// machinery a quiet steady state rarely exercises. Gets/Puts are
		// untouched, so the leak accounting stays exact.
		l.g.flush(l.items)
		clearTail(l.items, 0)
		l.items = l.items[:0]
	}
	if n := len(l.items); n > 0 {
		p := l.items[n-1]
		l.items[n-1] = nil
		l.items = l.items[:n-1]
		return p
	}
	l.items = l.g.refill(l.items)
	if n := len(l.items); n > 0 {
		p := l.items[n-1]
		l.items[n-1] = nil
		l.items = l.items[:n-1]
		return p
	}
	l.g.news.Add(1)
	return l.g.alloc()
}

// Put recycles an object into the lane, flushing a batch to the global
// shard when the lane is full. The caller must have reset the object and
// Retired its Gen: once Put returns, any goroutine may receive the object
// from any lane of the same Global.
func (l *Lane[T]) Put(p *T) {
	l.puts.Add(1)
	if len(l.items) >= 2*laneBatch {
		from := len(l.items) - laneBatch
		l.g.flush(l.items[from:])
		clearTail(l.items, from)
		l.items = l.items[:from]
	}
	l.items = append(l.items, p)
}

// Pool wraps a Global with mutex-guarded lanes for call sites that hold no
// serializing token. The lane hint spreads callers so the mutexes stay
// uncontended; any int is accepted (hashed into range), including
// negatives.
type Pool[T any] struct {
	g     *Global[T]
	lanes []lockedLane[T]
}

// lockedLane pads to a whole number of cache lines so two hint-adjacent
// callers do not false-share.
type lockedLane[T any] struct {
	mu   sync.Mutex // 8 bytes
	lane Lane[T]    // 48
	_    [8]byte    // 56 -> 64
}

// NewPool creates a pool with the given number of mutex-guarded lanes over
// a fresh Global.
func NewPool[T any](lanes int, alloc func() *T) *Pool[T] {
	if lanes < 1 {
		lanes = 1
	}
	p := &Pool[T]{g: NewGlobal(alloc), lanes: make([]lockedLane[T], lanes)}
	for i := range p.lanes {
		p.lanes[i].lane.Init(p.g)
	}
	return p
}

// Global returns the backing global shard (for attaching owner Lanes that
// share this pool's objects and accounting).
func (p *Pool[T]) Global() *Global[T] { return p.g }

func (p *Pool[T]) idx(hint int) int {
	if hint < 0 {
		hint = -hint
	}
	return hint % len(p.lanes)
}

// Get returns a pooled object; hint selects a lane (callers with a stable
// identity — a worker id, a shard id — get an uncontended mutex).
func (p *Pool[T]) Get(hint int) *T {
	ll := &p.lanes[p.idx(hint)]
	ll.mu.Lock()
	x := ll.lane.Get()
	ll.mu.Unlock()
	return x
}

// Put recycles an object. The caller must have reset it and Retired its
// Gen.
func (p *Pool[T]) Put(hint int, x *T) {
	ll := &p.lanes[p.idx(hint)]
	ll.mu.Lock()
	ll.lane.Put(x)
	ll.mu.Unlock()
}

// Stats returns the pool's aggregate counters.
func (p *Pool[T]) Stats() Stats { return p.g.Stats() }

// Outstanding returns the number of objects currently held by callers.
func (p *Pool[T]) Outstanding() int64 { return p.g.Outstanding() }
