package mempool

import (
	"sync"
	"testing"
)

type obj struct {
	gen Gen
	val int
}

func objGen(o *obj) *Gen { return &o.gen }

func TestLaneRecycleRoundTrip(t *testing.T) {
	g := NewGlobal(func() *obj { return &obj{} })
	l := NewLane(g)
	a := l.Get()
	a.val = 7
	a.val = 0 // caller-side reset
	a.gen.Retire()
	l.Put(a)
	b := l.Get()
	if b != a {
		t.Fatalf("lane did not recycle: got %p want %p", b, a)
	}
	if got := g.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d, want 1", got)
	}
	b.gen.Retire()
	l.Put(b)
	if got := g.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after drain = %d, want 0", got)
	}
}

func TestHandleDetectsRecycle(t *testing.T) {
	g := NewGlobal(func() *obj { return &obj{} })
	l := NewLane(g)
	a := l.Get()
	h := MakeHandle(a, objGen)
	if !h.Valid() {
		t.Fatal("fresh handle invalid")
	}
	if p, ok := h.Get(); !ok || p != a {
		t.Fatalf("Get = %p,%v, want %p,true", p, ok, a)
	}
	a.gen.Retire()
	l.Put(a)
	if h.Valid() {
		t.Fatal("handle survived Retire")
	}
	// ABA: the same memory comes back as a new logical object; the stale
	// handle must still refuse it.
	b := l.Get()
	if b != a {
		t.Fatalf("expected recycled object")
	}
	if _, ok := h.Get(); ok {
		t.Fatal("stale handle accepted the reincarnated object (ABA)")
	}
	h2 := MakeHandle(b, objGen)
	if !h2.Valid() {
		t.Fatal("fresh handle on reincarnation invalid")
	}
}

func TestBatchTransferAcrossLanes(t *testing.T) {
	g := NewGlobal(func() *obj { return &obj{} })
	producer, consumer := NewLane(g), NewLane(g)
	var got []*obj
	for i := 0; i < 5*laneBatch; i++ {
		got = append(got, consumer.Get())
	}
	for _, p := range got {
		p.gen.Retire()
		producer.Put(p) // overflows into the global shard
	}
	st := g.Stats()
	if st.Flushes == 0 {
		t.Fatalf("producer lane never flushed to global: %+v", st)
	}
	seen := map[*obj]bool{}
	for _, p := range got {
		seen[p] = true
	}
	// The consumer must get recycled objects back via global refills.
	recycled := 0
	for i := 0; i < 5*laneBatch; i++ {
		if seen[consumer.Get()] {
			recycled++
		}
	}
	if recycled == 0 {
		t.Fatal("no object flowed producer → global → consumer")
	}
	if g.Stats().Refills == 0 {
		t.Fatalf("consumer lane never refilled from global: %+v", g.Stats())
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(4, func() *obj { return &obj{} })
	const goroutines = 8
	const rounds = 2000
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			var held []*obj
			for i := 0; i < rounds; i++ {
				o := p.Get(gi)
				o.val = gi
				held = append(held, o)
				if len(held) >= 16 {
					for _, h := range held {
						h.val = 0
						h.gen.Retire()
						p.Put(gi, h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				h.val = 0
				h.gen.Retire()
				p.Put(gi, h)
			}
		}(gi)
	}
	wg.Wait()
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("leak: Outstanding = %d, want 0 (stats %+v)", got, p.Stats())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindAuto: "auto", KindReference: "reference", KindPooled: "pooled"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
