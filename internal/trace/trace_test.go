package trace

import (
	"strings"
	"testing"
)

func TestKindRegistration(t *testing.T) {
	tr := New(2)
	a := tr.KindID("alpha")
	b := tr.KindID("beta")
	if a == b {
		t.Fatal("distinct names must get distinct kinds")
	}
	if tr.KindID("alpha") != a {
		t.Fatal("re-registration must return the same kind")
	}
	if tr.KindName(a) != "alpha" || tr.KindName(b) != "beta" {
		t.Fatal("KindName mismatch")
	}
}

func TestBusyAndExtent(t *testing.T) {
	tr := New(2)
	k := tr.KindID("k")
	tr.Record(0, k, 10, 20)
	tr.Record(1, k, 15, 40)
	if tr.BusyTime() != 35 {
		t.Fatalf("BusyTime = %d, want 35", tr.BusyTime())
	}
	lo, hi := tr.Extent()
	if lo != 10 || hi != 40 {
		t.Fatalf("Extent = %d,%d", lo, hi)
	}
	ep := tr.EffectiveParallelism(0)
	if ep < 1.16 || ep > 1.17 { // 35/30
		t.Fatalf("EffectiveParallelism = %f", ep)
	}
}

func TestEffectiveParallelismFullWidth(t *testing.T) {
	tr := New(4)
	k := tr.KindID("k")
	for w := 0; w < 4; w++ {
		tr.Record(w, k, 0, 100)
	}
	if ep := tr.EffectiveParallelism(100); ep != 4 {
		t.Fatalf("EffectiveParallelism = %f, want 4", ep)
	}
}

func TestOverlapDisjointPhases(t *testing.T) {
	tr := New(1)
	a := tr.KindID("a")
	b := tr.KindID("b")
	tr.Record(0, a, 0, 50)
	tr.Record(0, b, 50, 100)
	if ov := tr.Overlap([]Kind{a}, []Kind{b}); ov != 0 {
		t.Fatalf("Overlap = %d, want 0", ov)
	}
}

func TestOverlapConcurrentPhases(t *testing.T) {
	tr := New(2)
	a := tr.KindID("a")
	b := tr.KindID("b")
	tr.Record(0, a, 0, 60)
	tr.Record(1, b, 40, 100)
	if ov := tr.Overlap([]Kind{a}, []Kind{b}); ov != 20 {
		t.Fatalf("Overlap = %d, want 20", ov)
	}
}

func TestOverlapMultipleSpans(t *testing.T) {
	tr := New(2)
	a := tr.KindID("a")
	b := tr.KindID("b")
	tr.Record(0, a, 0, 10)
	tr.Record(0, a, 20, 30)
	tr.Record(1, b, 5, 25)
	// Overlaps: [5,10) and [20,25) = 10.
	if ov := tr.Overlap([]Kind{a}, []Kind{b}); ov != 10 {
		t.Fatalf("Overlap = %d, want 10", ov)
	}
}

func TestRenderASCII(t *testing.T) {
	tr := New(2)
	q := tr.KindID("quick")
	p := tr.KindID("prefix")
	tr.Record(0, q, 0, 50)
	tr.Record(1, p, 50, 100)
	out := tr.RenderASCII(20)
	if !strings.Contains(out, "w00") || !strings.Contains(out, "w01") {
		t.Fatalf("missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "Q") || !strings.Contains(out, "P") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "Q=quick") || !strings.Contains(out, "P=prefix") {
		t.Fatalf("missing legend:\n%s", out)
	}
	// Worker 0 idle in second half.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], ".") {
		t.Fatalf("expected idle dots in row 0: %q", lines[0])
	}
}

func TestKindTime(t *testing.T) {
	tr := New(1)
	a := tr.KindID("a")
	b := tr.KindID("b")
	tr.Record(0, a, 0, 30)
	tr.Record(0, b, 30, 40)
	if tr.KindTime(a) != 30 || tr.KindTime(b) != 10 {
		t.Fatalf("KindTime wrong: a=%d b=%d", tr.KindTime(a), tr.KindTime(b))
	}
}

func TestSpansSorted(t *testing.T) {
	tr := New(2)
	k := tr.KindID("k")
	tr.Record(1, k, 50, 60)
	tr.Record(0, k, 10, 20)
	sp := tr.Spans()
	if len(sp) != 2 || sp[0].Start != 10 {
		t.Fatalf("spans not sorted: %+v", sp)
	}
}

func TestRecordOutOfRangeWorkerIgnored(t *testing.T) {
	tr := New(1)
	tr.Record(5, 0, 0, 10)
	tr.Record(-1, 0, 0, 10)
	if tr.BusyTime() != 0 {
		t.Fatal("out-of-range workers must be ignored")
	}
}
