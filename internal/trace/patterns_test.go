package trace

import (
	"strings"
	"testing"
)

// mkTrace builds a tracer and records the given spans (worker, start,
// end) under one kind.
func mkTrace(workers int, spans [][3]int64) *Tracer {
	tr := New(workers)
	k := tr.KindID("task")
	for _, s := range spans {
		tr.Record(int(s[0]), k, s[1], s[2])
	}
	return tr
}

// findPattern returns the finding with the given pattern key, if any.
func findPattern(fs []Finding, pattern string) (Finding, bool) {
	for _, f := range fs {
		if f.Pattern == pattern {
			return f, true
		}
	}
	return Finding{}, false
}

// TestDetectPatternsHealthy: all workers busy the whole run — every
// detector must stay quiet (the passing verdict).
func TestDetectPatternsHealthy(t *testing.T) {
	tr := mkTrace(4, [][3]int64{
		{0, 0, 100}, {1, 0, 100}, {2, 0, 100}, {3, 0, 100},
	})
	if fs := tr.DetectPatterns(100); len(fs) != 0 {
		t.Fatalf("healthy trace produced findings: %+v", fs)
	}
	if got := PatternReport(nil); !strings.Contains(got, "no detrimental") {
		t.Errorf("empty report = %q", got)
	}
}

// TestDetectSerializedCreation: worker 0 alone for the first half of the
// run (the creation phase), then everyone busy — only the
// serialized-creation detector fires (the failing verdict), and shrinking
// the serial prefix below the threshold silences it again.
func TestDetectSerializedCreation(t *testing.T) {
	tr := mkTrace(4, [][3]int64{
		{0, 0, 50}, // the generator, alone
		{0, 50, 100}, {1, 50, 100}, {2, 50, 100}, {3, 50, 100},
	})
	fs := tr.DetectPatterns(100)
	f, ok := findPattern(fs, "serialized-creation")
	if !ok {
		t.Fatalf("serialized trace not detected: %+v", fs)
	}
	if f.Severity < 0.45 || f.Severity > 0.55 {
		t.Errorf("severity %g, want ~0.5 (half the run serial)", f.Severity)
	}
	if _, ok := findPattern(fs, "starved-workers"); ok {
		t.Errorf("starvation misfired on serialized trace: %+v", fs)
	}
	// Short serial prefix (10%): below threshold, clean verdict.
	tr2 := mkTrace(4, [][3]int64{
		{0, 0, 10},
		{0, 10, 100}, {1, 10, 100}, {2, 10, 100}, {3, 10, 100},
	})
	if fs := tr2.DetectPatterns(100); len(fs) != 0 {
		t.Errorf("10%% prefix flagged: %+v", fs)
	}
}

// TestDetectStarvedWorkers: three workers saturated, one nearly idle —
// only the starvation detector fires, naming the starved worker; giving
// that worker its share silences it.
func TestDetectStarvedWorkers(t *testing.T) {
	tr := mkTrace(4, [][3]int64{
		{0, 0, 100}, {1, 0, 100}, {2, 0, 100},
		{3, 0, 5}, // starved: 5% of the busiest
	})
	fs := tr.DetectPatterns(100)
	f, ok := findPattern(fs, "starved-workers")
	if !ok {
		t.Fatalf("starved trace not detected: %+v", fs)
	}
	if !strings.Contains(f.Detail, "[3]") {
		t.Errorf("detail does not name worker 3: %q", f.Detail)
	}
	if _, ok := findPattern(fs, "serialized-creation"); ok {
		t.Errorf("serialized-creation misfired on starved trace: %+v", fs)
	}
	if _, ok := findPattern(fs, "wait-heavy"); ok {
		t.Errorf("wait-heavy misfired on starved trace: %+v", fs)
	}
	// Balanced version: clean.
	tr2 := mkTrace(4, [][3]int64{
		{0, 0, 100}, {1, 0, 100}, {2, 0, 100}, {3, 0, 90},
	})
	if fs := tr2.DetectPatterns(100); len(fs) != 0 {
		t.Errorf("balanced trace flagged: %+v", fs)
	}
}

// TestDetectWaitHeavy: every worker alternates short spans with idle
// gaps (drain → block → resume churn) — only the wait-heavy detector
// fires. One long gap per worker (phase imbalance) must NOT fire it.
func TestDetectWaitHeavy(t *testing.T) {
	var spans [][3]int64
	for w := int64(0); w < 4; w++ {
		for s := int64(0); s < 5; s++ {
			spans = append(spans, [3]int64{w, s * 20, s*20 + 10})
		}
	}
	tr := mkTrace(4, spans)
	fs := tr.DetectPatterns(100)
	f, ok := findPattern(fs, "wait-heavy")
	if !ok {
		t.Fatalf("wait-heavy trace not detected: %+v", fs)
	}
	if f.Severity < 0.4 || f.Severity > 0.6 {
		t.Errorf("severity %g, want ~0.5 (EP 2 of 4)", f.Severity)
	}
	if _, ok := findPattern(fs, "starved-workers"); ok {
		t.Errorf("starvation misfired on wait-heavy trace: %+v", fs)
	}
	// Same 50% idleness as ONE contiguous gap per worker: fragmented it
	// is not, so wait-heavy stays quiet (and with every worker's single
	// span covering the start, so does serialized-creation).
	tr2 := mkTrace(4, [][3]int64{
		{0, 0, 50}, {1, 0, 50}, {2, 0, 50}, {3, 0, 50},
		{0, 90, 100}, {1, 90, 100}, {2, 90, 100}, {3, 90, 100},
	})
	if _, ok := findPattern(tr2.DetectPatterns(100), "wait-heavy"); ok {
		t.Errorf("single-gap trace flagged wait-heavy")
	}
}

// TestDetectPatternsDegenerate: single-worker and empty traces are not
// classifiable — parallelism pathologies need parallelism.
func TestDetectPatternsDegenerate(t *testing.T) {
	if fs := mkTrace(1, [][3]int64{{0, 0, 10}}).DetectPatterns(0); fs != nil {
		t.Errorf("w=1 trace classified: %+v", fs)
	}
	if fs := New(4).DetectPatterns(0); fs != nil {
		t.Errorf("empty trace classified: %+v", fs)
	}
}

// TestPatternReportRendering: the report table carries every finding's
// pattern key and diagnosis.
func TestPatternReportRendering(t *testing.T) {
	fs := []Finding{
		{Pattern: "serialized-creation", Severity: 0.5, Detail: "half serial"},
		{Pattern: "wait-heavy", Severity: 0.3, Detail: "gappy"},
	}
	got := PatternReport(fs)
	for _, want := range []string{"serialized-creation", "wait-heavy", "half serial", "gappy", "Tuft"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}
