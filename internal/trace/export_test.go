package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func sampleTracer() *Tracer {
	t := New(3)
	kA := t.KindID("sort")
	kB := t.KindID("sum")
	t.Record(0, kA, 100, 200)
	t.Record(0, kB, 200, 260)
	t.Record(1, kA, 120, 180)
	t.Record(2, kB, 150, 400)
	return t
}

func TestWriteChromeRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byName := map[string]int{}
	var total int64
	for _, e := range events {
		if e.Phase != "X" || e.Cat != "task" {
			t.Errorf("event %+v: wrong phase or category", e)
		}
		if e.Dur <= 0 {
			t.Errorf("event %+v: non-positive duration", e)
		}
		if e.TID < 0 || e.TID > 2 {
			t.Errorf("event %+v: tid outside worker range", e)
		}
		byName[e.Name]++
		total += e.Dur
	}
	if byName["sort"] != 2 || byName["sum"] != 2 {
		t.Errorf("kind counts = %v, want sort:2 sum:2", byName)
	}
	if total != tr.BusyTime() {
		t.Errorf("total event duration %d != busy time %d", total, tr.BusyTime())
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	tr := New(2)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty trace produced %d events", len(events))
	}
}

func TestWritePRVShape(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "#Paraver") {
		t.Fatalf("missing Paraver header; first line %q", sc.Text())
	}
	// Extent is 400-100 = 300 and 3 workers.
	if !strings.Contains(sc.Text(), ":300:1(3):1:1(3:1)") {
		t.Errorf("header = %q, want extent 300 and 3 cpus", sc.Text())
	}
	var records, legend int
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "1:"):
			records++
			parts := strings.Split(line, ":")
			if len(parts) != 8 {
				t.Errorf("state record %q has %d fields, want 8", line, len(parts))
			}
			if parts[7] != "1" && parts[7] != "2" {
				t.Errorf("state record %q: state %s not a registered kind", line, parts[7])
			}
		case strings.HasPrefix(line, "# state"):
			legend++
		default:
			t.Errorf("unexpected line %q", line)
		}
	}
	if records != 4 {
		t.Errorf("got %d state records, want 4", records)
	}
	if legend != 2 {
		t.Errorf("got %d legend lines, want 2", legend)
	}
}

// TestConcurrentEmittersExport exercises the tracer's concurrency
// contract under -race: Record is lock-free per worker because the
// scheduler serializes each worker's token, so one goroutine per worker
// recording simultaneously — while all of them race on the shared KindID
// registry — must be clean, and the trace must then export completely in
// both formats. This is the CI race pass's witness that real-mode tracing
// (internal/core writes spans from every worker) is data-race free.
func TestConcurrentEmittersExport(t *testing.T) {
	const workers, spansPer, kinds = 8, 200, 5
	tr := New(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				// Kind registration is shared and mutex-protected; hammer
				// it from every emitter, including novel names mid-run.
				k := tr.KindID(fmt.Sprintf("kind%d", (w+i)%kinds))
				start := int64(i * 10)
				tr.Record(w, k, start, start+7)
			}
		}(w)
	}
	wg.Wait()

	if got := len(tr.Spans()); got != workers*spansPer {
		t.Fatalf("recorded %d spans, want %d", got, workers*spansPer)
	}
	if got := len(tr.Kinds()); got != kinds {
		t.Fatalf("registered %d kinds, want %d", got, kinds)
	}
	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(chrome.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(events) != workers*spansPer {
		t.Errorf("chrome export has %d events, want %d", len(events), workers*spansPer)
	}
	var prv bytes.Buffer
	if err := tr.WritePRV(&prv); err != nil {
		t.Fatal(err)
	}
	records := 0
	for sc := bufio.NewScanner(&prv); sc.Scan(); {
		if strings.HasPrefix(sc.Text(), "1:") {
			records++
		}
	}
	if records != workers*spansPer {
		t.Errorf("PRV export has %d state records, want %d", records, workers*spansPer)
	}
	// The detector must also run cleanly over a trace built this way.
	if fs := tr.DetectPatterns(0); fs == nil {
		// All workers share an identical busy/idle profile: either verdict
		// is legitimate depending on thresholds, but the call must not
		// race or panic; nil findings are fine.
		_ = fs
	}
}

func TestWritePRVTimesRebased(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	// The first span of worker 0 starts at extent origin (100 -> 0).
	if !strings.Contains(buf.String(), "1:1:1:1:1:0:100:1\n") {
		t.Errorf("worker 0's first record not rebased to 0:\n%s", buf.String())
	}
}
