package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTracer() *Tracer {
	t := New(3)
	kA := t.KindID("sort")
	kB := t.KindID("sum")
	t.Record(0, kA, 100, 200)
	t.Record(0, kB, 200, 260)
	t.Record(1, kA, 120, 180)
	t.Record(2, kB, 150, 400)
	return t
}

func TestWriteChromeRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byName := map[string]int{}
	var total int64
	for _, e := range events {
		if e.Phase != "X" || e.Cat != "task" {
			t.Errorf("event %+v: wrong phase or category", e)
		}
		if e.Dur <= 0 {
			t.Errorf("event %+v: non-positive duration", e)
		}
		if e.TID < 0 || e.TID > 2 {
			t.Errorf("event %+v: tid outside worker range", e)
		}
		byName[e.Name]++
		total += e.Dur
	}
	if byName["sort"] != 2 || byName["sum"] != 2 {
		t.Errorf("kind counts = %v, want sort:2 sum:2", byName)
	}
	if total != tr.BusyTime() {
		t.Errorf("total event duration %d != busy time %d", total, tr.BusyTime())
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	tr := New(2)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []ChromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty trace produced %d events", len(events))
	}
}

func TestWritePRVShape(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "#Paraver") {
		t.Fatalf("missing Paraver header; first line %q", sc.Text())
	}
	// Extent is 400-100 = 300 and 3 workers.
	if !strings.Contains(sc.Text(), ":300:1(3):1:1(3:1)") {
		t.Errorf("header = %q, want extent 300 and 3 cpus", sc.Text())
	}
	var records, legend int
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "1:"):
			records++
			parts := strings.Split(line, ":")
			if len(parts) != 8 {
				t.Errorf("state record %q has %d fields, want 8", line, len(parts))
			}
			if parts[7] != "1" && parts[7] != "2" {
				t.Errorf("state record %q: state %s not a registered kind", line, parts[7])
			}
		case strings.HasPrefix(line, "# state"):
			legend++
		default:
			t.Errorf("unexpected line %q", line)
		}
	}
	if records != 4 {
		t.Errorf("got %d state records, want 4", records)
	}
	if legend != 2 {
		t.Errorf("got %d legend lines, want 2", legend)
	}
}

func TestWritePRVTimesRebased(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WritePRV(&buf); err != nil {
		t.Fatal(err)
	}
	// The first span of worker 0 starts at extent origin (100 -> 0).
	if !strings.Contains(buf.String(), "1:1:1:1:1:0:100:1\n") {
		t.Errorf("worker 0's first record not rebased to 0:\n%s", buf.String())
	}
}
