package trace

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Detrimental-pattern detection: when the perf-trajectory gate
// (cmd/perftrack) flags a regression, the raw number says nothing about
// the cause. This classifier runs over an execution trace and tests for
// the detrimental task execution patterns of "Detrimental task execution
// patterns in mainstream OpenMP runtimes" (Tuft et al., PAPERS.md), so a
// red gate comes with a diagnosis:
//
//   - serialized-creation: a long leading phase where at most one worker
//     is busy — the single task generator instantiating the graph while
//     everyone else idles, the pattern the paper's nested variants (and
//     this runtime's worksharing regions) exist to break;
//   - starved-workers: some workers accumulate far less busy time than
//     the busiest — ready work exists but never reaches them (broken
//     steal path, affinity misrouting, announcement failure);
//   - wait-heavy: effective parallelism is low with the idleness spread
//     across all workers as many short gaps between spans — workers
//     repeatedly drain and block on synchronization (over-subscribed
//     waits, a cascade resuming waiters one at a time).
//
// The three are deliberately disjoint in what they measure (leading
// prefix, per-worker imbalance, distributed fragmentation), so one trace
// can surface several when several things are wrong.

// Finding is one detected pattern.
type Finding struct {
	// Pattern is the taxonomy key: "serialized-creation",
	// "starved-workers", or "wait-heavy".
	Pattern string
	// Severity grades the finding in [0, 1] (1 = worst).
	Severity float64
	// Detail is the one-line quantitative diagnosis.
	Detail string
}

// Detection thresholds. Exported as constants so the docs and tests state
// the policy once.
const (
	// SerializedCreationMinFrac: a sub-2-concurrency leading prefix
	// longer than this fraction of the wall flags serialized creation.
	SerializedCreationMinFrac = 0.20
	// StarvedWorkerFrac: a worker with less than this fraction of the
	// busiest worker's busy time is starved.
	StarvedWorkerFrac = 0.25
	// WaitHeavyMaxEP: effective parallelism (busy / workers·wall) below
	// this flags wait-heaviness when the idleness is fragmented.
	WaitHeavyMaxEP = 0.60
	// WaitHeavyMinGaps: minimum idle gaps per affected worker for the
	// idleness to count as fragmented (a single long gap is phase
	// imbalance, not wait churn).
	WaitHeavyMinGaps = 2
)

// DetectPatterns classifies the trace against the detrimental-pattern
// taxonomy. wall is the run's wall time in span units (<= 0 uses the
// trace extent). Single-worker traces and empty traces return nil — the
// patterns are parallelism pathologies.
func (t *Tracer) DetectPatterns(wall int64) []Finding {
	workers := t.Workers()
	lo, hi := t.Extent()
	if workers < 2 || hi <= lo {
		return nil
	}
	if wall <= 0 {
		wall = hi - lo
	}
	var out []Finding
	if f, ok := t.detectSerializedCreation(lo, wall); ok {
		out = append(out, f)
	}
	if f, ok := t.detectStarvedWorkers(wall); ok {
		out = append(out, f)
	}
	if f, ok := t.detectWaitHeavy(wall); ok {
		out = append(out, f)
	}
	return out
}

// detectSerializedCreation measures the leading prefix during which fewer
// than two spans overlap — the creation phase a single generator
// serializes. The sweep orders span ends before starts at equal
// timestamps, so back-to-back spans on one worker do not count as
// concurrency.
func (t *Tracer) detectSerializedCreation(lo, wall int64) (Finding, bool) {
	type event struct {
		at    int64
		delta int
	}
	var events []event
	for _, ws := range t.perWorker {
		for _, s := range ws {
			events = append(events, event{s.Start, +1}, event{s.End, -1})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // ends before starts
	})
	active := 0
	reached := lo + wall // never-reached sentinel: serial to the end
	for _, e := range events {
		active += e.delta
		if active >= 2 {
			reached = e.at
			break
		}
	}
	frac := float64(reached-lo) / float64(wall)
	if frac <= SerializedCreationMinFrac {
		return Finding{}, false
	}
	return Finding{
		Pattern:  "serialized-creation",
		Severity: frac,
		Detail: fmt.Sprintf("concurrency < 2 for the leading %.0f%% of the run (%d of %d units) — single-generator creation phase",
			frac*100, reached-lo, wall),
	}, true
}

// detectStarvedWorkers compares per-worker busy time against the busiest
// worker: workers far below it were starved of ready work.
func (t *Tracer) detectStarvedWorkers(wall int64) (Finding, bool) {
	busy := make([]int64, len(t.perWorker))
	var maxBusy int64
	for w, ws := range t.perWorker {
		for _, s := range ws {
			busy[w] += s.End - s.Start
		}
		if busy[w] > maxBusy {
			maxBusy = busy[w]
		}
	}
	// If even the busiest worker barely ran, the trace is idle overall —
	// that is wait-heaviness or serialization, not starvation.
	if float64(maxBusy) < 0.30*float64(wall) {
		return Finding{}, false
	}
	var starved []int
	for w, b := range busy {
		if float64(b) < StarvedWorkerFrac*float64(maxBusy) {
			starved = append(starved, w)
		}
	}
	if len(starved) == 0 {
		return Finding{}, false
	}
	return Finding{
		Pattern:  "starved-workers",
		Severity: float64(len(starved)) / float64(len(busy)),
		Detail: fmt.Sprintf("workers %v ran < %.0f%% of the busiest worker's busy time — ready work is not reaching them",
			starved, StarvedWorkerFrac*100),
	}, true
}

// detectWaitHeavy flags low effective parallelism whose idleness is
// fragmented into repeated gaps on most workers — the signature of
// over-subscribed synchronization (every worker keeps draining and
// re-blocking), as opposed to one long idle phase.
func (t *Tracer) detectWaitHeavy(wall int64) (Finding, bool) {
	workers := len(t.perWorker)
	ep := float64(t.BusyTime()) / (float64(workers) * float64(wall))
	if ep >= WaitHeavyMaxEP {
		return Finding{}, false
	}
	fragmented := 0
	totalGaps := 0
	for _, ws := range t.perWorker {
		spans := append([]Span(nil), ws...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		gaps := 0
		for i := 1; i < len(spans); i++ {
			if spans[i].Start > spans[i-1].End {
				gaps++
			}
		}
		totalGaps += gaps
		if gaps >= WaitHeavyMinGaps {
			fragmented++
		}
	}
	if fragmented < (workers+1)/2 {
		return Finding{}, false
	}
	return Finding{
		Pattern:  "wait-heavy",
		Severity: 1 - ep,
		Detail: fmt.Sprintf("effective parallelism %.2f of %d workers with %d idle gaps across %d workers — over-subscribed waits",
			ep*float64(workers), workers, totalGaps, fragmented),
	}, true
}

// PatternReport renders findings as the diagnosis table perftrack prints
// under a red gate; no findings renders an explicit all-clear line.
func PatternReport(findings []Finding) string {
	if len(findings) == 0 {
		return "no detrimental execution pattern detected\n"
	}
	tb := metrics.NewTable("detrimental execution patterns (Tuft et al. taxonomy)",
		"pattern", "severity", "diagnosis")
	for _, f := range findings {
		tb.Add(f.Pattern, fmt.Sprintf("%.2f", f.Severity), f.Detail)
	}
	return tb.String()
}
