// Package trace records per-worker task execution spans and derives the
// paper's timeline artifacts: the execution timeline of Figure 7 (rendered
// as ASCII), the effective-parallelism metric of Figure 6 (total busy time
// over wall time), and phase-overlap measurements.
//
// Recording is lock-free per worker: a span is appended by the goroutine
// currently holding that worker's token, which the scheduler serializes.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind identifies a task category (e.g. "quick_sort", "prefix_sum"). Kinds
// are registered by name and rendered with one letter each.
type Kind uint8

// Span is one task execution on one worker, in nanoseconds since the run
// start (real mode) or virtual time units (virtual mode).
type Span struct {
	Worker     int
	Kind       Kind
	Start, End int64
}

// Tracer accumulates spans for a fixed set of workers.
type Tracer struct {
	perWorker [][]Span

	mu    sync.Mutex
	kinds []string
}

// New creates a tracer for the given number of workers.
func New(workers int) *Tracer {
	return &Tracer{perWorker: make([][]Span, workers)}
}

// KindID registers (or finds) a kind by name.
func (t *Tracer) KindID(name string) Kind {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, k := range t.kinds {
		if k == name {
			return Kind(i)
		}
	}
	t.kinds = append(t.kinds, name)
	return Kind(len(t.kinds) - 1)
}

// KindName returns the registered name of k.
func (t *Tracer) KindName(k Kind) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(k) < len(t.kinds) {
		return t.kinds[k]
	}
	return fmt.Sprintf("kind%d", k)
}

// Kinds returns the registered kind names in id order.
func (t *Tracer) Kinds() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.kinds))
	copy(out, t.kinds)
	return out
}

// Record appends a span for worker w. Must only be called by the goroutine
// holding worker w's token.
func (t *Tracer) Record(w int, k Kind, start, end int64) {
	if w < 0 || w >= len(t.perWorker) {
		return
	}
	t.perWorker[w] = append(t.perWorker[w], Span{Worker: w, Kind: k, Start: start, End: end})
}

// Workers returns the worker count.
func (t *Tracer) Workers() int { return len(t.perWorker) }

// Spans returns all spans sorted by start time.
func (t *Tracer) Spans() []Span {
	var out []Span
	for _, ws := range t.perWorker {
		out = append(out, ws...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// BusyTime returns the summed span durations across all workers.
func (t *Tracer) BusyTime() int64 {
	var sum int64
	for _, ws := range t.perWorker {
		for _, s := range ws {
			sum += s.End - s.Start
		}
	}
	return sum
}

// Extent returns the [min start, max end] over all spans (0,0 if empty).
func (t *Tracer) Extent() (int64, int64) {
	first := true
	var lo, hi int64
	for _, ws := range t.perWorker {
		for _, s := range ws {
			if first || s.Start < lo {
				lo = s.Start
			}
			if first || s.End > hi {
				hi = s.End
			}
			first = false
		}
	}
	return lo, hi
}

// EffectiveParallelism returns busy time divided by the given wall time —
// the metric of Figure 6. wall <= 0 uses the trace extent.
func (t *Tracer) EffectiveParallelism(wall int64) float64 {
	if wall <= 0 {
		lo, hi := t.Extent()
		wall = hi - lo
	}
	if wall <= 0 {
		return 0
	}
	return float64(t.BusyTime()) / float64(wall)
}

// kindGlyphs is the palette used by the ASCII timeline.
const kindGlyphs = "QPASBCDEFGHIJKLMNORTUVWXYZqprstuvwxyz"

// RenderASCII renders the timeline as one row per worker and width columns
// spanning the trace extent, with one glyph per kind ('.' = idle). It is
// the reproduction of Figure 7's Paraver timelines.
func (t *Tracer) RenderASCII(width int) string {
	lo, hi := t.Extent()
	if hi <= lo || width <= 0 {
		return "(empty trace)\n"
	}
	span := hi - lo
	var b strings.Builder
	for w := range t.perWorker {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.perWorker[w] {
			c0 := int((s.Start - lo) * int64(width) / span)
			c1 := int((s.End - lo) * int64(width) / span)
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > width {
				c1 = width
			}
			g := byte('?')
			if int(s.Kind) < len(kindGlyphs) {
				g = kindGlyphs[s.Kind]
			}
			for c := c0; c < c1; c++ {
				row[c] = g
			}
		}
		fmt.Fprintf(&b, "w%02d |%s|\n", w, row)
	}
	// Legend.
	b.WriteString("     ")
	for i, name := range t.Kinds() {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", kindGlyphs[i], name)
	}
	b.WriteString("  .=idle\n")
	return b.String()
}

// Overlap returns the total time during which at least one span of a kind
// in setA and one of a kind in setB are simultaneously active — the
// quantitative version of Figure 7's visual claim that quicksort and
// prefix-sum tasks execute concurrently under weak dependencies.
func (t *Tracer) Overlap(setA, setB []Kind) int64 {
	type edge struct {
		at   int64
		a, b int
	}
	inA := make(map[Kind]bool)
	for _, k := range setA {
		inA[k] = true
	}
	inB := make(map[Kind]bool)
	for _, k := range setB {
		inB[k] = true
	}
	var edges []edge
	for _, ws := range t.perWorker {
		for _, s := range ws {
			var da, db int
			if inA[s.Kind] {
				da = 1
			}
			if inB[s.Kind] {
				db = 1
			}
			if da == 0 && db == 0 {
				continue
			}
			edges = append(edges, edge{s.Start, da, db}, edge{s.End, -da, -db})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	var overlap int64
	var actA, actB int
	var prev int64
	for _, e := range edges {
		if actA > 0 && actB > 0 {
			overlap += e.at - prev
		}
		actA += e.a
		actB += e.b
		prev = e.at
	}
	return overlap
}

// KindTime returns the total busy time of one kind.
func (t *Tracer) KindTime(k Kind) int64 {
	var sum int64
	for _, ws := range t.perWorker {
		for _, s := range ws {
			if s.Kind == k {
				sum += s.End - s.Start
			}
		}
	}
	return sum
}
