package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Exporters for external trace viewers. Two formats:
//
//   - Chrome trace-event JSON (chrome://tracing, Perfetto): one complete
//     ("X") event per span, workers mapped to thread ids.
//   - A Paraver-like PRV text form: the format of the BSC tool the paper's
//     Figure 7 timelines were rendered with. Only the state records needed
//     to reproduce the timeline are emitted.

// ChromeEvent is one trace-event in the Chrome trace format. Exported so
// tests (and downstream tooling) can unmarshal what WriteChrome produces.
type ChromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`  // microseconds in the viewer; we emit raw units
	Dur   int64  `json:"dur"` // duration in the same units
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
}

// WriteChrome writes the trace as a Chrome trace-event JSON array. Span
// times are emitted verbatim (nanoseconds in real mode, cost units in
// virtual mode); the viewer's absolute time unit is microseconds, which
// only rescales the display.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]ChromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, ChromeEvent{
			Name:  t.KindName(s.Kind),
			Cat:   "task",
			Phase: "X",
			TS:    s.Start,
			Dur:   s.End - s.Start,
			PID:   1,
			TID:   s.Worker,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WritePRV writes the trace in a Paraver-like PRV text form: a header line
//
//	#Paraver (repro):<extent>:1(<workers>):1:1(<workers>:1)
//
// followed by one state record per span,
//
//	1:<cpu>:1:1:<thread>:<start>:<end>:<kind+1>
//
// with a trailing legend of kind ids as comments. State value 0 is idle, so
// kinds are shifted by one. This is the shape of the traces behind the
// paper's Figure 7.
func (t *Tracer) WritePRV(w io.Writer) error {
	lo, hi := t.Extent()
	if _, err := fmt.Fprintf(w, "#Paraver (repro):%d:1(%d):1:1(%d:1)\n",
		hi-lo, t.Workers(), t.Workers()); err != nil {
		return err
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Worker != spans[j].Worker {
			return spans[i].Worker < spans[j].Worker
		}
		return spans[i].Start < spans[j].Start
	})
	for _, s := range spans {
		if _, err := fmt.Fprintf(w, "1:%d:1:1:%d:%d:%d:%d\n",
			s.Worker+1, s.Worker+1, s.Start-lo, s.End-lo, int(s.Kind)+1); err != nil {
			return err
		}
	}
	for i, name := range t.Kinds() {
		if _, err := fmt.Fprintf(w, "# state %d = %s\n", i+1, name); err != nil {
			return err
		}
	}
	return nil
}
