package cluster

import (
	"testing"

	"repro/internal/regions"
)

func acc(lo, hi int64, w bool) Access {
	return Access{Data: 0, Iv: regions.Iv(lo, hi), Write: w}
}

func TestTransferOnFirstUse(t *testing.T) {
	s := New(Config{Nodes: 2, ElemSize: 8})
	s.Seed(0, 0, regions.Iv(0, 100))
	// Node 1 reads [0,50): transfers 50 elements.
	if moved := s.RunTask(1, []Access{acc(0, 50, false)}); moved != 50 {
		t.Fatalf("moved %d, want 50", moved)
	}
	// Re-reading is free.
	if moved := s.RunTask(1, []Access{acc(0, 50, false)}); moved != 0 {
		t.Fatalf("re-read moved %d, want 0", moved)
	}
	if s.MovedBytes() != 50*8 {
		t.Fatalf("MovedBytes = %d", s.MovedBytes())
	}
}

func TestPartialTransfer(t *testing.T) {
	s := New(Config{Nodes: 2})
	s.Seed(1, 0, regions.Iv(0, 30))
	// Node 1 accesses [0,60): only [30,60) is missing.
	if moved := s.RunTask(1, []Access{acc(0, 60, false)}); moved != 30 {
		t.Fatalf("moved %d, want 30", moved)
	}
}

func TestWriteInvalidatesOtherNodes(t *testing.T) {
	s := New(Config{Nodes: 2})
	s.Seed(0, 0, regions.Iv(0, 100))
	s.RunTask(1, []Access{acc(0, 100, false)}) // replicate to node 1
	// Node 0 writes: node 1's copy invalidated.
	s.RunTask(0, []Access{acc(0, 100, true)})
	if moved := s.RunTask(1, []Access{acc(0, 100, false)}); moved != 100 {
		t.Fatalf("node 1 should re-fetch after invalidation, moved %d", moved)
	}
}

func TestUsageAccounting(t *testing.T) {
	s := New(Config{Nodes: 2})
	s.Seed(0, 0, regions.Iv(0, 100))
	if s.Usage(0) != 100 || s.Usage(1) != 0 {
		t.Fatalf("usage = %d,%d", s.Usage(0), s.Usage(1))
	}
	s.RunTask(1, []Access{acc(0, 40, true)})
	if s.Usage(1) != 40 {
		t.Fatalf("node1 usage = %d, want 40", s.Usage(1))
	}
	// The write invalidated [0,40) on node 0.
	if s.Usage(0) != 60 {
		t.Fatalf("node0 usage = %d, want 60", s.Usage(0))
	}
}

func TestMemoryFailureDetection(t *testing.T) {
	s := New(Config{Nodes: 2, NodeMemory: 50})
	s.Seed(0, 0, regions.Iv(0, 100))
	// Node 1 pulls 80 elements: exceeds its 50-element memory.
	s.RunTask(1, []Access{acc(0, 80, false)})
	if s.Failures() != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures())
	}
}

// TestScenarioLazyBeatsEager: the §X claim — weak (lazy) transfers strictly
// less data than eager whole-dataset copies, and fits node memory where
// eager does not.
func TestScenarioLazyBeatsEager(t *testing.T) {
	sc := Scenario{N: 1 << 16, Calls: 4, TaskSize: 1 << 12}
	cfg := Config{Nodes: 4, ElemSize: 8, NodeMemory: 1 << 15} // ½ of the dataset per node
	eager := sc.RunEager(cfg)
	lazy := sc.RunLazy(cfg)
	if lazy.MovedBytes >= eager.MovedBytes {
		t.Fatalf("lazy moved %d bytes, eager %d — lazy must move less",
			lazy.MovedBytes, eager.MovedBytes)
	}
	if eager.Failures == 0 {
		t.Fatal("eager whole-dataset placement should exceed node memory in this scenario")
	}
	if lazy.Failures != 0 {
		t.Fatalf("lazy placement should fit node memory, got %d failures", lazy.Failures)
	}
	if lazy.PeakUsage >= eager.PeakUsage {
		t.Fatalf("lazy peak usage %d should be below eager %d", lazy.PeakUsage, eager.PeakUsage)
	}
}

// TestScenarioSingleNodeDegenerate: with one node nothing ever moves after
// seeding.
func TestScenarioSingleNodeDegenerate(t *testing.T) {
	sc := Scenario{N: 1 << 10, Calls: 2, TaskSize: 1 << 8}
	cfg := Config{Nodes: 1}
	if got := sc.RunLazy(cfg).MovedBytes; got != 0 {
		t.Fatalf("single node moved %d bytes", got)
	}
	if got := sc.RunEager(cfg).MovedBytes; got != 0 {
		t.Fatalf("single node eager moved %d bytes", got)
	}
}

func TestInvalidNodePanics(t *testing.T) {
	s := New(Config{Nodes: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.RunTask(3, nil)
}
