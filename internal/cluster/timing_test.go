package cluster

import (
	"testing"

	"repro/internal/regions"
)

func TestTransferTimeModel(t *testing.T) {
	s := New(Config{Nodes: 2, Bandwidth: 10, Latency: 100})
	if got := s.transferTime(0); got != 0 {
		t.Errorf("zero transfer costs %d, want 0", got)
	}
	// 25 elements at bandwidth 10 -> ceil(25/10)=3 plus latency 100.
	if got := s.transferTime(25); got != 103 {
		t.Errorf("transferTime(25) = %d, want 103", got)
	}
}

func TestRunTaskAtAdvancesClock(t *testing.T) {
	s := New(Config{Nodes: 2, Bandwidth: 10, Latency: 100, ComputePerElem: 2})
	s.Seed(1, 0, regions.Iv(0, 50)) // data lives on node 1
	// Task on node 0 reads [0,50): transfer 50 elems (latency 100 + 5) and
	// computes 50*2.
	end := s.RunTaskAt(0, []Access{{Data: 0, Iv: regions.Iv(0, 50)}}, 0, 50)
	if want := int64(100 + 5 + 100); end != want {
		t.Errorf("end = %d, want %d", end, want)
	}
	// Second task on the same node: data now resident, no transfer; starts
	// at the node's clock even though readyAt is earlier.
	end2 := s.RunTaskAt(0, []Access{{Data: 0, Iv: regions.Iv(0, 50)}}, 0, 10)
	if want := end + 20; end2 != want {
		t.Errorf("end2 = %d, want %d", end2, want)
	}
	// readyAt later than the node clock delays the start.
	end3 := s.RunTaskAt(0, nil, end2+1000, 0)
	if want := end2 + 1000; end3 != want {
		t.Errorf("end3 = %d, want %d", end3, want)
	}
	if s.Makespan() != end3 {
		t.Errorf("makespan = %d, want %d", s.Makespan(), end3)
	}
}

func TestScenarioLazyBeatsEagerTimed(t *testing.T) {
	sc := Scenario{N: 1 << 16, Calls: 6, TaskSize: 1 << 12}
	cfg := Config{Nodes: 8, ElemSize: 8}
	eager := sc.RunEager(cfg)
	lazy := sc.RunLazy(cfg)
	if lazy.MovedBytes >= eager.MovedBytes {
		t.Errorf("lazy moved %d bytes, eager %d; lazy should move less",
			lazy.MovedBytes, eager.MovedBytes)
	}
	if lazy.Makespan >= eager.Makespan {
		t.Errorf("lazy makespan %d, eager %d; lazy should finish earlier",
			lazy.Makespan, eager.Makespan)
	}
	if lazy.PeakUsage > eager.PeakUsage {
		t.Errorf("lazy peak usage %d exceeds eager %d", lazy.PeakUsage, eager.PeakUsage)
	}
}

func TestScenarioMemoryCap(t *testing.T) {
	// The §X motivation: with node memory smaller than the dataset, the
	// eager whole-dataset copy is infeasible while the lazy per-subtask
	// copies fit.
	sc := Scenario{N: 1 << 14, Calls: 2, TaskSize: 1 << 10}
	cfg := Config{Nodes: 8, ElemSize: 8, NodeMemory: 1 << 13}
	eager := sc.RunEager(cfg)
	lazy := sc.RunLazy(cfg)
	if eager.Failures == 0 {
		t.Error("eager under a node-memory cap should record failures")
	}
	if lazy.Failures != 0 {
		t.Errorf("lazy recorded %d memory failures; per-subtask sets fit", lazy.Failures)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	sc := Scenario{N: 1 << 12, Calls: 3, TaskSize: 1 << 9}
	cfg := Config{Nodes: 4, ElemSize: 8}
	a := sc.RunLazy(cfg)
	b := sc.RunLazy(cfg)
	if a != b {
		t.Errorf("lazy run not deterministic: %+v vs %+v", a, b)
	}
}
