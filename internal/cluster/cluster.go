// Package cluster models the distributed-memory scenario of the paper's
// future work (§X, OmpSs@cluster): tasks execute on cluster nodes, and data
// regions move between nodes on demand.
//
// The paper's plan: "the dataset of a distributed task is limited by the
// physical memory of a node. Using weak dependencies we plan to overcome
// this limitation by replacing the eager copy of the whole dataset by a
// lazy copy of the subset required by each subtask." This package provides
// the transfer-accounting substrate and the eager-vs-lazy comparison: an
// outer task with strong dependencies must materialize its whole dataset on
// its node before running (eager); with weak dependencies only each
// subtask's regions move, to wherever that subtask runs (lazy).
package cluster

import (
	"fmt"

	"repro/internal/regions"
)

// DataID identifies a distributed data object.
type DataID uint32

// Access is one region of one data object touched by a task.
type Access struct {
	Data  DataID
	Iv    regions.Interval
	Write bool
}

// Config sizes the cluster.
type Config struct {
	Nodes int
	// NodeMemory is the per-node capacity in elements (0 = unlimited).
	NodeMemory int64
	// ElemSize converts elements to bytes for reporting.
	ElemSize int64
	// Bandwidth is the node link bandwidth in elements per time unit
	// (default 64). Together with Latency it drives the makespan model.
	Bandwidth int64
	// Latency is the fixed time cost of any non-empty transfer (default
	// 200 time units).
	Latency int64
	// ComputePerElem is a task's compute time per element (default 1).
	ComputePerElem int64
}

func (c Config) withDefaults() Config {
	if c.ElemSize <= 0 {
		c.ElemSize = 8
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 64
	}
	if c.Latency <= 0 {
		c.Latency = 200
	}
	if c.ComputePerElem <= 0 {
		c.ComputePerElem = 1
	}
	return c
}

// Sim tracks data residency per node and accounts transfers, and carries a
// per-node clock for the makespan model: a task placed on a node starts
// when both the node is free and its input blocks are ready, pays the
// transfer time of its missing regions, computes, and advances the clock.
type Sim struct {
	cfg      Config
	resident []map[DataID]*regions.Set // per node
	usage    []int64                   // per node, elements resident
	nodeTime []int64                   // per node, next free time
	moved    int64                     // elements transferred between nodes
	failures int                       // tasks whose dataset exceeded node memory
	peakUse  int64                     // running per-node usage maximum
}

// New creates a cluster simulation.
func New(cfg Config) *Sim {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:      cfg,
		resident: make([]map[DataID]*regions.Set, cfg.Nodes),
		usage:    make([]int64, cfg.Nodes),
		nodeTime: make([]int64, cfg.Nodes),
	}
	for i := range s.resident {
		s.resident[i] = make(map[DataID]*regions.Set)
	}
	return s
}

// Seed marks a region as initially resident on a node (e.g. where the data
// was allocated) without counting a transfer.
func (s *Sim) Seed(node int, data DataID, iv regions.Interval) {
	s.addResident(node, data, iv)
}

func (s *Sim) set(node int, data DataID) *regions.Set {
	st := s.resident[node][data]
	if st == nil {
		st = regions.NewSet()
		s.resident[node][data] = st
	}
	return st
}

func (s *Sim) addResident(node int, data DataID, iv regions.Interval) {
	st := s.set(node, data)
	// Track usage by resident-length delta.
	before := st.Len()
	st.Add(iv)
	s.usage[node] += st.Len() - before
	if s.usage[node] > s.peakUse {
		s.peakUse = s.usage[node]
	}
}

// RunTask executes a task on a node: every accessed region not resident
// there is transferred (counted once, at element granularity); written
// regions are invalidated on all other nodes (single-writer coherence).
// Returns the elements transferred for this task.
func (s *Sim) RunTask(node int, accs []Access) int64 {
	if node < 0 || node >= s.cfg.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range", node))
	}
	var moved int64
	for _, a := range accs {
		if a.Iv.Empty() {
			continue
		}
		st := s.set(node, a.Data)
		// Transfer the missing sub-regions.
		missing := regions.NewSet(a.Iv)
		for _, r := range st.Intervals() {
			missing.Remove(r)
		}
		moved += missing.Len()
		s.addResident(node, a.Data, a.Iv)
		if a.Write {
			for other := range s.resident {
				if other == node {
					continue
				}
				ost := s.resident[other][a.Data]
				if ost != nil {
					before := ost.Len()
					ost.Remove(a.Iv)
					s.usage[other] -= before - ost.Len()
				}
			}
		}
	}
	s.moved += moved
	if s.cfg.NodeMemory > 0 && s.usage[node] > s.cfg.NodeMemory {
		s.failures++
	}
	return moved
}

// transferTime returns the wall time of moving the given element count.
func (s *Sim) transferTime(moved int64) int64 {
	if moved <= 0 {
		return 0
	}
	return s.cfg.Latency + (moved+s.cfg.Bandwidth-1)/s.cfg.Bandwidth
}

// RunTaskAt executes a task on a node under the makespan model: the task
// starts when the node is free and readyAt has passed, pays the transfer
// time of its missing regions plus compute time for computeElems elements,
// and returns the task's completion time. Residency and traffic accounting
// are those of RunTask.
func (s *Sim) RunTaskAt(node int, accs []Access, readyAt, computeElems int64) int64 {
	start := s.nodeTime[node]
	if readyAt > start {
		start = readyAt
	}
	moved := s.RunTask(node, accs)
	end := start + s.transferTime(moved) + computeElems*s.cfg.ComputePerElem
	s.nodeTime[node] = end
	return end
}

// Makespan returns the latest completion time across all nodes.
func (s *Sim) Makespan() int64 {
	var m int64
	for _, t := range s.nodeTime {
		if t > m {
			m = t
		}
	}
	return m
}

// MovedElements returns the total elements transferred.
func (s *Sim) MovedElements() int64 { return s.moved }

// MovedBytes returns the total bytes transferred.
func (s *Sim) MovedBytes() int64 { return s.moved * s.cfg.ElemSize }

// Failures returns how many task placements exceeded node memory.
func (s *Sim) Failures() int { return s.failures }

// Usage returns the resident elements on a node.
func (s *Sim) Usage(node int) int64 { return s.usage[node] }

// PeakUsage returns the running maximum of any node's resident elements.
func (s *Sim) PeakUsage() int64 { return s.peakUse }

// Result summarizes one strategy run of the comparison scenario.
type Result struct {
	Strategy   string
	MovedBytes int64
	Failures   int
	PeakUsage  int64
	// Makespan is the simulated completion time under the bandwidth/
	// latency model: eager strategies serialize a whole-dataset transfer
	// on the outer task's node before any subtask may start; lazy
	// strategies overlap per-subtask transfers across nodes.
	Makespan int64
}

// Scenario is the eager-vs-lazy comparison of §X: Calls distributed outer
// tasks over one N-element array allocated round-robin across the nodes,
// each call decomposed into TaskSize-element subtasks whose placement
// rotates by one node per call (so data genuinely migrates). Subtask (c+1,
// b) depends on subtask (c, b) — successive calls rewrite the same blocks —
// which the makespan model enforces through per-block ready times.
type Scenario struct {
	N        int64
	Calls    int
	TaskSize int64
}

func (sc Scenario) blocks() int {
	return int((sc.N + sc.TaskSize - 1) / sc.TaskSize)
}

func (sc Scenario) blockIv(b int) regions.Interval {
	start := int64(b) * sc.TaskSize
	end := start + sc.TaskSize
	if end > sc.N {
		end = sc.N
	}
	return regions.Iv(start, end)
}

func (sc Scenario) seed(s *Sim) {
	for b := 0; b < sc.blocks(); b++ {
		s.Seed(b%s.cfg.Nodes, 0, sc.blockIv(b))
	}
}

// RunEager models strong outer dependencies: each call's distributed task
// first materializes the whole dataset on its node — a serial transfer that
// cannot start before every block of the previous call is ready and gates
// every subtask of the call (§III's coordination cost, paid in bytes and
// wall time).
func (sc Scenario) RunEager(cfg Config) Result {
	s := New(cfg)
	sc.seed(s)
	nb := sc.blocks()
	readyAt := make([]int64, nb)
	for c := 0; c < sc.Calls; c++ {
		outerNode := c % s.cfg.Nodes
		var allReady int64
		for _, r := range readyAt {
			if r > allReady {
				allReady = r
			}
		}
		outerEnd := s.RunTaskAt(outerNode,
			[]Access{{Data: 0, Iv: regions.Iv(0, sc.N), Write: true}}, allReady, 0)
		for b := 0; b < nb; b++ {
			readyAt[b] = outerEnd
		}
		sc.runSubtasks(s, c, readyAt)
	}
	return Result{Strategy: "eager (strong deps)", MovedBytes: s.MovedBytes(),
		Failures: s.Failures(), PeakUsage: s.PeakUsage(), Makespan: s.Makespan()}
}

// RunLazy models weak outer dependencies: the outer task moves nothing
// itself; only each subtask's region moves, to the subtask's node, as soon
// as the producing subtask of the previous call finished.
func (sc Scenario) RunLazy(cfg Config) Result {
	s := New(cfg)
	sc.seed(s)
	readyAt := make([]int64, sc.blocks())
	for c := 0; c < sc.Calls; c++ {
		sc.runSubtasks(s, c, readyAt)
	}
	return Result{Strategy: "lazy (weak deps)", MovedBytes: s.MovedBytes(),
		Failures: s.Failures(), PeakUsage: s.PeakUsage(), Makespan: s.Makespan()}
}

// runSubtasks places call's subtasks (block b on node (b+call) mod Nodes)
// and advances the per-block ready times.
func (sc Scenario) runSubtasks(s *Sim, call int, readyAt []int64) {
	for b := 0; b < sc.blocks(); b++ {
		iv := sc.blockIv(b)
		node := (b + call) % s.cfg.Nodes
		readyAt[b] = s.RunTaskAt(node,
			[]Access{{Data: 0, Iv: iv, Write: true}}, readyAt[b], iv.Len())
	}
}
