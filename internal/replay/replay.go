// Package replay implements the record-and-replay taskgraph cache behind
// the runtime's graph regions (core.TaskContext.Graph): iterative programs
// that submit the same task graph every sweep pay the dependency engine —
// interval-map fragmentation, successor discovery, domain-cascade
// bookkeeping — once, on the first execution, and afterwards replay the
// frozen graph with nothing but per-node atomic predecessor countdowns.
//
// The contract mirrors the OpenMP taskgraph proposal ("Taskgraph: A Low
// Contention OpenMP Tasking Framework", Yu et al.): a region names a task
// graph; its first execution records each submitted task's dependency
// fingerprint and derives the graph's edges; subsequent executions whose
// submissions match the fingerprint stream bypass the engine entirely. A
// mismatch — changed depend clauses, changed intervals, changed task
// count — invalidates the recording mid-region and falls back to the live
// engine, so replay is an optimization, never a semantics change.
//
// The frozen edge set is computed by an offline pass over the recorded
// fingerprints (the same last-writer/readers/reduction-group linking rules
// as deps.Engine, applied to an initially empty history), NOT from the
// edges the live engine happened to materialize: the live set is
// timing-dependent — a predecessor that completed and released before its
// successor registered leaves no link — and replaying it would let the
// successor race the predecessor on an iteration with different timing.
// The engine's exported edges (deps.Engine.SetEdgeHook) are instead used
// as a safety cross-check: every intra-region edge the engine produced
// must appear in the offline set, and a recording that fails the check is
// marked ineligible rather than replayed wrong.
//
// This package holds the runtime-agnostic machinery: canonical spec
// fingerprints, the Recording/Recorder pair, the offline edge analysis,
// and the pooled countdown nodes a replay run drives. The orchestration —
// region bookkeeping, the union guard that re-checks a region's external
// dependencies at replay time, submit interception, and scheduler
// hand-off — lives in internal/core (graph.go).
package replay

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/regions"
)

// Kind selects the record-and-replay mode (core.Config.Replay).
type Kind uint8

const (
	// KindAuto lets the runtime pick: replay on in real mode, off in
	// virtual mode (the deterministic simulation has no Graph support and
	// its golden makespans must not depend on a cache).
	KindAuto Kind = iota
	// KindOff disables the cache: graph regions always run through the
	// live dependency engine (they keep their end-of-region barrier).
	KindOff
	// KindOn enables the cache in real mode.
	KindOn
)

// String returns the kind's flag/table name.
func (k Kind) String() string {
	switch k {
	case KindOff:
		return "off"
	case KindOn:
		return "on"
	}
	return "auto"
}

// Stats counts graph-region outcomes (Runtime.ReplayStats).
type Stats struct {
	// Records counts first executions that captured a recording.
	Records int64
	// Replays counts region executions that ran entirely from a recording,
	// bypassing the dependency engine.
	Replays int64
	// Invalidations counts recordings dropped because an execution's
	// submission stream no longer matched the recorded fingerprint
	// (changed deps, intervals, or task count); the region fell back to
	// the live engine mid-stream and re-records on its next execution.
	Invalidations int64
	// Fallbacks counts executions of a valid recording that ran live
	// anyway: the region's union guard found an unfinished external
	// producer (replay would have started tasks before their inputs were
	// ready), or the recording is ineligible for replay.
	Fallbacks int64
}

// TaskFP is the canonical dependency fingerprint of one submitted task:
// every field of the spec that feeds the dependency engine, encoded as a
// flat int64 sequence so validation is one slice compare and the offline
// edge analysis needs no reference to caller-owned interval slices.
// Labels, bodies, costs, and priorities are deliberately excluded — they
// do not change the graph's edges, and replay always executes the freshly
// submitted body.
type TaskFP []int64

// Spec-level flags encoded in the fingerprint head.
const (
	fpWeakWait int64 = 1 << iota
	fpFinal
)

// AppendFP appends the canonical fingerprint of a task's dependency shape
// to dst and returns the extended slice: [flags, ndeps, then per dep:
// data, type|weak<<8, nivs, lo/hi pairs]. Callers cycling a scratch
// buffer pay no allocation per submission in steady state.
func AppendFP(dst TaskFP, weakWait, final bool, specs []deps.Spec) TaskFP {
	var flags int64
	if weakWait {
		flags |= fpWeakWait
	}
	if final {
		flags |= fpFinal
	}
	dst = append(dst, flags, int64(len(specs)))
	for _, s := range specs {
		kind := int64(s.Type)
		if s.Weak {
			kind |= 1 << 8
		}
		dst = append(dst, int64(s.Data), kind, int64(len(s.Ivs)))
		for _, iv := range s.Ivs {
			dst = append(dst, iv.Lo, iv.Hi)
		}
	}
	return dst
}

// Equal reports whether two fingerprints are identical.
func (fp TaskFP) Equal(o TaskFP) bool {
	return slices.Equal(fp, o)
}

// visitSpecs decodes the fingerprint's depend entries, calling f for every
// interval with its data object, access type, and weak flag.
func (fp TaskFP) visitSpecs(f func(data deps.DataID, typ deps.AccessType, weak bool, iv regions.Interval)) {
	i := 2 // skip flags, ndeps
	nd := fp[1]
	for d := int64(0); d < nd; d++ {
		data := deps.DataID(fp[i])
		kind := fp[i+1]
		nivs := fp[i+2]
		i += 3
		typ := deps.AccessType(kind & 0xff)
		weak := kind&(1<<8) != 0
		for v := int64(0); v < nivs; v++ {
			f(data, typ, weak, regions.Iv(fp[i], fp[i+1]))
			i += 2
		}
	}
}

// TaskRecord is one recorded task of a region: its dependency fingerprint
// and its outgoing edges (indices of the recorded tasks whose predecessor
// countdown this task's completion decrements).
type TaskRecord struct {
	// FP is the task's canonical dependency fingerprint.
	FP TaskFP
	// Succs are the submission indices of the task's successors in the
	// offline edge set.
	Succs []int32
	// NPreds is the number of distinct predecessors (earlier tasks whose
	// completion gates this task's start under replay).
	NPreds int32
}

// Recording is a sealed region capture: the fingerprinted task sequence,
// the offline edge set, and the union guard specs. Immutable after Seal,
// so replay validation needs no locking.
type Recording struct {
	tasks []TaskRecord
	// union holds, per data object, the merged interval set of every
	// strong access recorded in the region. At replay time the runtime
	// registers these as one guard access in the region owner's domain: if
	// the guard is immediately satisfied, no external producer of any
	// region input is still running and the frozen edges are sufficient;
	// if not, the execution falls back to the live engine.
	union []deps.Spec
	// ineligible is the empty string for replayable recordings, otherwise
	// the reason replay is permanently unsafe for this shape (weak depend
	// entries, weakwait tasks, nested submissions, a failed edge
	// cross-check).
	ineligible string
	// ownerWaits counts blocking owner-level taskwaits recorded in the
	// region body. An owner-level wait does NOT make the shape ineligible:
	// the barrier is part of the owner's body code, re-executed identically
	// by every later execution — live or replayed — at the same point in
	// the submission stream, so the frozen edge set need not express it.
	// (A blocking taskwait inside a region *member* task is different: it
	// implies nested submissions, which are ineligible.) The count is the
	// recorded trace of those continuation edges, surfaced for diagnostics
	// and the eligibility tests.
	ownerWaits int
}

// Len returns the number of recorded tasks.
func (r *Recording) Len() int { return len(r.tasks) }

// Task returns the i-th recorded task.
func (r *Recording) Task(i int) *TaskRecord { return &r.tasks[i] }

// Union returns the guard specs: per data object, the merged intervals of
// every strong access recorded in the region. The slice is owned by the
// recording; callers must not mutate it.
func (r *Recording) Union() []deps.Spec { return r.union }

// Eligible reports whether the recorded shape may be replayed, and if
// not, why. Ineligible recordings still validate fingerprints (so a shape
// change is detected and re-recorded) but always execute live.
func (r *Recording) Eligible() (bool, string) {
	return r.ineligible == "", r.ineligible
}

// OwnerWaits returns the number of blocking owner-level taskwaits recorded
// in the region body (see the field doc: owner-level waits keep the
// recording replay-eligible).
func (r *Recording) OwnerWaits() int { return r.ownerWaits }

// Recorder captures one region execution into a Recording. OnSubmit calls
// are serialized by the region owner (only the owning task's body submits
// into its region); OnLiveEdge may be called concurrently by the engine's
// edge hook — the caller must serialize it externally (the core runtime
// wraps it in a mutex).
type Recorder struct {
	rec       Recording
	liveEdges map[int64]struct{} // engine-materialized pred<<32|succ pairs
	// inelMu guards the ineligible reason: MarkIneligible may be called
	// from concurrently executing region tasks (a release directive on
	// one worker races the owner's next submission on another), and the
	// reason is read again only at Seal, after the region barrier.
	inelMu sync.Mutex
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{liveEdges: make(map[int64]struct{})}
}

// OnSubmit records the next task's fingerprint and returns its submission
// index. Shapes the frozen completion-edge set cannot express are marked
// ineligible here: weakwait tasks (their dependencies release piece-wise
// before completion, gating descendants the recording does not know) and
// weak depend entries (linking points whose satisfaction state gates the
// task's own subtasks).
func (rc *Recorder) OnSubmit(weakWait, final bool, specs []deps.Spec) int32 {
	if weakWait {
		rc.MarkIneligible("weakwait task in region")
	}
	for _, s := range specs {
		if s.Weak {
			rc.MarkIneligible("weak depend entry in region")
		}
	}
	rc.rec.tasks = append(rc.rec.tasks, TaskRecord{
		FP: AppendFP(nil, weakWait, final, specs),
	})
	return int32(len(rc.rec.tasks) - 1)
}

// OnOwnerWait records one blocking owner-level taskwait in the region
// body. Serialized by the region owner, like OnSubmit (only the owning
// task's body waits at owner level). The recording stays replay-eligible:
// the wait is owner body code that re-executes identically on every later
// execution, so it needs no frozen-edge representation — only its trace
// (Recording.OwnerWaits).
func (rc *Recorder) OnOwnerWait() {
	rc.rec.ownerWaits++
}

// OnLiveEdge records one dependency edge the live engine materialized
// between two recorded tasks, for the Seal-time cross-check against the
// offline edge set.
func (rc *Recorder) OnLiveEdge(pred, succ int32) {
	if pred == succ {
		return
	}
	rc.liveEdges[edgeKey(pred, succ)] = struct{}{}
}

// MarkIneligible permanently excludes the recording from replay (it keeps
// validating fingerprints so shape changes still re-record). The first
// reason wins. Safe for concurrent use.
func (rc *Recorder) MarkIneligible(reason string) {
	rc.inelMu.Lock()
	if rc.rec.ineligible == "" {
		rc.rec.ineligible = reason
	}
	rc.inelMu.Unlock()
}

// Tasks returns the number of tasks recorded so far.
func (rc *Recorder) Tasks() int { return len(rc.rec.tasks) }

func edgeKey(pred, succ int32) int64 {
	return int64(pred)<<32 | int64(uint32(succ))
}

// Seal finishes the capture: the offline edge analysis runs over the
// fingerprints, the union guard specs are computed, and the live engine
// edges are cross-checked against the offline set. The recorder must not
// be used afterwards.
func (rc *Recorder) Seal() *Recording {
	edges := rc.analyze()
	// Safety net: the engine's materialized intra-region edges are a
	// timing-dependent subset of the semantic edge set (a pred that fully
	// released before its succ registered leaves no link). If the engine
	// produced an edge the analysis did not, the analysis is wrong for
	// this shape — never replay it.
	if rc.rec.ineligible == "" {
		for key := range rc.liveEdges {
			if _, ok := edges[key]; !ok {
				rc.MarkIneligible("live engine edge outside the offline analysis")
				break
			}
		}
	}
	return &rc.rec
}

// histCell is the offline analyzer's per-interval history: the same
// last-writer / readers / reduction-group state deps.Engine keeps in its
// domain cells, with task indices in place of fragments.
type histCell struct {
	lastWriter int32 // -1: none
	readers    []int32
	reds       []int32
}

func cloneHist(c histCell) histCell {
	c.readers = append([]int32(nil), c.readers...)
	c.reds = append([]int32(nil), c.reds...)
	return c
}

// analyze computes the timing-independent edge set of the recorded task
// sequence by replaying the engine's linking rules (deps.Engine linkCell)
// against an initially empty history — empty because everything the
// region read or wrote before its first task is covered by the union
// guard at replay time. It fills in Succs/NPreds and the union specs, and
// returns the edge-key set for the Seal cross-check.
func (rc *Recorder) analyze() map[int64]struct{} {
	edges := make(map[int64]struct{})
	hists := make(map[deps.DataID]*regions.Map[histCell])
	perData := make(map[deps.DataID][]regions.Interval)
	addEdge := func(pred, succ int32) {
		if pred == succ || pred < 0 {
			return
		}
		key := edgeKey(pred, succ)
		if _, dup := edges[key]; dup {
			return
		}
		edges[key] = struct{}{}
		rc.rec.tasks[pred].Succs = append(rc.rec.tasks[pred].Succs, succ)
		rc.rec.tasks[succ].NPreds++
	}
	for i := range rc.rec.tasks {
		idx := int32(i)
		rc.rec.tasks[i].FP.visitSpecs(func(data deps.DataID, typ deps.AccessType, weak bool, iv regions.Interval) {
			if weak || iv.Empty() {
				return // weak shapes are ineligible; intervals kept out of the union
			}
			perData[data] = append(perData[data], iv)
			hm := hists[data]
			if hm == nil {
				hm = regions.NewMap[histCell](cloneHist)
				hists[data] = hm
			}
			hm.Materialize(iv,
				func(regions.Interval) histCell { return histCell{lastWriter: -1} },
				func(_ regions.Interval, cs *histCell) {
					switch typ {
					case deps.In:
						if len(cs.reds) > 0 {
							for _, rd := range cs.reds {
								addEdge(rd, idx)
							}
						} else {
							addEdge(cs.lastWriter, idx)
						}
						cs.readers = append(cs.readers, idx)
					case deps.Red:
						addEdge(cs.lastWriter, idx)
						for _, r := range cs.readers {
							addEdge(r, idx)
						}
						cs.reds = append(cs.reds, idx)
					default: // Out, InOut
						addEdge(cs.lastWriter, idx)
						for _, r := range cs.readers {
							addEdge(r, idx)
						}
						for _, rd := range cs.reds {
							addEdge(rd, idx)
						}
						cs.lastWriter = idx
						cs.readers = nil
						cs.reds = nil
					}
				})
		})
	}
	for data, ivs := range perData {
		if merged := MergeIntervals(ivs); len(merged) > 0 {
			rc.rec.union = append(rc.rec.union, deps.Spec{Data: data, Type: deps.InOut, Ivs: merged})
		}
	}
	// Canonical ascending-data order: the guard registration visits engine
	// shards in the same order as any other multi-object clause.
	sort.Slice(rc.rec.union, func(i, j int) bool { return rc.rec.union[i].Data < rc.rec.union[j].Data })
	return edges
}

// MergeIntervals sorts ivs and coalesces overlapping or touching runs into
// a minimal disjoint cover (the union guard's shape).
func MergeIntervals(ivs []regions.Interval) []regions.Interval {
	var nonEmpty []regions.Interval
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(i, j int) bool { return nonEmpty[i].Lo < nonEmpty[j].Lo })
	out := nonEmpty[:1]
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Node is one replay countdown cell: the frozen stand-in for a task's
// dependency state during a replayed region. Its pending counter starts
// at the recorded predecessor count plus one submission hold; completions
// of predecessor tasks and the task's own submission each decrement it,
// and the decrement to zero — wherever it happens — is the task's
// wait-free readiness transition. Nodes are drawn from a Pool at replay
// start and returned at region drain, so steady-state replay allocates
// nothing.
type Node struct {
	pending atomic.Int32
	// User is the runtime task attached at submission time (opaque to this
	// package, mirroring deps.Node.User). It is published by the
	// submission-hold decrement: any goroutine whose decrement observes
	// zero also observes User.
	User any
	// Succs are the submission indices of the recorded successors
	// (borrowed from the Recording; never mutated).
	Succs []int32
}

// Arm prepares the node for one replay run: the recorded predecessor
// count plus the submission hold.
func (n *Node) Arm(rec *TaskRecord) {
	n.pending.Store(rec.NPreds + 1)
	n.User = nil
	n.Succs = rec.Succs
}

// Dec removes one pending hold (a predecessor completion or the
// submission hold) and reports whether the node just became ready. At
// most one caller observes true per Arm.
func (n *Node) Dec() bool {
	rem := n.pending.Add(-1)
	if rem < 0 {
		panic("replay: countdown underflow")
	}
	return rem == 0
}

// Ready reports whether the countdown has fired (diagnostics).
func (n *Node) Ready() bool { return n.pending.Load() <= 0 }

// Pool is the countdown-node free list of one runtime: a mempool.Pool
// keyed by region, with gets-minus-puts leak accounting. A drained
// runtime must report zero outstanding nodes — the invalidation stress
// asserts it.
type Pool struct {
	p *mempool.Pool[Node]
}

// poolLanes spreads concurrent regions over the node pool's mutexes.
const poolLanes = 8

// NewPool creates a countdown-node pool.
func NewPool() *Pool {
	return &Pool{p: mempool.NewPool(poolLanes, func() *Node { return &Node{} })}
}

// Get draws one armed node per recorded task of rec, appending to dst.
// hint spreads unrelated regions over the pool's lanes.
func (p *Pool) Get(dst []*Node, rec *Recording, hint int) []*Node {
	for i := range rec.tasks {
		n := p.p.Get(hint)
		n.Arm(&rec.tasks[i])
		dst = append(dst, n)
	}
	return dst
}

// Put returns a run's nodes after the region drained. The nodes' User
// references are dropped before they reach the free list.
func (p *Pool) Put(nodes []*Node, hint int) {
	for _, n := range nodes {
		n.User = nil
		n.Succs = nil
		n.pending.Store(0)
		p.p.Put(hint, n)
	}
}

// Outstanding returns the number of countdown nodes currently held by
// replay runs (leak accounting; zero at quiescence).
func (p *Pool) Outstanding() int64 { return p.p.Outstanding() }

// Stats returns the pool's aggregate counters.
func (p *Pool) Stats() mempool.Stats { return p.p.Stats() }
