package replay

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/regions"
)

func iv(lo, hi int64) regions.Interval { return regions.Iv(lo, hi) }

func TestFingerprintRoundTrip(t *testing.T) {
	specs := []deps.Spec{
		{Data: 2, Type: deps.InOut, Ivs: []regions.Interval{iv(0, 8), iv(16, 24)}},
		{Data: 0, Type: deps.In, Weak: true, Ivs: []regions.Interval{iv(4, 5)}},
	}
	fp := AppendFP(nil, true, false, specs)
	if !fp.Equal(AppendFP(nil, true, false, specs)) {
		t.Fatal("identical specs produced different fingerprints")
	}
	if fp.Equal(AppendFP(nil, false, false, specs)) {
		t.Fatal("weakwait flag not captured")
	}
	other := []deps.Spec{
		{Data: 2, Type: deps.InOut, Ivs: []regions.Interval{iv(0, 8), iv(16, 25)}},
		{Data: 0, Type: deps.In, Weak: true, Ivs: []regions.Interval{iv(4, 5)}},
	}
	if fp.Equal(AppendFP(nil, true, false, other)) {
		t.Fatal("changed interval not captured")
	}
	var got []deps.Spec
	fp.visitSpecs(func(data deps.DataID, typ deps.AccessType, weak bool, v regions.Interval) {
		got = append(got, deps.Spec{Data: data, Type: typ, Weak: weak, Ivs: []regions.Interval{v}})
	})
	want := []struct {
		data deps.DataID
		typ  deps.AccessType
		weak bool
		iv   regions.Interval
	}{
		{2, deps.InOut, false, iv(0, 8)},
		{2, deps.InOut, false, iv(16, 24)},
		{0, deps.In, true, iv(4, 5)},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d intervals, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Data != w.data || g.Type != w.typ || g.Weak != w.weak || g.Ivs[0] != w.iv {
			t.Fatalf("decoded entry %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestOfflineEdges checks the analyzer against the engine's linking rules
// on a small known graph: writer → two readers → writer (RAW + WAR), over
// partially overlapping intervals.
func TestOfflineEdges(t *testing.T) {
	rc := NewRecorder()
	spec := func(typ deps.AccessType, lo, hi int64) []deps.Spec {
		return []deps.Spec{{Data: 0, Type: typ, Ivs: []regions.Interval{iv(lo, hi)}}}
	}
	rc.OnSubmit(false, false, spec(deps.Out, 0, 8))   // 0: writer
	rc.OnSubmit(false, false, spec(deps.In, 0, 4))    // 1: reader (RAW on 0)
	rc.OnSubmit(false, false, spec(deps.In, 4, 8))    // 2: reader (RAW on 0)
	rc.OnSubmit(false, false, spec(deps.InOut, 2, 6)) // 3: writer (RAW on 0, WAR on 1 and 2)
	rec := rc.Seal()
	if ok, why := rec.Eligible(); !ok {
		t.Fatalf("eligible shape marked ineligible: %s", why)
	}
	wantPreds := []int32{0, 1, 1, 3}
	for i, want := range wantPreds {
		if got := rec.Task(i).NPreds; got != want {
			t.Errorf("task %d: NPreds = %d, want %d", i, got, want)
		}
	}
	succsOf := func(i int) map[int32]bool {
		m := make(map[int32]bool)
		for _, s := range rec.Task(i).Succs {
			m[s] = true
		}
		return m
	}
	if s := succsOf(0); !s[1] || !s[2] || !s[3] || len(s) != 3 {
		t.Errorf("task 0 succs = %v, want {1,2,3}", rec.Task(0).Succs)
	}
	if s := succsOf(1); !s[3] || len(s) != 1 {
		t.Errorf("task 1 succs = %v, want {3}", rec.Task(1).Succs)
	}
	if s := succsOf(2); !s[3] || len(s) != 1 {
		t.Errorf("task 2 succs = %v, want {3}", rec.Task(2).Succs)
	}
	union := rec.Union()
	if len(union) != 1 || union[0].Data != 0 || len(union[0].Ivs) != 1 || union[0].Ivs[0] != iv(0, 8) {
		t.Errorf("union = %+v, want one InOut [0,8) over data 0", union)
	}
}

// TestOfflineEdgesReduction: reduction-group members commute; readers and
// writers order against the whole group.
func TestOfflineEdgesReduction(t *testing.T) {
	rc := NewRecorder()
	spec := func(typ deps.AccessType) []deps.Spec {
		return []deps.Spec{{Data: 0, Type: typ, Ivs: []regions.Interval{iv(0, 4)}}}
	}
	rc.OnSubmit(false, false, spec(deps.Out)) // 0
	rc.OnSubmit(false, false, spec(deps.Red)) // 1: after 0
	rc.OnSubmit(false, false, spec(deps.Red)) // 2: after 0, NOT after 1
	rc.OnSubmit(false, false, spec(deps.In))  // 3: after both reds
	rec := rc.Seal()
	if got := rec.Task(1).NPreds; got != 1 {
		t.Errorf("red 1 NPreds = %d, want 1", got)
	}
	if got := rec.Task(2).NPreds; got != 1 {
		t.Errorf("red 2 NPreds = %d, want 1 (group members commute)", got)
	}
	if got := rec.Task(3).NPreds; got != 2 {
		t.Errorf("reader NPreds = %d, want 2 (orders after the whole group)", got)
	}
}

// TestLiveEdgeCrossCheck: an engine edge outside the offline set must
// poison eligibility instead of replaying wrong.
func TestLiveEdgeCrossCheck(t *testing.T) {
	rc := NewRecorder()
	spec := []deps.Spec{{Data: 0, Type: deps.In, Ivs: []regions.Interval{iv(0, 4)}}}
	rc.OnSubmit(false, false, spec) // 0: reader
	rc.OnSubmit(false, false, spec) // 1: reader — no offline edge 0→1
	rc.OnLiveEdge(0, 1)
	rec := rc.Seal()
	if ok, _ := rec.Eligible(); ok {
		t.Fatal("recording with an uncovered live edge stayed eligible")
	}
}

func TestRecorderIneligibleShapes(t *testing.T) {
	rc := NewRecorder()
	rc.OnSubmit(true, false, nil)
	if ok, why := rc.Seal().Eligible(); ok || why == "" {
		t.Fatal("weakwait shape stayed eligible")
	}
	rc = NewRecorder()
	rc.OnSubmit(false, false, []deps.Spec{{Data: 0, Type: deps.In, Weak: true, Ivs: []regions.Interval{iv(0, 1)}}})
	if ok, _ := rc.Seal().Eligible(); ok {
		t.Fatal("weak-entry shape stayed eligible")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := MergeIntervals([]regions.Interval{iv(8, 12), iv(0, 4), iv(3, 9), iv(20, 24), iv(12, 12)})
	want := []regions.Interval{iv(0, 12), iv(20, 24)}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if MergeIntervals(nil) != nil {
		t.Fatal("empty merge not nil")
	}
}

// TestNodePoolAccounting: countdown nodes drawn for a run must all return
// at drain, and the countdown fires exactly once.
func TestNodePoolAccounting(t *testing.T) {
	rc := NewRecorder()
	spec := func(typ deps.AccessType) []deps.Spec {
		return []deps.Spec{{Data: 0, Type: typ, Ivs: []regions.Interval{iv(0, 4)}}}
	}
	rc.OnSubmit(false, false, spec(deps.Out))
	rc.OnSubmit(false, false, spec(deps.InOut))
	rec := rc.Seal()
	p := NewPool()
	nodes := p.Get(nil, rec, 0)
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}
	if p.Outstanding() != 2 {
		t.Fatalf("outstanding = %d, want 2", p.Outstanding())
	}
	// Task 1 waits on task 0 plus its submission hold.
	if nodes[1].Dec() {
		t.Fatal("node fired with a predecessor pending")
	}
	if !nodes[0].Dec() { // submission hold only
		t.Fatal("independent node did not fire on its submission hold")
	}
	if !nodes[1].Dec() { // predecessor completion
		t.Fatal("node did not fire after its last hold")
	}
	if !nodes[0].Ready() || !nodes[1].Ready() {
		t.Fatal("fired nodes not ready")
	}
	p.Put(nodes, 0)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain, want 0", p.Outstanding())
	}
	// Reuse must re-arm cleanly.
	nodes = p.Get(nodes[:0], rec, 0)
	if nodes[0].Ready() || nodes[1].Ready() {
		t.Fatal("recycled nodes came back fired")
	}
	p.Put(nodes, 0)
}
