package randtest

import "testing"

// TestSeedSchedules pins the no-override behavior: Seeds echoes the
// defaults, SeedRange expands the half-open range, and Check drives the
// property with a deterministic schedule (same meta-seed, same seeds).
func TestSeedSchedules(t *testing.T) {
	if _, ok := Override(); ok {
		t.Skip("-seed set; schedules intentionally collapse to the override")
	}
	got := Seeds(t, 3, 1, 4)
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 4 {
		t.Errorf("Seeds = %v, want [3 1 4]", got)
	}
	r := SeedRange(t, 2, 5)
	if len(r) != 3 || r[0] != 2 || r[2] != 4 {
		t.Errorf("SeedRange(2,5) = %v, want [2 3 4]", r)
	}
	var first, second []int64
	Check(t, 5, 99, func(seed int64) bool { first = append(first, seed); return true })
	Check(t, 5, 99, func(seed int64) bool { second = append(second, seed); return true })
	if len(first) != 5 {
		t.Fatalf("Check ran %d seeds, want 5", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("schedule not deterministic: run1[%d]=%d run2[%d]=%d", i, first[i], i, second[i])
		}
	}
}

// TestRunNamesSeeds pins the subtest naming, so -run 'T.*/seed=N'
// replays one seed of a loop-style test.
func TestRunNamesSeeds(t *testing.T) {
	var seen []int64
	Run(t, []int64{7, 8}, func(t *testing.T, seed int64) { seen = append(seen, seed) })
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 8 {
		t.Errorf("Run visited %v, want [7 8]", seen)
	}
}
