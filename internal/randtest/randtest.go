// Package randtest standardizes seed handling for the randomized
// differential tests: every failure names the RNG seed that produced it,
// and a -seed flag replays exactly that seed.
//
//	go test ./internal/deps -run TestDifferentialFlatMultiData -seed 12345
//
// The flag is registered once per test binary at import time; packages
// that import randtest from their tests get it for free.
package randtest

import (
	"flag"
	"math/rand"
	"strconv"
	"testing"
)

// seedOverride is the -seed flag: 0 (unset) runs each test's default
// seed schedule; any other value replays that single seed everywhere.
var seedOverride = flag.Int64("seed", 0,
	"replay randomized tests with this single RNG seed (0 = default schedule)")

// Override returns the -seed value and whether it was set.
func Override() (int64, bool) {
	return *seedOverride, *seedOverride != 0
}

// Check drives a property over randomized seeds, the replacement for
// testing/quick.Check in the differential suites: f is called with
// maxCount seeds drawn from a fixed meta-seeded RNG (so the default
// schedule is deterministic), a failing seed is reported with the exact
// -seed incantation to replay it, and a -seed override runs only that
// seed. f reports failure by returning false or by failing t.
func Check(t *testing.T, maxCount int, metaSeed int64, f func(seed int64) bool) {
	t.Helper()
	if s, ok := Override(); ok {
		if !f(s) || t.Failed() {
			t.Fatalf("property failed for seed %d (replaying -seed=%d)", s, s)
		}
		return
	}
	rng := rand.New(rand.NewSource(metaSeed))
	for i := 0; i < maxCount; i++ {
		seed := rng.Int63()
		if !f(seed) || t.Failed() {
			t.Fatalf("property failed for seed %d (run %d of %d) — re-run with -seed=%d",
				seed, i+1, maxCount, seed)
		}
	}
}

// Seeds returns the seed schedule for loop-style randomized tests: the
// defaults, or just the -seed override when set. Callers must include
// the seed in their failure messages (or use Run, which does).
func Seeds(t *testing.T, defaults ...int64) []int64 {
	t.Helper()
	if s, ok := Override(); ok {
		return []int64{s}
	}
	return defaults
}

// SeedRange is Seeds for the common 0..n-1 (or 1..n) loop shape.
func SeedRange(t *testing.T, from, to int64) []int64 {
	t.Helper()
	if s, ok := Override(); ok {
		return []int64{s}
	}
	var out []int64
	for s := from; s < to; s++ {
		out = append(out, s)
	}
	return out
}

// Run executes f once per seed as a subtest named "seed=N", so any
// failure names its seed and `-run 'Test.*/seed=N' -seed N` replays it.
func Run(t *testing.T, seeds []int64, f func(t *testing.T, seed int64)) {
	t.Helper()
	for _, seed := range seeds {
		seed := seed
		ok := t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) { f(t, seed) })
		if !ok {
			t.Logf("randomized subtest failed — re-run with -seed=%d", seed)
		}
	}
}
