package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg(lines, ways, sets int) Config {
	return Config{LineBytes: lines, Ways: ways, Sets: sets}
}

func TestColdMissThenHit(t *testing.T) {
	c := NewCache(cfg(64, 2, 4))
	if c.Access(7) {
		t.Fatal("first access must miss")
	}
	if !c.Access(7) {
		t.Fatal("second access must hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// One set (Sets=1), 2 ways: lines collide in the same set.
	c := NewCache(cfg(64, 2, 1))
	c.Access(1)
	c.Access(2)
	c.Access(1) // 1 is MRU, 2 is LRU
	c.Access(3) // evicts 2
	if !c.Access(1) {
		t.Fatal("1 should still be resident")
	}
	if c.Access(2) {
		t.Fatal("2 should have been evicted (LRU)")
	}
}

func TestSetIndexing(t *testing.T) {
	c := NewCache(cfg(64, 1, 2))
	c.Access(0) // set 0
	c.Access(1) // set 1
	if !c.Access(0) || !c.Access(1) {
		t.Fatal("lines in different sets must not evict each other")
	}
}

func TestAccessRangeLineGranularity(t *testing.T) {
	c := NewCache(cfg(128, 4, 16))
	hits, misses := c.AccessRange(0, 512) // exactly 4 lines
	if hits != 0 || misses != 4 {
		t.Fatalf("cold range: hits=%d misses=%d, want 0,4", hits, misses)
	}
	hits, misses = c.AccessRange(0, 512)
	if hits != 4 || misses != 0 {
		t.Fatalf("warm range: hits=%d misses=%d, want 4,0", hits, misses)
	}
	// Unaligned range straddling a line boundary touches both lines.
	c2 := NewCache(cfg(128, 4, 16))
	_, m := c2.AccessRange(100, 60) // bytes 100..159 → lines 0 and 1
	if m != 2 {
		t.Fatalf("straddling range should touch 2 lines, got %d", m)
	}
}

func TestAccessRangeEmpty(t *testing.T) {
	c := NewCache(cfg(64, 1, 1))
	if h, m := c.AccessRange(10, 0); h != 0 || m != 0 {
		t.Fatal("empty range must not touch the cache")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := NewCache(cfg(64, 4, 8)) // 2 KiB capacity
	// Stream a 1 KiB working set twice: second pass must be all hits.
	c.AccessRange(0, 1024)
	hits, misses := c.AccessRange(0, 1024)
	if misses != 0 || hits != 16 {
		t.Fatalf("resident set re-access: hits=%d misses=%d", hits, misses)
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := NewCache(cfg(64, 2, 2)) // 256 B capacity
	// Stream 4 KiB working set twice: LRU on a streaming pattern re-misses.
	c.AccessRange(0, 4096)
	hits, _ := c.AccessRange(0, 4096)
	if hits != 0 {
		t.Fatalf("streaming working set 16x capacity should thrash, got %d hits", hits)
	}
}

// Property: miss ratio never increases when associativity grows (with the
// same total traffic and set count) for a re-streamed working set.
func TestQuickMoreWaysNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sets := 1 + rng.Intn(8)
		ways := 1 + rng.Intn(4)
		small := NewCache(cfg(64, ways, sets))
		big := NewCache(cfg(64, ways*2, sets))
		var smallMiss, bigMiss int64
		// LRU caches of larger size are inclusive under the same access
		// stream, so misses(big) <= misses(small) for any trace.
		for i := 0; i < 500; i++ {
			line := uint64(rng.Intn(64))
			if !small.Access(line) {
				smallMiss++
			}
			if !big.Access(line) {
				bigMiss++
			}
		}
		return bigMiss <= smallMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupAggregation(t *testing.T) {
	g := NewGroup(2, cfg(64, 2, 2))
	g.Access(0, 0, 128) // 2 lines, cold → 2 misses
	g.Access(0, 0, 128) // warm → 2 hits
	g.Access(1, 0, 128) // separate cache: cold → 2 misses
	h, m := g.Counts()
	if h != 2 || m != 4 {
		t.Fatalf("Counts = %d,%d want 2,4", h, m)
	}
	if r := g.MissRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("MissRatio = %f, want 2/3", r)
	}
}

func TestGroupOutOfRangeWorkerIgnored(t *testing.T) {
	g := NewGroup(1, cfg(64, 1, 1))
	g.Access(9, 0, 64)
	if h, m := g.Counts(); h+m != 0 {
		t.Fatal("out-of-range worker must be ignored")
	}
}

func TestDefaultL2Capacity(t *testing.T) {
	c := DefaultL2()
	if c.CapacityBytes() != 128*16*170 {
		t.Fatalf("capacity = %d", c.CapacityBytes())
	}
}
