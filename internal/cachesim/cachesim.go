// Package cachesim models per-core data caches so the reproduction can
// regenerate the L2 miss-ratio panel of Figure 3 without hardware counters.
//
// The paper's miss-ratio result is a scheduling-locality effect: when the
// runtime knows the fine-grained dependencies that cross nesting levels, it
// dispatches a task's successor to the core that just released it, so the
// successor finds its data in that core's cache. The simulator sees exactly
// the schedule the runtime produced (each executed task streams its declared
// dependency regions through the cache of the worker that ran it), so that
// effect is preserved even though absolute miss counts differ from the
// ThunderX PMU numbers.
package cachesim

import (
	"sync"
	"sync/atomic"
)

// Config describes one per-core cache.
type Config struct {
	LineBytes int // cache line size (ThunderX: 128)
	Ways      int // associativity
	Sets      int // number of sets; capacity = LineBytes*Ways*Sets
}

// DefaultL2 approximates one core's share of the ThunderX shared 16 MiB L2
// across 48 cores (~340 KiB): 128-byte lines, 16 ways, 170 sets.
func DefaultL2() Config {
	return Config{LineBytes: 128, Ways: 16, Sets: 170}
}

// DefaultSharedL2 is the full ThunderX 16 MiB shared L2: 128-byte lines,
// 16 ways, 8192 sets. Use with NewSharedGroup (or the runtime's
// SharedCache mode) to model the cache as the hardware actually shares it.
func DefaultSharedL2() Config {
	return Config{LineBytes: 128, Ways: 16, Sets: 8192}
}

// CapacityBytes returns the total capacity of one cache.
func (c Config) CapacityBytes() int { return c.LineBytes * c.Ways * c.Sets }

// Cache is a set-associative LRU cache over line addresses. Not safe for
// concurrent use; the runtime guarantees each cache is only touched by the
// goroutine holding the corresponding worker token.
type Cache struct {
	cfg  Config
	sets [][]uint64 // per set: line tags, index 0 = MRU
}

// NewCache creates an empty cache.
func NewCache(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.Ways <= 0 || cfg.Sets <= 0 {
		panic("cachesim: invalid config")
	}
	return &Cache{cfg: cfg, sets: make([][]uint64, cfg.Sets)}
}

// Access touches one line address; reports whether it hit.
func (c *Cache) Access(line uint64) bool {
	si := int(line % uint64(c.cfg.Sets))
	set := c.sets[si]
	for i, tag := range set {
		if tag == line {
			// Move to MRU.
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	// Miss: insert at MRU, evicting LRU if full.
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[si] = set
	return false
}

// AccessRange streams the byte range [addr, addr+bytes) through the cache
// at line granularity, returning hits and misses.
func (c *Cache) AccessRange(addr, bytes uint64) (hits, misses int64) {
	if bytes == 0 {
		return 0, 0
	}
	lb := uint64(c.cfg.LineBytes)
	first := addr / lb
	last := (addr + bytes - 1) / lb
	for line := first; line <= last; line++ {
		if c.Access(line) {
			hits++
		} else {
			misses++
		}
	}
	return hits, misses
}

// Group is a set of per-worker caches with aggregated counters. With
// Shared it instead models one cache all workers stream through — the
// ThunderX L2 is physically a shared 16 MiB cache, and the private
// per-core-share model is an approximation whose error the shared mode
// quantifies (BenchmarkAblationCacheModel).
type Group struct {
	caches []*Cache
	shared *Cache
	mu     sync.Mutex // guards shared (workers are not serialized against each other)
	hits   atomic.Int64
	misses atomic.Int64
}

// NewGroup creates one cache per worker.
func NewGroup(workers int, cfg Config) *Group {
	g := &Group{caches: make([]*Cache, workers)}
	for i := range g.caches {
		g.caches[i] = NewCache(cfg)
	}
	return g
}

// NewSharedGroup creates a group in which every worker streams through one
// shared cache of the given geometry.
func NewSharedGroup(cfg Config) *Group {
	return &Group{shared: NewCache(cfg)}
}

// Access streams a byte range through worker w's cache (or the shared
// cache). In private mode it must only be called by the goroutine holding
// worker w's token; the shared cache serializes internally.
func (g *Group) Access(w int, addr, bytes uint64) {
	if g.shared != nil {
		g.mu.Lock()
		h, m := g.shared.AccessRange(addr, bytes)
		g.mu.Unlock()
		g.hits.Add(h)
		g.misses.Add(m)
		return
	}
	if w < 0 || w >= len(g.caches) {
		return
	}
	h, m := g.caches[w].AccessRange(addr, bytes)
	g.hits.Add(h)
	g.misses.Add(m)
}

// Counts returns total hits and misses.
func (g *Group) Counts() (hits, misses int64) {
	return g.hits.Load(), g.misses.Load()
}

// MissRatio returns misses / (hits + misses), 0 if no accesses.
func (g *Group) MissRatio() float64 {
	h, m := g.Counts()
	if h+m == 0 {
		return 0
	}
	return float64(m) / float64(h+m)
}
