package cachesim

import (
	"sync"
	"testing"
)

func TestSharedGroupBasics(t *testing.T) {
	g := NewSharedGroup(Config{LineBytes: 64, Ways: 2, Sets: 4})
	// First touch misses, second hits, regardless of the worker id.
	g.Access(0, 0, 64)
	g.Access(5, 0, 64) // different worker, same shared cache
	h, m := g.Counts()
	if h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (shared cache serves both workers)", h, m)
	}
}

func TestSharedVsPrivateConstructiveSharing(t *testing.T) {
	// Two workers alternately touch the same line. Shared: one miss then
	// hits. Private: each worker misses once.
	shared := NewSharedGroup(Config{LineBytes: 64, Ways: 4, Sets: 16})
	private := NewGroup(2, Config{LineBytes: 64, Ways: 4, Sets: 16})
	for i := 0; i < 4; i++ {
		shared.Access(i%2, 128, 64)
		private.Access(i%2, 128, 64)
	}
	_, sm := shared.Counts()
	_, pm := private.Counts()
	if sm != 1 {
		t.Errorf("shared misses = %d, want 1", sm)
	}
	if pm != 2 {
		t.Errorf("private misses = %d, want 2 (one cold miss per worker)", pm)
	}
}

func TestSharedGroupConcurrentSafe(t *testing.T) {
	// The shared cache serializes internally; hammer it from many
	// goroutines (run with -race).
	g := NewSharedGroup(Config{LineBytes: 64, Ways: 4, Sets: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Access(w, uint64(i*64), 64)
			}
		}()
	}
	wg.Wait()
	h, m := g.Counts()
	if h+m != 8*200 {
		t.Fatalf("accounted %d accesses, want %d", h+m, 8*200)
	}
}

func TestDefaultSharedL2Geometry(t *testing.T) {
	cfg := DefaultSharedL2()
	if got := cfg.CapacityBytes(); got != 16<<20 {
		t.Errorf("shared L2 capacity = %d, want 16 MiB", got)
	}
	if cfg.LineBytes != 128 {
		t.Errorf("line size = %d, want 128 (ThunderX)", cfg.LineBytes)
	}
}
