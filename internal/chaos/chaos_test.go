package chaos

import (
	"sync"
	"testing"
)

// TestDisarmedIsInert: with nothing armed, Maybe is a no-op and Force
// never fires, and no counters move.
func TestDisarmedIsInert(t *testing.T) {
	Disable()
	for s := Site(0); int(s) < NumSites; s++ {
		Maybe(s)
		if Force(s) {
			t.Fatalf("Force(%v) fired while disarmed", s)
		}
	}
}

// TestDeterministicDecisionStream: the same schedule draws the same
// fire/skip sequence at each site, call for call.
func TestDeterministicDecisionStream(t *testing.T) {
	const n = 4096
	run := func() [NumSites][]bool {
		Enable(UniformSchedule(42, 7))
		defer Disable()
		var out [NumSites][]bool
		for s := 0; s < NumSites; s++ {
			st := cur.Load()
			for i := 0; i < n; i++ {
				fire, _ := decide(st, Site(s))
				out[s] = append(out[s], fire)
			}
		}
		return out
	}
	a, b := run(), run()
	for s := 0; s < NumSites; s++ {
		for i := range a[s] {
			if a[s][i] != b[s][i] {
				t.Fatalf("site %v call %d: decision differs across identical schedules", Site(s), i)
			}
		}
	}
}

// TestInjectionRate: a 1-in-r schedule injects at roughly 1/r of calls
// (the PRNG is uniform enough for a 2x band), and rate 1 on every call,
// and rate 0 never.
func TestInjectionRate(t *testing.T) {
	const n = 20000
	for _, r := range []uint32{1, 4, 32} {
		Enable(UniformSchedule(7, r))
		for i := 0; i < n; i++ {
			Force(MempoolRefill)
		}
		calls, hits := Counts()
		Disable()
		if calls[MempoolRefill] != n {
			t.Fatalf("rate %d: %d calls recorded, want %d", r, calls[MempoolRefill], n)
		}
		h := hits[MempoolRefill]
		want := float64(n) / float64(r)
		if float64(h) < want/2 || float64(h) > want*2 {
			t.Fatalf("rate %d: %d injections over %d calls, want ~%.0f", r, h, n, want)
		}
		if r == 1 && h != n {
			t.Fatalf("rate 1 must fire every call: %d/%d", h, n)
		}
	}
	Enable(Schedule{Seed: 7}) // all rates zero
	for i := 0; i < 1000; i++ {
		if Force(ReplayInvalidate) {
			t.Fatal("rate 0 site fired")
		}
	}
	_, hits := Counts()
	Disable()
	if hits[ReplayInvalidate] != 0 {
		t.Fatalf("rate 0 site recorded %d injections", hits[ReplayInvalidate])
	}
}

// TestSeedsDiffer: different seeds give different decision streams (the
// soak's randomized schedules actually vary).
func TestSeedsDiffer(t *testing.T) {
	stream := func(seed uint64) []bool {
		Enable(UniformSchedule(seed, 3))
		defer Disable()
		st := cur.Load()
		out := make([]bool, 512)
		for i := range out {
			out[i], _ = decide(st, SchedStealCAS)
		}
		return out
	}
	a, b := stream(1), stream(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 drew identical decision streams")
	}
}

// TestConcurrentSites: concurrent Maybe/Force calls while armed are
// race-clean and the call counters account every call exactly once.
func TestConcurrentSites(t *testing.T) {
	Enable(UniformSchedule(99, 5))
	defer Disable()
	const per = 2000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Maybe(SchedTokenRetire)
				Force(ReplayInvalidate)
			}
		}()
	}
	wg.Wait()
	calls, _ := Counts()
	if calls[SchedTokenRetire] != 4*per || calls[ReplayInvalidate] != 4*per {
		t.Fatalf("call counters lost updates: %d / %d, want %d",
			calls[SchedTokenRetire], calls[ReplayInvalidate], 4*per)
	}
}

// TestSiteNames: every site has a distinct, non-empty stable name.
func TestSiteNames(t *testing.T) {
	seen := map[string]bool{}
	for s := 0; s < NumSites; s++ {
		name := Site(s).String()
		if name == "" || name == "unknown" {
			t.Fatalf("site %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate site name %q", name)
		}
		seen[name] = true
	}
}
