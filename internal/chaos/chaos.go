// Package chaos is the runtime's failpoint registry: named injection
// sites threaded through every lock-free protocol edge (the steal-CAS
// retry and Dekker recheck windows in internal/sched, the credit-steal
// and batch-wake hand-off in internal/throttle, the cascade ordering and
// pin-count release in internal/deps, the lane-refill path in
// internal/mempool, and the replay/taskwait/worksharing intercepts in
// internal/core). A site does nothing when the registry is disarmed — the
// fast path is a single atomic bool load and a predictable branch, cheap
// enough to leave compiled into production paths — and injects
// deterministic, PRNG-driven schedule perturbations when armed.
//
// Two site flavors keep the correctness oracles valid:
//
//   - delay sites (Maybe): widen a race window with a Gosched, a bounded
//     spin, or a double yield. The operation always happens — an injection
//     reorders, it never drops — so differential checksums, leak
//     accounting, and the throttle credit invariant must all still hold
//     under any schedule the injections provoke.
//   - decision sites (Force): deterministically take a slow path that a
//     quiet run rarely exercises — a forced lane-refill miss, a forced
//     replay invalidation. The slow paths are semantically transparent by
//     design; forcing them proves it.
//
// Decisions are a pure function of (Schedule.Seed, site, per-site call
// index): the same schedule over the same call stream injects at the same
// points, so a failing seed printed by the chaos soak replays with
// `go test -run TestChaosSoak -seed N`. Different goroutines interleave
// the per-site call stream nondeterministically — the *decision stream*
// is deterministic, the *assignment* of decisions to callers is the
// schedule noise being injected, which is exactly what a robustness soak
// wants.
//
// The registry is process-global (the instrumented packages cannot carry
// a handle through every call path): Enable/Disable must not race with
// each other, and tests that arm it must not run in parallel with tests
// that assume a quiet runtime. All counters and the armed flag are
// atomics, so armed-vs-checking races are benign and race-detector clean.
package chaos

import (
	"runtime"
	"sync/atomic"
)

// Site names one failpoint. The set covers every lock-free protocol edge
// the runtime relies on; docs/ARCHITECTURE.md ("Robustness") maps each
// site to the invariant it stresses.
type Site uint8

const (
	// SchedStealCAS sits in the stealing pool's per-victim visit, between
	// the size check and the steal CAS: a delay here forces the CAS to race
	// fresh pushes and concurrent thieves (ABA/retry paths).
	SchedStealCAS Site = iota
	// SchedTokenRetire sits in releaseToken between parking the token and
	// the Dekker recheck — the classic lost-wakeup window the recheck
	// exists to close.
	SchedTokenRetire
	// SchedDekkerRecheck sits in kick between the item publication and the
	// token-list recheck on the submitter side of the same Dekker pair.
	SchedDekkerRecheck
	// ThrottleCreditSteal sits in the sharded window's tryAcquire before
	// the cross-cache steal scan, racing it against concurrent Started
	// returns and other stealers.
	ThrottleCreditSteal
	// ThrottleBatchWake sits in put between the waiter-count check and the
	// credit hand-off, racing the hand-off against waiter deregistration.
	ThrottleBatchWake
	// DepsCascade sits in the sharded engine's CompleteInto between shard
	// visits, interleaving multi-object completion cascades.
	DepsCascade
	// DepsPinRelease sits immediately before the completion hold's pin
	// release, racing the recycle election between fragments and the
	// completion path.
	DepsPinRelease
	// MempoolRefill is a decision site in Lane.Get: force the lane to
	// flush to the global shard first, so the Get misses the lane and
	// exercises the refill/alloc batch-transfer path.
	MempoolRefill
	// ReplayInvalidate is a decision site in graph-region fingerprint
	// validation: force a mismatch, driving the mid-region invalidation
	// fallback (drain the admitted prefix, finish live, re-record next
	// time).
	ReplayInvalidate
	// TaskwaitIntercept sits in the continuation resume between the
	// intercept and the token hand-off send, delaying a parked taskwait's
	// resume while its subtree's completions race ahead.
	TaskwaitIntercept
	// WsAnnounceConsume sits in the worksharing helper intercept between
	// popping the invitation and joining the chunk drain, racing the
	// announce-hold release against the owner's completion.
	WsAnnounceConsume

	// NumSites is the site count (array sizing).
	NumSites = int(WsAnnounceConsume) + 1
)

var siteNames = [NumSites]string{
	"sched-steal-cas",
	"sched-token-retire",
	"sched-dekker-recheck",
	"throttle-credit-steal",
	"throttle-batch-wake",
	"deps-cascade",
	"deps-pin-release",
	"mempool-refill",
	"replay-invalidate",
	"taskwait-intercept",
	"ws-announce-consume",
}

// String returns the site's stable table/report name.
func (s Site) String() string {
	if int(s) < NumSites {
		return siteNames[s]
	}
	return "unknown"
}

// Schedule is one armed failpoint configuration: a PRNG seed and a
// per-site injection rate. Rate[s] = n injects at site s on roughly one
// in n calls (deterministically, from the seeded PRNG); 0 disables the
// site. Rate 1 injects on every call.
type Schedule struct {
	Seed uint64
	Rate [NumSites]uint32
}

// UniformSchedule returns a schedule injecting at every site with the
// same 1-in-rate probability.
func UniformSchedule(seed uint64, rate uint32) Schedule {
	s := Schedule{Seed: seed}
	for i := range s.Rate {
		s.Rate[i] = rate
	}
	return s
}

// state is the armed registry: the schedule plus per-site call and
// injection counters. A fresh state is installed by every Enable, so
// counts always describe the current schedule.
type state struct {
	seed  uint64
	rate  [NumSites]uint32
	calls [NumSites]atomic.Uint64
	hits  [NumSites]atomic.Uint64
}

var (
	armed atomic.Bool
	cur   atomic.Pointer[state]
)

// Enabled reports whether a schedule is armed. Instrumented hot paths may
// use it to skip argument setup; Maybe/Force perform the same check.
func Enabled() bool { return armed.Load() }

// Enable arms the registry with the given schedule, resetting all
// counters. It must not race Disable or another Enable (serialize via the
// test that owns the run).
func Enable(s Schedule) {
	st := &state{seed: s.Seed, rate: s.Rate}
	cur.Store(st)
	armed.Store(true)
}

// Disable disarms the registry. Sites checked concurrently with Disable
// may still inject briefly; counters stop advancing once they observe the
// flag.
func Disable() { armed.Store(false) }

// Counts returns the per-site (calls, injections) counters of the current
// schedule. Zero for sites never reached or when nothing was ever armed.
func Counts() (calls, hits [NumSites]uint64) {
	st := cur.Load()
	if st == nil {
		return
	}
	for i := 0; i < NumSites; i++ {
		calls[i] = st.calls[i].Load()
		hits[i] = st.hits[i].Load()
	}
	return
}

// splitmix64 is the decision PRNG: a bijective mixer, so distinct
// (seed, site, index) triples draw independent-looking decisions while
// staying a pure function of the triple.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide draws site s's next decision; fire=true on an injection, and
// bits carries extra PRNG bits for the delay-flavor choice.
func decide(st *state, s Site) (fire bool, bits uint64) {
	r := st.rate[s]
	if r == 0 {
		return false, 0
	}
	n := st.calls[s].Add(1)
	bits = splitmix64(st.seed ^ uint64(s)<<56 ^ n)
	if r == 1 || bits%uint64(r) == 0 {
		st.hits[s].Add(1)
		return true, bits
	}
	return false, 0
}

// Maybe is a delay site: when armed and the schedule fires, it perturbs
// the caller's timing (yield, bounded spin, or double yield — never a
// dropped operation). The disarmed path is one atomic load and a branch.
func Maybe(s Site) {
	if !armed.Load() {
		return
	}
	st := cur.Load()
	if st == nil {
		return
	}
	if fire, bits := decide(st, s); fire {
		inject(bits)
	}
}

// Force is a decision site: it reports whether the caller should take its
// forced slow path. Always false when disarmed.
func Force(s Site) bool {
	if !armed.Load() {
		return false
	}
	st := cur.Load()
	if st == nil {
		return false
	}
	fire, _ := decide(st, s)
	return fire
}

// spinSink defeats dead-code elimination of the spin delay.
var spinSink atomic.Uint64

// inject performs one delay, flavor chosen from the decision bits:
// a scheduler yield (let any runnable goroutine into the window), a
// bounded spin (hold the core, shifting unsynchronized timing without a
// scheduling point), or a double yield (push the caller to the back of
// the run queue twice, the widest window).
func inject(bits uint64) {
	switch (bits >> 33) % 3 {
	case 0:
		runtime.Gosched()
	case 1:
		x := bits
		for i := 0; i < 192; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		spinSink.Store(x)
	default:
		runtime.Gosched()
		runtime.Gosched()
	}
}
