package throttle

import (
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// sharded is the token-bucket admission window. The bound is a pool of
// admission credits: one credit per window slot, conserved across a global
// atomic balance, per-worker caches, and reservers in flight
//
//	balance + Σ caches + credits held by reservers = limit - open
//
// so whenever the balance and caches are non-negative the occupancy cannot
// exceed the bound. Reserve consumes a credit (prepaying the submitted
// task's window entry) and Started returns one; unreserved entries —
// dependency cascades, which must never block — overdraw the balance below
// zero and the returned credits of their starts repay it.
//
// Contention structure:
//
//   - fast path: Reserve takes a credit from the reserving worker's own
//     cache — one CAS on a cache line no other worker writes in steady
//     state. Empty caches refill by borrowing a batch from the global
//     balance, amortizing the shared-line traffic. When the window is at
//     least twice the worker count, batches are sized so all caches
//     together hold at most half the window; smaller windows clamp the
//     batch to one credit per worker (credit conservation still bounds
//     the caches to at most the whole window).
//   - Started returns the credit to the starting worker's cache (overflow
//     to the global balance): an uncontended CAS plus one load of the
//     waiter count, where the locked window takes a mutex and broadcasts.
//   - slow path: a reserver that finds no credit in its cache, the
//     balance, or any other cache (stealing, as the ready pools do) parks
//     on its shard's wait list.
//
// The lost-wakeup window between a parking reserver and a concurrent
// Started is closed Dekker-style, the same protocol as the sharded ready
// pools' idle protocol: the parker publishes its registration (wait list +
// waiter count) and then rechecks every credit source; the returner
// publishes its credit and then rechecks the waiter count. Under Go's
// sequentially consistent atomics at least one side observes the other. A
// wake-up delivered to a reserver that already satisfied itself on the
// recheck is forwarded to another parked reserver, so responsibility for a
// freed slot is never dropped.
type sharded struct {
	limit    int64
	workers  int
	batch    int64 // borrow quantum = per-worker cache cap
	balance  atomic.Int64
	open     atomic.Int64
	nwait    atomic.Int64
	parks    atomic.Int64
	borrows  atomic.Int64
	steals   atomic.Int64
	handoffs atomic.Int64
	reparks  atomic.Int64
	shards   []tshard
}

// tshard pads to two cache lines so one worker's credit-cache traffic does
// not false-share with its neighbours' (the same layout discipline as the
// ready pools' poolShard; a test asserts the 64-byte multiple).
type tshard struct {
	cache atomic.Int64 // credits cached by the owning worker
	wmu   sync.Mutex
	// wlist holds the parked reservers (FIFO). The wake value is the
	// batch-wake protocol: true carries the waker's credit with the wake —
	// the reserver owns it outright and resumes without retrying the
	// credit sources — false is a bare recheck hint (the Dekker fallback).
	wlist []chan bool
	_     [88]byte // 40 -> 128
}

// NewSharded creates the token-bucket window with the given bound and
// worker count.
func NewSharded(limit, workers int) Window {
	if limit <= 0 {
		panic("throttle: limit must be positive")
	}
	if workers < 1 {
		workers = 1
	}
	batch := int64(limit) / int64(2*workers)
	if batch < 1 {
		batch = 1
	}
	s := &sharded{limit: int64(limit), workers: workers, batch: batch,
		shards: make([]tshard, workers)}
	s.balance.Store(int64(limit))
	return s
}

func (s *sharded) shardOf(worker int) int {
	if worker >= 0 && worker < s.workers {
		return worker
	}
	return 0
}

// takeCache removes one credit from c, failing when c holds none.
func takeCache(c *atomic.Int64) bool {
	for {
		n := c.Load()
		if n <= 0 {
			return false
		}
		if c.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// putCache adds one credit to c unless it is at the cap.
func putCache(c *atomic.Int64, cap int64) bool {
	for {
		n := c.Load()
		if n >= cap {
			return false
		}
		if c.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// borrow refills shard idx's cache with a batch of credits from the global
// balance (keeping one for the caller), failing when the balance is empty
// or overdrawn.
func (s *sharded) borrow(idx int) bool {
	for {
		bal := s.balance.Load()
		if bal <= 0 {
			return false
		}
		b := s.batch
		if bal < b {
			b = bal
		}
		if s.balance.CompareAndSwap(bal, bal-b) {
			if b > 1 {
				s.shards[idx].cache.Add(b - 1)
			}
			s.borrows.Add(1)
			return true
		}
	}
}

// tryAcquire takes one credit from any source, preferring locality: the
// reserving worker's own cache, then a batch borrow from the balance, then
// a steal from another worker's cache.
func (s *sharded) tryAcquire(idx int) bool {
	if takeCache(&s.shards[idx].cache) {
		return true
	}
	if s.borrow(idx) {
		return true
	}
	// Failpoint: delay before the cross-cache steal scan, racing it
	// against concurrent Started returns and rival stealers.
	chaos.Maybe(chaos.ThrottleCreditSteal)
	for i := 1; i < s.workers; i++ {
		if takeCache(&s.shards[(idx+i)%s.workers].cache) {
			s.steals.Add(1)
			return true
		}
	}
	return false
}

// put returns one credit. Batch-wake fast path: if a reserver is parked
// and the balance is not overdrawn, the credit is handed to it directly —
// popped from the wait list and sent with the wake — so a burst of
// completions wakes a burst of reservers, each owning its credit outright,
// with no wake/retry/re-park churn. An overdrawn balance (cascade entries
// pushed occupancy past the bound) disables the hand-off and is repaid
// first — a credit handed (or cached) while occupancy is above the bound
// would admit a reserver the bound should block, and the overdraft would
// otherwise persist through hand-off/reserve churn — then the worker's
// cache up to the cap, then the balance; a recheck of the waiter count
// (publish-then-recheck) covers reservers that registered after the
// fast-path test.
func (s *sharded) put(worker int) {
	idx := s.shardOf(worker)
	if s.balance.Load() >= 0 && s.nwait.Load() > 0 {
		// Failpoint: widen the window between the waiter-count check and
		// the hand-off pop, racing it against waiter deregistration.
		chaos.Maybe(chaos.ThrottleBatchWake)
		if s.handOff(idx) {
			return
		}
	}
	for {
		bal := s.balance.Load()
		if bal >= 0 {
			if putCache(&s.shards[idx].cache, s.batch) {
				break
			}
			if s.balance.CompareAndSwap(bal, bal+1) {
				break
			}
			continue
		}
		if s.balance.CompareAndSwap(bal, bal+1) {
			break
		}
	}
	if s.nwait.Load() > 0 {
		s.wakeOne(idx)
	}
}

// handOff pops one parked reserver, scanning wait lists from shard idx,
// and transfers the caller's credit to it; false means no reserver was
// found (the caller still owns the credit).
func (s *sharded) handOff(idx int) bool {
	if ch, ok := s.popWaiter(idx); ok {
		s.handoffs.Add(1)
		ch <- true
		return true
	}
	return false
}

// wakeOne pops one parked reserver and signals it to recheck the credit
// sources (no credit attached — the Dekker fallback wake).
func (s *sharded) wakeOne(idx int) {
	if ch, ok := s.popWaiter(idx); ok {
		ch <- false
	}
}

// popWaiter removes the oldest parked reserver, scanning wait lists from
// shard idx.
func (s *sharded) popWaiter(idx int) (chan bool, bool) {
	for i := 0; i < s.workers; i++ {
		sh := &s.shards[(idx+i)%s.workers]
		sh.wmu.Lock()
		if len(sh.wlist) > 0 {
			ch := sh.wlist[0]
			sh.wlist = sh.wlist[1:]
			s.nwait.Add(-1)
			sh.wmu.Unlock()
			return ch, true
		}
		sh.wmu.Unlock()
	}
	return nil, false
}

// deregister removes ch from sh's wait list; false means a waker already
// popped it (a signal is in flight on ch).
func (s *sharded) deregister(sh *tshard, ch chan bool) bool {
	sh.wmu.Lock()
	defer sh.wmu.Unlock()
	for i, c := range sh.wlist {
		if c == ch {
			sh.wlist = append(sh.wlist[:i], sh.wlist[i+1:]...)
			s.nwait.Add(-1)
			return true
		}
	}
	return false
}

// park blocks until a credit is acquired. Each round registers on the
// shard's wait list, then — Dekker — rechecks every credit source before
// sleeping. A wake-up carrying a credit (direct hand-off) ends the park
// immediately: the credit is the reserver's, no retry needed. A bare wake
// is a hint to recheck; a reserver that loses the recheck race to a fresh
// reserver parks again (the credit that fresh reserver consumed funds a
// task whose start will return it, with a hand-off to whoever is parked).
func (s *sharded) park(idx int) {
	sh := &s.shards[idx]
	for {
		ch := make(chan bool, 1)
		sh.wmu.Lock()
		sh.wlist = append(sh.wlist, ch)
		sh.wmu.Unlock()
		s.nwait.Add(1)
		if s.tryAcquire(idx) {
			if !s.deregister(sh, ch) {
				// A waker popped us concurrently; consume its signal and
				// re-dispatch: a handed-off credit must not be dropped (it
				// goes to another parked reserver, or back to the pool),
				// and a bare hint is forwarded.
				if <-ch {
					s.put(idx)
				} else {
					s.wakeOne(idx)
				}
			}
			return
		}
		if <-ch {
			return // direct hand-off: the credit is ours
		}
		if s.tryAcquire(idx) {
			return
		}
		s.reparks.Add(1)
	}
}

func (s *sharded) Reserve(worker int, y Yielder) (int, bool) {
	idx := s.shardOf(worker)
	if s.tryAcquire(idx) {
		return worker, true
	}
	s.parks.Add(1)
	if y != nil {
		y.Yield(worker)
	}
	s.park(idx)
	if y != nil {
		worker = y.Acquire()
	}
	return worker, true
}

func (s *sharded) Entered(n int64) {
	s.open.Add(n)
	s.balance.Add(-n)
}

func (s *sharded) EnteredReserved() { s.open.Add(1) }

func (s *sharded) Refund(worker int) { s.put(worker) }

func (s *sharded) Started(worker int) {
	s.open.Add(-1)
	s.put(worker)
}

func (s *sharded) Open() int64 { return s.open.Load() }

func (s *sharded) Limit() int { return int(s.limit) }

// Credits sums the global balance and every per-worker cache. The reads
// are independent atomics, so under load the sum may be instantaneously
// inconsistent (a credit mid-transfer is counted zero or twice); at
// quiescence it is exact and equals limit - open. Credits held in flight
// by reservers between Reserve and Entered are deliberately excluded.
func (s *sharded) Credits() int64 {
	n := s.balance.Load()
	for i := range s.shards {
		n += s.shards[i].cache.Load()
	}
	return n
}

// Waiters reports the reservers currently parked across all wait lists.
func (s *sharded) Waiters() int64 { return s.nwait.Load() }

func (s *sharded) Stats() Stats {
	return Stats{
		Parks: s.parks.Load(), Borrows: s.borrows.Load(), Steals: s.steals.Load(),
		Handoffs: s.handoffs.Load(), Reparks: s.reparks.Load(),
	}
}
