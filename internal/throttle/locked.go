package throttle

import (
	"sync"
	"sync/atomic"
)

// locked is the reference window: an atomic occupancy counter, one mutex,
// and one condition variable. Reserve spins on the counter's fast path and
// cond-waits above the bound; every Started broadcasts under the mutex, so
// all throttled workers serialize on one lock — exactly the behavior the
// runtime shipped before the sharded window, preserved for differential
// testing and contention A/Bs.
type locked struct {
	limit int64
	open  atomic.Int64
	mu      sync.Mutex
	cond    *sync.Cond
	parks   atomic.Int64
	waiting atomic.Int64
}

// NewLocked creates the mutex+cond reference window with the given bound.
func NewLocked(limit int) Window {
	if limit <= 0 {
		panic("throttle: limit must be positive")
	}
	l := &locked{limit: int64(limit)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

func (l *locked) Reserve(worker int, y Yielder) (int, bool) {
	if l.open.Load() < l.limit {
		return worker, false
	}
	l.parks.Add(1)
	if y != nil {
		y.Yield(worker)
	}
	l.mu.Lock()
	l.waiting.Add(1)
	for l.open.Load() >= l.limit {
		l.cond.Wait()
	}
	l.waiting.Add(-1)
	l.mu.Unlock()
	if y != nil {
		worker = y.Acquire()
	}
	return worker, false
}

func (l *locked) Entered(n int64) { l.open.Add(n) }

// EnteredReserved never runs in practice — Reserve never prepays — but the
// contract still requires it to count the entry.
func (l *locked) EnteredReserved() { l.open.Add(1) }

func (l *locked) Refund(worker int) {}

func (l *locked) Started(worker int) {
	l.open.Add(-1)
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *locked) Open() int64 { return l.open.Load() }

func (l *locked) Limit() int { return int(l.limit) }

// Credits reports the free slots under the bound. The locked window keeps
// no per-worker caches and Reserve prepays nothing, so this is exactly
// limit - open (negative while cascades overdraw).
func (l *locked) Credits() int64 { return l.limit - l.open.Load() }

// Waiters reports the reservers currently cond-waiting above the bound.
func (l *locked) Waiters() int64 { return l.waiting.Load() }

func (l *locked) Stats() Stats { return Stats{Parks: l.parks.Load()} }
