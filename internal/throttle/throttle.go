// Package throttle implements the runtime's bounded lookahead window: a
// cap on the number of dependency-ready tasks awaiting execution
// (core.Config.ThrottleOpenTasks, the paper's §III discussion of bounding
// how far task instantiation may run ahead of execution).
//
// A submitter that would push the window past its bound blocks — yielding
// its worker token so the blocked core still runs useful work — until
// started tasks free window slots. Only dependency-ready tasks count
// toward the window: a ready task needs nothing but a worker token, so the
// window always drains and a blocked submitter always wakes. (Counting all
// instantiated tasks would deadlock nested weak programs, where a task can
// be dependency-blocked on fragments that release only when its blocked
// submitter's own body finishes.)
//
// Two implementations share the Window contract and are driven over
// identical randomized schedules by the differential tests in this
// package:
//
//   - Locked: one mutex + condition variable. Every Started broadcast
//     serializes on the mutex, re-centralizing the contention the sharded
//     dependency engine and ready pools removed; kept as the reference.
//   - Sharded: a token-bucket admission window. The bound is a global
//     atomic credit balance; each worker caches a small batch of borrowed
//     credits so the common Reserve is one uncontended CAS on its own
//     cache line, and blocked submitters park on per-shard wait lists. A
//     Dekker-style publish-then-recheck protocol (the same idiom as the
//     sharded ready pools' idle protocol) closes the lost-wakeup window
//     between a parking submitter and a completion that frees slots.
package throttle

// Kind selects a Window implementation (core.Config.ThrottleImpl).
type Kind uint8

const (
	// KindAuto lets the runtime pick: the sharded token-bucket window in
	// real mode. (Virtual mode is a sequential simulation and never blocks
	// submitters, so it constructs no window at all.)
	KindAuto Kind = iota
	// KindLocked is the single mutex + condvar reference window.
	KindLocked
	// KindSharded is the sharded token-bucket window.
	KindSharded
)

// String returns the kind's depbench/table name.
func (k Kind) String() string {
	switch k {
	case KindLocked:
		return "locked"
	case KindSharded:
		return "sharded"
	}
	return "auto"
}

// Yielder is the worker-token round-trip a blocking reserver performs: it
// releases its token while parked (so the core runs other ready tasks) and
// reacquires one before resuming. The runtime passes its ready pool
// (sched.Queue implements both methods); standalone drivers — benchmarks,
// the differential tests — may pass nil to park without a token round-trip.
type Yielder interface {
	// Yield releases the worker token while its holder blocks.
	Yield(worker int)
	// Acquire blocks until a worker token is available and returns it.
	Acquire() int
}

// Stats are diagnostic counters of a Window.
type Stats struct {
	// Parks counts reservers that exhausted the fast paths and parked
	// (cond-waited in the locked window, wait-listed in the sharded one).
	Parks int64
	// Borrows counts batch refills of a worker's credit cache from the
	// global balance (sharded only).
	Borrows int64
	// Steals counts credits taken from another worker's cache (sharded
	// only).
	Steals int64
	// Handoffs counts credits handed directly to a parked reserver by a
	// returner (sharded only): the woken reserver owns the credit outright
	// and resumes without re-contending the credit sources, so a burst of
	// completions wakes a burst of reservers with no retry traffic.
	Handoffs int64
	// Reparks counts reservers that woke without an attached credit, lost
	// the recheck race, and slept again (sharded only). Direct hand-off
	// exists to keep this at zero in the common case.
	Reparks int64
}

// Window is the admission-window contract between the runtime and a
// throttle implementation.
//
// The accounting protocol: every task entering the window (becoming
// dependency-ready) is reported exactly once — either by Entered, or by a
// preceding Reserve that returned prepaid=true followed by EnteredReserved
// — and every counted task leaving the window (starting execution) is
// reported exactly once by Started. A prepaid reservation whose task turns
// out not to be ready (it deferred on its dependencies) must be returned
// with Refund. Entered may overdraw the bound: dependency cascades ready
// tasks regardless of the window, and only submitters block.
type Window interface {
	// Reserve blocks until the window has room for one more ready task,
	// yielding worker through y (if non-nil) while parked. It returns the
	// worker the caller now holds (reacquired if it parked) and whether the
	// reservation prepaid a window slot: if true, the caller reports the
	// task's window entry with EnteredReserved (or returns the slot with
	// Refund if the task deferred); if false, with Entered.
	Reserve(worker int, y Yielder) (newWorker int, prepaid bool)
	// Entered records n tasks entering the window without a prepaid
	// reservation (dependency-cascade admissions, and every admission of
	// the locked window). It never blocks and may overdraw the bound.
	Entered(n int64)
	// EnteredReserved records a window entry paid for by a prepaid Reserve.
	EnteredReserved()
	// Refund returns a prepaid window slot whose task deferred on its
	// dependencies instead of entering the window.
	Refund(worker int)
	// Started records one counted task leaving the window (it began
	// executing) and wakes parked reservers the freed slot can admit.
	// worker is the starting worker (the sharded window returns the credit
	// to that worker's cache); -1 if unknown.
	Started(worker int)
	// Open returns the current window occupancy (ready, unstarted tasks).
	Open() int64
	// Limit returns the configured window bound.
	Limit() int
	// Credits returns the number of window slots currently free to admit
	// work: the global balance plus any per-worker credit caches, excluding
	// credits held in flight by reservers between Reserve and Entered. It
	// may be negative while cascade admissions overdraw the bound. At
	// quiescence (no open task, no reservation in flight) it equals
	// Limit() - Open() exactly — the runtime's leak checks assert this —
	// but under load the counters are read independently and the sum may be
	// instantaneously inconsistent.
	Credits() int64
	// Waiters returns the number of reservers currently parked in Reserve.
	// Monitors use it with Credits: a parked reserver and a free credit
	// coexisting past a transient handoff window is a lost wakeup.
	Waiters() int64
	// Stats returns a snapshot of the diagnostic counters.
	Stats() Stats
}

// New returns a window of the given kind over limit window slots for the
// given worker count. KindAuto resolves to the sharded window.
func New(kind Kind, limit, workers int) Window {
	if kind == KindLocked {
		return NewLocked(limit)
	}
	return NewSharded(limit, workers)
}
