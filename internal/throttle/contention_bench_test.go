package throttle

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Throttle-window contention: w submitter loops share one window, each
// cycling reserve → enter → start — the throttled-submission analogue of
// the dependency engine's disjoint chains and the scheduler's submit/finish
// chains (every cycle crosses the admission window; the submitters share
// no other state). Under the locked window every Started broadcasts under
// one mutex, so all cycles serialize; under the sharded window each cycle
// stays on its worker's credit-cache line. GOMAXPROCS is raised to the
// worker count so the contention is real even on small hosts.

// runWindowCycles drives w submitter loops of ops/w reserve+enter+start
// cycles each through a fresh window of the given kind and bound.
func runWindowCycles(kind Kind, w, ops, limit int) {
	win := New(kind, limit, w)
	perW := ops / w
	if perW < 1 {
		perW = 1
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, prepaid := win.Reserve(g, nil)
				if prepaid {
					win.EnteredReserved()
				} else {
					win.Entered(1)
				}
				win.Started(g)
			}
		}(g)
	}
	wg.Wait()
}

var contentionKinds = []Kind{KindLocked, KindSharded}

// BenchmarkThrottleContentionMatrix is the throttle contention table:
// both window implementations at w = 1 (overhead parity), 4, and 8 (lock
// contention), over a tight window (equal to the worker count, the bound
// actively pushing back) and a wide one (credit-cache steady state). The
// CI smoke runs it at -benchtime 1x; the w=1 regression guard is
// TestThrottleW1Parity below, and the precise contention measurement is
// cmd/depbench's throttle table.
func BenchmarkThrottleContentionMatrix(b *testing.B) {
	for _, kind := range contentionKinds {
		for _, w := range []int{1, 4, 8} {
			for _, window := range []int{w, 64 * w} {
				b.Run(fmt.Sprintf("%s/w=%d/window=%d", kind, w, window), func(b *testing.B) {
					prev := runtime.GOMAXPROCS(0)
					if w > prev {
						runtime.GOMAXPROCS(w)
						defer runtime.GOMAXPROCS(prev)
					}
					b.ReportAllocs()
					runWindowCycles(kind, w, b.N, window)
				})
			}
		}
	}
}

// TestThrottleW1Parity is the regression guard on the single-worker case:
// the sharded window's credit-cache fast path must not cost materially
// more than the mutex+cond reference when there is no contention to win
// back. The bound is deliberately loose (CI hosts are noisy); the precise
// parity measurement is cmd/depbench's throttle table.
func TestThrottleW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	const ops = 200_000
	const trials = 5
	// Interleave the kinds' trials so a transient stall (noisy CI
	// neighbour, GC) hits both alike, and take each kind's best trial,
	// which filters such stalls out entirely.
	best := make([]time.Duration, len(contentionKinds))
	for i := range best {
		best[i] = time.Duration(1<<63 - 1)
	}
	for trial := 0; trial < trials; trial++ {
		for i, kind := range contentionKinds {
			start := time.Now()
			runWindowCycles(kind, 1, ops, 8)
			if d := time.Since(start); d < best[i] {
				best[i] = d
			}
		}
	}
	if f := float64(best[1]) / float64(best[0]); f > 1.5 {
		t.Errorf("sharded w=1: %.2fx slower than locked (%v vs %v); reserve fast path regressed",
			f, best[1], best[0])
	}
}
