package throttle

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"repro/internal/randtest"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindAuto: "auto", KindLocked: "locked", KindSharded: "sharded"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestShardPadding(t *testing.T) {
	if sz := unsafe.Sizeof(tshard{}); sz%64 != 0 {
		t.Fatalf("tshard is %d bytes, want a multiple of 64 (cache-line padding)", sz)
	}
}

func TestNewResolvesKinds(t *testing.T) {
	if _, ok := New(KindAuto, 8, 2).(*sharded); !ok {
		t.Error("KindAuto did not resolve to the sharded window")
	}
	if _, ok := New(KindLocked, 8, 2).(*locked); !ok {
		t.Error("KindLocked did not resolve to the locked window")
	}
	if _, ok := New(KindSharded, 8, 2).(*sharded); !ok {
		t.Error("KindSharded did not resolve to the sharded window")
	}
}

// TestReservedBound checks the hard bound on reserved-only admission: with
// every entry paid for by a Reserve, occupancy never exceeds the limit
// (sharded: credits are conserved) or limit plus the check-then-act
// overshoot of one slot per concurrent reserver (locked). A goroutine
// starts its previous entry before reserving the next one — in the real
// runtime the two sides run on different goroutines (submitters vs
// workers), and ready tasks always drain — so with a window smaller than
// the submitter count the slow path parks and wakes throughout.
func TestReservedBound(t *testing.T) {
	const submitters = 4
	perG := 2000
	if testing.Short() {
		perG = 400
	}
	for _, limit := range []int{3, 8} {
		for _, kind := range []Kind{KindLocked, KindSharded} {
			t.Run(fmt.Sprintf("%v/limit=%d", kind, limit), func(t *testing.T) {
				w := New(kind, limit, submitters)
				bound := int64(limit)
				if kind == KindLocked {
					bound += submitters - 1 // one check-then-submit overshoot per reserver
				}
				var maxOpen atomic.Int64
				var wg sync.WaitGroup
				barrier := make(chan struct{})
				for g := 0; g < submitters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						<-barrier
						pending := 0
						for i := 0; i < perG; i++ {
							if pending > 0 {
								w.Started(g)
								pending--
							}
							_, prepaid := w.Reserve(g, nil)
							if prepaid {
								w.EnteredReserved()
							} else {
								w.Entered(1)
							}
							pending++
							if o := w.Open(); o > maxOpen.Load() {
								maxOpen.Store(o)
							}
						}
						for ; pending > 0; pending-- {
							w.Started(g)
						}
					}(g)
				}
				close(barrier)
				wg.Wait()
				if got := maxOpen.Load(); got > bound {
					t.Errorf("occupancy reached %d, want <= %d", got, bound)
				}
				if got := w.Open(); got != 0 {
					t.Errorf("Open() = %d at quiescence, want 0", got)
				}
			})
		}
	}
}

// TestDifferentialRandomSchedules drives the locked and sharded windows
// over identical seeded randomized submit/cascade/refund schedules — the
// same program both implementations must admit — mirroring the runtime's
// structure: submitter goroutines reserve and enter (and may park), while
// dedicated drainer goroutines start every window occupant (ready tasks
// always drain, which is what makes the throttle deadlock-free). For each
// run it asserts: completion (no deadlock, no lost wakeup), and quiescence
// counts that match across implementations — identical entry/start totals
// for the same seed, zero occupancy, and (white box) every sharded credit
// returned with no waiter left parked.
func TestDifferentialRandomSchedules(t *testing.T) {
	type result struct {
		entered, started int64
	}
	const submitters = 4
	run := func(kind Kind, limit int, seed uint64, perG int) result {
		w := New(kind, limit, submitters)
		var entered, started atomic.Int64
		var subs sync.WaitGroup
		for g := 0; g < submitters; g++ {
			subs.Add(1)
			go func(g int) {
				defer subs.Done()
				rng := rand.New(rand.NewPCG(seed, uint64(g)))
				for i := 0; i < perG; i++ {
					switch rng.IntN(8) {
					case 0, 1, 2, 3, 4: // throttled submit of a ready child
						_, prepaid := w.Reserve(g, nil)
						if prepaid {
							w.EnteredReserved()
						} else {
							w.Entered(1)
						}
						entered.Add(1)
					case 5: // throttled submit of a deferred child
						if _, prepaid := w.Reserve(g, nil); prepaid {
							w.Refund(g)
						}
					default: // dependency cascade readies a burst (may overdraw)
						n := int64(1 + rng.IntN(3))
						w.Entered(n)
						entered.Add(n)
					}
				}
			}(g)
		}
		// Drainers play the workers: start whatever occupies the window.
		stop := make(chan struct{})
		var drainers sync.WaitGroup
		for d := 0; d < 2; d++ {
			drainers.Add(1)
			go func(d int) {
				defer drainers.Done()
				for {
					if s := started.Load(); s < entered.Load() {
						if started.CompareAndSwap(s, s+1) {
							w.Started(d)
						}
						continue
					}
					select {
					case <-stop:
						if started.Load() == entered.Load() {
							return
						}
					default:
					}
					runtime.Gosched()
				}
			}(d)
		}
		done := make(chan struct{})
		go func() { subs.Wait(); close(stop); drainers.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			panic(fmt.Sprintf("%v window deadlocked (limit=%d seed=%d)", kind, limit, seed))
		}
		if got := w.Open(); got != 0 {
			panic(fmt.Sprintf("%v window: Open() = %d at quiescence, want 0", kind, got))
		}
		if s, ok := w.(*sharded); ok {
			credits := s.balance.Load()
			for i := range s.shards {
				credits += s.shards[i].cache.Load()
			}
			if credits != int64(limit) {
				panic(fmt.Sprintf("sharded window leaked credits: %d live, want %d", credits, limit))
			}
			if nw := s.nwait.Load(); nw != 0 {
				panic(fmt.Sprintf("sharded window: %d waiters at quiescence", nw))
			}
		}
		return result{entered: entered.Load(), started: started.Load()}
	}
	perG := 3000
	if testing.Short() {
		perG = 600
	}
	for _, limit := range []int{1, 2, 7, 64} {
		for _, s := range randtest.SeedRange(t, 0, 4) {
			seed := uint64(s)
			lres := run(KindLocked, limit, seed, perG)
			sres := run(KindSharded, limit, seed, perG)
			if lres != sres {
				t.Errorf("limit=%d seed=%d: quiescence counts diverge: locked=%+v sharded=%+v",
					limit, seed, lres, sres)
			}
			if lres.entered != lres.started {
				t.Errorf("limit=%d seed=%d: %d entries vs %d starts", limit, seed,
					lres.entered, lres.started)
			}
		}
	}
}

// TestParkAndWake forces the slow path: with a window of one, a second
// reserver must park and a Started must wake it.
func TestParkAndWake(t *testing.T) {
	for _, kind := range []Kind{KindLocked, KindSharded} {
		t.Run(kind.String(), func(t *testing.T) {
			w := New(kind, 1, 2)
			if _, prepaid := w.Reserve(0, nil); prepaid {
				w.EnteredReserved()
			} else {
				w.Entered(1)
			}
			got := make(chan struct{})
			go func() {
				_, prepaid := w.Reserve(1, nil)
				if prepaid {
					w.EnteredReserved()
				} else {
					w.Entered(1)
				}
				close(got)
			}()
			// The reserver must park: the window is full.
			select {
			case <-got:
				t.Fatal("second reserver passed a full window")
			case <-time.After(50 * time.Millisecond):
			}
			w.Started(0)
			select {
			case <-got:
			case <-time.After(5 * time.Second):
				t.Fatal("Started did not wake the parked reserver")
			}
			w.Started(1)
			if w.Stats().Parks == 0 {
				t.Error("Stats().Parks = 0, want at least one park")
			}
			if got := w.Open(); got != 0 {
				t.Errorf("Open() = %d, want 0", got)
			}
		})
	}
}

// TestShardedBatchWakeHandsCreditsDirectly pins the batch-wake protocol:
// a completion burst against a full window hands its freed credits
// directly to the parked reservers — every wake carries a credit, no woken
// reserver retries the credit sources, and none re-parks. With K reservers
// parked before the burst begins, the Handoffs counter must account for
// every wake and Reparks must stay zero (the retry storm the one-at-a-time
// wake/recheck protocol used to produce under window pressure).
func TestShardedBatchWakeHandsCreditsDirectly(t *testing.T) {
	const parked = 8
	w := New(KindSharded, 1, 4)
	// Take the single credit so every later reserver parks.
	if _, prepaid := w.Reserve(0, nil); !prepaid {
		t.Fatal("sharded Reserve did not prepay")
	}
	w.EnteredReserved()
	var done sync.WaitGroup
	for i := 0; i < parked; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			w.Reserve(i%4, nil)
			w.EnteredReserved()
			// Chain the burst: each resumed reserver's task "starts",
			// freeing the slot for the next parked reserver.
			w.Started(i % 4)
		}(i)
	}
	// Wait until all reservers are parked, then start the burst.
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Parks < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d reservers parked", w.Stats().Parks, parked)
		}
		runtime.Gosched()
	}
	w.Started(0)
	done.Wait()
	st := w.Stats()
	if st.Handoffs != parked {
		t.Errorf("Handoffs = %d, want %d (every wake must carry its credit)", st.Handoffs, parked)
	}
	if st.Reparks != 0 {
		t.Errorf("Reparks = %d, want 0 (direct hand-off leaves nothing to retry)", st.Reparks)
	}
	if got := w.Open(); got != 0 {
		t.Errorf("Open() = %d, want 0", got)
	}
}

// TestShardedOverdrawBlocksHandOff pins the bound under cascade overdraw:
// while unreserved (cascade) entries hold occupancy above the limit, a
// returned credit must repay the overdrawn balance — not be handed to a
// parked reserver, which would admit a submitter the bound should block
// (and let the window run above its bound indefinitely under pressure).
// Only once the overdraft is repaid may a start admit the reserver.
func TestShardedOverdrawBlocksHandOff(t *testing.T) {
	w := New(KindSharded, 2, 2)
	// A dependency cascade readies 4 unreserved tasks: open=4, balance=-2.
	w.Entered(4)
	admitted := make(chan struct{})
	go func() {
		w.Reserve(0, nil)
		w.EnteredReserved()
		close(admitted)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for w.Stats().Parks < 1 {
		if time.Now().After(deadline) {
			t.Fatal("reserver did not park against the overdrawn window")
		}
		runtime.Gosched()
	}
	// Two starts repay the overdraft (balance -2 → 0, open 4 → 2 = limit);
	// neither may admit the parked reserver.
	w.Started(0)
	w.Started(0)
	select {
	case <-admitted:
		t.Fatal("reserver admitted while occupancy was above the bound")
	case <-time.After(50 * time.Millisecond):
	}
	// With the overdraft repaid, the next start frees a real slot.
	w.Started(0)
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("reserver not admitted after the overdraft was repaid")
	}
	// Retire the last cascade entry and the reserver's own entry.
	w.Started(0)
	w.Started(0)
	if got := w.Open(); got != 0 {
		t.Errorf("Open() = %d, want 0", got)
	}
}

// recordingYielder counts the token round-trips of parked reservers.
type recordingYielder struct {
	yields, acquires atomic.Int64
}

func (y *recordingYielder) Yield(worker int) { y.yields.Add(1) }
func (y *recordingYielder) Acquire() int     { y.acquires.Add(1); return 0 }

// TestYielderRoundTrip checks a parked reserver yields its worker token
// exactly once and reacquires exactly once, and that fast-path reserves
// perform no round-trip at all.
func TestYielderRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindLocked, KindSharded} {
		t.Run(kind.String(), func(t *testing.T) {
			w := New(kind, 1, 2)
			y := &recordingYielder{}
			if _, prepaid := w.Reserve(0, y); prepaid {
				w.EnteredReserved()
			} else {
				w.Entered(1)
			}
			if y.yields.Load() != 0 || y.acquires.Load() != 0 {
				t.Fatal("fast-path Reserve performed a token round-trip")
			}
			done := make(chan struct{})
			go func() {
				w.Reserve(1, y)
				close(done)
			}()
			time.Sleep(20 * time.Millisecond)
			w.Started(0)
			<-done
			if y.yields.Load() != 1 || y.acquires.Load() != 1 {
				t.Errorf("parked Reserve: %d yields, %d acquires; want 1 and 1",
					y.yields.Load(), y.acquires.Load())
			}
		})
	}
}

// TestShardedBatchBorrow checks the token-bucket amortization: a worker's
// second reserve should be served from its credit cache, not the global
// balance.
func TestShardedBatchBorrow(t *testing.T) {
	w := NewSharded(64, 2).(*sharded)
	w.Reserve(0, nil)
	if got := w.Stats().Borrows; got != 1 {
		t.Fatalf("after first reserve: %d borrows, want 1", got)
	}
	if got := w.shards[0].cache.Load(); got != w.batch-1 {
		t.Fatalf("cache holds %d credits after borrow, want %d", got, w.batch-1)
	}
	w.Reserve(0, nil)
	if got := w.Stats().Borrows; got != 1 {
		t.Errorf("second reserve borrowed again (%d borrows), want cache hit", got)
	}
}

// TestShardedOverdraftRepaidBeforeCaching is the regression test for the
// persistent-overdraft bug: a credit returned while the balance is
// overdrawn (cascade entries pushed it negative) must repay the balance,
// not land in a worker cache — a cached credit would admit a reserver
// while occupancy is still at the bound, and the overdraft would persist
// through cache/reserve churn, permanently widening the window.
func TestShardedOverdraftRepaidBeforeCaching(t *testing.T) {
	const limit = 4
	w := NewSharded(limit, 2).(*sharded)
	w.Entered(6) // cascade overdraw: open=6, balance=-2
	w.Started(0)
	w.Started(0) // open=4 (at the bound); both credits must repay the balance
	if got := w.balance.Load(); got != 0 {
		t.Fatalf("balance = %d after repayment, want 0", got)
	}
	for i := range w.shards {
		if c := w.shards[i].cache.Load(); c != 0 {
			t.Fatalf("shard %d cached %d credits while occupancy is at the bound", i, c)
		}
	}
	// A reserver must now block: the window is exactly full.
	admitted := make(chan struct{})
	go func() {
		w.Reserve(0, nil)
		w.EnteredReserved()
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("reserver admitted while occupancy is at the bound")
	case <-time.After(50 * time.Millisecond):
	}
	w.Started(1) // open=3: frees a real slot, wakes the reserver
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("reserver not admitted after a slot freed")
	}
	for w.Open() > 0 {
		w.Started(0)
	}
}

// TestShardedStealFromCache checks a reserver with an empty cache and
// empty balance can take a credit cached by another worker.
func TestShardedStealFromCache(t *testing.T) {
	w := NewSharded(4, 2).(*sharded)
	// Worker 0 borrows the whole balance into its cache (batch = 1 credit
	// held + cache), then drains the balance.
	for w.balance.Load() > 0 {
		w.Reserve(0, nil)
		w.EnteredReserved()
	}
	// Return one credit to worker 0's cache.
	w.Started(0)
	if w.shards[0].cache.Load() == 0 {
		t.Skip("credit went to the balance; steal path not exercised")
	}
	w.Reserve(1, nil)
	if got := w.Stats().Steals; got == 0 {
		t.Error("reserver with empty cache and balance did not steal")
	}
}
