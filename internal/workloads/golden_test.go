package workloads

import (
	"fmt"
	"testing"

	nanos "repro"
)

// Golden virtual-mode makespans. Virtual execution is deterministic, so
// these pin the combined semantics of the dependency engine (linking,
// weakwait hand-over, weak propagation) and the virtual scheduler (FIFO
// dispatch, hand-off, arrival times) against accidental change. A diff
// here is not necessarily a bug — an intentional semantic or scheduling
// change legitimately moves the numbers — but it must be reviewed and the
// constants re-recorded, and the *orderings* asserted at the bottom must
// always survive.
//
// The makespans are asserted under BOTH dependency engines: the global row
// pins the original goldens (recorded when virtual mode defaulted to the
// global engine), and the sharded row is the re-recording for the flip of
// the virtual-mode default to the sharded engine. The re-recording found
// the sharded engine's ready ordering reproduces the global goldens
// exactly for every workload here, which is why a single constants table
// serves both rows — if a future change splits them, give each engine its
// own table.
func TestGoldenVirtualMakespans(t *testing.T) {
	engines := []nanos.EngineKind{nanos.EngineGlobal, nanos.EngineSharded}

	axpy := map[AxpyVariant]int64{
		AxpyNestWeakRelease: 8385,
		AxpyNestWeak:        8385,
		AxpyNestDepend:      8724,
		AxpyFlatDepend:      8320,
		AxpyFlatTaskwait:    8724,
	}
	gs := map[GSVariant]int64{
		GSNestWeak:        16384,
		GSNestWeakRelease: 16384,
		GSFlatDepend:      13312,
		GSNestDepend:      28672,
	}
	chol := map[CholVariant]int64{
		CholNestWeak:   2271914,
		CholFlatDepend: 2271914,
		CholNestDepend: 2446676,
	}

	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			axpyGot := map[AxpyVariant]int64{}
			for _, v := range AxpyVariants {
				res, err := RunAxpy(Mode{Workers: 8, Virtual: true, SubmitCost: 16, Engine: eng}, v,
					AxpyParams{N: 1 << 14, Calls: 4, TaskSize: 1 << 11, Alpha: 1, Compute: false})
				if err != nil {
					t.Fatal(err)
				}
				axpyGot[v] = res.VirtualTime
				if res.VirtualTime != axpy[v] {
					t.Errorf("axpy %s makespan = %d, golden %d", v, res.VirtualTime, axpy[v])
				}
			}

			gsGot := map[GSVariant]int64{}
			for _, v := range GSVariants {
				res, err := RunGS(Mode{Workers: 8, Virtual: true, Engine: eng}, v,
					GSParams{N: 128, TS: 32, Iters: 4, Compute: false})
				if err != nil {
					t.Fatal(err)
				}
				gsGot[v] = res.VirtualTime
				if res.VirtualTime != gs[v] {
					t.Errorf("gs %s makespan = %d, golden %d", v, res.VirtualTime, gs[v])
				}
			}

			for _, v := range CholVariants {
				res, err := RunCholesky(Mode{Workers: 8, Virtual: true, Engine: eng}, v,
					CholParams{N: 256, TS: 64, Seed: 1, Compute: false})
				if err != nil {
					t.Fatal(err)
				}
				if res.VirtualTime != chol[v] {
					t.Errorf("cholesky %s makespan = %d, golden %d", v, res.VirtualTime, chol[v])
				}
			}

			// The orderings that must hold regardless of the exact
			// constants: the weak variants never lose to nest-depend, and
			// nest-weak tracks flat-depend within a small factor.
			if axpyGot[AxpyNestWeak] > axpyGot[AxpyNestDepend] {
				t.Error(orderErr("axpy", "nest-weak", axpyGot[AxpyNestWeak], "nest-depend", axpyGot[AxpyNestDepend]))
			}
			if gsGot[GSNestWeak] > gsGot[GSNestDepend] {
				t.Error(orderErr("gs", "nest-weak", gsGot[GSNestWeak], "nest-depend", gsGot[GSNestDepend]))
			}
			if f := float64(gsGot[GSNestWeak]) / float64(gsGot[GSFlatDepend]); f > 1.5 {
				t.Errorf("gs nest-weak %.2fx slower than flat-depend", f)
			}
		})
	}
}

func orderErr(bench, a string, av int64, b string, bv int64) string {
	return fmt.Sprintf("%s: %s (%d) slower than %s (%d); the paper's ordering is violated",
		bench, a, av, b, bv)
}

// TestGoldenEngineSchedulerMatrix runs the three compute-validating
// workloads (cholesky, sparselu, sortsum) under both dependency engines ×
// every central-queue policy, in real mode with computation enabled, so
// each run's numerical result is checked against the sequential oracle.
// This is the workload-level completion of the differential tests in
// internal/deps: whatever the engine implementation and dispatch order,
// the dependency semantics must produce oracle-identical numerics.
func TestGoldenEngineSchedulerMatrix(t *testing.T) {
	engines := []nanos.EngineKind{nanos.EngineGlobal, nanos.EngineSharded}
	policies := []struct {
		name   string
		policy nanos.Policy
	}{
		{"fifo", nanos.FIFO},
		{"lifo", nanos.LIFO},
		{"priority", nanos.Priority},
	}
	workers := 8
	if testing.Short() {
		workers = 4
	}
	for _, eng := range engines {
		for _, pol := range policies {
			// ReadyPool is forced central so each row really exercises the
			// named policy (under PoolAuto, the FIFO default resolves to
			// the sharded stealing pool, covered by TestGoldenEnginePools).
			mode := Mode{Workers: workers, Engine: eng, Policy: pol.policy,
				ReadyPool: nanos.PoolCentral, Debug: true}
			t.Run(fmt.Sprintf("%s/%s", eng, pol.name), func(t *testing.T) {
				for _, v := range CholVariants {
					res, err := RunCholesky(mode, v, CholParams{N: 128, TS: 32, Seed: 7, Compute: true})
					if err != nil {
						t.Fatalf("cholesky %s: %v", v, err)
					}
					if st := res.Runtime.DepStats(); st.Releases < st.Fragments {
						t.Fatalf("cholesky %s: %d fragments, %d releases (leak)", v, st.Fragments, st.Releases)
					}
				}
				for _, v := range SparseLUVariants {
					res, _, err := RunSparseLU(mode, v, SparseLUParams{B: 6, TS: 16, Density: 0.5, Seed: 7, Compute: true})
					if err != nil {
						t.Fatalf("sparselu %s: %v", v, err)
					}
					if st := res.Runtime.DepStats(); st.Releases < st.Fragments {
						t.Fatalf("sparselu %s: %d fragments, %d releases (leak)", v, st.Fragments, st.Releases)
					}
				}
				for _, v := range SortVariants {
					res, err := RunSortSum(mode, v, SortParams{N: 1 << 13, TS: 1 << 8, Seed: 7})
					if err != nil {
						t.Fatalf("sortsum %s: %v", v, err)
					}
					if st := res.Runtime.DepStats(); st.Releases < st.Fragments {
						t.Fatalf("sortsum %s: %d fragments, %d releases (leak)", v, st.Fragments, st.Releases)
					}
				}
			})
		}
	}
}

// TestGoldenEnginePools covers the remaining ready pools: both engines
// under the sharded work-stealing deques (the real-mode default), the
// sharded central queue, and the single-lock stealing reference,
// oracle-validated as above.
func TestGoldenEnginePools(t *testing.T) {
	pools := []nanos.PoolKind{nanos.PoolStealing, nanos.PoolShardedCentral, nanos.PoolLockedStealing}
	for _, eng := range []nanos.EngineKind{nanos.EngineGlobal, nanos.EngineSharded} {
		for _, pool := range pools {
			mode := Mode{Workers: 8, Engine: eng, ReadyPool: pool, Debug: true}
			t.Run(fmt.Sprintf("%s/%s", eng, pool), func(t *testing.T) {
				if _, err := RunCholesky(mode, CholNestWeak, CholParams{N: 128, TS: 32, Seed: 7, Compute: true}); err != nil {
					t.Fatalf("cholesky: %v", err)
				}
				if _, _, err := RunSparseLU(mode, LUNestWeak, SparseLUParams{B: 6, TS: 16, Density: 0.5, Seed: 7, Compute: true}); err != nil {
					t.Fatalf("sparselu: %v", err)
				}
				if _, err := RunSortSum(mode, SortWeak, SortParams{N: 1 << 13, TS: 1 << 8, Seed: 7}); err != nil {
					t.Fatalf("sortsum: %v", err)
				}
			})
		}
	}
}
