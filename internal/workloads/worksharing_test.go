package workloads

import (
	"testing"

	nanos "repro"
)

// Worksharing workload variants: both must validate against their
// sequential references (RunAxpy/RunGS do that internally when Compute is
// set) under every strategy, and the chunked strategy must actually
// collapse the task count to one task per region.

func TestAxpyWorksharingAllStrategies(t *testing.T) {
	p := axpyParams()
	for _, ws := range []nanos.WorksharingKind{
		nanos.WorksharingAuto, nanos.WorksharingExpand, nanos.WorksharingChunked,
	} {
		for _, workers := range []int{1, 4} {
			res, err := RunAxpy(Mode{Workers: workers, Worksharing: ws, Debug: true}, AxpyWorksharing, p)
			if err != nil {
				t.Fatalf("ws=%v w=%d: %v", ws, workers, err)
			}
			chunksPerCall := (p.N + p.TaskSize - 1) / p.TaskSize
			want := int64(p.Calls) // one task per call
			if ws == nanos.WorksharingExpand {
				want = int64(p.Calls) * chunksPerCall
			}
			if res.Tasks != want {
				t.Fatalf("ws=%v w=%d: %d tasks, want %d", ws, workers, res.Tasks, want)
			}
			if res.Flops != int64(p.Calls)*2*p.N {
				t.Fatalf("ws=%v w=%d: %d flops accounted, want %d", ws, workers, res.Flops, int64(p.Calls)*2*p.N)
			}
		}
	}
}

func TestAxpyWorksharingVirtualMode(t *testing.T) {
	res, err := RunAxpy(Mode{Workers: 8, Virtual: true}, AxpyWorksharing, axpyParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualTime == 0 {
		t.Fatal("virtual time not measured")
	}
}

func TestGSWsWavefrontValidates(t *testing.T) {
	p := gsParams()
	for _, ws := range []nanos.WorksharingKind{nanos.WorksharingChunked, nanos.WorksharingExpand} {
		for _, workers := range []int{1, 4} {
			res, err := RunGS(Mode{Workers: workers, Worksharing: ws, Debug: true}, GSWsWavefront, p)
			if err != nil {
				t.Fatalf("ws=%v w=%d: %v", ws, workers, err)
			}
			if ws == nanos.WorksharingChunked {
				// One task per anti-diagonal per sweep: b blocks per side
				// gives 2b-1 diagonals.
				b := p.N / p.TS
				want := int64(p.Iters) * (2*b - 1)
				if res.Tasks != want {
					t.Fatalf("w=%d: %d tasks, want %d (one per diagonal per sweep)", workers, res.Tasks, want)
				}
			}
		}
	}
	if _, err := RunGS(Mode{Workers: 8, Virtual: true}, GSWsWavefront, p); err != nil {
		t.Fatal(err)
	}
}
