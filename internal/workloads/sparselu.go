package workloads

import (
	"math/rand"
	"time"

	nanos "repro"
)

// SparseLU — the blocked sparse LU factorization of the Barcelona OpenMP
// Tasks Suite, the other canonical OmpSs nesting-with-dependencies
// workload. A B×B block matrix with NULL blocks is factored without
// pivoting:
//
//	for k = 0..B-1:
//	    lu0(A[k][k])
//	    for j > k, A[k][j] != NULL:  fwd(A[k][k], A[k][j])
//	    for i > k, A[i][k] != NULL:  bdiv(A[k][k], A[i][k])
//	    for i,j > k, A[i][k] != NULL && A[k][j] != NULL:
//	        allocate A[i][j] if NULL (fill-in)
//	        bmod(A[i][k], A[k][j], A[i][j])
//
// Unlike Cholesky the task graph is *data-dependent*: which kernels exist
// depends on the sparsity pattern, including fill-in blocks that earlier
// steps create. A sequential symbolic phase (standard in sparse solvers)
// materializes the fill-in pattern first, so the panel tasks of the nested
// variants can generate their kernels concurrently from an immutable
// structure; the numeric work is then fully task-parallel.
type SparseLUVariant string

const (
	// LUFlatDepend: the root generates every kernel task, block deps.
	LUFlatDepend SparseLUVariant = "flat-depend"
	// LUNestWeak: one weakwait panel task per k-step with weakinout over
	// the trailing blocks; the panel generates its kernels (and allocates
	// the fill-ins it discovers).
	LUNestWeak SparseLUVariant = "nest-weak"
	// LUNestDepend: strong panels + taskwait; steps serialize.
	LUNestDepend SparseLUVariant = "nest-depend"
)

// SparseLUVariants lists the SparseLU variants.
var SparseLUVariants = []SparseLUVariant{LUNestWeak, LUFlatDepend, LUNestDepend}

// SparseLUParams sizes the benchmark: a B×B grid of TS×TS blocks with a
// deterministic sparsity pattern (diagonal always present; off-diagonal
// block (i,j) present with probability Density).
type SparseLUParams struct {
	B       int64
	TS      int64
	Density float64
	Seed    int64
	// Compute performs the real factorization and validates against the
	// sequential reference.
	Compute bool
}

// luMatrix is the blocked sparse matrix: blocks[i*B+j] == nil means NULL.
type luMatrix struct {
	b, ts  int64
	blocks [][]float64
}

func (m *luMatrix) at(i, j int64) []float64     { return m.blocks[i*m.b+j] }
func (m *luMatrix) set(i, j int64, v []float64) { m.blocks[i*m.b+j] = v }
func (m *luMatrix) alloc(i, j int64) []float64 {
	if m.at(i, j) == nil {
		m.set(i, j, make([]float64, m.ts*m.ts))
	}
	return m.at(i, j)
}

// newLUMatrix builds the deterministic sparse input: diagonally dominant
// diagonal blocks, random sparse off-diagonals.
func newLUMatrix(p SparseLUParams) *luMatrix {
	m := &luMatrix{b: p.B, ts: p.TS, blocks: make([][]float64, p.B*p.B)}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := int64(0); i < p.B; i++ {
		for j := int64(0); j < p.B; j++ {
			if i != j && rng.Float64() >= p.Density {
				continue
			}
			blk := make([]float64, p.TS*p.TS)
			for e := range blk {
				blk[e] = 2*rng.Float64() - 1
			}
			if i == j {
				for d := int64(0); d < p.TS; d++ {
					blk[d*p.TS+d] += float64(p.TS * p.B) // dominance: no zero pivots
				}
			}
			m.set(i, j, blk)
		}
	}
	return m
}

// luKernelLU0 factors the diagonal block in place (LU, no pivoting).
func luKernelLU0(a []float64, ts int64) {
	for k := int64(0); k < ts; k++ {
		for i := k + 1; i < ts; i++ {
			a[i*ts+k] /= a[k*ts+k]
			for j := k + 1; j < ts; j++ {
				a[i*ts+j] -= a[i*ts+k] * a[k*ts+j]
			}
		}
	}
}

// luKernelFwd applies L⁻¹ (unit lower of diag) to a: a := L⁻¹·a.
func luKernelFwd(diag, a []float64, ts int64) {
	for k := int64(0); k < ts; k++ {
		for i := k + 1; i < ts; i++ {
			l := diag[i*ts+k]
			for j := int64(0); j < ts; j++ {
				a[i*ts+j] -= l * a[k*ts+j]
			}
		}
	}
}

// luKernelBdiv applies U⁻¹ (upper of diag) from the right: a := a·U⁻¹.
func luKernelBdiv(diag, a []float64, ts int64) {
	for k := int64(0); k < ts; k++ {
		d := diag[k*ts+k]
		for i := int64(0); i < ts; i++ {
			a[i*ts+k] /= d
		}
		for j := k + 1; j < ts; j++ {
			u := diag[k*ts+j]
			for i := int64(0); i < ts; i++ {
				a[i*ts+j] -= a[i*ts+k] * u
			}
		}
	}
}

// luKernelBmod updates an inner block: inner -= row·col.
func luKernelBmod(row, col, inner []float64, ts int64) {
	for i := int64(0); i < ts; i++ {
		for k := int64(0); k < ts; k++ {
			r := row[i*ts+k]
			if r == 0 {
				continue
			}
			for j := int64(0); j < ts; j++ {
				inner[i*ts+j] -= r * col[k*ts+j]
			}
		}
	}
}

// luSymbolic materializes every fill-in block the factorization will
// touch, replicating the sequential fill-in recurrence on the pattern
// only. After it, the block structure is immutable.
func luSymbolic(m *luMatrix) {
	for k := int64(0); k < m.b; k++ {
		for i := k + 1; i < m.b; i++ {
			if m.at(i, k) == nil {
				continue
			}
			for j := k + 1; j < m.b; j++ {
				if m.at(k, j) != nil {
					m.alloc(i, j)
				}
			}
		}
	}
}

// luSequential is the reference factorization (mutates m).
func luSequential(m *luMatrix) {
	b, ts := m.b, m.ts
	for k := int64(0); k < b; k++ {
		luKernelLU0(m.at(k, k), ts)
		for j := k + 1; j < b; j++ {
			if m.at(k, j) != nil {
				luKernelFwd(m.at(k, k), m.at(k, j), ts)
			}
		}
		for i := k + 1; i < b; i++ {
			if m.at(i, k) != nil {
				luKernelBdiv(m.at(k, k), m.at(i, k), ts)
			}
		}
		for i := k + 1; i < b; i++ {
			if m.at(i, k) == nil {
				continue
			}
			for j := k + 1; j < b; j++ {
				if m.at(k, j) == nil {
					continue
				}
				luKernelBmod(m.at(i, k), m.at(k, j), m.alloc(i, j), ts)
			}
		}
	}
}

// RunSparseLU executes one SparseLU variant and returns its measurements
// plus the number of fill-in blocks allocated.
func RunSparseLU(mode Mode, variant SparseLUVariant, p SparseLUParams) (Result, int64, error) {
	if p.B <= 0 || p.TS <= 0 || p.Density < 0 || p.Density > 1 {
		return Result{}, 0, errf("sparselu: bad params %+v", p)
	}
	// Graph-only runs still need the sparsity pattern (it decides the task
	// set); only the kernel bodies are skipped.
	m := newLUMatrix(p)
	before := int64(0)
	for _, blk := range m.blocks {
		if blk != nil {
			before++
		}
	}
	// Symbolic phase: all fill-in materializes here, so the concurrent
	// panel generators read an immutable structure.
	luSymbolic(m)

	b, ts := p.B, p.TS
	bs := ts * ts
	kflops := ts * ts * ts // uniform kernel cost/flop approximation

	rt := nanos.New(mode.config())
	ad := rt.NewData("A", b*b*bs, 8)
	blkIv := func(i, j int64) nanos.Interval {
		off := (i*b + j) * bs
		return nanos.Iv(off, off+bs)
	}
	run := func(f func()) func(*nanos.TaskContext) {
		return func(*nanos.TaskContext) {
			if p.Compute {
				f()
			}
		}
	}

	// submitStep generates the kernels of step k from the post-symbolic
	// pattern. Fill-in in row/column k only ever comes from steps before k,
	// so the pattern step k sees is exactly what a dynamic generation would
	// have seen — the task set and arithmetic match the reference.
	submitStep := func(tc *nanos.TaskContext, k int64) {
		tc.Submit(nanos.TaskSpec{
			Label: "lu0", Kind: "lu0", Cost: kflops, Flops: kflops,
			Deps: []nanos.Dep{nanos.DInOut(ad, blkIv(k, k))},
			Body: run(func() { luKernelLU0(m.at(k, k), ts) }),
		})
		for j := k + 1; j < b; j++ {
			if m.at(k, j) == nil {
				continue
			}
			j := j
			tc.Submit(nanos.TaskSpec{
				Label: "fwd", Kind: "fwd", Cost: kflops, Flops: kflops,
				Deps: []nanos.Dep{nanos.DIn(ad, blkIv(k, k)), nanos.DInOut(ad, blkIv(k, j))},
				Body: run(func() { luKernelFwd(m.at(k, k), m.at(k, j), ts) }),
			})
		}
		for i := k + 1; i < b; i++ {
			if m.at(i, k) == nil {
				continue
			}
			i := i
			tc.Submit(nanos.TaskSpec{
				Label: "bdiv", Kind: "bdiv", Cost: kflops, Flops: kflops,
				Deps: []nanos.Dep{nanos.DIn(ad, blkIv(k, k)), nanos.DInOut(ad, blkIv(i, k))},
				Body: run(func() { luKernelBdiv(m.at(k, k), m.at(i, k), ts) }),
			})
		}
		for i := k + 1; i < b; i++ {
			if m.at(i, k) == nil {
				continue
			}
			i := i
			for j := k + 1; j < b; j++ {
				if m.at(k, j) == nil {
					continue
				}
				j := j
				tc.Submit(nanos.TaskSpec{
					Label: "bmod", Kind: "bmod", Cost: kflops, Flops: 2 * kflops,
					Deps: []nanos.Dep{
						nanos.DIn(ad, blkIv(i, k)), nanos.DIn(ad, blkIv(k, j)),
						nanos.DInOut(ad, blkIv(i, j)),
					},
					Body: run(func() { luKernelBmod(m.at(i, k), m.at(k, j), m.at(i, j), ts) }),
				})
			}
		}
	}
	// stepRegion covers everything step k may touch: the trailing square
	// [k,b)×[k,b). One contiguous interval per row.
	stepRegion := func(k int64) []nanos.Interval {
		ivs := make([]nanos.Interval, 0, b-k)
		for i := k; i < b; i++ {
			ivs = append(ivs, nanos.Iv((i*b+k)*bs, (i*b+b)*bs))
		}
		return ivs
	}

	startT := time.Now()
	switch variant {
	case LUFlatDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				submitStep(tc, k)
			}
		})
	case LUNestWeak:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				k := k
				tc.Submit(nanos.TaskSpec{
					Label: "panel", Kind: "panel",
					WeakWait: true,
					Touches:  []nanos.Dep{},
					Deps:     []nanos.Dep{nanos.DWeakInOut(ad, stepRegion(k)...)},
					Body:     func(tc *nanos.TaskContext) { submitStep(tc, k) },
				})
			}
		})
	case LUNestDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				k := k
				tc.Submit(nanos.TaskSpec{
					Label: "panel", Kind: "panel",
					Touches: []nanos.Dep{},
					Deps:    []nanos.Dep{nanos.DInOut(ad, stepRegion(k)...)},
					Body: func(tc *nanos.TaskContext) {
						submitStep(tc, k)
						if !mode.Virtual {
							tc.Taskwait()
						}
					},
				})
			}
		})
	default:
		return Result{}, 0, errf("sparselu: unknown variant %q", variant)
	}

	res := measure(rt, startT)
	var after int64
	for _, blk := range m.blocks {
		if blk != nil {
			after++
		}
	}
	fillIns := after - before

	if p.Compute {
		ref := newLUMatrix(p)
		luSequential(ref)
		for idx := range ref.blocks {
			rb, gb := ref.blocks[idx], m.blocks[idx]
			if (rb == nil) != (gb == nil) {
				return res, fillIns, errf("sparselu %s: block %d presence mismatch", variant, idx)
			}
			for e := range rb {
				if rb[e] != gb[e] {
					return res, fillIns, errf("sparselu %s: block %d elem %d = %v, want %v",
						variant, idx, e, gb[e], rb[e])
				}
			}
		}
	}
	return res, fillIns, nil
}
