package workloads

import (
	"math"
	"math/rand"
	"time"

	nanos "repro"
)

// Blocked Cholesky factorization — the dense linear algebra workload whose
// scheduling the paper's introduction motivates with [3] (Kurzak et al.)
// and the canonical OmpSs/Nanos6 demonstration of task nesting with
// dependencies. A symmetric positive-definite N×N matrix, stored as B×B
// blocks of TS×TS elements, is factored in place into its lower Cholesky
// factor by a right-looking algorithm:
//
//	for k = 0..B-1:
//	    potrf(A[k][k])
//	    for i = k+1..B-1:  trsm(A[k][k], A[i][k])
//	    for i = k+1..B-1:
//	        syrk(A[i][k], A[i][i])
//	        for j = k+1..i-1:  gemm(A[i][k], A[j][k], A[i][j])
//
// The nested variants wrap each k-step in a panel task. Because step k's
// trailing-matrix region strictly contains step k+1's, the weak variant
// exercises partially overlapping weak accesses across nesting levels — the
// combination of §VI and §VII.

// CholVariant names one implementation of the Cholesky benchmark.
type CholVariant string

const (
	// CholFlatDepend: all kernel tasks in the root domain, block-level
	// dependencies.
	CholFlatDepend CholVariant = "flat-depend"
	// CholNestWeak: one panel task per k-step with weakinout over the
	// blocks the step touches and weakwait; kernels as subtasks. Panels
	// instantiate in parallel and kernels of different steps interleave
	// through the fine-grained cross-level dependencies.
	CholNestWeak CholVariant = "nest-weak"
	// CholNestDepend: panel tasks with strong inout over the same region
	// and a taskwait — steps serialize, as §III predicts.
	CholNestDepend CholVariant = "nest-depend"
)

// CholVariants lists the Cholesky variants.
var CholVariants = []CholVariant{CholNestWeak, CholFlatDepend, CholNestDepend}

// CholParams sizes the Cholesky benchmark: an N×N matrix in TS×TS blocks
// (N must be a multiple of TS).
type CholParams struct {
	N  int64
	TS int64
	// Seed generates the SPD input deterministically.
	Seed int64
	// Compute performs the real factorization and validates against a
	// sequential reference; when false only the task graph is exercised
	// (virtual sweeps).
	Compute bool
}

// Kernel flop counts (the standard counts, used for both the virtual-mode
// cost and the GFlop/s metric).
func cholPotrfFlops(ts int64) int64 { return ts * ts * ts / 3 }
func cholTrsmFlops(ts int64) int64  { return ts * ts * ts }
func cholSyrkFlops(ts int64) int64  { return ts * ts * ts }
func cholGemmFlops(ts int64) int64  { return 2 * ts * ts * ts }

// block addressing: block (i,j) of a B×B block matrix occupies the
// contiguous interval [(i*B+j)·TS², (i*B+j+1)·TS²).

// cholPotrf factors block a (TS×TS, row-major) in place into its lower
// Cholesky factor; the strict upper triangle is left untouched.
func cholPotrf(a []float64, ts int64) {
	for c := int64(0); c < ts; c++ {
		d := a[c*ts+c]
		for p := int64(0); p < c; p++ {
			d -= a[c*ts+p] * a[c*ts+p]
		}
		d = math.Sqrt(d)
		a[c*ts+c] = d
		for r := c + 1; r < ts; r++ {
			s := a[r*ts+c]
			for p := int64(0); p < c; p++ {
				s -= a[r*ts+p] * a[c*ts+p]
			}
			a[r*ts+c] = s / d
		}
	}
}

// cholTrsm solves X·Lᵀ = A in place: a := a · l⁻ᵀ with l the lower factor
// of the diagonal block.
func cholTrsm(l, a []float64, ts int64) {
	for r := int64(0); r < ts; r++ {
		for c := int64(0); c < ts; c++ {
			s := a[r*ts+c]
			for p := int64(0); p < c; p++ {
				s -= a[r*ts+p] * l[c*ts+p]
			}
			a[r*ts+c] = s / l[c*ts+c]
		}
	}
}

// cholSyrk updates the lower triangle of the diagonal block: d -= x·xᵀ.
func cholSyrk(x, d []float64, ts int64) {
	for r := int64(0); r < ts; r++ {
		for c := int64(0); c <= r; c++ {
			s := d[r*ts+c]
			for p := int64(0); p < ts; p++ {
				s -= x[r*ts+p] * x[c*ts+p]
			}
			d[r*ts+c] = s
		}
	}
}

// cholGemm updates an off-diagonal trailing block: c -= x·yᵀ.
func cholGemm(x, y, cblk []float64, ts int64) {
	for r := int64(0); r < ts; r++ {
		for cc := int64(0); cc < ts; cc++ {
			s := cblk[r*ts+cc]
			for p := int64(0); p < ts; p++ {
				s -= x[r*ts+p] * y[cc*ts+p]
			}
			cblk[r*ts+cc] = s
		}
	}
}

// cholInit fills a with a deterministic SPD matrix in block layout:
// symmetric entries in (-1, 1) plus N on the diagonal (strict diagonal
// dominance implies positive definiteness).
func cholInit(a []float64, n, ts, seed int64) {
	b := n / ts
	rng := rand.New(rand.NewSource(seed))
	at := func(r, c int64) *float64 {
		bi, bj := r/ts, c/ts
		return &a[(bi*b+bj)*ts*ts+(r%ts)*ts+(c%ts)]
	}
	for r := int64(0); r < n; r++ {
		for c := int64(0); c <= r; c++ {
			v := 2*rng.Float64() - 1
			if r == c {
				v = math.Abs(v) + float64(n)
			}
			*at(r, c) = v
			*at(c, r) = v
		}
	}
}

// cholSequential runs the reference blocked factorization in place.
func cholSequential(a []float64, n, ts int64) {
	b := n / ts
	blk := func(i, j int64) []float64 {
		off := (i*b + j) * ts * ts
		return a[off : off+ts*ts]
	}
	for k := int64(0); k < b; k++ {
		cholPotrf(blk(k, k), ts)
		for i := k + 1; i < b; i++ {
			cholTrsm(blk(k, k), blk(i, k), ts)
		}
		for i := k + 1; i < b; i++ {
			cholSyrk(blk(i, k), blk(i, i), ts)
			for j := k + 1; j < i; j++ {
				cholGemm(blk(i, k), blk(j, k), blk(i, j), ts)
			}
		}
	}
}

// RunCholesky executes one Cholesky variant and returns its measurements.
func RunCholesky(mode Mode, variant CholVariant, p CholParams) (Result, error) {
	if p.N <= 0 || p.TS <= 0 || p.N%p.TS != 0 {
		return Result{}, errf("cholesky: bad params %+v (N must be a multiple of TS)", p)
	}
	b := p.N / p.TS
	bs := p.TS * p.TS // block elements
	total := b * b * bs

	rt := nanos.New(mode.config())
	ad := rt.NewData("A", total, 8)

	var a []float64
	if p.Compute {
		a = make([]float64, total)
		cholInit(a, p.N, p.TS, p.Seed)
	}
	blkIv := func(i, j int64) nanos.Interval {
		off := (i*b + j) * bs
		return nanos.Iv(off, off+bs)
	}
	blk := func(i, j int64) []float64 {
		if !p.Compute {
			return nil
		}
		off := (i*b + j) * bs
		return a[off : off+bs]
	}

	// Kernel task constructors.
	potrf := func(k int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "potrf", Kind: "potrf",
			Cost: cholPotrfFlops(p.TS), Flops: cholPotrfFlops(p.TS),
			Deps: []nanos.Dep{nanos.DInOut(ad, blkIv(k, k))},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					cholPotrf(blk(k, k), p.TS)
				}
			},
		}
	}
	trsm := func(k, i int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "trsm", Kind: "trsm",
			Cost: cholTrsmFlops(p.TS), Flops: cholTrsmFlops(p.TS),
			Deps: []nanos.Dep{nanos.DIn(ad, blkIv(k, k)), nanos.DInOut(ad, blkIv(i, k))},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					cholTrsm(blk(k, k), blk(i, k), p.TS)
				}
			},
		}
	}
	syrk := func(k, i int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "syrk", Kind: "syrk",
			Cost: cholSyrkFlops(p.TS), Flops: cholSyrkFlops(p.TS),
			Deps: []nanos.Dep{nanos.DIn(ad, blkIv(i, k)), nanos.DInOut(ad, blkIv(i, i))},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					cholSyrk(blk(i, k), blk(i, i), p.TS)
				}
			},
		}
	}
	gemm := func(k, i, j int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "gemm", Kind: "gemm",
			Cost: cholGemmFlops(p.TS), Flops: cholGemmFlops(p.TS),
			Deps: []nanos.Dep{
				nanos.DIn(ad, blkIv(i, k)), nanos.DIn(ad, blkIv(j, k)),
				nanos.DInOut(ad, blkIv(i, j)),
			},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					cholGemm(blk(i, k), blk(j, k), blk(i, j), p.TS)
				}
			},
		}
	}
	submitStep := func(tc *nanos.TaskContext, k int64) {
		tc.Submit(potrf(k))
		for i := k + 1; i < b; i++ {
			tc.Submit(trsm(k, i))
		}
		for i := k + 1; i < b; i++ {
			tc.Submit(syrk(k, i))
			for j := k + 1; j < i; j++ {
				tc.Submit(gemm(k, i, j))
			}
		}
	}
	// stepRegion is the set of blocks step k reads or writes: rows i ≥ k,
	// columns k..i (the lower-triangular trailing matrix). One contiguous
	// interval per block row.
	stepRegion := func(k int64) []nanos.Interval {
		ivs := make([]nanos.Interval, 0, b-k)
		for i := k; i < b; i++ {
			ivs = append(ivs, nanos.Iv((i*b+k)*bs, (i*b+i+1)*bs))
		}
		return ivs
	}

	startT := time.Now()
	switch variant {
	case CholFlatDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				submitStep(tc, k)
			}
		})

	case CholNestWeak:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				k := k
				tc.Submit(nanos.TaskSpec{
					Label: "panel", Kind: "panel",
					WeakWait: true,
					Touches:  []nanos.Dep{},
					Deps:     []nanos.Dep{nanos.DWeakInOut(ad, stepRegion(k)...)},
					Body:     func(tc *nanos.TaskContext) { submitStep(tc, k) },
				})
			}
		})

	case CholNestDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for k := int64(0); k < b; k++ {
				k := k
				tc.Submit(nanos.TaskSpec{
					Label: "panel", Kind: "panel",
					Touches: []nanos.Dep{},
					Deps:    []nanos.Dep{nanos.DInOut(ad, stepRegion(k)...)},
					Body: func(tc *nanos.TaskContext) {
						submitStep(tc, k)
						if !mode.Virtual {
							tc.Taskwait()
						}
					},
				})
			}
		})

	default:
		return Result{}, errf("cholesky: unknown variant %q", variant)
	}

	res := measure(rt, startT)
	if p.Compute {
		ref := make([]float64, total)
		cholInit(ref, p.N, p.TS, p.Seed)
		cholSequential(ref, p.N, p.TS)
		for i := range ref {
			if a[i] != ref[i] {
				return res, errf("cholesky %s: element %d = %v, want %v", variant, i, a[i], ref[i])
			}
		}
	}
	return res, nil
}
