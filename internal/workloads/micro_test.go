package workloads

import (
	"fmt"
	"testing"
)

func TestFibAllCutoffModes(t *testing.T) {
	for _, m := range []FibCutoffMode{FibCutoffSequential, FibCutoffFinal, FibCutoffNone} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/w%d", m, workers), func(t *testing.T) {
				res, v, err := RunFib(Mode{Workers: workers}, FibParams{N: 15, Cutoff: 8, Mode: m})
				if err != nil {
					t.Fatal(err)
				}
				if v != 610 {
					t.Fatalf("fib(15) = %d, want 610", v)
				}
				if res.Tasks == 0 {
					t.Error("no tasks recorded")
				}
			})
		}
	}
}

func TestFibVirtualMode(t *testing.T) {
	// The dependency-only formulation runs unchanged in virtual mode.
	res, v, err := RunFib(Mode{Workers: 8, Virtual: true}, FibParams{N: 12, Cutoff: 4, Mode: FibCutoffSequential})
	if err != nil {
		t.Fatal(err)
	}
	if v != 144 {
		t.Fatalf("fib(12) = %d, want 144", v)
	}
	if res.VirtualTime <= 0 {
		t.Error("no virtual makespan recorded")
	}
}

func TestFibCutoffReducesTaskCount(t *testing.T) {
	p := FibParams{N: 16, Cutoff: 8}
	p.Mode = FibCutoffNone
	none, _, err := RunFib(Mode{Workers: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Mode = FibCutoffSequential
	seq, _, err := RunFib(Mode{Workers: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Tasks >= none.Tasks {
		t.Errorf("sequential cutoff created %d tasks, full tasking %d; cutoff should create fewer",
			seq.Tasks, none.Tasks)
	}
	// The final cutoff still counts included tasks (they execute inline but
	// are tasks), so its count matches full tasking while its deferred
	// subset matches the sequential cutoff.
	p.Mode = FibCutoffFinal
	fin, _, err := RunFib(Mode{Workers: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Tasks != none.Tasks {
		t.Errorf("final cutoff counted %d tasks, want %d (inline tasks still count)",
			fin.Tasks, none.Tasks)
	}
}

func TestFibLintClean(t *testing.T) {
	res, _, err := RunFib(Mode{Workers: 4, Verify: true}, FibParams{N: 12, Cutoff: 4, Mode: FibCutoffNone})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Runtime.ViolationCount(); n != 0 {
		t.Errorf("%d lint violations: %v", n, res.Runtime.Violations())
	}
}

func TestNQueensCounts(t *testing.T) {
	// Known solution counts.
	want := map[int]int64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
	for n, w := range want {
		res, got, err := RunNQueens(Mode{Workers: 4}, NQueensParams{N: n, Depth: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("nqueens(%d) = %d, want %d", n, got, w)
		}
		if n >= 6 && res.Tasks == 0 {
			t.Error("no tasks recorded")
		}
	}
}

func TestNQueensDepthSweep(t *testing.T) {
	for depth := 0; depth <= 4; depth++ {
		_, got, err := RunNQueens(Mode{Workers: 8}, NQueensParams{N: 8, Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if got != 92 {
			t.Errorf("depth %d: nqueens(8) = %d, want 92", depth, got)
		}
	}
}

func TestMicroBadParams(t *testing.T) {
	if _, _, err := RunFib(Mode{Workers: 1}, FibParams{N: 99}); err == nil {
		t.Error("fib N out of range should fail")
	}
	if _, _, err := RunNQueens(Mode{Workers: 1}, NQueensParams{N: 0}); err == nil {
		t.Error("nqueens N out of range should fail")
	}
	if _, _, err := RunNQueens(Mode{Workers: 1, Virtual: true}, NQueensParams{N: 6, Depth: 1}); err == nil {
		t.Error("nqueens in virtual mode should fail")
	}
}
