package workloads

import (
	"testing"

	nanos "repro"
	"repro/internal/trace"
)

// Every variant of every benchmark validates its numerical result against a
// sequential reference inside Run*; these tests drive all of them in both
// execution modes and additionally check the structural claims of the paper
// (makespan orderings, phase overlap).

func axpyParams() AxpyParams {
	return AxpyParams{N: 1 << 12, Calls: 6, TaskSize: 1 << 9, Alpha: 1.5, Compute: true}
}

func TestAxpyAllVariantsRealMode(t *testing.T) {
	for _, v := range AxpyVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res, err := RunAxpy(Mode{Workers: 4}, v, axpyParams())
			if err != nil {
				t.Fatal(err)
			}
			if res.Tasks == 0 || res.Flops == 0 {
				t.Fatalf("missing measurements: %+v", res)
			}
		})
	}
}

func TestAxpyAllVariantsVirtualMode(t *testing.T) {
	p := axpyParams()
	for _, v := range AxpyVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res, err := RunAxpy(Mode{Workers: 8, Virtual: true}, v, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.VirtualTime == 0 {
				t.Fatal("virtual time not measured")
			}
		})
	}
}

// TestAxpyVirtualOrdering: the paper's headline ordering at high core
// counts — the weak variants pipeline calls, nest-depend serializes them.
func TestAxpyVirtualOrdering(t *testing.T) {
	p := AxpyParams{N: 1 << 14, Calls: 8, TaskSize: 1 << 10, Alpha: 1, Compute: false}
	mode := Mode{Workers: 16, Virtual: true}
	times := map[AxpyVariant]int64{}
	for _, v := range AxpyVariants {
		res, err := RunAxpy(mode, v, p)
		if err != nil {
			t.Fatal(err)
		}
		times[v] = res.VirtualTime
	}
	if times[AxpyNestWeak] > times[AxpyNestDepend] {
		t.Fatalf("nest-weak (%d) should not be slower than nest-depend (%d)",
			times[AxpyNestWeak], times[AxpyNestDepend])
	}
	if times[AxpyNestWeakRelease] > times[AxpyNestWeak] {
		t.Fatalf("release (%d) should not be slower than plain weakwait (%d)",
			times[AxpyNestWeakRelease], times[AxpyNestWeak])
	}
	// flat-depend uncovers the same dependencies as nest-weak.
	if times[AxpyFlatDepend] > times[AxpyNestDepend] {
		t.Fatalf("flat-depend (%d) should beat nest-depend (%d)",
			times[AxpyFlatDepend], times[AxpyNestDepend])
	}
}

func TestAxpyFeaturesTable(t *testing.T) {
	for _, v := range AxpyVariants {
		nested, outer, inner, sync := AxpyFeatures(v)
		if nested == "?" {
			t.Fatalf("missing feature row for %s", v)
		}
		_ = outer
		_ = inner
		_ = sync
	}
	if n, _, _, _ := AxpyFeatures(AxpyFlatDepend); n != "no" {
		t.Fatal("flat-depend is not nested")
	}
}

func TestAxpyBadParams(t *testing.T) {
	if _, err := RunAxpy(Mode{}, AxpyNestWeak, AxpyParams{}); err == nil {
		t.Fatal("expected error for zero params")
	}
	if _, err := RunAxpy(Mode{}, AxpyVariant("nope"), axpyParams()); err == nil {
		t.Fatal("expected error for unknown variant")
	}
}

func gsParams() GSParams {
	return GSParams{N: 64, TS: 16, Iters: 3, Compute: true}
}

func TestGSAllVariantsRealMode(t *testing.T) {
	for _, v := range GSVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res, err := RunGS(Mode{Workers: 4}, v, gsParams())
			if err != nil {
				t.Fatal(err)
			}
			if res.Tasks == 0 {
				t.Fatal("no tasks ran")
			}
		})
	}
}

func TestGSAllVariantsVirtualMode(t *testing.T) {
	for _, v := range GSVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			if _, err := RunGS(Mode{Workers: 8, Virtual: true}, v, gsParams()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGSReleaseByPanel(t *testing.T) {
	p := gsParams()
	p.ReleaseByPanel = true
	if _, err := RunGS(Mode{Workers: 4}, GSNestWeakRelease, p); err != nil {
		t.Fatal(err)
	}
}

// TestGSVirtualEffectiveParallelism: the Figure 6 shape — with plenty of
// cores, nest-weak exposes cross-iteration wavefronts while nest-depend is
// capped by a single iteration's parallelism.
func TestGSVirtualEffectiveParallelism(t *testing.T) {
	p := GSParams{N: 256, TS: 32, Iters: 8, Compute: false}
	mode := Mode{Workers: 16, Virtual: true}
	weak, err := RunGS(mode, GSNestWeak, p)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := RunGS(mode, GSNestDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := RunGS(mode, GSFlatDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	if weak.EffectiveParallelism <= dep.EffectiveParallelism {
		t.Fatalf("nest-weak EP %.2f should exceed nest-depend EP %.2f",
			weak.EffectiveParallelism, dep.EffectiveParallelism)
	}
	// nest-weak should be in the same league as flat-depend (the paper's
	// single-domain equivalence).
	if weak.EffectiveParallelism < 0.8*flat.EffectiveParallelism {
		t.Fatalf("nest-weak EP %.2f too far below flat-depend EP %.2f",
			weak.EffectiveParallelism, flat.EffectiveParallelism)
	}
}

func TestGSBadParams(t *testing.T) {
	if _, err := RunGS(Mode{}, GSNestWeak, GSParams{N: 10, TS: 3, Iters: 1}); err == nil {
		t.Fatal("expected error: N not a multiple of TS")
	}
}

func sortParams() SortParams { return SortParams{N: 1 << 12, TS: 1 << 6, Seed: 42} }

func TestSortSumBothVariantsRealMode(t *testing.T) {
	for _, v := range SortVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			if _, err := RunSortSum(Mode{Workers: 4}, v, sortParams()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortSumBothVariantsVirtualMode(t *testing.T) {
	for _, v := range SortVariants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			if _, err := RunSortSum(Mode{Workers: 8, Virtual: true}, v, sortParams()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSortSumPhaseOverlap reproduces Figure 7's claim quantitatively: with
// weak dependencies and weakwait the sort and prefix-sum phases overlap in
// time; with regular dependencies they cannot. Virtual mode makes the
// schedule deterministic.
func TestSortSumPhaseOverlap(t *testing.T) {
	p := SortParams{N: 1 << 14, TS: 1 << 8, Seed: 7}
	mode := Mode{Workers: 8, Virtual: true, Trace: true}

	overlap := func(v SortVariant) int64 {
		res, err := RunSortSum(mode, v, p)
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Runtime.Tracer()
		var sortKinds, prefixKinds []trace.Kind
		for i, name := range tr.Kinds() {
			switch name {
			case "quick_sort", "insertion_sort":
				sortKinds = append(sortKinds, trace.Kind(i))
			case "prefix_base", "prefix_sum", "accumulate":
				prefixKinds = append(prefixKinds, trace.Kind(i))
			}
		}
		return tr.Overlap(sortKinds, prefixKinds)
	}

	weakOv := overlap(SortWeak)
	regOv := overlap(SortRegular)
	if weakOv <= 0 {
		t.Fatalf("weak variant should overlap sort and prefix phases, got %d", weakOv)
	}
	if regOv > 0 {
		t.Fatalf("regular variant should fully serialize the phases, got overlap %d", regOv)
	}
}

// TestSortSumAlreadySorted: degenerate input exercises the partition edge
// cases (all-equal and sorted runs).
func TestSortSumDegenerateInputs(t *testing.T) {
	// The generator uses a fixed seed; exercise small N and tiny TS where
	// base cases and pivot ties dominate.
	for _, n := range []int64{2, 3, 64, 257} {
		if _, err := RunSortSum(Mode{Workers: 2}, SortWeak, SortParams{N: n, TS: 4, Seed: 1}); err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
	}
}

// TestAxpyCacheSimLocality: the Figure 3 mechanism — with hand-off the weak
// variant keeps successor blocks on the producing worker, so its miss ratio
// must not exceed the nest-depend variant's. Virtual mode for determinism.
func TestAxpyCacheSimLocality(t *testing.T) {
	cache := nanos.CacheConfig{LineBytes: 128, Ways: 16, Sets: 170}
	p := AxpyParams{N: 1 << 14, Calls: 8, TaskSize: 1 << 10, Alpha: 1, Compute: false}
	mode := Mode{Workers: 8, Virtual: true, Cache: &cache}
	weak, err := RunAxpy(mode, AxpyNestWeak, p)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := RunAxpy(mode, AxpyNestDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	if weak.MissRatio > dep.MissRatio+0.01 {
		t.Fatalf("nest-weak miss ratio %.3f should not exceed nest-depend %.3f",
			weak.MissRatio, dep.MissRatio)
	}
}
