package workloads

import (
	"math/rand"
	"sort"
	"time"

	nanos "repro"
)

// SortVariant selects the synchronization formulation of the quicksort →
// prefix-sum benchmark (§VIII-C, Figure 7).
type SortVariant string

const (
	// SortWeak: quicksort tasks use weakwait (releasing sorted regions at
	// base-case granularity) and the prefix sum uses weak dependencies for
	// all non-leaf tasks, so both algorithms' leaves connect through
	// fine-grained dependencies and execute concurrently.
	SortWeak SortVariant = "weak"
	// SortRegular: regular dependencies and subtree-completion release
	// everywhere — the prefix sum waits for the full quicksort.
	SortRegular SortVariant = "regular"
)

// SortVariants lists both formulations.
var SortVariants = []SortVariant{SortWeak, SortRegular}

// SortParams sizes the benchmark: N random elements, base case TS (both the
// insertion-sort cutoff and the prefix-sum block size, as in listing 7).
type SortParams struct {
	N    int64
	TS   int64
	Seed int64
}

// median3 orders a[lo], a[mid], a[hi-1] and returns the median's index.
func median3(a []int64, lo, hi int64) int64 {
	mid := lo + (hi-lo)/2
	x, y, z := a[lo], a[mid], a[hi-1]
	switch {
	case (x <= y && y <= z) || (z <= y && y <= x):
		return mid
	case (y <= x && x <= z) || (z <= x && x <= y):
		return lo
	default:
		return hi - 1
	}
}

// partition performs a Lomuto partition of a[lo:hi) around a median-of-3
// pivot. It returns p with a[lo:p) < a[p] <= a[p+1:hi); element p is final.
func partition(a []int64, lo, hi int64) int64 {
	mi := median3(a, lo, hi)
	a[mi], a[hi-1] = a[hi-1], a[mi]
	pivot := a[hi-1]
	p := lo
	for i := lo; i < hi-1; i++ {
		if a[i] < pivot {
			a[i], a[p] = a[p], a[i]
			p++
		}
	}
	a[p], a[hi-1] = a[hi-1], a[p]
	return p
}

func insertionSort(a []int64, lo, hi int64) {
	for i := lo + 1; i < hi; i++ {
		v := a[i]
		j := i - 1
		for j >= lo && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// RunSortSum executes the benchmark and validates the result (the data is
// always really sorted and scanned — recursion structure depends on the
// values, so virtual mode also computes; only the cost model differs).
func RunSortSum(mode Mode, variant SortVariant, p SortParams) (Result, error) {
	if p.N <= 0 || p.TS <= 1 {
		return Result{}, errf("sortsum: bad params %+v", p)
	}
	weak := variant == SortWeak
	rt := nanos.New(mode.config())
	if tr := rt.Tracer(); tr != nil {
		// Pre-register the kinds so timeline glyphs are stable across
		// variants regardless of execution order.
		for _, k := range []string{"quick_sort", "insertion_sort", "prefix_sum", "prefix_base", "accumulate"} {
			tr.KindID(k)
		}
	}
	dd := rt.NewData("data", p.N, 8)

	data := make([]int64, p.N)
	rng := rand.New(rand.NewSource(p.Seed))
	for i := range data {
		data[i] = rng.Int63n(1 << 30)
	}
	ref := make([]int64, p.N)
	copy(ref, data)

	// quickSort submits the task tree of listing 7's quick_sort: the
	// enclosing task holds a strong inout over [lo,hi) (it partitions in
	// place) and weakwait when weak; recursion spawns subtasks per half.
	var quickBody func(lo, hi int64) func(*nanos.TaskContext)
	submitQuick := func(tc *nanos.TaskContext, lo, hi int64) {
		tc.Submit(nanos.TaskSpec{
			Label:    "quick_sort",
			Kind:     "quick_sort",
			Cost:     hi - lo, // partition pass
			WeakWait: weak,
			Deps:     []nanos.Dep{nanos.DInOut(dd, nanos.Iv(lo, hi))},
			Body:     quickBody(lo, hi),
		})
	}
	quickBody = func(lo, hi int64) func(*nanos.TaskContext) {
		return func(tc *nanos.TaskContext) {
			if hi-lo <= p.TS {
				tc.Submit(nanos.TaskSpec{
					Label: "insertion_sort",
					Kind:  "insertion_sort",
					Cost:  (hi - lo) * 4,
					Deps:  []nanos.Dep{nanos.DInOut(dd, nanos.Iv(lo, hi))},
					Body:  func(*nanos.TaskContext) { insertionSort(data, lo, hi) },
				})
				return
			}
			piv := partition(data, lo, hi)
			// Element piv is in its final position: with weakwait it is
			// released as soon as this body returns, letting the prefix sum
			// start on sorted prefixes while sorting continues (§VIII-C).
			if piv > lo+1 {
				submitQuick(tc, lo, piv)
			} else if piv == lo+1 {
				// Single element left of the pivot is already final.
				_ = piv
			}
			if piv+1 < hi {
				submitQuick(tc, piv+1, hi)
			}
		}
	}

	// prefixSum mirrors listing 7's prefix_sum: base-case blocks, a
	// recursive pass over the last element of each block (stride grows by
	// TS per level), then per-block accumulation of the previous block's
	// total.
	var prefixSum func(tc *nanos.TaskContext, lo, n, stride int64)
	prefixSum = func(tc *nanos.TaskContext, lo, n, stride int64) {
		if n <= p.TS*stride {
			tc.Submit(nanos.TaskSpec{
				Label: "prefix_base",
				Kind:  "prefix_base",
				Cost:  n / stride,
				Deps: []nanos.Dep{
					nanos.DIn(dd, nanos.Iv(lo, lo+1)),
					nanos.DInOut(dd, nanos.Iv(lo+stride, lo+n)),
				},
				Body: func(*nanos.TaskContext) {
					for i := stride; i < n; i += stride {
						data[lo+i] += data[lo+i-stride]
					}
				},
			})
			return
		}
		// Solve the blocks independently (direct calls, as in the paper).
		for i := int64(0); i < n; i += p.TS * stride {
			size := min64(p.TS*stride, n-i)
			prefixSum(tc, lo+i, size, stride)
		}
		// Prefix sum over the last element of each block.
		substart := (p.TS - 1) * stride
		sub := nanos.Iv(lo+substart, lo+n)
		dep := nanos.DWeakInOut(dd, sub)
		if !weak {
			dep = nanos.DInOut(dd, sub)
		}
		tc.Submit(nanos.TaskSpec{
			Label:    "prefix_sum",
			Kind:     "prefix_sum",
			Cost:     1,
			Touches:  []nanos.Dep{},
			WeakWait: weak,
			Deps:     []nanos.Dep{dep},
			Body: func(tc *nanos.TaskContext) {
				prefixSum(tc, lo+substart, n-substart, p.TS*stride)
			},
		})
		// Accumulate each block's incoming total over its elements.
		for i := substart; i+stride < n; i += p.TS * stride {
			size := min64(p.TS*stride, n-i)
			base := lo + i
			tc.Submit(nanos.TaskSpec{
				Label: "accumulate",
				Kind:  "accumulate",
				Cost:  size / stride,
				Deps: []nanos.Dep{
					nanos.DIn(dd, nanos.Iv(base, base+1)),
					nanos.DInOut(dd, nanos.Iv(base+stride, base+size)),
				},
				Body: func(*nanos.TaskContext) {
					for j := stride; j < size; j += stride {
						data[base+j] += data[base]
					}
				},
			})
		}
	}

	startT := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		// Listing 7 lines 1-5: the sort (strong inout — it partitions) and
		// the prefix sum (weak — only its leaves touch the data).
		submitQuick(tc, 0, p.N)
		pdep := nanos.DWeakInOut(dd, nanos.Iv(0, p.N))
		if !weak {
			pdep = nanos.DInOut(dd, nanos.Iv(0, p.N))
		}
		tc.Submit(nanos.TaskSpec{
			Label:    "prefix_sum",
			Kind:     "prefix_sum",
			Cost:     1,
			Touches:  []nanos.Dep{},
			WeakWait: weak,
			Deps:     []nanos.Dep{pdep},
			Body:     func(tc *nanos.TaskContext) { prefixSum(tc, 0, p.N, 1) },
		})
	})

	res := measure(rt, startT)
	// Validate: sorted reference, then inclusive prefix sums.
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	var sum int64
	for i := range ref {
		sum += ref[i]
		if data[i] != sum {
			return res, errf("sortsum %s: prefix[%d] = %d, want %d", variant, i, data[i], sum)
		}
	}
	return res, nil
}
