package workloads

import (
	"sync/atomic"
	"time"

	nanos "repro"
)

// Tasking microbenchmarks in the style of the Barcelona OpenMP Tasks Suite:
// recursive Fibonacci and N-Queens. They carry almost no computation, so
// they expose pure runtime overhead — task creation, dependency
// registration, and the granularity cutoff — complementing the paper's
// bandwidth-bound AXPY (§VIII-A) at the other end of the spectrum.
//
// Fibonacci is built entirely on dependencies: every call writes its value
// into an own slot of a results array, recursive calls are tasks with
// depend(weakout: slot) + weakwait that delegate the write to their
// subtree, and a combiner task with depend(in: left, right) depend(out:
// slot) performs the addition. No taskwait appears anywhere, so the same
// code runs in real and virtual mode.

// FibCutoffMode selects what happens below the task-creation cutoff.
type FibCutoffMode uint8

const (
	// FibCutoffSequential switches to plain recursion below the cutoff
	// (the conventional granularity control).
	FibCutoffSequential FibCutoffMode = iota
	// FibCutoffFinal submits the subtree with the final clause: tasks keep
	// being "created" but execute inline as included tasks — the OpenMP
	// final-clause cutoff.
	FibCutoffFinal
	// FibCutoffNone creates tasks all the way to the leaves.
	FibCutoffNone
)

func (m FibCutoffMode) String() string {
	switch m {
	case FibCutoffFinal:
		return "final"
	case FibCutoffNone:
		return "none"
	}
	return "sequential"
}

// FibParams sizes the Fibonacci microbenchmark.
type FibParams struct {
	N      int
	Cutoff int // subtree size below which the cutoff mode applies
	Mode   FibCutoffMode
}

// fibSeq is the plain recursion used below the sequential cutoff and as
// the reference.
func fibSeq(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

// fibSlotTable[n] is the number of result slots a call tree of size n
// needs: every node owns one slot.
func fibSlotTable(n int) []int64 {
	s := make([]int64, n+2)
	s[0], s[1] = 1, 1
	for i := 2; i <= n; i++ {
		s[i] = 1 + s[i-1] + s[i-2]
	}
	return s
}

// RunFib executes the Fibonacci microbenchmark and returns the measurements
// and the computed value.
//
// Slot layout: the call tree of fib(n) rooted at slot base owns the
// contiguous range [base, base+slots(n)): its own result in base, the
// fib(n-1) subtree in [base+1, base+1+slots(n-1)), and the fib(n-2) subtree
// after that. Each task declares depend(weakout:) over its whole range, so
// every child entry nests inside the parent's — the well-formedness
// discipline of §III/§VII, checked by the Verify mode.
func RunFib(mode Mode, p FibParams) (Result, int64, error) {
	if p.N < 0 || p.N > 30 {
		return Result{}, 0, errf("fib: N=%d out of range (0..30)", p.N)
	}
	slotTab := fibSlotTable(p.N)
	res := make([]int64, slotTab[p.N])

	rt := nanos.New(mode.config())
	rd := rt.NewData("results", slotTab[p.N], 8)

	// fibTask returns the spec of the task computing fib(n) into slot base,
	// owning the slot range [base, base+slotTab[n]).
	var fibTask func(n int, base int64) nanos.TaskSpec
	fibTask = func(n int, base int64) nanos.TaskSpec {
		own := nanos.Iv(base, base+1)
		if n < 2 {
			return nanos.TaskSpec{
				Label: "fib-base", Kind: "base",
				Deps: []nanos.Dep{nanos.DOut(rd, own)},
				Body: func(*nanos.TaskContext) { res[base] = int64(n) },
			}
		}
		rangeIv := nanos.Iv(base, base+slotTab[n])
		if n <= p.Cutoff && p.Mode == FibCutoffSequential {
			return nanos.TaskSpec{
				Label: "fib-seq", Kind: "seq",
				// The sequential subtree only ever writes its own slot; the
				// rest of its range goes unused.
				Deps: []nanos.Dep{nanos.DOut(rd, own)},
				Body: func(*nanos.TaskContext) { res[base] = fibSeq(n) },
			}
		}
		l := base + 1
		r := base + 1 + slotTab[n-1]
		body := func(tc *nanos.TaskContext) {
			tc.Submit(fibTask(n-1, l))
			tc.Submit(fibTask(n-2, r))
			tc.Submit(nanos.TaskSpec{
				Label: "fib-sum", Kind: "sum",
				Deps: []nanos.Dep{
					nanos.DIn(rd, nanos.Iv(l, l+1)), nanos.DIn(rd, nanos.Iv(r, r+1)),
					nanos.DOut(rd, own),
				},
				Body: func(*nanos.TaskContext) { res[base] = res[l] + res[r] },
			})
		}
		spec := nanos.TaskSpec{
			Label: "fib", Kind: "fib",
			WeakWait: true,
			Touches:  []nanos.Dep{},
			Deps:     []nanos.Dep{nanos.DWeakOut(rd, rangeIv)},
			Body:     body,
		}
		if n <= p.Cutoff && p.Mode == FibCutoffFinal {
			spec.Final = true
			spec.Label = "fib-final"
		}
		return spec
	}

	startT := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Submit(fibTask(p.N, 0))
	})
	r := measure(rt, startT)
	if want := fibSeq(p.N); res[0] != want {
		return r, res[0], errf("fib(%d) = %d, want %d", p.N, res[0], want)
	}
	return r, res[0], nil
}

// NQueensParams sizes the N-Queens microbenchmark: count the solutions of
// the N-queens puzzle, spawning one task per placement down to Depth rows,
// sequential search below. Pure nesting — no dependencies — waited on with
// a taskgroup (real mode only).
type NQueensParams struct {
	N     int
	Depth int
}

// nqSolve counts solutions sequentially from the given partial placement.
// cols[i] is the column of the queen in row i.
func nqSolve(n int, cols []int8) int64 {
	row := len(cols)
	if row == n {
		return 1
	}
	var count int64
	for c := int8(0); c < int8(n); c++ {
		if nqSafe(cols, c) {
			count += nqSolve(n, append(cols, c))
		}
	}
	return count
}

func nqSafe(cols []int8, c int8) bool {
	row := len(cols)
	for r, cc := range cols {
		if cc == c || int(cc)-int(c) == row-r || int(c)-int(cc) == row-r {
			return false
		}
	}
	return true
}

// RunNQueens executes the N-Queens microbenchmark and returns the
// measurements and the solution count.
func RunNQueens(mode Mode, p NQueensParams) (Result, int64, error) {
	if p.N <= 0 || p.N > 14 {
		return Result{}, 0, errf("nqueens: N=%d out of range", p.N)
	}
	if mode.Virtual {
		return Result{}, 0, errf("nqueens: taskgroup-based search needs real mode")
	}
	rt := nanos.New(mode.config())
	var count atomic.Int64

	var place func(tc *nanos.TaskContext, cols []int8)
	place = func(tc *nanos.TaskContext, cols []int8) {
		if len(cols) >= p.Depth {
			count.Add(nqSolve(p.N, cols))
			return
		}
		for c := int8(0); c < int8(p.N); c++ {
			if !nqSafe(cols, c) {
				continue
			}
			sub := append(append(make([]int8, 0, len(cols)+1), cols...), c)
			tc.Submit(nanos.TaskSpec{
				Label: "place", Kind: "place",
				Body: func(tc *nanos.TaskContext) { place(tc, sub) },
			})
		}
	}

	startT := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		tc.Taskgroup(func() {
			place(tc, nil)
		})
		// The taskgroup guarantees every branch finished; snapshot here to
		// prove it (the root body still runs after the deep wait).
		count.Store(count.Load())
	})
	r := measure(rt, startT)
	return r, count.Load(), nil
}
