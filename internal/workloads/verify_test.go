package workloads

import (
	"fmt"
	"testing"
)

// TestVerifyLintAllVariants runs every benchmark variant under the
// runtime's Verify (lint) mode and asserts that the paper's depend
// annotations are well-formed: no child depend entry escapes its parent's
// entries. This is exactly the discipline §III and listings 4-7 prescribe —
// outer depend clauses must protect everything the subtasks access.
func TestVerifyLintAllVariants(t *testing.T) {
	mode := Mode{Workers: 4, Verify: true}

	for _, v := range AxpyVariants {
		t.Run(fmt.Sprintf("axpy/%s", v), func(t *testing.T) {
			res, err := RunAxpy(mode, v, AxpyParams{N: 1 << 12, Calls: 3, TaskSize: 1 << 10, Alpha: 2, Compute: true})
			if err != nil {
				t.Fatal(err)
			}
			if n := res.Runtime.ViolationCount(); n != 0 {
				t.Errorf("%d lint violations: %v", n, res.Runtime.Violations())
			}
		})
	}
	for _, v := range GSVariants {
		t.Run(fmt.Sprintf("gs/%s", v), func(t *testing.T) {
			res, err := RunGS(mode, v, GSParams{N: 64, TS: 16, Iters: 3, Compute: true})
			if err != nil {
				t.Fatal(err)
			}
			if n := res.Runtime.ViolationCount(); n != 0 {
				t.Errorf("%d lint violations: %v", n, res.Runtime.Violations())
			}
		})
	}
	for _, v := range SortVariants {
		t.Run(fmt.Sprintf("sortsum/%s", v), func(t *testing.T) {
			res, err := RunSortSum(mode, v, SortParams{N: 1 << 10, TS: 1 << 6, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if n := res.Runtime.ViolationCount(); n != 0 {
				t.Errorf("%d lint violations: %v", n, res.Runtime.Violations())
			}
		})
	}
}
