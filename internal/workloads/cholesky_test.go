package workloads

import (
	"fmt"
	"math"
	"testing"
)

func TestCholKernelsFactorCorrectly(t *testing.T) {
	// Factor a small SPD matrix with the blocked sequential driver and
	// verify L·Lᵀ reconstructs the input.
	const n, ts = 16, 4
	const bb = n / ts
	a := make([]float64, n*n)
	cholInit(a, n, ts, 7)
	orig := make([]float64, n*n)
	copy(orig, a)
	cholSequential(a, n, ts)

	at := func(m []float64, r, c int64) float64 {
		bi, bj := r/ts, c/ts
		return m[(bi*bb+bj)*ts*ts+(r%ts)*ts+(c%ts)]
	}
	l := func(r, c int64) float64 {
		if c > r {
			return 0 // strict upper triangle is garbage by convention
		}
		return at(a, r, c)
	}
	for r := int64(0); r < n; r++ {
		for c := int64(0); c <= r; c++ {
			var s float64
			for p := int64(0); p < n; p++ {
				s += l(r, p) * l(c, p)
			}
			if math.Abs(s-at(orig, r, c)) > 1e-9*float64(n) {
				t.Fatalf("L·Lᵀ[%d,%d] = %v, want %v", r, c, s, at(orig, r, c))
			}
		}
	}
}

func TestCholeskyAllVariantsMatchReference(t *testing.T) {
	p := CholParams{N: 64, TS: 16, Seed: 42, Compute: true}
	for _, v := range CholVariants {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", v, workers), func(t *testing.T) {
				if _, err := RunCholesky(Mode{Workers: workers}, v, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestCholeskyTaskCount(t *testing.T) {
	// B blocks: potrf B, trsm B(B-1)/2, syrk B(B-1)/2, gemm B(B-1)(B-2)/6,
	// plus B panel tasks in the nested variants.
	p := CholParams{N: 80, TS: 16, Seed: 1, Compute: true}
	const b = 5
	kernels := int64(b + b*(b-1)/2 + b*(b-1)/2 + b*(b-1)*(b-2)/6)
	res, err := RunCholesky(Mode{Workers: 4}, CholFlatDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != kernels {
		t.Errorf("flat-depend tasks = %d, want %d", res.Tasks, kernels)
	}
	res, err = RunCholesky(Mode{Workers: 4}, CholNestWeak, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != kernels+b {
		t.Errorf("nest-weak tasks = %d, want %d", res.Tasks, kernels+b)
	}
}

func TestCholeskyLintClean(t *testing.T) {
	p := CholParams{N: 64, TS: 16, Seed: 3, Compute: true}
	for _, v := range CholVariants {
		res, err := RunCholesky(Mode{Workers: 4, Verify: true}, v, p)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Runtime.ViolationCount(); n != 0 {
			t.Errorf("%s: %d lint violations: %v", v, n, res.Runtime.Violations())
		}
	}
}

func TestCholeskyVirtualWeakBeatsNestDepend(t *testing.T) {
	// The headline claim on this workload: with panel tasks, weak
	// dependencies + weakwait recover the parallelism that strong panel
	// dependencies destroy. Virtual mode, identical per-kernel costs.
	p := CholParams{N: 256, TS: 32, Seed: 5, Compute: false}
	mode := Mode{Workers: 8, Virtual: true}
	tWeak, err := RunCholesky(mode, CholNestWeak, p)
	if err != nil {
		t.Fatal(err)
	}
	tFlat, err := RunCholesky(mode, CholFlatDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	tNest, err := RunCholesky(mode, CholNestDepend, p)
	if err != nil {
		t.Fatal(err)
	}
	if tWeak.VirtualTime >= tNest.VirtualTime {
		t.Errorf("nest-weak (%d) not faster than nest-depend (%d)",
			tWeak.VirtualTime, tNest.VirtualTime)
	}
	// Weak nesting should track the flat schedule closely (same effective
	// dependency structure, §VI's single-domain equivalence).
	if f := float64(tWeak.VirtualTime) / float64(tFlat.VirtualTime); f > 1.15 {
		t.Errorf("nest-weak %.2fx slower than flat-depend; want within 15%%", f)
	}
}

func TestCholeskyBadParams(t *testing.T) {
	if _, err := RunCholesky(Mode{Workers: 1}, CholFlatDepend, CholParams{N: 60, TS: 16}); err == nil {
		t.Error("N not multiple of TS should fail")
	}
	if _, err := RunCholesky(Mode{Workers: 1}, CholVariant("nope"), CholParams{N: 32, TS: 16}); err == nil {
		t.Error("unknown variant should fail")
	}
}
