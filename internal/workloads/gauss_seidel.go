package workloads

import (
	"time"

	nanos "repro"
)

// GSVariant names one implementation of the Gauss-Seidel benchmark
// (§VIII-B).
type GSVariant string

const (
	// GSNestWeak: one task per iteration with depend(weakinout: A[:][:])
	// and weakwait, one subtask per TS×TS tile (listing 6).
	GSNestWeak GSVariant = "nest-weak"
	// GSNestWeakRelease: GSNestWeak plus the release directive as tiles
	// are created (the paper found this adds overhead here).
	GSNestWeakRelease GSVariant = "nest-weak-release"
	// GSFlatDepend: only the tile tasks, all in the root domain.
	GSFlatDepend GSVariant = "flat-depend"
	// GSNestDepend: iteration tasks with strong inout over the whole array
	// and a taskwait — iterations serialize.
	GSNestDepend GSVariant = "nest-depend"
	// GSGraph: one graph region (TaskContext.Graph) per iteration
	// submitting the tile wavefront — the record-and-replay formulation
	// (beyond the paper; the Taskgraph direction of PAPERS.md). Iterations
	// serialize at the region barrier like GSNestDepend, but with
	// Mode.Replay on, every sweep after the first replays the frozen tile
	// graph and never touches the dependency engine.
	GSGraph GSVariant = "graph"
	// GSWsWavefront: one worksharing region per anti-diagonal — the tiles
	// with i+j = d are mutually independent within a sweep, so each
	// diagonal is a single task carrying a union inout over the plane
	// (2b-1 tasks per sweep instead of b² tile tasks), its tiles
	// self-scheduled across the fleet (beyond the paper; the
	// worksharing-tasks direction of PAPERS.md). The union entries chain
	// the diagonals, so every tile still reads this-sweep values above and
	// left and previous-sweep values below and right — exactly the
	// sequential numerics. The per-task-per-tile baseline to compare
	// against is GSFlatDepend (expanding this variant's union entries per
	// tile would serialize the tiles).
	GSWsWavefront GSVariant = "ws-wavefront"
)

// GSVariants lists the Gauss-Seidel variants in the paper's order.
var GSVariants = []GSVariant{GSNestWeak, GSNestWeakRelease, GSFlatDepend, GSNestDepend}

// GSParams sizes the Gauss-Seidel benchmark: Iters sweeps of an N×N plane
// decomposed into TS×TS tiles (N must be a multiple of TS). The plane has a
// one-element fixed boundary ring, mirrored in the dependency layout as the
// halo blocks of listing 6's (2+BLOCKS)×(2+BLOCKS) block array.
type GSParams struct {
	N     int64
	TS    int64
	Iters int
	// Compute performs the real stencil and validates against a sequential
	// sweep. Virtual sweeps may disable it; tile cost is TS·TS either way.
	Compute bool
	// ReleaseByPanel makes the release variant release whole block rows
	// instead of single blocks (the lower-overhead granularity the paper
	// also tried).
	ReleaseByPanel bool
}

// gsKernel applies the in-place 5-point Gauss-Seidel update to tile (bi,bj)
// (1-based block coordinates) of the (n+2)×(n+2) plane a.
func gsKernel(a []float64, n, ts, bi, bj int64) {
	m := n + 2 // row stride
	r0 := (bi-1)*ts + 1
	c0 := (bj-1)*ts + 1
	for r := r0; r < r0+ts; r++ {
		row := r * m
		up := (r - 1) * m
		down := (r + 1) * m
		for c := c0; c < c0+ts; c++ {
			a[row+c] = 0.25 * (a[up+c] + a[row+c-1] + a[row+c+1] + a[down+c])
		}
	}
}

// gsInit fills the plane: boundary ring at 1, interior at 0.
func gsInit(a []float64, n int64) {
	m := n + 2
	for i := int64(0); i < m*m; i++ {
		a[i] = 0
	}
	for i := int64(0); i < m; i++ {
		a[i] = 1         // top
		a[(m-1)*m+i] = 1 // bottom
		a[i*m] = 1       // left
		a[i*m+m-1] = 1   // right
	}
}

// gsSequential runs the reference sweep.
func gsSequential(a []float64, n, ts int64, iters int) {
	b := n / ts
	for it := 0; it < iters; it++ {
		for i := int64(1); i <= b; i++ {
			for j := int64(1); j <= b; j++ {
				gsKernel(a, n, ts, i, j)
			}
		}
	}
}

// RunGS executes one Gauss-Seidel variant and returns its measurements.
func RunGS(mode Mode, variant GSVariant, p GSParams) (Result, error) {
	if p.N <= 0 || p.TS <= 0 || p.N%p.TS != 0 || p.Iters <= 0 {
		return Result{}, errf("gs: bad params %+v (N must be a multiple of TS)", p)
	}
	b := p.N / p.TS // interior blocks per side
	side := b + 2   // block array side including halo
	total := side * side * p.TS * p.TS

	rt := nanos.New(mode.config())
	ad := rt.NewData("A", total, 8)

	var a []float64
	if p.Compute {
		a = make([]float64, (p.N+2)*(p.N+2))
		gsInit(a, p.N)
	}

	blk := func(i, j int64) nanos.Interval { return nanos.BlockInterval(side, p.TS, i, j) }

	tile := func(i, j int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "tile",
			Kind:  "tile",
			Cost:  p.TS * p.TS,
			Flops: 4 * p.TS * p.TS,
			Deps: []nanos.Dep{
				nanos.DIn(ad, blk(i-1, j)),  // top
				nanos.DIn(ad, blk(i, j-1)),  // left
				nanos.DInOut(ad, blk(i, j)), // center
				nanos.DIn(ad, blk(i, j+1)),  // right
				nanos.DIn(ad, blk(i+1, j)),  // bottom
			},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					gsKernel(a, p.N, p.TS, i, j)
				}
			},
		}
	}

	forTiles := func(f func(i, j int64)) {
		for i := int64(1); i <= b; i++ {
			for j := int64(1); j <= b; j++ {
				f(i, j)
			}
		}
	}

	startT := time.Now()
	switch variant {
	case GSWsWavefront:
		rt.Run(func(tc *nanos.TaskContext) {
			for it := 0; it < p.Iters; it++ {
				// Anti-diagonal d holds tiles (i, d-i) with both coordinates
				// in [1, b]; chunk index k enumerates them by row coordinate.
				for d := int64(2); d <= 2*b; d++ {
					iLo := int64(1)
					if d-b > iLo {
						iLo = d - b
					}
					iHi := d - 1
					if b < iHi {
						iHi = b
					}
					d := d
					tc.Worksharing(nanos.WorksharingSpec{
						Label: "gs-diag",
						Lo:    iLo, Hi: iHi + 1, Grain: 1,
						Deps: func(lo, hi int64) []nanos.Dep {
							return []nanos.Dep{nanos.DInOut(ad, nanos.Iv(0, total))}
						},
						Cost:  func(lo, hi int64) int64 { return (hi - lo) * p.TS * p.TS },
						Flops: func(lo, hi int64) int64 { return 4 * (hi - lo) * p.TS * p.TS },
						Body: func(_ *nanos.TaskContext, lo, hi int64) {
							for i := lo; i < hi; i++ {
								if p.Compute {
									gsKernel(a, p.N, p.TS, i, d-i)
								}
							}
						},
					})
				}
			}
		})

	case GSGraph:
		rt.Run(func(tc *nanos.TaskContext) {
			for it := 0; it < p.Iters; it++ {
				tc.Graph("gs-sweep", func(tc *nanos.TaskContext) {
					forTiles(func(i, j int64) { tc.Submit(tile(i, j)) })
				})
			}
		})

	case GSFlatDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for it := 0; it < p.Iters; it++ {
				forTiles(func(i, j int64) { tc.Submit(tile(i, j)) })
			}
		})

	case GSNestDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for it := 0; it < p.Iters; it++ {
				tc.Submit(nanos.TaskSpec{
					Label:   "iteration",
					Kind:    "iter",
					Touches: []nanos.Dep{},
					Deps:    []nanos.Dep{nanos.DInOut(ad, nanos.Iv(0, total))},
					Body: func(tc *nanos.TaskContext) {
						forTiles(func(i, j int64) { tc.Submit(tile(i, j)) })
						if !mode.Virtual {
							tc.Taskwait()
						}
					},
				})
			}
		})

	case GSNestWeak, GSNestWeakRelease:
		release := variant == GSNestWeakRelease
		rt.Run(func(tc *nanos.TaskContext) {
			for it := 0; it < p.Iters; it++ {
				tc.Submit(nanos.TaskSpec{
					Label:    "iteration",
					Kind:     "iter",
					WeakWait: true,
					Deps:     []nanos.Dep{nanos.DWeakInOut(ad, nanos.Iv(0, total))},
					Body: func(tc *nanos.TaskContext) {
						for i := int64(1); i <= b; i++ {
							for j := int64(1); j <= b; j++ {
								tc.Submit(tile(i, j))
								if release && !p.ReleaseByPanel && i >= 2 && j >= 2 {
									// Block (i-1,j-1) is not referenced by
									// any tile submitted after (i,j).
									tc.Release(nanos.DWeakInOut(ad, blk(i-1, j-1)))
								}
							}
							if release && p.ReleaseByPanel && i >= 2 {
								// The whole block row i-1 (incl. halo
								// columns) is finished once row i is
								// submitted.
								lo := blk(i-1, 0).Lo
								hi := blk(i-1, side-1).Hi
								tc.Release(nanos.DWeakInOut(ad, nanos.Iv(lo, hi)))
							}
						}
					},
				})
			}
		})

	default:
		return Result{}, errf("gs: unknown variant %q", variant)
	}

	res := measure(rt, startT)
	if p.Compute {
		ref := make([]float64, (p.N+2)*(p.N+2))
		gsInit(ref, p.N)
		gsSequential(ref, p.N, p.TS, p.Iters)
		for i := range ref {
			if a[i] != ref[i] {
				return res, errf("gs %s: element %d = %v, want %v", variant, i, a[i], ref[i])
			}
		}
	}
	return res, nil
}
