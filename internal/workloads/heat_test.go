package workloads

import (
	"testing"

	nanos "repro"
)

// TestHeatValidates: the Jacobi ping-pong result must match the
// sequential reference with the cache on and off, and with replay on the
// two phases must each record once and replay every later sweep.
func TestHeatValidates(t *testing.T) {
	p := HeatParams{N: 64, TS: 16, Iters: 6, Compute: true}
	for _, kind := range []nanos.ReplayKind{nanos.ReplayOff, nanos.ReplayOn} {
		res, err := RunHeat(Mode{Workers: 4, Replay: kind, Debug: true}, p)
		if err != nil {
			t.Fatalf("replay %v: %v", kind, err)
		}
		want := int64(p.Iters) * (64 / 16) * (64 / 16)
		if res.Tasks != want {
			t.Fatalf("replay %v: %d tasks, want %d", kind, res.Tasks, want)
		}
		st := res.Runtime.ReplayStats()
		if kind == nanos.ReplayOff && st != (nanos.ReplayStats{}) {
			t.Fatalf("replay off recorded: %+v", st)
		}
		if kind == nanos.ReplayOn {
			if st.Records != 2 {
				t.Fatalf("records = %d, want 2 (even and odd phase): %+v", st.Records, st)
			}
			if st.Replays != int64(p.Iters-2) {
				t.Fatalf("replays = %d, want %d: %+v", st.Replays, p.Iters-2, st)
			}
			if st.Invalidations != 0 || st.Fallbacks != 0 {
				t.Fatalf("stable phases must not invalidate or fall back: %+v", st)
			}
		}
	}
}

// TestHeatOddIters covers the plane-swap bookkeeping for odd sweep counts.
func TestHeatOddIters(t *testing.T) {
	if _, err := RunHeat(Mode{Workers: 2, Debug: true}, HeatParams{N: 32, TS: 8, Iters: 5, Compute: true}); err != nil {
		t.Fatal(err)
	}
}

// TestGSGraphValidates: the graph-region Gauss-Seidel formulation must
// reproduce the sequential sweep with the cache on and off, and replay
// every sweep after the first when on.
func TestGSGraphValidates(t *testing.T) {
	p := GSParams{N: 64, TS: 16, Iters: 5, Compute: true}
	for _, kind := range []nanos.ReplayKind{nanos.ReplayOff, nanos.ReplayOn} {
		res, err := RunGS(Mode{Workers: 4, Replay: kind, Debug: true}, GSGraph, p)
		if err != nil {
			t.Fatalf("replay %v: %v", kind, err)
		}
		if kind == nanos.ReplayOn {
			st := res.Runtime.ReplayStats()
			if st.Records != 1 || st.Replays != int64(p.Iters-1) {
				t.Fatalf("replay stats: %+v, want 1 record and %d replays", st, p.Iters-1)
			}
		}
	}
}
