package workloads

import (
	"time"

	nanos "repro"
)

// AxpyVariant names one implementation of the Multiple-AXPY benchmark
// (Table I of the paper).
type AxpyVariant string

const (
	// AxpyNestWeakRelease: nesting, weak outer deps, weakwait, and the
	// release directive after each subtask (row 1 of Table I).
	AxpyNestWeakRelease AxpyVariant = "nest-weak-release"
	// AxpyNestWeak: nesting, weak outer deps, weakwait (row 2).
	AxpyNestWeak AxpyVariant = "nest-weak"
	// AxpyNestDepend: nesting, strong deps, taskwait at the end of the
	// outer task (row 3) — the pre-extension OpenMP formulation.
	AxpyNestDepend AxpyVariant = "nest-depend"
	// AxpyFlatDepend: no nesting, inner tasks with dependencies directly in
	// the root domain (row 4).
	AxpyFlatDepend AxpyVariant = "flat-depend"
	// AxpyFlatTaskwait: no nesting, no dependencies, a taskwait barrier
	// between calls (row 5).
	AxpyFlatTaskwait AxpyVariant = "flat-taskwait"
	// AxpyWorksharing: one worksharing region per call — a single task
	// carrying the union depend entries over x and y, its TaskSize-grained
	// chunks self-scheduled across the fleet (beyond Table I; the
	// worksharing-tasks direction of PAPERS.md). Mode.Worksharing selects
	// the strategy, so the same variant doubles as its own per-chunk-task
	// baseline under WorksharingExpand.
	AxpyWorksharing AxpyVariant = "worksharing"
)

// AxpyVariants lists all variants in Table I's order.
var AxpyVariants = []AxpyVariant{
	AxpyNestWeakRelease, AxpyNestWeak, AxpyNestDepend, AxpyFlatDepend, AxpyFlatTaskwait,
}

// AxpyParams sizes the Multiple-AXPY benchmark: Calls applications of
// y ← alpha·x + y over N-element vectors, decomposed into TaskSize-element
// leaf tasks (listing 5 of the paper).
type AxpyParams struct {
	N        int64
	Calls    int
	TaskSize int64
	Alpha    float64
	// Compute performs the real arithmetic (and validates the result).
	// Virtual-mode sweeps can disable it; leaf cost is TaskSize either way.
	Compute bool
}

// RunAxpy executes one Multiple-AXPY variant and returns its measurements.
func RunAxpy(mode Mode, variant AxpyVariant, p AxpyParams) (Result, error) {
	if p.N <= 0 || p.TaskSize <= 0 || p.Calls <= 0 {
		return Result{}, errf("axpy: bad params %+v", p)
	}
	rt := nanos.New(mode.config())
	xd := rt.NewData("x", p.N, 8)
	yd := rt.NewData("y", p.N, 8)

	var x, y []float64
	if p.Compute {
		x = make([]float64, p.N)
		y = make([]float64, p.N)
		for i := range x {
			x[i] = 1
		}
	}

	leaf := func(start, end int64) nanos.TaskSpec {
		count := end - start
		return nanos.TaskSpec{
			Label: "axpy-block",
			Kind:  "axpy",
			Cost:  count,
			Flops: 2 * count,
			Deps: []nanos.Dep{
				nanos.DIn(xd, nanos.Iv(start, end)),
				nanos.DInOut(yd, nanos.Iv(start, end)),
			},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					for i := start; i < end; i++ {
						y[i] += p.Alpha * x[i]
					}
				}
			},
		}
	}
	// bareLeaf is the flat-taskwait leaf: same work, no depend clause; the
	// accesses are still declared to the cache simulator.
	bareLeaf := func(start, end int64) nanos.TaskSpec {
		s := leaf(start, end)
		s.Touches = s.Deps
		s.Deps = nil
		return s
	}
	// noTouch marks tasks that only instantiate subtasks: their depend
	// entries protect the subtasks' accesses, the body touches no data.
	noTouch := []nanos.Dep{}
	forBlocks := func(f func(start, end int64)) {
		for start := int64(0); start < p.N; start += p.TaskSize {
			f(start, min64(start+p.TaskSize, p.N))
		}
	}

	startT := time.Now()
	switch variant {
	case AxpyWorksharing:
		rt.Run(func(tc *nanos.TaskContext) {
			for c := 0; c < p.Calls; c++ {
				tc.Worksharing(nanos.WorksharingSpec{
					Label: "axpy-ws",
					Lo:    0, Hi: p.N, Grain: p.TaskSize,
					Deps: func(lo, hi int64) []nanos.Dep {
						return []nanos.Dep{
							nanos.DIn(xd, nanos.Iv(lo, hi)),
							nanos.DInOut(yd, nanos.Iv(lo, hi)),
						}
					},
					Flops: func(lo, hi int64) int64 { return 2 * (hi - lo) },
					Body: func(_ *nanos.TaskContext, lo, hi int64) {
						if p.Compute {
							for i := lo; i < hi; i++ {
								y[i] += p.Alpha * x[i]
							}
						}
					},
				})
			}
		})

	case AxpyFlatDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for c := 0; c < p.Calls; c++ {
				forBlocks(func(s, e int64) { tc.Submit(leaf(s, e)) })
			}
		})

	case AxpyFlatTaskwait:
		if mode.Virtual {
			// Virtual mode cannot block the driver in Taskwait; the barrier
			// is expressed as a per-call parent chained through a sentinel,
			// which has identical ordering semantics.
			sentinel := rt.NewData("barrier", 1, 8)
			rt.Run(func(tc *nanos.TaskContext) {
				for c := 0; c < p.Calls; c++ {
					tc.Submit(nanos.TaskSpec{
						Label:   "axpy-call",
						Kind:    "call",
						Touches: noTouch,
						Deps:    []nanos.Dep{nanos.DInOut(sentinel, nanos.Iv(0, 1))},
						Body: func(tc *nanos.TaskContext) {
							forBlocks(func(s, e int64) { tc.Submit(bareLeaf(s, e)) })
						},
					})
				}
			})
		} else {
			rt.Run(func(tc *nanos.TaskContext) {
				for c := 0; c < p.Calls; c++ {
					forBlocks(func(s, e int64) { tc.Submit(bareLeaf(s, e)) })
					tc.Taskwait()
				}
			})
		}

	case AxpyNestDepend:
		rt.Run(func(tc *nanos.TaskContext) {
			for c := 0; c < p.Calls; c++ {
				tc.Submit(nanos.TaskSpec{
					Label:   "axpy-call",
					Kind:    "call",
					Touches: noTouch,
					Deps: []nanos.Dep{
						nanos.DIn(xd, nanos.Iv(0, p.N)),
						nanos.DInOut(yd, nanos.Iv(0, p.N)),
					},
					Body: func(tc *nanos.TaskContext) {
						forBlocks(func(s, e int64) { tc.Submit(leaf(s, e)) })
						if !mode.Virtual {
							// The paper's taskwait at the end of the outer
							// task. In virtual mode the default wait-clause
							// completion has the same release timing.
							tc.Taskwait()
						}
					},
				})
			}
		})

	case AxpyNestWeak, AxpyNestWeakRelease:
		release := variant == AxpyNestWeakRelease
		rt.Run(func(tc *nanos.TaskContext) {
			for c := 0; c < p.Calls; c++ {
				tc.Submit(nanos.TaskSpec{
					Label:    "axpy-call",
					Kind:     "call",
					Touches:  noTouch,
					WeakWait: true,
					Deps: []nanos.Dep{
						nanos.DWeakIn(xd, nanos.Iv(0, p.N)),
						nanos.DWeakInOut(yd, nanos.Iv(0, p.N)),
					},
					Body: func(tc *nanos.TaskContext) {
						forBlocks(func(s, e int64) {
							tc.Submit(leaf(s, e))
							if release {
								// Release the inout region the just-created
								// subtask covers (§VIII-A): the hand-over
								// makes the region flow to the next call as
								// soon as the subtask finishes.
								tc.Release(nanos.DWeakInOut(yd, nanos.Iv(s, e)))
							}
						})
					},
				})
			}
		})

	default:
		return Result{}, errf("axpy: unknown variant %q", variant)
	}

	res := measure(rt, startT)
	if p.Compute {
		want := float64(p.Calls) * p.Alpha
		for i, v := range y {
			if v != want {
				return res, errf("axpy %s: y[%d] = %v, want %v", variant, i, v, want)
			}
		}
	}
	return res, nil
}

// AxpyFeatures returns the Table I feature row of a variant: nested,
// outer/inner dependency kinds and synchronization between levels.
func AxpyFeatures(v AxpyVariant) (nested, outerDeps, innerDeps, sync string) {
	switch v {
	case AxpyNestWeakRelease:
		return "yes", "weak", "regular", "weakwait and release directive"
	case AxpyNestWeak:
		return "yes", "weak", "regular", "weakwait"
	case AxpyNestDepend:
		return "yes", "regular", "regular", "taskwait"
	case AxpyFlatDepend:
		return "no", "—", "regular", "no"
	case AxpyFlatTaskwait:
		return "no", "—", "none", "taskwait"
	case AxpyWorksharing:
		return "no", "—", "union (one task)", "chunk-distributed body"
	}
	return "?", "?", "?", "?"
}
