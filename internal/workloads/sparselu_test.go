package workloads

import (
	"fmt"
	"math"
	"testing"
)

func TestLUKernelsFactorDenseBlock(t *testing.T) {
	// One dense 8×8 block: lu0 then L·U must reconstruct the original.
	const ts = 8
	p := SparseLUParams{B: 1, TS: ts, Density: 1, Seed: 3}
	m := newLUMatrix(p)
	orig := append([]float64(nil), m.at(0, 0)...)
	luKernelLU0(m.at(0, 0), ts)
	a := m.at(0, 0)
	l := func(i, j int64) float64 {
		switch {
		case i == j:
			return 1
		case i > j:
			return a[i*ts+j]
		}
		return 0
	}
	u := func(i, j int64) float64 {
		if i <= j {
			return a[i*ts+j]
		}
		return 0
	}
	for i := int64(0); i < ts; i++ {
		for j := int64(0); j < ts; j++ {
			var s float64
			for k := int64(0); k < ts; k++ {
				s += l(i, k) * u(k, j)
			}
			if math.Abs(s-orig[i*ts+j]) > 1e-9*ts {
				t.Fatalf("LU[%d,%d] = %v, want %v", i, j, s, orig[i*ts+j])
			}
		}
	}
}

func TestSparseLUAllVariantsMatchReference(t *testing.T) {
	p := SparseLUParams{B: 6, TS: 8, Density: 0.4, Seed: 11, Compute: true}
	for _, v := range SparseLUVariants {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", v, workers), func(t *testing.T) {
				_, _, err := RunSparseLU(Mode{Workers: workers}, v, p)
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestSparseLUFillIn(t *testing.T) {
	// A sparse pattern must produce fill-in, and all variants must agree
	// on how much.
	p := SparseLUParams{B: 8, TS: 4, Density: 0.3, Seed: 5, Compute: true}
	var counts []int64
	for _, v := range SparseLUVariants {
		_, fills, err := RunSparseLU(Mode{Workers: 4}, v, p)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, fills)
	}
	if counts[0] == 0 {
		t.Error("no fill-in on a 30 percent dense pattern; the test is vacuous")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("variant %s fill-ins = %d, want %d", SparseLUVariants[i], counts[i], counts[0])
		}
	}
}

func TestSparseLUDensityExtremes(t *testing.T) {
	// Fully dense: no fill-in (everything exists). Diagonal-only: nothing
	// to eliminate, zero fill-in, and the diagonal blocks just factor.
	_, fills, err := RunSparseLU(Mode{Workers: 2}, LUFlatDepend,
		SparseLUParams{B: 4, TS: 4, Density: 1, Seed: 1, Compute: true})
	if err != nil {
		t.Fatal(err)
	}
	if fills != 0 {
		t.Errorf("dense pattern produced %d fill-ins", fills)
	}
	_, fills, err = RunSparseLU(Mode{Workers: 2}, LUNestWeak,
		SparseLUParams{B: 4, TS: 4, Density: 0, Seed: 1, Compute: true})
	if err != nil {
		t.Fatal(err)
	}
	if fills != 0 {
		t.Errorf("diagonal pattern produced %d fill-ins", fills)
	}
}

func TestSparseLULintClean(t *testing.T) {
	p := SparseLUParams{B: 6, TS: 8, Density: 0.4, Seed: 2, Compute: true}
	for _, v := range SparseLUVariants {
		res, _, err := RunSparseLU(Mode{Workers: 4, Verify: true}, v, p)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Runtime.ViolationCount(); n != 0 {
			t.Errorf("%s: %d lint violations: %v", v, n, res.Runtime.Violations())
		}
	}
}

func TestSparseLUVirtualOrdering(t *testing.T) {
	p := SparseLUParams{B: 10, TS: 8, Density: 0.5, Seed: 9, Compute: false}
	mode := Mode{Workers: 8, Virtual: true}
	get := func(v SparseLUVariant) int64 {
		res, _, err := RunSparseLU(mode, v, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.VirtualTime
	}
	weak, flat, nest := get(LUNestWeak), get(LUFlatDepend), get(LUNestDepend)
	if weak >= nest {
		t.Errorf("nest-weak (%d) not faster than nest-depend (%d)", weak, nest)
	}
	if f := float64(weak) / float64(flat); f > 1.15 {
		t.Errorf("nest-weak %.2fx slower than flat-depend; want within 15%%", f)
	}
}

func TestSparseLUBadParams(t *testing.T) {
	if _, _, err := RunSparseLU(Mode{Workers: 1}, LUFlatDepend, SparseLUParams{B: 0, TS: 4}); err == nil {
		t.Error("B=0 should fail")
	}
	if _, _, err := RunSparseLU(Mode{Workers: 1}, SparseLUVariant("nope"), SparseLUParams{B: 2, TS: 2}); err == nil {
		t.Error("unknown variant should fail")
	}
}
