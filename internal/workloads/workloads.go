// Package workloads implements the paper's three evaluation benchmarks in
// every variant of Table I:
//
//   - Multiple AXPY (§VIII-A): 20 calls of a blocked axpy over the same
//     vectors, in five variants (nest-weak-release, nest-weak, flat-depend,
//     flat-taskwait, nest-depend).
//   - Gauss-Seidel heat propagation (§VIII-B): a blocked 2-D stencil with
//     wavefront parallelism inside an iteration and across iterations, in
//     four variants.
//   - Quicksort followed by prefix sum (§VIII-C): two recursive algorithms
//     connected through fine-grained dependencies, with weak and regular
//     formulations.
//
// Every run validates its numerical result against a sequential reference.
package workloads

import (
	"fmt"
	"runtime"
	"time"

	nanos "repro"
)

// Mode selects the execution configuration shared by all benchmarks.
type Mode struct {
	// Workers is the simulated core count.
	Workers int
	// Virtual selects virtual-time execution (for core-count sweeps beyond
	// the host machine, Figures 4 and 6).
	Virtual bool
	// Policy is the ready-queue discipline of the central pool.
	Policy nanos.Policy
	// ReadyPool selects the ready-pool implementation (scheduler ablation;
	// real mode only — PoolAuto picks sharded stealing).
	ReadyPool nanos.PoolKind
	// Stealing is the legacy selector for the work-stealing pool (same as
	// ReadyPool = PoolStealing).
	Stealing bool
	// Engine selects the dependency-engine implementation (engine A/B
	// comparisons; EngineAuto picks sharded).
	Engine nanos.EngineKind
	// NoHandoff disables direct successor hand-off (locality ablation).
	NoHandoff bool
	// Trace enables span recording (needed for timelines and, in real
	// mode, effective parallelism).
	Trace bool
	// Cache enables per-worker cache simulation (Figure 3 bottom).
	Cache *nanos.CacheConfig
	// SharedCache models one shared cache instead of per-worker caches.
	SharedCache bool
	// Throttle bounds live tasks (lookahead-window ablation). 0 = off.
	Throttle int
	// ThrottleImpl selects the throttle-window implementation (throttle
	// ablation; ThrottleAuto picks the sharded token bucket in real mode).
	ThrottleImpl nanos.ThrottleKind
	// SubmitCost charges the virtual-mode creator this many cost units per
	// task instantiation, modeling the runtime's creation overhead (the
	// single-generator bottleneck of Figure 4). 0 = free creation.
	SubmitCost int64
	// Worksharing selects the Worksharing execution strategy
	// (core.Config.WorksharingImpl) for the worksharing workload variants
	// (AxpyWorksharing, GSWsWavefront): WorksharingAuto/Chunked runs each
	// region as one dependency-carrying task with chunk-distributed body,
	// WorksharingExpand expands to one task per chunk (the Taskloop-shaped
	// baseline of cmd/reproduce's worksharing table). Variants that do not
	// use Worksharing ignore it.
	Worksharing nanos.WorksharingKind
	// Replay selects the record-and-replay taskgraph cache
	// (core.Config.Replay) for the graph-region workload formulations —
	// the GSGraph Gauss-Seidel variant and the heat workload, whose
	// per-iteration sweeps run as TaskContext.Graph regions. ReplayAuto
	// resolves to on in real mode; ReplayOff runs the same regions through
	// the live engine (the before/after comparison of cmd/reproduce's
	// replay table). Variants that do not use graph regions ignore it.
	Replay nanos.ReplayKind
	// Verify enables the runtime's lint checks (Touch and child-entry
	// coverage); findings are available on Result.Runtime.Violations().
	Verify bool
	// Debug enables the runtime's end-of-run invariant checks (every
	// dependency fragment released, no live tasks); violations panic out
	// of the run.
	Debug bool
	// Watchdog enables the runtime's stall watchdog (heartbeat epochs plus
	// a sampling monitor; core.Config.Watchdog) — the overhead A/B of the
	// watchdog perf entries, and stall detection under the chaos bench.
	Watchdog bool
}

func (m Mode) config() nanos.Config {
	w := m.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return nanos.Config{
		Workers:           w,
		Virtual:           m.Virtual,
		Policy:            m.Policy,
		ReadyPool:         m.ReadyPool,
		Stealing:          m.Stealing,
		DepEngine:         m.Engine,
		NoHandoff:         m.NoHandoff,
		EnableTrace:       m.Trace,
		Cache:             m.Cache,
		SharedCache:       m.SharedCache,
		ThrottleOpenTasks: m.Throttle,
		ThrottleImpl:      m.ThrottleImpl,
		Replay:            m.Replay,
		WorksharingImpl:   m.Worksharing,
		VirtualSubmitCost: m.SubmitCost,
		Verify:            m.Verify,
		Debug:             m.Debug,
		Watchdog:          m.Watchdog,
	}
}

// Result captures the measurements of one benchmark run.
type Result struct {
	// Wall is the real-mode wall-clock time of the task program.
	Wall time.Duration
	// VirtualTime is the virtual-mode makespan in cost units.
	VirtualTime int64
	// Flops is the total declared floating-point work.
	Flops int64
	// Tasks is the number of tasks executed.
	Tasks int64
	// MissRatio is the simulated cache miss ratio (0 if disabled).
	MissRatio float64
	// EffectiveParallelism is busy time over span (Figure 6's metric).
	EffectiveParallelism float64
	// Runtime gives access to the tracer and dependency stats.
	Runtime *nanos.Runtime
}

// GFlops returns Flops over the run's duration. Real mode: 1e9 flop/s.
// Virtual mode: flops per virtual cost unit — a relative throughput, only
// meaningful for comparisons at fixed total work, which is exactly how the
// scaling figures use it.
func (r Result) GFlops() float64 {
	if r.VirtualTime > 0 {
		return float64(r.Flops) / float64(r.VirtualTime)
	}
	if r.Wall > 0 {
		return float64(r.Flops) / r.Wall.Seconds() / 1e9
	}
	return 0
}

func measure(rt *nanos.Runtime, start time.Time) Result {
	return Result{
		Wall:                 time.Since(start),
		VirtualTime:          rt.VirtualTime(),
		Flops:                rt.Flops(),
		Tasks:                rt.TaskCount(),
		MissRatio:            rt.CacheMissRatio(),
		EffectiveParallelism: rt.EffectiveParallelism(),
		Runtime:              rt,
	}
}

func errf(format string, args ...any) error { return fmt.Errorf("workloads: "+format, args...) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
