package workloads

import (
	"time"

	nanos "repro"
)

// The heat workload is a blocked Jacobi heat-diffusion stencil: two planes
// ping-pong as source and destination, one task per TS×TS tile reading its
// 5-point neighborhood from the source plane and overwriting its tile of
// the destination. Unlike the in-place Gauss-Seidel sweep (§VIII-B), every
// iteration's tiles are mutually independent — all ordering is across
// iterations — which makes it the canonical record-and-replay workload:
// each sweep is one graph region (TaskContext.Graph), the even and odd
// phases record once each, and with Mode.Replay on every later sweep
// bypasses the dependency engine entirely.

// HeatParams sizes the heat workload: Iters Jacobi sweeps of an N×N plane
// decomposed into TS×TS tiles (N must be a multiple of TS), with a
// one-element fixed boundary ring.
type HeatParams struct {
	N     int64
	TS    int64
	Iters int
	// Compute performs the real stencil and validates against a sequential
	// reference; tile cost is TS·TS either way.
	Compute bool
}

// heatKernel writes tile (bi,bj) (1-based block coordinates) of dst from
// src's 4-point neighborhood on the (n+2)×(n+2) planes.
func heatKernel(dst, src []float64, n, ts, bi, bj int64) {
	m := n + 2
	r0 := (bi-1)*ts + 1
	c0 := (bj-1)*ts + 1
	for r := r0; r < r0+ts; r++ {
		row := r * m
		up := (r - 1) * m
		down := (r + 1) * m
		for c := c0; c < c0+ts; c++ {
			dst[row+c] = 0.25 * (src[up+c] + src[row+c-1] + src[row+c+1] + src[down+c])
		}
	}
}

// heatSequential runs the reference ping-pong sweep and returns the plane
// holding the final result.
func heatSequential(a, b []float64, n, ts int64, iters int) []float64 {
	blocks := n / ts
	src, dst := a, b
	for it := 0; it < iters; it++ {
		for i := int64(1); i <= blocks; i++ {
			for j := int64(1); j <= blocks; j++ {
				heatKernel(dst, src, n, ts, i, j)
			}
		}
		src, dst = dst, src
	}
	return src
}

// RunHeat executes the heat workload and returns its measurements. Each
// sweep runs as a graph region named by its phase ("heat-even" writes
// plane B, "heat-odd" writes plane A), so under Mode.Replay both phases
// record on their first sweep and replay on every later one —
// Result.Runtime.ReplayStats() exposes the counts.
func RunHeat(mode Mode, p HeatParams) (Result, error) {
	if p.N <= 0 || p.TS <= 0 || p.N%p.TS != 0 || p.Iters <= 0 {
		return Result{}, errf("heat: bad params %+v (N must be a multiple of TS)", p)
	}
	blocks := p.N / p.TS
	side := blocks + 2
	total := side * side * p.TS * p.TS

	rt := nanos.New(mode.config())
	ad := rt.NewData("A", total, 8)
	bd := rt.NewData("B", total, 8)

	var a, b []float64
	if p.Compute {
		a = make([]float64, (p.N+2)*(p.N+2))
		b = make([]float64, (p.N+2)*(p.N+2))
		gsInit(a, p.N)
		gsInit(b, p.N) // boundary ring is fixed on both planes
	}

	blk := func(i, j int64) nanos.Interval { return nanos.BlockInterval(side, p.TS, i, j) }

	tile := func(dst, src nanos.DataID, dstP, srcP []float64, i, j int64) nanos.TaskSpec {
		return nanos.TaskSpec{
			Label: "tile",
			Kind:  "tile",
			Cost:  p.TS * p.TS,
			Flops: 4 * p.TS * p.TS,
			Deps: []nanos.Dep{
				nanos.DIn(src, blk(i-1, j)),
				nanos.DIn(src, blk(i, j-1)),
				// The kernel reads the center tile of src too: every
				// interior point's four neighbors are within blk(i,j).
				nanos.DIn(src, blk(i, j)),
				nanos.DIn(src, blk(i, j+1)),
				nanos.DIn(src, blk(i+1, j)),
				nanos.DOut(dst, blk(i, j)),
			},
			Body: func(*nanos.TaskContext) {
				if p.Compute {
					heatKernel(dstP, srcP, p.N, p.TS, i, j)
				}
			},
		}
	}

	startT := time.Now()
	rt.Run(func(tc *nanos.TaskContext) {
		srcD, dstD := ad, bd
		srcP, dstP := a, b
		for it := 0; it < p.Iters; it++ {
			name := "heat-even"
			if it%2 == 1 {
				name = "heat-odd"
			}
			sd, dd, sp, dp := srcD, dstD, srcP, dstP
			tc.Graph(name, func(tc *nanos.TaskContext) {
				for i := int64(1); i <= blocks; i++ {
					for j := int64(1); j <= blocks; j++ {
						tc.Submit(tile(dd, sd, dp, sp, i, j))
					}
				}
			})
			srcD, dstD = dstD, srcD
			srcP, dstP = dstP, srcP
		}
	})

	res := measure(rt, startT)
	if p.Compute {
		refA := make([]float64, (p.N+2)*(p.N+2))
		refB := make([]float64, (p.N+2)*(p.N+2))
		gsInit(refA, p.N)
		gsInit(refB, p.N)
		ref := heatSequential(refA, refB, p.N, p.TS, p.Iters)
		got := a
		if p.Iters%2 == 1 {
			got = b
		}
		for i := range ref {
			if got[i] != ref[i] {
				return res, errf("heat: element %d = %v, want %v", i, got[i], ref[i])
			}
		}
	}
	return res, nil
}
