package regions

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Model-based property test: a Map under random Set/Remove/VisitRange/
// MergeRange sequences must stay valid and agree point-wise with a naive
// per-element reference model. MergeRange must never change the map's
// observable contents — only its entry count.
func TestQuickMapWithMergeMatchesModel(t *testing.T) {
	const universe = 128
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap[int](nil)
		model := make([]*int, universe) // nil = uncovered

		randIv := func() Interval {
			lo := rng.Int63n(universe)
			hi := lo + 1 + rng.Int63n(universe-lo)
			return Iv(lo, hi)
		}
		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0: // Set
				iv := randIv()
				v := rng.Intn(4)
				m.Set(iv, v)
				for p := iv.Lo; p < iv.Hi; p++ {
					vv := v
					model[p] = &vv
				}
			case 1: // Remove
				iv := randIv()
				m.Remove(iv)
				for p := iv.Lo; p < iv.Hi; p++ {
					model[p] = nil
				}
			case 2: // VisitRange mutation: increment values in range
				iv := randIv()
				m.VisitRange(iv, func(_ Interval, v *int) { *v++ })
				for p := iv.Lo; p < iv.Hi; p++ {
					if model[p] != nil {
						*model[p]++
					}
				}
				// VisitRange splits shared entries; the per-point model
				// must not alias, so rebuild pointers.
				for p := range model {
					if model[p] != nil {
						v := *model[p]
						model[p] = &v
					}
				}
			case 3: // MergeRange on equality: contents must be unchanged
				m.MergeRange(randIv(), func(a, b int) bool { return a == b })
			case 4: // Materialize with default value
				iv := randIv()
				m.Materialize(iv, func(Interval) int { return 9 }, nil)
				for p := iv.Lo; p < iv.Hi; p++ {
					if model[p] == nil {
						v := 9
						model[p] = &v
					}
				}
			}
			if err := m.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		// Point-wise comparison.
		for p := int64(0); p < universe; p++ {
			got := m.Get(p)
			want := model[p]
			switch {
			case got == nil && want == nil:
			case got == nil || want == nil:
				t.Logf("seed %d: point %d coverage mismatch (map %v, model %v)", seed, p, got, want)
				return false
			case *got != *want:
				t.Logf("seed %d: point %d = %d, model %d", seed, p, *got, *want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// MergeRange with an always-true predicate over fully covered runs must
// produce the minimal entry count (one entry per maximal covered run).
func TestMergeRangeMinimality(t *testing.T) {
	m := NewMap[int](nil)
	for i := int64(0); i < 50; i++ {
		m.Set(Iv(i*2, i*2+1), 1) // 50 disjoint single-element entries w/ gaps
	}
	m.MergeRange(Iv(0, 100), func(a, b int) bool { return true })
	if m.Count() != 50 {
		t.Errorf("gapped entries merged: %d, want 50", m.Count())
	}
	m2 := NewMap[int](nil)
	for i := int64(0); i < 50; i++ {
		m2.Set(Iv(i, i+1), 1)
	}
	m2.MergeRange(Iv(0, 50), func(a, b int) bool { return true })
	if m2.Count() != 1 {
		t.Errorf("contiguous equal entries not fully merged: %d, want 1", m2.Count())
	}
}
