package regions

// Array-section helpers: translate multi-dimensional array sections (the
// depend-clause syntax of the paper, e.g. A[i][j][:][:]) into flat element
// intervals over a row-major layout.

// Section2D describes a rectangular section of a row-major 2-D array with
// rowStride elements per row.
type Section2D struct {
	RowStride int64 // elements per full row of the underlying array
	Row, Col  int64 // first row / column of the section
	Rows      int64 // number of rows in the section
	Cols      int64 // number of columns in the section
}

// Intervals returns the flat element intervals of the section, coalescing
// adjacent full rows into single intervals where possible.
func (s Section2D) Intervals() []Interval {
	if s.Rows <= 0 || s.Cols <= 0 {
		return nil
	}
	if s.Cols == s.RowStride && s.Col == 0 {
		// Full-width rows are contiguous.
		lo := s.Row * s.RowStride
		return []Interval{{Lo: lo, Hi: lo + s.Rows*s.RowStride}}
	}
	out := make([]Interval, 0, s.Rows)
	for r := int64(0); r < s.Rows; r++ {
		lo := (s.Row+r)*s.RowStride + s.Col
		out = append(out, Interval{Lo: lo, Hi: lo + s.Cols})
	}
	return out
}

// Strided returns intervals for a strided 1-D section: count elements
// starting at start, taking runLen consecutive elements every stride.
// This models depend entries like data[i:N:stride] used by the prefix-sum
// benchmark (§VIII-C), where a recursive call touches every TS-th element.
func Strided(start, runLen, stride, count int64) []Interval {
	if count <= 0 || runLen <= 0 {
		return nil
	}
	if runLen >= stride {
		// Degenerate: runs touch, the whole range is contiguous.
		return []Interval{{Lo: start, Hi: start + (count-1)*stride + runLen}}
	}
	out := make([]Interval, 0, count)
	for i := int64(0); i < count; i++ {
		lo := start + i*stride
		out = append(out, Interval{Lo: lo, Hi: lo + runLen})
	}
	return out
}

// BlockInterval returns the flat interval of tile (i, j) in a block-array
// layout [blocksPerSide][blocksPerSide][ts][ts] where each tile is stored
// contiguously (the Gauss-Seidel data layout of listing 6).
func BlockInterval(blocksPerSide, ts, i, j int64) Interval {
	lo := (i*blocksPerSide + j) * ts * ts
	return Interval{Lo: lo, Hi: lo + ts*ts}
}
