package regions

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapSetGet(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(0, 10), 1)
	m.Set(Iv(20, 30), 2)
	if v := m.Get(5); v == nil || *v != 1 {
		t.Fatalf("Get(5) = %v", v)
	}
	if v := m.Get(15); v != nil {
		t.Fatalf("Get(15) should be nil, got %v", *v)
	}
	if v := m.Get(29); v == nil || *v != 2 {
		t.Fatalf("Get(29) = %v", v)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapSetOverwriteFragments(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(0, 10), 1)
	m.Set(Iv(3, 7), 2)
	// Expect [0,3)=1 [3,7)=2 [7,10)=1
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3: %v", m.Count(), m)
	}
	for p, want := range map[int64]int{0: 1, 3: 2, 6: 2, 7: 1, 9: 1} {
		if v := m.Get(p); v == nil || *v != want {
			t.Fatalf("Get(%d) = %v, want %d", p, v, want)
		}
	}
}

func TestMapVisitRangeSplitsBoundaries(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(0, 100), 7)
	var seen []Interval
	m.VisitRange(Iv(30, 60), func(iv Interval, v *int) {
		seen = append(seen, iv)
		*v = 8
	})
	if len(seen) != 1 || !seen[0].Equal(Iv(30, 60)) {
		t.Fatalf("visited %v", seen)
	}
	// The mutation must be confined to [30,60).
	for p, want := range map[int64]int{0: 7, 29: 7, 30: 8, 59: 8, 60: 7, 99: 7} {
		if v := m.Get(p); v == nil || *v != want {
			t.Fatalf("Get(%d) = %v, want %d", p, v, want)
		}
	}
	if m.Count() != 3 {
		t.Fatalf("expected 3 fragments, got %d", m.Count())
	}
}

func TestMapVisitRangeGaps(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(10, 20), 1)
	m.Set(Iv(30, 40), 2)
	var ivs, gaps []Interval
	m.VisitRangeGaps(Iv(0, 50), func(iv Interval, _ *int) { ivs = append(ivs, iv) },
		func(g Interval) { gaps = append(gaps, g) })
	if len(ivs) != 2 {
		t.Fatalf("entries %v", ivs)
	}
	wantGaps := []Interval{Iv(0, 10), Iv(20, 30), Iv(40, 50)}
	if len(gaps) != len(wantGaps) {
		t.Fatalf("gaps %v, want %v", gaps, wantGaps)
	}
	for i := range wantGaps {
		if !gaps[i].Equal(wantGaps[i]) {
			t.Fatalf("gaps %v, want %v", gaps, wantGaps)
		}
	}
}

func TestMapMaterialize(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(10, 20), 5)
	var visited []Interval
	m.Materialize(Iv(5, 25), func(Interval) int { return -1 }, func(iv Interval, v *int) {
		visited = append(visited, iv)
	})
	if !m.Covered(Iv(5, 25)) {
		t.Fatal("range should be fully covered after Materialize")
	}
	if len(visited) != 3 {
		t.Fatalf("visited %v", visited)
	}
	if v := m.Get(7); v == nil || *v != -1 {
		t.Fatalf("gap value = %v, want -1", v)
	}
	if v := m.Get(15); v == nil || *v != 5 {
		t.Fatalf("existing value clobbered: %v", v)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapRemove(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(0, 30), 1)
	m.Remove(Iv(10, 20))
	if m.Covered(Iv(0, 30)) {
		t.Fatal("middle should be removed")
	}
	if !m.Covered(Iv(0, 10)) || !m.Covered(Iv(20, 30)) {
		t.Fatal("ends should remain")
	}
	if m.CoveredLen() != 20 {
		t.Fatalf("CoveredLen = %d", m.CoveredLen())
	}
}

func TestMapCloneOnSplit(t *testing.T) {
	type val struct{ xs []int }
	m := NewMap[val](func(v val) val {
		c := make([]int, len(v.xs))
		copy(c, v.xs)
		return val{xs: c}
	})
	m.Set(Iv(0, 10), val{xs: []int{1}})
	m.VisitRange(Iv(5, 10), func(_ Interval, v *val) {
		v.xs = append(v.xs, 2)
	})
	left := m.Get(0)
	right := m.Get(5)
	if len(left.xs) != 1 || len(right.xs) != 2 {
		t.Fatalf("clone-on-split failed: left=%v right=%v", left.xs, right.xs)
	}
	// Mutating one side must not alias the other.
	right.xs[0] = 99
	if left.xs[0] == 99 {
		t.Fatal("slices alias across split")
	}
}

func TestMapVisitRangeEmptyInterval(t *testing.T) {
	m := NewMap[int](nil)
	m.Set(Iv(0, 10), 1)
	called := false
	m.VisitRange(Iv(5, 5), func(Interval, *int) { called = true })
	if called {
		t.Fatal("empty range should visit nothing")
	}
	if m.Count() != 1 {
		t.Fatal("empty range should not fragment the map")
	}
}

// Property: the map behaves like an array of optional values under
// Set/Remove/Materialize, and its invariants hold throughout.
func TestMapQuickAgainstArray(t *testing.T) {
	const universe = 128
	f := func(ops []struct {
		Kind   uint8
		Lo, Hi uint8
		V      int8
	}) bool {
		m := NewMap[int](nil)
		ref := make([]*int, universe)
		for _, op := range ops {
			lo, hi := int64(op.Lo)%universe, int64(op.Hi)%universe
			if lo > hi {
				lo, hi = hi, lo
			}
			iv := Iv(lo, hi)
			v := int(op.V)
			switch op.Kind % 3 {
			case 0:
				m.Set(iv, v)
				for p := lo; p < hi; p++ {
					x := v
					ref[p] = &x
				}
			case 1:
				m.Remove(iv)
				for p := lo; p < hi; p++ {
					ref[p] = nil
				}
			case 2:
				m.Materialize(iv, func(Interval) int { return v }, nil)
				for p := lo; p < hi; p++ {
					if ref[p] == nil {
						x := v
						ref[p] = &x
					}
				}
			}
			if err := m.Validate(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		for p := int64(0); p < universe; p++ {
			got := m.Get(p)
			want := ref[p]
			if (got == nil) != (want == nil) {
				t.Logf("presence mismatch at %d: got %v want %v", p, got, want)
				return false
			}
			if got != nil && *got != *want {
				t.Logf("value mismatch at %d: got %d want %d", p, *got, *want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: VisitRange visits exactly the covered sub-intervals of the query
// and its mutations are confined to the query range.
func TestMapQuickVisitConfinement(t *testing.T) {
	const universe = 100
	f := func(setups []struct{ Lo, Hi uint8 }, qLo, qHi uint8) bool {
		m := NewMap[int](nil)
		ref := make([]*int, universe)
		for _, s := range setups {
			lo, hi := int64(s.Lo)%universe, int64(s.Hi)%universe
			if lo > hi {
				lo, hi = hi, lo
			}
			m.Set(Iv(lo, hi), 0)
			for p := lo; p < hi; p++ {
				z := 0
				ref[p] = &z
			}
		}
		lo, hi := int64(qLo)%universe, int64(qHi)%universe
		if lo > hi {
			lo, hi = hi, lo
		}
		m.VisitRange(Iv(lo, hi), func(iv Interval, v *int) {
			if iv.Lo < lo || iv.Hi > hi {
				t.Logf("visited %v outside query [%d,%d)", iv, lo, hi)
			}
			*v = 1
		})
		for p := int64(0); p < universe; p++ {
			got := m.Get(p)
			if (got == nil) != (ref[p] == nil) {
				return false
			}
			if got == nil {
				continue
			}
			inQuery := p >= lo && p < hi
			if inQuery && *got != 1 {
				return false
			}
			if !inQuery && *got != 0 {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}
