package regions

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Iv(3, 7)
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if iv.Len() != 4 {
		t.Fatalf("Len = %d, want 4", iv.Len())
	}
	if !iv.Contains(3) || iv.Contains(7) || iv.Contains(2) {
		t.Fatal("Contains wrong at boundaries")
	}
	if !Iv(5, 5).Empty() || !Iv(6, 2).Empty() {
		t.Fatal("degenerate intervals should be empty")
	}
	if Iv(5, 5).Len() != 0 {
		t.Fatal("empty interval should have zero length")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Interval
		overlap bool
		inter   Interval
	}{
		{Iv(0, 10), Iv(5, 15), true, Iv(5, 10)},
		{Iv(0, 5), Iv(5, 10), false, Interval{}},
		{Iv(0, 10), Iv(2, 3), true, Iv(2, 3)},
		{Iv(0, 10), Iv(10, 20), false, Interval{}},
		{Iv(0, 0), Iv(0, 10), false, Interval{}},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.overlap)
		}
		if got := c.b.Overlaps(c.a); got != c.overlap {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
		if got := c.a.Intersect(c.b); !got.Equal(c.inter) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.inter)
		}
	}
}

func TestIntervalContainsIv(t *testing.T) {
	if !Iv(0, 10).ContainsIv(Iv(0, 10)) {
		t.Fatal("interval should contain itself")
	}
	if !Iv(0, 10).ContainsIv(Iv(3, 3)) {
		t.Fatal("any interval contains the empty interval")
	}
	if Iv(0, 10).ContainsIv(Iv(5, 11)) {
		t.Fatal("should not contain overhanging interval")
	}
}

func TestSetAddMerging(t *testing.T) {
	s := NewSet()
	s.Add(Iv(0, 5))
	s.Add(Iv(10, 15))
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	// Adjacent intervals merge.
	s.Add(Iv(5, 10))
	if s.Count() != 1 || !s.Contains(Iv(0, 15)) {
		t.Fatalf("expected single merged interval, got %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAddOverlapping(t *testing.T) {
	s := NewSet(Iv(0, 10), Iv(20, 30), Iv(40, 50))
	s.Add(Iv(5, 45))
	if s.Count() != 1 || s.Len() != 50 {
		t.Fatalf("expected one interval of 50 elements, got %v", s)
	}
}

func TestSetRemoveSplits(t *testing.T) {
	s := NewSet(Iv(0, 10))
	s.Remove(Iv(3, 7))
	if s.Count() != 2 || s.Len() != 6 {
		t.Fatalf("expected {[0,3) [7,10)}, got %v", s)
	}
	if s.Contains(Iv(3, 4)) || !s.Contains(Iv(0, 3)) || !s.Contains(Iv(7, 10)) {
		t.Fatalf("wrong content after remove: %v", s)
	}
	s.Remove(Iv(0, 100))
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatalf("expected empty set, got %v", s)
	}
}

func TestSetContainsAcrossEntries(t *testing.T) {
	s := NewSet(Iv(0, 5), Iv(7, 10))
	if s.Contains(Iv(0, 10)) {
		t.Fatal("set with a gap should not contain the spanning interval")
	}
	s.Add(Iv(5, 7))
	if !s.Contains(Iv(0, 10)) {
		t.Fatal("set should contain spanning interval after filling gap")
	}
}

func TestSetOverlaps(t *testing.T) {
	s := NewSet(Iv(10, 20))
	if s.Overlaps(Iv(0, 10)) || s.Overlaps(Iv(20, 30)) {
		t.Fatal("touching intervals do not overlap")
	}
	if !s.Overlaps(Iv(19, 25)) {
		t.Fatal("expected overlap")
	}
}

// Property: a Set behaves like a bitset under Add/Remove.
func TestSetQuickAgainstBitset(t *testing.T) {
	const universe = 200
	f := func(ops []struct {
		Add    bool
		Lo, Hi uint8
	}) bool {
		s := NewSet()
		ref := make([]bool, universe)
		for _, op := range ops {
			lo, hi := int64(op.Lo)%universe, int64(op.Hi)%universe
			if lo > hi {
				lo, hi = hi, lo
			}
			iv := Iv(lo, hi)
			if op.Add {
				s.Add(iv)
			} else {
				s.Remove(iv)
			}
			for p := lo; p < hi; p++ {
				ref[p] = op.Add
			}
			if err := s.Validate(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		var refLen int64
		for p := int64(0); p < universe; p++ {
			if ref[p] {
				refLen++
			}
			if s.Contains(Iv(p, p+1)) != ref[p] {
				t.Logf("mismatch at %d", p)
				return false
			}
		}
		return s.Len() == refLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSection2DFullRows(t *testing.T) {
	s := Section2D{RowStride: 10, Row: 2, Col: 0, Rows: 3, Cols: 10}
	ivs := s.Intervals()
	if len(ivs) != 1 || !ivs[0].Equal(Iv(20, 50)) {
		t.Fatalf("full rows should coalesce, got %v", ivs)
	}
}

func TestSection2DPartialRows(t *testing.T) {
	s := Section2D{RowStride: 10, Row: 1, Col: 2, Rows: 2, Cols: 3}
	ivs := s.Intervals()
	want := []Interval{Iv(12, 15), Iv(22, 25)}
	if len(ivs) != len(want) {
		t.Fatalf("got %v, want %v", ivs, want)
	}
	for i := range want {
		if !ivs[i].Equal(want[i]) {
			t.Fatalf("got %v, want %v", ivs, want)
		}
	}
}

func TestSection2DEmpty(t *testing.T) {
	if ivs := (Section2D{RowStride: 10, Rows: 0, Cols: 5}).Intervals(); ivs != nil {
		t.Fatalf("empty section should yield no intervals, got %v", ivs)
	}
}

func TestStrided(t *testing.T) {
	ivs := Strided(5, 1, 4, 3)
	want := []Interval{Iv(5, 6), Iv(9, 10), Iv(13, 14)}
	if len(ivs) != 3 {
		t.Fatalf("got %v", ivs)
	}
	for i := range want {
		if !ivs[i].Equal(want[i]) {
			t.Fatalf("got %v, want %v", ivs, want)
		}
	}
	// Degenerate stride: contiguous runs collapse into one interval.
	ivs = Strided(0, 4, 4, 5)
	if len(ivs) != 1 || !ivs[0].Equal(Iv(0, 20)) {
		t.Fatalf("contiguous strided section should coalesce, got %v", ivs)
	}
}

func TestBlockInterval(t *testing.T) {
	iv := BlockInterval(4, 8, 1, 2)
	if !iv.Equal(Iv((1*4+2)*64, (1*4+2)*64+64)) {
		t.Fatalf("got %v", iv)
	}
}
