// Package regions implements the interval algebra that underpins the
// dependency engine: half-open element intervals, interval sets, and a
// fragmenting interval map.
//
// The paper (§VII) requires dependencies over *partially overlapping* array
// sections: when a new access overlaps existing accesses only in part, the
// engine must fragment both so that dependency state is tracked per exact
// overlap. All of that fragmentation funnels through the Map type in this
// package: values are split by copying, so higher layers can store counters
// and flags per interval without structural fix-ups.
package regions

import "fmt"

// Interval is a half-open interval [Lo, Hi) over element indices.
// An interval with Hi <= Lo is empty.
type Interval struct {
	Lo, Hi int64
}

// Iv is shorthand for constructing an Interval.
func Iv(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Empty reports whether the interval contains no elements.
func (i Interval) Empty() bool { return i.Hi <= i.Lo }

// Len returns the number of elements in the interval (0 if empty).
func (i Interval) Len() int64 {
	if i.Empty() {
		return 0
	}
	return i.Hi - i.Lo
}

// Contains reports whether p lies inside the interval.
func (i Interval) Contains(p int64) bool { return p >= i.Lo && p < i.Hi }

// ContainsIv reports whether o is fully contained in i.
func (i Interval) ContainsIv(o Interval) bool {
	if o.Empty() {
		return true
	}
	return o.Lo >= i.Lo && o.Hi <= i.Hi
}

// Overlaps reports whether the two intervals share at least one element.
func (i Interval) Overlaps(o Interval) bool {
	return i.Lo < o.Hi && o.Lo < i.Hi && !i.Empty() && !o.Empty()
}

// Intersect returns the common part of the two intervals (possibly empty).
func (i Interval) Intersect(o Interval) Interval {
	r := Interval{Lo: max64(i.Lo, o.Lo), Hi: min64(i.Hi, o.Hi)}
	if r.Empty() {
		return Interval{}
	}
	return r
}

// Equal reports whether the two intervals cover exactly the same elements.
// All empty intervals are equal.
func (i Interval) Equal(o Interval) bool {
	if i.Empty() && o.Empty() {
		return true
	}
	return i == o
}

func (i Interval) String() string {
	if i.Empty() {
		return "[)"
	}
	return fmt.Sprintf("[%d,%d)", i.Lo, i.Hi)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Set is a sorted collection of disjoint, non-adjacent, non-empty intervals.
// The zero value is an empty set ready for use.
type Set struct {
	ivs []Interval
}

// NewSet returns a set containing the given intervals.
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts iv into the set, merging with existing intervals as needed.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all intervals overlapping or adjacent to iv.
	lo, hi := iv.Lo, iv.Hi
	first := 0
	for first < len(s.ivs) && s.ivs[first].Hi < lo {
		first++
	}
	last := first
	for last < len(s.ivs) && s.ivs[last].Lo <= hi {
		if s.ivs[last].Lo < lo {
			lo = s.ivs[last].Lo
		}
		if s.ivs[last].Hi > hi {
			hi = s.ivs[last].Hi
		}
		last++
	}
	merged := Interval{Lo: lo, Hi: hi}
	s.ivs = append(s.ivs[:first], append([]Interval{merged}, s.ivs[last:]...)...)
}

// Remove deletes iv from the set, splitting intervals if needed.
func (s *Set) Remove(iv Interval) {
	if iv.Empty() {
		return
	}
	var out []Interval
	for _, e := range s.ivs {
		if !e.Overlaps(iv) {
			out = append(out, e)
			continue
		}
		if e.Lo < iv.Lo {
			out = append(out, Interval{Lo: e.Lo, Hi: iv.Lo})
		}
		if e.Hi > iv.Hi {
			out = append(out, Interval{Lo: iv.Hi, Hi: e.Hi})
		}
	}
	s.ivs = out
}

// Contains reports whether iv is fully covered by the set.
func (s *Set) Contains(iv Interval) bool {
	if iv.Empty() {
		return true
	}
	for _, e := range s.ivs {
		if e.ContainsIv(iv) {
			return true
		}
		// Partial cover at the start: advance.
		if e.Lo <= iv.Lo && e.Hi > iv.Lo {
			iv.Lo = e.Hi
			if iv.Empty() {
				return true
			}
		}
	}
	return false
}

// Overlaps reports whether iv shares any element with the set.
func (s *Set) Overlaps(iv Interval) bool {
	for _, e := range s.ivs {
		if e.Overlaps(iv) {
			return true
		}
	}
	return false
}

// Len returns the total number of elements covered by the set.
func (s *Set) Len() int64 {
	var n int64
	for _, e := range s.ivs {
		n += e.Len()
	}
	return n
}

// Count returns the number of disjoint intervals in the set.
func (s *Set) Count() int { return len(s.ivs) }

// Intervals returns a copy of the intervals in ascending order.
func (s *Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// Visit calls f for each interval in ascending order.
func (s *Set) Visit(f func(Interval)) {
	for _, e := range s.ivs {
		f(e)
	}
}

func (s *Set) String() string {
	out := "{"
	for i, e := range s.ivs {
		if i > 0 {
			out += " "
		}
		out += e.String()
	}
	return out + "}"
}

// Validate checks the set invariants (sorted, disjoint, non-adjacent,
// non-empty) and returns an error describing the first violation.
func (s *Set) Validate() error {
	for i, e := range s.ivs {
		if e.Empty() {
			return fmt.Errorf("regions: set entry %d is empty: %v", i, e)
		}
		if i > 0 && s.ivs[i-1].Hi >= e.Lo {
			return fmt.Errorf("regions: set entries %d,%d overlap or touch: %v %v", i-1, i, s.ivs[i-1], e)
		}
	}
	return nil
}
