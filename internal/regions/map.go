package regions

import (
	"fmt"
	"sort"
	"strings"
)

// Map is a fragmenting interval map: a sorted sequence of disjoint,
// non-empty intervals, each carrying a value of type V.
//
// Map is the mechanism behind the paper's partially-overlapping array
// sections (§VII): whenever an operation addresses an interval whose
// boundaries fall inside an existing entry, the entry is split and its value
// duplicated with the clone function, so per-interval state (dependency
// counters, flags, reader lists) follows fragmentation with no external
// fix-ups.
//
// Map is not safe for concurrent use; the dependency engine serializes all
// accesses under its own lock.
type Map[V any] struct {
	entries []entry[V]
	clone   func(V) V
	// gaps is Materialize's reusable gap-collection scratch: pooled maps
	// cycle through many materializations, and the scratch (plain
	// intervals, no pointers) keeps its capacity across Reset.
	gaps []Interval
}

type entry[V any] struct {
	iv Interval
	v  V
}

// NewMap returns an empty map. clone duplicates a value when an entry is
// split; nil means plain value copy (correct for value types without
// reference fields).
func NewMap[V any](clone func(V) V) *Map[V] {
	return &Map[V]{clone: clone}
}

func (m *Map[V]) dup(v V) V {
	if m.clone == nil {
		return v
	}
	return m.clone(v)
}

// Reset empties the map while keeping the entries slice's capacity, so a
// pooled map's next life pays no allocation until it outgrows its previous
// one. Entries are zeroed first: pooled values may hold pointers (fragment
// boxes, reader lists) that must not stay reachable from the free list.
func (m *Map[V]) Reset() {
	clear(m.entries)
	m.entries = m.entries[:0]
}

// Count returns the number of entries.
func (m *Map[V]) Count() int { return len(m.entries) }

// Empty reports whether the map has no entries.
func (m *Map[V]) Empty() bool { return len(m.entries) == 0 }

// CoveredLen returns the total number of elements covered by entries.
func (m *Map[V]) CoveredLen() int64 {
	var n int64
	for _, e := range m.entries {
		n += e.iv.Len()
	}
	return n
}

// firstOverlapping returns the index of the first entry with Hi > lo.
func (m *Map[V]) firstOverlapping(lo int64) int {
	return sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].iv.Hi > lo
	})
}

// splitAt ensures no entry straddles point p: the entry containing p in its
// interior is split into [lo,p) and [p,hi).
func (m *Map[V]) splitAt(p int64) {
	i := m.firstOverlapping(p)
	if i >= len(m.entries) {
		return
	}
	e := &m.entries[i]
	if !e.iv.Contains(p) || e.iv.Lo == p {
		return
	}
	upper := entry[V]{iv: Interval{Lo: p, Hi: e.iv.Hi}, v: m.dup(e.v)}
	e.iv.Hi = p
	m.entries = append(m.entries, entry[V]{})
	copy(m.entries[i+2:], m.entries[i+1:])
	m.entries[i+1] = upper
}

// VisitRange visits every entry overlapping iv in ascending order, after
// splitting boundary entries so that each visited entry lies fully inside
// iv. Gaps are skipped. f receives the entry interval and a pointer to its
// value; the value may be mutated in place. f must not mutate the map.
func (m *Map[V]) VisitRange(iv Interval, f func(Interval, *V)) {
	if iv.Empty() {
		return
	}
	m.splitAt(iv.Lo)
	m.splitAt(iv.Hi)
	for i := m.firstOverlapping(iv.Lo); i < len(m.entries); i++ {
		e := &m.entries[i]
		if e.iv.Lo >= iv.Hi {
			break
		}
		f(e.iv, &e.v)
	}
}

// VisitRangeGaps is like VisitRange but also reports the gaps (sub-intervals
// of iv not covered by any entry) through gap. Entries and gaps are reported
// in ascending order, interleaved.
func (m *Map[V]) VisitRangeGaps(iv Interval, f func(Interval, *V), gap func(Interval)) {
	if iv.Empty() {
		return
	}
	m.splitAt(iv.Lo)
	m.splitAt(iv.Hi)
	pos := iv.Lo
	for i := m.firstOverlapping(iv.Lo); i < len(m.entries); i++ {
		// Reload the entry pointer on every iteration: f may not mutate the
		// map, but gap callbacks often insert entries via a second pass, so
		// we keep the loop simple and index-based.
		e := &m.entries[i]
		if e.iv.Lo >= iv.Hi {
			break
		}
		if e.iv.Lo > pos && gap != nil {
			gap(Interval{Lo: pos, Hi: e.iv.Lo})
		}
		if f != nil {
			f(e.iv, &e.v)
		}
		pos = e.iv.Hi
	}
	if pos < iv.Hi && gap != nil {
		gap(Interval{Lo: pos, Hi: iv.Hi})
	}
}

// Materialize ensures iv is fully covered by entries, creating entries with
// value init() for every gap, then visits every entry inside iv in order.
func (m *Map[V]) Materialize(iv Interval, init func(Interval) V, f func(Interval, *V)) {
	if iv.Empty() {
		return
	}
	m.splitAt(iv.Lo)
	m.splitAt(iv.Hi)
	// Collect gaps first (cannot insert while iterating).
	m.gaps = m.gaps[:0]
	m.VisitRangeGaps(iv, nil, func(g Interval) { m.gaps = append(m.gaps, g) })
	for _, g := range m.gaps {
		m.insert(g, init(g))
	}
	if f != nil {
		m.VisitRange(iv, f)
	}
}

// insert adds a new entry; the interval must not overlap any existing entry.
func (m *Map[V]) insert(iv Interval, v V) {
	i := m.firstOverlapping(iv.Lo)
	m.entries = append(m.entries, entry[V]{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = entry[V]{iv: iv, v: v}
}

// Set assigns value v over iv, overwriting (and fragmenting) whatever was
// there before.
func (m *Map[V]) Set(iv Interval, v V) {
	if iv.Empty() {
		return
	}
	m.Remove(iv)
	m.insert(iv, v)
}

// Remove deletes all entries (or entry parts) inside iv.
func (m *Map[V]) Remove(iv Interval) {
	if iv.Empty() {
		return
	}
	m.splitAt(iv.Lo)
	m.splitAt(iv.Hi)
	first := m.firstOverlapping(iv.Lo)
	last := first
	for last < len(m.entries) && m.entries[last].iv.Lo < iv.Hi {
		last++
	}
	m.entries = append(m.entries[:first], m.entries[last:]...)
}

// MergeRange coalesces runs of adjacent entries that touch (no gap between
// them) and whose values eq reports equal. The scan covers every entry
// overlapping iv plus one neighbor on each side, so a caller that just
// normalized values over iv also merges with bordering entries.
//
// MergeRange keeps fragmenting maps compact: long-lived maps whose entries
// converge to equal values after piece-wise updates (drained dependency
// domains, fully released fragments) would otherwise accumulate one entry
// per historical split and make every later split pay a linear shift.
func (m *Map[V]) MergeRange(iv Interval, eq func(a, b V) bool) {
	if iv.Empty() || len(m.entries) < 2 {
		return
	}
	first := m.firstOverlapping(iv.Lo)
	if first > 0 {
		first--
	}
	last := first
	for last < len(m.entries) && m.entries[last].iv.Lo < iv.Hi {
		last++
	}
	if last < len(m.entries) {
		last++ // right neighbor
	}
	if last-first < 2 {
		return
	}
	w := first
	for r := first + 1; r < last; r++ {
		e := &m.entries[w]
		n := m.entries[r]
		if e.iv.Hi == n.iv.Lo && eq(e.v, n.v) {
			e.iv.Hi = n.iv.Hi
			continue
		}
		w++
		m.entries[w] = n
	}
	if removed := last - 1 - w; removed > 0 {
		m.entries = append(m.entries[:w+1], m.entries[last:]...)
	}
}

// Get returns the value pointer for the entry containing point p, or nil.
func (m *Map[V]) Get(p int64) *V {
	i := m.firstOverlapping(p)
	if i < len(m.entries) && m.entries[i].iv.Contains(p) {
		return &m.entries[i].v
	}
	return nil
}

// Visit calls f for every entry in ascending order.
func (m *Map[V]) Visit(f func(Interval, *V)) {
	for i := range m.entries {
		f(m.entries[i].iv, &m.entries[i].v)
	}
}

// Covered reports whether iv is fully covered by entries.
func (m *Map[V]) Covered(iv Interval) bool {
	covered := true
	m.VisitRangeGaps(iv, nil, func(Interval) { covered = false })
	return covered
}

// Validate checks the map invariants (sorted, disjoint, non-empty) and
// returns an error describing the first violation.
func (m *Map[V]) Validate() error {
	for i, e := range m.entries {
		if e.iv.Empty() {
			return fmt.Errorf("regions: map entry %d empty: %v", i, e.iv)
		}
		if i > 0 && m.entries[i-1].iv.Hi > e.iv.Lo {
			return fmt.Errorf("regions: map entries %d,%d overlap: %v %v", i-1, i, m.entries[i-1].iv, e.iv)
		}
	}
	return nil
}

// String renders the map for debugging.
func (m *Map[V]) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range m.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v=%v", e.iv, e.v)
	}
	b.WriteByte('}')
	return b.String()
}
