package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// collectRunner runs items, counting them and optionally chaining via Finish.
func TestSubmitRunsAll(t *testing.T) {
	var ran atomic.Int64
	var wg sync.WaitGroup
	var s *Scheduler[int]
	s = New(4, FIFO, func(item, worker int) {
		for {
			ran.Add(1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 1000
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	wg.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d items, want %d", ran.Load(), n)
	}
	// Allow runners to retire their tokens.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("scheduler did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrencyCap: no more than Workers items run simultaneously.
func TestConcurrencyCap(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	var s *Scheduler[int]
	s = New(workers, LIFO, func(item, worker int) {
		for {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 100
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	wg.Wait()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
	}
}

// TestWorkerIdentityUnique: at any moment each token id is held by at most
// one runner.
func TestWorkerIdentityUnique(t *testing.T) {
	const workers = 4
	var holders [workers]atomic.Int32
	var wg sync.WaitGroup
	var fail atomic.Bool
	var s *Scheduler[int]
	s = New(workers, FIFO, func(item, worker int) {
		for {
			if holders[worker].Add(1) != 1 {
				fail.Store(true)
			}
			time.Sleep(50 * time.Microsecond)
			holders[worker].Add(-1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 200
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	wg.Wait()
	if fail.Load() {
		t.Fatal("two runners held the same token concurrently")
	}
}

// TestYieldAcquireRoundTrip: a holder that yields its token lets queued
// work run, and can reacquire afterwards.
func TestYieldAcquireRoundTrip(t *testing.T) {
	ran := make(chan int, 1)
	var s *Scheduler[int]
	s = New(1, FIFO, func(item, worker int) {
		ran <- item
		if _, ok := s.Finish(worker); ok {
			t.Error("no more work expected")
		}
	})
	w := s.Acquire()
	// With the single token held, submitted work must queue.
	s.Submit(42, -1)
	select {
	case <-ran:
		t.Fatal("item ran while the only token was held")
	case <-time.After(10 * time.Millisecond):
	}
	s.Yield(w)
	if got := <-ran; got != 42 {
		t.Fatalf("got item %d, want 42", got)
	}
	w2 := s.Acquire()
	s.Yield(w2)
	if !s.Idle() {
		// The token may still be settling; brief retry.
		time.Sleep(10 * time.Millisecond)
		if !s.Idle() {
			t.Fatal("scheduler should be idle")
		}
	}
}

// TestLIFOOrder: with one worker busy-releasing, LIFO runs the most recent
// submission first.
func TestLIFOOrder(t *testing.T) {
	var order []int
	done := make(chan struct{})
	var s *Scheduler[int]
	s = New(1, LIFO, func(item, worker int) {
		for {
			order = append(order, item) // single worker: no race
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	})
	w := s.Acquire() // hold the token so submissions queue deterministically
	for i := 1; i <= 4; i++ {
		s.Submit(i, -1)
	}
	s.Yield(w)
	<-done
	// Yield dispatches the LIFO top (4); the runner then drains 3,2,1.
	want := []int{4, 3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestAcquirePreferredOverPool: Finish hands the token to a blocked
// Acquire (resuming taskwait) when the queue is empty.
func TestAcquirePreferredOverPool(t *testing.T) {
	var s *Scheduler[int]
	started := make(chan struct{})
	s = New(1, FIFO, func(item, worker int) {
		close(started)
		s.Finish(worker)
	})
	s.Submit(1, -1)
	<-started
	// Acquire should obtain the token released by Finish.
	got := make(chan int, 1)
	go func() { got <- s.Acquire() }()
	select {
	case w := <-got:
		s.Yield(w)
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire starved")
	}
}

// Property: for random worker counts and workloads, every item runs exactly
// once and the scheduler quiesces.
func TestQuickAllItemsRunOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(8)
		n := 1 + rng.Intn(300)
		counts := make([]atomic.Int32, n)
		var wg sync.WaitGroup
		var s *Scheduler[int]
		s = New(workers, Policy(rng.Intn(2)), func(item, worker int) {
			for {
				counts[item].Add(1)
				wg.Done()
				next, ok := s.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		wg.Add(n)
		for i := 0; i < n; i++ {
			s.Submit(i, -1)
		}
		wg.Wait()
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Logf("item %d ran %d times", i, counts[i].Load())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}
