package sched

// Locality topology for the sharded pools: the per-worker deque shards are
// arranged into a two-level tree (domain → core group → worker), and the
// steal path walks it nearest-neighbour-first — exhaust the sibling group,
// then the rest of the domain, then cross domains — instead of treating
// every shard as an equally distant flat peer. On a real machine the levels
// map to SMT siblings / shared-LLC cores / sockets, where a near steal hits
// warm cache and a far one pays the interconnect; on a flat CI host the
// tree is synthetic, but the steal-distance distribution it induces is
// still measurable (depbench -mode locality) and the nearest-first order
// still shortens the average miss scan.
//
// The flat victim order (the pre-topology behaviour) stays selectable via
// TopologyFlat and is kept as the differential reference, the same pattern
// as every sharded/reference pair in this repo: both orders must uphold
// identical admission invariants, only placement and steal distance differ.

// Topology configures the locality tree of a sharded pool's worker shards.
// The zero value derives a synthetic tree from the worker count (groups of
// defaultGroupSize, up to defaultGroupsPerDomain groups per domain), which
// is the default for the stealing pool.
type Topology struct {
	// Flat disables nearest-first victim selection: steal candidates are
	// scanned in a single randomized flat pass over all shards, the
	// pre-topology order. The tree is still *resolved* (GroupSize/Domains
	// or their defaults) so steal-distance accounting stays comparable —
	// a flat pool reports how far its steals travelled over the same tree
	// shape, which is exactly the reference column of the locality table.
	Flat bool
	// GroupSize is the number of sibling workers per core group (the leaf
	// level of the tree). 0 picks defaultGroupSize, clamped to the worker
	// count.
	GroupSize int
	// Domains is the number of top-level domains the core groups are split
	// across (contiguously, as evenly as possible). 0 derives it from the
	// group count (defaultGroupsPerDomain groups per domain); values larger
	// than the group count are clamped.
	Domains int
}

// TopologyFlat selects the flat victim order — the differential reference
// against the topology tree.
var TopologyFlat = Topology{Flat: true}

// Synthetic tree defaults: groups of four workers, four groups per domain,
// i.e. one domain up to w=16, two up to w=32, and so on.
const (
	defaultGroupSize       = 4
	defaultGroupsPerDomain = 4
)

// Steal-distance levels, the index space of the per-level steal counters
// (PoolStats.StealLevels) and of the nearest-first walk order.
const (
	// LevelSibling counts steals resolved inside the thief's own core
	// group.
	LevelSibling = iota
	// LevelDomain counts steals that left the thief's group but stayed
	// inside its domain.
	LevelDomain
	// LevelRemote counts steals that crossed domains (the top of the
	// tree).
	LevelRemote
	// NumLevels is the number of steal-distance levels.
	NumLevels
)

// topoTree is a resolved Topology: per-worker group/domain ids and, for
// each worker, its steal candidates sorted nearest-first with the level
// boundaries precomputed, so the steal path indexes instead of classifying.
type topoTree struct {
	flat     bool
	groupOf  []int32
	domainOf []int32
	// victims[w] lists every worker but w, nearest-first;
	// victims[w][:levelEnd[w][l]] are the candidates within level l.
	victims  [][]int32
	levelEnd [][NumLevels]int32
}

// resolveTopology expands a Topology config over a worker count.
func resolveTopology(workers int, t Topology) topoTree {
	g := t.GroupSize
	if g <= 0 {
		g = defaultGroupSize
	}
	if g > workers {
		g = workers
	}
	numGroups := (workers + g - 1) / g
	d := t.Domains
	if d <= 0 {
		d = (numGroups + defaultGroupsPerDomain - 1) / defaultGroupsPerDomain
	}
	if d > numGroups {
		d = numGroups
	}
	tr := topoTree{
		flat:     t.Flat,
		groupOf:  make([]int32, workers),
		domainOf: make([]int32, workers),
		victims:  make([][]int32, workers),
		levelEnd: make([][NumLevels]int32, workers),
	}
	for w := 0; w < workers; w++ {
		grp := w / g
		tr.groupOf[w] = int32(grp)
		tr.domainOf[w] = int32(grp * d / numGroups)
	}
	for w := 0; w < workers; w++ {
		order := make([]int32, 0, workers-1)
		for lvl := 0; lvl < NumLevels; lvl++ {
			for v := 0; v < workers; v++ {
				if v != w && tr.level(w, v) == lvl {
					order = append(order, int32(v))
				}
			}
			tr.levelEnd[w][lvl] = int32(len(order))
		}
		tr.victims[w] = order
	}
	return tr
}

// level returns the steal-distance level separating workers w and v.
func (t *topoTree) level(w, v int) int {
	switch {
	case t.groupOf[w] == t.groupOf[v]:
		return LevelSibling
	case t.domainOf[w] == t.domainOf[v]:
		return LevelDomain
	default:
		return LevelRemote
	}
}

// AffinityQueue is the optional Queue extension implemented by the sharded
// pools: SubmitBatchAffinity admits a batch like SubmitBatch but consults a
// per-item placement hint — the worker whose shard group last touched the
// item's ready data (-1 for none). Hinted items whose group differs from
// the submitter's are routed to the hinted worker's shard inbox, so the
// group that has the data warm finds them without a cross-group steal;
// everything else follows the SubmitBatch placement. Pools with a flat
// topology ignore the hints (the reference order has no groups to route
// between).
type AffinityQueue[T any] interface {
	Queue[T]
	SubmitBatchAffinity(items []T, hints []int32, from int)
}

// splitmix64 expands a small seed into a full-entropy PRNG state (the
// standard SplitMix64 finalizer); used to seed the per-shard xorshift
// states at pool construction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// randN draws from the shard's private xorshift64 state: the victim-start
// randomization of the steal path. Owner-only, like the deque bottom — the
// caller holds this shard's worker token (ownership transfers through the
// token list, which carries the happens-before edge), so no shared PRNG
// state is touched on the miss path and steal schedules are reproducible
// given the same interleaving (the fixed construction-time seeds).
func (sh *poolShard[T]) randN(n int) int {
	x := sh.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sh.rng = x
	return int(x % uint64(n))
}
