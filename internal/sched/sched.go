// Package sched provides the execution substrate of the runtime: a fixed
// pool of admission tokens (one per simulated core), ready-pool
// implementations with configurable policy, and token hand-off.
//
// The runtime model is goroutine-per-task gated by tokens: a task body runs
// on its own goroutine only while it holds a token, so at most Workers task
// bodies execute at once. A task blocking in taskwait yields its token (the
// paper's observation that a taskwait forces the runtime to keep the task
// context alive, §IV, maps to the blocked goroutine). How the blocked task
// gets a token back depends on the core runtime's Taskwait strategy: the
// parking reference re-acquires one through Acquire's waiter list (a full
// token round-trip per sync point), while the default continuation handoff
// re-submits the waiting task into these ready pools — it competes for a
// worker like any other item, may be stolen, and the worker that pulls it
// hands its token directly to the parked goroutine. The pools need no
// special case for this: a continuation is an ordinary queued item whose
// dispatch callback transfers the token instead of running a body.
//
// Four ready-pool implementations share the Queue contract:
//
//   - Scheduler: a central single-lock queue with FIFO, LIFO, or Priority
//     discipline. LIFO and Priority are global orders over all ready items,
//     which is inherently central; this is also the simplest reference.
//   - ShardedCentral: the scalable central variant — one ingress queue per
//     worker, FIFO work-pulling, no pool-wide lock.
//   - Stealing: per-worker Chase-Lev deques with lock-free LIFO self-pop
//     and CAS-based FIFO stealing (the Cilk discipline). The default ready
//     pool of the runtime's real mode.
//   - LockedStealing: the single-lock stealing reference the differential
//     tests and contention benchmarks compare the sharded pools against.
//
// The sharded pools (Stealing, ShardedCentral) replace the pool-wide mutex
// with per-worker shards, a lock-free token free-list, and a Dekker-style
// idle protocol: a submitter publishes its item and then rechecks the token
// list, a retiring worker publishes its token and then rechecks the queued
// count and the waiter count. Under sequential consistency (Go's atomics)
// at least one side of any race observes the other's publication, so a
// queued item and a free token can never coexist at quiescence — the
// lost-wakeup window that the single-lock pools close with their mutex. All
// pools maintain the same admission invariants: token conservation, no lost
// wakeups, waiter priority at release points, and Idle() exact at
// quiescence; the differential tests in this package drive the locked and
// sharded pools over identical schedules to keep them aligned.
package sched

import (
	"container/heap"
	"sync"
)

// PoolKind selects a ready-pool implementation (core.Config.ReadyPool).
type PoolKind uint8

const (
	// PoolAuto lets the runtime pick: sharded stealing in real mode, except
	// that an explicit LIFO or Priority policy selects the central queue
	// (those disciplines are global orders). Virtual mode has its own
	// deterministic event-driven list and ignores the ready pool.
	PoolAuto PoolKind = iota
	// PoolCentral is the single-lock central Scheduler (FIFO, LIFO, or
	// Priority policy).
	PoolCentral
	// PoolShardedCentral is the sharded central queue: per-worker ingress
	// queues with FIFO work-pulling.
	PoolShardedCentral
	// PoolStealing is the sharded work-stealing pool (per-worker Chase-Lev
	// deques, self-LIFO, steal-FIFO).
	PoolStealing
	// PoolLockedStealing is the single-lock work-stealing reference.
	PoolLockedStealing
)

// String returns the kind's depbench/table name.
func (k PoolKind) String() string {
	switch k {
	case PoolCentral:
		return "central"
	case PoolShardedCentral:
		return "sharded-central"
	case PoolStealing:
		return "stealing"
	case PoolLockedStealing:
		return "locked-stealing"
	}
	return "auto"
}

// Policy selects the ready-queue discipline of the central Scheduler.
type Policy uint8

const (
	// FIFO dispatches ready tasks in arrival order (breadth-first).
	FIFO Policy = iota
	// LIFO dispatches the most recently readied task first (depth-first).
	LIFO
	// Priority dispatches the highest-priority ready task first, FIFO among
	// equal priorities (the OpenMP 4.5 priority clause). Requires a
	// Scheduler built with NewPriority.
	Priority
)

// String returns the policy's flag/table name.
func (p Policy) String() string {
	switch p {
	case LIFO:
		return "lifo"
	case Priority:
		return "priority"
	}
	return "fifo"
}

// Queue is the contract between the runtime and a ready-pool: admission of
// ready items, token-aware completion chaining, and token yield/reacquire
// for blocking constructs.
//
// from is the submitting worker, and the caller of Submit/SubmitBatch with
// an in-range from must be the goroutine currently holding that worker's
// token (-1, or any out-of-range value, when the caller holds none). The
// sharded pools rely on this ownership for their single-owner deque fast
// paths; the runtime satisfies it by construction, since a task submits
// children only while running on its worker.
type Queue[T any] interface {
	// Submit makes an item runnable. If a token is free the item starts
	// immediately on a new goroutine; otherwise it queues. Safe for
	// concurrent use, subject to the from-token rule above: an in-range
	// from asserts the caller holds that worker's token (the sharded pools
	// push onto that worker's deque lock-free, which is only safe
	// single-owner); callers holding no token must pass -1.
	Submit(item T, from int)
	// SubmitBatch makes several items runnable in one admission: tokens are
	// matched and goroutines spawned for as many items as have free tokens,
	// and the rest queue, all under a single lock acquisition. A dependency
	// release that readies many successors hands them over in one call
	// instead of one lock round-trip per edge. from follows the same
	// ownership rule as Submit.
	SubmitBatch(items []T, from int)
	// Announce publishes n copies of one item with no submitter locality:
	// free tokens are matched first (goroutine-per-copy, as Submit), and
	// the remaining copies are spread across the pool's shards instead of
	// landing on the announcing worker's queue, so idle workers on other
	// shards find them without a steal round-trip. Worksharing regions use
	// this to invite the fleet into a chunk-distributed body: each copy is
	// an invitation, not new work, so the same item may legitimately appear
	// n times. from follows the same ownership rule as Submit (it names the
	// announcing worker's token; the copies themselves are placed as if
	// external).
	Announce(item T, n, from int)
	// Finish is called by a runner that completed its item and still holds
	// worker — and only by that runner; the call consumes the token unless
	// ok is true. It returns the next item to run on this worker, if any;
	// otherwise the token is retired (to a blocked Acquire first — waiter
	// priority — then the free pool).
	Finish(worker int) (next T, ok bool)
	// Yield releases worker while its holder blocks (taskwait, taskgroup,
	// throttle); only the token's current holder may call it, and the
	// holder must reacquire via Acquire before touching per-worker state
	// again. The token is immediately redeployed.
	Yield(worker int)
	// Acquire blocks until a worker token is available and returns it.
	// Safe for any goroutine; release points prefer blocked Acquires over
	// fresh queued work.
	Acquire() int
	// Workers returns the number of worker tokens. Constant; safe always.
	Workers() int
	// Idle reports whether no items are queued and all tokens are free.
	// Exact only at quiescence (no operation in flight).
	Idle() bool
	// QueueLen returns the number of queued (not running) items. May be
	// momentarily stale in the sharded pools; exact at quiescence.
	QueueLen() int
}

// Probe is one instantaneous observation of a pool's admission state, for
// external monitors (the runtime's stall watchdog). The three counters are
// read independently — a probe is not a consistent snapshot — so a monitor
// must only act on a signature that persists across many probes.
type Probe struct {
	// Queued is the number of queued (not running) items.
	Queued int
	// FreeTokens is the number of worker tokens on the free pool.
	FreeTokens int
	// Waiters is the number of blocked Acquire calls.
	Waiters int
}

// Prober is implemented by pools that can report a Probe. A correct pool
// never lets Queued > 0 (or Waiters > 0) coexist with FreeTokens > 0 beyond
// a transient admission window: the Dekker publish-then-recheck protocol
// matches them. A monitor that sees the pairing persist with no dispatch
// progress is looking at a lost wakeup.
type Prober interface {
	Probe() Probe
}

// prioItem pairs a queued item with its priority and a FIFO tie-break.
type prioItem[T any] struct {
	item T
	prio int64
	seq  int64
}

type prioHeap[T any] []prioItem[T]

func (h prioHeap[T]) Len() int { return len(h) }
func (h prioHeap[T]) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap[T]) Push(x any)   { *h = append(*h, x.(prioItem[T])) }
func (h *prioHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Scheduler multiplexes ready items of type T over a fixed set of worker
// tokens through one central queue. spawn is invoked on a fresh goroutine
// whenever a queued item is matched with a free token; runners that finish
// an item call Finish to pick up more work or return their token.
type Scheduler[T any] struct {
	mu      sync.Mutex
	queue   []T
	pq      prioHeap[T]
	prio    func(T) int64
	seq     int64
	policy  Policy
	free    []int
	waiters []chan int // blocked Acquire calls (taskwait resumes)
	spawn   func(item T, worker int)
	workers int
}

var _ Queue[int] = (*Scheduler[int])(nil)

// New creates a central scheduler with the given number of worker tokens.
// policy must be FIFO or LIFO; use NewPriority for the Priority policy.
func New[T any](workers int, policy Policy, spawn func(item T, worker int)) *Scheduler[T] {
	if policy == Priority {
		panic("sched: Priority policy requires NewPriority (a priority extractor)")
	}
	return newScheduler(workers, policy, spawn, nil)
}

// NewPriority creates a central scheduler that dispatches the
// highest-priority queued item first, FIFO among equal priorities. prio
// extracts an item's priority.
func NewPriority[T any](workers int, spawn func(item T, worker int), prio func(T) int64) *Scheduler[T] {
	if prio == nil {
		panic("sched: NewPriority requires a priority extractor")
	}
	return newScheduler(workers, Priority, spawn, prio)
}

func newScheduler[T any](workers int, policy Policy, spawn func(item T, worker int), prio func(T) int64) *Scheduler[T] {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	s := &Scheduler[T]{policy: policy, spawn: spawn, prio: prio, workers: workers}
	for i := workers - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Workers returns the number of worker tokens.
func (s *Scheduler[T]) Workers() int { return s.workers }

// Submit makes an item runnable. If a token is free the item starts
// immediately on a new goroutine; otherwise it queues. from is ignored by
// the central queue.
func (s *Scheduler[T]) Submit(item T, from int) {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		go s.spawn(item, w)
		return
	}
	s.push(item)
	s.mu.Unlock()
}

// SubmitBatch makes every item runnable under one lock acquisition: items
// start on free tokens first (goroutine-per-item, as Submit), the rest
// queue according to policy.
func (s *Scheduler[T]) SubmitBatch(items []T, from int) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	i := 0
	for ; i < len(items) && len(s.free) > 0; i++ {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		go s.spawn(items[i], w)
	}
	for ; i < len(items); i++ {
		s.push(items[i])
	}
	s.mu.Unlock()
}

// Announce publishes n copies of item: free tokens are matched first, the
// rest queue according to policy. The central queue has no shards, so
// "spread" degenerates to the one queue; the contract's no-locality clause
// is satisfied trivially.
func (s *Scheduler[T]) Announce(item T, n, from int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	for ; n > 0 && len(s.free) > 0; n-- {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		go s.spawn(item, w)
	}
	for ; n > 0; n-- {
		s.push(item)
	}
	s.mu.Unlock()
}

// push queues an item according to policy. Caller holds mu.
func (s *Scheduler[T]) push(item T) {
	if s.prio != nil {
		s.seq++
		heap.Push(&s.pq, prioItem[T]{item: item, prio: s.prio(item), seq: s.seq})
		return
	}
	s.queue = append(s.queue, item)
}

// pop removes the next item according to policy. Caller holds mu and has
// checked queuedLocked() > 0.
func (s *Scheduler[T]) pop() T {
	if s.prio != nil {
		return heap.Pop(&s.pq).(prioItem[T]).item
	}
	var item T
	if s.policy == LIFO {
		item = s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
	} else {
		item = s.queue[0]
		s.queue = s.queue[1:]
	}
	return item
}

func (s *Scheduler[T]) queuedLocked() int {
	if s.prio != nil {
		return len(s.pq)
	}
	return len(s.queue)
}

// Finish is called by a runner that completed its item and still holds
// worker w. A blocked Acquire call (a resuming taskwait, preferred because
// it holds a live stack mid-execution) wins the token over fresh queued
// work; otherwise the next queued item is returned to run on this worker,
// and failing that the token retires to the pool.
func (s *Scheduler[T]) Finish(worker int) (next T, ok bool) {
	var zero T
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		ch <- worker
		return zero, false
	}
	if s.queuedLocked() > 0 {
		item := s.pop()
		s.mu.Unlock()
		return item, true
	}
	s.free = append(s.free, worker)
	s.mu.Unlock()
	return zero, false
}

// Yield releases worker w while its holder blocks (taskwait). The token is
// immediately redeployed: to a blocked Acquire, to a queued item, or to the
// free pool.
func (s *Scheduler[T]) Yield(worker int) {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		ch <- worker
		return
	}
	if s.queuedLocked() > 0 {
		item := s.pop()
		s.mu.Unlock()
		go s.spawn(item, worker)
		return
	}
	s.free = append(s.free, worker)
	s.mu.Unlock()
}

// Acquire blocks until a worker token is available and returns it. Used by
// taskwait resumption and by the runtime's entry goroutine.
func (s *Scheduler[T]) Acquire() int {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		return w
	}
	ch := make(chan int, 1)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return <-ch
}

// Idle reports whether no items are queued and all tokens are free — i.e.
// the system is quiescent. Only meaningful when the caller otherwise knows
// no runner is active.
func (s *Scheduler[T]) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked() == 0 && len(s.free) == s.workers && len(s.waiters) == 0
}

// QueueLen returns the current ready-queue length (diagnostics).
func (s *Scheduler[T]) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}

// Probe returns an instantaneous observation of the admission state. The
// central scheduler reads all three counters under its one lock, so the
// snapshot is consistent (unlike the sharded pools').
func (s *Scheduler[T]) Probe() Probe {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Probe{
		Queued:     s.queuedLocked(),
		FreeTokens: len(s.free),
		Waiters:    len(s.waiters),
	}
}
