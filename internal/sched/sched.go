// Package sched provides the execution substrate of the runtime: a fixed
// pool of admission tokens (one per simulated core), ready-pool
// implementations with configurable policy, and token hand-off.
//
// The runtime model is goroutine-per-task gated by tokens: a task body runs
// on its own goroutine only while it holds a token, so at most Workers task
// bodies execute at once. A task blocking in taskwait yields its token (the
// paper's observation that a taskwait forces the runtime to keep the task
// context alive, §IV, maps to the blocked goroutine plus the token
// round-trip) and reacquires one to resume.
//
// Two ready-pool implementations share the Queue contract:
//
//   - Scheduler: a central queue with FIFO, LIFO, or Priority discipline.
//   - Stealing: per-worker deques with LIFO self-pop and FIFO stealing
//     (the Cilk discipline), for the scheduler ablation benchmarks.
package sched

import (
	"container/heap"
	"sync"
)

// Policy selects the ready-queue discipline of the central Scheduler.
type Policy uint8

const (
	// FIFO dispatches ready tasks in arrival order (breadth-first).
	FIFO Policy = iota
	// LIFO dispatches the most recently readied task first (depth-first).
	LIFO
	// Priority dispatches the highest-priority ready task first, FIFO among
	// equal priorities (the OpenMP 4.5 priority clause). Requires a
	// Scheduler built with NewPriority.
	Priority
)

func (p Policy) String() string {
	switch p {
	case LIFO:
		return "lifo"
	case Priority:
		return "priority"
	}
	return "fifo"
}

// Queue is the contract between the runtime and a ready-pool: admission of
// ready items, token-aware completion chaining, and token yield/reacquire
// for blocking constructs. from is the submitting worker (-1 when unknown);
// implementations may use it for locality.
type Queue[T any] interface {
	// Submit makes an item runnable. If a token is free the item starts
	// immediately on a new goroutine; otherwise it queues.
	Submit(item T, from int)
	// SubmitBatch makes several items runnable in one admission: tokens are
	// matched and goroutines spawned for as many items as have free tokens,
	// and the rest queue, all under a single lock acquisition. A dependency
	// release that readies many successors hands them over in one call
	// instead of one lock round-trip per edge.
	SubmitBatch(items []T, from int)
	// Finish is called by a runner that completed its item and still holds
	// worker. It returns the next item to run on this worker, if any;
	// otherwise the token is retired.
	Finish(worker int) (next T, ok bool)
	// Yield releases worker while its holder blocks (taskwait, taskgroup,
	// throttle). The token is immediately redeployed.
	Yield(worker int)
	// Acquire blocks until a worker token is available and returns it.
	Acquire() int
	// Workers returns the number of worker tokens.
	Workers() int
	// Idle reports whether no items are queued and all tokens are free.
	Idle() bool
	// QueueLen returns the number of queued (not running) items.
	QueueLen() int
}

// prioItem pairs a queued item with its priority and a FIFO tie-break.
type prioItem[T any] struct {
	item T
	prio int64
	seq  int64
}

type prioHeap[T any] []prioItem[T]

func (h prioHeap[T]) Len() int { return len(h) }
func (h prioHeap[T]) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap[T]) Push(x any)   { *h = append(*h, x.(prioItem[T])) }
func (h *prioHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Scheduler multiplexes ready items of type T over a fixed set of worker
// tokens through one central queue. spawn is invoked on a fresh goroutine
// whenever a queued item is matched with a free token; runners that finish
// an item call Finish to pick up more work or return their token.
type Scheduler[T any] struct {
	mu      sync.Mutex
	queue   []T
	pq      prioHeap[T]
	prio    func(T) int64
	seq     int64
	policy  Policy
	free    []int
	waiters []chan int // blocked Acquire calls (taskwait resumes)
	spawn   func(item T, worker int)
	workers int
}

var _ Queue[int] = (*Scheduler[int])(nil)

// New creates a central scheduler with the given number of worker tokens.
// policy must be FIFO or LIFO; use NewPriority for the Priority policy.
func New[T any](workers int, policy Policy, spawn func(item T, worker int)) *Scheduler[T] {
	if policy == Priority {
		panic("sched: Priority policy requires NewPriority (a priority extractor)")
	}
	return newScheduler(workers, policy, spawn, nil)
}

// NewPriority creates a central scheduler that dispatches the
// highest-priority queued item first, FIFO among equal priorities. prio
// extracts an item's priority.
func NewPriority[T any](workers int, spawn func(item T, worker int), prio func(T) int64) *Scheduler[T] {
	if prio == nil {
		panic("sched: NewPriority requires a priority extractor")
	}
	return newScheduler(workers, Priority, spawn, prio)
}

func newScheduler[T any](workers int, policy Policy, spawn func(item T, worker int), prio func(T) int64) *Scheduler[T] {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	s := &Scheduler[T]{policy: policy, spawn: spawn, prio: prio, workers: workers}
	for i := workers - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Workers returns the number of worker tokens.
func (s *Scheduler[T]) Workers() int { return s.workers }

// Submit makes an item runnable. If a token is free the item starts
// immediately on a new goroutine; otherwise it queues. from is ignored by
// the central queue.
func (s *Scheduler[T]) Submit(item T, from int) {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		go s.spawn(item, w)
		return
	}
	s.push(item)
	s.mu.Unlock()
}

// SubmitBatch makes every item runnable under one lock acquisition: items
// start on free tokens first (goroutine-per-item, as Submit), the rest
// queue according to policy.
func (s *Scheduler[T]) SubmitBatch(items []T, from int) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	i := 0
	for ; i < len(items) && len(s.free) > 0; i++ {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		go s.spawn(items[i], w)
	}
	for ; i < len(items); i++ {
		s.push(items[i])
	}
	s.mu.Unlock()
}

// push queues an item according to policy. Caller holds mu.
func (s *Scheduler[T]) push(item T) {
	if s.prio != nil {
		s.seq++
		heap.Push(&s.pq, prioItem[T]{item: item, prio: s.prio(item), seq: s.seq})
		return
	}
	s.queue = append(s.queue, item)
}

// pop removes the next item according to policy. Caller holds mu and has
// checked queuedLocked() > 0.
func (s *Scheduler[T]) pop() T {
	if s.prio != nil {
		return heap.Pop(&s.pq).(prioItem[T]).item
	}
	var item T
	if s.policy == LIFO {
		item = s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
	} else {
		item = s.queue[0]
		s.queue = s.queue[1:]
	}
	return item
}

func (s *Scheduler[T]) queuedLocked() int {
	if s.prio != nil {
		return len(s.pq)
	}
	return len(s.queue)
}

// Finish is called by a runner that completed its item and still holds
// worker w. It returns the next item to run on this worker, if any.
// Otherwise the token is handed to a blocked Acquire call (a resuming
// taskwait, preferred because it holds a live stack) or returned to the
// pool.
func (s *Scheduler[T]) Finish(worker int) (next T, ok bool) {
	s.mu.Lock()
	if s.queuedLocked() > 0 {
		item := s.pop()
		s.mu.Unlock()
		return item, true
	}
	s.releaseLocked(worker)
	s.mu.Unlock()
	var zero T
	return zero, false
}

// Yield releases worker w while its holder blocks (taskwait). The token is
// immediately redeployed: to a queued item, to a blocked Acquire, or to the
// free pool.
func (s *Scheduler[T]) Yield(worker int) {
	s.mu.Lock()
	if s.queuedLocked() > 0 {
		item := s.pop()
		s.mu.Unlock()
		go s.spawn(item, worker)
		return
	}
	s.releaseLocked(worker)
	s.mu.Unlock()
}

// releaseLocked hands the token to a waiter or the free pool. Caller holds mu.
func (s *Scheduler[T]) releaseLocked(worker int) {
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		ch <- worker
		return
	}
	s.free = append(s.free, worker)
}

// Acquire blocks until a worker token is available and returns it. Used by
// taskwait resumption and by the runtime's entry goroutine.
func (s *Scheduler[T]) Acquire() int {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		return w
	}
	ch := make(chan int, 1)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return <-ch
}

// Idle reports whether no items are queued and all tokens are free — i.e.
// the system is quiescent. Only meaningful when the caller otherwise knows
// no runner is active.
func (s *Scheduler[T]) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked() == 0 && len(s.free) == s.workers && len(s.waiters) == 0
}

// QueueLen returns the current ready-queue length (diagnostics).
func (s *Scheduler[T]) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked()
}
