package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Scheduler admission contention: w chains run through one pool, each
// chain's runner submitting its successor from its own worker and chaining
// through Finish — the admission-path analogue of the dependency engine's
// disjoint chain benchmark (every Submit and every Finish hits the
// admission path; chains of different workers are independent). Under the
// single-lock pools all of it serializes on one mutex; under the sharded
// pools each chain stays on its worker's lock-free deque. GOMAXPROCS is
// raised to the worker count so the contention is real even on small
// hosts.

// runChains drives w chains of ops/w submit+finish steps each through the
// pool built by mk, and returns when all chains have completed.
func runChains(mk func(workers int, spawn func(item, worker int)) Queue[int], w, ops int) {
	perW := ops / w
	if perW < 1 {
		perW = 1
	}
	remaining := make([]atomic.Int64, w)
	for i := range remaining {
		remaining[i].Store(int64(perW))
	}
	var done sync.WaitGroup
	done.Add(w)
	var q Queue[int]
	q = mk(w, func(chain, worker int) {
		for {
			if remaining[chain].Add(-1) > 0 {
				q.Submit(chain, worker) // next link, on this worker's shard
			} else {
				done.Done()
			}
			next, ok := q.Finish(worker)
			if !ok {
				return
			}
			chain = next
		}
	})
	for i := 0; i < w; i++ {
		q.Submit(i, -1)
	}
	done.Wait()
}

var contentionPools = []struct {
	name string
	mk   func(workers int, spawn func(item, worker int)) Queue[int]
}{
	{"locked-stealing", func(w int, s func(int, int)) Queue[int] { return NewLockedStealing(w, s) }},
	{"stealing", func(w int, s func(int, int)) Queue[int] { return NewStealing(w, s) }},
	{"sharded-central", func(w int, s func(int, int)) Queue[int] { return NewShardedCentral(w, s) }},
	{"central", func(w int, s func(int, int)) Queue[int] { return New(w, FIFO, s) }},
}

// BenchmarkSchedContentionMatrix is the admission-path contention table:
// every pool at w = 1 (overhead parity), 4, and 8 (lock contention). The
// CI smoke runs it at -benchtime 1x; the w=1 regression guard is
// TestSchedW1Parity below.
func BenchmarkSchedContentionMatrix(b *testing.B) {
	for _, p := range contentionPools {
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/w=%d", p.name, w), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(0)
				if w > prev {
					runtime.GOMAXPROCS(w)
					defer runtime.GOMAXPROCS(prev)
				}
				b.ReportAllocs()
				runChains(p.mk, w, b.N)
			})
		}
	}
}

// TestSchedW1Parity is the regression guard on the single-worker case: the
// sharded pools' lock-free admission path must not cost materially more
// than the single-lock reference when there is no contention to win back.
// The bound is deliberately loose (CI hosts are noisy); the precise parity
// measurement is cmd/depbench's sched table.
func TestSchedW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	const ops = 200_000
	const trials = 5
	// Interleave the pools' trials so a transient stall (noisy CI
	// neighbour, GC) hits all pools alike, and take each pool's best
	// trial, which filters such stalls out entirely.
	best := make([]time.Duration, len(contentionPools))
	for i := range best {
		best[i] = time.Duration(1<<63 - 1)
	}
	for trial := 0; trial < trials; trial++ {
		for i, p := range contentionPools {
			start := time.Now()
			runChains(p.mk, 1, ops)
			if d := time.Since(start); d < best[i] {
				best[i] = d
			}
		}
	}
	ref := best[0] // locked-stealing
	for i, p := range contentionPools[1:3] {
		if f := float64(best[i+1]) / float64(ref); f > 1.5 {
			t.Errorf("%s w=1: %.2fx slower than locked-stealing (%v vs %v); admission fast path regressed",
				p.name, f, best[i+1], ref)
		}
	}
}
