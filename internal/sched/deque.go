package sched

import "sync/atomic"

// clDeque is a Chase-Lev work-stealing deque (Chase & Lev, SPAA'05, in the
// sequentially-consistent formulation of Lê et al., PPoPP'13 — Go's
// sync/atomic operations are seq-cst, so the simple version is correct).
//
// Ownership discipline: PushBottom and PopBottom may only be called by the
// deque's owner — in this package, the goroutine currently holding the
// owning worker's token — while Steal may be called by any goroutine at any
// time. The owner's fast paths are lock-free (plain atomic loads/stores; a
// single CAS only when racing a thief for the last element), and Steal is a
// bounded-retry CAS on top.
//
// Items are boxed (*T) so that slots can be published atomically. The deque
// itself neither allocates nor frees boxes: the caller passes a box to
// PushBottom and receives one back from PopBottom/Steal, so boxes travel
// with items (a stolen item's box crosses to the thief) and the pool layer
// recycles them through internal/mempool — a consumed box goes back to the
// consumer's free-list lane, and the steady-state queue path allocates
// nothing. Recycling a consumed box is safe: losing thieves discard their
// speculative slot read when the top CAS fails, and never dereference it.
type clDeque[T any] struct {
	top    atomic.Int64 // next index to steal; advanced by CAS
	bottom atomic.Int64 // next index to push; owner-written only
	buf    atomic.Pointer[ringBuf[T]]
}

type ringBuf[T any] struct {
	mask  int64 // len(slots) - 1; len is a power of two
	slots []atomic.Pointer[T]
}

const initialDequeCap = 16

func newRingBuf[T any](capacity int64) *ringBuf[T] {
	return &ringBuf[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (d *clDeque[T]) init() {
	d.buf.Store(newRingBuf[T](initialDequeCap))
}

// Size returns a racy snapshot of the number of queued items; exact only at
// quiescence. Thieves use it to skip empty victims without touching their
// cache lines further.
func (d *clDeque[T]) Size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return b - t
}

// PushBottom appends a boxed item at the bottom. Owner only. The box must
// be fully written before the call; publication through the slot's atomic
// store synchronizes it with thieves.
func (d *clDeque[T]) PushBottom(p *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= int64(len(buf.slots)) {
		buf = d.grow(buf, t, b)
	}
	buf.slots[b&buf.mask].Store(p)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live range [t, b). Owner only. Thieves
// concurrently reading the old ring see the same items (the live range is
// never mutated in place), and any steal completed against the old ring
// advances top, which the owner observes through the shared counter.
func (d *clDeque[T]) grow(old *ringBuf[T], t, b int64) *ringBuf[T] {
	nb := newRingBuf[T](int64(len(old.slots)) * 2)
	for i := t; i < b; i++ {
		nb.slots[i&nb.mask].Store(old.slots[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// PopBottom removes the most recently pushed item (LIFO), transferring
// box ownership to the caller. Owner only. The only synchronization with
// thieves is the top CAS when exactly one item remains.
func (d *clDeque[T]) PopBottom() (p *T, ok bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b) // reserve: thieves now refuse to go past b
	t := d.top.Load()
	if t > b {
		// Deque was empty; undo the reservation.
		d.bottom.Store(b + 1)
		return nil, false
	}
	buf := d.buf.Load()
	slot := &buf.slots[b&buf.mask]
	p = slot.Load()
	if t == b {
		// Last element: race thieves for it through top.
		if !d.top.CompareAndSwap(t, t+1) {
			// A thief won; the deque is empty.
			d.bottom.Store(b + 1)
			return nil, false
		}
		slot.Store(nil)
		d.bottom.Store(b + 1)
		return p, true
	}
	slot.Store(nil)
	return p, true
}

// Clearing consumed slots: the owner's pop clears its slot so the box (and
// whatever the item pins — for the runtime, a completed *Task tree) does
// not stay reachable until the ring index wraps. This is safe: with t < b
// no thief can reach index b (thieves stop at bottom), and in the t == b
// case the slot is cleared only after winning the top CAS, after which
// every thief's CAS on that index fails and its speculative slot read is
// discarded. Steal must NOT clear: once top has passed the stolen index
// the owner may already be wrapping a new push onto the same physical
// slot, and a late nil-store from the thief would destroy that item.
//
// Box recycling rests on the same argument: the winner of an index — the
// owner via PopBottom, or the thief whose top CAS succeeded — is the only
// party that ever dereferences the box afterwards, so it may reuse it
// immediately. A loser's speculatively loaded pointer is discarded without
// a dereference, and a slow thief that reads a recycled (rewritten) box
// pointer through a wrapped slot fails its CAS on the stale top value.

// Steal removes the oldest item (FIFO), transferring box ownership to the
// caller. Safe from any goroutine, including the owner (the sharded
// central pool self-pulls through Steal to get FIFO order on its own
// ingress queue). Retries only when it loses a CAS race while items
// remain.
func (d *clDeque[T]) Steal() (p *T, ok bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil, false
		}
		buf := d.buf.Load()
		p = buf.slots[t&buf.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			// The CAS proves no other thief took index t and the owner
			// could not have wrapped over it (wrap requires top > t first),
			// so p is the item that was at t when we loaded it.
			return p, true
		}
	}
}
