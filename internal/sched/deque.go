package sched

import "sync/atomic"

// clDeque is a Chase-Lev work-stealing deque (Chase & Lev, SPAA'05, in the
// sequentially-consistent formulation of Lê et al., PPoPP'13 — Go's
// sync/atomic operations are seq-cst, so the simple version is correct).
//
// Ownership discipline: PushBottom and PopBottom may only be called by the
// deque's owner — in this package, the goroutine currently holding the
// owning worker's token — while Steal may be called by any goroutine at any
// time. The owner's fast paths are lock-free (plain atomic loads/stores; a
// single CAS only when racing a thief for the last element), and Steal is a
// bounded-retry CAS on top.
//
// Items are boxed (*T) so that slots can be published atomically; the ring
// grows geometrically and is swapped in with an atomic pointer store, so
// thieves holding a stale ring still read valid items — staleness is caught
// by their top CAS.
type clDeque[T any] struct {
	top    atomic.Int64 // next index to steal; advanced by CAS
	bottom atomic.Int64 // next index to push; owner-written only
	buf    atomic.Pointer[ringBuf[T]]

	// arena bump-allocates the boxes in chunks; owner-only, like
	// PushBottom. Each box is written exactly once before its pointer is
	// published through a slot, so readers are synchronized by the slot's
	// atomic load. This keeps the queue path at ~1/arenaChunk allocations
	// per item instead of one.
	arena     []T
	arenaNext int
}

const arenaChunk = 64

type ringBuf[T any] struct {
	mask  int64 // len(slots) - 1; len is a power of two
	slots []atomic.Pointer[T]
}

const initialDequeCap = 16

func newRingBuf[T any](capacity int64) *ringBuf[T] {
	return &ringBuf[T]{mask: capacity - 1, slots: make([]atomic.Pointer[T], capacity)}
}

func (d *clDeque[T]) init() {
	d.buf.Store(newRingBuf[T](initialDequeCap))
}

// Size returns a racy snapshot of the number of queued items; exact only at
// quiescence. Thieves use it to skip empty victims without touching their
// cache lines further.
func (d *clDeque[T]) Size() int64 {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return b - t
}

// PushBottom appends an item at the bottom. Owner only.
func (d *clDeque[T]) PushBottom(item T) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= int64(len(buf.slots)) {
		buf = d.grow(buf, t, b)
	}
	if d.arenaNext == len(d.arena) {
		d.arena = make([]T, arenaChunk)
		d.arenaNext = 0
	}
	p := &d.arena[d.arenaNext]
	d.arenaNext++
	*p = item
	buf.slots[b&buf.mask].Store(p)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live range [t, b). Owner only. Thieves
// concurrently reading the old ring see the same items (the live range is
// never mutated in place), and any steal completed against the old ring
// advances top, which the owner observes through the shared counter.
func (d *clDeque[T]) grow(old *ringBuf[T], t, b int64) *ringBuf[T] {
	nb := newRingBuf[T](int64(len(old.slots)) * 2)
	for i := t; i < b; i++ {
		nb.slots[i&nb.mask].Store(old.slots[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// PopBottom removes the most recently pushed item (LIFO). Owner only. The
// only synchronization with thieves is the top CAS when exactly one item
// remains.
func (d *clDeque[T]) PopBottom() (item T, ok bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b) // reserve: thieves now refuse to go past b
	t := d.top.Load()
	if t > b {
		// Deque was empty; undo the reservation.
		d.bottom.Store(b + 1)
		return item, false
	}
	buf := d.buf.Load()
	slot := &buf.slots[b&buf.mask]
	p := slot.Load()
	if t == b {
		// Last element: race thieves for it through top.
		if !d.top.CompareAndSwap(t, t+1) {
			// A thief won; the deque is empty.
			d.bottom.Store(b + 1)
			return item, false
		}
		slot.Store(nil)
		d.bottom.Store(b + 1)
		return *p, true
	}
	slot.Store(nil)
	return *p, true
}

// Clearing consumed slots: the owner's pop clears its slot so the box (and
// whatever the item pins — for the runtime, a completed *Task tree) does
// not stay reachable until the ring index wraps. This is safe: with t < b
// no thief can reach index b (thieves stop at bottom), and in the t == b
// case the slot is cleared only after winning the top CAS, after which
// every thief's CAS on that index fails and its speculative slot read is
// discarded. Steal must NOT clear: once top has passed the stolen index
// the owner may already be wrapping a new push onto the same physical
// slot, and a late nil-store from the thief would destroy that item.

// Steal removes the oldest item (FIFO). Safe from any goroutine, including
// the owner (the sharded central pool self-pulls through Steal to get FIFO
// order on its own ingress queue). Retries only when it loses a CAS race
// while items remain.
func (d *clDeque[T]) Steal() (item T, ok bool) {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return item, false
		}
		buf := d.buf.Load()
		p := buf.slots[t&buf.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			// The CAS proves no other thief took index t and the owner
			// could not have wrapped over it (wrap requires top > t first),
			// so p is the item that was at t when we loaded it.
			return *p, true
		}
	}
}
