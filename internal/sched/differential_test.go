package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/randtest"
)

// Differential admission tests: the single-lock reference pools and the
// sharded pools are driven over identical randomized schedules of Submit /
// SubmitBatch / Finish / Yield+Acquire, and each must uphold the same
// admission invariants — every item runs exactly once (no lost wakeups, no
// duplication), the concurrency cap holds (no token leaks or forgeries),
// and at quiescence Idle() is exactly true with QueueLen() == 0. Dispatch
// *order* legitimately differs between pools; the invariants may not. This
// is the ready-pool analogue of internal/deps/differential_test.go, and the
// CI race pass runs it with -race to validate the sharded pools' lock-free
// paths.

// admSchedule is a pool-independent randomized admission schedule: items
// [0, ext) arrive from outside (no worker token) in the given batch sizes;
// a runner executing item i additionally submits a child item ext+i from
// its own worker when childOf(i), and makes a Yield/Acquire token
// round-trip (the taskwait protocol) when yields(i).
type admSchedule struct {
	workers int
	ext     int
	batches []int
	childB  byte
	yieldB  byte
}

func genAdmSchedule(rng *rand.Rand) admSchedule {
	sc := admSchedule{
		workers: 1 + rng.Intn(8),
		ext:     1 + rng.Intn(200),
		childB:  byte(rng.Intn(256)),
		yieldB:  byte(rng.Intn(256)),
	}
	for left := sc.ext; left > 0; {
		b := 1 + rng.Intn(7)
		if b > left {
			b = left
		}
		sc.batches = append(sc.batches, b)
		left -= b
	}
	return sc
}

func (sc admSchedule) childOf(item int) bool {
	return item < sc.ext && (byte(item*131)^sc.childB)%3 == 0
}

func (sc admSchedule) yields(item int) bool {
	return (byte(item*137)^sc.yieldB)%5 == 0
}

func (sc admSchedule) total() int {
	n := sc.ext
	for i := 0; i < sc.ext; i++ {
		if sc.childOf(i) {
			n++
		}
	}
	return n
}

// runAdmSchedule drives one pool through the schedule and checks the
// admission invariants.
func runAdmSchedule(t *testing.T, name string, mk func(spawn func(item, worker int)) Queue[int], sc admSchedule) bool {
	t.Helper()
	total := sc.total()
	counts := make([]atomic.Int32, 2*sc.ext)
	var wg sync.WaitGroup
	wg.Add(total)
	var cur, peak atomic.Int64
	var q Queue[int]
	q = mk(func(item, worker int) {
		for {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			counts[item].Add(1)
			if sc.childOf(item) {
				q.Submit(sc.ext+item, worker)
			}
			if sc.yields(item) {
				cur.Add(-1)
				q.Yield(worker)
				worker = q.Acquire()
				cur.Add(1)
			}
			cur.Add(-1)
			wg.Done()
			next, ok := q.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	id := 0
	for _, b := range sc.batches {
		if b == 1 {
			q.Submit(id, -1)
			id++
			continue
		}
		batch := make([]int, b)
		for j := range batch {
			batch[j] = id
			id++
		}
		q.SubmitBatch(batch, -1)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for !q.Idle() {
		if time.Now().After(deadline) {
			t.Errorf("%s: pool did not quiesce (queued=%d)", name, q.QueueLen())
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
	if ql := q.QueueLen(); ql != 0 {
		t.Errorf("%s: QueueLen = %d at quiescence", name, ql)
		return false
	}
	if p := peak.Load(); p > int64(sc.workers) {
		t.Errorf("%s: peak concurrency %d exceeds %d workers (token leak)", name, p, sc.workers)
		return false
	}
	for i := range counts {
		want := int32(0)
		if i < sc.ext || sc.childOf(i-sc.ext) {
			want = 1
		}
		if c := counts[i].Load(); c != want {
			t.Errorf("%s: item %d ran %d times, want %d", name, i, c, want)
			return false
		}
	}
	return true
}

func TestPoolDifferentialAdmission(t *testing.T) {
	pools := []struct {
		name string
		mk   func(workers int, spawn func(item, worker int)) Queue[int]
	}{
		{"locked-stealing", func(w int, s func(int, int)) Queue[int] { return NewLockedStealing(w, s) }},
		{"stealing", func(w int, s func(int, int)) Queue[int] { return NewStealing(w, s) }},
		// Topology-vs-flat differential: the two-domain tree walk and the
		// flat reference order run the same schedules and must uphold the
		// same invariants — only steal distance may differ.
		{"stealing-topo", func(w int, s func(int, int)) Queue[int] {
			return NewStealingTopo(w, Topology{GroupSize: 2, Domains: 2}, s)
		}},
		{"stealing-flat", func(w int, s func(int, int)) Queue[int] { return NewStealingTopo(w, TopologyFlat, s) }},
		{"sharded-central", func(w int, s func(int, int)) Queue[int] { return NewShardedCentral(w, s) }},
		{"central", func(w int, s func(int, int)) Queue[int] { return New(w, FIFO, s) }},
	}
	f := func(seed int64) bool {
		sc := genAdmSchedule(rand.New(rand.NewSource(seed)))
		for _, p := range pools {
			mk := func(spawn func(int, int)) Queue[int] { return p.mk(sc.workers, spawn) }
			if !runAdmSchedule(t, fmt.Sprintf("%s/seed=%d", p.name, seed), mk, sc) {
				return false
			}
		}
		return true
	}
	max := 40
	if testing.Short() {
		max = 10
	}
	randtest.Check(t, max, 51, f)
}
