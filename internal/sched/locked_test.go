package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockedStealingRunsAll(t *testing.T) {
	var ran atomic.Int64
	var wg sync.WaitGroup
	var s *LockedStealing[int]
	s = NewLockedStealing(4, func(item, worker int) {
		for {
			ran.Add(1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 1000
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	wg.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d items, want %d", ran.Load(), n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !s.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("locked stealing pool did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLockedStealingSelfLIFOStealFIFO pins the dispatch discipline of the
// reference pool: own deque drained from the back, victims' from the front.
func TestLockedStealingSelfLIFOStealFIFO(t *testing.T) {
	var order []int
	done := make(chan struct{})
	var s *LockedStealing[int]
	s = NewLockedStealing(2, func(item, worker int) {
		for {
			order = append(order, item)
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	})
	w0 := s.Acquire()
	w1 := s.Acquire()
	if w0 > w1 {
		w0, w1 = w1, w0
	}
	for i := 0; i < 3; i++ {
		s.Submit(i, 0)
	}
	for i := 10; i < 12; i++ {
		s.Submit(i, 1)
	}
	s.Yield(w0)
	<-done
	want := []int{2, 1, 0, 10, 11}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	s.Yield(w1)
}

// TestLockedStealingExternalRoundRobin: with all tokens held, external
// submissions (out-of-range from) must spread round-robin across the
// deques instead of piling onto worker 0's.
func TestLockedStealingExternalRoundRobin(t *testing.T) {
	const workers = 4
	var s *LockedStealing[int]
	s = NewLockedStealing(workers, func(item, worker int) {
		for {
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	held := make([]int, workers)
	for i := range held {
		held[i] = s.Acquire()
	}
	const n = 20
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	s.mu.Lock()
	for d, q := range s.deques {
		if len(q) != n/workers {
			s.mu.Unlock()
			t.Fatalf("deque %d holds %d items, want %d (external submissions not spread)", d, len(q), n/workers)
		}
	}
	s.mu.Unlock()
	for _, w := range held {
		s.Yield(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !s.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("pool did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStealingExternalSpread is the sharded-pool counterpart: external
// submissions land round-robin on the shard inboxes.
func TestStealingExternalSpread(t *testing.T) {
	const workers = 4
	var s *Stealing[int]
	s = NewStealing(workers, func(item, worker int) {
		for {
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	held := make([]int, workers)
	for i := range held {
		held[i] = s.Acquire()
	}
	const n = 20
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	for d := range s.shards {
		if got := s.shards[d].ilen.Load(); got != n/workers {
			t.Fatalf("shard %d inbox holds %d items, want %d", d, got, n/workers)
		}
	}
	for _, w := range held {
		s.Yield(w)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !s.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("pool did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedCentralFIFOPull pins the sharded central discipline: a worker
// pulls its own ingress queue in arrival order.
func TestShardedCentralFIFOPull(t *testing.T) {
	var order []int
	done := make(chan struct{})
	var s *ShardedCentral[int]
	s = NewShardedCentral(1, func(item, worker int) {
		for {
			order = append(order, item)
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	})
	w := s.Acquire()
	for i := 0; i < 5; i++ {
		s.Submit(i, 0)
	}
	s.Yield(w)
	<-done
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}
