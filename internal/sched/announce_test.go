package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Announce tests: every pool must deliver exactly n copies of an announced
// item — each copy consumed exactly once, whether it lands on a free token
// (spawn path) or queues for a busy worker to pop at Finish — and the pool
// must quiesce afterwards. Announce is the worksharing invitation
// primitive: copies are invitations, not new work, so delivery and
// conservation are the whole contract (order and placement are not).

// announcePools enumerates the Queue implementations under test.
func announcePools() []struct {
	name string
	mk   func(workers int, spawn func(item, worker int)) Queue[int]
} {
	return []struct {
		name string
		mk   func(workers int, spawn func(item, worker int)) Queue[int]
	}{
		{"locked-stealing", func(w int, s func(int, int)) Queue[int] { return NewLockedStealing(w, s) }},
		{"stealing", func(w int, s func(int, int)) Queue[int] { return NewStealing(w, s) }},
		{"sharded-central", func(w int, s func(int, int)) Queue[int] { return NewShardedCentral(w, s) }},
		{"central", func(w int, s func(int, int)) Queue[int] { return New(w, FIFO, s) }},
	}
}

func waitQuiesce(t *testing.T, name string, q Queue[int]) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !q.Idle() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: pool did not quiesce (queued=%d)", name, q.QueueLen())
		}
		time.Sleep(100 * time.Microsecond)
	}
	if ql := q.QueueLen(); ql != 0 {
		t.Fatalf("%s: QueueLen = %d at quiescence", name, ql)
	}
}

// TestAnnounceIdlePool: announcing to an all-free pool starts copies on
// free tokens (and queues the overflow beyond the worker count), and every
// copy runs exactly once.
func TestAnnounceIdlePool(t *testing.T) {
	const workers, copies = 4, 7
	for _, p := range announcePools() {
		var ran atomic.Int64
		var wg sync.WaitGroup
		wg.Add(copies)
		var q Queue[int]
		q = p.mk(workers, func(item, worker int) {
			for {
				if item != 42 {
					t.Errorf("%s: ran item %d, only 42 was announced", p.name, item)
				}
				ran.Add(1)
				wg.Done()
				next, ok := q.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		q.Announce(42, copies, -1)
		wg.Wait()
		waitQuiesce(t, p.name, q)
		if got := ran.Load(); got != copies {
			t.Fatalf("%s: %d copies ran, want %d", p.name, got, copies)
		}
	}
}

// TestAnnounceBusyPool: with every token occupied, announced copies queue
// and are drained through Finish once the occupants complete — no copy is
// lost to a wakeup race and none runs twice. The announcement here rides
// mid-flight workers exactly the way a worksharing region invites a busy
// fleet.
func TestAnnounceBusyPool(t *testing.T) {
	const workers, copies = 4, 6
	for _, p := range announcePools() {
		gate := make(chan struct{})
		var occupied sync.WaitGroup
		occupied.Add(workers)
		var ran atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers + copies)
		var q Queue[int]
		q = p.mk(workers, func(item, worker int) {
			for {
				if item < workers {
					occupied.Done()
					<-gate
				} else {
					ran.Add(1)
				}
				wg.Done()
				next, ok := q.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		for i := 0; i < workers; i++ {
			q.Submit(i, -1)
		}
		occupied.Wait()
		q.Announce(workers, copies, 2)
		close(gate)
		wg.Wait()
		waitQuiesce(t, p.name, q)
		if got := ran.Load(); got != copies {
			t.Fatalf("%s: %d queued copies ran, want %d", p.name, got, copies)
		}
	}
}

// TestAnnounceSpread: on the stealing pools, queued announcement copies
// must not pile onto the announcer's deque — they spread across the
// workers so each idle worker finds its invitation without a steal. The
// pool is frozen (every token occupied behind a gate) while the placement
// is inspected directly; which worker ultimately *consumes* each copy is
// timing-dependent and deliberately not asserted.
func TestAnnounceSpread(t *testing.T) {
	const workers = 4
	{
		var q Queue[int]
		gate := make(chan struct{})
		var occupied, wg sync.WaitGroup
		ls := NewLockedStealing(workers, func(item, worker int) {
			for {
				if item < workers {
					occupied.Done()
					<-gate
				}
				wg.Done()
				next, ok := q.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		q = ls
		occupied.Add(workers)
		wg.Add(workers * 2)
		for i := 0; i < workers; i++ {
			q.Submit(i, -1)
		}
		occupied.Wait()
		q.Announce(workers, workers, 0)
		ls.mu.Lock()
		nonEmpty := 0
		for _, d := range ls.deques {
			if len(d) > 0 {
				nonEmpty++
			}
		}
		ls.mu.Unlock()
		if nonEmpty < 2 {
			t.Errorf("locked-stealing: %d spread copies landed on %d deque(s); announcement has submitter locality", workers, nonEmpty)
		}
		close(gate)
		wg.Wait()
		waitQuiesce(t, "locked-stealing", q)
	}
	{
		var q Queue[int]
		gate := make(chan struct{})
		var occupied, wg sync.WaitGroup
		st := NewStealing(workers, func(item, worker int) {
			for {
				if item < workers {
					occupied.Done()
					<-gate
				}
				wg.Done()
				next, ok := q.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		q = st
		occupied.Add(workers)
		wg.Add(workers * 2)
		for i := 0; i < workers; i++ {
			q.Submit(i, -1)
		}
		occupied.Wait()
		q.Announce(workers, workers, 0)
		nonEmpty := 0
		for i := range st.shards {
			if st.shards[i].ilen.Load() > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Errorf("stealing: %d spread copies landed on %d inbox(es); announcement has submitter locality", workers, nonEmpty)
		}
		close(gate)
		wg.Wait()
		waitQuiesce(t, "stealing", q)
	}
}
