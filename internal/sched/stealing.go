package sched

import "sync"

// Stealing is a ready-pool with one deque per worker: a submission lands on
// the submitting worker's deque, a finishing worker pops its own deque from
// the back (LIFO — depth-first, cache-warm), and a worker whose deque is
// empty steals from a victim's front (FIFO — the oldest, coarsest task),
// scanning victims round-robin from its own id. This is the Cilk
// work-stealing discipline; the runtime offers it as an ablation against
// the central queue plus direct successor hand-off that the paper's
// locality results (§VIII-A) are built on.
//
// A single mutex guards the deques and the token pool. The point of this
// implementation is the *dispatch order* (self-LIFO, steal-FIFO,
// submission locality), not lock scalability: with one lock there is no
// lost-wakeup window between an empty-pool check and a token retirement,
// which keeps the admission invariants identical to the central Scheduler.
type Stealing[T any] struct {
	mu      sync.Mutex
	deques  [][]T
	queued  int
	free    []int
	waiters []chan int
	spawn   func(item T, worker int)
	workers int
}

var _ Queue[int] = (*Stealing[int])(nil)

// NewStealing creates a work-stealing pool with the given number of worker
// tokens.
func NewStealing[T any](workers int, spawn func(item T, worker int)) *Stealing[T] {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	s := &Stealing[T]{
		deques:  make([][]T, workers),
		spawn:   spawn,
		workers: workers,
	}
	for i := workers - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Workers returns the number of worker tokens.
func (s *Stealing[T]) Workers() int { return s.workers }

// Submit makes an item runnable. With a free token it starts immediately;
// otherwise it is pushed onto the submitting worker's deque (worker 0's
// when from is out of range, e.g. a submission from outside any worker).
func (s *Stealing[T]) Submit(item T, from int) {
	if from < 0 || from >= s.workers {
		from = 0
	}
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		go s.spawn(item, w)
		return
	}
	s.deques[from] = append(s.deques[from], item)
	s.queued++
	s.mu.Unlock()
}

// SubmitBatch makes every item runnable under one lock acquisition: items
// start on free tokens first, the rest land on the submitting worker's
// deque in order (so the oldest is stolen first, as with repeated Submit).
func (s *Stealing[T]) SubmitBatch(items []T, from int) {
	if len(items) == 0 {
		return
	}
	if from < 0 || from >= s.workers {
		from = 0
	}
	s.mu.Lock()
	i := 0
	for ; i < len(items) && len(s.free) > 0; i++ {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		go s.spawn(items[i], w)
	}
	if rest := items[i:]; len(rest) > 0 {
		s.deques[from] = append(s.deques[from], rest...)
		s.queued += len(rest)
	}
	s.mu.Unlock()
}

// popLocked removes the next item for worker w: own back, then victims'
// fronts. Caller holds mu and has checked queued > 0... except callers
// check via the ok return. Returns ok=false when every deque is empty.
func (s *Stealing[T]) popLocked(w int) (item T, ok bool) {
	if d := s.deques[w]; len(d) > 0 {
		item = d[len(d)-1]
		s.deques[w] = d[:len(d)-1]
		s.queued--
		return item, true
	}
	for i := 1; i < s.workers; i++ {
		v := (w + i) % s.workers
		if d := s.deques[v]; len(d) > 0 {
			item = d[0]
			s.deques[v] = d[1:]
			s.queued--
			return item, true
		}
	}
	return item, false
}

// Finish is called by a runner that completed its item and still holds
// worker w: it pops the worker's own deque, steals if empty, and otherwise
// retires the token.
func (s *Stealing[T]) Finish(worker int) (next T, ok bool) {
	s.mu.Lock()
	if item, ok := s.popLocked(worker); ok {
		s.mu.Unlock()
		return item, true
	}
	s.releaseLocked(worker)
	s.mu.Unlock()
	var zero T
	return zero, false
}

// Yield releases worker w while its holder blocks: the token redeploys to
// queued work, a blocked Acquire, or the free pool.
func (s *Stealing[T]) Yield(worker int) {
	s.mu.Lock()
	if item, ok := s.popLocked(worker); ok {
		s.mu.Unlock()
		go s.spawn(item, worker)
		return
	}
	s.releaseLocked(worker)
	s.mu.Unlock()
}

func (s *Stealing[T]) releaseLocked(worker int) {
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		ch <- worker
		return
	}
	s.free = append(s.free, worker)
}

// Acquire blocks until a worker token is available and returns it.
func (s *Stealing[T]) Acquire() int {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		return w
	}
	ch := make(chan int, 1)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return <-ch
}

// Idle reports whether no items are queued and all tokens are free.
func (s *Stealing[T]) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued == 0 && len(s.free) == s.workers && len(s.waiters) == 0
}

// QueueLen returns the total number of queued items across all deques.
func (s *Stealing[T]) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}
