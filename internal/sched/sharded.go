package sched

import (
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/mempool"
)

// shardedPool is the sharded admission path shared by the Stealing and
// ShardedCentral pools: one deque shard per worker, a lock-free token
// free-list, and an idle protocol that replaces the single pool-wide mutex
// of the reference implementations.
//
// Per-shard state:
//
//   - deque: a Chase-Lev deque owned by the worker. Pushes with an in-range
//     from and self-pops are the owner's lock-free fast path; thieves take
//     the oldest item with one CAS.
//   - inbox: a small mutex-guarded FIFO for submissions from goroutines
//     that hold no worker token (from out of range). External submissions
//     are routed round-robin across inboxes so they cannot pile onto one
//     shard.
//
// Admission invariants (shared with the single-lock pools, and checked by
// the differential tests in this package):
//
//   - token conservation: every worker token is, at all times, held by
//     exactly one runner, parked in the free list, or in flight to exactly
//     one waiter;
//   - no lost wakeups: a queued item and a free token cannot coexist at
//     quiescence;
//   - waiter priority: a release point (Finish, Yield, token retirement)
//     hands the token to a blocked Acquire — a resuming taskwait, which
//     holds a live stack — before spawning fresh queued work;
//   - Idle() is exact at quiescence.
//
// The lost-wakeup window that the single-lock pools close with their mutex
// — a submitter observes no free token and queues, while a retiring worker
// concurrently observes no queued work and parks its token — is closed here
// with a Dekker-style publish-then-recheck protocol over seq-cst atomics:
// the submitter publishes the item (the shard deque's bottom index, or the
// inbox count) and then re-checks the token list (kick); the retirer
// publishes the token (free list) and then re-checks every shard and the
// waiter count (releaseToken). In any sequentially consistent interleaving
// at least one side observes the other's publication and performs (or
// hands off responsibility for) the match; a reclaim that finds the
// counterpart already consumed returns the token and re-checks, so
// responsibility is never dropped.
type shardedPool[T any] struct {
	shards  []poolShard[T]
	tokens  *tokenList
	rr      atomic.Uint32
	spawn   func(item T, worker int)
	workers int
	// topo is the resolved locality tree (topology.go): per-worker victim
	// orders for the nearest-first steal walk, and the group/domain tables
	// that classify steal distances. A flat topology keeps the tables (for
	// distance accounting) but scans victims in one flat randomized pass.
	topo topoTree
	// boxes is the shared free-list shard for deque boxes: each worker's
	// poolShard holds an owner lane over it, a pushed box travels with its
	// item (a steal carries it to the thief), and the consumer recycles it
	// into its own lane — the deque path allocates nothing in steady state.
	boxes *mempool.Global[T]
	// selfLIFO selects the discipline of the owner's fast path: true pops
	// the worker's own deque from the bottom (depth-first, cache-warm —
	// work stealing), false from the top (arrival order — the sharded
	// central queue).
	selfLIFO bool

	wmu      sync.Mutex // guards waiters
	waiters  []chan int // blocked Acquire calls (taskwait resumes)
	nwaiters atomic.Int64

	spawns atomic.Int64

	// soloQ replaces shard 0's deque when workers == 1: with no other
	// shard to steal from it, the queue is only ever touched by the
	// current holder of the single token (ownership transfers through the
	// token list, which carries the happens-before edge), so plain slice
	// operations suffice and only the length is published for the idle
	// protocol's emptiness checks. This keeps the degenerate single-worker
	// pool at parity with the single-lock implementations.
	soloQ    []T
	soloHead int // index of the oldest solo item (FIFO pop side)
	soloLen  atomic.Int64
}

// poolShard pads to a whole number of cache lines so one worker's push/pop
// traffic does not false-share with its neighbours' (the field sizes are
// T-independent — slices are headers — so the pad is a constant; a test
// asserts the 64-byte multiple).
type poolShard[T any] struct {
	deque     clDeque[T]              // 24 bytes
	imu       sync.Mutex              // 8
	inbox     []T                     // 24
	ilen      atomic.Int64            // 8
	steals    atomic.Int64            // 8; items this worker took from other shards
	lvlSteals [NumLevels]atomic.Int64 // 24; steal-distance histogram
	rng       uint64                  // 8; owner-only victim-start PRNG state
	boxLane   mempool.Lane[T]         // 48; owner-only box free list
	_         [40]byte                // 152 -> 192
}

// PoolStats are diagnostic counters of a pool.
type PoolStats struct {
	// Spawns is the number of goroutines started (token matched to an item
	// outside a Finish chain).
	Spawns int64
	// Steals counts items a worker took from another worker's shard.
	Steals int64
	// StealLevels is the steal-distance histogram over the pool's resolved
	// topology tree: StealLevels[LevelSibling] stayed inside the thief's
	// core group, [LevelDomain] crossed groups within a domain, and
	// [LevelRemote] crossed domains. The sum equals Steals for the sharded
	// pools; the single-lock pools have no shards and leave it zero.
	StealLevels [NumLevels]int64
}

// CrossGroup returns the steals that left the thief's sibling group — the
// expensive distances (shared-LLC crossing and beyond on a real machine).
func (s PoolStats) CrossGroup() int64 {
	return s.StealLevels[LevelDomain] + s.StealLevels[LevelRemote]
}

func (p *shardedPool[T]) init(workers int, spawn func(item T, worker int), selfLIFO bool, topo Topology) {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	p.boxes = mempool.NewGlobal(func() *T { return new(T) })
	p.shards = make([]poolShard[T], workers)
	for i := range p.shards {
		p.shards[i].deque.init()
		p.shards[i].boxLane.Init(p.boxes)
		// Fixed seeds: the per-shard victim-start draws are then a pure
		// function of each worker's pop sequence, so a replayed schedule
		// (randtest -seed) replays the steal schedule too.
		p.shards[i].rng = splitmix64(uint64(i) + 1)
	}
	p.tokens = newTokenList(workers)
	p.spawn = spawn
	p.workers = workers
	p.selfLIFO = selfLIFO
	p.topo = resolveTopology(workers, topo)
}

// Workers returns the number of worker tokens.
func (p *shardedPool[T]) Workers() int { return p.workers }

// Stats returns the pool's diagnostic counters.
func (p *shardedPool[T]) Stats() PoolStats {
	st := PoolStats{Spawns: p.spawns.Load()}
	for i := range p.shards {
		st.Steals += p.shards[i].steals.Load()
		for l := 0; l < NumLevels; l++ {
			st.StealLevels[l] += p.shards[i].lvlSteals[l].Load()
		}
	}
	return st
}

func (p *shardedPool[T]) spawnGo(item T, w int) {
	p.spawns.Add(1)
	go p.spawn(item, w)
}

// pushItem queues an item. An in-range from pushes onto that worker's own
// deque — the caller holds that worker's token, so this is the owner-side
// lock-free path. Out-of-range submissions go to a round-robin shard's
// inbox (they come from goroutines holding no token, which may race each
// other and the shard owner).
func (p *shardedPool[T]) pushItem(item T, from int) {
	if from >= 0 && from < p.workers {
		if p.workers == 1 {
			p.soloQ = append(p.soloQ, item)
			p.soloLen.Store(int64(len(p.soloQ) - p.soloHead))
			return
		}
		sh := &p.shards[from]
		box := sh.boxLane.Get() // owner-only: the caller holds from's token
		*box = item
		sh.deque.PushBottom(box)
		return
	}
	p.inboxPush(int(p.rr.Add(1))%p.workers, item)
}

// inboxPush appends an item to shard v's inbox. Inboxes are mutex-guarded,
// so any goroutine may target any shard — this is the cross-shard placement
// primitive behind external submissions, nearest-first announcements, and
// affinity-routed batches.
func (p *shardedPool[T]) inboxPush(v int, item T) {
	sh := &p.shards[v]
	sh.imu.Lock()
	sh.inbox = append(sh.inbox, item)
	sh.ilen.Add(1)
	sh.imu.Unlock()
}

// Submit makes an item runnable. With a free token it starts immediately on
// a new goroutine; otherwise it queues on the submitting worker's shard.
func (p *shardedPool[T]) Submit(item T, from int) {
	if w, ok := p.tokens.tryPop(); ok {
		p.spawnGo(item, w)
		return
	}
	p.pushItem(item, from)
	p.kick()
}

// SubmitBatch makes every item runnable in one admission: tokens are
// matched first, the rest queue on the submitting worker's shard (or are
// scattered round-robin across inboxes for external batches), and one kick
// closes the lost-wakeup window for the whole batch.
func (p *shardedPool[T]) SubmitBatch(items []T, from int) {
	if len(items) == 0 {
		return
	}
	i := 0
	for ; i < len(items); i++ {
		w, ok := p.tokens.tryPop()
		if !ok {
			break
		}
		p.spawnGo(items[i], w)
	}
	rest := items[i:]
	if len(rest) == 0 {
		return
	}
	for _, it := range rest {
		p.pushItem(it, from)
	}
	p.kick()
}

// SubmitBatchAffinity implements AffinityQueue: like SubmitBatch, but each
// queued item whose hint — the worker whose group last touched the item's
// ready data — lies outside the submitter's own group is placed on the
// hinted worker's shard inbox instead of the submitter's deque, so the
// group that has the data warm finds the item locally instead of through a
// cross-group steal. Same-group and unhinted items keep the SubmitBatch
// placement (the submitter's own deque is the lock-free fast path, and a
// same-group neighbour reaches it with a sibling-level steal anyway). A
// flat topology ignores the hints entirely — it is the reference order.
func (p *shardedPool[T]) SubmitBatchAffinity(items []T, hints []int32, from int) {
	if p.topo.flat || p.workers == 1 {
		p.SubmitBatch(items, from)
		return
	}
	if len(items) == 0 {
		return
	}
	i := 0
	for ; i < len(items); i++ {
		w, ok := p.tokens.tryPop()
		if !ok {
			break
		}
		p.spawnGo(items[i], w)
	}
	if i == len(items) {
		return
	}
	fromGroup := int32(-1)
	if from >= 0 && from < p.workers {
		fromGroup = p.topo.groupOf[from]
	}
	for ; i < len(items); i++ {
		h := int32(-1)
		if i < len(hints) {
			h = hints[i]
		}
		if h >= 0 && int(h) < p.workers && p.topo.groupOf[h] != fromGroup {
			p.inboxPush(int(h), items[i])
			continue
		}
		p.pushItem(items[i], from)
	}
	p.kick()
}

// Announce publishes n copies of one item: free tokens are matched first,
// and the remaining copies spread across the *other* workers' shard
// inboxes — never the announcer's own deque (the announcer is already
// running the body the copies invite helpers into, so a copy there would
// force every other worker through a steal to find one). With a topology
// tree and a known announcer the spread walks the announcer's victim order
// nearest-first — sibling group, then the rest of the domain, then across —
// so the helpers most likely to share cache with the owner find their
// invitation first and without a cross-group steal. Announcements without
// a worker identity (out-of-range from) or on a flat topology scatter
// round-robin, the reference placement. One kick closes the lost-wakeup
// window for the whole announcement.
func (p *shardedPool[T]) Announce(item T, n, from int) {
	if n <= 0 {
		return
	}
	for ; n > 0; n-- {
		w, ok := p.tokens.tryPop()
		if !ok {
			break
		}
		p.spawnGo(item, w)
	}
	if n == 0 {
		return
	}
	if from >= 0 && from < p.workers && p.workers > 1 && !p.topo.flat {
		order := p.topo.victims[from] // nearest-first, excludes the announcer
		for i := 0; i < n; i++ {
			p.inboxPush(int(order[i%len(order)]), item)
		}
	} else {
		for i := 0; i < n; i++ {
			p.pushItem(item, -1)
		}
	}
	p.kick()
}

// takeInbox pops the oldest inbox item of sh, if any.
func (p *shardedPool[T]) takeInbox(sh *poolShard[T]) (item T, ok bool) {
	if sh.ilen.Load() == 0 {
		return item, false
	}
	sh.imu.Lock()
	if len(sh.inbox) == 0 {
		sh.imu.Unlock()
		return item, false
	}
	item = sh.inbox[0]
	var zero T
	sh.inbox[0] = zero
	sh.inbox = sh.inbox[1:]
	sh.ilen.Add(-1)
	sh.imu.Unlock()
	return item, true
}

// stealBatchMax bounds the steal-half multi-pop: one miss-driven visit to
// a victim takes at most this many items (the first for the thief, the
// rest onto its own deque).
const stealBatchMax = 8

// consumeBox copies the boxed item out and recycles the box into worker
// w's lane (the caller holds w's token, making it the lane's owner — this
// is how boxes that crossed shards via steals find their way back into
// circulation).
func (p *shardedPool[T]) consumeBox(w int, box *T) T {
	item := *box
	var zero T
	*box = zero
	p.shards[w].boxLane.Put(box)
	return item
}

// popFor removes the next item for the holder of token w: own deque (bottom
// under the stealing discipline, top under the central one), own inbox,
// then the other shards — deque top, then inbox. Victim order follows the
// pool's topology: nearest-first, exhausting each locality level (with a
// randomized start *within* the level so concurrent thieves spread instead
// of convoying) before widening to the next, or one flat randomized pass
// under TopologyFlat (the reference order). The randomized starts draw from
// the shard's private PRNG — the miss path touches no shared state.
//
// A hit on a victim's deque steals half its items (bounded by
// stealBatchMax): the first is returned, the rest move — boxes and all —
// onto the thief's own deque, so one miss amortizes the whole
// redistribution instead of paying a full O(workers) scan per item
// (ROADMAP's steal-half item; the depbench steals/kop column observes it).
// Only the stealing discipline batches: the sharded central pool preserves
// per-queue arrival order, which moving items between queues would skew.
func (p *shardedPool[T]) popFor(w int) (item T, ok bool) {
	sh := &p.shards[w]
	if p.workers == 1 {
		if n := len(p.soloQ) - p.soloHead; n > 0 {
			var zero T
			if p.selfLIFO {
				last := len(p.soloQ) - 1
				item, p.soloQ[last] = p.soloQ[last], zero
				p.soloQ = p.soloQ[:last]
			} else {
				item, p.soloQ[p.soloHead] = p.soloQ[p.soloHead], zero
				p.soloHead++
			}
			if len(p.soloQ) == p.soloHead {
				p.soloQ = p.soloQ[:0]
				p.soloHead = 0
			}
			p.soloLen.Store(int64(n - 1))
			return item, true
		}
		return p.takeInbox(sh)
	}
	var box *T
	if p.selfLIFO {
		box, ok = sh.deque.PopBottom()
	} else {
		box, ok = sh.deque.Steal()
	}
	if ok {
		return p.consumeBox(w, box), true
	}
	if item, ok = p.takeInbox(sh); ok {
		return item, true
	}
	if p.topo.flat {
		start := sh.randN(p.workers)
		for i := 0; i < p.workers; i++ {
			v := (start + i) % p.workers
			if v == w {
				continue
			}
			if item, ok = p.stealFrom(w, sh, v); ok {
				return item, true
			}
		}
	} else {
		vs := p.topo.victims[w]
		lo := 0
		for lvl := 0; lvl < NumLevels; lvl++ {
			hi := int(p.topo.levelEnd[w][lvl])
			if n := hi - lo; n > 0 {
				start := sh.randN(n)
				for i := 0; i < n; i++ {
					v := int(vs[lo+(start+i)%n])
					if item, ok = p.stealFrom(w, sh, v); ok {
						return item, true
					}
				}
			}
			lo = hi
		}
	}
	var zero T
	return zero, false
}

// stealFrom makes one visit to victim v on behalf of thief w: the victim's
// deque top (with the bounded steal-half migration under the stealing
// discipline), then the victim's inbox. A hit is charged to the thief's
// steal counters at the locality level separating the two workers.
func (p *shardedPool[T]) stealFrom(w int, sh *poolShard[T], v int) (item T, ok bool) {
	vs := &p.shards[v]
	if vs.deque.Size() > 0 {
		// Failpoint: widen the window between the size check and the steal
		// CAS, racing it against the owner's pushes and rival thieves.
		chaos.Maybe(chaos.SchedStealCAS)
		if box, bok := vs.deque.Steal(); bok {
			stolen := int64(1)
			if p.selfLIFO {
				// Steal half (bounded): keep the extras on our own
				// deque; their boxes migrate with them.
				n := vs.deque.Size() / 2
				if n > stealBatchMax-1 {
					n = stealBatchMax - 1
				}
				for ; n > 0; n-- {
					q, qok := vs.deque.Steal()
					if !qok {
						break
					}
					sh.deque.PushBottom(q)
					stolen++
				}
			}
			sh.noteSteal(p.topo.level(w, v), stolen)
			return p.consumeBox(w, box), true
		}
	}
	if item, ok = p.takeInbox(vs); ok {
		sh.noteSteal(p.topo.level(w, v), 1)
		return item, true
	}
	return item, false
}

// noteSteal charges n stolen items at locality level lvl.
func (sh *poolShard[T]) noteSteal(lvl int, n int64) {
	sh.steals.Add(n)
	sh.lvlSteals[lvl].Add(n)
}

// anyQueued reports whether any shard holds a queued item. Seq-cst loads of
// every deque's indices and inbox count: a retirer calling this after
// parking its token observes any item published before the submitter's
// token-list recheck (the Dekker pairing in releaseToken).
func (p *shardedPool[T]) anyQueued() bool {
	if p.soloLen.Load() > 0 {
		return true
	}
	for i := range p.shards {
		if p.shards[i].deque.Size() > 0 || p.shards[i].ilen.Load() > 0 {
			return true
		}
	}
	return false
}

// handToWaiter gives token w to a blocked Acquire, if any. Release points
// call this before looking at queued work: a resuming taskwait holds a live
// task mid-execution, and finishing it beats starting fresh work.
func (p *shardedPool[T]) handToWaiter(w int) bool {
	if p.nwaiters.Load() == 0 {
		return false
	}
	p.wmu.Lock()
	if len(p.waiters) == 0 {
		p.wmu.Unlock()
		return false
	}
	ch := p.waiters[0]
	p.waiters = p.waiters[1:]
	p.nwaiters.Store(int64(len(p.waiters)))
	p.wmu.Unlock()
	ch <- w
	return true
}

// releaseToken parks token w in the free list and then closes the two
// lost-wakeup windows of the park: a waiter that registered after the
// waiter check, and an item that was queued after the emptiness check. On
// each recheck hit it reclaims a token and serves the counterpart; a
// reclaim that finds the counterpart already consumed loops — the token
// must be parked again, and the park must recheck again.
func (p *shardedPool[T]) releaseToken(w int) {
	for {
		if p.handToWaiter(w) {
			return
		}
		p.tokens.push(w)
		// Failpoint: widen the window between parking the token and the
		// recheck below — the exact lost-wakeup race the recheck closes.
		chaos.Maybe(chaos.SchedTokenRetire)
		// Dekker recheck: both publications (waiter registration, item
		// queueing) are ordered before their own recheck of the free list,
		// so if neither is visible here, whoever published after our push
		// sees the token.
		if p.nwaiters.Load() == 0 && !p.anyQueued() {
			return
		}
		w2, ok := p.tokens.tryPop()
		if !ok {
			return // someone else reclaimed; responsibility moved
		}
		w = w2
		if item, ok := p.popFor(w); ok {
			p.spawnGo(item, w)
			return
		}
	}
}

// kick closes the submitter-side lost-wakeup window: with the item already
// published, match any free token to queued work. In the common case — all
// tokens busy — this is a single load of the free-list head. Failing to
// find an item after claiming a token means a racing worker took it; the
// token goes back through the full release path (which rechecks both
// sides).
func (p *shardedPool[T]) kick() {
	// Failpoint: widen the window between the caller's item publication
	// and the token-list recheck — the submitter side of the Dekker pair.
	chaos.Maybe(chaos.SchedDekkerRecheck)
	for {
		w, ok := p.tokens.tryPop()
		if !ok {
			return
		}
		if item, ok := p.popFor(w); ok {
			p.spawnGo(item, w)
			continue
		}
		p.releaseToken(w)
		return
	}
}

// Finish is called by a runner that completed its item and still holds
// worker w: a blocked Acquire wins the token first, then the worker's own
// shard and steal targets, and otherwise the token retires.
func (p *shardedPool[T]) Finish(worker int) (next T, ok bool) {
	var zero T
	if p.handToWaiter(worker) {
		return zero, false
	}
	if item, ok := p.popFor(worker); ok {
		return item, true
	}
	p.releaseToken(worker)
	return zero, false
}

// Yield releases worker w while its holder blocks (taskwait, taskgroup,
// throttle): the token redeploys to a blocked Acquire, to queued work on a
// fresh goroutine, or to the free list.
func (p *shardedPool[T]) Yield(worker int) {
	if p.handToWaiter(worker) {
		return
	}
	if item, ok := p.popFor(worker); ok {
		p.spawnGo(item, worker)
		return
	}
	p.releaseToken(worker)
}

// Acquire blocks until a worker token is available and returns it. The slow
// path publishes the waiter first and then rechecks the free list, pairing
// with releaseToken's publish-then-recheck from the other side.
func (p *shardedPool[T]) Acquire() int {
	if w, ok := p.tokens.tryPop(); ok {
		return w
	}
	p.wmu.Lock()
	ch := make(chan int, 1)
	p.waiters = append(p.waiters, ch)
	p.nwaiters.Store(int64(len(p.waiters)))
	// Recheck after publishing: a token parked between our fast path and
	// the registration would otherwise sleep forever opposite a free token.
	if w, ok := p.tokens.tryPop(); ok {
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.nwaiters.Store(int64(len(p.waiters)))
		p.wmu.Unlock()
		return w
	}
	p.wmu.Unlock()
	return <-ch
}

// Idle reports whether no items are queued and all tokens are free — i.e.
// the pool is quiescent. Exact when no operation is in flight.
func (p *shardedPool[T]) Idle() bool {
	return !p.anyQueued() &&
		p.tokens.free() == int64(p.workers) &&
		p.nwaiters.Load() == 0
}

// QueueLen returns the number of queued (not running) items, summed over
// the shards. The sum may be momentarily stale while operations are in
// flight; it is exact at quiescence.
func (p *shardedPool[T]) QueueLen() int {
	n := p.soloLen.Load()
	for i := range p.shards {
		n += p.shards[i].deque.Size() + p.shards[i].ilen.Load()
	}
	return int(n)
}

// Probe returns an instantaneous (not mutually consistent) observation of
// the admission state: each counter is its own atomic read, so transient
// contradictions — queued work and a free token at once — are expected
// during admission windows. Monitors must require the signature to persist.
func (p *shardedPool[T]) Probe() Probe {
	return Probe{
		Queued:     p.QueueLen(),
		FreeTokens: int(p.tokens.free()),
		Waiters:    int(p.nwaiters.Load()),
	}
}

// Stealing is the work-stealing ready pool: one deque per worker, LIFO
// self-pop (depth-first, cache-warm), FIFO stealing of the oldest — the
// Cilk discipline — over the sharded admission path above. It replaces the
// single-lock implementation this package used to ship (preserved as
// LockedStealing for differential testing and A/B benchmarks): submission
// onto the own shard and self-pop are lock-free, stealing is one CAS on the
// victim, and token accounting is the lock-free free list, so Submit,
// SubmitBatch, Finish, and Yield of different workers no longer serialize
// on any common lock.
type Stealing[T any] struct {
	shardedPool[T]
}

var _ Queue[int] = (*Stealing[int])(nil)
var _ AffinityQueue[int] = (*Stealing[int])(nil)

// NewStealing creates a work-stealing pool with the given number of worker
// tokens and the default synthetic topology tree (see Topology).
func NewStealing[T any](workers int, spawn func(item T, worker int)) *Stealing[T] {
	return NewStealingTopo(workers, Topology{}, spawn)
}

// NewStealingTopo creates a work-stealing pool over an explicit locality
// topology; TopologyFlat selects the flat victim order, the differential
// reference.
func NewStealingTopo[T any](workers int, topo Topology, spawn func(item T, worker int)) *Stealing[T] {
	s := &Stealing[T]{}
	s.init(workers, spawn, true, topo)
	return s
}

// ShardedCentral is the sharded variant of the central Scheduler: one
// ingress queue per worker and FIFO work-pulling. A submission lands on the
// submitting worker's ingress queue; a worker pulls its own queue in
// arrival order and then the other queues, oldest first. Dispatch order is
// per-queue FIFO (approximate global FIFO), and the admission path scales
// like the stealing pool's — no pool-wide lock. Global LIFO and Priority
// disciplines remain central-queue-only (Scheduler), since they order all
// ready items against each other.
type ShardedCentral[T any] struct {
	shardedPool[T]
}

var _ Queue[int] = (*ShardedCentral[int])(nil)

// NewShardedCentral creates a sharded central pool with the given number of
// worker tokens and the default synthetic topology tree.
func NewShardedCentral[T any](workers int, spawn func(item T, worker int)) *ShardedCentral[T] {
	s := &ShardedCentral[T]{}
	s.init(workers, spawn, false, Topology{})
	return s
}
