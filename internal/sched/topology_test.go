package sched

import (
	"testing"
	"time"
)

// Topology tests: the resolved tree shape, the nearest-first steal walk
// (sibling level exhausted before crossing a group, group before domain),
// the nearest-first announcement spread, and the w=1 parity guard between
// the tree and flat victim orders. The admission invariants of the
// topology pools are covered by TestPoolDifferentialAdmission, which runs
// tree- and flat-configured stealing pools over identical schedules.

// twoDomain is the synthetic two-domain CI topology used across the tests
// and the depbench locality table: groups of two siblings, split across
// two domains. At w=8: groups {0,1} {2,3} {4,5} {6,7}, domains {0..3}
// {4..7} — all three steal-distance levels are populated.
var twoDomain = Topology{GroupSize: 2, Domains: 2}

func TestTopologyResolve(t *testing.T) {
	tr := resolveTopology(8, twoDomain)
	wantGroup := []int32{0, 0, 1, 1, 2, 2, 3, 3}
	wantDomain := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	for w := 0; w < 8; w++ {
		if tr.groupOf[w] != wantGroup[w] || tr.domainOf[w] != wantDomain[w] {
			t.Fatalf("worker %d: group=%d domain=%d, want %d/%d",
				w, tr.groupOf[w], tr.domainOf[w], wantGroup[w], wantDomain[w])
		}
	}
	// Worker 2's victims nearest-first: sibling {3}, same-domain {0,1},
	// remote {4..7}; level boundaries at 1, 3, 7.
	wantVictims := []int32{3, 0, 1, 4, 5, 6, 7}
	for i, v := range tr.victims[2] {
		if v != wantVictims[i] {
			t.Fatalf("victims[2] = %v, want %v", tr.victims[2], wantVictims)
		}
	}
	if tr.levelEnd[2] != [NumLevels]int32{1, 3, 7} {
		t.Fatalf("levelEnd[2] = %v, want [1 3 7]", tr.levelEnd[2])
	}

	// Default synthetic tree: groups of four, one domain up to 16 workers.
	def := resolveTopology(8, Topology{})
	if def.groupOf[3] != 0 || def.groupOf[4] != 1 || def.domainOf[7] != 0 {
		t.Fatalf("default tree at w=8: groupOf=%v domainOf=%v", def.groupOf, def.domainOf)
	}
	// Degenerate single worker: no victims, no panic.
	solo := resolveTopology(1, twoDomain)
	if len(solo.victims[0]) != 0 {
		t.Fatalf("single worker has victims: %v", solo.victims[0])
	}
}

// TestStealDistanceDistribution loads one item onto every victim shard of
// a frozen two-domain pool and drains them all through worker 0's steal
// path: the walk must exhaust the sibling level before touching the rest
// of the domain, and the domain before crossing it, with the per-level
// counters recording exactly that distribution. Items carry their shard id
// so the order is observable, one item per shard so the steal-half
// migration cannot skew it.
func TestStealDistanceDistribution(t *testing.T) {
	const workers = 8
	s := NewStealingTopo(workers, twoDomain, func(item, worker int) {
		t.Errorf("spawn of item %d: the frozen pool must not start goroutines", item)
	})
	held := make(map[int]bool)
	for w := 0; w < workers; w++ {
		held[s.Acquire()] = true
	}
	if len(held) != workers {
		t.Fatalf("acquired %d distinct tokens, want %d", len(held), workers)
	}
	for v := 1; v < workers; v++ {
		s.Submit(v, v) // we hold v's token: lands on v's own deque
	}
	// Worker 0's nearest-first order over twoDomain: sibling {1}, domain
	// {2,3}, remote {4..7}.
	levelOf := func(v int) int {
		switch {
		case v == 1:
			return LevelSibling
		case v <= 3:
			return LevelDomain
		default:
			return LevelRemote
		}
	}
	var wantLevels [NumLevels]int64
	prevLevel := 0
	for i := 0; i < workers-1; i++ {
		item, ok := s.popFor(0)
		if !ok {
			t.Fatalf("pop %d: no item, want a steal", i)
		}
		lvl := levelOf(item)
		if lvl < prevLevel {
			t.Fatalf("pop %d stole item %d at level %d after a level-%d steal; nearest level not exhausted first",
				i, item, lvl, prevLevel)
		}
		prevLevel = lvl
		wantLevels[lvl]++
		if st := s.Stats(); st.StealLevels != wantLevels {
			t.Fatalf("after pop %d: StealLevels = %v, want %v", i, st.StealLevels, wantLevels)
		}
	}
	if wantLevels != [NumLevels]int64{1, 2, 4} {
		t.Fatalf("drained distribution %v, want [1 2 4]", wantLevels)
	}
	if st := s.Stats(); st.Steals != 7 || st.CrossGroup() != 6 {
		t.Fatalf("Steals=%d CrossGroup()=%d, want 7/6", st.Steals, st.CrossGroup())
	}
	for w := 0; w < workers; w++ {
		s.Yield(w)
	}
	waitQuiesce(t, "stealing-topo", s)
}

// TestAnnounceNearestFirst freezes a two-domain pool and announces from
// worker 0: the queued invitation copies must land on the nearest shards'
// inboxes first — the sibling, then the rest of the domain — and never on
// the announcer's own shard.
func TestAnnounceNearestFirst(t *testing.T) {
	const workers = 8
	s := NewStealingTopo(workers, twoDomain, func(item, worker int) {
		t.Errorf("spawn of item %d: the frozen pool must not start goroutines", item)
	})
	for w := 0; w < workers; w++ {
		s.Acquire()
	}
	s.Announce(42, 3, 0)
	want := []int64{0, 1, 1, 1, 0, 0, 0, 0} // victims[0] = [1, 2, 3, ...]
	for v := 0; v < workers; v++ {
		if got := s.shards[v].ilen.Load(); got != want[v] {
			t.Fatalf("shard %d inbox holds %d copies, want %d (nearest-first spread)", v, got, want[v])
		}
	}
	// Drain: each inbox copy is reachable from any worker's steal path.
	for i := 0; i < 3; i++ {
		if item, ok := s.popFor(0); !ok || item != 42 {
			t.Fatalf("drain pop %d: got %d/%v", i, item, ok)
		}
	}
	for w := 0; w < workers; w++ {
		s.Yield(w)
	}
	waitQuiesce(t, "stealing-topo", s)
}

// TestSubmitBatchAffinityRouting freezes a two-domain pool and submits a
// hinted batch from worker 0: cross-group hints divert their items to the
// hinted worker's shard inbox, while sibling-group and unhinted items stay
// on the submitter's own deque (the lock-free fast path).
func TestSubmitBatchAffinityRouting(t *testing.T) {
	const workers = 8
	s := NewStealingTopo(workers, twoDomain, func(item, worker int) {
		t.Errorf("spawn of item %d: the frozen pool must not start goroutines", item)
	})
	for w := 0; w < workers; w++ {
		s.Acquire()
	}
	items := []int{10, 11, 12, 13}
	hints := []int32{4, 1, -1, 6} // cross-group, sibling, none, cross-group
	s.SubmitBatchAffinity(items, hints, 0)
	for v, want := range []int64{0, 0, 0, 0, 1, 0, 1, 0} {
		if got := s.shards[v].ilen.Load(); got != want {
			t.Fatalf("shard %d inbox holds %d items, want %d", v, got, want)
		}
	}
	if got := s.shards[0].deque.Size(); got != 2 {
		t.Fatalf("submitter deque holds %d items, want 2 (sibling-hinted + unhinted)", got)
	}
	for i := 0; i < len(items); i++ {
		if _, ok := s.popFor(0); !ok {
			t.Fatalf("drain pop %d: no item", i)
		}
	}
	for w := 0; w < workers; w++ {
		s.Yield(w)
	}
	waitQuiesce(t, "stealing-topo", s)
}

// TestTopologyW1Parity is the regression guard on the degenerate
// single-worker case: the topology walk must not cost anything when there
// is no one to steal from — the tree-configured pool stays within 1.5x of
// the flat reference at w=1 (best-of-trials, interleaved, same shape as
// TestSchedW1Parity).
func TestTopologyW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	const ops = 200_000
	const trials = 5
	pools := []struct {
		name string
		mk   func(workers int, spawn func(item, worker int)) Queue[int]
	}{
		{"stealing-flat", func(w int, s func(int, int)) Queue[int] { return NewStealingTopo(w, TopologyFlat, s) }},
		{"stealing-topo", func(w int, s func(int, int)) Queue[int] { return NewStealingTopo(w, twoDomain, s) }},
	}
	best := []time.Duration{1<<63 - 1, 1<<63 - 1}
	for trial := 0; trial < trials; trial++ {
		for i, p := range pools {
			start := time.Now()
			runChains(p.mk, 1, ops)
			if d := time.Since(start); d < best[i] {
				best[i] = d
			}
		}
	}
	if f := float64(best[1]) / float64(best[0]); f > 1.5 {
		t.Errorf("stealing-topo w=1: %.2fx slower than stealing-flat (%v vs %v); topology walk leaked onto the solo path",
			f, best[1], best[0])
	}
}
