package sched

import "sync/atomic"

// tokenList is a lock-free free-list of worker tokens: a Treiber stack
// threaded through a fixed array (token ids are dense in [0, workers)), so
// push and tryPop are a single CAS each and never allocate. The head word
// packs the top token with a modification tag that bumps on every
// successful operation, which defeats ABA: a head observed before an
// interleaved pop/push sequence can never match again.
//
// nfree counts free tokens; it is maintained after the corresponding CAS,
// so it is exact whenever the list is quiescent (the Idle contract) and at
// worst momentarily stale during concurrent hand-offs.
type tokenList struct {
	head  atomic.Uint64   // low 32 bits: top token id + 1 (0 = empty); high 32: ABA tag
	next  []atomic.Uint32 // next[w]: id + 1 of the free token below w
	nfree atomic.Int64
}

func newTokenList(workers int) *tokenList {
	l := &tokenList{next: make([]atomic.Uint32, workers)}
	// Push in descending order so token 0 is on top, matching the hand-out
	// order of the single-lock pools.
	for w := workers - 1; w >= 0; w-- {
		l.push(w)
	}
	return l
}

func (l *tokenList) push(w int) {
	for {
		h := l.head.Load()
		l.next[w].Store(uint32(h))
		nh := (h>>32+1)<<32 | uint64(w+1)
		if l.head.CompareAndSwap(h, nh) {
			l.nfree.Add(1)
			return
		}
	}
}

// tryPop removes and returns a free token. It fails only when the list is
// observed empty — a CAS lost to a concurrent push/pop retries, so a free
// token is never overlooked (the idle protocol depends on this).
func (l *tokenList) tryPop() (int, bool) {
	for {
		h := l.head.Load()
		idx := uint32(h)
		if idx == 0 {
			return -1, false
		}
		w := int(idx - 1)
		nxt := l.next[w].Load()
		nh := (h>>32+1)<<32 | uint64(nxt)
		if l.head.CompareAndSwap(h, nh) {
			l.nfree.Add(-1)
			return w, true
		}
	}
}

func (l *tokenList) free() int64 { return l.nfree.Load() }
