package sched

import (
	"sync"
	"sync/atomic"
)

// LockedStealing is the single-lock reference implementation of the
// work-stealing pool: one deque per worker (LIFO self-pop, FIFO stealing),
// all guarded by one mutex together with the token pool. It dispatches in
// the same discipline as Stealing but with every admission operation
// serialized — with one lock there is no lost-wakeup window between an
// empty-pool check and a token retirement, so the admission invariants hold
// trivially. The differential tests in this package drive LockedStealing
// and the sharded pools over identical schedules to prove the sharded idle
// protocol preserves those invariants, and the contention benchmarks
// measure the sharded pools against it.
type LockedStealing[T any] struct {
	mu      sync.Mutex
	deques  [][]T
	queued  int
	free    []int
	waiters []chan int
	rr      atomic.Uint32
	spawn   func(item T, worker int)
	workers int
	spawns  atomic.Int64
	steals  atomic.Int64
}

var _ Queue[int] = (*LockedStealing[int])(nil)

// NewLockedStealing creates a single-lock work-stealing pool with the given
// number of worker tokens.
func NewLockedStealing[T any](workers int, spawn func(item T, worker int)) *LockedStealing[T] {
	if workers < 1 {
		panic("sched: need at least one worker")
	}
	s := &LockedStealing[T]{
		deques:  make([][]T, workers),
		spawn:   spawn,
		workers: workers,
	}
	for i := workers - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return s
}

// Workers returns the number of worker tokens.
func (s *LockedStealing[T]) Workers() int { return s.workers }

// Stats returns the pool's diagnostic counters.
func (s *LockedStealing[T]) Stats() PoolStats {
	return PoolStats{Spawns: s.spawns.Load(), Steals: s.steals.Load()}
}

// dequeFor maps a submission to a deque: the submitting worker's own, or a
// round-robin choice for external submissions (from out of range), so that
// a stream of external work spreads across the deques instead of landing on
// worker 0's.
func (s *LockedStealing[T]) dequeFor(from int) int {
	if from >= 0 && from < s.workers {
		return from
	}
	return int(s.rr.Add(1)) % s.workers
}

func (s *LockedStealing[T]) spawnGo(item T, w int) {
	s.spawns.Add(1)
	go s.spawn(item, w)
}

// Submit makes an item runnable. With a free token it starts immediately;
// otherwise it is pushed onto the submitting worker's deque.
func (s *LockedStealing[T]) Submit(item T, from int) {
	d := s.dequeFor(from)
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		s.spawnGo(item, w)
		return
	}
	s.deques[d] = append(s.deques[d], item)
	s.queued++
	s.mu.Unlock()
}

// SubmitBatch makes every item runnable under one lock acquisition: items
// start on free tokens first, the rest land on the submitting worker's
// deque in order (so the oldest is stolen first, as with repeated Submit).
func (s *LockedStealing[T]) SubmitBatch(items []T, from int) {
	if len(items) == 0 {
		return
	}
	d := s.dequeFor(from)
	s.mu.Lock()
	i := 0
	for ; i < len(items) && len(s.free) > 0; i++ {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.spawnGo(items[i], w)
	}
	if rest := items[i:]; len(rest) > 0 {
		s.deques[d] = append(s.deques[d], rest...)
		s.queued += len(rest)
	}
	s.mu.Unlock()
}

// Announce publishes n copies of one item: free tokens are matched first,
// the rest are spread round-robin across the deques (announcements carry no
// submitter locality), all under one lock acquisition.
func (s *LockedStealing[T]) Announce(item T, n, from int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	for ; n > 0 && len(s.free) > 0; n-- {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.spawnGo(item, w)
	}
	for ; n > 0; n-- {
		d := int(s.rr.Add(1)) % s.workers
		s.deques[d] = append(s.deques[d], item)
		s.queued++
	}
	s.mu.Unlock()
}

// popLocked removes the next item for worker w: own back, then victims'
// fronts, scanning round-robin from w. Caller holds mu. Returns ok=false
// when every deque is empty.
func (s *LockedStealing[T]) popLocked(w int) (item T, ok bool) {
	if d := s.deques[w]; len(d) > 0 {
		item = d[len(d)-1]
		s.deques[w] = d[:len(d)-1]
		s.queued--
		return item, true
	}
	for i := 1; i < s.workers; i++ {
		v := (w + i) % s.workers
		if d := s.deques[v]; len(d) > 0 {
			item = d[0]
			s.deques[v] = d[1:]
			s.queued--
			s.steals.Add(1)
			return item, true
		}
	}
	return item, false
}

// Finish is called by a runner that completed its item and still holds
// worker w: a blocked Acquire (a resuming taskwait, which holds a live
// stack) wins the token first, then the worker pops its own deque or
// steals, and otherwise the token retires.
func (s *LockedStealing[T]) Finish(worker int) (next T, ok bool) {
	var zero T
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		ch <- worker
		return zero, false
	}
	if item, ok := s.popLocked(worker); ok {
		s.mu.Unlock()
		return item, true
	}
	s.free = append(s.free, worker)
	s.mu.Unlock()
	return zero, false
}

// Yield releases worker w while its holder blocks: the token redeploys to a
// blocked Acquire, to queued work, or to the free pool.
func (s *LockedStealing[T]) Yield(worker int) {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		ch <- worker
		return
	}
	if item, ok := s.popLocked(worker); ok {
		s.mu.Unlock()
		s.spawnGo(item, worker)
		return
	}
	s.free = append(s.free, worker)
	s.mu.Unlock()
}

// Acquire blocks until a worker token is available and returns it.
func (s *LockedStealing[T]) Acquire() int {
	s.mu.Lock()
	if len(s.free) > 0 {
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.mu.Unlock()
		return w
	}
	ch := make(chan int, 1)
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	return <-ch
}

// Idle reports whether no items are queued and all tokens are free.
func (s *LockedStealing[T]) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued == 0 && len(s.free) == s.workers && len(s.waiters) == 0
}

// QueueLen returns the total number of queued items across all deques.
func (s *LockedStealing[T]) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Probe returns a consistent observation of the admission state (all three
// counters live under the one lock).
func (s *LockedStealing[T]) Probe() Probe {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Probe{Queued: s.queued, FreeTokens: len(s.free), Waiters: len(s.waiters)}
}
