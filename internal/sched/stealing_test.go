package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPriorityOrder(t *testing.T) {
	var order []int
	done := make(chan struct{})
	var s *Scheduler[int]
	s = NewPriority(1, func(item, worker int) {
		for {
			order = append(order, item) // single worker: no race
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	}, func(item int) int64 { return int64(item % 10) })
	w := s.Acquire() // hold the token so submissions queue deterministically
	// Priorities: 3, 1, 3, 2 — expect 3s first (FIFO between them), then 2,
	// then 1.
	for _, v := range []int{3, 1, 13, 2} {
		s.Submit(v, -1)
	}
	s.Yield(w)
	<-done
	want := []int{3, 13, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityEqualIsFIFO(t *testing.T) {
	var order []int
	done := make(chan struct{})
	var s *Scheduler[int]
	s = NewPriority(1, func(item, worker int) {
		for {
			order = append(order, item)
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	}, func(int) int64 { return 7 })
	w := s.Acquire()
	for i := 0; i < 5; i++ {
		s.Submit(i, -1)
	}
	s.Yield(w)
	<-done
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("equal-priority order = %v, want FIFO", order)
		}
	}
}

func TestNewPriorityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with Priority policy should panic")
		}
	}()
	New[int](1, Priority, func(int, int) {})
}

func TestStealingRunsAll(t *testing.T) {
	var ran atomic.Int64
	var wg sync.WaitGroup
	var s *Stealing[int]
	s = NewStealing(4, func(item, worker int) {
		for {
			ran.Add(1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 1000
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1) // the test goroutine holds no worker token
	}
	wg.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d items, want %d", ran.Load(), n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !s.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("stealing pool did not quiesce")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStealingSelfLIFOStealFIFO(t *testing.T) {
	// One token held: queue 3 items on deque 0 and 2 on deque 1, then run
	// on worker 0. Expect own deque drained LIFO (2,1,0) then deque 1
	// stolen FIFO (10,11).
	var order []int
	done := make(chan struct{})
	var s *Stealing[int]
	s = NewStealing(2, func(item, worker int) {
		for {
			order = append(order, item)
			next, ok := s.Finish(worker)
			if !ok {
				close(done)
				return
			}
			item = next
		}
	})
	w0 := s.Acquire()
	w1 := s.Acquire()
	if w0 > w1 {
		w0, w1 = w1, w0 // token pop order is an implementation detail
	}
	for i := 0; i < 3; i++ {
		s.Submit(i, 0)
	}
	for i := 10; i < 12; i++ {
		s.Submit(i, 1)
	}
	s.Yield(w0) // worker 0 starts draining; worker 1's token stays held
	<-done
	want := []int{2, 1, 0, 10, 11}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	s.Yield(w1)
}

// TestStealingStealHalf pins the bounded multi-pop: a steal miss that hits
// a loaded victim takes the oldest item for the thief AND moves half the
// victim's remaining items (bounded by stealBatchMax) onto the thief's own
// deque, so the next misses hit locally instead of rescanning victims.
func TestStealingStealHalf(t *testing.T) {
	s := NewStealing(2, func(int, int) {})
	w0 := s.Acquire()
	w1 := s.Acquire()
	if w0 > w1 {
		w0, w1 = w1, w0
	}
	// Both tokens held, so submissions queue on the submitter's deque.
	const n = 8
	for i := 0; i < n; i++ {
		s.Submit(i, w1)
	}
	item, ok := s.popFor(w0)
	if !ok || item != 0 {
		t.Fatalf("popFor(w0) = %d,%v, want 0,true (oldest of the victim)", item, ok)
	}
	// 8 queued: the thief consumed 1 and moved half the remainder (7/2=3).
	if got := s.shards[w0].deque.Size(); got != 3 {
		t.Errorf("thief deque holds %d items after steal-half, want 3", got)
	}
	if got := s.shards[w1].deque.Size(); got != 4 {
		t.Errorf("victim deque holds %d items after steal-half, want 4", got)
	}
	if st := s.Stats().Steals; st != 4 {
		t.Errorf("steals counter = %d, want 4 (1 consumed + 3 migrated)", st)
	}
	// Exactly-once drain across both deques.
	seen := map[int]bool{item: true}
	for len(seen) < n {
		it, ok := s.popFor(w0)
		if !ok {
			t.Fatalf("drain stalled with %d/%d items", len(seen), n)
		}
		if seen[it] {
			t.Fatalf("item %d taken twice", it)
		}
		seen[it] = true
	}
	if _, ok := s.popFor(w0); ok {
		t.Fatal("extra item after drain")
	}
	s.Yield(w0)
	s.Yield(w1)
}

func TestStealingConcurrencyCap(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	var s *Stealing[int]
	s = NewStealing(workers, func(item, worker int) {
		for {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	const n = 100
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.Submit(i, -1)
	}
	wg.Wait()
	if peak.Load() > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", peak.Load(), workers)
	}
}

func TestStealingOutOfRangeFrom(t *testing.T) {
	var ran atomic.Int64
	var wg sync.WaitGroup
	var s *Stealing[int]
	s = NewStealing(2, func(item, worker int) {
		for {
			ran.Add(1)
			wg.Done()
			next, ok := s.Finish(worker)
			if !ok {
				return
			}
			item = next
		}
	})
	wg.Add(3)
	s.Submit(1, -1)
	s.Submit(2, 99)
	s.Submit(3, 0)
	wg.Wait()
	if ran.Load() != 3 {
		t.Fatalf("ran %d, want 3", ran.Load())
	}
}

// Property: for random worker counts and submission affinities, every item
// runs exactly once and the pool quiesces.
func TestQuickStealingAllItemsRunOnce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(8)
		n := 1 + rng.Intn(300)
		counts := make([]atomic.Int32, n)
		var wg sync.WaitGroup
		var s *Stealing[int]
		s = NewStealing(workers, func(item, worker int) {
			for {
				counts[item].Add(1)
				wg.Done()
				next, ok := s.Finish(worker)
				if !ok {
					return
				}
				item = next
			}
		})
		wg.Add(n)
		for i := 0; i < n; i++ {
			// The test goroutine holds no token: any in-range from would
			// violate the owner-push contract, so submit as external work
			// (occasionally with a far out-of-range from).
			s.Submit(i, -1-rng.Intn(2)*100)
		}
		wg.Wait()
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Logf("item %d ran %d times", i, counts[i].Load())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(33))}); err != nil {
		t.Fatal(err)
	}
}
