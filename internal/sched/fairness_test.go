package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

// Token-waiter fairness: at a release point (Finish here), a blocked
// Acquire — a resuming taskwait, which holds a live task mid-execution —
// must win the token over spawning fresh queued work. Every pool
// implementation is held to the same protocol, including the sharded
// pools' lock-free release paths (run with -race to validate those).
func TestTokenWaiterFairness(t *testing.T) {
	type pool struct {
		name string
		make func(spawn func(item, worker int)) (q Queue[int], waiters func() int)
	}
	pools := []pool{
		{"central", func(spawn func(int, int)) (Queue[int], func() int) {
			s := New(1, FIFO, spawn)
			return s, func() int {
				s.mu.Lock()
				defer s.mu.Unlock()
				return len(s.waiters)
			}
		}},
		{"locked-stealing", func(spawn func(int, int)) (Queue[int], func() int) {
			s := NewLockedStealing(1, spawn)
			return s, func() int {
				s.mu.Lock()
				defer s.mu.Unlock()
				return len(s.waiters)
			}
		}},
		{"stealing", func(spawn func(int, int)) (Queue[int], func() int) {
			s := NewStealing(1, spawn)
			return s, func() int { return int(s.nwaiters.Load()) }
		}},
		{"sharded-central", func(spawn func(int, int)) (Queue[int], func() int) {
			s := NewShardedCentral(1, spawn)
			return s, func() int { return int(s.nwaiters.Load()) }
		}},
	}
	for _, p := range pools {
		t.Run(p.name, func(t *testing.T) {
			var (
				q        Queue[int]
				waiters  func() int
				started  = make(chan struct{})
				gate     = make(chan struct{})
				ranFresh atomic.Bool
				freshRan = make(chan struct{})
			)
			q, waiters = p.make(func(item, worker int) {
				for {
					switch item {
					case 1: // the running task the waiter will race
						close(started)
						<-gate
					case 2: // the fresh queued work that must lose
						ranFresh.Store(true)
						close(freshRan)
					}
					next, ok := q.Finish(worker)
					if !ok {
						return
					}
					item = next
				}
			})
			q.Submit(1, -1) // takes the single token and blocks on gate
			<-started
			q.Submit(2, -1) // queues: the token is busy

			// Block an Acquire (the "resuming taskwait").
			acquired := make(chan int, 1)
			go func() { acquired <- q.Acquire() }()
			deadline := time.Now().Add(5 * time.Second)
			for waiters() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("Acquire never registered as a waiter")
				}
				time.Sleep(100 * time.Microsecond)
			}

			close(gate) // runner 1 reaches Finish: the waiter must win
			var w int
			select {
			case w = <-acquired:
			case <-time.After(5 * time.Second):
				t.Fatal("blocked Acquire lost the token to fresh queued work")
			}
			if ranFresh.Load() {
				t.Fatal("fresh queued work ran before the blocked Acquire resumed")
			}
			// The resumed holder releases; only now may item 2 run.
			q.Yield(w)
			select {
			case <-freshRan:
			case <-time.After(5 * time.Second):
				t.Fatal("queued work never ran after the waiter released the token")
			}
			deadline = time.Now().Add(5 * time.Second)
			for !q.Idle() {
				if time.Now().After(deadline) {
					t.Fatal("pool did not quiesce")
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}
