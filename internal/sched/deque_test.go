package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

// TestPoolShardCacheAlignment pins poolShard to a whole number of cache
// lines: in the pool's shard array, a misaligned size would put one
// worker's hot tail fields on the same line as its neighbour's deque
// indices — exactly the false sharing the padding exists to prevent.
func TestPoolShardCacheAlignment(t *testing.T) {
	if s := unsafe.Sizeof(poolShard[int]{}); s%64 != 0 {
		t.Fatalf("poolShard size %d is not a multiple of 64; fix the pad", s)
	}
}

// Test helpers over the boxed deque API: each push allocates a fresh box
// (the pool layer, not the deque, is responsible for recycling), and the
// consumers unwrap.
func pushInt(d *clDeque[int], v int) {
	p := new(int)
	*p = v
	d.PushBottom(p)
}

func popInt(d *clDeque[int]) (int, bool) {
	p, ok := d.PopBottom()
	if !ok {
		return 0, false
	}
	return *p, true
}

func stealInt(d *clDeque[int]) (int, bool) {
	p, ok := d.Steal()
	if !ok {
		return 0, false
	}
	return *p, true
}

func TestDequeOwnerLIFO(t *testing.T) {
	var d clDeque[int]
	d.init()
	for i := 0; i < 5; i++ {
		pushInt(&d, i)
	}
	for want := 4; want >= 0; want-- {
		it, ok := popInt(&d)
		if !ok || it != want {
			t.Fatalf("PopBottom = %d,%v, want %d,true", it, ok, want)
		}
	}
	if _, ok := popInt(&d); ok {
		t.Fatal("PopBottom on empty deque returned ok")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	var d clDeque[int]
	d.init()
	for i := 0; i < 5; i++ {
		pushInt(&d, i)
	}
	for want := 0; want < 5; want++ {
		it, ok := stealInt(&d)
		if !ok || it != want {
			t.Fatalf("Steal = %d,%v, want %d,true", it, ok, want)
		}
	}
	if _, ok := stealInt(&d); ok {
		t.Fatal("Steal on empty deque returned ok")
	}
}

// TestDequeGrowth pushes far past the initial capacity, interleaving pops
// and steals, and checks nothing is lost or duplicated across the ring
// swaps.
func TestDequeGrowth(t *testing.T) {
	var d clDeque[int]
	d.init()
	const n = 10 * initialDequeCap
	seen := make([]bool, n)
	take := func(it int, ok bool) {
		if !ok {
			t.Fatal("unexpected empty deque")
		}
		if seen[it] {
			t.Fatalf("item %d taken twice", it)
		}
		seen[it] = true
	}
	for i := 0; i < n; i++ {
		pushInt(&d, i)
		if i%7 == 3 {
			take(popInt(&d))
		} else if i%11 == 5 {
			take(stealInt(&d))
		}
	}
	for d.Size() > 0 {
		take(popInt(&d))
	}
	for i := range seen {
		if !seen[i] {
			t.Fatalf("item %d lost", i)
		}
	}
}

// TestDequeConcurrentOwnerAndThieves drives one owner (pushing and
// LIFO-popping) against several thieves and checks every item is taken
// exactly once — the linearizability property the pool's accounting relies
// on. Run with -race to validate the memory-ordering claims.
func TestDequeConcurrentOwnerAndThieves(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 10000
	}
	var d clDeque[int]
	d.init()
	counts := make([]atomic.Int32, n)
	var taken atomic.Int64
	take := func(it int) {
		counts[it].Add(1)
		taken.Add(1)
	}
	stop := make(chan struct{})
	var tw sync.WaitGroup
	for th := 0; th < 3; th++ {
		tw.Add(1)
		go func() {
			defer tw.Done()
			for {
				if it, ok := stealInt(&d); ok {
					take(it)
					continue
				}
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		pushInt(&d, i)
		if i%3 == 0 {
			if it, ok := popInt(&d); ok {
				take(it)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for taken.Load() < int64(n) {
		if it, ok := popInt(&d); ok {
			take(it)
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d items taken", taken.Load(), n)
		}
	}
	close(stop)
	tw.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d taken %d times", i, c)
		}
	}
	if d.Size() != 0 {
		t.Fatalf("deque size %d after drain", d.Size())
	}
}

// TestDequeBoxReuse pins the recycling contract: the consumer of an index
// owns its box and may rewrite it for an immediate re-push, and the values
// still come out exactly once. (The pool layer does exactly this through
// its mempool lanes.)
func TestDequeBoxReuse(t *testing.T) {
	var d clDeque[int]
	d.init()
	box := new(int)
	for i := 0; i < 3*initialDequeCap; i++ {
		*box = i
		d.PushBottom(box)
		p, ok := d.PopBottom()
		if !ok || *p != i {
			t.Fatalf("round %d: PopBottom = %v,%v", i, p, ok)
		}
		box = p // consumer owns the box again
	}
	if _, ok := d.PopBottom(); ok {
		t.Fatal("deque not empty after matched push/pop rounds")
	}
}

// TestTokenListConservation hammers the free-list from many goroutines and
// checks no token is ever held twice and all tokens return.
func TestTokenListConservation(t *testing.T) {
	const workers = 8
	l := newTokenList(workers)
	var holders [workers]atomic.Int32
	var fail atomic.Bool
	var wg sync.WaitGroup
	iters := 20000
	if testing.Short() {
		iters = 5000
	}
	for g := 0; g < 2*workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w, ok := l.tryPop()
				if !ok {
					runtime.Gosched()
					continue
				}
				if holders[w].Add(1) != 1 {
					fail.Store(true)
				}
				holders[w].Add(-1)
				l.push(w)
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.Fatal("a token was held by two goroutines at once")
	}
	if f := l.free(); f != workers {
		t.Fatalf("free count = %d after quiescence, want %d", f, workers)
	}
	got := make(map[int]bool)
	for i := 0; i < workers; i++ {
		w, ok := l.tryPop()
		if !ok || got[w] {
			t.Fatalf("pop %d: token %d ok=%v (dup=%v)", i, w, ok, got[w])
		}
		got[w] = true
	}
	if _, ok := l.tryPop(); ok {
		t.Fatal("free list held more than workers tokens")
	}
}
