package metrics

import (
	"strings"
	"testing"
)

func TestStats(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("stats wrong: %f %f %f", Mean(xs), Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty input should give zeros")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("T", "col", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatalf("missing title: %q", lines[0])
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddF("%.2f", 1.234, 5.678)
	if !strings.Contains(tb.String(), "1.23") || !strings.Contains(tb.String(), "5.68") {
		t.Fatalf("AddF formatting wrong:\n%s", tb.String())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("Fig", "x", "v1", "v2")
	s.AddPoint("10", map[string]float64{"v1": 1.5, "v2": 2.5})
	s.AddPoint("20", map[string]float64{"v1": 3.5})
	out := s.String()
	for _, want := range []string{"Fig", "v1", "v2", "1.500", "2.500", "3.500", "0.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
	if col := s.Column("v1"); len(col) != 2 || col[1] != 3.5 {
		t.Fatalf("Column = %v", col)
	}
}
