// Package metrics provides the small statistics and text-formatting
// utilities the benchmark harness uses to print tables and figure series in
// the shape the paper reports them.
package metrics

import (
	"fmt"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; missing cells render empty.
func (t *Table) Add(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row of formatted values.
func (t *Table) AddF(format string, cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf(format, c)
	}
	t.Add(parts...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series formats figure data: one x column and one y column per named
// variant, in a fixed order — the text equivalent of the paper's plots.
type Series struct {
	Title  string
	XLabel string
	Order  []string
	xs     []string
	ys     map[string][]float64
}

// NewSeries creates a series with variant columns in the given order.
func NewSeries(title, xlabel string, order ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, Order: order, ys: map[string][]float64{}}
}

// AddPoint appends one x row; vals maps variant name to its y value.
func (s *Series) AddPoint(x string, vals map[string]float64) {
	s.xs = append(s.xs, x)
	for _, name := range s.Order {
		s.ys[name] = append(s.ys[name], vals[name])
	}
}

// Column returns the y values of one variant.
func (s *Series) Column(name string) []float64 { return s.ys[name] }

// Xs returns the x values in insertion order.
func (s *Series) Xs() []string { return s.xs }

// String renders the series as an aligned table with one variant per column.
func (s *Series) String() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.Order...)...)
	for i, x := range s.xs {
		row := []string{x}
		for _, name := range s.Order {
			col := s.ys[name]
			v := 0.0
			if i < len(col) {
				v = col[i]
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Add(row...)
	}
	return t.String()
}
