package metrics

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV export: machine-readable forms of Series and Table for plotting
// pipelines (gnuplot, pandas). The first row is the header; the title
// travels as a leading comment line. ReadSeriesCSV / ReadTableCSV invert
// the writers exactly — including empty bodies, quoted labels, and
// non-finite values (%g renders NaN/±Inf as "NaN"/"+Inf"/"-Inf", which
// strconv.ParseFloat accepts back).

// WriteCSV writes the series as CSV: a "# title" comment, a header of the
// x label and the variant names, then one row per x point.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{s.XLabel}, s.Order...)); err != nil {
		return err
	}
	for i, x := range s.xs {
		row := []string{x}
		for _, name := range s.Order {
			col := s.ys[name]
			v := 0.0
			if i < len(col) {
				v = col[i]
			}
			row = append(row, fmt.Sprintf("%g", v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// readTitle consumes an optional leading "# title" comment line.
func readTitle(br *bufio.Reader) (string, error) {
	b, err := br.Peek(1)
	if err == io.EOF || len(b) == 0 || b[0] != '#' {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	line, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return "", err
	}
	return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "#")), nil
}

// ReadSeriesCSV parses a series previously written with Series.WriteCSV:
// optional title comment, header (x label + variant names), then one row
// per x point. An empty body yields an empty series, and non-finite cells
// ("NaN", "+Inf", "-Inf") round-trip into their float64 values.
func ReadSeriesCSV(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	title, err := readTitle(br)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(br)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: series CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("metrics: series CSV has no header row")
	}
	hdr := recs[0]
	order := hdr[1:]
	if len(order) == 0 {
		order = nil // match NewSeries(title, x) with no variants
	}
	s := NewSeries(title, hdr[0], order...)
	for n, rec := range recs[1:] {
		vals := make(map[string]float64, len(s.Order))
		for i, name := range s.Order {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: series CSV row %d, column %q: %w", n+1, name, err)
			}
			vals[name] = v
		}
		s.AddPoint(rec[0], vals)
	}
	return s, nil
}

// ReadTableCSV parses a table previously written with Table.WriteCSV:
// optional title comment, header row, then data rows verbatim.
func ReadTableCSV(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	title, err := readTitle(br)
	if err != nil {
		return nil, err
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // Table.Add allows ragged rows
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: table CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("metrics: table CSV has no header row")
	}
	t := NewTable(title, recs[0]...)
	for _, rec := range recs[1:] {
		t.Add(rec...)
	}
	return t, nil
}

// WriteCSV writes the table as CSV: a "# title" comment, the headers, then
// the rows verbatim.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
