package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export: machine-readable forms of Series and Table for plotting
// pipelines (gnuplot, pandas). The first row is the header; the title
// travels as a leading comment line.

// WriteCSV writes the series as CSV: a "# title" comment, a header of the
// x label and the variant names, then one row per x point.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{s.XLabel}, s.Order...)); err != nil {
		return err
	}
	for i, x := range s.xs {
		row := []string{x}
		for _, name := range s.Order {
			col := s.ys[name]
			v := 0.0
			if i < len(col) {
				v = col[i]
			}
			row = append(row, fmt.Sprintf("%g", v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the table as CSV: a "# title" comment, the headers, then
// the rows verbatim.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
