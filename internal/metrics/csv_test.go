package metrics

import (
	"bytes"
	"encoding/csv"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSeriesWriteCSVRoundTrip(t *testing.T) {
	s := NewSeries("perf sweep", "size", "a", "b")
	s.AddPoint("64", map[string]float64{"a": 1.5, "b": 2})
	s.AddPoint("128", map[string]float64{"a": 0.25})

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	if lines[0] != "# perf sweep" {
		t.Errorf("title comment = %q", lines[0])
	}
	r := csv.NewReader(strings.NewReader(lines[1]))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"size", "a", "b"},
		{"64", "1.5", "2"},
		{"128", "0.25", "0"}, // missing value renders 0
	}
	if len(recs) != len(want) {
		t.Fatalf("rows = %v", recs)
	}
	for i := range want {
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Errorf("row %d col %d = %q, want %q", i, j, recs[i][j], want[i][j])
			}
		}
	}
}

// TestSeriesReadCSVInverse proves ReadSeriesCSV inverts WriteCSV on the
// awkward inputs a plotting pipeline will eventually feed it: an empty
// series (header only), non-finite values (NaN, ±Inf from zero-division
// in speedup columns), and labels that need CSV quoting (commas, quotes,
// leading '#' that must not be eaten as a title comment).
func TestSeriesReadCSVInverse(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Series
	}{
		{"empty", func() *Series {
			return NewSeries("nothing yet", "n", "a", "b")
		}},
		{"nonfinite", func() *Series {
			s := NewSeries("speedups", "workers", "ok", "bad")
			s.AddPoint("1", map[string]float64{"ok": 1, "bad": math.NaN()})
			s.AddPoint("2", map[string]float64{"ok": math.Inf(1), "bad": math.Inf(-1)})
			return s
		}},
		{"quoted-labels", func() *Series {
			s := NewSeries("odd, labels", "size, bytes", `sharded "fast"`, "#central")
			s.AddPoint("1,024", map[string]float64{`sharded "fast"`: 0.5, "#central": 2.25})
			return s
		}},
		{"no-variants", func() *Series {
			s := NewSeries("x only", "n")
			s.AddPoint("1", nil)
			s.AddPoint("2", nil)
			return s
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			orig := c.build()
			var buf bytes.Buffer
			if err := orig.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSeriesCSV(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("read back: %v\ncsv:\n%s", err, buf.String())
			}
			if got.Title != orig.Title || got.XLabel != orig.XLabel {
				t.Errorf("title/xlabel = %q/%q, want %q/%q", got.Title, got.XLabel, orig.Title, orig.XLabel)
			}
			if !reflect.DeepEqual(got.Order, orig.Order) {
				t.Errorf("order = %v, want %v", got.Order, orig.Order)
			}
			if !reflect.DeepEqual(got.Xs(), orig.Xs()) {
				t.Errorf("xs = %v, want %v", got.Xs(), orig.Xs())
			}
			for _, name := range orig.Order {
				a, b := orig.Column(name), got.Column(name)
				if len(a) != len(b) {
					t.Fatalf("column %q: %d values, want %d", name, len(b), len(a))
				}
				for i := range a {
					same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
					if !same {
						t.Errorf("column %q[%d] = %v, want %v", name, i, b[i], a[i])
					}
				}
			}
		})
	}
}

// TestSeriesReadCSVErrors pins the failure modes: empty input, and a
// non-numeric cell (with the row and column named in the error).
func TestSeriesReadCSVErrors(t *testing.T) {
	if _, err := ReadSeriesCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	bad := "# t\nn,a\n1,notafloat\n"
	if _, err := ReadSeriesCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric cell accepted")
	} else if !strings.Contains(err.Error(), `column "a"`) {
		t.Errorf("error does not name the column: %v", err)
	}
}

// TestTableReadCSVRoundTrip: tables carry strings verbatim, including
// ragged rows and cells needing quoting.
func TestTableReadCSVRoundTrip(t *testing.T) {
	tb := NewTable("variants, annotated", "name", "value", "note")
	tb.Add("x", "1")                 // ragged: short row
	tb.Add("y, z", "2", `said "hi"`) // quoting both styles
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v\ncsv:\n%s", err, buf.String())
	}
	if got.Title != tb.Title {
		t.Errorf("title = %q, want %q", got.Title, tb.Title)
	}
	if !reflect.DeepEqual(got.Headers, tb.Headers) {
		t.Errorf("headers = %v, want %v", got.Headers, tb.Headers)
	}
	if !reflect.DeepEqual(got.rows, tb.rows) {
		t.Errorf("rows = %v, want %v", got.rows, tb.rows)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("variants", "name", "value")
	tb.Add("x", "1")
	tb.Add("y, z", "2") // comma must be quoted by the writer
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	body := strings.SplitN(buf.String(), "\n", 2)[1]
	recs, err := csv.NewReader(strings.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2][0] != "y, z" {
		t.Fatalf("rows = %v", recs)
	}
}
