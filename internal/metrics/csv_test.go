package metrics

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestSeriesWriteCSVRoundTrip(t *testing.T) {
	s := NewSeries("perf sweep", "size", "a", "b")
	s.AddPoint("64", map[string]float64{"a": 1.5, "b": 2})
	s.AddPoint("128", map[string]float64{"a": 0.25})

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	if lines[0] != "# perf sweep" {
		t.Errorf("title comment = %q", lines[0])
	}
	r := csv.NewReader(strings.NewReader(lines[1]))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"size", "a", "b"},
		{"64", "1.5", "2"},
		{"128", "0.25", "0"}, // missing value renders 0
	}
	if len(recs) != len(want) {
		t.Fatalf("rows = %v", recs)
	}
	for i := range want {
		for j := range want[i] {
			if recs[i][j] != want[i][j] {
				t.Errorf("row %d col %d = %q, want %q", i, j, recs[i][j], want[i][j])
			}
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("variants", "name", "value")
	tb.Add("x", "1")
	tb.Add("y, z", "2") // comma must be quoted by the writer
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	body := strings.SplitN(buf.String(), "\n", 2)[1]
	recs, err := csv.NewReader(strings.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2][0] != "y, z" {
		t.Fatalf("rows = %v", recs)
	}
}
