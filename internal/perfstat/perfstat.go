// Package perfstat is the statistics layer of the continuous perf
// trajectory (cmd/perftrack): coefficient-of-variation validation of
// repeated measurements, benchstat-style outlier trimming, and two-sample
// significance tests (Welch's t and Mann-Whitney U) behind a regression
// gate that compares the current run of a benchmark matrix against the
// last accepted record.
//
// The package is pure computation over []float64 samples — collection
// (internal/harness kernels), persistence (BENCH_history.json), and
// policy wiring live in cmd/perftrack — so every verdict is unit-testable
// on synthetic distributions.
package perfstat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (stddev over mean), the
// scale-free noise measure the collector validates samples against. A
// non-positive mean returns +Inf for a non-zero spread and 0 otherwise,
// so noisy near-zero samples still fail validation.
func CV(xs []float64) float64 {
	m := Mean(xs)
	sd := Stddev(xs)
	if m <= 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TrimOutliers returns xs with values outside [Q1-1.5·IQR, Q3+1.5·IQR]
// removed — benchstat's interquartile filter, which discards the
// occasional GC- or scheduler-perturbed rep without biasing the center.
// Inputs of fewer than four values are returned unchanged (quartiles are
// meaningless), as is the input when trimming would leave fewer than two.
func TrimOutliers(xs []float64) []float64 {
	if len(xs) < 4 {
		return xs
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	q1 := quantile(s, 0.25)
	q3 := quantile(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-1.5*iqr, q3+1.5*iqr
	out := make([]float64, 0, len(xs))
	for _, x := range xs { // preserve collection order
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	if len(out) < 2 {
		return xs
	}
	return out
}

// quantile returns the q-th quantile of sorted s by linear interpolation.
func quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// WelchT runs Welch's unequal-variance t-test on two samples and returns
// the t statistic, the Welch–Satterthwaite degrees of freedom, and the
// two-sided p-value. Degenerate inputs (fewer than two values on either
// side, or both variances zero) return p=1 when the means are equal and
// p=0 when they differ with zero variance — the limit verdicts.
func WelchT(a, b []float64) (t, df, p float64) {
	na, nb := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		if Mean(a) == Mean(b) {
			return 0, 0, 1
		}
		return math.Inf(1), 0, 0
	}
	va, vb := Variance(a), Variance(b)
	se2 := va/na + vb/nb
	dm := Mean(a) - Mean(b)
	if se2 == 0 {
		if dm == 0 {
			return 0, na + nb - 2, 1
		}
		return math.Inf(1), na + nb - 2, 0
	}
	t = dm / math.Sqrt(se2)
	df = se2 * se2 / (va*va/(na*na*(na-1)) + vb*vb/(nb*nb*(nb-1)))
	// Two-sided p from the t CDF: P(|T| > |t|) = I_{df/(df+t²)}(df/2, 1/2).
	x := df / (df + t*t)
	p = regIncBeta(df/2, 0.5, x)
	if p > 1 {
		p = 1
	}
	return t, df, p
}

// MannWhitneyU runs the two-sided Mann-Whitney U test (Wilcoxon rank-sum)
// with tie-corrected normal approximation and continuity correction, the
// comparison benchstat uses: no normality assumption, robust to the
// heavy-tailed timing distributions benchmarks produce. It returns the U
// statistic of the first sample and the two-sided p-value. Samples where
// every value ties (zero rank variance) return p=1 — indistinguishable.
//
// The normal approximation is conservative for very small samples
// (n < ~4 cannot reach p < 0.05, matching the exact test's floor of
// 2/C(8,4) ≈ 0.029 at n=m=4).
func MannWhitneyU(a, b []float64) (u, p float64) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, x := range a {
		all = append(all, obs{x, true})
	}
	for _, x := range b {
		all = append(all, obs{x, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Midranks with tie groups; accumulate the tie correction term Σ(t³-t).
	var r1, tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		rank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		if t := float64(j - i); t > 1 {
			tieTerm += t*t*t - t
		}
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		i = j
	}
	u = r1 - float64(n1)*float64(n1+1)/2
	mu := float64(n1) * float64(n2) / 2
	nTot := float64(n1 + n2)
	sigma2 := float64(n1) * float64(n2) / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if sigma2 <= 0 {
		return u, 1 // all values tie: no evidence of difference
	}
	// Continuity correction toward the mean.
	z := u - mu
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	p = math.Erfc(math.Abs(z) / math.Sqrt2)
	return u, p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// by the continued-fraction expansion (Numerical Recipes betacf), which
// converges for all 0 <= x <= 1 via the symmetry relation.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
