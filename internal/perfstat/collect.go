package perfstat

// The collector: repeated measurement with coefficient-of-variation
// validation. A benchmark entry is measured Reps times; if the trimmed
// sample's CV exceeds MaxCV the entry — and only that entry — is re-run
// with additional reps until it stabilizes or the rerun budget is spent.
// Stable entries never pay for noisy ones, which is what keeps a full
// matrix collection affordable.

// CollectOptions bounds one entry's collection.
type CollectOptions struct {
	// Reps is the initial number of measurements (default 5).
	Reps int
	// MaxCV is the coefficient of variation above which the entry is
	// re-run (default 0.10).
	MaxCV float64
	// MaxExtra bounds the additional measurements spent tightening a
	// high-variance entry (default 2×Reps).
	MaxExtra int
}

func (o CollectOptions) defaults() CollectOptions {
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.MaxCV <= 0 {
		o.MaxCV = 0.10
	}
	if o.MaxExtra <= 0 {
		o.MaxExtra = 2 * o.Reps
	}
	return o
}

// Sample is one entry's validated collection result.
type Sample struct {
	// Values are the trimmed measurements (collection order preserved).
	Values []float64
	// Raw counts every measurement taken, including trimmed outliers.
	Raw int
	// Reruns counts the extra measurements beyond the initial Reps.
	Reruns int
	// CV is the final coefficient of variation of Values.
	CV float64
	// Stable reports whether CV <= MaxCV was reached within the budget.
	Stable bool
}

// Mean returns the mean of the trimmed values.
func (s Sample) Mean() float64 { return Mean(s.Values) }

// Collect measures run (one call = one measurement, e.g. ns/op of a
// kernel pass) with CV validation: Reps initial calls, outlier trimming,
// and targeted re-runs while the trimmed CV exceeds MaxCV. The returned
// sample carries the trimmed values plus the rerun accounting that lands
// in the history record, so a noisy host is visible in the trajectory.
func Collect(run func() float64, opts CollectOptions) Sample {
	opts = opts.defaults()
	raw := make([]float64, 0, opts.Reps+opts.MaxExtra)
	for i := 0; i < opts.Reps; i++ {
		raw = append(raw, run())
	}
	extra := 0
	for {
		trimmed := TrimOutliers(raw)
		cv := CV(trimmed)
		if cv <= opts.MaxCV || extra >= opts.MaxExtra {
			return Sample{
				Values: trimmed,
				Raw:    len(raw),
				Reruns: extra,
				CV:     cv,
				Stable: cv <= opts.MaxCV,
			}
		}
		raw = append(raw, run())
		extra++
	}
}
