package perfstat

import "fmt"

// The regression gate: a benchstat-style two-sample comparison between
// the last accepted record's sample and the current run's, entry by
// entry. An entry regresses only when BOTH hold:
//
//   - the shift is statistically significant — the Mann-Whitney U test's
//     two-sided p-value is below Alpha (Welch's t runs alongside and is
//     reported, but the gate decision uses the rank test: timing
//     distributions are heavy-tailed and the U test needs no normality);
//   - the shift is material — the new mean exceeds the old by more than
//     MinDelta (all tracked units are time-like, so higher is worse).
//
// Requiring both keeps the gate quiet: micro-shifts on a quiet host are
// significant but immaterial, and big swings on a noisy host are material
// but insignificant. Improvements are reported but never gate.

// GatePolicy parameterizes the comparison.
type GatePolicy struct {
	// Alpha is the significance level (default 0.05).
	Alpha float64
	// MinDelta is the minimum relative slowdown that gates, e.g. 0.10
	// for +10% (default 0.10).
	MinDelta float64
}

func (p GatePolicy) defaults() GatePolicy {
	if p.Alpha <= 0 {
		p.Alpha = 0.05
	}
	if p.MinDelta <= 0 {
		p.MinDelta = 0.10
	}
	return p
}

// Outcome classifies one entry's comparison.
type Outcome uint8

const (
	// Unchanged: no statistically significant shift, or a significant
	// one below the materiality floor.
	Unchanged Outcome = iota
	// Improved: significant and material in the faster direction.
	Improved
	// Regressed: significant and material in the slower direction.
	Regressed
	// Incomparable: one side has no values (new or removed entry).
	Incomparable
)

// String returns the gate-report label of the outcome.
func (o Outcome) String() string {
	switch o {
	case Improved:
		return "improved"
	case Regressed:
		return "REGRESSED"
	case Incomparable:
		return "n/a"
	default:
		return "~"
	}
}

// Comparison is one entry's verdict.
type Comparison struct {
	Outcome     Outcome
	OldMean     float64
	NewMean     float64
	Delta       float64 // relative change, (new-old)/old
	PU          float64 // Mann-Whitney two-sided p (the gating test)
	PWelch      float64 // Welch's t two-sided p (reported alongside)
	Significant bool    // PU < Alpha
}

// String renders the verdict as one gate-report cell.
func (c Comparison) String() string {
	if c.Outcome == Incomparable {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%% (p=%.3f) %s", c.Delta*100, c.PU, c.Outcome)
}

// Compare gates one entry's new sample against its old one under the
// policy. Old and new are raw measurement values in a lower-is-better
// unit (trimming is the collector's job; Compare takes the samples as
// recorded).
func Compare(old, new []float64, policy GatePolicy) Comparison {
	policy = policy.defaults()
	if len(old) == 0 || len(new) == 0 {
		return Comparison{Outcome: Incomparable, OldMean: Mean(old), NewMean: Mean(new)}
	}
	c := Comparison{OldMean: Mean(old), NewMean: Mean(new)}
	if c.OldMean != 0 {
		c.Delta = (c.NewMean - c.OldMean) / c.OldMean
	}
	_, c.PU = MannWhitneyU(old, new)
	_, _, c.PWelch = WelchT(old, new)
	c.Significant = c.PU < policy.Alpha
	if !c.Significant {
		return c
	}
	switch {
	case c.Delta > policy.MinDelta:
		c.Outcome = Regressed
	case c.Delta < -policy.MinDelta:
		c.Outcome = Improved
	}
	return c
}
