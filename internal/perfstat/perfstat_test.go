package perfstat

import (
	"math"
	"path/filepath"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestPerfstatMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 32.0/7, 1e-12)
	approx(t, "Median", Median(xs), 4.5, 1e-12)
	approx(t, "CV", CV(xs), math.Sqrt(32.0/7)/5, 1e-12)

	if got := CV([]float64{3, 3, 3}); got != 0 {
		t.Errorf("CV of constant sample = %g, want 0", got)
	}
	if got := CV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("CV of zero-mean noisy sample = %g, want +Inf", got)
	}
	if got := CV(nil); got != 0 {
		t.Errorf("CV(nil) = %g, want 0", got)
	}
}

func TestPerfstatTrimOutliers(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want int // surviving count
	}{
		{"clean", []float64{10, 11, 10, 12, 11, 10}, 6},
		{"one-spike", []float64{10, 11, 10, 12, 11, 60}, 5},
		{"two-spikes", []float64{10, 11, 10, 12, 11, 60, 55, 10}, 6},
		{"too-small-untouched", []float64{1, 100, 1}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := TrimOutliers(c.in)
			if len(out) != c.want {
				t.Fatalf("kept %d of %v, want %d: %v", len(out), c.in, c.want, out)
			}
			if c.want < len(c.in) { // trimming applied: spikes must be gone
				for _, x := range out {
					if x > 50 {
						t.Errorf("outlier %g survived trimming: %v", x, out)
					}
				}
			}
		})
	}
	// Degenerate spread where trimming would leave <2 values returns the
	// input unchanged rather than an unusable sample.
	in := []float64{1, 1, 1, 1000, 2000, 3000}
	if out := TrimOutliers(in); len(out) < 2 {
		t.Errorf("trimming left %d values, want >=2: %v", len(out), out)
	}
}

func TestPerfstatWelchT(t *testing.T) {
	// Identical samples: t=0, p=1.
	same := []float64{5, 6, 7, 8, 9}
	if _, _, p := WelchT(same, same); p < 0.99 {
		t.Errorf("identical samples: p=%g, want ~1", p)
	}
	// Clearly separated tight samples: decisively significant.
	a := []float64{10.0, 10.1, 9.9, 10.05, 9.95}
	b := []float64{20.0, 20.2, 19.8, 20.1, 19.9}
	if _, _, p := WelchT(a, b); p > 1e-6 {
		t.Errorf("separated samples: p=%g, want < 1e-6", p)
	}
	// Overlapping noisy samples: not significant.
	c := []float64{10, 12, 9, 11, 13}
	d := []float64{11, 10, 13, 9, 12}
	if _, _, p := WelchT(c, d); p < 0.5 {
		t.Errorf("overlapping samples: p=%g, want > 0.5", p)
	}
	// The t CDF itself: equal-variance equal-n reduces Welch to Student.
	// For n=m=6, pooled samples engineered to give a known t, just check
	// symmetry and monotonicity of the p-value in the separation.
	p1 := func(shift float64) float64 {
		base := []float64{1, 2, 3, 4, 5, 6}
		shifted := make([]float64, len(base))
		for i, x := range base {
			shifted[i] = x + shift
		}
		_, _, p := WelchT(base, shifted)
		return p
	}
	if !(p1(0.5) > p1(2) && p1(2) > p1(5)) {
		t.Errorf("p not monotone in separation: p(0.5)=%g p(2)=%g p(5)=%g", p1(0.5), p1(2), p1(5))
	}
	if math.Abs(p1(2)-p1(2)) > 0 {
		t.Errorf("p not deterministic")
	}
	// Degenerate: single-value samples with equal/unequal means.
	if _, _, p := WelchT([]float64{5}, []float64{5}); p != 1 {
		t.Errorf("single equal values: p=%g, want 1", p)
	}
	if _, _, p := WelchT([]float64{5}, []float64{6}); p != 0 {
		t.Errorf("single unequal values: p=%g, want 0", p)
	}
}

func TestPerfstatRegIncBeta(t *testing.T) {
	// I_x(a,b) reference values: I_0.5(0.5,0.5)=0.5 (symmetry),
	// I_x(1,1)=x (uniform), and the t-distribution spot check
	// P(|T|>2.228) ≈ 0.05 at df=10 (the classic t table entry).
	approx(t, "I_0.5(0.5,0.5)", regIncBeta(0.5, 0.5, 0.5), 0.5, 1e-9)
	approx(t, "I_0.3(1,1)", regIncBeta(1, 1, 0.3), 0.3, 1e-9)
	tcrit := 2.228
	df := 10.0
	approx(t, "t-tail df=10", regIncBeta(df/2, 0.5, df/(df+tcrit*tcrit)), 0.05, 1e-3)
}

func TestPerfstatMannWhitneyU(t *testing.T) {
	// Fully separated: U=0, p well under 0.05 even at n=5.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9, 10}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Errorf("separated: U=%g, want 0", u)
	}
	if p > 0.02 {
		t.Errorf("separated: p=%g, want < 0.02", p)
	}
	// Symmetric call: same p, mirrored U.
	u2, p2 := MannWhitneyU(b, a)
	approx(t, "mirrored U", u2, 25, 1e-12)
	approx(t, "symmetric p", p2, p, 1e-12)
	// All ties: indistinguishable.
	if _, p := MannWhitneyU([]float64{7, 7, 7}, []float64{7, 7, 7}); p != 1 {
		t.Errorf("all ties: p=%g, want 1", p)
	}
	// Interleaved: no evidence.
	if _, p := MannWhitneyU([]float64{1, 3, 5, 7}, []float64{2, 4, 6, 8}); p < 0.5 {
		t.Errorf("interleaved: p=%g, want > 0.5", p)
	}
	// Empty side: incomparable, p=1.
	if _, p := MannWhitneyU(nil, []float64{1}); p != 1 {
		t.Errorf("empty side: p=%g, want 1", p)
	}
}

func TestPerfstatCollect(t *testing.T) {
	// scripted returns a run func that replays vals then repeats the last.
	scripted := func(vals ...float64) func() float64 {
		i := 0
		return func() float64 {
			v := vals[i]
			if i < len(vals)-1 {
				i++
			}
			return v
		}
	}
	opts := CollectOptions{Reps: 5, MaxCV: 0.10, MaxExtra: 10}

	t.Run("stable-first-try", func(t *testing.T) {
		s := Collect(scripted(100, 101, 99, 100, 102), opts)
		if !s.Stable || s.Reruns != 0 || s.Raw != 5 {
			t.Fatalf("stable sample: %+v", s)
		}
	})
	t.Run("outlier-trimmed-then-stable", func(t *testing.T) {
		// One 3x spike among tight values: the trim drops it without
		// any reruns.
		s := Collect(scripted(100, 101, 300, 99, 100), opts)
		if !s.Stable {
			t.Fatalf("expected stable after trim: %+v", s)
		}
		for _, v := range s.Values {
			if v > 200 {
				t.Fatalf("spike survived: %v", s.Values)
			}
		}
	})
	t.Run("noisy-then-converges", func(t *testing.T) {
		// First five all over the place; reruns settle on 100 until the
		// noisy head is outvoted (trimmed or CV-diluted).
		s := Collect(scripted(100, 150, 60, 140, 70, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100), opts)
		if s.Reruns == 0 {
			t.Fatalf("expected reruns for noisy head: %+v", s)
		}
		if !s.Stable {
			t.Fatalf("expected eventual stability: %+v (cv=%g)", s, s.CV)
		}
	})
	t.Run("never-stable-budget-spent", func(t *testing.T) {
		i := 0
		alternating := func() float64 { // CV stays ~0.5 forever
			i++
			if i%2 == 0 {
				return 40
			}
			return 160
		}
		s := Collect(alternating, CollectOptions{Reps: 4, MaxCV: 0.05, MaxExtra: 6})
		if s.Stable {
			t.Fatalf("alternating sample reported stable: %+v", s)
		}
		if s.Reruns != 6 {
			t.Fatalf("reruns=%d, want full budget 6", s.Reruns)
		}
	})
}

func TestPerfstatGate(t *testing.T) {
	policy := GatePolicy{Alpha: 0.05, MinDelta: 0.10}
	fast := []float64{100, 101, 99, 100, 102, 100}
	slow := []float64{130, 131, 129, 130, 132, 130}   // +30%, tight
	slight := []float64{103, 104, 102, 103, 105, 103} // +3%, tight: significant but immaterial
	noisy := []float64{90, 140, 95, 130, 100, 125}    // overlapping spread

	cases := []struct {
		name     string
		old, new []float64
		want     Outcome
	}{
		{"regression-fires", fast, slow, Regressed},
		{"improvement-reported", slow, fast, Improved},
		{"identical-passes", fast, fast, Unchanged},
		{"significant-but-immaterial-passes", fast, slight, Unchanged},
		{"material-but-insignificant-passes", fast, noisy, Unchanged},
		{"new-entry-incomparable", nil, fast, Incomparable},
		{"removed-entry-incomparable", fast, nil, Incomparable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Compare(c.old, c.new, policy)
			if got.Outcome != c.want {
				t.Fatalf("Compare(%v, %v) = %v (%s), want %v", c.old, c.new, got.Outcome, got, c.want)
			}
		})
	}

	// The two halves of the conjunction, checked explicitly: the
	// regression case is both significant and material, the noisy case
	// material but not significant.
	if c := Compare(fast, slow, policy); !c.Significant || c.Delta < 0.10 {
		t.Errorf("regression case: %+v, want significant and material", c)
	}
	if c := Compare(fast, noisy, policy); c.Significant {
		t.Errorf("noisy case unexpectedly significant: %+v", c)
	}
}

func TestPerfstatHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist", "..", "BENCH_history.json")
	if recs, err := LoadHistory(path); err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v, want empty, nil", recs, err)
	}
	r1 := Record{
		Commit: "aaa", Time: "2026-08-08T00:00:00Z", Go: "go1.24", MaxProcs: 4,
		Entries: []HistoryEntry{
			{Name: "z/last", Unit: "ns/op", Values: []float64{2, 2, 2}, Mean: 2, Stable: true},
			{Name: "a/first", Unit: "ns/op", Values: []float64{1, 1, 1}, Mean: 1, Stable: true},
		},
	}
	if err := AppendHistory(path, r1); err != nil {
		t.Fatal(err)
	}
	r2 := Record{Commit: "bbb", Time: "2026-08-08T01:00:00Z", Go: "go1.24", MaxProcs: 4, Quick: true}
	if err := AppendHistory(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Commit != "aaa" || recs[1].Commit != "bbb" {
		t.Fatalf("round trip: %+v", recs)
	}
	// Entries come back sorted by name (canonical on-disk order).
	if recs[0].Entries[0].Name != "a/first" {
		t.Errorf("entries not sorted: %+v", recs[0].Entries)
	}
	// Quick and full records never gate against each other.
	if last := LastComparable(recs, false); last == nil || last.Commit != "aaa" {
		t.Errorf("LastComparable(full) = %+v, want commit aaa", last)
	}
	if last := LastComparable(recs, true); last == nil || last.Commit != "bbb" {
		t.Errorf("LastComparable(quick) = %+v, want commit bbb", last)
	}
	if e, ok := recs[0].Entry("z/last"); !ok || e.Mean != 2 {
		t.Errorf("Entry lookup: %+v %v", e, ok)
	}
	if _, ok := recs[0].Entry("nope"); ok {
		t.Errorf("Entry lookup found a missing name")
	}
}
