package perfstat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The committed trajectory: BENCH_history.json is a JSON array of
// records, one per accepted perftrack run, newest last. Each record
// carries the commit, the environment, and every entry's trimmed sample
// with its CV accounting — enough for a later run to re-test
// significance against it, and for plotting pipelines to draw the
// trajectory without re-running anything.

// HistoryEntry is one benchmark entry's validated sample in a record.
type HistoryEntry struct {
	// Name identifies the measurement, e.g. "deps/sharded-pool/w4".
	Name string `json:"name"`
	// Unit is the lower-is-better unit of Values, e.g. "ns/op".
	Unit string `json:"unit"`
	// Values are the trimmed measurements the gate tests against.
	Values []float64 `json:"values"`
	// Mean, CV summarize Values (denormalized for plotting pipelines).
	Mean float64 `json:"mean"`
	CV   float64 `json:"cv"`
	// Reruns counts extra measurements the CV validation spent; Stable
	// is false when the rerun budget ran out above MaxCV.
	Reruns int  `json:"reruns,omitempty"`
	Stable bool `json:"stable"`
}

// Record is one perftrack run.
type Record struct {
	// Commit is the git revision the run measured (or "unknown").
	Commit string `json:"commit"`
	// Time is the RFC3339 collection timestamp.
	Time string `json:"time"`
	// Host describes the environment: go version, GOMAXPROCS.
	Go       string `json:"go"`
	MaxProcs int    `json:"maxprocs"`
	// Quick marks reduced-op smoke collections, which are never
	// comparable to full runs.
	Quick bool `json:"quick,omitempty"`
	// Entries are the validated samples, sorted by name.
	Entries []HistoryEntry `json:"entries"`
}

// Entry returns the named entry and whether it exists.
func (r *Record) Entry(name string) (HistoryEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return HistoryEntry{}, false
}

// Sort orders the entries by name, the canonical on-disk order.
func (r *Record) Sort() {
	sort.Slice(r.Entries, func(i, j int) bool { return r.Entries[i].Name < r.Entries[j].Name })
}

// LoadHistory reads the record array from path. A missing file is an
// empty history, not an error.
func LoadHistory(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("perfstat: parsing %s: %w", path, err)
	}
	return recs, nil
}

// LastComparable returns the newest record with the same Quick class, or
// nil — a reduced-op smoke run must never gate against a full run.
func LastComparable(recs []Record, quick bool) *Record {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Quick == quick {
			return &recs[i]
		}
	}
	return nil
}

// AppendHistory appends rec to the array at path, creating the file if
// needed. The write is atomic (temp file + rename) so an interrupted run
// cannot corrupt the committed trajectory.
func AppendHistory(path string, rec Record) error {
	recs, err := LoadHistory(path)
	if err != nil {
		return err
	}
	rec.Sort()
	recs = append(recs, rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
