package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workloads"
)

func TestTable1(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	out := b.String()
	for _, v := range workloads.AxpyVariants {
		if !strings.Contains(out, string(v)) {
			t.Fatalf("Table I missing variant %s:\n%s", v, out)
		}
	}
	for _, want := range []string{"weakwait", "taskwait", "release directive"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	var b bytes.Buffer
	if err := Fig3(&b, Options{Quick: true, Cores: 2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 3 (top)") || !strings.Contains(out, "Figure 3 (bottom)") {
		t.Fatalf("missing panels:\n%s", out)
	}
	if !strings.Contains(out, "nest-weak-release") {
		t.Fatalf("missing variant column:\n%s", out)
	}
}

func TestFig4Quick(t *testing.T) {
	var b bytes.Buffer
	if err := Fig4(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 4") {
		t.Fatalf("missing figure header:\n%s", b.String())
	}
}

func TestFig5Quick(t *testing.T) {
	var b bytes.Buffer
	if err := Fig5(&b, Options{Quick: true, Cores: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Gauss-Seidel") {
		t.Fatalf("missing figure:\n%s", b.String())
	}
}

func TestFig6Quick(t *testing.T) {
	var b bytes.Buffer
	if err := Fig6(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "Figure 6") != 2 {
		t.Fatalf("expected two panels (two tile sizes):\n%s", out)
	}
}

func TestFig7Quick(t *testing.T) {
	var b bytes.Buffer
	if err := Fig7(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "Figure 7") != 2 {
		t.Fatalf("expected both variants:\n%s", out)
	}
	if !strings.Contains(out, "phase overlap") || !strings.Contains(out, "=idle") {
		t.Fatalf("missing timeline or overlap metric:\n%s", out)
	}
}

// TestFig6ShapeQuick: even at smoke-test sizes, the weak variants must
// reach at least the effective parallelism of nest-depend at the largest
// core count (the Figure 6 separation).
func TestFig6ShapeQuick(t *testing.T) {
	n, ts, iters := int64(256), int64(32), 4
	weak, err := workloads.RunGS(workloads.Mode{Workers: 8, Virtual: true}, workloads.GSNestWeak,
		workloads.GSParams{N: n, TS: ts, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := workloads.RunGS(workloads.Mode{Workers: 8, Virtual: true}, workloads.GSNestDepend,
		workloads.GSParams{N: n, TS: ts, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	if weak.EffectiveParallelism < dep.EffectiveParallelism {
		t.Fatalf("weak EP %.2f below nest-depend EP %.2f", weak.EffectiveParallelism, dep.EffectiveParallelism)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Scale != 1 || o.Cores <= 0 || o.Reps != 3 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.defaults()
	if q.Reps != 1 {
		t.Fatalf("quick should use 1 rep: %+v", q)
	}
}

var _ = metrics.Mean // keep the import for the helper table tests above
