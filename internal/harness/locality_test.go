package harness

import (
	"runtime"
	"testing"

	"repro/internal/sched"
)

// TestLocalityCrossGroupDrop is the acceptance gate of the topology work
// (run by `make topo-smoke`): over the synthetic two-domain tree, the
// nearest-first victim walk must drive the cross-group steal rate strictly
// below the flat reference at w=4 and w=8, and most of its steals must
// resolve at the sibling level. The margins are wide — tree cross rates
// sit near zero and flat ones near the cross-group victim fraction — so
// host noise cannot flip the comparison.
func TestLocalityCrossGroupDrop(t *testing.T) {
	const ops, spin = 40_000, 400
	for _, w := range []int{4, 8} {
		prev := runtime.GOMAXPROCS(0)
		if w > prev {
			runtime.GOMAXPROCS(w)
		}
		flat := LocalityBench(LocalityTopologies[0].Topo, w, ops, spin)
		tree := LocalityBench(LocalityTopologies[1].Topo, w, ops, spin)
		runtime.GOMAXPROCS(prev)
		if flat.Ops != tree.Ops {
			t.Fatalf("w=%d: flat ran %d leaves, tree %d; the workloads must match", w, flat.Ops, tree.Ops)
		}
		if flat.Steals == 0 || tree.Steals == 0 {
			t.Fatalf("w=%d: no steals (flat=%d tree=%d); the imbalance generator is broken", w, flat.Steals, tree.Steals)
		}
		if tree.CrossRate >= flat.CrossRate {
			t.Errorf("w=%d: tree cross-group steal rate %.1f%% not below flat %.1f%% (tree levels %v, flat levels %v)",
				w, tree.CrossRate*100, flat.CrossRate*100, tree.StealLevels, flat.StealLevels)
		}
		if sib := tree.StealLevels[sched.LevelSibling]; 2*sib < tree.Steals {
			t.Errorf("w=%d: only %d of %d tree steals resolved at the sibling level; nearest-first walk not engaging",
				w, sib, tree.Steals)
		}
	}
}
