package harness

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// This file drives the experiments that go beyond the paper's evaluation
// section: the blocked-Cholesky workload (harness.Cholesky in harness.go),
// the task-granularity microbenchmarks, and the §X future-work cluster
// scenario. EXPERIMENTS.md records their expected shapes alongside the
// paper's figures.

// FibOverhead prints the per-task overhead exposure: recursive Fibonacci
// under the three granularity cutoffs. Full tasking pays the runtime on
// every call; the sequential and final cutoffs bound it.
func FibOverhead(w io.Writer, o Options) error {
	o = o.defaults()
	n, cutoff := 21, 12
	if o.Quick {
		n, cutoff = 15, 8
	}
	t := metrics.NewTable(
		fmt.Sprintf("Granularity cutoffs — fib(%d), cutoff %d, %d workers", n, cutoff, o.Cores),
		"cutoff mode", "tasks", "wall", "µs/task")
	for _, m := range []workloads.FibCutoffMode{
		workloads.FibCutoffNone, workloads.FibCutoffSequential, workloads.FibCutoffFinal,
	} {
		res, _, err := workloads.RunFib(workloads.Mode{Workers: o.Cores},
			workloads.FibParams{N: n, Cutoff: cutoff, Mode: m})
		if err != nil {
			return err
		}
		perTask := float64(res.Wall.Microseconds()) / float64(res.Tasks)
		t.Add(m.String(), fmt.Sprintf("%d", res.Tasks),
			res.Wall.Round(1000).String(), fmt.Sprintf("%.2f", perTask))
	}
	fmt.Fprintln(w, t)
	return nil
}

// ClusterReport prints the §X eager-vs-lazy comparison on the distributed
// substrate: bytes moved, makespan under the bandwidth/latency model, peak
// node memory, and capacity failures under a node-memory cap.
func ClusterReport(w io.Writer, o Options) error {
	o = o.defaults()
	sc := cluster.Scenario{N: scaled(1<<20, o.Scale), Calls: 8, TaskSize: 1 << 14}
	if o.Quick {
		sc = cluster.Scenario{N: 1 << 14, Calls: 4, TaskSize: 1 << 10}
	}
	cfg := cluster.Config{Nodes: 8, ElemSize: 8, NodeMemory: sc.N / 2}
	t := metrics.NewTable(
		fmt.Sprintf("OmpSs@cluster scenario (§X) — N=%d elems, %d calls, %d nodes, node memory N/2",
			sc.N, sc.Calls, cfg.Nodes),
		"strategy", "MB moved", "makespan", "peak node elems", "capacity failures")
	for _, res := range []cluster.Result{sc.RunEager(cfg), sc.RunLazy(cfg)} {
		t.Add(res.Strategy,
			fmt.Sprintf("%.2f", float64(res.MovedBytes)/1e6),
			fmt.Sprintf("%d", res.Makespan),
			fmt.Sprintf("%d", res.PeakUsage),
			fmt.Sprintf("%d", res.Failures))
	}
	fmt.Fprintln(w, t)
	return nil
}

// Extensions runs every beyond-the-paper experiment.
func Extensions(w io.Writer, o Options) error {
	fmt.Fprintln(w, "=== Extensions beyond the paper's evaluation ===")
	fmt.Fprintln(w)
	if err := Cholesky(w, o, 16); err != nil {
		return err
	}
	if err := FibOverhead(w, o); err != nil {
		return err
	}
	if err := ReplayBench(w, o, ""); err != nil {
		return err
	}
	return ClusterReport(w, o)
}
