package harness

// Chaos benchmark kernel: the mixed-construct workload of the core chaos
// soak (graph regions that record and replay, nested taskwait parents,
// worksharing sweeps, taskgroup bursts) run under per-subsystem failpoint
// schedules (internal/chaos) with the stall watchdog armed. cmd/depbench's
// chaos table drives it once per ChaosGroups row and prints wall time,
// failpoint hits, and the stall-report count — which must be zero on every
// row: failpoints only widen race windows, they never drop operations, so
// a correct runtime under chaos is merely slower, never stuck.

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
)

// ChaosGroup names one subsystem's failpoint sites for the per-subsystem
// rows of the chaos table.
type ChaosGroup struct {
	// Name is the table row label.
	Name string
	// Sites are the failpoints armed for this row (empty = chaos off).
	Sites []chaos.Site
}

// ChaosGroups is the row set of the chaos table: the chaos-off baseline,
// one row per subsystem, and an everything-armed row. Together the
// subsystem rows cover all chaos.NumSites sites.
var ChaosGroups = []ChaosGroup{
	{Name: "off"},
	{Name: "sched", Sites: []chaos.Site{chaos.SchedStealCAS, chaos.SchedTokenRetire, chaos.SchedDekkerRecheck}},
	{Name: "throttle", Sites: []chaos.Site{chaos.ThrottleCreditSteal, chaos.ThrottleBatchWake}},
	{Name: "deps", Sites: []chaos.Site{chaos.DepsCascade, chaos.DepsPinRelease}},
	{Name: "mempool", Sites: []chaos.Site{chaos.MempoolRefill}},
	{Name: "replay", Sites: []chaos.Site{chaos.ReplayInvalidate}},
	{Name: "taskwait", Sites: []chaos.Site{chaos.TaskwaitIntercept}},
	{Name: "worksharing", Sites: []chaos.Site{chaos.WsAnnounceConsume}},
	{Name: "all", Sites: allChaosSites()},
}

func allChaosSites() []chaos.Site {
	sites := make([]chaos.Site, chaos.NumSites)
	for i := range sites {
		sites[i] = chaos.Site(i)
	}
	return sites
}

// ChaosResult is one chaos-table row's measurement.
type ChaosResult struct {
	// Wall is the workload's wall-clock time under the schedule.
	Wall time.Duration
	// Tasks is the number of tasks executed.
	Tasks int64
	// Checksum is the final-state checksum; every row of a sweep must
	// match the off row (the workload's shape is schedule-independent).
	Checksum int64
	// Hits is the total failpoint injection count across the row's sites.
	Hits uint64
	// Stalls is the number of watchdog stall reports — the expectation
	// column: zero on every row.
	Stalls int
}

// ChaosBench runs the mixed workload once under the group's failpoint
// schedule. rate is the per-site fire rate denominator (chaos.Schedule);
// iters and width size the workload. The runtime runs the fully sharded
// stack (stealing pool, sharded deps and throttle, watchdog, Debug leak
// checks) so the failpoints land on the protocols they target. Panics on
// any run error — under chaos the workload must still be correct.
func ChaosBench(g ChaosGroup, seed uint64, rate uint32, workers, iters, width int) ChaosResult {
	if len(g.Sites) > 0 {
		s := chaos.Schedule{Seed: seed}
		for _, site := range g.Sites {
			s.Rate[site] = rate
		}
		chaos.Enable(s)
		defer chaos.Disable()
	}
	r := core.New(core.Config{
		Workers:           workers,
		Stealing:          true,
		ThrottleOpenTasks: 2 * workers,
		Watchdog:          true,
		Debug:             true,
	})
	start := time.Now()
	sum, err := chaosProgram(r, iters, width)
	wall := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("harness: chaos workload failed under %q schedule (seed %d): %v", g.Name, seed, err))
	}
	var hits uint64
	if len(g.Sites) > 0 {
		_, h := chaos.Counts()
		for _, site := range g.Sites {
			hits += h[site]
		}
	}
	return ChaosResult{
		Wall:     wall,
		Tasks:    r.TaskCount(),
		Checksum: sum,
		Hits:     hits,
		Stalls:   len(r.StallReports()),
	}
}

// chaosProgram is the mixed workload: per iteration, a graph-region
// dependency mesh (records on the first pass, replays after — forced
// ReplayInvalidate mismatches exercise the mid-region fallback), a
// dependency-carrying parent with a nested submit and blocking taskwait,
// a worksharing sweep, and a taskgroup burst. Writers chain
// multiplicatively, so every legal schedule produces the same final state.
func chaosProgram(r *core.Runtime, iters, width int) (int64, error) {
	const elems = 64
	d0 := r.NewData("c0", elems, 8)
	d1 := r.NewData("c1", elems, 8)
	state := make([]int64, 2*elems)
	err := r.RunChecked(func(tc *core.TaskContext) {
		for it := 0; it < iters; it++ {
			mult := int64(2*it + 3)
			tc.Graph("mesh", func(tc *core.TaskContext) {
				for i := 0; i < width; i++ {
					lo := int64(i%4) * 16
					iv := core.Interval{Lo: lo, Hi: lo + 16}
					tc.Submit(core.TaskSpec{
						Label: "mesh",
						Deps: []core.Dep{
							{Data: d0, Type: core.InOut, Ivs: []core.Interval{iv}},
							{Data: d1, Type: core.In, Ivs: []core.Interval{{Lo: 0, Hi: 8}}},
						},
						Body: func(*core.TaskContext) {
							for e := iv.Lo; e < iv.Hi; e++ {
								state[e] = state[e]*mult + 1
							}
						},
					})
				}
			})
			tc.Submit(core.TaskSpec{
				Label: "parent",
				Deps:  []core.Dep{{Data: d1, Type: core.InOut, Ivs: []core.Interval{{Lo: 8, Hi: 16}}}},
				Body: func(tc *core.TaskContext) {
					tc.Submit(core.TaskSpec{
						Label: "child",
						Body: func(*core.TaskContext) {
							for e := int64(8); e < 16; e++ {
								state[elems+e] += mult
							}
						},
					})
					tc.Taskwait()
					state[elems]++
				},
			})
			tc.Worksharing(core.WorksharingSpec{
				Label: "sweep",
				Lo:    16, Hi: elems, Grain: 8,
				Deps: func(lo, hi int64) []core.Dep {
					return []core.Dep{{Data: d1, Type: core.InOut, Ivs: []core.Interval{{Lo: lo, Hi: hi}}}}
				},
				Body: func(tc *core.TaskContext, lo, hi int64) {
					for e := lo; e < hi; e++ {
						state[elems+e] += mult
					}
				},
			})
			tc.Taskgroup(func() {
				for i := 0; i < 4; i++ {
					tc.Submit(core.TaskSpec{Label: "burst", Body: func(*core.TaskContext) {}})
				}
			})
		}
	})
	var sum int64
	for i, v := range state {
		sum += v * int64(i+1)
	}
	return sum, err
}
