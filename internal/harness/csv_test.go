package harness

import (
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	o := Options{Quick: true, CSVDir: dir}
	if err := Fig4(io.Discard, o); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(io.Discard, o, 4); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4-scaling.csv", "cholesky-gflops.csv", "cholesky-parallelism.csv"} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		body := string(data)
		if !strings.HasPrefix(body, "# ") {
			t.Errorf("%s: missing title comment", name)
		}
		recs, err := csv.NewReader(strings.NewReader(strings.SplitN(body, "\n", 2)[1])).ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", name, err)
		}
		if len(recs) < 2 {
			t.Errorf("%s: only %d rows", name, len(recs))
		}
	}
}

func TestNoCSVDirNoFiles(t *testing.T) {
	// Without CSVDir the harness must not touch the filesystem.
	if err := Fig4(io.Discard, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
}
