package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	nanos "repro"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// This file drives the worksharing experiment (beyond the paper's
// evaluation; the worksharing-tasks direction of PAPERS.md): fine-grained
// loop workloads run twice — decomposed into one task per chunk (the
// Taskloop shape the paper's listing 5 hand-writes) and as worksharing
// tasks (one dependency-carrying task per region, chunk-distributed body).
// The before/after wall times land in a table and, optionally, a JSON
// file (BENCH_ws.json).

// WSRow is one workload × strategy measurement of the worksharing
// experiment, as serialized into the JSON report.
type WSRow struct {
	Workload     string  `json:"workload"`
	Impl         string  `json:"impl"`
	Workers      int     `json:"workers"`
	Tasks        int64   `json:"tasks"`
	WallMS       float64 `json:"wall_ms"`
	Regions      int64   `json:"regions"`
	HelperChunks int64   `json:"helper_chunks"`
}

// WSBench measures the fine-grain loop workloads under the per-chunk-task
// expansion and the worksharing strategy. jsonPath, when non-empty,
// receives the rows as a JSON array (the BENCH_ws.json record the
// repository keeps).
func WSBench(w io.Writer, o Options, jsonPath string) error {
	o = o.defaults()
	// Fine grains on purpose: chunks small enough that the per-task cost
	// of the expansion is comparable to the chunk body, which is the
	// regime worksharing tasks exist for.
	axP := workloads.AxpyParams{N: scaled(1<<20, o.Scale), Calls: 12, TaskSize: 256, Alpha: 1.5, Compute: true}
	gsP := workloads.GSParams{N: scaled(256, o.Scale), TS: 8, Iters: 8, Compute: true}
	if o.Quick {
		axP = workloads.AxpyParams{N: 1 << 16, Calls: 4, TaskSize: 128, Alpha: 1.5, Compute: true}
		gsP = workloads.GSParams{N: 64, TS: 8, Iters: 4, Compute: true}
	}
	t := metrics.NewTable(
		fmt.Sprintf("Worksharing chunk distribution — %d workers (before/after: per-chunk tasks vs one task per region)",
			o.Cores),
		"workload", "impl", "tasks", "wall", "regions", "helper-chks", "speedup")
	var rows []WSRow
	type run struct {
		impl string
		f    func() (workloads.Result, error)
	}
	type bench struct {
		name string
		runs [2]run // [0] = expansion baseline, [1] = worksharing
	}
	benches := []bench{
		{"axpy/fine-grain", [2]run{
			{"expand", func() (workloads.Result, error) {
				return workloads.RunAxpy(workloads.Mode{Workers: o.Cores, Worksharing: nanos.WorksharingExpand},
					workloads.AxpyWorksharing, axP)
			}},
			{"chunked", func() (workloads.Result, error) {
				return workloads.RunAxpy(workloads.Mode{Workers: o.Cores, Worksharing: nanos.WorksharingChunked},
					workloads.AxpyWorksharing, axP)
			}},
		}},
		{"gauss-seidel/fine-tiles", [2]run{
			// The per-task-per-tile baseline is the flat-depend variant
			// (expanding the wavefront's union entries per tile would
			// serialize the tiles — see GSWsWavefront).
			{"flat-depend", func() (workloads.Result, error) {
				return workloads.RunGS(workloads.Mode{Workers: o.Cores}, workloads.GSFlatDepend, gsP)
			}},
			{"ws-wavefront", func() (workloads.Result, error) {
				return workloads.RunGS(workloads.Mode{Workers: o.Cores, Worksharing: nanos.WorksharingChunked},
					workloads.GSWsWavefront, gsP)
			}},
		}},
	}
	for _, b := range benches {
		var base float64
		for i, r := range b.runs {
			res, err := best(o.Reps, r.f)
			if err != nil {
				return err
			}
			st := res.Runtime.WsStats()
			wallMS := float64(res.Wall.Microseconds()) / 1000
			speedup := "1.00x"
			if i == 0 {
				base = wallMS
			} else if wallMS > 0 {
				speedup = fmt.Sprintf("%.2fx", base/wallMS)
			}
			t.Add(b.name, r.impl, fmt.Sprintf("%d", res.Tasks),
				res.Wall.Round(10000).String(), fmt.Sprintf("%d", st.Regions),
				fmt.Sprintf("%d", st.HelperChunks), speedup)
			rows = append(rows, WSRow{
				Workload: b.name, Impl: r.impl, Workers: o.Cores,
				Tasks: res.Tasks, WallMS: wallMS,
				Regions: st.Regions, HelperChunks: st.HelperChunks,
			})
		}
	}
	fmt.Fprintln(w, t)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("harness: writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(w, "(rows written to %s)\n\n", jsonPath)
	}
	return nil
}
