package harness

import (
	"strings"
	"testing"
)

func TestCholeskyQuick(t *testing.T) {
	var b strings.Builder
	if err := Cholesky(&b, Options{Quick: true}, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"GFlop/s", "effective parallelism", "nest-weak", "flat-depend", "nest-depend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Cholesky report missing %q:\n%s", want, out)
		}
	}
}

func TestFibOverheadQuick(t *testing.T) {
	var b strings.Builder
	if err := FibOverhead(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"none", "sequential", "final", "µs/task"} {
		if !strings.Contains(out, want) {
			t.Errorf("FibOverhead report missing %q:\n%s", want, out)
		}
	}
}

func TestClusterReportQuick(t *testing.T) {
	var b strings.Builder
	if err := ClusterReport(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"eager (strong deps)", "lazy (weak deps)", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("ClusterReport missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionsQuick(t *testing.T) {
	var b strings.Builder
	if err := Extensions(&b, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Extensions beyond the paper") {
		t.Error("Extensions header missing")
	}
}
