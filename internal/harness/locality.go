package harness

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/sched"
)

// Locality kernel behind depbench's -mode locality table and the
// perftrack locality entries: a deliberately imbalanced drain workload —
// every group's work starts piled on one shard, so every other worker
// can only make progress by stealing — driven through the stealing pool
// under a tree topology and under the flat reference order. The
// interesting outputs are not ops/s but *where* the steals went: the
// steal-distance histogram and the cross-group steal rate, which the
// nearest-first victim walk must push toward the sibling level while the
// flat order scatters them across the tree.

// LocalityResult extends the counters with the steal-distance
// measurements of one run.
type LocalityResult struct {
	BenchCounters
	Steals      int64                  // total stolen items
	StealLevels [sched.NumLevels]int64 // steal-distance histogram (sibling/domain/remote)
	CrossRate   float64                // fraction of steals that left the thief's group
}

// LocalityBench drives ~ops spinning leaf items through a stealing pool
// built over topo with w workers. The driver acquires every token — which
// makes an owner-push onto any shard legal — and piles each group's equal
// share of the leaves onto the group's first worker's deque, then yields
// the pile hosts' tokens first (each host starts draining its own pile
// before the thieves wake) and measures the drain. Every non-host worker
// can only progress by stealing, and every group holds a pile, so a
// nearest-first thief can always resolve at the sibling level while a
// flat thief picks victims at any distance. The piles are built by the
// driver rather than by in-pool generator tasks because pool items are
// stealable: on an oversubscribed host a generator task would migrate to
// another group before its host worker ever ran, building its pile at the
// wrong distance and randomizing the histogram. spin is the leaf body's
// busy-work (it keeps the drain long enough for every worker to
// participate).
func LocalityBench(topo sched.Topology, w, ops, spin int) LocalityResult {
	g := topo.GroupSize
	if g <= 0 {
		g = 4
	}
	if g > w {
		g = w
	}
	ngroups := (w + g - 1) / g
	per := ops / ngroups

	var leafWG sync.WaitGroup
	leafWG.Add(per * ngroups)

	var q *sched.Stealing[int]
	q = sched.NewStealingTopo(w, topo, func(_, worker int) {
		for {
			waitSpin(spin)
			// Yield between leaves so the worker goroutines interleave
			// even when the host has fewer cores than workers. Without
			// this a worker that keeps its scheduling quantum drains its
			// own group's pile and then walks straight through the
			// domain and remote piles before anyone else runs — the
			// histogram would measure preemption luck, not victim
			// choice. With the yield the piles drain in near-lockstep
			// and every group's thieves stay in their own pile.
			runtime.Gosched()
			leafWG.Done()
			if _, ok := q.Finish(worker); !ok {
				return
			}
		}
	})

	for i := 0; i < w; i++ {
		q.Acquire()
	}
	for grp := 0; grp < ngroups; grp++ {
		for i := 0; i < per; i++ {
			q.Submit(0, grp*g)
		}
	}
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/sched.")
	m0, p0 := memCounters()
	start := time.Now()
	for grp := 0; grp < ngroups; grp++ {
		q.Yield(grp * g)
	}
	for v := 0; v < w; v++ {
		if v%g != 0 || v/g >= ngroups {
			q.Yield(v)
		}
	}
	leafWG.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for !q.Idle() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	wall := time.Since(start)
	m1, p1 := memCounters()
	st := q.Stats()
	out := LocalityResult{
		BenchCounters: BenchCounters{
			Ops: per * ngroups, Wall: wall,
			MutexWait:  mutexWait() - wait0,
			LockCycles: pkgLockCycles("repro/internal/sched.") - cyc0,
			Allocs:     m1 - m0, GCPause: p1 - p0,
		},
		Steals:      st.Steals,
		StealLevels: st.StealLevels,
	}
	if st.Steals > 0 {
		out.CrossRate = float64(st.CrossGroup()) / float64(st.Steals)
	}
	return out
}

// LocalityTopologies are the two victim orders the locality table
// compares, over the synthetic two-domain CI tree (groups of two siblings
// split across two domains — all three steal-distance levels are
// populated from w=8, and the tree is non-trivial from w=4). Flat first:
// it is the reference row.
var LocalityTopologies = []struct {
	Name string
	Topo sched.Topology
}{
	{"flat", sched.Topology{Flat: true, GroupSize: 2, Domains: 2}},
	{"tree", sched.Topology{GroupSize: 2, Domains: 2}},
}
