package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestDiagnoseFamilies checks that the red-gate diagnosis picks a traced
// workload from the regressed entry's family instead of always replaying
// the graph-region sweep: a worksharing regression must trace the AXPY
// worksharing region, a taskwait one the nested weakwait sweep, the
// discrete-dependency families the flat-dependency sweep, and everything
// else (including an empty entry name) the graph-region sweep.
func TestDiagnoseFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs traced workloads; skipped in short mode")
	}
	for _, tc := range []struct {
		entry string
		want  string
	}{
		{"ws/chunked/w4", "axpy/worksharing"},
		{"wait/parking/w2", "gauss-seidel/nest-weak"},
		{"deps/sharded-pool/w4", "gauss-seidel/flat-depend"},
		{"locality/tree/w8", "gauss-seidel/flat-depend"},
		{"replay/replay/w2", "gauss-seidel/graph"},
		{"workload/heat/replay-on/w4", "gauss-seidel/graph"},
		{"", "gauss-seidel/graph"},
	} {
		var buf bytes.Buffer
		if _, err := Diagnose(&buf, tc.entry, 2, true); err != nil {
			t.Fatalf("Diagnose(%q): %v", tc.entry, err)
		}
		head, _, _ := strings.Cut(buf.String(), "\n")
		if !strings.Contains(head, tc.want) {
			t.Errorf("Diagnose(%q) traced %q, want workload %q", tc.entry, head, tc.want)
		}
	}
}
