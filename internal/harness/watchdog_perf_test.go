package harness

import (
	"testing"

	"repro/internal/workloads"
)

// TestWatchdogOverhead gates the watchdog's cost on the dispatch path:
// the flat-dependency Gauss-Seidel sweep at width 4 (the same pair the
// workload/gs-flat/watchdog-* perf entries track) must run within 1%
// of the watchdog-off time with the watchdog on. The heartbeat is two
// worker-private atomic stores per dispatch and the monitor samples a
// handful of atomics every 2ms, so 1% is generous headroom — but wall
// clocks on shared CI hosts jitter, so the test interleaves on/off
// passes, takes the minimum of each (minimum-of-N discards scheduler
// noise, which is strictly additive), and retries the whole comparison
// a few times before declaring a regression.
func TestWatchdogOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock ratio gate; skipped in -short")
	}
	p := workloads.GSParams{N: 128, TS: 16, Iters: 8, Compute: true}
	run := func(on bool) float64 {
		res, err := workloads.RunGS(workloads.Mode{Workers: 4, Watchdog: on}, workloads.GSFlatDepend, p)
		if err != nil {
			t.Fatalf("sweep failed (watchdog=%v): %v", on, err)
		}
		return float64(res.Wall)
	}
	const passes = 7
	const limit = 1.01
	var ratio float64
	for attempt := 0; attempt < 4; attempt++ {
		minOff, minOn := 0.0, 0.0
		for i := 0; i < passes; i++ {
			// Interleave so slow host phases (GC, noisy neighbors) hit
			// both sides equally.
			if off := run(false); minOff == 0 || off < minOff {
				minOff = off
			}
			if on := run(true); minOn == 0 || on < minOn {
				minOn = on
			}
		}
		ratio = minOn / minOff
		if ratio < limit {
			return
		}
		t.Logf("attempt %d: watchdog on/off ratio %.4f >= %.2f, retrying", attempt, ratio, limit)
	}
	t.Fatalf("watchdog overhead ratio %.4f, want < %.2f (heartbeats must stay under 1%% on the flat-dependency sweep)", ratio, limit)
}
