// Package harness regenerates every table and figure of the paper's
// evaluation (§VIII): Table I and Figures 3–7. Each experiment prints the
// same rows/series the paper plots. Absolute numbers differ from the
// 48-core ThunderX testbed; the reproduction target is the shape — which
// variant wins, by what factor, and where the crossovers are.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	nanos "repro"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies the default (laptop-sized) problem dimensions.
	// The paper's testbed sizes correspond to roughly Scale=64 for AXPY
	// and Scale=27 for Gauss-Seidel.
	Scale float64
	// Cores is the real-mode worker count (default: GOMAXPROCS).
	Cores int
	// Reps repeats each measurement and keeps the best (default 3).
	Reps int
	// Quick shrinks everything for smoke tests.
	Quick bool
	// CSVDir, when set, additionally writes each experiment's series as a
	// CSV file (<name>.csv) in that directory, for plotting pipelines.
	CSVDir string
}

func (o Options) defaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Cores <= 0 {
		o.Cores = runtime.GOMAXPROCS(0)
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.Quick {
		o.Reps = 1
	}
	return o
}

func scaled(base int64, scale float64) int64 {
	v := int64(float64(base) * scale)
	if v < 1 {
		return 1
	}
	return v
}

// best runs f Reps times and keeps the result with the shortest duration
// (ties on the other metrics don't matter; shapes are duration-driven).
func best(reps int, f func() (workloads.Result, error)) (workloads.Result, error) {
	var out workloads.Result
	for i := 0; i < reps; i++ {
		r, err := f()
		if err != nil {
			return r, err
		}
		if i == 0 || r.Wall < out.Wall {
			out = r
		}
	}
	return out, nil
}

// emitSeries prints the series and, with CSVDir set, also writes it as
// <name>.csv there.
func emitSeries(w io.Writer, o Options, name string, s *metrics.Series) error {
	fmt.Fprintln(w, s)
	if o.CSVDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(o.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Table1 prints the Multiple-AXPY variant feature matrix (Table I).
func Table1(w io.Writer) {
	t := metrics.NewTable(
		"Table I — Summary of the Multiple AXPY series",
		"Series", "Nested", "Outer deps", "Inner deps", "Synchronization between levels")
	for _, v := range workloads.AxpyVariants {
		nested, outer, inner, sync := workloads.AxpyFeatures(v)
		t.Add(string(v), nested, outer, inner, sync)
	}
	fmt.Fprintln(w, t)
}

// axpyVariantNames lists variant columns in the paper's legend order.
func axpyVariantNames() []string {
	names := make([]string, len(workloads.AxpyVariants))
	for i, v := range workloads.AxpyVariants {
		names[i] = string(v)
	}
	return names
}

// Fig3 regenerates Figure 3: AXPY performance (GFlop/s) and simulated L2
// miss ratio versus leaf-task size, 20 calls over the same vectors, all
// five variants. Real mode; the timing pass runs without the cache
// simulator, and a second pass gathers miss ratios.
func Fig3(w io.Writer, o Options) error {
	o = o.defaults()
	n := scaled(6<<20, o.Scale)
	calls := 20
	sizes := []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	if o.Quick {
		n = 1 << 16
		calls = 4
		sizes = []int64{1 << 10, 4 << 10}
	}
	// Calibrate "sequential time per task" (the paper's upper x axis).
	seqPerElem := calibrateAxpy(n)

	perf := metrics.NewSeries(
		fmt.Sprintf("Figure 3 (top) — AXPY GFlop/s vs task size (N=%d, %d calls, %d cores)", n, calls, o.Cores),
		"task-elems", axpyVariantNames()...)
	miss := metrics.NewSeries(
		"Figure 3 (bottom) — simulated L2 data-cache miss ratio",
		"task-elems", axpyVariantNames()...)

	for _, ts := range sizes {
		p := workloads.AxpyParams{N: n, Calls: calls, TaskSize: ts, Alpha: 1.25, Compute: true}
		perfRow := map[string]float64{}
		missRow := map[string]float64{}
		for _, v := range workloads.AxpyVariants {
			res, err := best(o.Reps, func() (workloads.Result, error) {
				return workloads.RunAxpy(workloads.Mode{Workers: o.Cores}, v, p)
			})
			if err != nil {
				return err
			}
			perfRow[string(v)] = res.GFlops()
			cache := nanos.DefaultL2Cache()
			cres, err := workloads.RunAxpy(workloads.Mode{Workers: o.Cores, Cache: &cache}, v, p)
			if err != nil {
				return err
			}
			missRow[string(v)] = cres.MissRatio
		}
		x := fmt.Sprintf("%d (%.0fus)", ts, float64(ts)*seqPerElem*1e6)
		perf.AddPoint(x, perfRow)
		miss.AddPoint(x, missRow)
	}
	if err := emitSeries(w, o, "fig3-gflops", perf); err != nil {
		return err
	}
	return emitSeries(w, o, "fig3-missratio", miss)
}

// calibrateAxpy measures the sequential per-element time of the axpy
// kernel (seconds/element) for the upper x-axis annotation of Figure 3.
func calibrateAxpy(n int64) float64 {
	if n > 1<<20 {
		n = 1 << 20
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	start := time.Now()
	for i := int64(0); i < n; i++ {
		y[i] += 1.25 * x[i]
	}
	el := time.Since(start).Seconds()
	if y[0] < 0 { // defeat dead-code elimination
		fmt.Println(y[0])
	}
	return el / float64(n)
}

// Fig4 regenerates Figure 4: AXPY strong scaling with leaf tasks of 14·2¹⁰
// elements, cores 4–48. Virtual mode, so the sweep covers the paper's core
// counts regardless of the host. Task creation is charged to the creator
// (VirtualSubmitCost ≈ a microsecond-scale overhead relative to the
// element-time cost unit): the single task generator of the flat variants
// then bottlenecks instantiation exactly as on real hardware, while the
// nested variants create work in parallel — the separation Figure 4 shows.
func Fig4(w io.Writer, o Options) error {
	o = o.defaults()
	n := scaled(24<<20, o.Scale)
	taskSize := int64(14 << 10)
	calls := 20
	submitCost := int64(2048) // ~2µs creation per ~1ns-element cost unit
	cores := []int{4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48}
	if o.Quick {
		n = 1 << 16
		taskSize = 1 << 10
		calls = 4
		submitCost = 256
		cores = []int{2, 4, 8}
	}
	s := metrics.NewSeries(
		fmt.Sprintf("Figure 4 — AXPY strong scaling, tasks of %d elements (virtual cores; flops per cost unit)", taskSize),
		"cores", axpyVariantNames()...)
	p := workloads.AxpyParams{N: n, Calls: calls, TaskSize: taskSize, Alpha: 1, Compute: false}
	for _, c := range cores {
		row := map[string]float64{}
		for _, v := range workloads.AxpyVariants {
			res, err := workloads.RunAxpy(
				workloads.Mode{Workers: c, Virtual: true, SubmitCost: submitCost}, v, p)
			if err != nil {
				return err
			}
			row[string(v)] = res.GFlops()
		}
		s.AddPoint(fmt.Sprintf("%d", c), row)
	}
	return emitSeries(w, o, "fig4-scaling", s)
}

// gsVariantNames lists the Gauss-Seidel variants in the paper's order.
func gsVariantNames() []string {
	names := make([]string, len(workloads.GSVariants))
	for i, v := range workloads.GSVariants {
		names[i] = string(v)
	}
	return names
}

// Fig5 regenerates Figure 5: Gauss-Seidel GFlop/s versus tile size, all
// four variants, real mode.
func Fig5(w io.Writer, o Options) error {
	o = o.defaults()
	n := scaled(1024, o.Scale)
	iters := 16
	sizes := []int64{32, 64, 128, 256}
	if o.Quick {
		n = 128
		iters = 4
		sizes = []int64{16, 32}
	}
	s := metrics.NewSeries(
		fmt.Sprintf("Figure 5 — Gauss-Seidel GFlop/s vs task size (N=%d², %d iterations, %d cores)", n, iters, o.Cores),
		"tile", gsVariantNames()...)
	for _, ts := range sizes {
		if n%ts != 0 {
			continue
		}
		row := map[string]float64{}
		for _, v := range workloads.GSVariants {
			res, err := best(o.Reps, func() (workloads.Result, error) {
				return workloads.RunGS(workloads.Mode{Workers: o.Cores}, v,
					workloads.GSParams{N: n, TS: ts, Iters: iters, Compute: true})
			})
			if err != nil {
				return err
			}
			row[string(v)] = res.GFlops()
		}
		s.AddPoint(fmt.Sprintf("%dx%d", ts, ts), row)
	}
	return emitSeries(w, o, "fig5-gflops", s)
}

// Fig6 regenerates Figure 6: Gauss-Seidel effective parallelism versus
// cores for tiles of 64×64 (top) and 128×128 (bottom). Virtual mode.
func Fig6(w io.Writer, o Options) error {
	o = o.defaults()
	n := scaled(2048, o.Scale)
	iters := 12
	cores := []int{4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48}
	tileSizes := []int64{64, 128}
	if o.Quick {
		n = 256
		iters = 4
		cores = []int{2, 4, 8}
		tileSizes = []int64{32, 64}
	}
	for _, ts := range tileSizes {
		if n%ts != 0 {
			continue
		}
		s := metrics.NewSeries(
			fmt.Sprintf("Figure 6 — Gauss-Seidel effective parallelism, tasks of %dx%d elements (N=%d², %d iterations)", ts, ts, n, iters),
			"cores", gsVariantNames()...)
		for _, c := range cores {
			row := map[string]float64{}
			for _, v := range workloads.GSVariants {
				res, err := workloads.RunGS(workloads.Mode{Workers: c, Virtual: true}, v,
					workloads.GSParams{N: n, TS: ts, Iters: iters, Compute: false})
				if err != nil {
					return err
				}
				row[string(v)] = res.EffectiveParallelism
			}
			s.AddPoint(fmt.Sprintf("%d", c), row)
		}
		if err := emitSeries(w, o, fmt.Sprintf("fig6-ts%d", ts), s); err != nil {
			return err
		}
	}
	return nil
}

// Fig7 regenerates Figure 7: the execution timeline of a quicksort followed
// by a prefix sum, with weak dependencies + weakwait (bottom of the paper's
// figure) versus regular dependencies (top). Virtual mode for a
// deterministic schedule; prints ASCII timelines and the quantified
// sort/prefix overlap.
func Fig7(w io.Writer, o Options) error {
	o = o.defaults()
	n := scaled(1<<18, o.Scale)
	ts := int64(1 << 11)
	workers := 8
	width := 100
	if o.Quick {
		n = 1 << 12
		ts = 1 << 6
		width = 60
	}
	for _, v := range workloads.SortVariants {
		res, err := workloads.RunSortSum(
			workloads.Mode{Workers: workers, Virtual: true, Trace: true},
			v, workloads.SortParams{N: n, TS: ts, Seed: 12345})
		if err != nil {
			return err
		}
		tr := res.Runtime.Tracer()
		fmt.Fprintf(w, "Figure 7 — quicksort + prefix sum, %s dependencies (N=%d, TS=%d, %d virtual cores)\n",
			v, n, ts, workers)
		fmt.Fprint(w, tr.RenderASCII(width))
		sortK, prefixK := sortPrefixKinds(tr)
		ov := tr.Overlap(sortK, prefixK)
		span := res.VirtualTime
		fmt.Fprintf(w, "sort/prefix phase overlap: %d of %d time units (%.1f%%)\n\n",
			ov, span, 100*float64(ov)/float64(span))
	}
	return nil
}

// ExportFig7 runs the Figure 7 workload once per variant and writes the
// trace of each through export, which receives the variant name and the
// tracer. Used by cmd/sortbench to emit Chrome-trace JSON or Paraver-like
// PRV files for external viewers.
func ExportFig7(o Options, export func(variant string, tr *trace.Tracer) error) error {
	o = o.defaults()
	n := scaled(1<<18, o.Scale)
	ts := int64(1 << 11)
	if o.Quick {
		n = 1 << 12
		ts = 1 << 6
	}
	for _, v := range workloads.SortVariants {
		res, err := workloads.RunSortSum(
			workloads.Mode{Workers: 8, Virtual: true, Trace: true},
			v, workloads.SortParams{N: n, TS: ts, Seed: 12345})
		if err != nil {
			return err
		}
		if err := export(string(v), res.Runtime.Tracer()); err != nil {
			return err
		}
	}
	return nil
}

// sortPrefixKinds splits the registered trace kinds into the sort phase and
// the prefix-sum phase of the benchmark.
func sortPrefixKinds(tr *trace.Tracer) (sortK, prefixK []trace.Kind) {
	for i, name := range tr.Kinds() {
		switch name {
		case "quick_sort", "insertion_sort":
			sortK = append(sortK, trace.Kind(i))
		case "prefix_base", "prefix_sum", "accumulate":
			prefixK = append(prefixK, trace.Kind(i))
		}
	}
	return
}

// Cholesky sweeps the blocked-Cholesky extension workload: GFlop/s per
// variant and block size in real mode, plus virtual-mode effective
// parallelism at the given core count. Dense linear algebra scheduling is
// the motivation the paper's introduction takes from [3]; the nested-weak
// formulation must track flat-depend and clearly beat nest-depend.
func Cholesky(w io.Writer, o Options, cores int) error {
	o = o.defaults()
	n := scaled(768, o.Scale)
	tss := []int64{32, 64, 128}
	if o.Quick {
		n, tss = 128, []int64{32}
	}
	if cores <= 0 {
		cores = 16
	}
	variants := make([]string, len(workloads.CholVariants))
	for i, v := range workloads.CholVariants {
		variants[i] = string(v)
	}
	perf := metrics.NewSeries(
		fmt.Sprintf("Cholesky %d×%d — GFlop/s vs block size (%d workers, real mode)", n, n, o.Cores),
		"TS", variants...)
	par := metrics.NewSeries(
		fmt.Sprintf("Cholesky %d×%d — effective parallelism (%d virtual cores)", n, n, cores),
		"TS", variants...)
	for _, ts := range tss {
		if n%ts != 0 {
			continue
		}
		perfRow := map[string]float64{}
		parRow := map[string]float64{}
		for _, v := range workloads.CholVariants {
			p := workloads.CholParams{N: n, TS: ts, Seed: 7, Compute: true}
			res, err := best(o.Reps, func() (workloads.Result, error) {
				return workloads.RunCholesky(workloads.Mode{Workers: o.Cores}, v, p)
			})
			if err != nil {
				return err
			}
			perfRow[string(v)] = res.GFlops()
			vp := p
			vp.Compute = false
			vres, err := workloads.RunCholesky(workloads.Mode{Workers: cores, Virtual: true}, v, vp)
			if err != nil {
				return err
			}
			parRow[string(v)] = vres.EffectiveParallelism
		}
		perf.AddPoint(fmt.Sprintf("%d", ts), perfRow)
		par.AddPoint(fmt.Sprintf("%d", ts), parRow)
	}
	if err := emitSeries(w, o, "cholesky-gflops", perf); err != nil {
		return err
	}
	return emitSeries(w, o, "cholesky-parallelism", par)
}

// All runs every experiment in paper order.
func All(w io.Writer, o Options) error {
	Table1(w)
	for _, f := range []func(io.Writer, Options) error{Fig3, Fig4, Fig5, Fig6, Fig7} {
		if err := f(w, o); err != nil {
			return err
		}
	}
	return nil
}
