package harness

// This file holds the contention benchmark kernels behind cmd/depbench's
// tables, extracted so that cmd/perftrack can run the same matrix
// in-process (one measurement = one kernel call) instead of scraping the
// depbench text output. Each kernel drives one subsystem's worst-case
// workload and returns raw counters; the callers own formatting,
// warm-up policy, and GOMAXPROCS pinning.
//
// The counters every kernel samples:
//
//   - wall time over the driven ops;
//   - process-wide mutex wait (/sync/mutex/wait/total), which exposes
//     single-lock serialization even on hosts too small for wall clock to;
//   - package-attributed mutex-contention cycles (runtime.MutexProfile
//     filtered to the package under test), isolating exactly the locks the
//     sharded implementations remove;
//   - allocator/collector traffic (Mallocs + PauseTotalNs deltas).
//
// Callers that want the package-attributed cycles must enable the mutex
// profiler first (runtime.SetMutexProfileFraction(1)); the kernels only
// read the profile.

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/regions"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/throttle"
)

// memCounters samples the allocator/collector counters the alloc columns
// are computed from.
func memCounters() (mallocs uint64, gcPause time.Duration) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, time.Duration(ms.PauseTotalNs)
}

func mutexWait() time.Duration {
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	return time.Duration(sample[0].Value.Float64() * float64(time.Second))
}

// pkgLockCycles sums mutex-contention cycles attributed to pkg (e.g.
// "repro/internal/deps.") by the runtime mutex profiler — unlike the
// process-wide wait counter it excludes allocator and scheduler locks, so
// it isolates exactly the serialization the sharded implementations
// remove.
func pkgLockCycles(pkg string) int64 {
	n, _ := runtime.MutexProfile(nil)
	records := make([]runtime.BlockProfileRecord, n+50)
	n, ok := runtime.MutexProfile(records)
	for !ok {
		// The profile grew past our slack between the two calls; resize
		// and retry rather than returning a bogus (delta-breaking) zero.
		records = make([]runtime.BlockProfileRecord, len(records)*2)
		n, ok = runtime.MutexProfile(records)
	}
	var cycles int64
	for _, r := range records[:n] {
		frames := runtime.CallersFrames(r.Stack())
		for {
			f, more := frames.Next()
			// CallersFrames (unlike FuncForPC) expands inlined calls, so a
			// lock helper inlined into its caller still attributes here.
			if strings.Contains(f.Function, pkg) {
				cycles += r.Cycles
				break
			}
			if !more {
				break
			}
		}
	}
	return cycles
}

// cpuTime returns the process's cumulative user+system CPU time. The
// taskwait and worksharing kernels derive worker idleness from its delta:
// a goroutine blocked in a wait (parked or pool-queued) burns no CPU,
// while spinning bodies burn it continuously, so 1 - cpu/(w*wall) is the
// fraction of worker capacity the strategy left unused. The execution
// trace cannot supply this — its spans deliberately include time blocked
// inside Taskwait (see executeTask).
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// waitSpin burns a few microseconds of CPU proportional to n; the sink
// defeats dead-code elimination.
var waitSink atomic.Int64

func waitSpin(n int) {
	var s int64
	for i := 0; i < n; i++ {
		s += int64(i ^ (i >> 3))
	}
	waitSink.Add(s)
}

// BenchCounters are the allocator/contention counters every kernel
// samples around its measured region.
type BenchCounters struct {
	Ops        int           // ops actually driven (input rounded to a multiple of w)
	Wall       time.Duration // wall time of the measured region
	MutexWait  time.Duration // process-wide mutex wait delta
	LockCycles int64         // package-attributed mutex-contention cycles delta
	Allocs     uint64        // heap allocation count delta
	GCPause    time.Duration // GC stop-the-world pause delta
}

// DepsBench drives ops register→complete chain steps split over w
// goroutines (rounded down to a multiple of w), each goroutine on its own
// data object — the dependency-engine contention kernel.
func DepsBench(kind deps.EngineKind, mem mempool.Kind, w, ops int) BenchCounters {
	e := deps.NewEngineMem(kind, nil, mem)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	parents := make([]*deps.Node, w)
	for i := range parents {
		parents[i] = e.NewNode(root, fmt.Sprintf("gen%d", i), nil)
		e.Register(parents[i], nil)
	}
	perW := ops / w
	var wg sync.WaitGroup
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/deps.")
	m0, p0 := memCounters()
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := deps.DataID(i)
			spec := []deps.Spec{{Data: data, Type: deps.InOut, Ivs: []regions.Interval{regions.Iv(0, 64)}}}
			buf := make([]*deps.Node, 0, 4)
			var prev *deps.Node
			for n := 0; n < perW; n++ {
				nd := e.NewNode(parents[i], "t", nil)
				e.Register(nd, spec)
				if prev != nil {
					e.CompleteInto(prev, buf[:0])
				}
				prev = nd
			}
			if prev != nil {
				e.CompleteInto(prev, buf[:0])
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	m1, p1 := memCounters()
	return BenchCounters{
		Ops: perW * w, Wall: wall,
		MutexWait:  mutexWait() - wait0,
		LockCycles: pkgLockCycles("repro/internal/deps.") - cyc0,
		Allocs:     m1 - m0, GCPause: p1 - p0,
	}
}

// SchedPoolMaker builds one ready pool for SchedBench.
type SchedPoolMaker func(workers int, spawn func(item, worker int)) sched.Queue[int]

// SchedPools lists the ready-pool implementations the sched table sweeps,
// single-lock references first.
var SchedPools = []struct {
	Name string
	Make SchedPoolMaker
}{
	{"locked-stealing", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewLockedStealing(w, s) }},
	{"central", func(w int, s func(int, int)) sched.Queue[int] { return sched.New(w, sched.FIFO, s) }},
	{"stealing", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewStealing(w, s) }},
	{"sharded-central", func(w int, s func(int, int)) sched.Queue[int] { return sched.NewShardedCentral(w, s) }},
}

// statser is implemented by the ready pools that report steal counters.
type statser interface {
	Stats() sched.PoolStats
}

// SchedBench drives ops submit→finish chain steps split over w runner
// chains, each chain submitting its successor from its own worker — the
// scheduler-admission analogue of the disjoint dependency chains: all
// chains are independent, so the only serialization is the ready pool's
// own locking. The second return value is the pool's steal count (0 for
// pools without steal counters).
func SchedBench(mk SchedPoolMaker, w, ops int) (BenchCounters, int64) {
	perW := ops / w
	remaining := make([]atomic.Int64, w)
	for i := range remaining {
		remaining[i].Store(int64(perW))
	}
	var done sync.WaitGroup
	done.Add(w)
	var q sched.Queue[int]
	q = mk(w, func(chain, worker int) {
		for {
			if remaining[chain].Add(-1) > 0 {
				q.Submit(chain, worker)
			} else {
				done.Done()
			}
			next, ok := q.Finish(worker)
			if !ok {
				return
			}
			chain = next
		}
	})
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/sched.")
	m0, p0 := memCounters()
	start := time.Now()
	for i := 0; i < w; i++ {
		q.Submit(i, -1)
	}
	done.Wait()
	wall := time.Since(start)
	m1, p1 := memCounters()
	var steals int64
	if st, ok := q.(statser); ok {
		steals = st.Stats().Steals
	}
	return BenchCounters{
		Ops: perW * w, Wall: wall,
		MutexWait:  mutexWait() - wait0,
		LockCycles: pkgLockCycles("repro/internal/sched.") - cyc0,
		Allocs:     m1 - m0, GCPause: p1 - p0,
	}, steals
}

// ThrottleBench drives ops reserve→enter→start cycles split over w
// submitter goroutines sharing one admission window of the given bound —
// the throttle analogue of the disjoint chains: the submitters share
// nothing but the window itself, so the only serialization is the
// window's own synchronization. The second return value is the window's
// parked-submitter count.
func ThrottleBench(kind throttle.Kind, w, ops, window int) (BenchCounters, int64) {
	win := throttle.New(kind, window, w)
	perW := ops / w
	var wg sync.WaitGroup
	wait0 := mutexWait()
	cyc0 := pkgLockCycles("repro/internal/throttle.")
	m0, p0 := memCounters()
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				_, prepaid := win.Reserve(g, nil)
				if prepaid {
					win.EnteredReserved()
				} else {
					win.Entered(1)
				}
				win.Started(g)
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	m1, p1 := memCounters()
	return BenchCounters{
		Ops: perW * w, Wall: wall,
		MutexWait:  mutexWait() - wait0,
		LockCycles: pkgLockCycles("repro/internal/throttle.") - cyc0,
		Allocs:     m1 - m0, GCPause: p1 - p0,
	}, win.Stats().Parks
}

// ReplayVariant names one formulation of the Gauss-Seidel wavefront sweep
// for the replay-overhead kernel.
type ReplayVariant uint8

const (
	ReplayNestWeak  ReplayVariant = iota // weakwait iteration tasks (§VIII-B nest-weak)
	ReplayLiveGraph                      // graph regions through the live engine
	ReplayFrozen                         // graph regions replayed from the recording
)

// String returns the depbench row name of the variant.
func (v ReplayVariant) String() string {
	switch v {
	case ReplayNestWeak:
		return "live-nestweak"
	case ReplayLiveGraph:
		return "live-graph"
	default:
		return "replay"
	}
}

// ReplayOverheadBench drives iters sweeps of a blocks×blocks tile
// wavefront with empty bodies — pure runtime overhead — and returns the
// counters plus the tasks submitted per iteration. Ops in the returned
// counters is tiles×iters.
func ReplayOverheadBench(v ReplayVariant, w, blocks, iters int) (BenchCounters, int) {
	kind := replay.KindOff
	if v == ReplayFrozen {
		kind = replay.KindOn
	}
	rt := core.New(core.Config{Workers: w, Replay: kind})
	b := int64(blocks)
	side := b + 2
	total := side * side
	ad := rt.NewData("A", total, 8)
	blk := func(i, j int64) regions.Interval { return regions.BlockInterval(side, 1, i, j) }
	tile := func(i, j int64) core.TaskSpec {
		return core.TaskSpec{
			Label: "tile",
			Deps: []core.Dep{
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i-1, j)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i, j-1)}},
				{Data: ad, Type: deps.InOut, Ivs: []regions.Interval{blk(i, j)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i, j+1)}},
				{Data: ad, Type: deps.In, Ivs: []regions.Interval{blk(i+1, j)}},
			},
			Body: func(*core.TaskContext) {},
		}
	}
	// The tile specs are built once and resubmitted every sweep, so the
	// allocs counter measures the runtime's per-task allocations, not the
	// driver's spec construction.
	specs := make([]core.TaskSpec, 0, blocks*blocks)
	for i := int64(1); i <= b; i++ {
		for j := int64(1); j <= b; j++ {
			specs = append(specs, tile(i, j))
		}
	}
	sweep := func(tc *core.TaskContext) {
		for k := range specs {
			tc.Submit(specs[k])
		}
	}
	iterSpec := core.TaskSpec{
		Label:    "iteration",
		WeakWait: true,
		Deps:     []core.Dep{{Data: ad, Type: deps.InOut, Weak: true, Ivs: []regions.Interval{regions.Iv(0, total)}}},
		Body:     sweep,
	}
	wait0 := mutexWait()
	m0, p0 := memCounters()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for it := 0; it < iters; it++ {
			if v == ReplayNestWeak {
				tc.Submit(iterSpec)
			} else {
				tc.Graph("gs-sweep", sweep)
			}
		}
	})
	wall := time.Since(start)
	m1, p1 := memCounters()
	return BenchCounters{
		Ops: blocks * blocks * iters, Wall: wall,
		MutexWait: mutexWait() - wait0,
		Allocs:    m1 - m0, GCPause: p1 - p0,
	}, blocks * blocks
}

// WSChunkResult extends the counters with the worksharing-specific
// redistribution and idleness measurements.
type WSChunkResult struct {
	BenchCounters
	Chunks       int64   // chunks driven over the whole run
	HelperChunks int64   // chunks executed by announced helpers
	Idle         float64 // fraction of worker capacity left unused
}

// WSChunkBench drives iters worksharing regions over [0, n) at the given
// grain, chained through a union inout entry so regions serialize and the
// intra-region chunk distribution is the only parallelism — the worst
// case for amortizing the announcement. Chunk bodies spin proportionally
// to chunk length, so total body work is grain-independent and a grain
// sweep isolates the per-chunk overhead.
func WSChunkBench(kind core.WorksharingKind, w, iters int, grain, n int64) WSChunkResult {
	rt := core.New(core.Config{Workers: w, WorksharingImpl: kind})
	ad := rt.NewData("A", n, 8)
	cpu0 := cpuTime()
	m0, _ := memCounters()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for it := 0; it < iters; it++ {
			tc.Worksharing(core.WorksharingSpec{
				Label: "ws",
				Lo:    0, Hi: n, Grain: grain,
				Deps: func(lo, hi int64) []core.Dep {
					return []core.Dep{{Data: ad, Type: deps.InOut, Ivs: []regions.Interval{regions.Iv(lo, hi)}}}
				},
				Body: func(_ *core.TaskContext, lo, hi int64) { waitSpin(int(hi - lo)) },
			})
		}
	})
	wall := time.Since(start)
	cpu := cpuTime() - cpu0
	m1, _ := memCounters()
	out := WSChunkResult{
		BenchCounters: BenchCounters{Ops: iters, Wall: wall, Allocs: m1 - m0},
		Chunks:        (n + grain - 1) / grain * int64(iters),
		HelperChunks:  rt.WsStats().HelperChunks,
	}
	if wall > 0 {
		out.Idle = 1 - float64(cpu)/(float64(w)*float64(wall))
		if out.Idle < 0 {
			out.Idle = 0
		}
	}
	return out
}

// WaitResult extends the counters with the taskwait strategy counters.
type WaitResult struct {
	BenchCounters
	Waits int64 // blocking waits driven (parks + handoffs)
	Stats core.TaskwaitStats
	Idle  float64 // fraction of worker capacity left unused
}

// WaitBench drives reps waves of a nested-taskwait workload: each wave
// submits 2w parent tasks, and each parent submits fan spinning leaf
// children and blocks on them twice (two batches per parent). The leaf
// spins guarantee the parents' taskwaits find incomplete children — the
// blocking path under measurement.
func WaitBench(kind core.TaskwaitKind, w, reps, fan int) WaitResult {
	rt := core.New(core.Config{Workers: w, TaskwaitImpl: kind})
	cpu0 := cpuTime()
	start := time.Now()
	rt.Run(func(tc *core.TaskContext) {
		for rep := 0; rep < reps; rep++ {
			for p := 0; p < 2*w; p++ {
				tc.Submit(core.TaskSpec{Label: "parent", Body: func(tc *core.TaskContext) {
					for batch := 0; batch < 2; batch++ {
						for c := 0; c < fan; c++ {
							tc.Submit(core.TaskSpec{Label: "leaf", Body: func(*core.TaskContext) {
								waitSpin(2000)
							}})
						}
						tc.Taskwait()
					}
				}})
			}
			tc.Taskwait()
		}
	})
	wall := time.Since(start)
	cpu := cpuTime() - cpu0
	st := rt.TaskwaitStats()
	out := WaitResult{
		BenchCounters: BenchCounters{Ops: reps, Wall: wall},
		Waits:         st.Parks + st.Handoffs,
		Stats:         st,
	}
	if wall > 0 {
		out.Idle = 1 - float64(cpu)/(float64(w)*float64(wall))
		if out.Idle < 0 {
			out.Idle = 0
		}
	}
	return out
}
