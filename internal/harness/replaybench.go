package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	nanos "repro"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// This file drives the record-and-replay experiment (beyond the paper's
// evaluation; the Taskgraph direction of PAPERS.md): the graph-region
// formulations of the Gauss-Seidel and heat sweeps run with the cache off
// (every sweep through the live dependency engine) and on (first sweep
// records, the rest replay frozen countdown graphs), and the per-sweep
// times land in a table and, optionally, a JSON file (BENCH_replay.json).

// ReplayRow is one workload × cache-mode measurement of the replay
// experiment, as serialized into the JSON report.
type ReplayRow struct {
	Workload   string  `json:"workload"`
	Replay     string  `json:"replay"`
	Workers    int     `json:"workers"`
	Iters      int     `json:"iters"`
	Tasks      int64   `json:"tasks"`
	WallMS     float64 `json:"wall_ms"`
	PerSweepMS float64 `json:"per_sweep_ms"`
	Records    int64   `json:"records"`
	Replays    int64   `json:"replays"`
}

// ReplayBench measures the graph-region sweeps with the cache off and on.
// jsonPath, when non-empty, receives the rows as a JSON array (the
// BENCH_replay.json record the repository keeps).
func ReplayBench(w io.Writer, o Options, jsonPath string) error {
	o = o.defaults()
	gsP := workloads.GSParams{N: scaled(512, o.Scale), TS: 32, Iters: 24, Compute: true}
	heatP := workloads.HeatParams{N: scaled(512, o.Scale), TS: 32, Iters: 24, Compute: true}
	if o.Quick {
		gsP = workloads.GSParams{N: 128, TS: 16, Iters: 8, Compute: true}
		heatP = workloads.HeatParams{N: 128, TS: 16, Iters: 8, Compute: true}
	}
	t := metrics.NewTable(
		fmt.Sprintf("Record-and-replay graph regions — %d workers, %d sweeps (before/after per-sweep time)",
			o.Cores, gsP.Iters),
		"workload", "replay", "tasks", "wall", "ms/sweep", "records", "replays", "speedup")
	var rows []ReplayRow
	type bench struct {
		name  string
		iters int
		run   func(mode workloads.Mode) (workloads.Result, error)
	}
	benches := []bench{
		{"gauss-seidel/graph", gsP.Iters, func(m workloads.Mode) (workloads.Result, error) {
			return workloads.RunGS(m, workloads.GSGraph, gsP)
		}},
		{"heat/jacobi", heatP.Iters, func(m workloads.Mode) (workloads.Result, error) {
			return workloads.RunHeat(m, heatP)
		}},
	}
	for _, b := range benches {
		var base float64
		for _, kind := range []nanos.ReplayKind{nanos.ReplayOff, nanos.ReplayOn} {
			mode := workloads.Mode{Workers: o.Cores, Replay: kind}
			res, err := best(o.Reps, func() (workloads.Result, error) { return b.run(mode) })
			if err != nil {
				return err
			}
			st := res.Runtime.ReplayStats()
			perSweep := float64(res.Wall.Microseconds()) / 1000 / float64(b.iters)
			speedup := "1.00x"
			if kind == nanos.ReplayOff {
				base = perSweep
			} else if perSweep > 0 {
				speedup = fmt.Sprintf("%.2fx", base/perSweep)
			}
			t.Add(b.name, kind.String(), fmt.Sprintf("%d", res.Tasks),
				res.Wall.Round(10000).String(), fmt.Sprintf("%.3f", perSweep),
				fmt.Sprintf("%d", st.Records), fmt.Sprintf("%d", st.Replays), speedup)
			rows = append(rows, ReplayRow{
				Workload: b.name, Replay: kind.String(), Workers: o.Cores,
				Iters: b.iters, Tasks: res.Tasks,
				WallMS:     float64(res.Wall.Microseconds()) / 1000,
				PerSweepMS: perSweep, Records: st.Records, Replays: st.Replays,
			})
		}
	}
	fmt.Fprintln(w, t)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("harness: writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(w, "(rows written to %s)\n\n", jsonPath)
	}
	return nil
}
