package harness

import (
	"testing"

	"repro/internal/chaos"
)

// TestChaosGroupsCoverAllSites: the subsystem rows must partition the full
// failpoint set — a site missing from every group would silently escape
// the chaos table.
func TestChaosGroupsCoverAllSites(t *testing.T) {
	covered := make(map[chaos.Site]bool)
	for _, g := range ChaosGroups {
		if g.Name == "all" {
			if len(g.Sites) != chaos.NumSites {
				t.Errorf("all group has %d sites, want %d", len(g.Sites), chaos.NumSites)
			}
			continue
		}
		for _, s := range g.Sites {
			if covered[s] {
				t.Errorf("site %v appears in two subsystem groups", s)
			}
			covered[s] = true
		}
	}
	for i := 0; i < chaos.NumSites; i++ {
		if !covered[chaos.Site(i)] {
			t.Errorf("site %v is in no subsystem group", chaos.Site(i))
		}
	}
}

// TestChaosBenchRows runs a small sweep of the actual table rows: every
// armed row must engage its failpoints, report zero stalls, and agree with
// the off row's checksum.
func TestChaosBenchRows(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 4
	}
	var ref ChaosResult
	for i, g := range ChaosGroups {
		res := ChaosBench(g, 7, 2, 4, iters, 12)
		if i == 0 {
			ref = res
			if res.Hits != 0 {
				t.Fatalf("off row recorded %d failpoint hits", res.Hits)
			}
			continue
		}
		if res.Checksum != ref.Checksum {
			t.Errorf("group %q: checksum %d != off row %d", g.Name, res.Checksum, ref.Checksum)
		}
		if res.Hits == 0 {
			t.Errorf("group %q: failpoints never engaged", g.Name)
		}
		if res.Stalls != 0 {
			t.Errorf("group %q: %d stall reports, want 0", g.Name, res.Stalls)
		}
	}
}
