package harness

// The perf-trajectory entry registry: the benchmark matrix cmd/perftrack
// collects on every run. One PerfEntry = one named, unit-carrying
// measurement (a depbench kernel configuration or a reproduce workload);
// its Run function performs ONE measurement pass, and the caller repeats
// it under coefficient-of-variation validation (internal/perfstat).
//
// Entry names are stable identifiers — they key the comparison against
// BENCH_history.json records, so renaming one orphans its trajectory.

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	nanos "repro"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/mempool"
	"repro/internal/throttle"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// PerfEntry is one tracked measurement of the trajectory matrix.
type PerfEntry struct {
	// Name keys the trajectory, e.g. "deps/sharded-pool/w4".
	Name string
	// Unit is the lower-is-better unit Run returns, e.g. "ns/op".
	Unit string
	// Run performs one measurement pass.
	Run func() float64
}

// PerfMatrix sizes the entry matrix.
type PerfMatrix struct {
	// Workers are the widths the kernel tables sweep.
	Workers []int
	// Quick shrinks every op count for smoke runs. Quick collections are
	// never comparable to full ones (perfstat.Record.Quick).
	Quick bool
}

// maxWorkers returns the widest configured width (the reproduce
// workloads run once, at full width).
func (m PerfMatrix) maxWorkers() int {
	max := 1
	for _, w := range m.Workers {
		if w > max {
			max = w
		}
	}
	return max
}

// atWidth raises GOMAXPROCS to at least w around one measurement.
func atWidth(w int, f func() float64) float64 {
	prev := runtime.GOMAXPROCS(0)
	if w > prev {
		runtime.GOMAXPROCS(w)
	}
	defer runtime.GOMAXPROCS(prev)
	return f()
}

// perfGSParams returns the Gauss-Seidel sizing shared by the workload
// entries and the regression diagnosis trace.
func perfGSParams(quick bool) workloads.GSParams {
	if quick {
		return workloads.GSParams{N: 96, TS: 16, Iters: 6, Compute: true}
	}
	return workloads.GSParams{N: 256, TS: 32, Iters: 12, Compute: true}
}

// PerfEntries builds the trajectory matrix: every depbench kernel
// configuration (deps, sched, throttle, replay, ws, wait) at every
// configured width, plus the reproduce workloads (graph-replay
// Gauss-Seidel and heat sweeps, fine-grain worksharing AXPY) at the
// widest width.
func PerfEntries(m PerfMatrix) []PerfEntry {
	depsOps, schedOps, throttleOps := 200_000, 1_000_000, 2_000_000
	replayBlocks, replayIters := 8, 150
	wsIters, wsGrain, wsN := 50, int64(64), int64(1<<15)
	waitReps, waitFan := 60, 8
	localityOps, localitySpin := 200_000, 400
	if m.Quick {
		depsOps, schedOps, throttleOps = 20_000, 100_000, 200_000
		replayBlocks, replayIters = 4, 25
		wsIters, wsN = 10, 1<<13
		waitReps, waitFan = 15, 4
		localityOps = 20_000
	}
	var out []PerfEntry
	add := func(name, unit string, run func() float64) {
		out = append(out, PerfEntry{Name: name, Unit: unit, Run: run})
	}

	for _, w := range m.Workers {
		w := w
		for _, row := range []struct {
			name string
			kind deps.EngineKind
			mem  mempool.Kind
		}{
			{"global", deps.EngineGlobal, mempool.KindReference},
			{"sharded", deps.EngineSharded, mempool.KindReference},
			{"sharded-pool", deps.EngineSharded, mempool.KindPooled},
		} {
			row := row
			add(fmt.Sprintf("deps/%s/w%d", row.name, w), "ns/op", func() float64 {
				return atWidth(w, func() float64 {
					c := DepsBench(row.kind, row.mem, w, depsOps)
					return float64(c.Wall) / float64(c.Ops)
				})
			})
		}
		for _, p := range SchedPools {
			p := p
			add(fmt.Sprintf("sched/%s/w%d", p.Name, w), "ns/op", func() float64 {
				return atWidth(w, func() float64 {
					c, _ := SchedBench(p.Make, w, schedOps)
					return float64(c.Wall) / float64(c.Ops)
				})
			})
		}
		for _, kind := range []throttle.Kind{throttle.KindLocked, throttle.KindSharded} {
			kind := kind
			add(fmt.Sprintf("throttle/%s/w%d", kind, w), "ns/op", func() float64 {
				return atWidth(w, func() float64 {
					c, _ := ThrottleBench(kind, w, throttleOps, w)
					return float64(c.Wall) / float64(c.Ops)
				})
			})
		}
		for _, v := range []ReplayVariant{ReplayNestWeak, ReplayLiveGraph, ReplayFrozen} {
			v := v
			add(fmt.Sprintf("replay/%s/w%d", v, w), "us/iter", func() float64 {
				return atWidth(w, func() float64 {
					c, _ := ReplayOverheadBench(v, w, replayBlocks, replayIters)
					return float64(c.Wall) / float64(time.Microsecond) / float64(replayIters)
				})
			})
		}
		for _, row := range []struct {
			name string
			kind core.WorksharingKind
		}{
			{"expand", core.WorksharingExpand},
			{"chunked", core.WorksharingChunked},
		} {
			row := row
			add(fmt.Sprintf("ws/%s/w%d", row.name, w), "us/iter", func() float64 {
				return atWidth(w, func() float64 {
					res := WSChunkBench(row.kind, w, wsIters, wsGrain, wsN)
					return float64(res.Wall) / float64(time.Microsecond) / float64(wsIters)
				})
			})
		}
		for _, row := range []struct {
			name string
			kind core.TaskwaitKind
		}{
			{"parking", core.TaskwaitParking},
			{"continuation", core.TaskwaitContinuation},
		} {
			row := row
			add(fmt.Sprintf("wait/%s/w%d", row.name, w), "us/wait", func() float64 {
				return atWidth(w, func() float64 {
					res := WaitBench(row.kind, w, waitReps, waitFan)
					if res.Waits == 0 {
						return 0
					}
					return float64(res.Wall) / float64(time.Microsecond) / float64(res.Waits)
				})
			})
		}
		for _, tp := range LocalityTopologies {
			tp := tp
			add(fmt.Sprintf("locality/%s/w%d", tp.Name, w), "ns/op", func() float64 {
				return atWidth(w, func() float64 {
					res := LocalityBench(tp.Topo, w, localityOps, localitySpin)
					return float64(res.Wall) / float64(res.Ops)
				})
			})
		}
	}

	// Reproduce workloads at full width: end-to-end sweeps with real
	// bodies, the numbers BENCH_replay.json / BENCH_ws.json snapshot.
	cores := m.maxWorkers()
	gsP := perfGSParams(m.Quick)
	heatP := workloads.HeatParams{N: 256, TS: 32, Iters: 12, Compute: true}
	axP := workloads.AxpyParams{N: 1 << 19, Calls: 8, TaskSize: 256, Alpha: 1.5, Compute: true}
	if m.Quick {
		heatP = workloads.HeatParams{N: 96, TS: 16, Iters: 6, Compute: true}
		axP = workloads.AxpyParams{N: 1 << 15, Calls: 4, TaskSize: 128, Alpha: 1.5, Compute: true}
	}
	msPerSweep := func(res workloads.Result, err error, iters int) float64 {
		if err != nil {
			panic(fmt.Sprintf("harness: perf workload failed: %v", err))
		}
		return float64(res.Wall) / float64(time.Millisecond) / float64(iters)
	}
	for _, kind := range []nanos.ReplayKind{nanos.ReplayOff, nanos.ReplayOn} {
		kind := kind
		add(fmt.Sprintf("workload/gs-graph/replay-%s/w%d", kind, cores), "ms/sweep", func() float64 {
			return atWidth(cores, func() float64 {
				res, err := workloads.RunGS(workloads.Mode{Workers: cores, Replay: kind}, workloads.GSGraph, gsP)
				return msPerSweep(res, err, gsP.Iters)
			})
		})
		add(fmt.Sprintf("workload/heat/replay-%s/w%d", kind, cores), "ms/sweep", func() float64 {
			return atWidth(cores, func() float64 {
				res, err := workloads.RunHeat(workloads.Mode{Workers: cores, Replay: kind}, heatP)
				return msPerSweep(res, err, heatP.Iters)
			})
		})
	}
	add(fmt.Sprintf("workload/axpy-ws/chunked/w%d", cores), "ms/call", func() float64 {
		return atWidth(cores, func() float64 {
			res, err := workloads.RunAxpy(
				workloads.Mode{Workers: cores, Worksharing: nanos.WorksharingChunked},
				workloads.AxpyWorksharing, axP)
			return msPerSweep(res, err, axP.Calls)
		})
	})
	sortP := workloads.SortParams{N: 1 << 16, TS: 1 << 9, Seed: 42}
	if m.Quick {
		sortP = workloads.SortParams{N: 1 << 13, TS: 1 << 8, Seed: 42}
	}
	add(fmt.Sprintf("workload/sortsum/weak/w%d", cores), "ms/run", func() float64 {
		return atWidth(cores, func() float64 {
			res, err := workloads.RunSortSum(workloads.Mode{Workers: cores}, workloads.SortWeak, sortP)
			return msPerSweep(res, err, 1)
		})
	})
	// Watchdog overhead A/B: the identical flat-dependency sweep with the
	// stall watchdog off vs on, pinned at width 4 (independent of the
	// matrix widths) so the pair keys a stable trajectory. The on-entry
	// pays the per-dispatch heartbeat stores plus the sampling monitor;
	// TestWatchdogOverhead gates the pair's ratio at <1%.
	for _, row := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		row := row
		add(fmt.Sprintf("workload/gs-flat/watchdog-%s/w4", row.name), "ms/sweep", func() float64 {
			return atWidth(4, func() float64 {
				res, err := workloads.RunGS(
					workloads.Mode{Workers: 4, Watchdog: row.on}, workloads.GSFlatDepend, gsP)
				return msPerSweep(res, err, gsP.Iters)
			})
		})
	}
	return out
}

// Diagnose reruns a traced workload matched to the regressed entry's
// family at the given width and classifies the trace against the
// detrimental execution patterns of Tuft et al.
// (internal/trace.DetectPatterns), printing the ASCII timeline and the
// pattern report. perftrack calls it under a red gate with the first
// regressed entry's name so CI output is "regressed AND here is why" —
// and the "why" trace actually exercises the regressed machinery: a
// worksharing regression replays the AXPY worksharing region, a taskwait
// regression the nested weakwait sweep, a ready-pool / dependency /
// throttle / locality regression the flat-dependency sweep (pure
// discrete-dependency pressure, no graph replay), and anything else
// (replay entries, end-to-end workloads, unknown names) the graph-region
// sweep as before. entry may be empty; the family is its prefix up to
// the first '/'.
func Diagnose(w io.Writer, entry string, cores int, quick bool) ([]trace.Finding, error) {
	family := entry
	if i := strings.IndexByte(entry, '/'); i >= 0 {
		family = entry[:i]
	}
	mode := workloads.Mode{Workers: cores, Trace: true}
	p := perfGSParams(quick)
	var (
		label string
		iters int
		res   workloads.Result
		err   error
	)
	switch family {
	case "ws":
		axP := workloads.AxpyParams{N: 1 << 19, Calls: 8, TaskSize: 256, Alpha: 1.5, Compute: true}
		if quick {
			axP = workloads.AxpyParams{N: 1 << 15, Calls: 4, TaskSize: 128, Alpha: 1.5, Compute: true}
		}
		mode.Worksharing = nanos.WorksharingChunked
		label, iters = "axpy/worksharing", axP.Calls
		res, err = workloads.RunAxpy(mode, workloads.AxpyWorksharing, axP)
	case "wait":
		label, iters = "gauss-seidel/nest-weak", p.Iters
		res, err = workloads.RunGS(mode, workloads.GSNestWeak, p)
	case "deps", "sched", "throttle", "locality":
		label, iters = "gauss-seidel/flat-depend", p.Iters
		res, err = workloads.RunGS(mode, workloads.GSFlatDepend, p)
	default:
		label, iters = "gauss-seidel/graph", p.Iters
		res, err = workloads.RunGS(mode, workloads.GSGraph, p)
	}
	if err != nil {
		return nil, err
	}
	tr := res.Runtime.Tracer()
	findings := tr.DetectPatterns(int64(res.Wall))
	fmt.Fprintf(w, "diagnosis trace — %s (family %q), %d workers, %d iters (%.1f ms)\n",
		label, family, cores, iters, float64(res.Wall)/float64(time.Millisecond))
	fmt.Fprint(w, tr.RenderASCII(100))
	fmt.Fprint(w, trace.PatternReport(findings))
	return findings, nil
}
