package deps

import (
	"slices"

	"repro/internal/regions"
)

// access is one registered Spec of a node.
type access struct {
	node  *Node
	spec  Spec
	frags []*fragment
}

// resetForPool clears the access for reuse, keeping the frags slice's
// capacity. The fragments themselves are recycled separately.
func (a *access) resetForPool() {
	a.node = nil
	a.spec = Spec{} // drops the Ivs reference to the caller's slice
	clear(a.frags)
	a.frags = a.frags[:0]
}

// fragment is the unit of dependency tracking: one contiguous interval of
// one access. Per-subinterval state lives in a fragmenting map of pieceState
// values, so partially overlapping later accesses, partial releases
// (weakwait hand-over, release directive) and partial satisfaction all
// fragment the state in place with no structural fix-ups.
type fragment struct {
	acc *access
	iv  regions.Interval
	// state is held by value: the per-piece interval map lives inline in
	// the fragment, so creating a fragment costs one allocation (or none,
	// pooled) and resetting it keeps the entries slice's capacity.
	state regions.Map[pieceState]

	// relLen is the total released element length; the fragment is fully
	// released (and leaves the engine's live count) when it reaches
	// iv.Len().
	relLen int64

	// succs are same-domain successor links created at the successors'
	// registration: when a piece of this fragment releases, every link
	// overlapping it grants (dR, dW) to the target over the overlap.
	succs []link

	// rWaiters/wWaiters are inbound links from child fragments (fragments
	// of tasks nested inside this fragment's owner) waiting for this
	// fragment's read/write satisfaction over their interval. This is the
	// linking-point role of weak accesses (§VI).
	rWaiters []link
	wWaiters []link
}

// pieceState is the per-subinterval state of a fragment. It is a pure value
// type: splitting an interval entry duplicates it verbatim, which is
// semantically correct for every field (counters and flags apply uniformly
// across the piece).
type pieceState struct {
	// pendR counts outstanding grants required for read satisfaction
	// (prior writers, transitively through weak parents). pendW counts the
	// grants required for write satisfaction (prior writers and readers).
	pendR, pendW int32
	// done marks that the owner task reached this piece's completion point:
	// full completion, weakwait body exit, or a release directive.
	done bool
	// waitDrain marks a piece handed over at weakwait: it releases when the
	// covering child accesses drain from the inner domain.
	waitDrain bool
	released  bool
}

// rSat reports read satisfaction of the piece.
func (ps pieceState) rSat() bool { return ps.pendR == 0 }

// wSat reports write satisfaction of the piece.
func (ps pieceState) wSat() bool { return ps.pendW == 0 }

// typeSat reports the satisfaction relevant for the fragment's own access
// type: readers only need read satisfaction; writers (including
// reductions, which write) need exclusivity against everything before
// their group.
func (ps pieceState) typeSat(t AccessType) bool {
	if t == In {
		return ps.rSat()
	}
	return ps.wSat()
}

// link records a dependency edge over an explicit interval. Used both for
// same-domain successor links (release → grant) and for inbound waiter
// links (satisfaction → grant).
type link struct {
	target *fragment
	iv     regions.Interval
	dR, dW int32
}

func newFragment(acc *access, iv regions.Interval) *fragment {
	f := &fragment{}
	f.init(acc, iv)
	return f
}

// init prepares a fresh or pool-recycled fragment for a new access piece.
// All other fields are empty: either the struct is new, or resetForPool
// restored them (keeping slice and map capacities).
func (f *fragment) init(acc *access, iv regions.Interval) {
	f.acc, f.iv = acc, iv
	f.state.Set(iv, pieceState{})
}

// resetForPool clears the fragment for reuse. Stale outgoing links are
// dropped here; stale *incoming* links (this fragment as a target in some
// predecessor's succs/waiter list) are safe to leave behind because a
// fully released fragment has, by the pending-grant invariant, already
// received every grant any link will ever deliver — the intersection test
// in the link-firing loops can never select it again (see the memory
// lifecycle section of docs/ARCHITECTURE.md).
func (f *fragment) resetForPool() {
	f.acc = nil
	f.iv = regions.Interval{}
	f.state.Reset()
	f.relLen = 0
	clear(f.succs)
	f.succs = f.succs[:0]
	clear(f.rWaiters)
	f.rWaiters = f.rWaiters[:0]
	clear(f.wWaiters)
	f.wWaiters = f.wWaiters[:0]
}

func (f *fragment) data() DataID    { return f.acc.spec.Data }
func (f *fragment) typ() AccessType { return f.acc.spec.Type }
func (f *fragment) weak() bool      { return f.acc.spec.Weak }
func (f *fragment) node() *Node     { return f.acc.node }

// fragList is a pooled holder of a domain cell's reader or reduction-group
// history. Cells used to carry bare slices, which interval-map splits
// cloned and linkCell appends grew — one heap allocation per split and per
// growth, and the dominant remaining allocation in deep-nesting weakwait
// cascades once the other lifecycle objects pool. Lists obey a
// nil-on-empty invariant: the moment a cell's history empties (a scrub
// removed the last fragment, or a writer dissolved the history) the list
// is returned to its pool and the cell's field set to nil, so cells
// dropped by merges never strand a list and the engine's leak accounting
// stays exact.
type fragList struct {
	s []*fragment
}

// frags returns the fragments of a possibly-nil list.
func (l *fragList) frags() []*fragment {
	if l == nil {
		return nil
	}
	return l.s
}

// empty reports whether the list holds no fragments.
func (l *fragList) empty() bool { return l == nil || len(l.s) == 0 }

// resetForPool clears the list for reuse, keeping its capacity.
func (l *fragList) resetForPool() {
	clear(l.s)
	l.s = l.s[:0]
}

// cellState is the per-interval state of a dependency domain: the access
// history needed to link new sibling accesses, the live-registration count
// used to detect drain, and the hand-over target for fine-grained release.
// It is split by value copy; only the reader/reduction lists need cloning
// (through the engine's pools in the pooled memory mode).
type cellState struct {
	// written is true once any writer (or reduction) has registered over
	// the cell, even if it has since released. A cell that was never
	// written links new accesses inbound through the domain owner's own
	// access (§VI).
	written    bool
	lastWriter *fragment
	// readers is the cell's live reader history (nil when empty).
	readers *fragList
	// reds is the current reduction group: reduction accesses since the
	// last reader/writer event (nil when empty). Members carry no mutual
	// ordering; a subsequent reader or writer orders after all of them,
	// and a writer dissolves the group.
	reds *fragList
	// liveCount is the number of unreleased fragment pieces registered over
	// this cell. When it reaches zero and a hand-over is pending, the
	// domain owner's corresponding access piece releases (§V).
	liveCount int32
	// handover, when set, is the domain owner's fragment whose piece over
	// this cell is waiting for the cell to drain.
	handover *fragment
}

// cloneCell is the reference-mode cell clone: history lists are duplicated
// with plain allocations (pooled engines use enginePools.cloneCellFn).
func cloneCell(c cellState) cellState {
	c.readers = cloneListRef(c.readers)
	c.reds = cloneListRef(c.reds)
	return c
}

func cloneListRef(l *fragList) *fragList {
	if l.empty() {
		return nil
	}
	return &fragList{s: slices.Clone(l.s)}
}

// removeFrag deletes f from s in place (a fragment registers at most once
// per cell, so at most one occurrence exists).
func removeFrag(s []*fragment, f *fragment) []*fragment {
	for i, x := range s {
		if x == f {
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			return s[:last]
		}
	}
	return s
}
