package deps

import (
	"slices"

	"repro/internal/regions"
)

// access is one registered Spec of a node.
type access struct {
	node  *Node
	spec  Spec
	frags []*fragment
}

// fragment is the unit of dependency tracking: one contiguous interval of
// one access. Per-subinterval state lives in a fragmenting map of pieceState
// values, so partially overlapping later accesses, partial releases
// (weakwait hand-over, release directive) and partial satisfaction all
// fragment the state in place with no structural fix-ups.
type fragment struct {
	acc   *access
	iv    regions.Interval
	state *regions.Map[pieceState]

	// relLen is the total released element length; the fragment is fully
	// released (and leaves the engine's live count) when it reaches
	// iv.Len().
	relLen int64

	// succs are same-domain successor links created at the successors'
	// registration: when a piece of this fragment releases, every link
	// overlapping it grants (dR, dW) to the target over the overlap.
	succs []link

	// rWaiters/wWaiters are inbound links from child fragments (fragments
	// of tasks nested inside this fragment's owner) waiting for this
	// fragment's read/write satisfaction over their interval. This is the
	// linking-point role of weak accesses (§VI).
	rWaiters []link
	wWaiters []link
}

// pieceState is the per-subinterval state of a fragment. It is a pure value
// type: splitting an interval entry duplicates it verbatim, which is
// semantically correct for every field (counters and flags apply uniformly
// across the piece).
type pieceState struct {
	// pendR counts outstanding grants required for read satisfaction
	// (prior writers, transitively through weak parents). pendW counts the
	// grants required for write satisfaction (prior writers and readers).
	pendR, pendW int32
	// done marks that the owner task reached this piece's completion point:
	// full completion, weakwait body exit, or a release directive.
	done bool
	// waitDrain marks a piece handed over at weakwait: it releases when the
	// covering child accesses drain from the inner domain.
	waitDrain bool
	released  bool
}

// rSat reports read satisfaction of the piece.
func (ps pieceState) rSat() bool { return ps.pendR == 0 }

// wSat reports write satisfaction of the piece.
func (ps pieceState) wSat() bool { return ps.pendW == 0 }

// typeSat reports the satisfaction relevant for the fragment's own access
// type: readers only need read satisfaction; writers (including
// reductions, which write) need exclusivity against everything before
// their group.
func (ps pieceState) typeSat(t AccessType) bool {
	if t == In {
		return ps.rSat()
	}
	return ps.wSat()
}

// link records a dependency edge over an explicit interval. Used both for
// same-domain successor links (release → grant) and for inbound waiter
// links (satisfaction → grant).
type link struct {
	target *fragment
	iv     regions.Interval
	dR, dW int32
}

func newFragment(acc *access, iv regions.Interval) *fragment {
	f := &fragment{acc: acc, iv: iv, state: regions.NewMap[pieceState](nil)}
	f.state.Set(iv, pieceState{})
	return f
}

func (f *fragment) data() DataID    { return f.acc.spec.Data }
func (f *fragment) typ() AccessType { return f.acc.spec.Type }
func (f *fragment) weak() bool      { return f.acc.spec.Weak }
func (f *fragment) node() *Node     { return f.acc.node }

// cellState is the per-interval state of a dependency domain: the access
// history needed to link new sibling accesses, the live-registration count
// used to detect drain, and the hand-over target for fine-grained release.
// It is split by value copy; only the readers slice needs cloning.
type cellState struct {
	// written is true once any writer (or reduction) has registered over
	// the cell, even if it has since released. A cell that was never
	// written links new accesses inbound through the domain owner's own
	// access (§VI).
	written    bool
	lastWriter *fragment
	readers    []*fragment
	// reds is the current reduction group: reduction accesses since the
	// last reader/writer event. Members carry no mutual ordering; a
	// subsequent reader or writer orders after all of them, and a writer
	// dissolves the group.
	reds []*fragment
	// liveCount is the number of unreleased fragment pieces registered over
	// this cell. When it reaches zero and a hand-over is pending, the
	// domain owner's corresponding access piece releases (§V).
	liveCount int32
	// handover, when set, is the domain owner's fragment whose piece over
	// this cell is waiting for the cell to drain.
	handover *fragment
}

func cloneCell(c cellState) cellState {
	c.readers = slices.Clone(c.readers)
	c.reds = slices.Clone(c.reds)
	return c
}
