package deps

import (
	"testing"

	"repro/internal/regions"
)

// Edge cases and failure-injection tests for the dependency engine.

// TestWeakwaitNoChildren: a weakwait task that created no children releases
// everything at body end.
func TestWeakwaitNoChildren(t *testing.T) {
	s := newSim(t, u(4))
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 4))}, weakwait: true}
	r := &simTask{label: "R", specs: []Spec{in(regions.Iv(0, 4))}}
	s.start([]*simTask{w, r})
	s.step("W")
	if !s.isReady("R") {
		t.Fatal("weakwait with no children must release at body end")
	}
	s.finish()
}

// TestWeakAccessNeverTouched: a weak access whose region no child ever
// uses must still forward ordering to successors (release on satisfaction).
func TestWeakAccessNeverTouched(t *testing.T) {
	s := newSim(t, u(8))
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 8))}}
	// P covers [0,8) weakly but its child only touches [0,4).
	c := &simTask{label: "C", specs: []Spec{inout(regions.Iv(0, 4))}}
	p := &simTask{label: "P", specs: []Spec{weakinout(regions.Iv(0, 8))}, weakwait: true, children: []*simTask{c}}
	r := &simTask{label: "R", specs: []Spec{in(regions.Iv(4, 8))}}
	s.start([]*simTask{w, p, r})
	if !s.isReady("P") {
		t.Fatal("weak task should be ready")
	}
	s.step("P")
	// The untouched piece [4,8) of P's weak access is done (weakwait) but
	// unsatisfied: W has not run. R must NOT be ready.
	if s.isReady("R") {
		t.Fatal("R must wait for W through P's weak access")
	}
	s.step("W")
	if !s.isReady("R") {
		t.Fatal("W's release should flow through P's released weak piece to R")
	}
	s.finish()
}

// TestReleaseUnknownData: releasing a region of data the task never
// declared is a no-op.
func TestReleaseUnknownData(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	n := e.NewNode(root, "n", nil)
	e.Register(n, []Spec{inout(regions.Iv(0, 4))})
	// Unknown data id and unknown region: both no-ops.
	e.ReleaseRegions(n, []Spec{{Data: 99, Ivs: []regions.Interval{regions.Iv(0, 4)}}})
	e.ReleaseRegions(n, []Spec{{Data: d0, Ivs: []regions.Interval{regions.Iv(100, 200)}}})
	e.Complete(n)
}

// TestReleaseTwiceIdempotent: releasing the same region twice must not
// double-release.
func TestReleaseTwiceIdempotent(t *testing.T) {
	s := newSim(t, u(8))
	t1 := &simTask{label: "T1", specs: []Spec{inout(regions.Iv(0, 8))},
		releaseAfter: []Spec{inout(regions.Iv(0, 8))}}
	t2 := &simTask{label: "T2", specs: []Spec{in(regions.Iv(0, 8))}}
	s.start([]*simTask{t1, t2})
	s.step("T1")
	if !s.isReady("T2") {
		t.Fatal("T2 should be ready after release")
	}
	// Second release (the region is gone from the access map): no-op.
	s.eng.ReleaseRegions(s.nodes[findNode(s, "T1")].node, []Spec{inout(regions.Iv(0, 8))})
	s.finish()
}

func findNode(s *sim, label string) *Node {
	for n, sn := range s.nodes {
		if sn.def.label == label {
			return n
		}
	}
	return nil
}

// TestPartialCoverChildren: children covering only parts of the parent's
// weak access; the uncovered middle releases at body end, covered flanks
// hand over.
func TestPartialCoverChildren(t *testing.T) {
	s := newSim(t, u(12))
	cl := &simTask{label: "CL", specs: []Spec{inout(regions.Iv(0, 4))}}
	cr := &simTask{label: "CR", specs: []Spec{inout(regions.Iv(8, 12))}}
	p := &simTask{label: "P", specs: []Spec{weakinout(regions.Iv(0, 12))}, weakwait: true,
		children: []*simTask{cl, cr}}
	rm := &simTask{label: "RM", specs: []Spec{in(regions.Iv(4, 8))}}  // middle: only P
	rl := &simTask{label: "RL", specs: []Spec{in(regions.Iv(0, 4))}}  // left: CL
	rr := &simTask{label: "RR", specs: []Spec{in(regions.Iv(8, 12))}} // right: CR
	s.start([]*simTask{p, rm, rl, rr})
	s.step("P")
	if !s.isReady("RM") {
		t.Fatal("middle region released at weakwait (no covering child)")
	}
	if s.isReady("RL") || s.isReady("RR") {
		t.Fatal("flank regions are handed over to live children")
	}
	s.step("CL")
	if !s.isReady("RL") || s.isReady("RR") {
		t.Fatal("left released by CL; right still held by CR")
	}
	s.step("CR")
	if !s.isReady("RR") {
		t.Fatal("right released by CR")
	}
	s.finish()
}

// TestSiblingsAfterWeakwaitHandover: once handed over, later accesses in
// the outer domain fragment against the handed-over pieces correctly.
func TestSiblingsAfterWeakwaitHandover(t *testing.T) {
	s := newSim(t, u(8))
	c := &simTask{label: "C", specs: []Spec{inout(regions.Iv(0, 8))}}
	p := &simTask{label: "P", specs: []Spec{weakinout(regions.Iv(0, 8))}, weakwait: true,
		children: []*simTask{c}}
	// Two successors over different halves: both wait for C (it covers
	// everything), and both become ready exactly when C completes.
	r1 := &simTask{label: "R1", specs: []Spec{in(regions.Iv(0, 4))}}
	r2 := &simTask{label: "R2", specs: []Spec{inout(regions.Iv(4, 8))}}
	s.start([]*simTask{p, r1, r2})
	s.step("P")
	if s.isReady("R1") || s.isReady("R2") {
		t.Fatal("successors must wait for the covering child")
	}
	s.step("C")
	if !s.isReady("R1") || !s.isReady("R2") {
		t.Fatal("both successors ready after the child released")
	}
	s.finish()
}

// TestEmptyIntervalSpecsIgnored: empty intervals in a spec are skipped.
func TestEmptyIntervalSpecsIgnored(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	n := e.NewNode(root, "n", nil)
	ready := e.Register(n, []Spec{{Data: d0, Type: InOut, Ivs: []regions.Interval{regions.Iv(5, 5), regions.Iv(7, 3)}}})
	if !ready {
		t.Fatal("task with only empty intervals must be ready")
	}
	if st := e.Stats(); st.Fragments != 0 {
		t.Fatalf("no fragments expected, got %d", st.Fragments)
	}
}

// TestDoubleRegisterPanics: registering a node twice is an engine-use bug.
func TestDoubleRegisterPanics(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	n := e.NewNode(root, "n", nil)
	e.Register(n, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(n, nil)
}

// TestRootWithSpecsPanics: the root cannot have dependencies.
func TestRootWithSpecsPanics(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(root, []Spec{inout(regions.Iv(0, 1))})
}

// TestLongWeakChain: a 40-deep nesting chain of weakwait tasks propagates
// satisfaction and release through every level.
func TestLongWeakChain(t *testing.T) {
	const depth = 40
	r := regions.Iv(0, 4)
	leaf := &simTask{label: "leaf", specs: []Spec{inout(r)}}
	node := leaf
	for i := 0; i < depth; i++ {
		node = &simTask{
			label:    labelN("n", i),
			specs:    []Spec{weakinout(r)},
			weakwait: true,
			children: []*simTask{node},
		}
	}
	w := &simTask{label: "W", specs: []Spec{inout(r)}}
	after := &simTask{label: "A", specs: []Spec{in(r)}}
	s := newSim(t, u(4))
	s.start([]*simTask{w, node, after})
	// Walk down the chain: every level is immediately ready (weak).
	for i := depth - 1; i >= 0; i-- {
		s.step(labelN("n", i))
	}
	if s.isReady("leaf") {
		t.Fatal("leaf must wait for W through the whole chain")
	}
	s.step("W")
	if !s.isReady("leaf") {
		t.Fatal("satisfaction must traverse the 40-level weak chain")
	}
	s.step("leaf")
	if !s.isReady("A") {
		t.Fatal("release must traverse the 40-level hand-over chain")
	}
	s.finish()
}

func labelN(p string, i int) string {
	return p + string(rune('A'+i/26)) + string(rune('a'+i%26))
}

// TestManyFragments: heavy fragmentation (staircase of overlapping
// accesses) keeps invariants and ordering.
func TestManyFragments(t *testing.T) {
	var tasks []*simTask
	// Writers at offsets 0,3,6,... each covering 8 elements: every new
	// access splits the previous ones.
	for i := int64(0); i+8 <= 40; i += 3 {
		tasks = append(tasks, &simTask{
			label: labelN("w", int(i)),
			specs: []Spec{inout(regions.Iv(i, i+8))},
		})
	}
	tasks = append(tasks, &simTask{label: "R", specs: []Spec{in(regions.Iv(0, 40))}})
	for seed := int64(0); seed < 10; seed++ {
		s := newSim(t, u(40))
		s.runRandom(tasks, seed)
	}
}

// TestInterleavedWeakStrongSiblings: a weak cover and strong siblings over
// the same region in one domain.
func TestInterleavedWeakStrongSiblings(t *testing.T) {
	s := newSim(t, u(8))
	c := &simTask{label: "C", specs: []Spec{inout(regions.Iv(0, 8))}}
	p := &simTask{label: "P", specs: []Spec{weakinout(regions.Iv(0, 8))}, weakwait: true, children: []*simTask{c}}
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 8))}}
	p2c := &simTask{label: "C2", specs: []Spec{in(regions.Iv(0, 8))}}
	p2 := &simTask{label: "P2", specs: []Spec{weakin(regions.Iv(0, 8))}, weakwait: true, children: []*simTask{p2c}}
	s.start([]*simTask{p, w, p2})
	s.step("P")
	s.step("P2") // instantiates C2, which waits for W through P2
	if s.isReady("W") {
		t.Fatal("W must wait for P's subtree (C)")
	}
	s.step("C")
	if !s.isReady("W") {
		t.Fatal("W ready after C released through P's hand-over")
	}
	if s.isReady("C2") {
		t.Fatal("C2 must wait for W")
	}
	s.step("W")
	if !s.isReady("C2") {
		t.Fatal("C2 ready after W")
	}
	s.finish()
}
