package deps

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regions"
)

func red(ivs ...regions.Interval) Spec { return Spec{Data: d0, Type: Red, Ivs: ivs} }
func weakred(ivs ...regions.Interval) Spec {
	return Spec{Data: d0, Type: Red, Weak: true, Ivs: ivs}
}

// TestReductionGroupCommutes: members of a reduction group are all ready
// at once (no mutual ordering), unlike inout accesses.
func TestReductionGroupCommutes(t *testing.T) {
	s := newSim(t, u(4))
	w := &simTask{label: "W", specs: []Spec{out(regions.Iv(0, 4))}}
	r1 := &simTask{label: "R1", specs: []Spec{red(regions.Iv(0, 4))}}
	r2 := &simTask{label: "R2", specs: []Spec{red(regions.Iv(0, 4))}}
	r3 := &simTask{label: "R3", specs: []Spec{red(regions.Iv(0, 4))}}
	s.start([]*simTask{w, r1, r2, r3})
	if s.isReady("R1") || s.isReady("R2") {
		t.Fatal("reductions must wait for the prior writer")
	}
	s.step("W")
	for _, l := range []string{"R1", "R2", "R3"} {
		if !s.isReady(l) {
			t.Fatalf("%s should be ready: group members commute; ready=%v", l, s.readyLabels())
		}
	}
	// Any completion order works; the harness checks the final value.
	s.step("R2")
	s.step("R3")
	s.step("R1")
	s.finish()
}

// TestReaderAfterReductionGroup: a reader waits for every group member.
func TestReaderAfterReductionGroup(t *testing.T) {
	s := newSim(t, u(4))
	r1 := &simTask{label: "R1", specs: []Spec{red(regions.Iv(0, 4))}}
	r2 := &simTask{label: "R2", specs: []Spec{red(regions.Iv(0, 4))}}
	rd := &simTask{label: "read", specs: []Spec{in(regions.Iv(0, 4))}}
	s.start([]*simTask{r1, r2, rd})
	s.step("R1")
	if s.isReady("read") {
		t.Fatal("reader must wait for the whole group")
	}
	s.step("R2")
	if !s.isReady("read") {
		t.Fatal("reader ready once the group drained")
	}
	s.finish()
}

// TestWriterAfterReductionGroup: a writer dissolves the group and waits for
// all members.
func TestWriterAfterReductionGroup(t *testing.T) {
	s := newSim(t, u(4))
	r1 := &simTask{label: "R1", specs: []Spec{red(regions.Iv(0, 4))}}
	r2 := &simTask{label: "R2", specs: []Spec{red(regions.Iv(0, 4))}}
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 4))}}
	r3 := &simTask{label: "R3", specs: []Spec{red(regions.Iv(0, 4))}} // new group
	s.start([]*simTask{r1, r2, w, r3})
	s.step("R2")
	if s.isReady("W") {
		t.Fatal("writer must wait for R1 too")
	}
	s.step("R1")
	if !s.isReady("W") {
		t.Fatal("writer ready after the group")
	}
	if s.isReady("R3") {
		t.Fatal("a reduction after the writer starts a new group ordered after it")
	}
	s.step("W")
	if !s.isReady("R3") {
		t.Fatal("new group ready after the writer")
	}
	s.finish()
}

// TestReductionPartialOverlap: group membership is per-region — a
// reduction overlapping the group only partially is still concurrent on
// the overlap but ordered on the writer history of the rest.
func TestReductionPartialOverlap(t *testing.T) {
	s := newSim(t, u(8))
	w := &simTask{label: "W", specs: []Spec{out(regions.Iv(4, 8))}}
	r1 := &simTask{label: "R1", specs: []Spec{red(regions.Iv(0, 4))}}
	r2 := &simTask{label: "R2", specs: []Spec{red(regions.Iv(2, 8))}} // overlaps r1 and W's region
	s.start([]*simTask{w, r1, r2})
	if !s.isReady("R1") {
		t.Fatal("R1 is disjoint from W and must be ready immediately")
	}
	if s.isReady("R2") {
		t.Fatal("R2 overlaps W's output and must wait for it")
	}
	s.step("W")
	if !s.isReady("R2") {
		t.Fatal("R2 ready after W; commutes with R1 on the overlap")
	}
	s.finish()
}

// TestNestedReductionUnderWeak: reduction subtasks under a weak reduction
// cover, with weakwait — reductions integrate with the nesting extensions.
func TestNestedReductionUnderWeak(t *testing.T) {
	s := newSim(t, u(4))
	w := &simTask{label: "W", specs: []Spec{out(regions.Iv(0, 4))}}
	k1 := &simTask{label: "K1", specs: []Spec{red(regions.Iv(0, 4))}}
	k2 := &simTask{label: "K2", specs: []Spec{red(regions.Iv(0, 4))}}
	p := &simTask{label: "P", specs: []Spec{weakred(regions.Iv(0, 4))}, weakwait: true,
		children: []*simTask{k1, k2}}
	after := &simTask{label: "A", specs: []Spec{in(regions.Iv(0, 4))}}
	s.start([]*simTask{w, p, after})
	if !s.isReady("P") {
		t.Fatal("weak reduction cover must not defer P")
	}
	s.step("P")
	if s.isReady("K1") || s.isReady("K2") {
		t.Fatal("nested reductions must wait for W through the weak cover")
	}
	s.step("W")
	if !s.isReady("K1") || !s.isReady("K2") {
		t.Fatal("both nested reductions ready after W (commuting)")
	}
	s.step("K1")
	if s.isReady("A") {
		t.Fatal("reader must wait for the whole nested group")
	}
	s.step("K2")
	if !s.isReady("A") {
		t.Fatal("reader ready once the nested group drained through the hand-over")
	}
	s.finish()
}

// TestTwoWeakReductionSiblings: two weak-covered reduction subtrees over
// the same region commute with each other across nesting levels.
func TestTwoWeakReductionSiblings(t *testing.T) {
	s := newSim(t, u(4))
	mk := func(name string) *simTask {
		leaf := &simTask{label: name + ".leaf", specs: []Spec{red(regions.Iv(0, 4))}}
		return &simTask{label: name, specs: []Spec{weakred(regions.Iv(0, 4))}, weakwait: true,
			children: []*simTask{leaf}}
	}
	p1, p2 := mk("P1"), mk("P2")
	after := &simTask{label: "A", specs: []Spec{in(regions.Iv(0, 4))}}
	s.start([]*simTask{p1, p2, after})
	s.step("P1")
	s.step("P2")
	if !s.isReady("P1.leaf") || !s.isReady("P2.leaf") {
		t.Fatalf("leaves of both reduction subtrees must be concurrent; ready=%v", s.readyLabels())
	}
	s.step("P2.leaf")
	if s.isReady("A") {
		t.Fatal("reader waits for both subtrees")
	}
	s.step("P1.leaf")
	if !s.isReady("A") {
		t.Fatal("reader ready once both reduction subtrees drained")
	}
	s.finish()
}

// TestQuickReductionPrograms: random programs mixing writers, readers and
// reduction groups stay serializable (reductions modelled as commutative
// increments in the harness).
func TestQuickReductionPrograms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		var tasks []*simTask
		for i := 0; i < n; i++ {
			lo := int64(rng.Intn(40))
			hi := lo + 1 + rng.Int63n(8)
			if hi > 48 {
				hi = 48
			}
			var spec Spec
			switch rng.Intn(4) {
			case 0:
				spec = inout(regions.Iv(lo, hi))
			case 1:
				spec = in(regions.Iv(lo, hi))
			default: // bias towards reductions
				spec = red(regions.Iv(lo, hi))
			}
			tasks = append(tasks, &simTask{label: fmt.Sprintf("t%d", i), specs: []Spec{spec}})
		}
		for order := 0; order < 4; order++ {
			s := newSim(t, u(48))
			s.runRandom(tasks, seed*13+int64(order))
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(55))}); err != nil {
		t.Fatal(err)
	}
}
