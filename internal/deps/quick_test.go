package deps

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regions"
)

// Random-program property tests: any engine-admissible execution order of a
// randomly generated task program must be serializable to the sequential
// pre-order execution (every strong read observes the sequential value, the
// final state matches, and no task is lost or deadlocked). This covers flat
// programs, nested programs with weak accesses and weakwait, mixed modes,
// release directives, and three-level nesting.

const quickUniverse = 48

// genDisjoint returns up to maxIvs disjoint intervals inside the universe.
func genDisjoint(rng *rand.Rand, maxIvs, maxLen int) []regions.Interval {
	n := 1 + rng.Intn(maxIvs)
	var out []regions.Interval
	set := NewSetHelper()
	for i := 0; i < n; i++ {
		for try := 0; try < 8; try++ {
			lo := int64(rng.Intn(quickUniverse))
			ln := int64(1 + rng.Intn(maxLen))
			iv := regions.Iv(lo, min64(lo+ln, quickUniverse))
			if iv.Empty() || set.Overlaps(iv) {
				continue
			}
			set.Add(iv)
			out = append(out, iv)
			break
		}
	}
	return out
}

// NewSetHelper exists to keep the test readable.
func NewSetHelper() *regions.Set { return regions.NewSet() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func randType(rng *rand.Rand) AccessType {
	switch rng.Intn(3) {
	case 0:
		return In
	case 1:
		return Out
	default:
		return InOut
	}
}

// genFlat generates a flat program of strong-access tasks.
func genFlat(rng *rand.Rand) []*simTask {
	n := 4 + rng.Intn(16)
	tasks := make([]*simTask, 0, n)
	for i := 0; i < n; i++ {
		ivs := genDisjoint(rng, 3, 8)
		var specs []Spec
		for _, iv := range ivs {
			specs = append(specs, Spec{Data: d0, Type: randType(rng), Ivs: []regions.Interval{iv}})
		}
		tasks = append(tasks, &simTask{label: fmt.Sprintf("t%d", i), specs: specs})
	}
	return tasks
}

// genNested generates a program of nested tasks: each top-level task covers
// a region (weakly or strongly) and spawns children whose strong accesses
// stay inside the cover. With depth > 1, some children are themselves
// nesting tasks.
func genNested(rng *rand.Rand, depth int) []*simTask {
	n := 2 + rng.Intn(5)
	tasks := make([]*simTask, 0, n)
	id := 0
	var gen func(cover regions.Interval, depth int, prefix string) *simTask
	gen = func(cover regions.Interval, depth int, prefix string) *simTask {
		id++
		label := fmt.Sprintf("%s%d", prefix, id)
		weak := rng.Intn(10) < 7
		mode := rng.Intn(10) < 7 // weakwait with prob 0.7
		t := &simTask{
			label:    label,
			specs:    []Spec{{Data: d0, Type: InOut, Weak: weak, Ivs: []regions.Interval{cover}}},
			weakwait: mode,
		}
		nKids := 1 + rng.Intn(3)
		for k := 0; k < nKids; k++ {
			// Child sub-interval of the cover.
			if cover.Len() < 2 {
				break
			}
			lo := cover.Lo + rng.Int63n(cover.Len())
			hi := lo + 1 + rng.Int63n(cover.Hi-lo)
			sub := regions.Iv(lo, hi)
			if depth > 1 && sub.Len() >= 4 && rng.Intn(3) == 0 {
				t.children = append(t.children, gen(sub, depth-1, prefix))
			} else {
				id++
				typ := randType(rng)
				t.children = append(t.children, &simTask{
					label: fmt.Sprintf("%sL%d", prefix, id),
					specs: []Spec{{Data: d0, Type: typ, Ivs: []regions.Interval{sub}}},
				})
			}
		}
		// Occasionally release the cover early (after child creation).
		if rng.Intn(4) == 0 {
			t.releaseAfter = []Spec{{Data: d0, Ivs: []regions.Interval{cover}}}
		}
		return t
	}
	for i := 0; i < n; i++ {
		lo := int64(rng.Intn(quickUniverse - 8))
		ln := int64(6 + rng.Intn(16))
		cover := regions.Iv(lo, min64(lo+ln, quickUniverse))
		tasks = append(tasks, gen(cover, depth, fmt.Sprintf("n%d.", i)))
	}
	return tasks
}

func TestQuickFlatSerializable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genFlat(rng)
		for order := 0; order < 4; order++ {
			s := newSim(t, u(quickUniverse))
			s.runRandom(prog, seed*31+int64(order))
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNestedWeakSerializable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genNested(rng, 1)
		for order := 0; order < 4; order++ {
			s := newSim(t, u(quickUniverse))
			s.runRandom(prog, seed*37+int64(order))
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeepNestingSerializable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genNested(rng, 3)
		for order := 0; order < 3; order++ {
			s := newSim(t, u(quickUniverse))
			s.runRandom(prog, seed*41+int64(order))
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMixedFlatNested mixes flat strong tasks and nested weak tasks in
// one program, which exercises cross-level links in both directions.
func TestQuickMixedFlatNested(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var prog []*simTask
		flat := genFlat(rng)
		nested := genNested(rng, 2)
		for i := 0; i < len(flat) || i < len(nested); i++ {
			if i < len(flat) {
				prog = append(prog, flat[i])
			}
			if i < len(nested) {
				prog = append(prog, nested[i])
			}
		}
		for order := 0; order < 3; order++ {
			s := newSim(t, u(quickUniverse))
			s.runRandom(prog, seed*43+int64(order))
			if t.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineQuiescent: after a full run every fragment piece must have
// been released exactly once (releases == total pieces is not directly
// observable, but releases must be >= fragments and the ready queue empty).
func TestQuickEngineQuiescent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		prog := genNested(rng, 2)
		s := newSim(t, u(quickUniverse))
		s.runRandom(prog, int64(i))
		st := s.eng.Stats()
		if st.Releases < st.Fragments {
			t.Fatalf("run %d: %d fragments but only %d releases (leaked pieces)", i, st.Fragments, st.Releases)
		}
	}
}
