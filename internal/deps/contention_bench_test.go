package deps

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// Engine contention benchmarks: w worker goroutines drive independent
// register → complete → grant chains through one engine. Under the
// disjoint workload every worker owns its own data object, so the sharded
// engine gives each worker a private lock while the global engine
// serializes all of them behind one mutex — the contention pathology this
// benchmark quantifies. The shared workload puts every worker on the same
// data object (one hot shard), which bounds the sharded engine's worst
// case.
//
// GOMAXPROCS is raised to the worker count for the duration, so the
// contention is real even on small hosts (oversubscribed OS threads
// convoying on one mutex is exactly the production pathology).

// benchChains runs b.N register+complete chain steps split over w
// goroutines; dataFor assigns each worker its data object. Completion goes
// through CompleteInto with a per-goroutine scratch buffer — the runtime's
// steady-state calling convention — so the allocs/op column isolates the
// engine's own allocation behavior (the memory modes differ by >10x here;
// TestMemPoolAllocGate enforces the ≥5x floor).
func benchChains(b *testing.B, kind EngineKind, mem mempool.Kind, w int, dataFor func(worker int) DataID) {
	prev := runtime.GOMAXPROCS(0)
	if w > prev {
		runtime.GOMAXPROCS(w)
		defer runtime.GOMAXPROCS(prev)
	}
	// Engine ops allocate (nodes, fragments, interval-map entries); on
	// small oversubscribed hosts the collector's own locks would otherwise
	// drown the engine locks this benchmark is about.
	defer debug.SetGCPercent(debug.SetGCPercent(1000))
	b.ReportAllocs()
	e := NewEngineMem(kind, nil, mem)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	// One generator parent per worker: chains of different workers are
	// fully independent, as if produced by parallel nesting tasks.
	parents := make([]*Node, w)
	for i := range parents {
		parents[i] = e.NewNode(root, fmt.Sprintf("gen%d", i), nil)
		e.Register(parents[i], nil)
	}
	perW := (b.N + w - 1) / w
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := dataFor(i)
			ivs := []regions.Interval{regions.Iv(int64(i)*64, int64(i)*64+64)}
			spec := []Spec{{Data: data, Type: InOut, Ivs: ivs}}
			buf := make([]*Node, 0, 4)
			var prev *Node
			for n := 0; n < perW; n++ {
				nd := e.NewNode(parents[i], "t", nil)
				e.Register(nd, spec)
				if prev != nil {
					e.CompleteInto(prev, buf[:0]) // releases, granting readiness to nd
				}
				prev = nd
			}
			if prev != nil {
				e.CompleteInto(prev, buf[:0])
			}
		}(i)
	}
	wg.Wait()
}

// benchMems is the memory-mode dimension of the contention benchmarks:
// the allocate-always reference and the pooled free lists.
var benchMems = []struct {
	name string
	mem  mempool.Kind
}{
	{"", mempool.KindReference}, // bare name: comparable with historical runs
	{"pool", mempool.KindPooled},
}

// BenchmarkSubmitDisjoint: every worker registers and releases over its
// own data object — the embarrassingly-shardable case the sharded engine
// is built for. The */pool variants recycle through the mempool free
// lists; compare the allocs/op column against the bare variants.
func BenchmarkSubmitDisjoint(b *testing.B) {
	for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
		for _, m := range benchMems {
			name := kind.String() + m.name
			if m.name != "" {
				name = kind.String() + "-" + m.name
			}
			for _, w := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/w=%d", name, w), func(b *testing.B) {
					benchChains(b, kind, m.mem, w, func(worker int) DataID { return DataID(worker) })
				})
			}
		}
	}
}

// BenchmarkSubmitShared: every worker hammers the same data object (the
// intervals stay disjoint, so no cross-worker dependencies form — only
// lock contention differs). One hot shard degenerates the sharded engine
// to a global lock; this bounds its overhead in the worst case.
func BenchmarkSubmitShared(b *testing.B) {
	for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/w=%d", kind, w), func(b *testing.B) {
				benchChains(b, kind, mempool.KindReference, w, func(int) DataID { return 0 })
			})
		}
	}
}
