package deps

import (
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// ShardedEngine partitions the dependency engine per data object: every
// DataID owns a shard with its own mutex, interval maps (reached through
// the nodes' per-data access and domain maps), cascade event queue, and
// activity counters. Tasks whose depend clauses touch disjoint data
// register, fragment, and release fully concurrently — the contention
// pathology of a single engine-wide lock (every submit and every release
// serialized, no matter how unrelated) disappears.
//
// Sharding per data is sound because every dependency structure and every
// cascade event is confined to one DataID:
//
//   - same-domain successor links connect fragments of the same data;
//   - inbound waiter links connect a child fragment to the parent's access
//     over the same data;
//   - domain cells, hand-over targets, and drain events belong to the data
//     whose accesses cover them.
//
// The only state shared across shards is per-node: the readiness countdown
// (unsat) and its one-shot ready election (notified), both atomics, so a
// node whose depend clause spans several data objects becomes ready the
// moment the last shard delivers its last grant — with no lock common to
// the shards involved. A registration hold (+1 on the countdown for the
// duration of Register) keeps the node from becoming ready while later
// entries of a multi-object clause are still linking. In the pooled memory
// mode the node's pin countdown is a third cross-shard atomic: fragments
// releasing under different shard locks all unpin the same node, and the
// transition to zero elects the one recycler.
//
// Multi-object operations (Register, BodyDone, ReleaseRegions, Complete)
// visit the shards of their specs in canonical ascending-DataID order, one
// at a time — no shard lock is ever held while acquiring another, so the
// engine is trivially deadlock-free.
type ShardedEngine struct {
	obs      Observer // wrapped: callbacks serialized across shards
	nodes    atomic.Int64
	ep       *enginePools // nil in the reference memory mode
	hookSlot atomic.Pointer[EdgeHook]

	// shards is a copy-on-write table indexed by DataID (data ids are
	// allocated densely from zero): the hot-path lookup is one atomic load
	// and an index, with no read lock to contend on. Growth (first touch
	// of a new data object) clones the table under mu and swaps it in.
	shards atomic.Pointer[[]*shard]
	mu     sync.Mutex
}

type shard struct {
	mu sync.Mutex
	c  depCore
}

var _ Engine = (*ShardedEngine)(nil)

// NewShardedEngine returns a per-data-object sharded engine with the
// reference (allocate-always) memory mode. obs may be nil; callbacks are
// serialized, so observers written for the global engine work unchanged.
func NewShardedEngine(obs Observer) *ShardedEngine {
	return newShardedEngine(obs, false)
}

func newShardedEngine(obs Observer, pooled bool) *ShardedEngine {
	e := &ShardedEngine{obs: wrapObserver(obs)}
	if pooled {
		e.ep = newEnginePools()
	}
	e.shards.Store(new([]*shard))
	return e
}

// shardFor returns the shard owning data, creating it on first use.
func (e *ShardedEngine) shardFor(data DataID) *shard {
	if t := *e.shards.Load(); int(data) < len(t) {
		if sh := t[data]; sh != nil {
			return sh
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	t := *e.shards.Load()
	if int(data) >= len(t) {
		grown := make([]*shard, data+1)
		copy(grown, t)
		t = grown
	} else {
		t = append([]*shard(nil), t...)
	}
	sh := t[data]
	if sh == nil {
		sh = &shard{}
		sh.c.obs = e.obs
		sh.c.hook = &e.hookSlot
		if e.ep != nil {
			sh.c.mem = newDepMem(e.ep, int(data))
		}
		t[data] = sh
	}
	e.shards.Store(&t)
	return sh
}

// allShards snapshots the shard table for the aggregate accessors.
func (e *ShardedEngine) allShards() []*shard {
	return *e.shards.Load()
}

// SetEdgeHook installs (or, with nil, uninstalls) the edge-export hook;
// see the Engine contract. The hook fires under the shard lock of the
// edge's data object, so edges of different data objects may be delivered
// concurrently.
func (e *ShardedEngine) SetEdgeHook(fn EdgeHook) {
	if fn == nil {
		e.hookSlot.Store(nil)
		return
	}
	e.hookSlot.Store(&fn)
}

// Stats returns a snapshot of the activity counters, aggregated over all
// shards.
func (e *ShardedEngine) Stats() Stats {
	st := Stats{Nodes: e.nodes.Load()}
	for _, sh := range e.allShards() {
		if sh == nil {
			continue
		}
		sh.mu.Lock()
		st.add(sh.c.stats)
		sh.mu.Unlock()
	}
	return st
}

// LiveFragments returns the number of fragments not yet fully released,
// summed over all shards.
func (e *ShardedEngine) LiveFragments() int64 {
	var live int64
	for _, sh := range e.allShards() {
		if sh == nil {
			continue
		}
		sh.mu.Lock()
		live += sh.c.liveFrags
		sh.mu.Unlock()
	}
	return live
}

// MemStats returns the engine's memory-pool counters; pooled=false (and
// zero counters) in the reference memory mode.
func (e *ShardedEngine) MemStats() (MemStats, bool) {
	if e.ep == nil {
		return MemStats{}, false
	}
	return e.ep.memStats(), true
}

// NewNode creates a node under parent (nil for the root node). No shard is
// involved: node identity is shard-free state. Pooled nodes come from a
// striped free list; the parent pointer is the lane hint — submitters
// under different parents (the parallel-instantiation case) then populate
// different lanes and their creation paths stay mutex-uncontended.
func (e *ShardedEngine) NewNode(parent *Node, label string, user any) *Node {
	e.nodes.Add(1)
	var n *Node
	if e.ep != nil {
		n = e.ep.newPooledNode(laneHint(parent), parent, label, user)
		if parent != nil {
			parent.pins.Add(1) // released when the child node is recycled
		}
	} else {
		n = newNode(parent, label, user)
	}
	if e.obs != nil {
		e.obs.NodeCreated(n, parent)
	}
	return n
}

// Register links the node's depend entries into its parent's domain, shard
// by shard in canonical DataID order, and reports whether the node is
// immediately ready. Registration only creates links and charges pending
// grants — it releases nothing — so each shard's section is self-contained
// and no lock spans two shards; the registration hold keeps concurrent
// grants from readying the node until every entry is linked.
func (e *ShardedEngine) Register(n *Node, specs []Spec) bool {
	checkRegister(n, specs)
	if oneData(specs) {
		n.data0[0] = specs[0].Data
		n.datas = n.data0[:]
	} else {
		n.datas = specDatas(specs)
	}
	for _, data := range n.datas {
		e.shardFor(data).locked(func(c *depCore) {
			for i := range specs {
				if specs[i].Data == data {
					c.registerSpec(n, specs[i])
				}
			}
		})
	}
	return finishRegister(n, e.obs)
}

// locked runs f on the shard's core under its mutex. The deferred unlock
// keeps the engine's diagnostic panics (overlapping depend entries,
// hand-over conflicts, counter underflows) recoverable: a caller that
// recovers must still be able to reach Stats/LiveFragments afterwards.
func (sh *shard) locked(f func(c *depCore)) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f(&sh.c)
}

// BodyDone implements the weakwait clause (§V): hand-over or release of
// every access piece, shard by shard. Each shard's cascade runs to
// quiescence under that shard's lock before the next shard is visited; the
// ready nodes collected across shards are returned together.
func (e *ShardedEngine) BodyDone(n *Node) []*Node {
	return e.BodyDoneInto(n, nil)
}

// BodyDoneInto implements the weakwait clause (§V), appending the nodes
// that became ready to out.
func (e *ShardedEngine) BodyDoneInto(n *Node, out []*Node) []*Node {
	for _, data := range n.datas {
		e.shardFor(data).locked(func(c *depCore) {
			for _, acc := range n.accesses {
				if acc.spec.Data != data {
					continue
				}
				for _, f := range acc.frags {
					c.handOverOrRelease(n, f, f.iv)
				}
			}
			c.drainQueue()
			out = c.appendReady(out)
		})
	}
	return out
}

// ReleaseRegions implements the release directive (§V), shard by shard in
// canonical DataID order.
func (e *ShardedEngine) ReleaseRegions(n *Node, specs []Spec) []*Node {
	return e.ReleaseRegionsInto(n, specs, nil)
}

// ReleaseRegionsInto implements the release directive (§V), appending the
// nodes that became ready to out.
func (e *ShardedEngine) ReleaseRegionsInto(n *Node, specs []Spec, out []*Node) []*Node {
	for _, data := range specDatas(specs) {
		e.shardFor(data).locked(func(c *depCore) {
			for i := range specs {
				if specs[i].Data == data {
					c.releaseSpec(n, specs[i])
				}
			}
			c.drainQueue()
			out = c.appendReady(out)
		})
	}
	return out
}

// Complete finalizes the node once its code and all descendants have
// finished, shard by shard. Under the pooled memory mode the node may be
// recycled before Complete returns; see the Engine contract.
func (e *ShardedEngine) Complete(n *Node) []*Node {
	return e.CompleteInto(n, nil)
}

// CompleteInto finalizes the node, appending the nodes that became ready
// to out.
func (e *ShardedEngine) CompleteInto(n *Node, out []*Node) []*Node {
	n.completed = true
	datas := n.datas
	for _, data := range datas {
		// Failpoint: interleave the per-shard completion visits of a
		// multi-object clause against concurrent registrations and other
		// completions over the same data.
		chaos.Maybe(chaos.DepsCascade)
		e.shardFor(data).locked(func(c *depCore) {
			for _, acc := range n.accesses {
				if acc.spec.Data != data {
					continue
				}
				for _, f := range acc.frags {
					c.markDone(f, f.iv)
				}
			}
			c.drainQueue()
			out = c.appendReady(out)
		})
	}
	if e.ep != nil {
		// Failpoint: delay the completion hold's pin release, racing the
		// recycle election against fragments unpinning under shard locks.
		chaos.Maybe(chaos.DepsPinRelease)
		// Release the completion hold (outside any shard lock: the pools
		// are their own synchronization domain). If every fragment has
		// released and every child drained, this recycles the node.
		e.ep.unpin(n, nil)
	}
	return out
}
