package deps

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// testEngineKind selects the Engine implementation the whole test suite
// runs against. TestMain runs the suite twice — once per implementation —
// so every scenario, edge case, and property test in this package verifies
// both the global-lock and the sharded engine.
var testEngineKind = EngineGlobal

func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	// Benchmark invocations measure both engines explicitly; re-running the
	// whole suite would just report every benchmark twice.
	benching := flag.Lookup("test.bench") != nil && flag.Lookup("test.bench").Value.String() != ""
	if code == 0 && !benching {
		testEngineKind = EngineSharded
		fmt.Println("deps: re-running test suite with the sharded engine")
		code = m.Run()
	}
	os.Exit(code)
}

// The test harness simulates a runtime on top of the engine: it executes
// ready nodes one at a time (in a driver-chosen order), applies their strong
// accesses to a model array, and verifies that every read observes exactly
// the value the sequential (pre-order) execution of the program would
// produce. This is the serializability criterion the dependency system must
// enforce no matter how readiness is interleaved.

// simTask is a declarative task description.
type simTask struct {
	label    string
	specs    []Spec
	weakwait bool
	children []*simTask
	// releaseAfter, if non-nil, is issued as a release directive after the
	// children are created (while the body is conceptually still running).
	releaseAfter []Spec

	seq int // pre-order sequence number, assigned by the reference walk
}

// sim drives the engine for a program rooted at a synthetic root task.
type sim struct {
	t        *testing.T
	eng      Engine
	data     map[DataID][]int
	expect   map[string]map[delem]int // label -> (data, element) -> expected read value
	finalRef map[DataID][]int
	ready    []*Node
	nodes    map[*Node]*simNode
	done     int
	total    int
}

// delem addresses one element of one data object in the expectation maps.
type delem struct {
	d DataID
	p int64
}

type simNode struct {
	def       *simTask
	node      *Node
	parent    *simNode
	pending   int // direct children not yet fully complete
	bodyDone  bool
	completed bool
}

func newSim(t *testing.T, universe map[DataID]int64) *sim {
	return newSimEngine(t, testEngineKind, universe)
}

// newSimEngine builds a sim over an explicit engine implementation; the
// differential tests use it to drive both engines in lockstep.
func newSimEngine(t *testing.T, kind EngineKind, universe map[DataID]int64) *sim {
	s := &sim{
		t:      t,
		eng:    NewEngine(kind, nil),
		data:   make(map[DataID][]int),
		expect: make(map[string]map[delem]int),
		nodes:  make(map[*Node]*simNode),
	}
	for d, n := range universe {
		s.data[d] = make([]int, n)
	}
	return s
}

// reference performs the sequential pre-order walk, assigning sequence
// numbers and computing the expected value of every strong read.
func (s *sim) reference(tasks []*simTask) {
	ref := make(map[DataID][]int)
	for d, arr := range s.data {
		ref[d] = make([]int, len(arr))
	}
	seq := 0
	var walk func(ts []*simTask)
	walk = func(ts []*simTask) {
		for _, def := range ts {
			seq++
			def.seq = seq
			exp := make(map[delem]int)
			for _, spec := range def.specs {
				if spec.Weak {
					continue
				}
				for _, iv := range spec.Ivs {
					for p := iv.Lo; p < iv.Hi; p++ {
						switch {
						case spec.Type == Red:
							// Reductions commute: model as increments, so
							// any group order yields the same value. Writes
							// use a large stride to stay distinguishable.
							ref[spec.Data][p]++
						case spec.Type == In:
							exp[delem{spec.Data, p}] = ref[spec.Data][p]
						case spec.Type == InOut:
							exp[delem{spec.Data, p}] = ref[spec.Data][p]
							ref[spec.Data][p] = seq * 1000
						default: // Out
							ref[spec.Data][p] = seq * 1000
						}
					}
				}
			}
			s.expect[def.label] = exp
			walk(def.children)
		}
	}
	walk(tasks)
	s.total = seq
	// Keep final reference state for the end-of-run comparison.
	s.finalRef = ref
}

// run executes the program, choosing among ready tasks with pick (which
// receives the current ready count and returns an index). It fails the test
// on any serialization violation or deadlock.
func (s *sim) run(tasks []*simTask, pick func(n int) int) {
	s.reference(tasks)
	root := s.eng.NewNode(nil, "root", nil)
	s.eng.Register(root, nil)
	rootSim := &simNode{def: &simTask{label: "root", children: tasks}, node: root}
	s.nodes[root] = rootSim
	s.execute(rootSim)
	for len(s.ready) > 0 {
		i := pick(len(s.ready))
		n := s.ready[i]
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
		s.execute(s.nodes[n])
	}
	if s.done != s.total {
		s.t.Fatalf("deadlock or lost tasks: completed %d of %d", s.done, s.total)
	}
	for d, arr := range s.data {
		for p, v := range arr {
			if want := s.finalRef[d][p]; v != want {
				s.t.Fatalf("final state mismatch at data %d elem %d: got %d, want %d", d, p, v, want)
			}
		}
	}
}

// runRandom executes with a seeded random ready-order.
func (s *sim) runRandom(tasks []*simTask, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	s.run(tasks, func(n int) int { return rng.Intn(n) })
}

var _ = fmt.Sprintf // keep fmt for debug helpers

func (s *sim) execute(sn *simNode) {
	def := sn.def
	// Apply strong effects (the task body).
	exp := s.expect[def.label]
	for _, spec := range def.specs {
		if spec.Weak {
			continue
		}
		for _, iv := range spec.Ivs {
			for p := iv.Lo; p < iv.Hi; p++ {
				switch {
				case spec.Type == Red:
					s.data[spec.Data][p]++
				case spec.Type == In:
					if got, want := s.data[spec.Data][p], exp[delem{spec.Data, p}]; got != want {
						s.t.Fatalf("task %q read data %d elem %d = %d, want %d (serialization violated)",
							def.label, spec.Data, p, got, want)
					}
				case spec.Type == InOut:
					if got, want := s.data[spec.Data][p], exp[delem{spec.Data, p}]; got != want {
						s.t.Fatalf("task %q read data %d elem %d = %d, want %d (serialization violated)",
							def.label, spec.Data, p, got, want)
					}
					s.data[spec.Data][p] = def.seq * 1000
				default: // Out
					s.data[spec.Data][p] = def.seq * 1000
				}
			}
		}
	}
	// Instantiate children (the nesting half of the body).
	for _, c := range def.children {
		cn := s.eng.NewNode(sn.node, c.label, nil)
		csn := &simNode{def: c, node: cn, parent: sn}
		s.nodes[cn] = csn
		sn.pending++
		if s.eng.Register(cn, c.specs) {
			s.ready = append(s.ready, cn)
		}
	}
	if def.releaseAfter != nil {
		s.enqueue(s.eng.ReleaseRegions(sn.node, def.releaseAfter))
	}
	if def.weakwait {
		s.enqueue(s.eng.BodyDone(sn.node))
	}
	sn.bodyDone = true
	if sn.pending == 0 {
		s.complete(sn)
	}
}

func (s *sim) complete(sn *simNode) {
	if sn.completed {
		s.t.Fatalf("task %q completed twice", sn.def.label)
	}
	sn.completed = true
	if sn.def.label != "root" {
		s.done++
	}
	s.enqueue(s.eng.Complete(sn.node))
	if sn.parent != nil {
		sn.parent.pending--
		if sn.parent.pending == 0 && sn.parent.bodyDone {
			s.complete(sn.parent)
		}
	}
}

func (s *sim) enqueue(nodes []*Node) {
	s.ready = append(s.ready, nodes...)
}

// isReady reports whether the node for the given label is currently in the
// ready list (used by scenario tests to assert precise readiness points).
func (s *sim) isReady(label string) bool {
	for _, n := range s.ready {
		if s.nodes[n].def.label == label {
			return true
		}
	}
	return false
}

// step executes the ready task with the given label, failing if not ready.
func (s *sim) step(label string) {
	for i, n := range s.ready {
		if s.nodes[n].def.label == label {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			s.execute(s.nodes[n])
			return
		}
	}
	s.t.Fatalf("task %q is not ready; ready = %v", label, s.readyLabels())
}

func (s *sim) readyLabels() []string {
	var out []string
	for _, n := range s.ready {
		out = append(out, s.nodes[n].def.label)
	}
	return out
}

// start registers the top-level program without executing anything beyond
// the root body (which instantiates the top-level tasks).
func (s *sim) start(tasks []*simTask) {
	s.reference(tasks)
	root := s.eng.NewNode(nil, "root", nil)
	s.eng.Register(root, nil)
	rootSim := &simNode{def: &simTask{label: "root", children: tasks}, node: root}
	s.nodes[root] = rootSim
	s.execute(rootSim)
}

// finish drains the remaining ready tasks in FIFO order and runs the final
// checks.
func (s *sim) finish() {
	for len(s.ready) > 0 {
		n := s.ready[0]
		s.ready = s.ready[1:]
		s.execute(s.nodes[n])
	}
	if s.done != s.total {
		s.t.Fatalf("deadlock or lost tasks: completed %d of %d", s.done, s.total)
	}
}
