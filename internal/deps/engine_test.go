package deps

import (
	"testing"

	"repro/internal/regions"
)

const d0 = DataID(0)

func in(ivs ...regions.Interval) Spec     { return Spec{Data: d0, Type: In, Ivs: ivs} }
func out(ivs ...regions.Interval) Spec    { return Spec{Data: d0, Type: Out, Ivs: ivs} }
func inout(ivs ...regions.Interval) Spec  { return Spec{Data: d0, Type: InOut, Ivs: ivs} }
func weakin(ivs ...regions.Interval) Spec { return Spec{Data: d0, Type: In, Weak: true, Ivs: ivs} }
func weakinout(ivs ...regions.Interval) Spec {
	return Spec{Data: d0, Type: InOut, Weak: true, Ivs: ivs}
}
func weakout(ivs ...regions.Interval) Spec { return Spec{Data: d0, Type: Out, Weak: true, Ivs: ivs} }

func u(n int64) map[DataID]int64 { return map[DataID]int64{d0: n} }

// TestFlatRAW: a reader must wait for the preceding writer (same domain).
func TestFlatRAW(t *testing.T) {
	s := newSim(t, u(10))
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 10))}}
	r := &simTask{label: "R", specs: []Spec{in(regions.Iv(0, 10))}}
	s.start([]*simTask{w, r})
	if s.isReady("R") {
		t.Fatal("reader ready before writer finished")
	}
	s.step("W")
	if !s.isReady("R") {
		t.Fatal("reader not ready after writer completed")
	}
	s.finish()
}

// TestFlatReadersConcurrent: readers after one writer are all ready at once.
func TestFlatReadersConcurrent(t *testing.T) {
	s := newSim(t, u(10))
	w := &simTask{label: "W", specs: []Spec{out(regions.Iv(0, 10))}}
	r1 := &simTask{label: "R1", specs: []Spec{in(regions.Iv(0, 5))}}
	r2 := &simTask{label: "R2", specs: []Spec{in(regions.Iv(3, 10))}}
	w2 := &simTask{label: "W2", specs: []Spec{inout(regions.Iv(0, 10))}}
	s.start([]*simTask{w, r1, r2, w2})
	s.step("W")
	if !s.isReady("R1") || !s.isReady("R2") {
		t.Fatalf("both readers should be ready, ready=%v", s.readyLabels())
	}
	if s.isReady("W2") {
		t.Fatal("second writer ready before readers (WAR violated)")
	}
	s.step("R1")
	if s.isReady("W2") {
		t.Fatal("second writer ready with one reader outstanding")
	}
	s.step("R2")
	if !s.isReady("W2") {
		t.Fatal("second writer not ready after both readers")
	}
	s.finish()
}

// TestFlatPartialOverlap: dependencies over partially overlapping sections
// (§VII) — a successor overlapping two predecessors waits for both, and a
// successor overlapping only one waits only for that one.
func TestFlatPartialOverlap(t *testing.T) {
	s := newSim(t, u(20))
	a := &simTask{label: "A", specs: []Spec{inout(regions.Iv(0, 10))}}
	b := &simTask{label: "B", specs: []Spec{inout(regions.Iv(10, 20))}}
	c := &simTask{label: "C", specs: []Spec{in(regions.Iv(5, 15))}} // straddles A and B
	d := &simTask{label: "D", specs: []Spec{in(regions.Iv(0, 5))}}  // only A
	s.start([]*simTask{a, b, c, d})
	if s.isReady("C") || s.isReady("D") {
		t.Fatal("successors ready too early")
	}
	s.step("A")
	if s.isReady("C") {
		t.Fatal("C should still wait for B")
	}
	if !s.isReady("D") {
		t.Fatal("D should be ready after A alone")
	}
	s.step("B")
	if !s.isReady("C") {
		t.Fatal("C should be ready after A and B")
	}
	s.finish()
}

// TestListing2WeakwaitHandover reproduces listing 2: T1 (strong inout a,b,
// weakwait) with children T1.1 (inout a) and T1.2 (inout b); successors T2
// (in a) and T3 (in b). After T1's body ends, T2 must become ready exactly
// when T1.1 finishes, independent of T1.2 (§V).
func TestListing2WeakwaitHandover(t *testing.T) {
	a, b := regions.Iv(0, 1), regions.Iv(1, 2)
	s := newSim(t, u(2))
	t11 := &simTask{label: "T1.1", specs: []Spec{inout(a)}}
	t12 := &simTask{label: "T1.2", specs: []Spec{inout(b)}}
	t1 := &simTask{label: "T1", specs: []Spec{inout(a, b)}, weakwait: true, children: []*simTask{t11, t12}}
	t2 := &simTask{label: "T2", specs: []Spec{in(a)}}
	t3 := &simTask{label: "T3", specs: []Spec{in(b)}}
	s.start([]*simTask{t1, t2, t3})

	if s.isReady("T2") || s.isReady("T3") {
		t.Fatal("successors ready before T1")
	}
	s.step("T1") // body runs, children created, weakwait hand-over
	if s.isReady("T2") || s.isReady("T3") {
		t.Fatal("successors ready while children alive (hand-over must defer)")
	}
	s.step("T1.1")
	if !s.isReady("T2") {
		t.Fatal("T2 must be ready as soon as T1.1 finishes (fine-grained release)")
	}
	if s.isReady("T3") {
		t.Fatal("T3 must not be ready before T1.2 finishes")
	}
	s.step("T1.2")
	if !s.isReady("T3") {
		t.Fatal("T3 must be ready after T1.2")
	}
	s.finish()
}

// TestNestDependBulkRelease: without weakwait, the parent releases all its
// dependencies at once when it and all children complete (the behaviour of
// taskwait-terminated tasks, §III).
func TestNestDependBulkRelease(t *testing.T) {
	a, b := regions.Iv(0, 1), regions.Iv(1, 2)
	s := newSim(t, u(2))
	t11 := &simTask{label: "T1.1", specs: []Spec{inout(a)}}
	t12 := &simTask{label: "T1.2", specs: []Spec{inout(b)}}
	t1 := &simTask{label: "T1", specs: []Spec{inout(a, b)}, children: []*simTask{t11, t12}}
	t2 := &simTask{label: "T2", specs: []Spec{in(a)}}
	s.start([]*simTask{t1, t2})
	s.step("T1")
	s.step("T1.1")
	if s.isReady("T2") {
		t.Fatal("without weakwait, T2 must wait for the whole T1 subtree")
	}
	s.step("T1.2")
	if !s.isReady("T2") {
		t.Fatal("T2 ready once the whole T1 subtree completed")
	}
	s.finish()
}

// TestListing3WeakDeps reproduces listing 3 / figure 2: weak dependency
// types let outer tasks start (and instantiate subtasks) immediately, while
// the subtasks inherit the incoming dependencies through the weak accesses.
func TestListing3WeakDeps(t *testing.T) {
	// Layout: a=0, b=1, z=2, c=3, d=4, e=5, f=6 (one element each).
	a, b, z, c, d, eIv, f := regions.Iv(0, 1), regions.Iv(1, 2), regions.Iv(2, 3), regions.Iv(3, 4), regions.Iv(4, 5), regions.Iv(5, 6), regions.Iv(6, 7)
	s := newSim(t, u(7))

	t11 := &simTask{label: "T1.1", specs: []Spec{inout(a)}}
	t12 := &simTask{label: "T1.2", specs: []Spec{inout(b)}}
	t1 := &simTask{label: "T1", specs: []Spec{inout(a, b)}, weakwait: true, children: []*simTask{t11, t12}}

	t21 := &simTask{label: "T2.1", specs: []Spec{in(a), out(c)}}
	t22 := &simTask{label: "T2.2", specs: []Spec{in(b), out(d)}}
	t2 := &simTask{label: "T2", specs: []Spec{out(z), weakin(a, b), weakout(c, d)},
		weakwait: true, children: []*simTask{t21, t22}}

	t31 := &simTask{label: "T3.1", specs: []Spec{in(a, d), out(eIv)}}
	t32 := &simTask{label: "T3.2", specs: []Spec{in(b), out(f)}}
	t3 := &simTask{label: "T3", specs: []Spec{weakin(a, b, d), weakout(eIv, f)},
		weakwait: true, children: []*simTask{t31, t32}}

	t41 := &simTask{label: "T4.1", specs: []Spec{in(c, eIv)}}
	t42 := &simTask{label: "T4.2", specs: []Spec{in(d, f)}}
	t4 := &simTask{label: "T4", specs: []Spec{weakin(c, d, eIv, f)}, weakwait: true, children: []*simTask{t41, t42}}

	s.start([]*simTask{t1, t2, t3, t4})

	// Figure 2a: all outer tasks can run (and thus instantiate) in parallel.
	for _, l := range []string{"T1", "T2", "T3", "T4"} {
		if !s.isReady(l) {
			t.Fatalf("outer task %s should be ready immediately (weak deps don't defer); ready=%v", l, s.readyLabels())
		}
	}
	// Instantiate all inner tasks in parallel (any order).
	s.step("T4")
	s.step("T3")
	s.step("T2")
	s.step("T1")
	// Only T1's children are ready: everything else inherits pending deps.
	for _, l := range []string{"T2.1", "T2.2", "T3.1", "T3.2", "T4.1", "T4.2"} {
		if s.isReady(l) {
			t.Fatalf("inner task %s ready before its inherited deps were satisfied", l)
		}
	}
	if !s.isReady("T1.1") || !s.isReady("T1.2") {
		t.Fatal("T1's children should be ready")
	}

	// Figure 2c: when T1.1 finishes, a is released — T2.1 and nothing else
	// involving b becomes ready.
	s.step("T1.1")
	if !s.isReady("T2.1") {
		t.Fatal("T2.1 must become ready as soon as T1.1 finishes (single-domain equivalence)")
	}
	if s.isReady("T2.2") || s.isReady("T3.1") {
		t.Fatalf("tasks depending on b or d became ready too early: %v", s.readyLabels())
	}
	s.step("T1.2")
	if !s.isReady("T2.2") || !s.isReady("T3.2") {
		t.Fatalf("T2.2 and T3.2 should be ready after T1.2; ready=%v", s.readyLabels())
	}
	// T3.1 needs a (released) and d (produced by T2.2).
	if s.isReady("T3.1") {
		t.Fatal("T3.1 needs d from T2.2")
	}
	s.step("T2.2")
	if !s.isReady("T3.1") {
		t.Fatal("T3.1 ready after T2.2 produced d")
	}
	s.step("T2.1")
	s.step("T3.1")
	if !s.isReady("T4.1") {
		t.Fatal("T4.1 ready after c (T2.1) and e (T3.1)")
	}
	if s.isReady("T4.2") {
		t.Fatal("T4.2 needs f from T3.2")
	}
	s.finish()
}

// TestReleaseDirective: a task releases part of its depend set mid-body;
// successors over the released region become ready while the task runs.
func TestReleaseDirective(t *testing.T) {
	s := newSim(t, u(10))
	child := &simTask{label: "C", specs: []Spec{inout(regions.Iv(0, 5))}}
	t1 := &simTask{label: "T1", specs: []Spec{inout(regions.Iv(0, 10))},
		children:     []*simTask{child},
		releaseAfter: []Spec{inout(regions.Iv(5, 10))}}
	t2 := &simTask{label: "T2", specs: []Spec{in(regions.Iv(5, 10))}}
	t3 := &simTask{label: "T3", specs: []Spec{in(regions.Iv(0, 5))}}
	s.start([]*simTask{t1, t2, t3})
	s.step("T1")
	// T1 has NOT completed (its child is alive, and it has no weakwait), but
	// the released region must flow to T2.
	if !s.isReady("T2") {
		t.Fatal("T2 must be ready right after the release directive")
	}
	if s.isReady("T3") {
		t.Fatal("T3 over the unreleased region must wait for the subtree")
	}
	// C finishing completes the whole T1 subtree (the body already
	// returned), which bulk-releases the remaining [0,5) region.
	s.step("C")
	if !s.isReady("T3") {
		t.Fatal("T3 ready after T1 subtree completed")
	}
	s.finish()
}

// TestReleaseDirectiveWithLiveChild: releasing a region still covered by a
// live child hands it over instead of releasing immediately (the
// nest-weak-release pattern of the AXPY benchmark).
func TestReleaseDirectiveWithLiveChild(t *testing.T) {
	s := newSim(t, u(10))
	child := &simTask{label: "C", specs: []Spec{inout(regions.Iv(0, 10))}}
	t1 := &simTask{label: "T1", specs: []Spec{weakinout(regions.Iv(0, 10))},
		children:     []*simTask{child},
		releaseAfter: []Spec{weakinout(regions.Iv(0, 10))},
		weakwait:     true}
	t2 := &simTask{label: "T2", specs: []Spec{in(regions.Iv(0, 10))}}
	s.start([]*simTask{t1, t2})
	s.step("T1")
	if s.isReady("T2") {
		t.Fatal("T2 must wait for the live child despite the release directive")
	}
	s.step("C")
	if !s.isReady("T2") {
		t.Fatal("T2 ready once the covering child released")
	}
	s.finish()
}

// TestWeakChainThreeLevels: satisfaction propagates through two levels of
// weak accesses (grandparent → parent → leaf), as in the recursive
// prefix-sum benchmark (§VIII-C).
func TestWeakChainThreeLevels(t *testing.T) {
	r := regions.Iv(0, 4)
	s := newSim(t, u(4))
	leaf := &simTask{label: "leaf", specs: []Spec{inout(r)}}
	mid := &simTask{label: "mid", specs: []Spec{weakinout(r)}, weakwait: true, children: []*simTask{leaf}}
	top := &simTask{label: "top", specs: []Spec{weakinout(r)}, weakwait: true, children: []*simTask{mid}}
	w := &simTask{label: "W", specs: []Spec{inout(r)}}
	after := &simTask{label: "A", specs: []Spec{in(r)}}
	s.start([]*simTask{w, top, after})

	if !s.isReady("top") {
		t.Fatal("weak top should be ready immediately")
	}
	s.step("top")
	if !s.isReady("mid") {
		t.Fatal("weak mid should be ready immediately")
	}
	s.step("mid")
	if s.isReady("leaf") {
		t.Fatal("leaf must wait for W through two weak levels")
	}
	s.step("W")
	if !s.isReady("leaf") {
		t.Fatal("leaf ready after W released")
	}
	if s.isReady("A") {
		t.Fatal("A must wait for the leaf")
	}
	s.step("leaf")
	if !s.isReady("A") {
		t.Fatal("A ready after leaf released through the weak chain")
	}
	s.finish()
}

// TestUnrelatedDataIndependent: accesses to different data objects never
// interfere.
func TestUnrelatedDataIndependent(t *testing.T) {
	s := newSim(t, map[DataID]int64{0: 4, 1: 4})
	w0 := &simTask{label: "W0", specs: []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 4)}}}}
	w1 := &simTask{label: "W1", specs: []Spec{{Data: 1, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 4)}}}}
	r0 := &simTask{label: "R0", specs: []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(0, 4)}}}}
	s.start([]*simTask{w0, w1, r0})
	if !s.isReady("W0") || !s.isReady("W1") {
		t.Fatal("independent writers should both be ready")
	}
	s.step("W1")
	if s.isReady("R0") {
		t.Fatal("R0 must wait for W0, not W1")
	}
	s.step("W0")
	if !s.isReady("R0") {
		t.Fatal("R0 ready after W0")
	}
	s.finish()
}

// TestOverlappingOwnSpecsPanics: a task declaring overlapping depend
// entries is a programming error the engine rejects.
func TestOverlappingOwnSpecsPanics(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	n := e.NewNode(root, "bad", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping own depend entries")
		}
	}()
	e.Register(n, []Spec{inout(regions.Iv(0, 10)), in(regions.Iv(5, 15))})
}

// TestChildWriteUnderReadOnlyParentPanics: a child writing a region its
// parent covers with only a read access violates the weak-access contract
// (§VI) and must be diagnosed.
func TestChildWriteUnderReadOnlyParentPanics(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	w := e.NewNode(root, "w", nil)
	e.Register(w, []Spec{inout(regions.Iv(0, 10))}) // keeps parent's piece unsatisfied? no — gives the domain a writer
	p := e.NewNode(root, "p", nil)
	e.Register(p, []Spec{weakin(regions.Iv(0, 10))})
	c := e.NewNode(p, "c", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for child write under read-only parent access")
		}
	}()
	e.Register(c, []Spec{inout(regions.Iv(0, 10))})
}

// TestStatsAccounting sanity-checks the activity counters.
func TestStatsAccounting(t *testing.T) {
	s := newSim(t, u(4))
	w := &simTask{label: "W", specs: []Spec{inout(regions.Iv(0, 4))}}
	r := &simTask{label: "R", specs: []Spec{in(regions.Iv(0, 4))}}
	s.runRandom([]*simTask{w, r}, 7)
	st := s.eng.Stats()
	if st.Nodes != 3 { // root + 2
		t.Fatalf("Nodes = %d, want 3", st.Nodes)
	}
	if st.Fragments != 2 || st.Links != 1 {
		t.Fatalf("Fragments=%d Links=%d, want 2,1", st.Fragments, st.Links)
	}
	if st.Releases == 0 || st.Grants == 0 {
		t.Fatalf("expected releases and grants, got %+v", st)
	}
}

// TestOutSkipsRAW: an out (overwrite) access still orders after prior
// writers and readers, but a reader after an out sees the new value.
func TestOutOrdering(t *testing.T) {
	s := newSim(t, u(8))
	tasks := []*simTask{
		{label: "A", specs: []Spec{out(regions.Iv(0, 8))}},
		{label: "B", specs: []Spec{in(regions.Iv(0, 8))}},
		{label: "C", specs: []Spec{out(regions.Iv(0, 8))}},
		{label: "D", specs: []Spec{in(regions.Iv(0, 8))}},
	}
	for seed := int64(0); seed < 20; seed++ {
		s := newSim(t, u(8))
		s.runRandom(tasks, seed)
		_ = s
	}
	_ = s
}
