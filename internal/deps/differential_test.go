package deps

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/randtest"
	"repro/internal/regions"
)

// Differential property tests: the global-lock engine and the sharded
// engine are driven in lockstep over the same randomly generated program.
// After every executed task the two ready sets must be identical — the
// strongest observable-equivalence criterion the engine interface offers —
// and on top of that each engine's execution is independently checked
// against the sequential oracle (no happens-before violation, identical
// final data state), both must reach quiescence (zero live fragments, no
// lost tasks), and their activity counters must agree. A sharding bug that
// reorders, drops, or duplicates a grant diverges one of these checks.

// runDifferential executes prog through both engines in lockstep, picking
// the next task with rng among the (identical) ready sets.
func runDifferential(t *testing.T, prog []*simTask, universe map[DataID]int64, seed int64) bool {
	g := newSimEngine(t, EngineGlobal, universe)
	s := newSimEngine(t, EngineSharded, universe)
	g.start(prog)
	s.start(prog)
	rng := rand.New(rand.NewSource(seed))
	for step := 0; ; step++ {
		gl := append([]string(nil), g.readyLabels()...)
		sl := append([]string(nil), s.readyLabels()...)
		sort.Strings(gl)
		sort.Strings(sl)
		if !equalStrings(gl, sl) {
			t.Errorf("step %d: ready sets diverged\n  global:  %v\n  sharded: %v", step, gl, sl)
			return false
		}
		if len(gl) == 0 {
			break
		}
		pick := gl[rng.Intn(len(gl))]
		g.step(pick)
		s.step(pick)
		if t.Failed() {
			return false
		}
	}
	if g.done != g.total || s.done != s.total {
		t.Errorf("lost tasks: global %d/%d, sharded %d/%d", g.done, g.total, s.done, s.total)
		return false
	}
	for d := range universe {
		for p := range g.data[d] {
			if g.data[d][p] != s.data[d][p] {
				t.Errorf("final state diverged at data %d elem %d: global %d, sharded %d",
					d, p, g.data[d][p], s.data[d][p])
				return false
			}
		}
	}
	gs, ss := g.eng.Stats(), s.eng.Stats()
	if gs != ss {
		t.Errorf("stats diverged:\n  global:  %+v\n  sharded: %+v", gs, ss)
		return false
	}
	if gs.Releases < gs.Fragments {
		t.Errorf("%d fragments but only %d releases (leaked pieces)", gs.Fragments, gs.Releases)
		return false
	}
	if lf := g.eng.LiveFragments(); lf != 0 {
		t.Errorf("global engine not quiescent: %d live fragments", lf)
		return false
	}
	if lf := s.eng.LiveFragments(); lf != 0 {
		t.Errorf("sharded engine not quiescent: %d live fragments", lf)
		return false
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// multiUniverse is the data universe of the multi-object generators: four
// data objects so that multi-object depend clauses and cross-shard
// readiness are the common case, not the exception.
const diffDatas = 4

func multiUniverse() map[DataID]int64 {
	u := make(map[DataID]int64, diffDatas)
	for d := 0; d < diffDatas; d++ {
		u[DataID(d)] = quickUniverse
	}
	return u
}

// genMultiFlat generates a flat program whose tasks carry specs over
// several data objects (the multi-shard Register path).
func genMultiFlat(rng *rand.Rand) []*simTask {
	n := 4 + rng.Intn(16)
	tasks := make([]*simTask, 0, n)
	for i := 0; i < n; i++ {
		var specs []Spec
		nd := 1 + rng.Intn(3)
		for _, d := range rng.Perm(diffDatas)[:nd] {
			for _, iv := range genDisjoint(rng, 2, 8) {
				specs = append(specs, Spec{Data: DataID(d), Type: randType(rng), Ivs: []regions.Interval{iv}})
			}
		}
		tasks = append(tasks, &simTask{label: fmt.Sprintf("t%d", i), specs: specs})
	}
	return tasks
}

// genMultiNested generates nested tasks whose covers span several data
// objects: each nesting task covers one interval per chosen data (weakly
// or strongly) and spawns children whose accesses stay inside one of the
// covers, with weakwait and early release mixed in.
func genMultiNested(rng *rand.Rand, depth int) []*simTask {
	n := 2 + rng.Intn(4)
	tasks := make([]*simTask, 0, n)
	id := 0
	var gen func(covers map[DataID]regions.Interval, depth int, prefix string) *simTask
	gen = func(covers map[DataID]regions.Interval, depth int, prefix string) *simTask {
		id++
		t := &simTask{
			label:    fmt.Sprintf("%s%d", prefix, id),
			weakwait: rng.Intn(10) < 7,
		}
		datas := make([]DataID, 0, len(covers))
		for d := range covers {
			datas = append(datas, d)
		}
		sort.Slice(datas, func(i, j int) bool { return datas[i] < datas[j] })
		for _, d := range datas {
			t.specs = append(t.specs, Spec{
				Data: d, Type: InOut, Weak: rng.Intn(10) < 7,
				Ivs: []regions.Interval{covers[d]},
			})
		}
		nKids := 1 + rng.Intn(3)
		for k := 0; k < nKids; k++ {
			d := datas[rng.Intn(len(datas))]
			cover := covers[d]
			if cover.Len() < 2 {
				continue
			}
			lo := cover.Lo + rng.Int63n(cover.Len())
			hi := lo + 1 + rng.Int63n(cover.Hi-lo)
			sub := regions.Iv(lo, hi)
			if depth > 1 && sub.Len() >= 4 && rng.Intn(3) == 0 {
				t.children = append(t.children, gen(map[DataID]regions.Interval{d: sub}, depth-1, prefix))
			} else {
				id++
				t.children = append(t.children, &simTask{
					label: fmt.Sprintf("%sL%d", prefix, id),
					specs: []Spec{{Data: d, Type: randType(rng), Ivs: []regions.Interval{sub}}},
				})
			}
		}
		// Occasionally release one cover early (after child creation).
		if rng.Intn(4) == 0 {
			d := datas[rng.Intn(len(datas))]
			t.releaseAfter = []Spec{{Data: d, Ivs: []regions.Interval{covers[d]}}}
		}
		return t
	}
	for i := 0; i < n; i++ {
		covers := make(map[DataID]regions.Interval)
		nd := 1 + rng.Intn(2)
		for _, d := range rng.Perm(diffDatas)[:nd] {
			lo := int64(rng.Intn(quickUniverse - 8))
			ln := int64(6 + rng.Intn(16))
			covers[DataID(d)] = regions.Iv(lo, min64(lo+ln, quickUniverse))
		}
		tasks = append(tasks, gen(covers, depth, fmt.Sprintf("n%d.", i)))
	}
	return tasks
}

func TestDifferentialFlatMultiData(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both engines explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genMultiFlat(rng)
		for order := 0; order < 3; order++ {
			if !runDifferential(t, prog, multiUniverse(), seed*31+int64(order)) {
				return false
			}
		}
		return true
	}
	randtest.Check(t, 50, 21, f)
}

func TestDifferentialNestedWeakMultiData(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both engines explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genMultiNested(rng, 2)
		for order := 0; order < 3; order++ {
			if !runDifferential(t, prog, multiUniverse(), seed*37+int64(order)) {
				return false
			}
		}
		return true
	}
	randtest.Check(t, 40, 22, f)
}

func TestDifferentialDeepNesting(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both engines explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genMultiNested(rng, 3)
		for order := 0; order < 2; order++ {
			if !runDifferential(t, prog, multiUniverse(), seed*41+int64(order)) {
				return false
			}
		}
		return true
	}
	randtest.Check(t, 30, 23, f)
}

// TestDifferentialSingleData pins the single-shard case: with one data
// object the sharded engine degenerates to one lock, and the two engines
// must agree on the existing single-data generators too (nesting, weak
// accesses, release directives).
func TestDifferentialSingleData(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both engines explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var prog []*simTask
		flat := genFlat(rng)
		nested := genNested(rng, 2)
		for i := 0; i < len(flat) || i < len(nested); i++ {
			if i < len(flat) {
				prog = append(prog, flat[i])
			}
			if i < len(nested) {
				prog = append(prog, nested[i])
			}
		}
		for order := 0; order < 2; order++ {
			if !runDifferential(t, prog, u(quickUniverse), seed*43+int64(order)) {
				return false
			}
		}
		return true
	}
	randtest.Check(t, 30, 24, f)
}
