package deps

import "repro/internal/regions"

// Observer receives engine events. It is invoked with the engine mutex held:
// implementations must be fast, must not call back into the engine, and are
// meant for graph capture (the taskgraph tool reproducing Figures 1 and 2)
// and for tests.
type Observer interface {
	// NodeCreated fires when a node is created under parent (nil for root).
	NodeCreated(n, parent *Node)
	// NodeReady fires when all strong accesses of a node become satisfied.
	NodeReady(n *Node)
	// Link fires for every dependency edge: same-domain successor links
	// (inbound=false) and cross-domain parent→child satisfaction links
	// (inbound=true).
	Link(pred, succ *Node, data DataID, iv regions.Interval, inbound bool)
	// Handover fires when a piece of n's access over iv is handed over to
	// its live children at weakwait or release-directive time.
	Handover(n *Node, data DataID, iv regions.Interval)
	// Released fires when a piece of n's access over iv releases.
	Released(n *Node, data DataID, iv regions.Interval)
}

// NopObserver is an Observer that ignores all events; useful for embedding
// when only some events are of interest.
type NopObserver struct{}

// NodeCreated ignores the event.
func (NopObserver) NodeCreated(_, _ *Node) {}

// NodeReady ignores the event.
func (NopObserver) NodeReady(*Node) {}

// Link ignores the event.
func (NopObserver) Link(_, _ *Node, _ DataID, _ regions.Interval, _ bool) {}

// Handover ignores the event.
func (NopObserver) Handover(*Node, DataID, regions.Interval) {}

// Released ignores the event.
func (NopObserver) Released(*Node, DataID, regions.Interval) {}
