package deps

import (
	"unsafe"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// This file implements the pooled memory mode of the dependency engines:
// every object of the task-dependency lifecycle — Node, access, fragment,
// and the per-data interval maps — is recycled through internal/mempool
// free lists instead of being left to the garbage collector.
//
// Ownership rules (who may free what, and when):
//
//   - A fragment, its access, and the node's interval maps are owned by
//     the node and recycled together with it.
//   - A node is recycled exactly when its pin count reaches zero: after
//     Complete released the completion hold, every own fragment fully
//     released, every child node recycled, and no evDomainDec cascade
//     event still targets its domain (each queued event holds a pin).
//     The atomic pin countdown elects exactly one recycler and carries
//     the happens-before edges from every prior mutation site.
//   - A recycled node bumps its generation counter first, so NodeHandles
//     captured by observers or diagnostics detect stale access instead of
//     reading the next task's state. Double-free is structurally
//     impossible: only the single pins-to-zero transition recycles.
//
// Why a fully released fragment is unreachable (the invariant that makes
// recycling sound): every dependency link charges pending grants to its
// target over the link's whole interval at link time, and a piece releases
// only when its pending counters are zero and its completion point has
// passed. A fragment can therefore only release fully after every incoming
// link has delivered every grant it ever will, and the interval
// intersection guarding each link-firing loop can never select it again.
// References from domain-cell history (lastWriter/readers/reds) are
// scrubbed piece-wise by the evDomainDec handler as the fragment releases.

// enginePools is the set of free lists shared by all shards of one engine.
// Nodes use a locked Pool because NewNode runs under no shard lock; the
// other types are allocated and freed under shard locks (or at node-drain
// points covered by the pin protocol) through per-shard owner lanes.
type enginePools struct {
	nodes *mempool.Pool[Node]
	frags *mempool.Global[fragment]
	accs  *mempool.Global[access]
	amaps *mempool.Global[regions.Map[*fragment]]
	dmaps *mempool.Global[regions.Map[cellState]]
	// flists recycles the domain cells' reader/reduction history lists. A
	// locked Pool rather than a bare Global: interval-map splits clone
	// cells through the map's baked-in clone function, which has no shard
	// lane in scope (cloneCellFn spreads those callers by fragment
	// pointer); the shard-locked call sites go through per-shard lanes
	// attached to the same accounting (depMem.flists).
	flists *mempool.Pool[fragList]
}

// nodePoolLanes spreads concurrent NewNode callers over the node pool's
// mutexes.
const nodePoolLanes = 16

// laneHint derives a stable node-pool lane from the parent pointer, so
// each submitting chain keeps hitting its own (uncontended) lane mutex.
func laneHint(parent *Node) int {
	return int(uintptr(unsafe.Pointer(parent)) >> 6)
}

func newEnginePools() *enginePools {
	ep := &enginePools{
		nodes:  mempool.NewPool(nodePoolLanes, func() *Node { return &Node{} }),
		frags:  mempool.NewGlobal(func() *fragment { return &fragment{} }),
		accs:   mempool.NewGlobal(func() *access { return &access{} }),
		amaps:  mempool.NewGlobal(func() *regions.Map[*fragment] { return regions.NewMap[*fragment](nil) }),
		flists: mempool.NewPool(nodePoolLanes, func() *fragList { return &fragList{} }),
	}
	// Pooled domain maps clone their cells' history lists through the
	// engine's list pool instead of the reference mode's plain allocation.
	ep.dmaps = mempool.NewGlobal(func() *regions.Map[cellState] { return regions.NewMap[cellState](ep.cloneCellFn) })
	return ep
}

// cloneCellFn is the pooled-mode cell clone installed in pooled domain
// maps: splitting a cell duplicates its reader/reduction lists from the
// engine's list pool. The caller-supplied lane hint is derived from the
// first fragment's pointer — the clones of one hot domain keep hitting
// the same (uncontended) lane mutex.
func (ep *enginePools) cloneCellFn(c cellState) cellState {
	c.readers = ep.cloneList(c.readers)
	c.reds = ep.cloneList(c.reds)
	return c
}

func (ep *enginePools) cloneList(l *fragList) *fragList {
	if l.empty() {
		return nil
	}
	nl := ep.flists.Get(laneHintFrag(l.s[0]))
	nl.s = append(nl.s, l.s...)
	return nl
}

// laneHintFrag derives a stable list-pool lane from a fragment pointer.
func laneHintFrag(f *fragment) int {
	return int(uintptr(unsafe.Pointer(f)) >> 6)
}

// depMem is one shard's view of the engine pools: owner lanes entered only
// while holding that shard's lock, plus the node-pool lane hint used when
// this shard recycles nodes.
type depMem struct {
	ep     *enginePools
	lane   int
	frags  mempool.Lane[fragment]
	accs   mempool.Lane[access]
	amaps  mempool.Lane[regions.Map[*fragment]]
	dmaps  mempool.Lane[regions.Map[cellState]]
	flists mempool.Lane[fragList]
}

func newDepMem(ep *enginePools, lane int) *depMem {
	m := &depMem{ep: ep, lane: lane}
	m.frags.Init(ep.frags)
	m.accs.Init(ep.accs)
	m.amaps.Init(ep.amaps)
	m.dmaps.Init(ep.dmaps)
	m.flists.Init(ep.flists.Global())
	return m
}

// MemStats aggregates the pool counters of one engine's free lists; the
// Outstanding fields are the leak accounting a drained runtime checks
// against zero.
type MemStats struct {
	Nodes, Fragments, Accesses, AccessMaps, DomainMaps mempool.Stats
	// FragLists counts the domain cells' pooled reader/reduction history
	// lists (split clones and first-reader growth in weakwait cascades).
	FragLists mempool.Stats
}

// Outstanding returns the total objects currently held out of the pools.
func (s MemStats) Outstanding() int64 {
	return s.Nodes.Outstanding() + s.Fragments.Outstanding() + s.Accesses.Outstanding() +
		s.AccessMaps.Outstanding() + s.DomainMaps.Outstanding() + s.FragLists.Outstanding()
}

func (ep *enginePools) memStats() MemStats {
	return MemStats{
		Nodes:      ep.nodes.Stats(),
		Fragments:  ep.frags.Stats(),
		Accesses:   ep.accs.Stats(),
		AccessMaps: ep.amaps.Stats(),
		DomainMaps: ep.dmaps.Stats(),
		FragLists:  ep.flists.Stats(),
	}
}

// newPooledNode takes a node from the pool and initializes it; hint
// spreads callers over the pool's lanes.
func (ep *enginePools) newPooledNode(hint int, parent *Node, label string, user any) *Node {
	n := ep.nodes.Get(hint)
	n.init(parent, label, user)
	return n
}

// unpin releases one pin on n and recycles it — cascading to ancestors —
// when the count reaches zero. m is the caller's shard lanes (nil when the
// caller holds no shard lock; sub-objects then go to the shared globals,
// which are safe from any goroutine).
func (ep *enginePools) unpin(n *Node, m *depMem) {
	for n != nil {
		if n.pins.Add(-1) != 0 {
			return
		}
		parent := n.parent
		ep.recycleNode(n, m)
		// The recycled node stops pinning its parent; the decrement may
		// cascade the drain upward.
		n = parent
	}
}

// putBack recycles one object through the caller's owner lane when it has
// one (recycling under a shard lock) or the shared global otherwise
// (node drains outside any shard lock, e.g. the completion-hold release).
func putBack[T any](lane *mempool.Lane[T], g *mempool.Global[T], p *T) {
	if lane != nil {
		lane.Put(p)
	} else {
		g.Put(p)
	}
}

// recycleNode returns a drained node and everything it owns to the pools.
// Only the goroutine that decremented pins to zero may call this; at that
// point no other goroutine can reach the node (see the file comment).
func (ep *enginePools) recycleNode(n *Node, m *depMem) {
	var (
		frags *mempool.Lane[fragment]
		accs  *mempool.Lane[access]
		amaps *mempool.Lane[regions.Map[*fragment]]
		dmaps *mempool.Lane[regions.Map[cellState]]
	)
	lane := 0
	if m != nil {
		frags, accs, amaps, dmaps = &m.frags, &m.accs, &m.amaps, &m.dmaps
		lane = m.lane
	}
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			f.resetForPool()
			putBack(frags, ep.frags, f)
		}
		acc.resetForPool()
		putBack(accs, ep.accs, acc)
	}
	// The node's Go maps are kept (cleared) for its next life; only the
	// interval maps inside them are pooled.
	if n.accessMap != nil {
		for _, am := range n.accessMap {
			am.Reset()
			putBack(amaps, ep.amaps, am)
		}
		clear(n.accessMap)
	}
	if n.domain != nil {
		for _, dm := range n.domain {
			dm.Reset()
			putBack(dmaps, ep.dmaps, dm)
		}
		clear(n.domain)
	}
	n.resetForPool()
	ep.nodes.Put(lane, n)
}
