// Package deps implements the hierarchical dependency-domain engine that is
// the primary contribution of the paper: task dependencies across nesting
// levels, weak dependency types (§VI), fine-grained release of dependencies
// on weakwait and on the release directive (§V), and dependencies over
// partially overlapping array sections (§VII).
//
// Every task owns a *domain* in which the dependencies of its direct
// children are computed. Each depend entry of a child becomes an access,
// fragmented against the domain's per-data interval map. Accesses whose
// intervals hit a fresh part of the domain link *inbound* through the
// parent's own access over the same interval, which is how satisfaction
// propagates from outer domains into inner ones. Fine-grained release (the
// weakwait hand-over) propagates the other way: when a task's body ends,
// access pieces still covered by live children are handed over and release
// exactly when the covering child accesses release. The combination merges
// every domain into its parent's — observably equivalent to computing all
// dependencies in a single domain, which is the paper's headline property.
//
// Two Engine implementations provide these semantics. GlobalEngine
// serializes everything behind one mutex. ShardedEngine partitions every
// dependency structure per data object — each DataID gets its own lock,
// interval maps, and cascade queue, so depend clauses over disjoint data
// never contend; only the per-node readiness countdown crosses shards, and
// it is a bare atomic. In both, all cascade effects (satisfaction grants,
// domain drain, hand-over release) run through an explicit event queue so
// that no interval map is structurally modified while being iterated, and
// every event provably stays within the data object that produced it.
package deps

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// DataID identifies a registered data object (an array the depend clauses
// refer to). Intervals are element indices within that object.
type DataID uint32

// AccessType is the dependency type of a depend-clause entry.
type AccessType uint8

const (
	// In corresponds to depend(in: ...): the task reads the region.
	In AccessType = iota
	// Out corresponds to depend(out: ...): the task overwrites the region.
	Out
	// InOut corresponds to depend(inout: ...): the task reads and writes.
	InOut
	// Red is a task-reduction access (the paper's future work, §X, brought
	// into the nesting/weak-dependency framework): reduction accesses over
	// the same region commute — they carry no mutual ordering — but order
	// after prior writers and readers, and everything after the group
	// orders after every reduction in it. The task must combine its
	// contribution atomically or via privatization; the engine only
	// guarantees the group's isolation.
	Red
)

// Reads reports whether the access type implies reading the data.
func (t AccessType) Reads() bool { return t == In || t == InOut || t == Red }

// Writes reports whether the access type implies writing the data.
func (t AccessType) Writes() bool { return t == Out || t == InOut || t == Red }

// String returns the OpenMP depend-clause spelling of the access type.
func (t AccessType) String() string {
	switch t {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	case Red:
		return "reduction"
	}
	return fmt.Sprintf("AccessType(%d)", uint8(t))
}

// Spec is one depend-clause entry: an access of the given type — weak or
// strong — over a set of disjoint intervals of one data object. Weak specs
// are the weakin/weakout/weakinout types of §VI: they never defer the task
// itself; they only link the task's inner dependency domain to the outer
// one so that subtasks can inherit and release the dependencies.
type Spec struct {
	// Data is the accessed data object.
	Data DataID
	// Type is the access type (In, Out, InOut, or Red).
	Type AccessType
	// Weak marks the weakin/weakout/weakinout variants (§VI).
	Weak bool
	// Ivs are the accessed element intervals (disjoint).
	Ivs []regions.Interval
}

// String renders the spec as a depend-clause-style entry (diagnostics).
func (s Spec) String() string {
	w := ""
	if s.Weak {
		w = "weak"
	}
	return fmt.Sprintf("%s%s:data%d%v", w, s.Type, s.Data, s.Ivs)
}

// Node is the engine's view of a task. A Node is created with NewNode,
// participates in its parent's domain through Register, and owns a domain
// for its own children. The zero value is not usable.
//
// Locking: the contents of the per-data interval maps are guarded by the
// lock covering that data (the engine mutex for GlobalEngine, the data's
// shard mutex for ShardedEngine). The accessMap/domain Go maps themselves
// are guarded by mapsMu, because under the sharded engine a child's
// registration on one data can grow the parent's domain map concurrently
// with a cascade reading another data's entry. unsat and notified are
// atomic: they are the only cross-shard state, credited by grants from any
// shard. accesses, registered, and completed are single-writer fields —
// mutated only by the registering / completing goroutine, with
// happens-before to readers established through the unsat countdown and
// the runtime's own synchronization.
type Node struct {
	parent *Node
	label  string

	// User is an opaque back-reference for the runtime layer (the core
	// package stores its *Task here). The engine never touches it.
	User any

	accesses []*access
	// datas caches the distinct DataIDs of accesses in ascending order —
	// the canonical shard visiting order, computed once at registration so
	// the completion-side calls (BodyDone, Complete) pay no sort or
	// allocation. Single-writer like accesses. For the overwhelmingly
	// common single-object clause it aliases data0, avoiding the heap.
	datas  []DataID
	data0  [1]DataID
	mapsMu sync.RWMutex
	// accessMap indexes this node's own fragments by data and interval, for
	// inbound linking by children and for the release directive.
	accessMap map[DataID]*regions.Map[*fragment]
	// domain is the dependency domain of this node's children.
	domain map[DataID]*regions.Map[cellState]

	// unsat is the total element length of strong access pieces whose
	// relevant satisfaction is still pending, plus a +1 registration hold
	// while Register runs. The node is ready when it reaches zero.
	unsat atomic.Int64
	// notified elects the single ready transition (CAS) once unsat drains.
	notified atomic.Bool
	// readyData is the DataID whose grant completed the node's readiness
	// (-1 when the node was ready at registration). Written once by the
	// goroutine that wins the notified election, before the node is handed
	// out on a ready list, so readers downstream of that hand-off need no
	// further synchronization.
	readyData int64

	registered bool
	completed  bool

	// gen is the node's generation counter (pooled engines only): bumped
	// when the node is retired to the pool, so NodeHandles captured during
	// this life detect stale access after recycling. Always zero under the
	// reference (allocate-always) memory mode.
	gen mempool.Gen

	// pins counts the reasons the node must stay alive (pooled engines
	// only; see the ownership rules in docs/ARCHITECTURE.md):
	//
	//   +1 completion hold — placed at creation, released at the end of
	//      Complete;
	//   +1 per fragment not yet fully released;
	//   +1 per child node not yet recycled;
	//   +1 per queued evDomainDec event targeting this node's domain.
	//
	// The transition to zero — necessarily after completion, with every
	// own access released, every child drained, and no cascade event in
	// flight — is the single point at which the engine may recycle the
	// node; the atomic decrement elects exactly one recycler and carries
	// the happens-before edge from every prior mutation site (each of
	// which released a pin after its writes).
	pins atomic.Int64
}

// newNode constructs a node with no readiness hint yet.
func newNode(parent *Node, label string, user any) *Node {
	n := &Node{}
	n.init(parent, label, user)
	return n
}

// init prepares a fresh or pool-recycled node for a new life. All other
// fields are zero: either the struct is new, or resetForPool restored them.
func (n *Node) init(parent *Node, label string, user any) {
	n.parent, n.label, n.User = parent, label, user
	n.readyData = -1
	n.pins.Store(1) // completion hold
}

// resetForPool retires the node's identity before it returns to the pool.
// The interval maps and slice backing arrays are kept (emptied) so the next
// life allocates nothing; the generation bump invalidates every NodeHandle
// captured during this life. Only the engine's recycler (the goroutine that
// decremented pins to zero) may call this.
func (n *Node) resetForPool() {
	n.gen.Retire()
	n.parent, n.label, n.User = nil, "", nil
	clear(n.accesses)
	n.accesses = n.accesses[:0]
	n.datas = nil // may alias data0; multi-object slices are dropped
	n.unsat.Store(0)
	n.notified.Store(false)
	n.readyData = 0
	n.registered, n.completed = false, false
}

// NodeHandle is a generation-checked reference to a Node for holders that
// outlive the engine's ownership of it — observers, verification tooling,
// diagnostics. Under a pooled engine the node is recycled once it drains,
// and a handle captured earlier then reports Valid() == false instead of
// silently reading the next task's state; the label is captured at handle
// time so diagnostics survive recycling. Under a reference engine handles
// stay valid forever (nodes are never retired).
type NodeHandle struct {
	h     mempool.Handle[Node]
	label string
}

// Handle captures a generation-checked reference to the node.
func (n *Node) Handle() NodeHandle {
	return NodeHandle{h: mempool.MakeHandle(n, nodeGen), label: n.label}
}

func nodeGen(n *Node) *mempool.Gen { return &n.gen }

// Valid reports whether the node has not been recycled since capture.
func (h NodeHandle) Valid() bool { return h.h.Valid() }

// Node returns the node, or ok=false if it has been recycled since the
// handle was captured (use-after-recycle and ABA reuse both fail the
// generation check).
func (h NodeHandle) Node() (*Node, bool) { return h.h.Get() }

// Label returns the label captured at handle time; unlike Node(), it stays
// readable after recycling.
func (h NodeHandle) Label() string { return h.label }

// ReadyData returns the data object whose satisfaction grant made this node
// ready — the release-path locality hint: the worker whose completion
// cascade delivered that grant has the producing data warm in cache.
// ok=false when the node was ready at registration (no pending grant).
func (n *Node) ReadyData() (DataID, bool) {
	if n.readyData < 0 {
		return 0, false
	}
	return DataID(n.readyData), true
}

// PrimaryData returns the first (lowest-id) data object of the node's
// depend clause, ok=false for a node with no dependencies.
func (n *Node) PrimaryData() (DataID, bool) {
	if len(n.datas) > 0 {
		return n.datas[0], true
	}
	if len(n.accesses) > 0 {
		return n.accesses[0].spec.Data, true
	}
	return 0, false
}

// Label returns the diagnostic label given at creation.
func (n *Node) Label() string { return n.label }

// Parent returns the parent node (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

func (n *Node) domainEnsure(data DataID, mem *depMem) *regions.Map[cellState] {
	n.mapsMu.Lock()
	defer n.mapsMu.Unlock()
	if n.domain == nil {
		n.domain = make(map[DataID]*regions.Map[cellState])
	}
	dm := n.domain[data]
	if dm == nil {
		if mem != nil {
			dm = mem.dmaps.Get()
		} else {
			dm = regions.NewMap[cellState](cloneCell)
		}
		n.domain[data] = dm
	}
	return dm
}

// domainFor returns the node's domain map for data, or nil if no child has
// registered an access over it.
func (n *Node) domainFor(data DataID) *regions.Map[cellState] {
	n.mapsMu.RLock()
	defer n.mapsMu.RUnlock()
	return n.domain[data]
}

func (n *Node) accessMapEnsure(data DataID, mem *depMem) *regions.Map[*fragment] {
	n.mapsMu.Lock()
	defer n.mapsMu.Unlock()
	if n.accessMap == nil {
		n.accessMap = make(map[DataID]*regions.Map[*fragment])
	}
	am := n.accessMap[data]
	if am == nil {
		if mem != nil {
			am = mem.amaps.Get()
		} else {
			am = regions.NewMap[*fragment](nil)
		}
		n.accessMap[data] = am
	}
	return am
}

// accessMapFor returns the node's own access map for data, or nil.
func (n *Node) accessMapFor(data DataID) *regions.Map[*fragment] {
	n.mapsMu.RLock()
	defer n.mapsMu.RUnlock()
	return n.accessMap[data]
}
