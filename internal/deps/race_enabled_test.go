//go:build race

package deps

// raceEnabled flags race-instrumented test builds; timing-sensitive
// guards (TestMemPoolW1Parity) skip under it, since the instrumentation
// taxes the pooled path's atomics far more than the reference path's
// allocations and would fail the parity bound spuriously.
func init() { raceEnabled = true }
