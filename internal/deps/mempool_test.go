package deps

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// Memory-pool tests: the pooled engines must be observably identical to
// the allocate-always reference (same ready sets at every step, same final
// data state, same activity counters), must leak nothing (every pooled
// object back on a free list at quiescence), must reject stale access
// through generation-counted handles, and must actually deliver the
// allocation win the pooling exists for (the ≥5x steady-state gate).

// newSimEngineMem builds a sim over an explicit engine and memory mode.
func newSimEngineMem(t *testing.T, kind EngineKind, universe map[DataID]int64, mem mempool.Kind) *sim {
	s := &sim{
		t:      t,
		eng:    NewEngineMem(kind, nil, mem),
		data:   make(map[DataID][]int),
		expect: make(map[string]map[delem]int),
		nodes:  make(map[*Node]*simNode),
	}
	for d, n := range universe {
		s.data[d] = make([]int, n)
	}
	return s
}

// runDifferentialMem executes prog in lockstep through the reference and
// the pooled build of the same engine kind, requiring identical ready sets
// at every step, identical final state and stats, quiescence, and — for
// the pooled engine — zero outstanding pool objects (no leaks, nothing
// freed twice: a double free would surface as a duplicate Get of the same
// pointer corrupting the ready sets).
func runDifferentialMem(t *testing.T, kind EngineKind, prog []*simTask, universe map[DataID]int64, seed int64) bool {
	ref := newSimEngineMem(t, kind, universe, mempool.KindReference)
	pool := newSimEngineMem(t, kind, universe, mempool.KindPooled)
	ref.start(prog)
	pool.start(prog)
	rng := rand.New(rand.NewSource(seed))
	for step := 0; ; step++ {
		rl := append([]string(nil), ref.readyLabels()...)
		pl := append([]string(nil), pool.readyLabels()...)
		sort.Strings(rl)
		sort.Strings(pl)
		if !equalStrings(rl, pl) {
			t.Errorf("step %d: ready sets diverged\n  reference: %v\n  pooled:    %v", step, rl, pl)
			return false
		}
		if len(rl) == 0 {
			break
		}
		pick := rl[rng.Intn(len(rl))]
		ref.step(pick)
		pool.step(pick)
		if t.Failed() {
			return false
		}
	}
	if ref.done != ref.total || pool.done != pool.total {
		t.Errorf("lost tasks: reference %d/%d, pooled %d/%d", ref.done, ref.total, pool.done, pool.total)
		return false
	}
	for d := range universe {
		for p := range ref.data[d] {
			if ref.data[d][p] != pool.data[d][p] {
				t.Errorf("final state diverged at data %d elem %d: reference %d, pooled %d",
					d, p, ref.data[d][p], pool.data[d][p])
				return false
			}
		}
	}
	rs, ps := ref.eng.Stats(), pool.eng.Stats()
	if rs != ps {
		t.Errorf("stats diverged:\n  reference: %+v\n  pooled:    %+v", rs, ps)
		return false
	}
	if lf := pool.eng.LiveFragments(); lf != 0 {
		t.Errorf("pooled engine not quiescent: %d live fragments", lf)
		return false
	}
	if _, pooled := ref.eng.MemStats(); pooled {
		t.Error("reference engine reports pooled MemStats")
		return false
	}
	ms, pooled := pool.eng.MemStats()
	if !pooled {
		t.Error("pooled engine reports no MemStats")
		return false
	}
	if n := ms.Outstanding(); n != 0 {
		t.Errorf("pooled engine leaked %d objects at quiescence: %+v", n, ms)
		return false
	}
	return true
}

func TestMemPoolDifferentialFlat(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both memory modes explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genMultiFlat(rng)
		for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
			if !runDifferentialMem(t, kind, prog, multiUniverse(), seed*29) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestMemPoolDifferentialNestedWeak(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("differential test instantiates both memory modes explicitly")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genMultiNested(rng, 3)
		for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
			if !runDifferentialMem(t, kind, prog, multiUniverse(), seed*53) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(32))}); err != nil {
		t.Fatal(err)
	}
}

// TestMemPoolRecyclingHappens pins that the pools actually recycle in
// steady state: a long chain over one engine must allocate far fewer nodes
// than it creates (News ≪ Gets), and drain back to zero outstanding.
func TestMemPoolRecyclingHappens(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("memory-mode test instantiates its engines explicitly")
	}
	for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
		e := NewEngineMem(kind, nil, mempool.KindPooled)
		root := e.NewNode(nil, "root", nil)
		e.Register(root, nil)
		ivs := []regions.Interval{regions.Iv(0, 64)}
		const ops = 5000
		var prev *Node
		for i := 0; i < ops; i++ {
			nd := e.NewNode(root, "t", nil)
			e.Register(nd, []Spec{{Data: 0, Type: InOut, Ivs: ivs}})
			if prev != nil {
				e.Complete(prev)
			}
			prev = nd
		}
		e.Complete(prev)
		ms, pooled := e.MemStats()
		if !pooled {
			t.Fatalf("%v: engine not pooled", kind)
		}
		if ms.Nodes.Gets < ops {
			t.Fatalf("%v: node gets %d < %d ops", kind, ms.Nodes.Gets, ops)
		}
		// Steady state keeps a bounded working set: the chain holds at most
		// two live nodes plus lane/batch slack, far below the op count.
		if ms.Nodes.News > ops/10 {
			t.Errorf("%v: %d fresh node allocations over %d ops; recycling is not engaging (%+v)",
				kind, ms.Nodes.News, ops, ms.Nodes)
		}
		if ms.Fragments.News > ops/10 {
			t.Errorf("%v: %d fresh fragment allocations over %d ops (%+v)", kind, ms.Fragments.News, ops, ms.Fragments)
		}
		// Root still holds its completion pin until Complete; everything
		// else must be back in the pools.
		e.Complete(root)
		ms, _ = e.MemStats()
		if n := ms.Outstanding(); n != 0 {
			t.Errorf("%v: %d objects outstanding after full drain: %+v", kind, n, ms)
		}
	}
}

// handleRecorder captures a generation-checked handle (and the label the
// node carried) for every node the engine creates.
type handleRecorder struct {
	NopObserver
	mu      sync.Mutex
	handles []NodeHandle
}

func (h *handleRecorder) NodeCreated(n, _ *Node) {
	h.mu.Lock()
	h.handles = append(h.handles, n.Handle())
	h.mu.Unlock()
}

func (h *handleRecorder) snapshot() []NodeHandle {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]NodeHandle(nil), h.handles...)
}

// TestMemPoolHandleStaleAccess is the recycling-safety stress (run it with
// -race): worker goroutines drive register→complete chains through a
// pooled sharded engine while an auditor continuously probes the handles
// of completed nodes. The generation guard must reject every stale access
// — a handle whose node was recycled reports ok=false instead of handing
// out the reincarnated node — and the label captured at handle time stays
// readable throughout.
func TestMemPoolHandleStaleAccess(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("memory-mode test instantiates its engines explicitly")
	}
	rec := &handleRecorder{}
	e := NewEngineMem(EngineSharded, rec, mempool.KindPooled)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	const workers = 4
	ops := 3000
	if testing.Short() {
		ops = 500
	}
	parents := make([]*Node, workers)
	for i := range parents {
		parents[i] = e.NewNode(root, fmt.Sprintf("gen%d", i), nil)
		e.Register(parents[i], nil)
	}
	stop := make(chan struct{})
	var auditor sync.WaitGroup
	auditor.Add(1)
	go func() {
		defer auditor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, h := range rec.snapshot() {
				if h.Label() == "" {
					t.Error("captured label lost")
					return
				}
				// Valid() and Node() race with recycling by design; the
				// generation check must stay race-free and definitive.
				if n, ok := h.Node(); ok && n == nil {
					t.Error("handle returned ok with nil node")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := DataID(i)
			ivs := []regions.Interval{regions.Iv(0, 16)}
			var prev *Node
			for n := 0; n < ops; n++ {
				nd := e.NewNode(parents[i], fmt.Sprintf("w%d.%d", i, n), nil)
				e.Register(nd, []Spec{{Data: data, Type: InOut, Ivs: ivs}})
				if prev != nil {
					e.Complete(prev)
				}
				prev = nd
			}
			e.Complete(prev)
		}(i)
	}
	wg.Wait()
	close(stop)
	auditor.Wait()
	for _, p := range parents {
		e.Complete(p)
	}
	e.Complete(root)
	// Everything has drained: every handle must now be stale, proving the
	// recycler bumped each node's generation exactly when it reclaimed it.
	stale, live := 0, 0
	for _, h := range rec.snapshot() {
		if h.Valid() {
			live++
		} else {
			stale++
		}
	}
	if live != 0 {
		t.Errorf("%d handles still valid after full drain (stale %d); nodes escaped recycling", live, stale)
	}
	ms, _ := e.MemStats()
	if n := ms.Outstanding(); n != 0 {
		t.Errorf("%d objects outstanding after drain: %+v", n, ms)
	}
}

// chainCycle runs one steady-state register→complete step; prev is the
// previous step's node (completed here), and the returned node feeds the
// next call.
func chainCycle(e Engine, parent, prev *Node, spec []Spec, buf []*Node) *Node {
	nd := e.NewNode(parent, "t", nil)
	e.Register(nd, spec)
	if prev != nil {
		e.CompleteInto(prev, buf[:0])
	}
	return nd
}

// weakCascadeCycle runs one steady-state weakwait-cascade step: an outer
// task with a weak inout over the whole range weakwaits over five
// children whose partially overlapping reader, reduction, and writer
// accesses split the outer domain's interval map and grow its cells'
// reader/reduction history lists — the workload whose remaining
// allocations are the pooled cellState lists.
// weakCascadeSpecs are the cascade cycle's depend clauses, hoisted so the
// steady-state measurement counts engine allocations, not the driver's.
var weakCascadeSpecs = struct {
	outer, r1, r2, red, w []Spec
}{
	outer: []Spec{{Data: 0, Type: InOut, Weak: true, Ivs: []regions.Interval{regions.Iv(0, 64)}}},
	r1:    []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(0, 32)}}},
	r2:    []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(8, 48)}}}, // splits the reader cells
	red:   []Spec{{Data: 0, Type: Red, Ivs: []regions.Interval{regions.Iv(32, 64)}}},
	w:     []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 64)}}},
}

func weakCascadeCycle(e Engine, gen *Node, buf []*Node, scratch []*Node) {
	outer := e.NewNode(gen, "outer", nil)
	e.Register(outer, weakCascadeSpecs.outer)
	mk := func(label string, specs []Spec) *Node {
		n := e.NewNode(outer, label, nil)
		e.Register(n, specs)
		return n
	}
	scratch = scratch[:0]
	scratch = append(scratch, mk("r1", weakCascadeSpecs.r1))
	scratch = append(scratch, mk("r2", weakCascadeSpecs.r2))
	scratch = append(scratch, mk("red1", weakCascadeSpecs.red))
	scratch = append(scratch, mk("red2", weakCascadeSpecs.red))
	// The writer orders after the readers and the reduction group and
	// dissolves the history.
	scratch = append(scratch, mk("w", weakCascadeSpecs.w))
	e.BodyDoneInto(outer, buf[:0])
	for _, n := range scratch {
		e.CompleteInto(n, buf[:0])
	}
	e.CompleteInto(outer, buf[:0])
}

// TestMemPoolAllocGate is the steady-state allocation gate of the pooled
// mode: after warm-up, a cycle through the pooled sharded engine must
// allocate at least 5x less than through the reference build. Two
// workloads: the disjoint submit→complete chain, and a deep weakwait
// cascade whose interval-map splits exercise the pooled cellState
// reader/reduction lists. (In practice the pooled cycles are at or near
// zero allocations; the ratio gate keeps the comparison robust to harness
// noise.)
func TestMemPoolAllocGate(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("memory-mode test instantiates its engines explicitly")
	}
	gate := func(t *testing.T, measure func(mem mempool.Kind) float64) {
		t.Helper()
		ref := measure(mempool.KindReference)
		pooled := measure(mempool.KindPooled)
		t.Logf("steady-state allocs/op: reference %.2f, pooled %.2f", ref, pooled)
		if pooled*5 > ref {
			t.Errorf("alloc gate failed: pooled %.2f allocs/op is not ≥5x below reference %.2f", pooled, ref)
		}
	}
	t.Run("chain", func(t *testing.T) {
		gate(t, func(mem mempool.Kind) float64 {
			e := NewEngineMem(EngineSharded, nil, mem)
			root := e.NewNode(nil, "root", nil)
			e.Register(root, nil)
			parent := e.NewNode(root, "gen", nil)
			e.Register(parent, nil)
			spec := []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 64)}}}
			buf := make([]*Node, 0, 4)
			var prev *Node
			for i := 0; i < 256; i++ { // warm-up: pools filled, maps grown
				prev = chainCycle(e, parent, prev, spec, buf)
			}
			allocs := testing.AllocsPerRun(2000, func() {
				prev = chainCycle(e, parent, prev, spec, buf)
			})
			return allocs
		})
	})
	t.Run("weakwait-cascade", func(t *testing.T) {
		gate(t, func(mem mempool.Kind) float64 {
			e := NewEngineMem(EngineSharded, nil, mem)
			root := e.NewNode(nil, "root", nil)
			e.Register(root, nil)
			gen := e.NewNode(root, "gen", nil)
			e.Register(gen, nil)
			buf := make([]*Node, 0, 8)
			scratch := make([]*Node, 0, 5)
			for i := 0; i < 64; i++ { // warm-up
				weakCascadeCycle(e, gen, buf, scratch)
			}
			return testing.AllocsPerRun(500, func() {
				weakCascadeCycle(e, gen, buf, scratch)
			})
		})
	})
}

// TestMemPoolWeakCascadeDrains pins the list-pool leak accounting: after
// the cascade workload fully drains, every pooled reader/reduction list
// must be back on a free list, and the pooled run must actually have
// recycled lists (Gets well above News).
func TestMemPoolWeakCascadeDrains(t *testing.T) {
	if testEngineKind != EngineGlobal {
		t.Skip("memory-mode test instantiates its engines explicitly")
	}
	for _, kind := range []EngineKind{EngineGlobal, EngineSharded} {
		e := NewEngineMem(kind, nil, mempool.KindPooled)
		root := e.NewNode(nil, "root", nil)
		e.Register(root, nil)
		gen := e.NewNode(root, "gen", nil)
		e.Register(gen, nil)
		buf := make([]*Node, 0, 8)
		scratch := make([]*Node, 0, 5)
		for i := 0; i < 200; i++ {
			weakCascadeCycle(e, gen, buf, scratch)
		}
		e.Complete(gen)
		e.Complete(root)
		ms, pooled := e.MemStats()
		if !pooled {
			t.Fatalf("%v: engine not pooled", kind)
		}
		if n := ms.Outstanding(); n != 0 {
			t.Errorf("%v: %d objects outstanding after drain: %+v", kind, n, ms)
		}
		if ms.FragLists.Gets == 0 {
			t.Errorf("%v: cascade exercised no pooled history lists", kind)
		}
		if ms.FragLists.News > ms.FragLists.Gets/10 {
			t.Errorf("%v: %d fresh list allocations over %d gets; list recycling is not engaging",
				kind, ms.FragLists.News, ms.FragLists.Gets)
		}
	}
}

// raceEnabled is set by race_enabled_test.go in race-instrumented builds.
var raceEnabled = false

// TestMemPoolW1Parity is the regression guard on the uncontended case: the
// pooled engine's free-list hops must not cost materially more than plain
// allocation when there is no GC pressure to win back. Mirrors
// TestSchedW1Parity / TestThrottleW1Parity.
func TestMemPoolW1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard; skipped in short mode")
	}
	if raceEnabled {
		t.Skip("timing guard; race instrumentation taxes the pooled path's atomics disproportionately")
	}
	if testEngineKind != EngineGlobal {
		t.Skip("memory-mode test instantiates its engines explicitly")
	}
	const ops = 100_000
	const trials = 5
	spec := []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 64)}}}
	run := func(mem mempool.Kind) time.Duration {
		e := NewEngineMem(EngineSharded, nil, mem)
		root := e.NewNode(nil, "root", nil)
		e.Register(root, nil)
		parent := e.NewNode(root, "gen", nil)
		e.Register(parent, nil)
		buf := make([]*Node, 0, 4)
		var prev *Node
		start := time.Now()
		for i := 0; i < ops; i++ {
			prev = chainCycle(e, parent, prev, spec, buf)
		}
		e.Complete(prev)
		return time.Since(start)
	}
	best := map[mempool.Kind]time.Duration{
		mempool.KindReference: 1<<63 - 1,
		mempool.KindPooled:    1<<63 - 1,
	}
	// Interleave trials so a transient stall hits both modes alike; take
	// the best trial per mode to filter noise (see TestSchedW1Parity).
	for trial := 0; trial < trials; trial++ {
		for _, mem := range []mempool.Kind{mempool.KindReference, mempool.KindPooled} {
			runtime.GC()
			if d := run(mem); d < best[mem] {
				best[mem] = d
			}
		}
	}
	if f := float64(best[mempool.KindPooled]) / float64(best[mempool.KindReference]); f > 1.5 {
		t.Errorf("pooled w=1: %.2fx slower than reference (%v vs %v); free-list fast path regressed",
			f, best[mempool.KindPooled], best[mempool.KindReference])
	}
}
