package deps

import (
	"fmt"
	"sync"

	"repro/internal/regions"
)

// Stats counts engine activity; useful for tests and for the ablation
// benchmarks that quantify dependency-tracking overhead (§VIII-A compares
// flat-taskwait against flat-depend for exactly this).
type Stats struct {
	Nodes     int64
	Fragments int64
	Links     int64 // same-domain successor links
	Inbounds  int64 // cross-domain (parent→child) waiter links
	Grants    int64 // satisfaction grants delivered
	Handovers int64 // pieces handed over at weakwait / release directive
	Releases  int64 // pieces released
}

// Engine computes and enforces dependencies for a tree of Nodes. All public
// methods are safe for concurrent use; internally a single mutex serializes
// the dependency structures, and an explicit event queue runs all cascades
// iteratively so no interval map is mutated while being iterated.
type Engine struct {
	mu        sync.Mutex
	queue     []event
	ready     []*Node
	obs       Observer
	stats     Stats
	liveFrags int64
}

type evKind uint8

const (
	evGrant     evKind = iota // deliver (dR,dW) to frag over iv
	evDomainDec               // decrement liveCount in node's parent domain
	evDrain                   // a handed-over piece's cell drained
)

type event struct {
	kind   evKind
	frag   *fragment
	iv     regions.Interval
	dR, dW int32
	owner  *Node // evDomainDec: domain owner
	data   DataID
}

// NewEngine returns an engine. obs may be nil.
func NewEngine(obs Observer) *Engine {
	return &Engine{obs: obs}
}

// Stats returns a snapshot of the activity counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// LiveFragments returns the number of fragments not yet fully released. A
// quiescent engine at the end of a run must report zero: a non-zero value
// means dependencies leaked, which the runtime's Debug mode turns into an
// end-of-run error.
func (e *Engine) LiveFragments() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.liveFrags
}

// NewNode creates a node under parent (nil for the root node). The node
// must be registered with Register before it can become ready.
func (e *Engine) NewNode(parent *Node, label string, user any) *Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Nodes++
	n := &Node{parent: parent, label: label, User: user}
	if e.obs != nil {
		e.obs.NodeCreated(n, parent)
	}
	return n
}

// Register links the node's depend entries into its parent's domain and
// reports whether the node is immediately ready to execute (all strong
// accesses satisfied — weak accesses never defer execution, §VI).
func (e *Engine) Register(n *Node, specs []Spec) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.registered {
		panic("deps: node registered twice: " + n.label)
	}
	if len(specs) > 0 && n.parent == nil {
		panic("deps: root node cannot have dependencies")
	}
	for _, spec := range specs {
		acc := &access{node: n, spec: spec}
		n.accesses = append(n.accesses, acc)
		am := n.accessMapEnsure(spec.Data)
		for _, iv := range spec.Ivs {
			if iv.Empty() {
				continue
			}
			overlap := false
			am.VisitRange(iv, func(regions.Interval, **fragment) { overlap = true })
			if overlap {
				panic(fmt.Sprintf("deps: task %q declares overlapping depend entries over data %d %v", n.label, spec.Data, iv))
			}
			f := newFragment(acc, iv)
			acc.frags = append(acc.frags, f)
			e.stats.Fragments++
			e.liveFrags++
			e.linkFragment(n, f)
			am.Set(iv, f)
		}
	}
	n.registered = true
	if n.unsat == 0 {
		n.readyNotified = true
		if e.obs != nil {
			e.obs.NodeReady(n)
		}
		return true
	}
	return false
}

// linkFragment fragments f against the parent domain and links each cell.
func (e *Engine) linkFragment(n *Node, f *fragment) {
	dm := n.parent.domainEnsure(f.data())
	dm.Materialize(f.iv,
		func(regions.Interval) cellState { return cellState{} },
		func(cIv regions.Interval, cs *cellState) {
			e.linkCell(n, f, cIv, cs)
		})
}

// linkCell links fragment f over one domain cell: RAW/WAR/WAW edges against
// the in-domain history, or an inbound link through the parent's own access
// when the cell has no usable history (§VI). Reduction accesses (§X) form
// commuting groups: they link after prior writers/readers but not after
// each other, and everything later links after the whole group.
func (e *Engine) linkCell(n *Node, f *fragment, cIv regions.Interval, cs *cellState) {
	virgin := cs.lastWriter == nil && !cs.written
	switch f.typ() {
	case In:
		if len(cs.reds) > 0 {
			// A reader after a reduction group waits for every member.
			for _, rd := range cs.reds {
				e.linkAfter(rd, f, cIv, 1, 0)
			}
		} else if cs.lastWriter != nil {
			e.linkAfter(cs.lastWriter, f, cIv, 1, 0)
		} else if !cs.written {
			e.inbound(n, f, cIv, false)
		}
		cs.readers = append(cs.readers, f)
	case Red:
		// Order after the pre-group history; commute with other members.
		// Note: written is NOT set — each group member on a virgin base
		// must inbound-link individually (like concurrent readers), and
		// later accesses order after the group members transitively.
		if cs.lastWriter != nil {
			e.linkAfter(cs.lastWriter, f, cIv, 1, 1)
		}
		for _, r := range cs.readers {
			e.linkAfter(r, f, cIv, 0, 1)
		}
		if virgin {
			e.inbound(n, f, cIv, true)
		}
		cs.reds = append(cs.reds, f)
	default: // Out, InOut
		if cs.lastWriter != nil {
			e.linkAfter(cs.lastWriter, f, cIv, 1, 1)
		}
		for _, r := range cs.readers {
			e.linkAfter(r, f, cIv, 0, 1)
		}
		for _, rd := range cs.reds {
			e.linkAfter(rd, f, cIv, 1, 1)
		}
		if virgin {
			e.inbound(n, f, cIv, true)
		}
		cs.lastWriter = f
		cs.readers = nil
		cs.reds = nil
		cs.written = true
	}
	cs.liveCount++
}

// linkAfter creates successor links from every unreleased piece of pred
// inside iv to g, and charges the corresponding pending grants to g.
func (e *Engine) linkAfter(pred, g *fragment, iv regions.Interval, dR, dW int32) {
	if pred.node() == g.node() {
		// A task never depends on itself; overlapping own entries are
		// rejected at registration, so this only guards engine internals.
		return
	}
	pred.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		e.addPending(g, pIv, dR, dW)
		pred.succs = append(pred.succs, link{target: g, iv: pIv, dR: dR, dW: dW})
		e.stats.Links++
		if e.obs != nil {
			e.obs.Link(pred.node(), g.node(), g.data(), pIv, false)
		}
	})
}

// inbound links fragment f over cIv through the parent's own access
// fragments: the child waits for the parent access's read (reader) or write
// (writer) satisfaction. Intervals with no covering parent access are
// unprotected and impose no ordering.
func (e *Engine) inbound(n *Node, f *fragment, cIv regions.Interval, isWrite bool) {
	parent := n.parent
	if parent.accessMap == nil {
		return
	}
	am := parent.accessMap[f.data()]
	if am == nil {
		return
	}
	am.VisitRange(cIv, func(aIv regions.Interval, pfp **fragment) {
		pf := *pfp
		if isWrite && pf.typ() == In {
			panic(fmt.Sprintf("deps: task %q writes data %d %v which parent %q covers with a read-only access",
				n.label, f.data(), aIv, parent.label))
		}
		pf.state.VisitRange(aIv, func(pIv regions.Interval, ps *pieceState) {
			if isWrite {
				if ps.wSat() {
					return
				}
				e.addPending(f, pIv, 1, 1)
				pf.wWaiters = append(pf.wWaiters, link{target: f, iv: pIv, dR: 1, dW: 1})
			} else {
				if ps.rSat() {
					return
				}
				e.addPending(f, pIv, 1, 0)
				pf.rWaiters = append(pf.rWaiters, link{target: f, iv: pIv, dR: 1, dW: 0})
			}
			e.stats.Inbounds++
			if e.obs != nil {
				e.obs.Link(parent, n, f.data(), pIv, true)
			}
		})
	})
}

// addPending charges (dR,dW) outstanding grants to g over iv, maintaining
// the owner node's unsatisfied-length accounting for strong accesses.
func (e *Engine) addPending(g *fragment, iv regions.Interval, dR, dW int32) {
	n := g.node()
	strong := !g.weak()
	reader := g.typ() == In
	g.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if dR > 0 {
			if strong && reader && ps.pendR == 0 {
				n.unsat += pIv.Len()
			}
			ps.pendR += dR
		}
		if dW > 0 {
			if strong && !reader && ps.pendW == 0 {
				n.unsat += pIv.Len()
			}
			ps.pendW += dW
		}
	})
}

// BodyDone implements the weakwait clause (§V): the task's code has ended,
// so every access piece not covered by a live child access releases
// immediately, and covered pieces are handed over to release when the
// covering child accesses drain. Returns nodes that became ready.
func (e *Engine) BodyDone(n *Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.handOverOrRelease(n, f, f.iv)
		}
	}
	e.drainQueue()
	return e.takeReady()
}

// ReleaseRegions implements the release directive (§V): the task asserts it
// and its future subtasks will no longer reference the given subset of its
// depend clause. Covered pieces are handed over / released exactly as at
// weakwait, and the regions are removed from the access map so future
// children cannot link through them. Types and weakness in specs are
// ignored; only (Data, Ivs) select what to release.
func (e *Engine) ReleaseRegions(n *Node, specs []Spec) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, spec := range specs {
		if n.accessMap == nil {
			continue
		}
		am := n.accessMap[spec.Data]
		if am == nil {
			continue
		}
		for _, iv := range spec.Ivs {
			type pair struct {
				f  *fragment
				iv regions.Interval
			}
			var pairs []pair
			am.VisitRange(iv, func(aIv regions.Interval, pfp **fragment) {
				pairs = append(pairs, pair{*pfp, aIv})
			})
			for _, p := range pairs {
				e.handOverOrRelease(n, p.f, p.iv)
			}
			am.Remove(iv)
		}
	}
	e.drainQueue()
	return e.takeReady()
}

// Complete finalizes the node once its code and all descendants have
// finished: every remaining piece is marked done and released as soon as it
// is satisfied. For NoWait/Wait tasks this is the single bulk release the
// paper attributes to taskwait-terminated tasks; for WeakWait tasks it only
// sweeps pieces that were never handed over.
func (e *Engine) Complete(n *Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	n.completed = true
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.markDone(f, f.iv)
		}
	}
	e.drainQueue()
	return e.takeReady()
}

// handOverOrRelease applies the fine-grained release logic to fragment f
// over iv: pieces over live inner-domain cells are handed over; everything
// else is marked done (released once satisfied).
func (e *Engine) handOverOrRelease(n *Node, f *fragment, iv regions.Interval) {
	dm := (*regions.Map[cellState])(nil)
	if n.domain != nil {
		dm = n.domain[f.data()]
	}
	if dm == nil {
		e.markDone(f, iv)
		return
	}
	dm.VisitRangeGaps(iv,
		func(cIv regions.Interval, cs *cellState) {
			if cs.liveCount > 0 {
				if cs.handover != nil && cs.handover != f {
					panic("deps: conflicting hand-over targets over one cell")
				}
				cs.handover = f
				e.stats.Handovers++
				f.state.VisitRange(cIv, func(pIv regions.Interval, ps *pieceState) {
					if !ps.released {
						ps.done = true
						ps.waitDrain = true
					}
				})
				if e.obs != nil {
					e.obs.Handover(n, f.data(), cIv)
				}
			} else {
				e.markDone(f, cIv)
			}
		},
		func(gap regions.Interval) {
			e.markDone(f, gap)
		})
}

// markDone marks f's pieces over iv as having reached their completion
// point and releases the ones already satisfied.
func (e *Engine) markDone(f *fragment, iv regions.Interval) {
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		ps.done = true
		ps.waitDrain = false
		e.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

// releasedEqual merges adjacent fully released pieces: once released, no
// field of a piece is ever read again (tryRelease normalizes the counters),
// so all released pieces are interchangeable. Without this coalescing a
// long-lived fragment — e.g. the whole-range weak access of an outer task —
// accumulates one map entry per piece-wise release of its subtree and every
// later split pays a linear shift, turning deep weakwait cascades
// quadratic.
func releasedEqual(a, b pieceState) bool { return a.released && b.released }

// tryRelease releases the piece if all release conditions hold. Cascade
// effects are pushed on the event queue.
func (e *Engine) tryRelease(f *fragment, pIv regions.Interval, ps *pieceState) {
	if ps.released || !ps.done || ps.waitDrain || !ps.typeSat(f.typ()) {
		return
	}
	ps.released = true
	// Normalize the dead piece so adjacent released pieces compare equal
	// and coalesce (releasedEqual); nothing reads these fields afterwards.
	ps.pendR, ps.pendW = 0, 0
	e.stats.Releases++
	f.relLen += pIv.Len()
	if f.relLen == f.iv.Len() {
		e.liveFrags--
	}
	if e.obs != nil {
		e.obs.Released(f.node(), f.data(), pIv)
	}
	for _, l := range f.succs {
		ov := l.iv.Intersect(pIv)
		if !ov.Empty() {
			e.queue = append(e.queue, event{kind: evGrant, frag: l.target, iv: ov, dR: l.dR, dW: l.dW})
		}
	}
	if f.node().parent != nil {
		e.queue = append(e.queue, event{kind: evDomainDec, owner: f.node().parent, data: f.data(), iv: pIv})
	}
}

// drainQueue processes cascade events until quiescence. Each handler visits
// exactly one interval map and defers further effects to the queue.
func (e *Engine) drainQueue() {
	for i := 0; i < len(e.queue); i++ {
		ev := e.queue[i]
		switch ev.kind {
		case evGrant:
			e.handleGrant(ev.frag, ev.iv, ev.dR, ev.dW)
		case evDomainDec:
			e.handleDomainDec(ev.owner, ev.data, ev.iv)
		case evDrain:
			e.handleDrain(ev.frag, ev.iv)
		}
	}
	e.queue = e.queue[:0]
}

// handleGrant delivers a satisfaction grant to frag over iv, firing
// satisfaction transitions: node readiness for strong accesses, waiter
// grants for weak linking points, and release checks.
func (e *Engine) handleGrant(f *fragment, iv regions.Interval, dR, dW int32) {
	e.stats.Grants++
	n := f.node()
	strong := !f.weak()
	reader := f.typ() == In
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		rSatNow, wSatNow := false, false
		if dR > 0 {
			if ps.pendR < dR {
				panic("deps: read-satisfaction grant underflow")
			}
			ps.pendR -= dR
			rSatNow = ps.pendR == 0
		}
		if dW > 0 {
			if ps.pendW < dW {
				panic("deps: write-satisfaction grant underflow")
			}
			ps.pendW -= dW
			wSatNow = ps.pendW == 0
		}
		if strong {
			if (reader && rSatNow) || (!reader && wSatNow) {
				e.nodeSatisfy(n, pIv.Len())
			}
		}
		if rSatNow {
			e.queueWaiterGrants(f.rWaiters, pIv)
		}
		if wSatNow {
			e.queueWaiterGrants(f.wWaiters, pIv)
		}
		e.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

func (e *Engine) queueWaiterGrants(waiters []link, pIv regions.Interval) {
	for _, w := range waiters {
		ov := w.iv.Intersect(pIv)
		if !ov.Empty() {
			e.queue = append(e.queue, event{kind: evGrant, frag: w.target, iv: ov, dR: w.dR, dW: w.dW})
		}
	}
}

// handleDomainDec decrements the live-registration count of the owner's
// domain cells over iv; cells that drain fire their pending hand-over.
func (e *Engine) handleDomainDec(owner *Node, data DataID, iv regions.Interval) {
	dm := owner.domain[data]
	if dm == nil {
		panic("deps: domain-dec on missing domain")
	}
	dm.VisitRange(iv, func(cIv regions.Interval, cs *cellState) {
		if cs.liveCount <= 0 {
			panic("deps: domain live-count underflow")
		}
		cs.liveCount--
		if cs.liveCount == 0 && cs.handover != nil {
			h := cs.handover
			cs.handover = nil
			e.queue = append(e.queue, event{kind: evDrain, frag: h, iv: cIv})
		}
	})
	dm.MergeRange(iv, drainedCellsEqual)
}

// drainedCellsEqual merges adjacent drained domain cells. Cells split at
// the boundaries of every child fragment piece that releases over them;
// once drained (no live registration, no pending hand-over, no reader or
// reduction history) two neighbors with the same writer history behave
// identically for all future registrations, so the split can be undone.
// Without this, an outer task's domain accumulates one cell per descendant
// release and deep weakwait programs turn quadratic.
func drainedCellsEqual(a, b cellState) bool {
	return a.liveCount == 0 && b.liveCount == 0 &&
		a.handover == nil && b.handover == nil &&
		len(a.readers) == 0 && len(b.readers) == 0 &&
		len(a.reds) == 0 && len(b.reds) == 0 &&
		a.lastWriter == b.lastWriter && a.written == b.written
}

// handleDrain completes the hand-over: the inner-domain cells covering this
// piece have fully drained, so the piece may release (once satisfied).
func (e *Engine) handleDrain(f *fragment, iv regions.Interval) {
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		ps.waitDrain = false
		e.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

func (e *Engine) nodeSatisfy(n *Node, length int64) {
	n.unsat -= length
	if n.unsat < 0 {
		panic("deps: node unsatisfied-length underflow")
	}
	if n.unsat == 0 && n.registered && !n.readyNotified {
		n.readyNotified = true
		e.ready = append(e.ready, n)
		if e.obs != nil {
			e.obs.NodeReady(n)
		}
	}
}

func (e *Engine) takeReady() []*Node {
	if len(e.ready) == 0 {
		return nil
	}
	out := make([]*Node, len(e.ready))
	copy(out, e.ready)
	e.ready = e.ready[:0]
	return out
}
