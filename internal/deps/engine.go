package deps

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mempool"
	"repro/internal/regions"
)

// Stats counts engine activity; useful for tests and for the ablation
// benchmarks that quantify dependency-tracking overhead (§VIII-A compares
// flat-taskwait against flat-depend for exactly this).
type Stats struct {
	Nodes     int64 // nodes created
	Fragments int64 // access fragments created by interval splitting
	Links     int64 // same-domain successor links
	Inbounds  int64 // cross-domain (parent→child) waiter links
	Grants    int64 // satisfaction grants delivered
	Handovers int64 // pieces handed over at weakwait / release directive
	Releases  int64 // pieces released
}

func (s *Stats) add(o Stats) {
	s.Nodes += o.Nodes
	s.Fragments += o.Fragments
	s.Links += o.Links
	s.Inbounds += o.Inbounds
	s.Grants += o.Grants
	s.Handovers += o.Handovers
	s.Releases += o.Releases
}

// Engine computes and enforces dependencies for a tree of Nodes. All
// methods are safe for concurrent use. Two implementations share the exact
// same linking and release semantics and differ only in their locking
// discipline:
//
//   - GlobalEngine serializes every operation behind one mutex (the
//     reference implementation, and the simplest to reason about).
//   - ShardedEngine partitions all dependency state per data object, so
//     tasks whose depend clauses touch disjoint data register, fragment,
//     and release fully concurrently.
//
// The differential tests in this package drive both implementations in
// lockstep over randomly generated programs to prove them observably
// equivalent.
type Engine interface {
	// Stats returns a snapshot of the activity counters.
	Stats() Stats
	// LiveFragments returns the number of fragments not yet fully released.
	// A quiescent engine at the end of a run must report zero: a non-zero
	// value means dependencies leaked, which the runtime's Debug mode turns
	// into an end-of-run error.
	LiveFragments() int64
	// NewNode creates a node under parent (nil for the root node). The node
	// must be registered with Register before it can become ready.
	NewNode(parent *Node, label string, user any) *Node
	// Register links the node's depend entries into its parent's domain and
	// reports whether the node is immediately ready to execute (all strong
	// accesses satisfied — weak accesses never defer execution, §VI).
	Register(n *Node, specs []Spec) bool
	// BodyDone implements the weakwait clause (§V): the task's code has
	// ended, so every access piece not covered by a live child access
	// releases immediately, and covered pieces are handed over to release
	// when the covering child accesses drain. Returns nodes that became
	// ready.
	BodyDone(n *Node) []*Node
	// ReleaseRegions implements the release directive (§V): the task asserts
	// it and its future subtasks will no longer reference the given subset
	// of its depend clause. Covered pieces are handed over / released
	// exactly as at weakwait, and the regions are removed from the access
	// map so future children cannot link through them. Types and weakness
	// in specs are ignored; only (Data, Ivs) select what to release.
	ReleaseRegions(n *Node, specs []Spec) []*Node
	// Complete finalizes the node once its code and all descendants have
	// finished: every remaining piece is marked done and released as soon as
	// it is satisfied. For NoWait/Wait tasks this is the single bulk release
	// the paper attributes to taskwait-terminated tasks; for WeakWait tasks
	// it only sweeps pieces that were never handed over.
	//
	// Under a pooled engine (NewEngineMem with mempool.KindPooled) the
	// node — and, transitively, drained ancestors — may be recycled before
	// Complete returns: the caller must not touch n afterwards except
	// through a NodeHandle captured earlier. The returned ready nodes are
	// always live (a ready node is not yet complete).
	Complete(n *Node) []*Node

	// BodyDoneInto, ReleaseRegionsInto, and CompleteInto are the
	// allocation-free variants of the three release points: ready nodes
	// are appended to out (which may be nil) and the extended slice is
	// returned, so a caller cycling a scratch buffer pays no allocation
	// per completion in steady state.
	BodyDoneInto(n *Node, out []*Node) []*Node
	ReleaseRegionsInto(n *Node, specs []Spec, out []*Node) []*Node
	CompleteInto(n *Node, out []*Node) []*Node

	// MemStats returns the engine's memory-pool counters; pooled reports
	// whether the engine recycles at all (false for reference engines,
	// whose MemStats is zero).
	MemStats() (stats MemStats, pooled bool)

	// SetEdgeHook installs fn to receive every dependency edge the engine
	// materializes — same-domain successor links (inbound=false) and
	// cross-domain parent→child satisfaction links (inbound=true) — or
	// uninstalls it when fn is nil. Unlike an Observer, the hook may be
	// installed and removed mid-run (the record-and-replay cache attaches
	// it only while a graph region is recording); the swap is atomic, and
	// an edge whose Register call started before the install may or may
	// not be delivered. fn runs under the engine lock covering the edge's
	// data object: it must be fast, must not call back into the engine,
	// and must do its own serialization if it aggregates across shards.
	// Note the delivered set is timing-dependent by design — an edge is
	// materialized only if the predecessor's piece was still unreleased
	// when the successor registered (see internal/replay for why a replay
	// cache must therefore not treat it as the complete semantic edge
	// set).
	SetEdgeHook(fn EdgeHook)
}

// EdgeHook observes materialized dependency edges (Engine.SetEdgeHook).
type EdgeHook func(pred, succ *Node, inbound bool)

// EngineKind selects an Engine implementation.
type EngineKind uint8

const (
	// EngineAuto lets the caller pick a default; it resolves to
	// EngineSharded everywhere (deps.NewEngine and the core runtime, in
	// both real and virtual mode — the sharded engine's ready ordering
	// reproduces the recorded virtual golden makespans, see the golden
	// tests in internal/workloads).
	EngineAuto EngineKind = iota
	// EngineGlobal is the single-mutex reference engine.
	EngineGlobal
	// EngineSharded is the per-data-object sharded engine.
	EngineSharded
)

// String returns the kind's depbench/table name.
func (k EngineKind) String() string {
	switch k {
	case EngineGlobal:
		return "global"
	case EngineSharded:
		return "sharded"
	}
	return "auto"
}

// NewEngine returns an engine of the given kind with the reference
// (allocate-always) memory mode. obs may be nil. EngineAuto resolves to
// the sharded engine.
func NewEngine(kind EngineKind, obs Observer) Engine {
	return NewEngineMem(kind, obs, mempool.KindReference)
}

// NewEngineMem returns an engine of the given kind and memory mode.
// mempool.KindPooled recycles every dependency-lifecycle object (nodes,
// accesses, fragments, interval maps) through typed free lists; any other
// mode is the allocate-always reference. EngineAuto resolves to the
// sharded engine; mempool.KindAuto resolves to the reference mode (the
// runtime, not the engine, decides what auto means — see
// core.Config.MemPool).
func NewEngineMem(kind EngineKind, obs Observer, mem mempool.Kind) Engine {
	pooled := mem == mempool.KindPooled
	if kind == EngineGlobal {
		return newGlobalEngine(obs, pooled)
	}
	return newShardedEngine(obs, pooled)
}

type evKind uint8

const (
	evGrant     evKind = iota // deliver (dR,dW) to frag over iv
	evDomainDec               // decrement liveCount in node's parent domain
	evDrain                   // a handed-over piece's cell drained
)

type event struct {
	kind evKind
	// frag is the grant/drain target, or — for evDomainDec — the released
	// fragment whose registration drains from the owner's domain (the
	// handler scrubs it from the visited cells' history).
	frag   *fragment
	iv     regions.Interval
	dR, dW int32
	owner  *Node // evDomainDec: domain owner (pinned while the event is queued)
	data   DataID
}

// depCore holds the dependency structures' mutable bookkeeping — the event
// queue, the ready list, and the activity counters — together with every
// linking and cascade rule of the engine. It is the lock-free heart shared
// by both Engine implementations: GlobalEngine owns exactly one depCore
// behind one mutex; ShardedEngine owns one per data-object shard, each
// behind its own mutex. A depCore must only be entered while holding the
// owning lock, and every interval map it touches must belong to that lock's
// shard (for the global engine: everything).
//
// All cascade effects (satisfaction grants, domain drain, hand-over
// release) run through the explicit event queue so that no interval map is
// structurally modified while being iterated. Crucially, every event stays
// within the data object that produced it — successor links, inbound waiter
// links, domain cells, and hand-over targets all connect fragments of one
// DataID — which is the property that makes per-data sharding sound.
type depCore struct {
	queue     []event
	ready     []*Node
	stats     Stats
	liveFrags int64
	obs       Observer
	// hook points at the engine-wide edge-hook slot (shared by all shards;
	// set once at engine construction). The pointer load is the only cost
	// on the linking path while no hook is installed.
	hook *atomic.Pointer[EdgeHook]
	// mem is this core's view of the engine's free lists (nil in the
	// reference memory mode): lifecycle objects are allocated from and
	// recycled to it, entered only under the owning lock.
	mem *depMem
}

// registerSpec links one depend entry of n. The caller holds the lock
// covering spec.Data and has already run the registration-wide sanity
// checks. Registration only creates fragments and charges pending grants —
// it never releases anything, so no event can be queued here.
func (c *depCore) registerSpec(n *Node, spec Spec) {
	var acc *access
	if c.mem != nil {
		acc = c.mem.accs.Get()
		acc.node, acc.spec = n, spec
	} else {
		acc = &access{node: n, spec: spec}
	}
	n.accesses = append(n.accesses, acc)
	am := n.accessMapEnsure(spec.Data, c.mem)
	for _, iv := range spec.Ivs {
		if iv.Empty() {
			continue
		}
		overlap := false
		am.VisitRange(iv, func(regions.Interval, **fragment) { overlap = true })
		if overlap {
			panic(fmt.Sprintf("deps: task %q declares overlapping depend entries over data %d %v", n.label, spec.Data, iv))
		}
		var f *fragment
		if c.mem != nil {
			f = c.mem.frags.Get()
			f.init(acc, iv)
			n.pins.Add(1) // released when the fragment fully releases
		} else {
			f = newFragment(acc, iv)
		}
		acc.frags = append(acc.frags, f)
		c.stats.Fragments++
		c.liveFrags++
		c.linkFragment(n, f)
		am.Set(iv, f)
	}
}

// linkFragment fragments f against the parent domain and links each cell.
func (c *depCore) linkFragment(n *Node, f *fragment) {
	dm := n.parent.domainEnsure(f.data(), c.mem)
	dm.Materialize(f.iv,
		func(regions.Interval) cellState { return cellState{} },
		func(cIv regions.Interval, cs *cellState) {
			c.linkCell(n, f, cIv, cs)
		})
}

// linkCell links fragment f over one domain cell: RAW/WAR/WAW edges against
// the in-domain history, or an inbound link through the parent's own access
// when the cell has no usable history (§VI). Reduction accesses (§X) form
// commuting groups: they link after prior writers/readers but not after
// each other, and everything later links after the whole group.
func (c *depCore) linkCell(n *Node, f *fragment, cIv regions.Interval, cs *cellState) {
	virgin := cs.lastWriter == nil && !cs.written
	switch f.typ() {
	case In:
		if !cs.reds.empty() {
			// A reader after a reduction group waits for every member.
			for _, rd := range cs.reds.frags() {
				c.linkAfter(rd, f, cIv, 1, 0)
			}
		} else if cs.lastWriter != nil {
			c.linkAfter(cs.lastWriter, f, cIv, 1, 0)
		} else if !cs.written {
			c.inbound(n, f, cIv, false)
		}
		cs.readers = c.listAppend(cs.readers, f)
	case Red:
		// Order after the pre-group history; commute with other members.
		// Note: written is NOT set — each group member on a virgin base
		// must inbound-link individually (like concurrent readers), and
		// later accesses order after the group members transitively.
		if cs.lastWriter != nil {
			c.linkAfter(cs.lastWriter, f, cIv, 1, 1)
		}
		for _, r := range cs.readers.frags() {
			c.linkAfter(r, f, cIv, 0, 1)
		}
		if virgin {
			c.inbound(n, f, cIv, true)
		}
		cs.reds = c.listAppend(cs.reds, f)
	default: // Out, InOut
		if cs.lastWriter != nil {
			c.linkAfter(cs.lastWriter, f, cIv, 1, 1)
		}
		for _, r := range cs.readers.frags() {
			c.linkAfter(r, f, cIv, 0, 1)
		}
		for _, rd := range cs.reds.frags() {
			c.linkAfter(rd, f, cIv, 1, 1)
		}
		if virgin {
			c.inbound(n, f, cIv, true)
		}
		cs.lastWriter = f
		c.listDrop(&cs.readers) // the write dissolves the history
		c.listDrop(&cs.reds)
		cs.written = true
	}
	cs.liveCount++
}

// listAppend appends f to a cell history list, drawing a pooled list when
// the cell has none yet. Caller holds the owning shard's lock.
func (c *depCore) listAppend(l *fragList, f *fragment) *fragList {
	if l == nil {
		if c.mem != nil {
			l = c.mem.flists.Get()
		} else {
			l = &fragList{}
		}
	}
	l.s = append(l.s, f)
	return l
}

// listDrop empties a cell history list and returns it to the pool,
// restoring the nil-on-empty invariant (reference mode leaves it to the
// collector).
func (c *depCore) listDrop(lp **fragList) {
	l := *lp
	if l == nil {
		return
	}
	l.resetForPool()
	if c.mem != nil {
		c.mem.flists.Put(l)
	}
	*lp = nil
}

// listRemove deletes f from a cell history list, recycling the list when
// it empties.
func (c *depCore) listRemove(lp **fragList, f *fragment) {
	l := *lp
	if l == nil {
		return
	}
	l.s = removeFrag(l.s, f)
	if len(l.s) == 0 {
		c.listDrop(lp)
	}
}

// scrubCell removes the released fragment f from the cell's access
// history. Observably equivalent to keeping it — linkAfter over a fully
// released fragment creates no links and charges nothing, and the written
// flag (not the lastWriter pointer) is what suppresses inbound linking —
// but it unpins the fragment's memory from the domain: without the scrub
// a released fragment would stay reachable as history for as long as the
// cell lives, which both leaks it (reference mode) and forbids recycling
// it (pooled mode). Scrubbed cells also merge better: drained neighbors
// compare equal once their dead writers are gone.
func (c *depCore) scrubCell(cs *cellState, f *fragment) {
	if cs.lastWriter == f {
		cs.lastWriter = nil // written stays true: the history is still "dirty"
	}
	c.listRemove(&cs.readers, f)
	c.listRemove(&cs.reds, f)
}

// linkAfter creates successor links from every unreleased piece of pred
// inside iv to g, and charges the corresponding pending grants to g.
func (c *depCore) linkAfter(pred, g *fragment, iv regions.Interval, dR, dW int32) {
	if pred.node() == g.node() {
		// A task never depends on itself; overlapping own entries are
		// rejected at registration, so this only guards engine internals.
		return
	}
	pred.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		c.addPending(g, pIv, dR, dW)
		pred.succs = append(pred.succs, link{target: g, iv: pIv, dR: dR, dW: dW})
		c.stats.Links++
		if c.obs != nil {
			c.obs.Link(pred.node(), g.node(), g.data(), pIv, false)
		}
		if h := c.hook.Load(); h != nil {
			(*h)(pred.node(), g.node(), false)
		}
	})
}

// inbound links fragment f over cIv through the parent's own access
// fragments: the child waits for the parent access's read (reader) or write
// (writer) satisfaction. Intervals with no covering parent access are
// unprotected and impose no ordering.
func (c *depCore) inbound(n *Node, f *fragment, cIv regions.Interval, isWrite bool) {
	parent := n.parent
	am := parent.accessMapFor(f.data())
	if am == nil {
		return
	}
	am.VisitRange(cIv, func(aIv regions.Interval, pfp **fragment) {
		pf := *pfp
		if isWrite && pf.typ() == In {
			panic(fmt.Sprintf("deps: task %q writes data %d %v which parent %q covers with a read-only access",
				n.label, f.data(), aIv, parent.label))
		}
		pf.state.VisitRange(aIv, func(pIv regions.Interval, ps *pieceState) {
			if isWrite {
				if ps.wSat() {
					return
				}
				c.addPending(f, pIv, 1, 1)
				pf.wWaiters = append(pf.wWaiters, link{target: f, iv: pIv, dR: 1, dW: 1})
			} else {
				if ps.rSat() {
					return
				}
				c.addPending(f, pIv, 1, 0)
				pf.rWaiters = append(pf.rWaiters, link{target: f, iv: pIv, dR: 1, dW: 0})
			}
			c.stats.Inbounds++
			if c.obs != nil {
				c.obs.Link(parent, n, f.data(), pIv, true)
			}
			if h := c.hook.Load(); h != nil {
				(*h)(parent, n, true)
			}
		})
	})
}

// addPending charges (dR,dW) outstanding grants to g over iv, maintaining
// the owner node's unsatisfied-length accounting for strong accesses.
func (c *depCore) addPending(g *fragment, iv regions.Interval, dR, dW int32) {
	n := g.node()
	strong := !g.weak()
	reader := g.typ() == In
	g.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if dR > 0 {
			if strong && reader && ps.pendR == 0 {
				n.unsat.Add(pIv.Len())
			}
			ps.pendR += dR
		}
		if dW > 0 {
			if strong && !reader && ps.pendW == 0 {
				n.unsat.Add(pIv.Len())
			}
			ps.pendW += dW
		}
	})
}

// releaseSpec applies the release directive to one spec: covered pieces
// are handed over / released exactly as at weakwait, and the regions are
// removed from the access map so future children cannot link through them.
// The caller holds the lock covering spec.Data.
func (c *depCore) releaseSpec(n *Node, spec Spec) {
	am := n.accessMapFor(spec.Data)
	if am == nil {
		return
	}
	for _, iv := range spec.Ivs {
		type pair struct {
			f  *fragment
			iv regions.Interval
		}
		var pairs []pair
		am.VisitRange(iv, func(aIv regions.Interval, pfp **fragment) {
			pairs = append(pairs, pair{*pfp, aIv})
		})
		for _, p := range pairs {
			c.handOverOrRelease(n, p.f, p.iv)
		}
		am.Remove(iv)
	}
}

// handOverOrRelease applies the fine-grained release logic to fragment f
// over iv: pieces over live inner-domain cells are handed over; everything
// else is marked done (released once satisfied).
func (c *depCore) handOverOrRelease(n *Node, f *fragment, iv regions.Interval) {
	dm := n.domainFor(f.data())
	if dm == nil {
		c.markDone(f, iv)
		return
	}
	dm.VisitRangeGaps(iv,
		func(cIv regions.Interval, cs *cellState) {
			if cs.liveCount > 0 {
				if cs.handover != nil && cs.handover != f {
					panic("deps: conflicting hand-over targets over one cell")
				}
				cs.handover = f
				c.stats.Handovers++
				f.state.VisitRange(cIv, func(pIv regions.Interval, ps *pieceState) {
					if !ps.released {
						ps.done = true
						ps.waitDrain = true
					}
				})
				if c.obs != nil {
					c.obs.Handover(n, f.data(), cIv)
				}
			} else {
				c.markDone(f, cIv)
			}
		},
		func(gap regions.Interval) {
			c.markDone(f, gap)
		})
}

// markDone marks f's pieces over iv as having reached their completion
// point and releases the ones already satisfied.
func (c *depCore) markDone(f *fragment, iv regions.Interval) {
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		ps.done = true
		ps.waitDrain = false
		c.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

// releasedEqual merges adjacent fully released pieces: once released, no
// field of a piece is ever read again (tryRelease normalizes the counters),
// so all released pieces are interchangeable. Without this coalescing a
// long-lived fragment — e.g. the whole-range weak access of an outer task —
// accumulates one map entry per piece-wise release of its subtree and every
// later split pays a linear shift, turning deep weakwait cascades
// quadratic.
func releasedEqual(a, b pieceState) bool { return a.released && b.released }

// tryRelease releases the piece if all release conditions hold. Cascade
// effects are pushed on the event queue.
func (c *depCore) tryRelease(f *fragment, pIv regions.Interval, ps *pieceState) {
	if ps.released || !ps.done || ps.waitDrain || !ps.typeSat(f.typ()) {
		return
	}
	ps.released = true
	// Normalize the dead piece so adjacent released pieces compare equal
	// and coalesce (releasedEqual); nothing reads these fields afterwards.
	ps.pendR, ps.pendW = 0, 0
	c.stats.Releases++
	f.relLen += pIv.Len()
	full := f.relLen == f.iv.Len()
	if full {
		c.liveFrags--
	}
	if c.obs != nil {
		c.obs.Released(f.node(), f.data(), pIv)
	}
	for _, l := range f.succs {
		ov := l.iv.Intersect(pIv)
		if !ov.Empty() {
			c.queue = append(c.queue, event{kind: evGrant, frag: l.target, iv: ov, dR: l.dR, dW: l.dW})
		}
	}
	if parent := f.node().parent; parent != nil {
		if c.mem != nil {
			// The queued event will touch parent's domain map: pin the
			// parent so a concurrent drain cascade cannot recycle it (and
			// the map) before the event is processed.
			parent.pins.Add(1)
		}
		c.queue = append(c.queue, event{kind: evDomainDec, frag: f, owner: parent, data: f.data(), iv: pIv})
	}
	if full && c.mem != nil {
		// The fragment's last piece released: drop its pin on the owning
		// node (queued above first, so the parent pin is already in place
		// if this drains the node and cascades upward).
		c.mem.ep.unpin(f.node(), c.mem)
	}
}

// drainQueue processes cascade events until quiescence. Each handler visits
// exactly one interval map and defers further effects to the queue.
func (c *depCore) drainQueue() {
	for i := 0; i < len(c.queue); i++ {
		ev := c.queue[i]
		switch ev.kind {
		case evGrant:
			c.handleGrant(ev.frag, ev.iv, ev.dR, ev.dW)
		case evDomainDec:
			c.handleDomainDec(ev.owner, ev.data, ev.iv, ev.frag)
		case evDrain:
			c.handleDrain(ev.frag, ev.iv)
		}
	}
	c.queue = c.queue[:0]
}

// handleGrant delivers a satisfaction grant to frag over iv, firing
// satisfaction transitions: node readiness for strong accesses, waiter
// grants for weak linking points, and release checks.
func (c *depCore) handleGrant(f *fragment, iv regions.Interval, dR, dW int32) {
	c.stats.Grants++
	n := f.node()
	strong := !f.weak()
	reader := f.typ() == In
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		rSatNow, wSatNow := false, false
		if dR > 0 {
			if ps.pendR < dR {
				panic("deps: read-satisfaction grant underflow")
			}
			ps.pendR -= dR
			rSatNow = ps.pendR == 0
		}
		if dW > 0 {
			if ps.pendW < dW {
				panic("deps: write-satisfaction grant underflow")
			}
			ps.pendW -= dW
			wSatNow = ps.pendW == 0
		}
		if strong {
			if (reader && rSatNow) || (!reader && wSatNow) {
				c.nodeSatisfy(n, pIv.Len(), f.data())
			}
		}
		if rSatNow {
			c.queueWaiterGrants(f.rWaiters, pIv)
		}
		if wSatNow {
			c.queueWaiterGrants(f.wWaiters, pIv)
		}
		c.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

func (c *depCore) queueWaiterGrants(waiters []link, pIv regions.Interval) {
	for _, w := range waiters {
		ov := w.iv.Intersect(pIv)
		if !ov.Empty() {
			c.queue = append(c.queue, event{kind: evGrant, frag: w.target, iv: ov, dR: w.dR, dW: w.dW})
		}
	}
}

// handleDomainDec decrements the live-registration count of the owner's
// domain cells over iv, scrubbing the released fragment f from the cells'
// access history (see cellState.scrub); cells that drain fire their
// pending hand-over.
func (c *depCore) handleDomainDec(owner *Node, data DataID, iv regions.Interval, f *fragment) {
	dm := owner.domainFor(data)
	if dm == nil {
		panic("deps: domain-dec on missing domain")
	}
	dm.VisitRange(iv, func(cIv regions.Interval, cs *cellState) {
		if cs.liveCount <= 0 {
			panic("deps: domain live-count underflow")
		}
		cs.liveCount--
		c.scrubCell(cs, f)
		if cs.liveCount == 0 && cs.handover != nil {
			h := cs.handover
			cs.handover = nil
			c.queue = append(c.queue, event{kind: evDrain, frag: h, iv: cIv})
		}
	})
	dm.MergeRange(iv, drainedCellsEqual)
	if c.mem != nil {
		// The event's hold on the owner (placed when it was queued) ends.
		c.mem.ep.unpin(owner, c.mem)
	}
}

// drainedCellsEqual merges adjacent drained domain cells. Cells split at
// the boundaries of every child fragment piece that releases over them;
// once drained (no live registration, no pending hand-over, no reader or
// reduction history) two neighbors with the same writer history behave
// identically for all future registrations, so the split can be undone.
// Without this, an outer task's domain accumulates one cell per descendant
// release and deep weakwait programs turn quadratic. History lists obey
// the nil-on-empty invariant, so merged (dropped) cells never strand a
// pooled list.
func drainedCellsEqual(a, b cellState) bool {
	return a.liveCount == 0 && b.liveCount == 0 &&
		a.handover == nil && b.handover == nil &&
		a.readers.empty() && b.readers.empty() &&
		a.reds.empty() && b.reds.empty() &&
		a.lastWriter == b.lastWriter && a.written == b.written
}

// handleDrain completes the hand-over: the inner-domain cells covering this
// piece have fully drained, so the piece may release (once satisfied).
func (c *depCore) handleDrain(f *fragment, iv regions.Interval) {
	f.state.VisitRange(iv, func(pIv regions.Interval, ps *pieceState) {
		if ps.released {
			return
		}
		ps.waitDrain = false
		c.tryRelease(f, pIv, ps)
	})
	f.state.MergeRange(iv, releasedEqual)
}

// nodeSatisfy credits length satisfied elements to n's strong accesses.
// The counter is atomic so that grants delivered concurrently from
// different shards need no common lock; the registration hold (see
// Register in either engine) guarantees the count cannot reach zero before
// registration finished, and the notified CAS elects exactly one ready
// transition. data is the object whose grant is being credited; the
// electing grant records it as the node's readiness-locality hint, which
// the runtime threads through to the ready-pool shard choice (the worker
// that delivered the final grant has the producing data warm).
func (c *depCore) nodeSatisfy(n *Node, length int64, data DataID) {
	rem := n.unsat.Add(-length)
	if rem < 0 {
		panic("deps: node unsatisfied-length underflow")
	}
	if rem == 0 && n.notified.CompareAndSwap(false, true) {
		n.readyData = int64(data)
		c.ready = append(c.ready, n)
		if c.obs != nil {
			c.obs.NodeReady(n)
		}
	}
}

// takeReady drains the ready list accumulated by the cascades.
func (c *depCore) takeReady() []*Node {
	if len(c.ready) == 0 {
		return nil
	}
	out := make([]*Node, len(c.ready))
	copy(out, c.ready)
	c.ready = c.ready[:0]
	return out
}

// appendReady drains the ready list into out without the intermediate copy
// takeReady would make — the sharded engine accumulates ready nodes across
// several shards into one slice.
func (c *depCore) appendReady(out []*Node) []*Node {
	if len(c.ready) == 0 {
		return out
	}
	out = append(out, c.ready...)
	c.ready = c.ready[:0]
	return out
}

// checkRegister runs the registration sanity checks shared by both engines
// and places the registration hold on n's readiness counter: while held,
// grants delivered concurrently (sharded engine) cannot observe a zero
// unsatisfied count, so a node never becomes ready mid-registration.
func checkRegister(n *Node, specs []Spec) {
	if n.registered {
		panic("deps: node registered twice: " + n.label)
	}
	if len(specs) > 0 && n.parent == nil {
		panic("deps: root node cannot have dependencies")
	}
	n.unsat.Add(1)
}

// finishRegister marks registration complete, releases the hold, and
// reports whether the node is immediately ready. obs may be nil.
func finishRegister(n *Node, obs Observer) bool {
	n.registered = true
	if n.unsat.Add(-1) == 0 && n.notified.CompareAndSwap(false, true) {
		if obs != nil {
			obs.NodeReady(n)
		}
		return true
	}
	return false
}

// oneData reports whether every spec names the same data object (and there
// is at least one).
func oneData(specs []Spec) bool {
	if len(specs) == 0 {
		return false
	}
	for _, s := range specs[1:] {
		if s.Data != specs[0].Data {
			return false
		}
	}
	return true
}

// specDatas returns the distinct DataIDs of specs in ascending order — the
// canonical shard acquisition order.
func specDatas(specs []Spec) []DataID {
	datas := make([]DataID, 0, len(specs))
	for _, s := range specs {
		datas = append(datas, s.Data)
	}
	return sortedUnique(datas)
}

func sortedUnique(datas []DataID) []DataID {
	if len(datas) < 2 {
		return datas
	}
	sort.Slice(datas, func(i, j int) bool { return datas[i] < datas[j] })
	w := 1
	for _, d := range datas[1:] {
		if d != datas[w-1] {
			datas[w] = d
			w++
		}
	}
	return datas[:w]
}

// syncObserver serializes observer callbacks: the sharded engine fires
// events from several shards concurrently, but the Observer contract
// (graph capture, tests) assumes sequential delivery.
type syncObserver struct {
	mu    sync.Mutex
	inner Observer
}

func wrapObserver(obs Observer) Observer {
	if obs == nil {
		return nil
	}
	return &syncObserver{inner: obs}
}

func (o *syncObserver) NodeCreated(n, parent *Node) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.NodeCreated(n, parent)
}

func (o *syncObserver) NodeReady(n *Node) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.NodeReady(n)
}

func (o *syncObserver) Link(pred, succ *Node, data DataID, iv regions.Interval, inbound bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.Link(pred, succ, data, iv, inbound)
}

func (o *syncObserver) Handover(n *Node, data DataID, iv regions.Interval) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.Handover(n, data, iv)
}

func (o *syncObserver) Released(n *Node, data DataID, iv regions.Interval) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.inner.Released(n, data, iv)
}
