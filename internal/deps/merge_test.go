package deps

import (
	"fmt"
	"testing"

	"repro/internal/regions"
)

// The coalescing regression tests: deep weakwait cascades must not
// accumulate map entries in ancestor domains or long-lived fragments. See
// drainedCellsEqual / releasedEqual in engine.go.

// countDomainEntries returns the total entry count across a node's domain
// maps.
func countDomainEntries(n *Node) int {
	total := 0
	for _, dm := range n.domain {
		total += dm.Count()
	}
	return total
}

// TestDeepCascadeDomainsStayCompact builds a recursive weakwait chain —
// each level owns a halved range of its parent — completes it bottom-up,
// and checks the root's domain did not retain one cell per descendant.
func TestDeepCascadeDomainsStayCompact(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)

	const span = int64(1 << 12)
	type lvl struct {
		n  *Node
		iv regions.Interval
	}
	// A full binary tree of weakwait-style nodes, leaves strong.
	var leaves []*Node
	var build func(parent *Node, iv regions.Interval, depth int)
	build = func(parent *Node, iv regions.Interval, depth int) {
		n := e.NewNode(parent, fmt.Sprintf("n%d-%d", depth, iv.Lo), nil)
		weak := depth < 6
		e.Register(n, []Spec{{Data: 0, Type: InOut, Weak: weak, Ivs: []regions.Interval{iv}}})
		if !weak {
			leaves = append(leaves, n)
			return
		}
		mid := (iv.Lo + iv.Hi) / 2
		build(n, regions.Interval{Lo: iv.Lo, Hi: mid}, depth+1)
		build(n, regions.Interval{Lo: mid, Hi: iv.Hi}, depth+1)
		// Weakwait: the body created its children and returned.
		e.BodyDone(n)
	}
	build(root, regions.Interval{Lo: 0, Hi: span}, 0)

	for _, l := range leaves {
		e.Complete(l)
	}
	if n := e.LiveFragments(); n != 0 {
		t.Fatalf("%d fragments unreleased after full drain", n)
	}
	// The root's domain saw the top node's fragment release piece by piece
	// (one piece per leaf, worst case); coalescing must keep it at O(1).
	if got := countDomainEntries(root); got > 4 {
		t.Errorf("root domain holds %d entries after drain; coalescing failed", got)
	}
}

func TestMergeRangeProperties(t *testing.T) {
	m := regions.NewMap[int](nil)
	for i := int64(0); i < 100; i++ {
		m.Set(regions.Iv(i, i+1), int(i%3))
	}
	if m.Count() != 100 {
		t.Fatalf("setup: %d entries", m.Count())
	}
	// Merge equal neighbors: pattern 0,1,2 repeating — nothing merges.
	m.MergeRange(regions.Iv(0, 100), func(a, b int) bool { return a == b })
	if m.Count() != 100 {
		t.Errorf("unequal neighbors merged: %d", m.Count())
	}
	// Make everything equal, merge a subrange plus its neighbors.
	m.VisitRange(regions.Iv(0, 100), func(_ regions.Interval, v *int) { *v = 7 })
	m.MergeRange(regions.Iv(40, 60), func(a, b int) bool { return a == b })
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// [39,61) should now be one entry (subrange plus one neighbor on each
	// side).
	if got := m.Get(int64(50)); got == nil || *got != 7 {
		t.Fatal("value lost in merge")
	}
	before := m.Count()
	if before >= 100-18 {
		t.Errorf("merge removed too few entries: %d left", before)
	}
	// Full merge collapses to a single entry.
	m.MergeRange(regions.Iv(0, 100), func(a, b int) bool { return a == b })
	if m.Count() != 1 {
		t.Errorf("full merge left %d entries, want 1", m.Count())
	}
	if m.CoveredLen() != 100 {
		t.Errorf("coverage changed: %d", m.CoveredLen())
	}
}

func TestMergeRangeGapsNotBridged(t *testing.T) {
	m := regions.NewMap[int](nil)
	m.Set(regions.Iv(0, 10), 1)
	m.Set(regions.Iv(20, 30), 1) // gap [10,20)
	m.MergeRange(regions.Iv(0, 30), func(a, b int) bool { return a == b })
	if m.Count() != 2 {
		t.Fatalf("entries across a gap merged: %v", m)
	}
}
