package deps

import (
	"testing"

	"repro/internal/regions"
)

// Edge cases of the release directive interacting with fragmentation and
// coalescing: partial releases split a fragment; the rest must stay
// enforced, and the engine must still drain to zero live fragments.

type readyList struct{ names []string }

func (r *readyList) add(ns []*Node) {
	for _, n := range ns {
		r.names = append(r.names, n.Label())
	}
}

func (r *readyList) has(name string) bool {
	for _, n := range r.names {
		if n == name {
			return true
		}
	}
	return false
}

func TestReleasePartialSubInterval(t *testing.T) {
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	var ready readyList

	// Holder owns [0,100) strongly and runs immediately.
	holder := e.NewNode(root, "holder", nil)
	if !e.Register(holder, []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 100)}}}) {
		t.Fatal("holder should be ready")
	}
	// Two successors on the two halves.
	lo := e.NewNode(root, "lo", nil)
	if e.Register(lo, []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 50)}}}) {
		t.Fatal("lo must wait for holder")
	}
	hi := e.NewNode(root, "hi", nil)
	if e.Register(hi, []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(50, 100)}}}) {
		t.Fatal("hi must wait for holder")
	}

	// Holder releases only [0,50): lo becomes ready, hi must not.
	ready.add(e.ReleaseRegions(holder, []Spec{{Data: 0, Ivs: []regions.Interval{regions.Iv(0, 50)}}}))
	if !ready.has("lo") {
		t.Error("lo not readied by the partial release")
	}
	if ready.has("hi") {
		t.Error("hi readied though [50,100) is still held")
	}

	// Completion of the holder releases the rest.
	ready.add(e.Complete(holder))
	if !ready.has("hi") {
		t.Error("hi not readied by holder completion")
	}
	e.Complete(lo)
	e.Complete(hi)
	if n := e.LiveFragments(); n != 0 {
		t.Errorf("%d fragments live after full drain", n)
	}
}

func TestReleaseManySlicesThenComplete(t *testing.T) {
	// Release a fragment one slice at a time (worst-case fragmentation for
	// the piece map), then complete; coalescing must keep things exact.
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)
	holder := e.NewNode(root, "holder", nil)
	e.Register(holder, []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(0, 128)}}})

	succ := e.NewNode(root, "succ", nil)
	if e.Register(succ, []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(0, 128)}}}) {
		t.Fatal("succ must wait")
	}
	var ready readyList
	for i := int64(0); i < 127; i++ {
		ready.add(e.ReleaseRegions(holder, []Spec{{Data: 0, Ivs: []regions.Interval{regions.Iv(i, i+1)}}}))
		if ready.has("succ") {
			t.Fatalf("succ readied after releasing only [0,%d)", i+1)
		}
	}
	ready.add(e.ReleaseRegions(holder, []Spec{{Data: 0, Ivs: []regions.Interval{regions.Iv(127, 128)}}}))
	if !ready.has("succ") {
		t.Fatal("succ not readied after the last slice")
	}
	e.Complete(holder)
	e.Complete(succ)
	if n := e.LiveFragments(); n != 0 {
		t.Errorf("%d fragments live after drain", n)
	}
}

func TestReleaseOnWeakParentHandsOverToLiveChild(t *testing.T) {
	// A weak parent releases a region a live child covers: the hand-over
	// must fire when the child completes, not at the release.
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)

	parent := e.NewNode(root, "parent", nil)
	e.Register(parent, []Spec{{Data: 0, Type: InOut, Weak: true, Ivs: []regions.Interval{regions.Iv(0, 100)}}})
	child := e.NewNode(parent, "child", nil)
	if !e.Register(child, []Spec{{Data: 0, Type: InOut, Ivs: []regions.Interval{regions.Iv(20, 40)}}}) {
		t.Fatal("child should be ready (weak parent, no predecessors)")
	}
	succ := e.NewNode(root, "succ", nil)
	if e.Register(succ, []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(0, 100)}}}) {
		t.Fatal("succ must wait for the parent subtree")
	}

	var ready readyList
	// Early release of the whole region: [0,20) and [40,100) release
	// immediately; [20,40) is handed over to the live child.
	ready.add(e.ReleaseRegions(parent, []Spec{{Data: 0, Ivs: []regions.Interval{regions.Iv(0, 100)}}}))
	if ready.has("succ") {
		t.Fatal("succ readied while the child still holds [20,40)")
	}
	ready.add(e.Complete(child))
	if !ready.has("succ") {
		t.Fatal("succ not readied by the covering child's completion")
	}
	e.Complete(parent)
	e.Complete(succ)
	if n := e.LiveFragments(); n != 0 {
		t.Errorf("%d fragments live after drain", n)
	}
}

func TestStridedSpecsThroughEngine(t *testing.T) {
	// Multi-interval specs (the strided shapes of listing 7) fragment and
	// link per interval.
	e := NewEngine(testEngineKind, nil)
	root := e.NewNode(nil, "root", nil)
	e.Register(root, nil)

	writer := e.NewNode(root, "writer", nil)
	e.Register(writer, []Spec{{Data: 0, Type: Out,
		Ivs: regions.Strided(0, 1, 10, 5)}}) // {0,10,20,30,40}
	hit := e.NewNode(root, "hit", nil)
	if e.Register(hit, []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(20, 21)}}}) {
		t.Fatal("reader of a written stride element must wait")
	}
	miss := e.NewNode(root, "miss", nil)
	if !e.Register(miss, []Spec{{Data: 0, Type: In, Ivs: []regions.Interval{regions.Iv(21, 30)}}}) {
		t.Fatal("reader between stride elements must not wait")
	}
	var ready readyList
	ready.add(e.Complete(writer))
	if !ready.has("hit") {
		t.Fatal("strided writer completion did not ready its reader")
	}
	e.Complete(hit)
	e.Complete(miss)
	if n := e.LiveFragments(); n != 0 {
		t.Errorf("%d fragments live after drain", n)
	}
}
