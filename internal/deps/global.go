package deps

import "sync"

// GlobalEngine is the single-lock Engine: one mutex serializes every
// submit, release, and cascade across all data objects. It is the
// reference implementation — simplest to reason about, and the baseline
// the contention benchmarks measure the sharded engine against.
type GlobalEngine struct {
	mu sync.Mutex
	c  depCore
}

var _ Engine = (*GlobalEngine)(nil)

// NewGlobalEngine returns a single-lock engine. obs may be nil.
func NewGlobalEngine(obs Observer) *GlobalEngine {
	e := &GlobalEngine{}
	e.c.obs = obs
	return e
}

// Stats returns a snapshot of the activity counters.
func (e *GlobalEngine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.c.stats
}

// LiveFragments returns the number of fragments not yet fully released.
func (e *GlobalEngine) LiveFragments() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.c.liveFrags
}

// NewNode creates a node under parent (nil for the root node).
func (e *GlobalEngine) NewNode(parent *Node, label string, user any) *Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.c.stats.Nodes++
	n := newNode(parent, label, user)
	if e.c.obs != nil {
		e.c.obs.NodeCreated(n, parent)
	}
	return n
}

// Register links the node's depend entries into its parent's domain and
// reports whether the node is immediately ready to execute.
func (e *GlobalEngine) Register(n *Node, specs []Spec) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	checkRegister(n, specs)
	for _, spec := range specs {
		e.c.registerSpec(n, spec)
	}
	return finishRegister(n, e.c.obs)
}

// BodyDone implements the weakwait clause (§V). Returns nodes that became
// ready.
func (e *GlobalEngine) BodyDone(n *Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.c.handOverOrRelease(n, f, f.iv)
		}
	}
	e.c.drainQueue()
	return e.c.takeReady()
}

// ReleaseRegions implements the release directive (§V).
func (e *GlobalEngine) ReleaseRegions(n *Node, specs []Spec) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, spec := range specs {
		e.c.releaseSpec(n, spec)
	}
	e.c.drainQueue()
	return e.c.takeReady()
}

// Complete finalizes the node once its code and all descendants have
// finished.
func (e *GlobalEngine) Complete(n *Node) []*Node {
	e.mu.Lock()
	defer e.mu.Unlock()
	n.completed = true
	for _, acc := range n.accesses {
		for _, f := range acc.frags {
			e.c.markDone(f, f.iv)
		}
	}
	e.c.drainQueue()
	return e.c.takeReady()
}
